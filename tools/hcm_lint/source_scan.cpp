#include "hcm_lint/source_scan.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "hcm_analyze/token_stream.hpp"

namespace hcm::lint {

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool word_at(const std::string& s, std::size_t pos, const std::string& word) {
  if (s.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && ident_char(s[pos - 1])) return false;
  std::size_t end = pos + word.size();
  return end >= s.size() || !ident_char(s[end]);
}

std::size_t skip_ws(const std::string& s, std::size_t i) {
  while (i < s.size() &&
         std::isspace(static_cast<unsigned char>(s[i])) != 0) {
    ++i;
  }
  return i;
}

int line_of(const std::string& s, std::size_t pos) {
  return 1 + static_cast<int>(std::count(s.begin(), s.begin() + pos, '\n'));
}

// Given `pos` at 'Status' or 'Result', returns the end offset of the
// full return type (past the template args for Result), or npos if the
// token cannot be a by-value return type here.
std::size_t return_type_end(const std::string& s, std::size_t pos) {
  std::size_t end = pos + (word_at(s, pos, "Status") ? 6 : 6);
  if (word_at(s, pos, "Result")) {
    std::size_t open = skip_ws(s, end);
    if (open >= s.size() || s[open] != '<') return std::string::npos;
    int depth = 0;
    std::size_t i = open;
    for (; i < s.size(); ++i) {
      if (s[i] == '<') ++depth;
      if (s[i] == '>' && --depth == 0) break;
    }
    if (i >= s.size()) return std::string::npos;
    end = i + 1;
  }
  return end;
}

// The declaration prefix: text between the previous statement boundary
// and `pos`. For declarations a lone ':' (access specifier) is also a
// boundary; for call statements it must not be (a ternary's ':' would
// hide the '=' / '?' that prove the result is used).
std::string decl_prefix(const std::string& s, std::size_t pos,
                        bool stop_at_colon = true) {
  std::size_t begin = 0;
  for (std::size_t i = pos; i-- > 0;) {
    char c = s[i];
    if (c == ';' || c == '{' || c == '}') {
      begin = i + 1;
      break;
    }
    if (c == ':' && stop_at_colon) {
      // '::' is a qualifier, a lone ':' ends an access specifier.
      if (i > 0 && s[i - 1] == ':') {
        --i;
        continue;
      }
      if (i + 1 < s.size() && s[i + 1] == ':') continue;
      begin = i + 1;
      break;
    }
  }
  return s.substr(begin, pos - begin);
}

bool contains_word(const std::string& s, const std::string& word) {
  for (std::size_t i = s.find(word); i != std::string::npos;
       i = s.find(word, i + 1)) {
    if (word_at(s, i, word)) return true;
  }
  return false;
}

// Parses "<identifier> (" directly after a return type; empty if the
// token is not a function declaration (member variable, parameter,
// constructor, reference-returning getter, ...).
std::string declared_function_name(const std::string& s, std::size_t type_end) {
  std::size_t i = skip_ws(s, type_end);
  if (i >= s.size()) return {};
  if (s[i] == '&' || s[i] == '*') return {};  // by-reference/pointer return
  std::size_t name_begin = i;
  while (i < s.size() && ident_char(s[i])) ++i;
  if (i == name_begin) return {};
  std::size_t paren = skip_ws(s, i);
  if (paren >= s.size() || s[paren] != '(') return {};
  return s.substr(name_begin, i - name_begin);
}

}  // namespace

std::string strip_comments_and_strings(std::string_view src) {
  // Delegates to the shared analyzer lexer, which (unlike the state
  // machine this replaced) also understands raw string literals, so a
  // `Status` inside R"(...)" can no longer produce phantom findings.
  return hcm::analyze::blank_noncode(src);
}

namespace {

// Shared walk over by-value Status/Result declarations; calls `fn`
// with (declared name, token offset, declaration prefix).
template <typename Fn>
void for_each_status_decl(const std::string& stripped, Fn&& fn) {
  for (const char* type_word : {"Status", "Result"}) {
    const std::string word = type_word;
    for (std::size_t pos = stripped.find(word); pos != std::string::npos;
         pos = stripped.find(word, pos + 1)) {
      if (!word_at(stripped, pos, word)) continue;
      // Qualified uses (Status::..., StatusCode) and `return Status...`
      // are not declarations.
      std::size_t type_end = return_type_end(stripped, pos);
      if (type_end == std::string::npos) continue;
      std::string name = declared_function_name(stripped, type_end);
      if (name.empty() || name == "operator") continue;
      std::string prefix = decl_prefix(stripped, pos);
      if (contains_word(prefix, "return") || contains_word(prefix, "using") ||
          contains_word(prefix, "typedef") || contains_word(prefix, "new") ||
          prefix.find('=') != std::string::npos ||
          prefix.find('(') != std::string::npos ||
          prefix.find('<') != std::string::npos) {
        continue;
      }
      fn(name, pos, prefix);
    }
  }
}

}  // namespace

std::set<std::string> collect_status_functions(const std::string& header_text) {
  std::string stripped = strip_comments_and_strings(header_text);
  std::set<std::string> out;
  for_each_status_decl(stripped,
                       [&](const std::string& name, std::size_t,
                           const std::string&) { out.insert(name); });
  return out;
}

Diagnostics scan_nodiscard_text(const std::string& text,
                                const std::string& filename) {
  std::string stripped = strip_comments_and_strings(text);
  Diagnostics out;
  for_each_status_decl(
      stripped, [&](const std::string& name, std::size_t pos,
                    const std::string& prefix) {
        if (prefix.find("[[nodiscard]]") != std::string::npos) return;
        out.push_back(
            {"missing-nodiscard",
             filename + ":" + std::to_string(line_of(stripped, pos)),
             "function '" + name +
                 "' returns Status/Result but is not [[nodiscard]]"});
      });
  return out;
}

Diagnostics scan_discarded_calls_text(const std::string& text,
                                      const std::string& filename,
                                      const std::set<std::string>& fns) {
  std::string stripped = strip_comments_and_strings(text);
  Diagnostics out;
  for (const auto& fn : fns) {
    for (std::size_t pos = stripped.find(fn); pos != std::string::npos;
         pos = stripped.find(fn, pos + 1)) {
      if (!word_at(stripped, pos, fn)) continue;
      std::size_t open = skip_ws(stripped, pos + fn.size());
      if (open >= stripped.size() || stripped[open] != '(') continue;

      // The statement must be nothing but `receiver-chain fn(...)`:
      // any '=', '(', '?' or keyword in the prefix means the result is
      // used (labels stay in the prefix; `case x: fn();` still flags).
      std::string prefix = decl_prefix(stripped, pos, /*stop_at_colon=*/false);
      bool plain = true;
      for (char c : prefix) {
        if (ident_char(c) || std::isspace(static_cast<unsigned char>(c)) != 0 ||
            c == '.' || c == ':' || c == '-' || c == '>') {
          continue;
        }
        plain = false;
        break;
      }
      if (!plain || contains_word(prefix, "return") ||
          contains_word(prefix, "throw") || contains_word(prefix, "case") ||
          contains_word(prefix, "co_return")) {
        continue;
      }
      // Receiver chains end with '.', '->' or '::'; a bare identifier
      // directly before the name is a declaration or type, not a call.
      std::size_t last = prefix.find_last_not_of(" \t\n\r");
      if (last != std::string::npos && ident_char(prefix[last])) continue;

      // The call must end the statement: matching ')' followed by ';'.
      int depth = 0;
      std::size_t close = open;
      for (; close < stripped.size(); ++close) {
        if (stripped[close] == '(') ++depth;
        if (stripped[close] == ')' && --depth == 0) break;
      }
      if (close >= stripped.size()) continue;
      std::size_t after = skip_ws(stripped, close + 1);
      if (after >= stripped.size() || stripped[after] != ';') continue;

      out.push_back(
          {"discarded-status",
           filename + ":" + std::to_string(line_of(stripped, pos)),
           "result of '" + fn +
               "' (returns Status/Result) is discarded; handle it or "
               "cast to (void) with a reason"});
    }
  }
  return out;
}

SourceScanReport scan_sources(const std::filesystem::path& repo_root) {
  namespace fs = std::filesystem;
  SourceScanReport report;

  auto read_file = [](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };

  const fs::path nodiscard_dirs[] = {repo_root / "src" / "common",
                                     repo_root / "src" / "core"};
  for (const auto& dir : nodiscard_dirs) {
    if (!fs::exists(dir)) continue;
    for (const auto& e : fs::recursive_directory_iterator(dir)) {
      if (!e.is_regular_file() || e.path().extension() != ".hpp") continue;
      std::string text = read_file(e.path());
      ++report.headers_scanned;
      auto rel = fs::relative(e.path(), repo_root).string();
      auto diags = scan_nodiscard_text(text, rel);
      report.diags.insert(report.diags.end(), diags.begin(), diags.end());
      auto fns = collect_status_functions(text);
      report.status_functions.insert(fns.begin(), fns.end());
    }
  }

  const fs::path scan_root = repo_root / "src";
  if (fs::exists(scan_root)) {
    for (const auto& e : fs::recursive_directory_iterator(scan_root)) {
      if (!e.is_regular_file()) continue;
      auto ext = e.path().extension();
      if (ext != ".cpp" && ext != ".hpp") continue;
      std::string text = read_file(e.path());
      ++report.files_scanned;
      auto rel = fs::relative(e.path(), repo_root).string();
      auto diags =
          scan_discarded_calls_text(text, rel, report.status_functions);
      report.diags.insert(report.diags.end(), diags.begin(), diags.end());
    }
  }
  return report;
}

}  // namespace hcm::lint
