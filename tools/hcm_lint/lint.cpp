#include "hcm_lint/lint.hpp"

#include <set>
#include <sstream>

#include "common/value_codec.hpp"
#include "core/naming.hpp"
#include "soap/value_xml.hpp"
#include "soap/wsdl.hpp"
#include "xml/xml.hpp"

namespace hcm::lint {

namespace {

// A default-constructed Value of each representable type, used to
// prove the type survives the binary codec.
Value sample_value(ValueType t) {
  switch (t) {
    case ValueType::kNull: return {};
    case ValueType::kBool: return Value(false);
    case ValueType::kInt: return Value(std::int64_t{0});
    case ValueType::kDouble: return Value(0.0);
    case ValueType::kString: return Value(std::string{});
    case ValueType::kBytes: return Value(Bytes{});
    case ValueType::kList: return Value(ValueList{});
    case ValueType::kMap: return Value(ValueMap{});
  }
  return {};
}

bool valid_value_type(ValueType t) {
  switch (t) {
    case ValueType::kNull:
    case ValueType::kBool:
    case ValueType::kInt:
    case ValueType::kDouble:
    case ValueType::kString:
    case ValueType::kBytes:
    case ValueType::kList:
    case ValueType::kMap:
      return true;
  }
  return false;
}

void check_value_type(ValueType t, const std::string& where,
                      const std::string& provenance, Diagnostics& out) {
  if (!valid_value_type(t)) {
    out.push_back({"unrepresentable-type", provenance,
                   where + " has ValueType " +
                       std::to_string(static_cast<int>(t)) +
                       " outside the ValueType enumeration"});
    return;
  }
  // Codec representability: the type must survive the binary codec and
  // the WSDL/xsd type table (both are what proxies marshal through).
  auto decoded = decode_value(encode_value(sample_value(t)));
  if (!decoded.is_ok() || decoded.value().type() != t) {
    out.push_back({"unrepresentable-type", provenance,
                   where + ": ValueType " + to_string(t) +
                       " does not round-trip the binary codec"});
  }
  if (soap::value_type_for_wsdl(soap::wsdl_type_for(t)) != t) {
    out.push_back({"unrepresentable-type", provenance,
                   where + ": ValueType " + to_string(t) +
                       " does not round-trip the WSDL type table"});
  }
}

}  // namespace

Diagnostics check_interface(const InterfaceDesc& iface,
                            const std::string& provenance) {
  Diagnostics out;
  if (iface.name.empty()) {
    out.push_back({"unnamed-interface", provenance, "interface has no name"});
  }
  std::set<std::string> seen;
  for (const auto& m : iface.methods) {
    const std::string where = iface.name + "." + m.name;
    if (m.name.empty()) {
      out.push_back({"unnamed-method", provenance,
                     "interface " + iface.name + " has an unnamed method"});
    }
    if (!seen.insert(m.name).second) {
      out.push_back({"duplicate-method", provenance,
                     "method " + where +
                         " declared more than once (proxy dispatch is by "
                         "name, so overloads cannot be distinguished)"});
    }
    if (m.one_way && m.return_type != ValueType::kNull) {
      out.push_back({"one-way-return", provenance,
                     "one_way method " + where + " declares return type " +
                         to_string(m.return_type) +
                         " but one-way calls have no reply to carry it"});
    }
    for (const auto& p : m.params) {
      check_value_type(p.type, where + " param '" + p.name + "'", provenance,
                       out);
    }
    check_value_type(m.return_type, where + " return", provenance, out);
  }
  // Events contract: every declared event must be a one-way,
  // null-returning signature — the bridge delivers events with no
  // reply channel, so anything else is undeliverable by construction.
  std::set<std::string> seen_events;
  for (const auto& e : iface.events) {
    const std::string where = iface.name + "." + e.name;
    if (e.name.empty()) {
      out.push_back({"unnamed-event", provenance,
                     "interface " + iface.name + " has an unnamed event"});
    }
    if (!seen_events.insert(e.name).second) {
      out.push_back({"duplicate-event", provenance,
                     "event " + where +
                         " declared more than once (subscriptions are by "
                         "name, so duplicates cannot be distinguished)"});
    }
    if (!e.one_way) {
      out.push_back({"event-not-one-way", provenance,
                     "event " + where +
                         " is not one_way; events are fire-and-forget "
                         "notifications and cannot be request/response"});
    }
    if (e.return_type != ValueType::kNull) {
      out.push_back({"event-return", provenance,
                     "event " + where + " declares return type " +
                         to_string(e.return_type) +
                         " but event delivery has no reply to carry it"});
    }
    for (const auto& p : e.params) {
      check_value_type(p.type, where + " param '" + p.name + "'", provenance,
                       out);
    }
  }
  return out;
}

Diagnostics check_wsdl_roundtrip(const InterfaceDesc& iface,
                                 const std::string& provenance) {
  Diagnostics out;
  const std::string service_name = "lint-probe";
  auto endpoint = parse_uri("http://lint-host:8080/services/lint-probe");
  if (!endpoint.is_ok()) {
    out.push_back({"wsdl-roundtrip", provenance,
                   "internal: probe URI failed to parse"});
    return out;
  }
  std::string wsdl = soap::emit_wsdl(iface, service_name, endpoint.value());
  auto doc = soap::parse_wsdl(wsdl);
  if (!doc.is_ok()) {
    out.push_back({"wsdl-roundtrip", provenance,
                   "emitted WSDL does not parse: " + doc.status().to_string()});
    return out;
  }
  if (!(doc.value().interface == iface)) {
    out.push_back({"wsdl-roundtrip", provenance,
                   "descriptor does not survive the WSDL round-trip "
                   "(emit_wsdl + parse_wsdl produced a different "
                   "interface)"});
  }
  if (doc.value().service_name != service_name) {
    out.push_back({"wsdl-roundtrip", provenance,
                   "service name does not survive the WSDL round-trip"});
  }
  if (doc.value().endpoint.to_string() != endpoint.value().to_string()) {
    out.push_back({"wsdl-roundtrip", provenance,
                   "endpoint does not survive the WSDL round-trip"});
  }
  return out;
}

Diagnostics check_vsr_entries(const std::vector<soap::RegistryEntry>& entries,
                              const VsrCheckContext& ctx) {
  Diagnostics out;
  for (const auto& entry : entries) {
    const std::string subject = "vsr entry '" + entry.name + "' (origin " +
                                entry.origin + ")";
    auto doc = soap::parse_wsdl(entry.wsdl);
    if (!doc.is_ok()) {
      out.push_back({"vsr-bad-wsdl", subject,
                     "stored WSDL does not parse: " +
                         doc.status().to_string()});
      continue;
    }
    core::VirtualServiceGateway* vsg =
        ctx.vsg_for_origin ? ctx.vsg_for_origin(entry.origin) : nullptr;
    if (vsg == nullptr) {
      out.push_back({"vsr-unknown-origin", subject,
                     "origin island has no live gateway"});
      continue;
    }
    if (!vsg->is_exposed(entry.name)) {
      out.push_back({"vsr-dangling-entry", subject,
                     "service is in the VSR but no longer exposed by its "
                     "origin gateway"});
      continue;
    }
    const std::string advertised = doc.value().endpoint.to_string();
    const std::string actual = vsg->exposure_uri(entry.name).to_string();
    if (advertised != actual) {
      out.push_back({"vsr-endpoint-mismatch", subject,
                     "advertised endpoint " + advertised +
                         " != live exposure URI " + actual});
    }
    if (ctx.net != nullptr) {
      auto resolved = core::resolve_endpoint(*ctx.net, doc.value().endpoint);
      if (!resolved.is_ok()) {
        out.push_back({"vsr-unresolvable-endpoint", subject,
                       "advertised endpoint " + advertised +
                           " does not resolve: " +
                           resolved.status().to_string()});
      }
    }
  }
  return out;
}

namespace {

// Round-trips one value through both encodings that carry registry
// traffic: the binary Value codec (VSG binary channel) and the XML
// value encoding serialized + reparsed (the SOAP envelope path).
void check_wire_value(const Value& v, const std::string& where,
                      const std::string& subject, Diagnostics& out) {
  auto decoded = decode_value(encode_value(v));
  if (!decoded.is_ok() || !(decoded.value() == v)) {
    out.push_back({"registry-wire-codec", subject,
                   where + " does not round-trip the binary value codec"});
  }
  xml::Element probe("probe");
  soap::value_to_xml("v", v, probe);
  auto reparsed = xml::parse(probe.to_string());
  if (!reparsed.is_ok()) {
    out.push_back({"registry-wire-codec", subject,
                   where + " does not re-parse as XML: " +
                       reparsed.status().to_string()});
    return;
  }
  const auto children = reparsed.value()->children_named("v");
  Result<Value> back = children.empty()
                           ? Result<Value>(internal_error("no encoded child"))
                           : soap::value_from_xml(*children.front());
  if (!back.is_ok() || !(back.value() == v)) {
    out.push_back({"registry-wire-codec", subject,
                   where + " does not round-trip the XML value encoding"});
  }
}

}  // namespace

Diagnostics check_registry_wire(const std::vector<std::string>& wire_ops,
                                const std::vector<WireFixture>& fixtures) {
  Diagnostics out;
  std::set<std::string> covered;
  for (const auto& f : fixtures) covered.insert(f.op);
  for (const auto& op : wire_ops) {
    if (covered.count(op) == 0) {
      out.push_back({"registry-wire-uncovered", "registry op '" + op + "'",
                     "mounted wire op has no round-trip fixture — add one to "
                     "registry_wire_fixtures()"});
    }
  }
  std::set<std::string> mounted(wire_ops.begin(), wire_ops.end());
  for (const auto& f : fixtures) {
    const std::string subject = "registry op '" + f.op + "'";
    if (!mounted.empty() && mounted.count(f.op) == 0) {
      out.push_back({"registry-wire-unknown-op", subject,
                     "fixture names an op the registry does not mount"});
    }
    for (const auto& [name, v] : f.request) {
      check_wire_value(v, "request param '" + name + "'", subject, out);
    }
    check_wire_value(f.response, "response", subject, out);
  }
  return out;
}

std::vector<WireFixture> registry_wire_fixtures() {
  const Value wsdl(std::string("<definitions name=\"Switchable\"/>"));
  const Value digest(std::string("00cafe1234567890"));
  const Value entry(ValueMap{{"name", Value(std::string("lamp-1"))},
                             {"category", Value(std::string("Switchable"))},
                             {"origin", Value(std::string("x10-island"))},
                             {"wsdl", wsdl},
                             {"digest", digest}});
  const Value upsert(ValueMap{{"kind", Value(std::string("upsert"))},
                              {"name", Value(std::string("lamp-1"))},
                              {"category", Value(std::string("Switchable"))},
                              {"origin", Value(std::string("x10-island"))},
                              {"digest", digest},
                              {"wsdl", wsdl}});
  const Value subscription(
      ValueMap{{"id", Value(std::string("esub-1"))},
               {"service", Value(std::string("vcr-1"))},
               {"event", Value(std::string("transportChanged"))},
               {"subscriber", Value(std::string("jini-island"))}});
  return {
      {"publish",
       {{"name", Value(std::string("lamp-1"))},
        {"category", Value(std::string("Switchable"))},
        {"origin", Value(std::string("x10-island"))},
        {"wsdl", wsdl},
        {"ttl", Value(std::int64_t{120000000})}},
       Value(true)},
      {"unpublish", {{"name", Value(std::string("lamp-1"))}}, Value(true)},
      {"renew",
       {{"name", Value(std::string("lamp-1"))},
        {"digest", digest},
        {"ttl", Value(std::int64_t{120000000})}},
       Value(true)},
      {"renewOrigin",
       {{"origin", Value(std::string("x10-island"))},
        {"fingerprint", digest},
        {"ttl", Value(std::int64_t{120000000})}},
       Value(std::int64_t{3})},
      {"changesSince",
       {{"epoch", Value(std::int64_t{1})},
        {"cursor", Value(std::int64_t{42})},
        {"snapshot", Value(false)},
        {"known", Value(ValueList{digest})}},
       Value(ValueMap{{"epoch", Value(std::int64_t{1})},
                      {"cursor", Value(std::int64_t{43})},
                      {"full", Value(false)},
                      {"resync", Value(false)},
                      {"changes", Value(ValueList{upsert})}})},
      {"find",
       {{"category", Value(std::string("Switchable"))}},
       Value(ValueList{entry})},
      {"lookup", {{"name", Value(std::string("lamp-1"))}}, entry},
      {"list", {}, Value(ValueList{entry})},
      {"subscribeEvent",
       {{"id", Value(std::string("esub-1"))},
        {"service", Value(std::string("vcr-1"))},
        {"event", Value(std::string("transportChanged"))},
        {"subscriber", Value(std::string("jini-island"))},
        {"ttl", Value(std::int64_t{30000000})}},
       Value(true)},
      {"renewEventSub",
       {{"id", Value(std::string("esub-1"))},
        {"ttl", Value(std::int64_t{30000000})}},
       Value(true)},
      {"unsubscribeEvent", {{"id", Value(std::string("esub-1"))}}, Value(true)},
      {"listEventSubs", {}, Value(ValueList{subscription})},
  };
}

Diagnostics check_store_records(
    const std::vector<store::RecordType>& types,
    const std::vector<StoreRecordFixture>& fixtures) {
  Diagnostics out;
  std::set<store::RecordType> covered;
  for (const auto& f : fixtures) covered.insert(f.record.type);
  for (store::RecordType t : types) {
    if (covered.count(t) == 0) {
      out.push_back(
          {"store-record-uncovered",
           std::string("store record '") + store::record_type_name(t) + "'",
           "durable record type has no codec round-trip fixture — add one "
           "to store_record_fixtures()"});
    }
  }
  for (const auto& f : fixtures) {
    const std::string subject = std::string("store record '") +
                                store::record_type_name(f.record.type) + "'";
    const std::string encoded = store::encode_record(f.record);
    auto decoded = store::decode_record(encoded);
    if (!decoded.is_ok()) {
      out.push_back({"store-record-codec", subject,
                     "fixture does not decode: " +
                         decoded.status().to_string()});
      continue;
    }
    if (!(decoded.value() == f.record)) {
      out.push_back({"store-record-codec", subject,
                     "decode(encode(fixture)) differs from the fixture — "
                     "a field is dropped or misread by the codec"});
      continue;
    }
    if (store::encode_record(decoded.value()) != encoded) {
      out.push_back({"store-record-codec", subject,
                     "re-encoding the decoded record is not byte-identical "
                     "— the encoding is not canonical, which breaks the "
                     "log's hash chain reproducibility"});
    }
  }
  return out;
}

std::vector<StoreRecordFixture> store_record_fixtures() {
  const std::string digest = "00cafe1234567890";
  const std::string wsdl = "<definitions name=\"Switchable\"/>";
  store::Record epoch;
  epoch.type = store::RecordType::kEpoch;
  epoch.epoch = store::EpochRecord{7};
  store::Record body;
  body.type = store::RecordType::kBody;
  body.body = store::BodyRecord{digest, wsdl};
  store::Record upsert;
  upsert.type = store::RecordType::kUpsert;
  upsert.upsert = store::UpsertRecord{42,       "lamp-1", "Switchable",
                                      "x10-island", digest,   120000000};
  store::Record remove;
  remove.type = store::RecordType::kRemove;
  remove.remove = store::RemoveRecord{43, "lamp-1", digest};
  store::Record touch;
  touch.type = store::RecordType::kTouch;
  touch.touch = store::TouchRecord{"lamp-1", 240000000};
  store::Record checkpoint;
  checkpoint.type = store::RecordType::kCheckpoint;
  checkpoint.checkpoint = store::CheckpointRecord{
      7,
      43,
      12,
      {store::UpsertRecord{42, "lamp-1", "Switchable", "x10-island", digest,
                           120000000}},
      {store::JournalEntry{42, false, "lamp-1", digest},
       store::JournalEntry{43, true, "vcr-1", digest}}};
  return {{epoch}, {body}, {upsert}, {remove}, {touch}, {checkpoint}};
}

Diagnostics check_vsg_op_metrics(const core::VirtualServiceGateway& vsg,
                                 const obs::Registry& registry) {
  Diagnostics out;
  for (const auto& [service, method] : vsg.exposed_ops()) {
    const std::string op = vsg.obs_scope() + ".op." + service + "." + method;
    const std::string subject =
        "vsg op '" + service + "." + method + "' (" + vsg.obs_scope() + ")";
    const obs::Histogram* latency = registry.find_histogram(op + "_us");
    if (latency == nullptr) {
      out.push_back({"obs-op-missing", subject,
                     "mounted wire op has no latency histogram '" + op +
                         "_us' — expose() must register per-op metrics"});
      continue;
    }
    const obs::Counter* calls = registry.find_counter(op + ".calls");
    if (calls != nullptr && calls->value() > 0 && latency->count() == 0) {
      out.push_back({"obs-op-unsampled", subject,
                     std::to_string(calls->value()) +
                         " dispatch(es) recorded but the latency histogram "
                         "is empty — a completion path skips the observe "
                         "wrapper"});
    }
  }
  return out;
}

std::string format_diagnostics(const Diagnostics& diags) {
  std::ostringstream os;
  for (const auto& d : diags) {
    os << d.check << ": " << d.subject << ": " << d.message << "\n";
  }
  return os.str();
}

}  // namespace hcm::lint
