#include "hcm_lint/lint.hpp"

#include <set>
#include <sstream>

#include "common/value_codec.hpp"
#include "core/naming.hpp"
#include "soap/wsdl.hpp"

namespace hcm::lint {

namespace {

// A default-constructed Value of each representable type, used to
// prove the type survives the binary codec.
Value sample_value(ValueType t) {
  switch (t) {
    case ValueType::kNull: return {};
    case ValueType::kBool: return Value(false);
    case ValueType::kInt: return Value(std::int64_t{0});
    case ValueType::kDouble: return Value(0.0);
    case ValueType::kString: return Value(std::string{});
    case ValueType::kBytes: return Value(Bytes{});
    case ValueType::kList: return Value(ValueList{});
    case ValueType::kMap: return Value(ValueMap{});
  }
  return {};
}

bool valid_value_type(ValueType t) {
  switch (t) {
    case ValueType::kNull:
    case ValueType::kBool:
    case ValueType::kInt:
    case ValueType::kDouble:
    case ValueType::kString:
    case ValueType::kBytes:
    case ValueType::kList:
    case ValueType::kMap:
      return true;
  }
  return false;
}

void check_value_type(ValueType t, const std::string& where,
                      const std::string& provenance, Diagnostics& out) {
  if (!valid_value_type(t)) {
    out.push_back({"unrepresentable-type", provenance,
                   where + " has ValueType " +
                       std::to_string(static_cast<int>(t)) +
                       " outside the ValueType enumeration"});
    return;
  }
  // Codec representability: the type must survive the binary codec and
  // the WSDL/xsd type table (both are what proxies marshal through).
  auto decoded = decode_value(encode_value(sample_value(t)));
  if (!decoded.is_ok() || decoded.value().type() != t) {
    out.push_back({"unrepresentable-type", provenance,
                   where + ": ValueType " + to_string(t) +
                       " does not round-trip the binary codec"});
  }
  if (soap::value_type_for_wsdl(soap::wsdl_type_for(t)) != t) {
    out.push_back({"unrepresentable-type", provenance,
                   where + ": ValueType " + to_string(t) +
                       " does not round-trip the WSDL type table"});
  }
}

}  // namespace

Diagnostics check_interface(const InterfaceDesc& iface,
                            const std::string& provenance) {
  Diagnostics out;
  if (iface.name.empty()) {
    out.push_back({"unnamed-interface", provenance, "interface has no name"});
  }
  std::set<std::string> seen;
  for (const auto& m : iface.methods) {
    const std::string where = iface.name + "." + m.name;
    if (m.name.empty()) {
      out.push_back({"unnamed-method", provenance,
                     "interface " + iface.name + " has an unnamed method"});
    }
    if (!seen.insert(m.name).second) {
      out.push_back({"duplicate-method", provenance,
                     "method " + where +
                         " declared more than once (proxy dispatch is by "
                         "name, so overloads cannot be distinguished)"});
    }
    if (m.one_way && m.return_type != ValueType::kNull) {
      out.push_back({"one-way-return", provenance,
                     "one_way method " + where + " declares return type " +
                         to_string(m.return_type) +
                         " but one-way calls have no reply to carry it"});
    }
    for (const auto& p : m.params) {
      check_value_type(p.type, where + " param '" + p.name + "'", provenance,
                       out);
    }
    check_value_type(m.return_type, where + " return", provenance, out);
  }
  // Events contract: every declared event must be a one-way,
  // null-returning signature — the bridge delivers events with no
  // reply channel, so anything else is undeliverable by construction.
  std::set<std::string> seen_events;
  for (const auto& e : iface.events) {
    const std::string where = iface.name + "." + e.name;
    if (e.name.empty()) {
      out.push_back({"unnamed-event", provenance,
                     "interface " + iface.name + " has an unnamed event"});
    }
    if (!seen_events.insert(e.name).second) {
      out.push_back({"duplicate-event", provenance,
                     "event " + where +
                         " declared more than once (subscriptions are by "
                         "name, so duplicates cannot be distinguished)"});
    }
    if (!e.one_way) {
      out.push_back({"event-not-one-way", provenance,
                     "event " + where +
                         " is not one_way; events are fire-and-forget "
                         "notifications and cannot be request/response"});
    }
    if (e.return_type != ValueType::kNull) {
      out.push_back({"event-return", provenance,
                     "event " + where + " declares return type " +
                         to_string(e.return_type) +
                         " but event delivery has no reply to carry it"});
    }
    for (const auto& p : e.params) {
      check_value_type(p.type, where + " param '" + p.name + "'", provenance,
                       out);
    }
  }
  return out;
}

Diagnostics check_wsdl_roundtrip(const InterfaceDesc& iface,
                                 const std::string& provenance) {
  Diagnostics out;
  const std::string service_name = "lint-probe";
  auto endpoint = parse_uri("http://lint-host:8080/services/lint-probe");
  if (!endpoint.is_ok()) {
    out.push_back({"wsdl-roundtrip", provenance,
                   "internal: probe URI failed to parse"});
    return out;
  }
  std::string wsdl = soap::emit_wsdl(iface, service_name, endpoint.value());
  auto doc = soap::parse_wsdl(wsdl);
  if (!doc.is_ok()) {
    out.push_back({"wsdl-roundtrip", provenance,
                   "emitted WSDL does not parse: " + doc.status().to_string()});
    return out;
  }
  if (!(doc.value().interface == iface)) {
    out.push_back({"wsdl-roundtrip", provenance,
                   "descriptor does not survive the WSDL round-trip "
                   "(emit_wsdl + parse_wsdl produced a different "
                   "interface)"});
  }
  if (doc.value().service_name != service_name) {
    out.push_back({"wsdl-roundtrip", provenance,
                   "service name does not survive the WSDL round-trip"});
  }
  if (doc.value().endpoint.to_string() != endpoint.value().to_string()) {
    out.push_back({"wsdl-roundtrip", provenance,
                   "endpoint does not survive the WSDL round-trip"});
  }
  return out;
}

Diagnostics check_vsr_entries(const std::vector<soap::RegistryEntry>& entries,
                              const VsrCheckContext& ctx) {
  Diagnostics out;
  for (const auto& entry : entries) {
    const std::string subject = "vsr entry '" + entry.name + "' (origin " +
                                entry.origin + ")";
    auto doc = soap::parse_wsdl(entry.wsdl);
    if (!doc.is_ok()) {
      out.push_back({"vsr-bad-wsdl", subject,
                     "stored WSDL does not parse: " +
                         doc.status().to_string()});
      continue;
    }
    core::VirtualServiceGateway* vsg =
        ctx.vsg_for_origin ? ctx.vsg_for_origin(entry.origin) : nullptr;
    if (vsg == nullptr) {
      out.push_back({"vsr-unknown-origin", subject,
                     "origin island has no live gateway"});
      continue;
    }
    if (!vsg->is_exposed(entry.name)) {
      out.push_back({"vsr-dangling-entry", subject,
                     "service is in the VSR but no longer exposed by its "
                     "origin gateway"});
      continue;
    }
    const std::string advertised = doc.value().endpoint.to_string();
    const std::string actual = vsg->exposure_uri(entry.name).to_string();
    if (advertised != actual) {
      out.push_back({"vsr-endpoint-mismatch", subject,
                     "advertised endpoint " + advertised +
                         " != live exposure URI " + actual});
    }
    if (ctx.net != nullptr) {
      auto resolved = core::resolve_endpoint(*ctx.net, doc.value().endpoint);
      if (!resolved.is_ok()) {
        out.push_back({"vsr-unresolvable-endpoint", subject,
                       "advertised endpoint " + advertised +
                           " does not resolve: " +
                           resolved.status().to_string()});
      }
    }
  }
  return out;
}

std::string format_diagnostics(const Diagnostics& diags) {
  std::ostringstream os;
  for (const auto& d : diags) {
    os << d.check << ": " << d.subject << ": " << d.message << "\n";
  }
  return os.str();
}

}  // namespace hcm::lint
