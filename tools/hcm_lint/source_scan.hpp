// Lightweight source scanner pass of hcm_lint (plain C++ over the
// source tree, no compiler involved — same spirit as the WSDL pass):
//   - every by-value Status / Result<...> returning signature declared
//     in src/common and src/core headers must carry [[nodiscard]];
//   - no statement anywhere under src/ may call one of those functions
//     and discard the result (the compiler enforces this only where
//     the attribute is present; the scanner enforces the closure).
// Heuristic by design: it tokenizes a comment- and string-stripped
// view of each file, which is exact enough for this tree's style and
// is itself pinned by tests/tools/hcm_lint_test.cpp.
#pragma once

#include <filesystem>
#include <set>
#include <string>

#include "hcm_lint/lint.hpp"

namespace hcm::lint {

// Replaces comments and string/char literal bodies with spaces,
// preserving offsets and line numbers.
[[nodiscard]] std::string strip_comments_and_strings(std::string_view src);

// Names of functions declared in `header_text` (already-stripped or
// raw) that return Status or Result<...> by value.
[[nodiscard]] std::set<std::string> collect_status_functions(
    const std::string& header_text);

// Declarations returning Status/Result<...> by value that lack
// [[nodiscard]]. `filename` is used for provenance only.
[[nodiscard]] Diagnostics scan_nodiscard_text(const std::string& text,
                                              const std::string& filename);

// Whole statements of the form `obj.fn(...);` / `fn(...);` where fn is
// in `fns` — i.e. the returned Status/Result is discarded.
[[nodiscard]] Diagnostics scan_discarded_calls_text(
    const std::string& text, const std::string& filename,
    const std::set<std::string>& fns);

struct SourceScanReport {
  Diagnostics diags;
  std::size_t headers_scanned = 0;
  std::size_t files_scanned = 0;
  std::set<std::string> status_functions;
};

// Runs both passes over a repo checkout: the [[nodiscard]] presence
// check on headers under src/common and src/core, then the
// discarded-call scan over every .cpp/.hpp under src/.
[[nodiscard]] SourceScanReport scan_sources(
    const std::filesystem::path& repo_root);

}  // namespace hcm::lint
