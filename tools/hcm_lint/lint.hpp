// hcm_lint: static consistency checker for the machine-readable
// artifacts that replace per-service glue code. The paper's zero-glue
// property (§3.2, proxy auto-generation) rests on InterfaceDesc, WSDL
// and VSR entries staying mutually consistent; these checks make that
// verifiable. Built as a normal CMake target and run via ctest; any
// diagnostic fails the build. docs/CORRECTNESS.md documents the rules.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/interface_desc.hpp"
#include "core/vsg.hpp"
#include "obs/metrics.hpp"
#include "net/network.hpp"
#include "soap/uddi.hpp"
#include "store/codec.hpp"

namespace hcm::lint {

struct Diagnostic {
  std::string check;    // invariant id, e.g. "duplicate-method"
  std::string subject;  // provenance: service/interface/file
  std::string message;  // human-readable violation
};

using Diagnostics = std::vector<Diagnostic>;

// Structural invariants on one interface descriptor:
//   - interface and method names are non-empty,
//   - no duplicate method names (proxy dispatch is by name),
//   - one_way methods return kNull (no reply exists to carry a value),
//   - every param/return ValueType is a valid, codec-representable
//     enumerator (survives the binary codec and the WSDL type table).
[[nodiscard]] Diagnostics check_interface(const InterfaceDesc& iface,
                                          const std::string& provenance);

// Round-trip invariant: emit_wsdl followed by parse_wsdl must
// reproduce the descriptor, the service name and the endpoint exactly.
// Drift here means the VSR advertises something other than what the
// island exposes.
[[nodiscard]] Diagnostics check_wsdl_roundtrip(const InterfaceDesc& iface,
                                               const std::string& provenance);

// Liveness of VSR entries against the gateways that published them.
struct VsrCheckContext {
  // Resolves an entry's origin island to its live VSG (nullptr if the
  // island is unknown).
  std::function<core::VirtualServiceGateway*(const std::string& origin)>
      vsg_for_origin;
  // Optional: when set, entry endpoints must also resolve to a network
  // endpoint (catches URIs naming nodes that left the simulation).
  net::Network* net = nullptr;
};

// For every registry entry: the WSDL parses, the origin island exists,
// the service is still exposed there, and the advertised endpoint is
// the exposure's actual URI.
[[nodiscard]] Diagnostics check_vsr_entries(
    const std::vector<soap::RegistryEntry>& entries,
    const VsrCheckContext& ctx);

// --- registry wire contract --------------------------------------------
// One request/response exemplar for a registry wire op. The fixture's
// request params and response value must survive both value codecs
// (binary and XML) value-for-value — they are what actually crosses the
// backbone for that op.
struct WireFixture {
  std::string op;  // mounted method name ("publish", "changesSince", ...)
  soap::NamedValues request;
  Value response;
};

// Registry wire contract: every mounted wire op has at least one
// fixture ("registry-wire-uncovered" otherwise — adding an op without
// extending the fixture set fails the lint run), every fixture names a
// mounted op ("registry-wire-unknown-op"), and each fixture value
// round-trips the binary Value codec and the XML value encoding
// ("registry-wire-codec").
[[nodiscard]] Diagnostics check_registry_wire(
    const std::vector<std::string>& wire_ops,
    const std::vector<WireFixture>& fixtures);

// The canonical fixture set covering soap::UddiRegistry's ops, one
// representative exemplar per op, shaped like the live handlers'
// requests/responses.
[[nodiscard]] std::vector<WireFixture> registry_wire_fixtures();

// --- store record contract ---------------------------------------------
// One exemplar per durable-store record type. Mirrors the registry-wire
// rule: the on-disk log format is a compatibility surface exactly like
// the wire, so adding a store::RecordType without a round-trip fixture
// fails the lint run.
struct StoreRecordFixture {
  store::Record record;  // exemplar; record.type declares what it covers
};

// Store record contract: every enumerator store::all_record_types()
// reports has at least one fixture ("store-record-uncovered"), and each
// fixture survives encode -> decode with struct equality and re-encodes
// byte-identically ("store-record-codec" — a canonical encoding is what
// makes the log's hash chain and fsck's digests reproducible).
[[nodiscard]] Diagnostics check_store_records(
    const std::vector<store::RecordType>& types,
    const std::vector<StoreRecordFixture>& fixtures);

// The canonical fixture set, one populated exemplar per record type.
[[nodiscard]] std::vector<StoreRecordFixture> store_record_fixtures();

// --- observability contract --------------------------------------------
// Every wire op a gateway mounts must observe its dispatch latency:
//   - "obs-op-missing": the op has no per-op latency histogram in the
//     registry at "<scope>.op.<service>.<method>_us" (expose() failed
//     to register it — instrumentation was bypassed at mount time);
//   - "obs-op-unsampled": the op's call counter shows dispatches but
//     the histogram holds no samples (a completion path skips the
//     observe wrapper, so latency silently vanishes).
// Drive at least one invocation through the gateway before running the
// sampled check, or it can only prove registration, not sampling.
[[nodiscard]] Diagnostics check_vsg_op_metrics(
    const core::VirtualServiceGateway& vsg, const obs::Registry& registry);

// Renders diagnostics one per line ("check: subject: message").
std::string format_diagnostics(const Diagnostics& diags);

}  // namespace hcm::lint
