// hcm_lint driver. Three passes, any diagnostic fails (exit 1):
//   1. descriptor pass — every statically declared InterfaceDesc plus
//      every service a live SmartHome's adapters enumerate is checked
//      structurally and through the WSDL round-trip;
//   2. VSR pass — after a full meta refresh, every registry entry must
//      parse, resolve and match a live exposure on its origin island,
//      and every wire op the live registry mounts must have a
//      round-trip fixture that survives both value codecs;
//   3. source pass — [[nodiscard]] presence on Status/Result APIs in
//      src/common + src/core headers, and no discarded calls to them
//      anywhere under src/ (run when --root <repo> is given, as the
//      ctest registration does).
#include <cstdio>
#include <string>
#include <vector>

#include "core/adapters/x10_adapter.hpp"
#include "havi/fcm_av.hpp"
#include "hcm_lint/lint.hpp"
#include "hcm_lint/source_scan.hpp"
#include "testbed/home.hpp"

using namespace hcm;

namespace {

struct NamedInterface {
  std::string provenance;
  InterfaceDesc iface;
};

std::vector<NamedInterface> static_interfaces() {
  return {
      {"testbed::LaserdiscPlayer", testbed::LaserdiscPlayer::describe_interface()},
      {"havi::VcrFcm", havi::VcrFcm::describe_interface()},
      {"havi::DvCameraFcm", havi::DvCameraFcm::describe_interface()},
      {"havi::DisplayFcm", havi::DisplayFcm::describe_interface()},
      {"havi::TunerFcm", havi::TunerFcm::describe_interface()},
      {"core::X10Adapter(dimmable)", core::X10Adapter::switchable_interface(true)},
      {"core::X10Adapter(appliance)", core::X10Adapter::switchable_interface(false)},
  };
}

void append(lint::Diagnostics& all, lint::Diagnostics more) {
  all.insert(all.end(), more.begin(), more.end());
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--root") root = argv[i + 1];
  }

  lint::Diagnostics all;

  // --- pass 1a: statically declared descriptors ------------------------
  std::size_t interfaces_checked = 0;
  for (const auto& [provenance, iface] : static_interfaces()) {
    append(all, lint::check_interface(iface, provenance));
    append(all, lint::check_wsdl_roundtrip(iface, provenance));
    ++interfaces_checked;
  }

  // --- pass 1b + 2: the live testbed ----------------------------------
  sim::Scheduler sched;
  testbed::SmartHome home(sched);
  Status refreshed = home.refresh();
  if (!refreshed.is_ok()) {
    all.push_back({"testbed-refresh", "SmartHome",
                   "meta refresh failed: " + refreshed.to_string()});
  }

  // Every service each island's adapter can enumerate (this reaches the
  // descriptors the Jini/HAVi/X10/mail registrations carry at runtime).
  for (const char* island :
       {"jini-island", "havi-island", "x10-island", "mail-island"}) {
    auto* isl = home.meta->island(island);
    if (isl == nullptr) {
      all.push_back({"testbed-island", island, "island missing from meta"});
      continue;
    }
    bool listed = false;
    isl->pcm->adapter().list_services(
        [&](Result<std::vector<core::LocalService>> services) {
          listed = true;
          if (!services.is_ok()) {
            all.push_back({"adapter-list", island,
                           "list_services failed: " +
                               services.status().to_string()});
            return;
          }
          for (const auto& service : services.value()) {
            const std::string provenance =
                std::string(island) + "/" + service.name;
            append(all, lint::check_interface(service.interface, provenance));
            append(all,
                   lint::check_wsdl_roundtrip(service.interface, provenance));
            ++interfaces_checked;
          }
        });
    sim::run_until_done(sched, [&] { return listed; });
    if (!listed) {
      all.push_back({"adapter-list", island, "list_services never completed"});
    }
  }

  // VSR pass: fetch every entry over the real UDDI protocol.
  std::vector<soap::RegistryEntry> entries;
  bool fetched = false;
  soap::UddiClient uddi(home.net, home.vsr_node->id(), home.vsr->endpoint());
  uddi.list_all([&](Result<std::vector<soap::RegistryEntry>> r) {
    fetched = true;
    if (!r.is_ok()) {
      all.push_back({"vsr-list", "uddi",
                     "list_all failed: " + r.status().to_string()});
      return;
    }
    entries = std::move(r).take();
  });
  sim::run_until_done(sched, [&] { return fetched; });

  lint::VsrCheckContext ctx;
  ctx.net = &home.net;
  ctx.vsg_for_origin = [&](const std::string& origin) {
    auto* isl = home.meta->island(origin);
    return isl != nullptr ? isl->vsg.get() : nullptr;
  };
  append(all, lint::check_vsr_entries(entries, ctx));

  // Registry wire contract: the ops the live registry actually mounts,
  // checked against the canonical fixture set.
  const auto wire_ops = home.vsr->registry().wire_ops();
  append(all,
         lint::check_registry_wire(wire_ops, lint::registry_wire_fixtures()));

  // Store record contract: the on-disk log format is a compatibility
  // surface like the wire — every record type the durable store can
  // write must have a codec round-trip fixture.
  append(all, lint::check_store_records(store::all_record_types(),
                                        lint::store_record_fixtures()));

  // --- pass 2b: observability contract ---------------------------------
  // Drive one real invocation through the meta layer so the sampled
  // check can distinguish "registered but never observed" from "no
  // traffic yet", then require every mounted op on every island's
  // gateway to carry per-op latency metrics.
  bool invoked = false;
  home.havi_adapter->invoke("laserdisc-1", "getStatus", {},
                            [&](Result<Value> r) {
                              invoked = true;
                              if (!r.is_ok()) {
                                all.push_back(
                                    {"obs-probe", "laserdisc-1.getStatus",
                                     "probe invocation failed: " +
                                         r.status().to_string()});
                              }
                            });
  sim::run_until_done(sched, [&] { return invoked; });
  std::size_t ops_checked = 0;
  for (const char* island :
       {"jini-island", "havi-island", "x10-island", "mail-island"}) {
    auto* isl = home.meta->island(island);
    if (isl == nullptr) continue;
    ops_checked += isl->vsg->exposed_ops().size();
    append(all,
           lint::check_vsg_op_metrics(*isl->vsg, obs::Registry::global()));
  }

  // --- pass 3: source scan ---------------------------------------------
  std::size_t files_scanned = 0;
  if (!root.empty()) {
    auto report = lint::scan_sources(root);
    files_scanned = report.files_scanned + report.headers_scanned;
    append(all, std::move(report.diags));
    // A wrong --root must not silently degrade into a 0-file pass.
    if (files_scanned == 0) {
      all.push_back({"source-scan", root,
                     "no sources found under <root>/src — bad --root?"});
    }
  }

  if (!all.empty()) {
    std::fprintf(stderr, "hcm_lint: %zu violation(s)\n%s", all.size(),
                 lint::format_diagnostics(all).c_str());
    return 1;
  }
  std::printf(
      "hcm_lint: OK — %zu interfaces, %zu VSR entries, %zu wire ops, "
      "%zu instrumented vsg ops, %zu source files, 0 violations\n",
      interfaces_checked, entries.size(), wire_ops.size(), ops_checked,
      files_scanned);
  return 0;
}
