// hcm_top: text dashboard over fleet telemetry (docs/OBSERVABILITY.md §5).
//
//   hcm_top <series.json> [--top N] [--window <sec>]
//
// The input is either a full recorder dump (`hcm-series-v1`, written by
// TimeSeriesRecorder::write_json / the ci/check.sh soak stage) or a
// single getSeries reply piped to a file — the "live" path is polling
// the wire op and re-rendering, and both shapes parse here. Five
// panels, mirroring what an operator scans first during a soak run:
//
//   HEALTH    overall state + per-rule verdicts + recent transitions
//   TOP OPS   top-N `*_us` histograms by latest p99 (call count, rate)
//   SHARDS    per-shard event throughput (sim.shard.N.events deltas)
//   WIRE POOL block-pool occupancy vs high water, hit/fallback rates
//   DROPS     nonzero drop/backlog counters (drops, retries, dupes)
//
// Rates are virtual-time rates from the finest retention tier, so a
// dump from a deterministic run renders identically everywhere. Exits
// 0 with at least one data row, 1 on empty/invalid input, 2 on usage.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/value.hpp"

using hcm::Value;

namespace {

// One metric's finest-tier window, plus the tier geometry needed to
// turn count deltas into per-second rates.
struct SeriesView {
  double period_s = 1.0;
  std::int64_t t0_us = 0;
  std::vector<std::int64_t> values;

  [[nodiscard]] std::int64_t latest() const {
    return values.empty() ? 0 : values.back();
  }
  // Mean per-second rate over up to `span` trailing samples.
  [[nodiscard]] double rate(std::size_t span) const {
    if (values.size() < 2 || period_s <= 0) return 0.0;
    const std::size_t n = std::min(span, values.size() - 1);
    const double delta = static_cast<double>(
        values.back() - values[values.size() - 1 - n]);
    return delta / (static_cast<double>(n) * period_s);
  }
};

struct Dashboard {
  std::int64_t now_us = 0;
  std::int64_t samples = 0;
  std::int64_t dropped_series = 0;
  std::string hash;
  std::map<std::string, SeriesView> series;
  Value health;  // kNull when the dump carries no monitor state
};

std::int64_t map_int(const hcm::ValueMap& m, const char* key,
                     std::int64_t fallback = 0) {
  auto it = m.find(key);
  return it != m.end() && it->second.is_int() ? it->second.as_int()
                                              : fallback;
}

std::string map_str(const hcm::ValueMap& m, const char* key) {
  auto it = m.find(key);
  return it != m.end() && it->second.is_string() ? it->second.as_string()
                                                 : std::string();
}

SeriesView view_from_tier(const hcm::ValueMap& tier,
                          std::int64_t default_period_us) {
  SeriesView sv;
  sv.period_s =
      static_cast<double>(map_int(tier, "period_us", default_period_us)) /
      1e6;
  sv.t0_us = map_int(tier, "t0_us");
  auto it = tier.find("values");
  if (it != tier.end() && it->second.is_list()) {
    for (const Value& v : it->second.as_list()) {
      if (v.is_int()) sv.values.push_back(v.as_int());
    }
  }
  return sv;
}

// Accepts both wire shapes. A dump stores each series as a list of
// per-tier windows (finest first); a getSeries reply stores one window
// per series with the period hoisted to the top level.
bool load(const Value& root, Dashboard& out) {
  if (!root.is_map()) return false;
  const hcm::ValueMap& m = root.as_map();
  const std::string format = map_str(m, "format");
  const bool is_dump = format == "hcm-series-v1";
  if (!is_dump && m.count("period_us") == 0) return false;
  out.now_us = map_int(m, "now_us");
  out.samples = map_int(m, "samples");
  out.dropped_series = map_int(m, "dropped_series");
  out.hash = map_str(m, "hash");
  auto hit = m.find("health");
  if (hit != m.end()) out.health = hit->second;
  auto sit = m.find("series");
  if (sit == m.end() || !sit->second.is_map()) return false;
  const std::int64_t top_period = map_int(m, "period_us", 1'000'000);
  for (const auto& [name, entry] : sit->second.as_map()) {
    if (is_dump) {
      if (!entry.is_list() || entry.as_list().empty()) continue;
      const Value& finest = entry.as_list().front();
      if (!finest.is_map()) continue;
      out.series[name] = view_from_tier(finest.as_map(), top_period);
    } else {
      if (!entry.is_map()) continue;
      out.series[name] = view_from_tier(entry.as_map(), top_period);
    }
  }
  return true;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

const SeriesView* find_series(const Dashboard& d, const std::string& name) {
  auto it = d.series.find(name);
  return it == d.series.end() ? nullptr : &it->second;
}

std::string fmt_duration(std::int64_t us) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1fs", static_cast<double>(us) / 1e6);
  return buf;
}

void bar(char* out, std::size_t width, double frac) {
  const auto fill = static_cast<std::size_t>(
      frac * static_cast<double>(width) + 0.5);
  for (std::size_t i = 0; i < width; ++i) out[i] = i < fill ? '#' : '.';
  out[width] = '\0';
}

int render_health(const Dashboard& d) {
  if (!d.health.is_map()) return 0;
  const hcm::ValueMap& h = d.health.as_map();
  std::printf("HEALTH  overall=%s  transitions=%lld\n",
              map_str(h, "state").c_str(),
              static_cast<long long>(map_int(h, "transitions")));
  int rows = 0;
  auto rit = h.find("rules");
  if (rit != h.end() && rit->second.is_map()) {
    for (const auto& [name, rv] : rit->second.as_map()) {
      if (!rv.is_map()) continue;
      const hcm::ValueMap& r = rv.as_map();
      auto tv = r.find("value");
      const double value =
          tv == r.end() ? 0.0
          : tv->second.is_double()
              ? tv->second.as_double()
              : static_cast<double>(tv->second.is_int() ? tv->second.as_int()
                                                        : 0);
      std::printf("  %-8s %-24s %s(%s)  value=%.3g  at %s\n",
                  map_str(r, "state").c_str(), name.c_str(),
                  map_str(r, "kind").c_str(), map_str(r, "metric").c_str(),
                  value, map_str(r, "series").c_str());
      ++rows;
    }
  }
  auto recent = h.find("recent");
  if (recent != h.end() && recent->second.is_list()) {
    for (const Value& trv : recent->second.as_list()) {
      if (!trv.is_map()) continue;
      const hcm::ValueMap& tr = trv.as_map();
      std::printf("  [%s] %s: %s -> %s (%s)\n",
                  fmt_duration(map_int(tr, "when_us")).c_str(),
                  map_str(tr, "rule").c_str(), map_str(tr, "from").c_str(),
                  map_str(tr, "to").c_str(), map_str(tr, "series").c_str());
      ++rows;
    }
  }
  std::printf("\n");
  return rows;
}

int render_top_ops(const Dashboard& d, std::size_t top_n,
                   std::size_t rate_span) {
  struct Row {
    std::string metric;  // histogram base name, ".p99" stripped
    std::int64_t p99;
    std::int64_t count;
    double rate;
  };
  std::vector<Row> rows;
  for (const auto& [name, sv] : d.series) {
    if (!ends_with(name, "_us.p99")) continue;
    Row row;
    row.metric = name.substr(0, name.size() - 4);
    row.p99 = sv.latest();
    const SeriesView* count =
        find_series(d, row.metric.substr(0, row.metric.size() - 3) +
                           ".calls");
    if (count == nullptr) {
      count = find_series(d, row.metric + ".count");
    }
    row.count = count != nullptr ? count->latest() : 0;
    row.rate = count != nullptr ? count->rate(rate_span) : 0.0;
    rows.push_back(std::move(row));
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const Row& a, const Row& b) { return a.p99 > b.p99; });
  const std::size_t total = rows.size();
  if (rows.size() > top_n) rows.resize(top_n);
  std::printf("TOP OPS BY P99  (%zu of %zu histograms)\n", rows.size(),
              total);
  std::printf("  %-44s %10s %10s %10s\n", "metric", "p99_us", "calls",
              "calls/s");
  for (const Row& r : rows) {
    std::printf("  %-44s %10lld %10lld %10.2f\n", r.metric.c_str(),
                static_cast<long long>(r.p99),
                static_cast<long long>(r.count), r.rate);
  }
  std::printf("\n");
  return static_cast<int>(rows.size());
}

int render_shards(const Dashboard& d, std::size_t rate_span) {
  struct Row {
    std::string name;
    std::int64_t events;
    double rate;
  };
  std::vector<Row> rows;
  for (const auto& [name, sv] : d.series) {
    const bool shard = name.rfind("sim.shard.", 0) == 0 &&
                       ends_with(name, ".events");
    if (!shard && name != "sim.events") continue;
    rows.push_back({name, sv.latest(), sv.rate(rate_span)});
  }
  if (rows.empty()) return 0;
  double max_rate = 0;
  for (const Row& r : rows) max_rate = std::max(max_rate, r.rate);
  const SeriesView* windows = find_series(d, "sim.windows");
  std::printf("SHARD THROUGHPUT");
  if (windows != nullptr) {
    std::printf("  windows=%lld",
                static_cast<long long>(windows->latest()));
  }
  std::printf("\n  %-20s %12s %12s  utilization\n", "shard", "events",
              "events/s");
  for (const Row& r : rows) {
    char gauge[33];
    bar(gauge, 32, max_rate > 0 ? r.rate / max_rate : 0.0);
    std::printf("  %-20s %12lld %12.1f  %s\n", r.name.c_str(),
                static_cast<long long>(r.events), r.rate, gauge);
  }
  std::printf("\n");
  return static_cast<int>(rows.size());
}

// Wire block-pool occupancy (docs/PERFORMANCE.md §"Block pool"): the
// series published by net::publish_wire_pool_gauges. Occupancy reads
// as a bar against the high-water mark; a nonzero fallback rate means
// the pool cap is undersized for the live-message load.
int render_pool(const Dashboard& d, std::size_t rate_span) {
  const SeriesView* in_use = find_series(d, "wire.block_pool.blocks_in_use");
  if (in_use == nullptr) return 0;
  const SeriesView* high = find_series(d, "wire.block_pool.high_water");
  const SeriesView* hits = find_series(d, "wire.block_pool.pool_hits");
  const SeriesView* fallbacks =
      find_series(d, "wire.block_pool.heap_fallbacks");
  const std::int64_t high_water = high != nullptr ? high->latest() : 0;
  char gauge[33];
  bar(gauge, 32,
      high_water > 0 ? static_cast<double>(in_use->latest()) /
                           static_cast<double>(high_water)
                     : 0.0);
  std::printf("WIRE POOL  blocks_in_use=%lld  high_water=%lld  %s\n",
              static_cast<long long>(in_use->latest()),
              static_cast<long long>(high_water), gauge);
  int rows = 1;
  if (hits != nullptr) {
    std::printf("  %-44s %10lld %10.2f/s\n", "pool_hits",
                static_cast<long long>(hits->latest()),
                hits->rate(rate_span));
    ++rows;
  }
  if (fallbacks != nullptr) {
    std::printf("  %-44s %10lld %10.2f/s%s\n", "heap_fallbacks",
                static_cast<long long>(fallbacks->latest()),
                fallbacks->rate(rate_span),
                fallbacks->latest() > 0 ? "  (pool undersized)" : "");
    ++rows;
  }
  std::printf("\n");
  return rows;
}

int render_drops(const Dashboard& d, std::size_t rate_span) {
  static constexpr const char* kSuffixes[] = {
      ".dropped",  ".drops",   ".retries",        ".duplicates",
      ".faults",   ".errors",  ".leases_expired", ".spans_dropped",
      ".datagrams_dropped"};
  struct Row {
    std::string name;
    std::int64_t total;
    double rate;
  };
  std::vector<Row> rows;
  for (const auto& [name, sv] : d.series) {
    const bool match =
        std::any_of(std::begin(kSuffixes), std::end(kSuffixes),
                    [&name](const char* s) { return ends_with(name, s); });
    if (!match || sv.latest() == 0) continue;
    rows.push_back({name, sv.latest(), sv.rate(rate_span)});
  }
  std::printf("DROPS / BACKLOG  (%zu nonzero)\n", rows.size());
  for (const Row& r : rows) {
    std::printf("  %-44s %10lld %10.2f/s\n", r.name.c_str(),
                static_cast<long long>(r.total), r.rate);
  }
  std::printf("\n");
  return static_cast<int>(rows.size());
}

int usage() {
  std::fprintf(
      stderr,
      "usage: hcm_top <series.json> [--top N] [--window SECONDS]\n"
      "  series.json: TimeSeriesRecorder dump (hcm-series-v1) or a\n"
      "  getSeries reply; re-run per poll to follow a live service\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::size_t top_n = 10;
  double window_s = 30.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--top" && i + 1 < argc) {
      top_n = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--window" && i + 1 < argc) {
      window_s = std::strtod(argv[++i], nullptr);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage();
    }
  }
  if (path.empty() || top_n == 0 || window_s <= 0) return usage();

  std::ifstream f(path, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "hcm_top: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream text;
  text << f.rdbuf();
  auto parsed = hcm::json_parse(text.str());
  if (!parsed.is_ok()) {
    std::fprintf(stderr, "hcm_top: %s: %s\n", path.c_str(),
                 parsed.status().message().c_str());
    return 1;
  }
  Dashboard d;
  if (!load(parsed.value(), d)) {
    std::fprintf(stderr, "hcm_top: %s: not a series dump or getSeries reply\n",
                 path.c_str());
    return 1;
  }

  std::printf("hcm_top  t=%s  series=%zu  samples=%lld  dropped=%lld",
              fmt_duration(d.now_us).c_str(), d.series.size(),
              static_cast<long long>(d.samples),
              static_cast<long long>(d.dropped_series));
  if (!d.hash.empty()) std::printf("  hash=%s", d.hash.c_str());
  std::printf("\n\n");

  // Rate window in samples of the finest tier present.
  double period_s = 1.0;
  if (!d.series.empty()) period_s = d.series.begin()->second.period_s;
  const auto rate_span = static_cast<std::size_t>(
      std::max(1.0, window_s / std::max(period_s, 1e-9)));

  int rows = 0;
  rows += render_health(d);
  rows += render_top_ops(d, top_n, rate_span);
  rows += render_shards(d, rate_span);
  rows += render_pool(d, rate_span);
  rows += render_drops(d, rate_span);
  std::printf("rows: %d\n", rows);
  if (rows == 0) {
    std::fprintf(stderr, "hcm_top: no data rows in %s\n", path.c_str());
    return 1;
  }
  return 0;
}
