// Lexing layer of hcm_analyze: a real C++ token stream over raw source
// text that correctly skips comments, string/char literals and raw
// strings — shared by every pass so no rule ever fires on text inside a
// literal (the failure mode of the old ad-hoc scanning in
// tools/hcm_lint/source_scan.cpp, now ported onto blank_noncode()).
// Also extracts the `// hcm:allow(<rule>): <reason>` escape-hatch
// annotations, `#include` targets, and (via a heuristic scope walker
// pinned by tests/tools/hcm_analyze_test.cpp) function body ranges used
// for manifest-scoped passes.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace hcm::analyze {

enum class TokKind {
  kIdent,      // identifiers and keywords
  kNumber,     // numeric literals (pp-number, loosely)
  kString,     // string literal including quotes; raw strings collapse here
  kChar,       // character literal
  kPunct,      // operator / punctuator (longest-match for common digraphs)
  kDirective,  // whole preprocessor line(s), backslash-continuations joined
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  // 1-based line of the token's first character
};

// One `hcm:allow(rule[, rule...]): reason` annotation found in a
// comment. An allow suppresses matching findings on its own line and on
// the following line (so it can trail the flagged statement or sit on
// its own line directly above it). A reason is mandatory: suppression
// without a recorded justification is itself a finding.
struct AllowNote {
  int line = 0;
  std::vector<std::string> rules;
  std::string reason;
  bool malformed = false;  // "hcm:allow" seen but rules or reason missing
};

struct TokenStream {
  std::vector<Token> tokens;
  std::vector<AllowNote> allows;
};

// Lexes `src`. Never fails: unterminated literals end at newline (or
// EOF for raw strings / block comments), matching compiler recovery.
[[nodiscard]] TokenStream lex(std::string_view src);

// Comment- and literal-blanked copy of `src`: comment bodies and
// string/char literal contents become spaces, newlines and byte offsets
// are preserved. Raw-string-safe (R"(...)" is blanked in full),
// unlike the old hcm_lint strip this replaces.
[[nodiscard]] std::string blank_noncode(std::string_view src);

struct IncludeRef {
  std::string path;  // as written between the delimiters
  int line = 0;
  bool angled = false;  // <...> (system) vs "..." (project)
};

// All #include targets in the stream, in order.
[[nodiscard]] std::vector<IncludeRef> extract_includes(const TokenStream& ts);

// A function body found by the scope walker. `qualified` includes
// explicit qualifiers and enclosing class names ("Stream::send");
// `name` is the bare identifier ("send"). Lines span the definition
// head through the closing brace, so nested lambdas are inside.
struct FunctionRange {
  std::string name;
  std::string qualified;
  int begin_line = 0;
  int end_line = 0;
};

[[nodiscard]] std::vector<FunctionRange> function_ranges(
    const TokenStream& ts);

// Scope-aware statement visitor for declaration-shaped passes.
// `on_statement(begin, end, ns_scope, fn_scope)` is called with token
// indices [begin, end) covering one statement head — terminated by `;`
// at brace/paren depth 0, or by the `{` of a braced initializer —
// together with whether the statement sits at namespace scope or inside
// a function body (class-member scope reports neither).
struct ScopeVisitor {
  // on_statement(begin, end, at_namespace_scope, in_function)
  void (*on_statement)(void* ctx, const TokenStream& ts, std::size_t begin,
                       std::size_t end, bool ns_scope, bool fn_scope) = nullptr;
  void* ctx = nullptr;
};

void walk_scopes(const TokenStream& ts, const ScopeVisitor& visitor);

}  // namespace hcm::analyze
