// Shared finding/report machinery of hcm_analyze: the Finding record
// every pass emits, suppression via inline `hcm:allow` notes and the
// checked-in baseline file, and the machine-readable JSON report
// (emitted with --json, schema round-tripped by report_from_json so CI
// consumers and the fixture tests parse exactly what the tool writes).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "hcm_analyze/token_stream.hpp"

namespace hcm::analyze {

struct Finding {
  Finding() = default;
  Finding(std::string rule_id, std::string path, int line_no,
          std::string text, bool was_suppressed = false,
          std::string why = {})
      : rule(std::move(rule_id)),
        file(std::move(path)),
        line(line_no),
        message(std::move(text)),
        suppressed(was_suppressed),
        reason(std::move(why)) {}

  std::string rule;     // stable rule id, e.g. "layering-cycle"
  std::string file;     // repo-relative path
  int line = 0;         // 1-based
  std::string message;  // human-readable violation
  bool suppressed = false;
  std::string reason;  // justification (from hcm:allow or "baseline")

  friend bool operator==(const Finding& a, const Finding& b) {
    return a.rule == b.rule && a.file == b.file && a.line == b.line &&
           a.message == b.message && a.suppressed == b.suppressed &&
           a.reason == b.reason;
  }
};

using Findings = std::vector<Finding>;

struct Report {
  Findings findings;
  std::size_t files_scanned = 0;

  [[nodiscard]] std::size_t unsuppressed() const {
    std::size_t n = 0;
    for (const Finding& f : findings) {
      if (!f.suppressed) ++n;
    }
    return n;
  }
};

// One baseline entry: a finding grandfathered by rule + file + the
// trimmed text of the flagged source line (text-keyed so ordinary line
// churn elsewhere in the file does not invalidate it).
struct BaselineEntry {
  std::string rule;
  std::string file;
  std::string line_text;
};

// Parses the baseline file format: one `rule|file|line-text` per line,
// '#' comments and blank lines ignored.
[[nodiscard]] std::vector<BaselineEntry> parse_baseline(
    const std::string& text);

// Renders entries back into the file format (with a header comment).
[[nodiscard]] std::string render_baseline(
    const std::vector<BaselineEntry>& entries);

// Marks findings suppressed from (a) hcm:allow notes in their file
// (same line or the line directly above) and (b) baseline entries.
// Appends meta-findings for defects in the suppression machinery
// itself: "allow-malformed" (no rule list or missing reason),
// "allow-stale" (an hcm:allow that suppressed nothing), and
// "baseline-stale" (a baseline entry no current finding matches — so
// the baseline can only shrink). `allows` maps file -> its notes;
// `lines` maps file -> its source split into lines (for baseline
// text matching).
void apply_suppressions(
    Report& report,
    const std::map<std::string, std::vector<AllowNote>>& allows,
    const std::vector<BaselineEntry>& baseline,
    const std::map<std::string, std::vector<std::string>>& lines);

// Enforcement tier (ISSUE 8): the sharded kernel runs src/sim and
// src/core on worker shards, so shard-* findings there are errors that
// no inline allow or baseline entry can excuse. Re-fails any such
// suppressed finding (annotating its message) and returns how many it
// un-suppressed. Run after apply_suppressions.
std::size_t enforce_shard_rules(Report& report);

// Baseline entries for every unsuppressed, non-meta finding (what
// --update-baseline writes).
[[nodiscard]] std::vector<BaselineEntry> baseline_from_findings(
    const Report& report,
    const std::map<std::string, std::vector<std::string>>& lines);

// Splits source text into lines (no terminators), index = line - 1.
[[nodiscard]] std::vector<std::string> split_lines(const std::string& text);

// --- JSON report --------------------------------------------------------

[[nodiscard]] std::string report_to_json(const Report& report);

// Parses a report previously produced by report_to_json. Returns false
// (with *err set) on malformed input. Tolerates unknown object keys so
// the schema can grow.
[[nodiscard]] bool report_from_json(const std::string& json, Report* out,
                                    std::string* err);

// "rule: file:line: message" per finding, suppressed ones annotated.
[[nodiscard]] std::string format_findings(const Findings& findings);

}  // namespace hcm::analyze
