// hcm_analyze driver: multi-pass static analysis over src/ + tools/.
//
//   hcm_analyze --root <repo> [--json out.json] [--manifest path]
//               [--baseline path] [--update-baseline]
//
// Passes (docs/CORRECTNESS.md §"Static analysis"):
//   1. layering     — include DAG vs. the architectural order; cycles.
//   2. determinism  — wall clock / ambient randomness / unordered
//                     iteration banned in src/sim + src/core.
//   3. hot path     — allocation constructs and per-call registry
//                     lookups (obs-hotpath-lookup) gated inside the
//                     PR 5 wire path scopes in hotpath_manifest.txt.
//   4. shard        — mutable namespace-scope / static-local state
//                     across src/; enforcing (unsuppressable) under
//                     src/sim + src/core now the sharded kernel runs
//                     that code on worker threads.
// Suppression: inline `// hcm:allow(rule): reason` or a baseline
// entry; stale suppressions of either kind fail the run, so the
// baseline only shrinks. Exit 1 on any unsuppressed finding.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "hcm_analyze/analysis.hpp"
#include "hcm_analyze/passes.hpp"
#include "hcm_analyze/token_stream.hpp"

namespace fs = std::filesystem;
using namespace hcm::analyze;

namespace {

struct SourceFile {
  std::string rel;
  std::string text;
  TokenStream stream;
};

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void append(Findings& all, Findings more) {
  all.insert(all.end(), more.begin(), more.end());
}

}  // namespace

int main(int argc, char** argv) {
  std::string root_arg;
  std::string json_out;
  std::string manifest_arg;
  std::string baseline_arg;
  bool update_baseline = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : std::string();
    };
    if (arg == "--root") root_arg = next();
    else if (arg == "--json") json_out = next();
    else if (arg == "--manifest") manifest_arg = next();
    else if (arg == "--baseline") baseline_arg = next();
    else if (arg == "--update-baseline") update_baseline = true;
    else {
      std::fprintf(stderr, "hcm_analyze: unknown argument '%s'\n",
                   arg.c_str());
      return 2;
    }
  }
  if (root_arg.empty()) {
    std::fprintf(stderr,
                 "usage: hcm_analyze --root <repo> [--json out.json] "
                 "[--manifest path] [--baseline path] "
                 "[--update-baseline]\n");
    return 2;
  }
  const fs::path root = root_arg;
  const fs::path manifest_path =
      manifest_arg.empty()
          ? root / "tools" / "hcm_analyze" / "hotpath_manifest.txt"
          : fs::path(manifest_arg);
  const fs::path baseline_path =
      baseline_arg.empty() ? root / "tools" / "hcm_analyze" / "baseline.txt"
                           : fs::path(baseline_arg);

  // --- collect + lex ----------------------------------------------------
  std::vector<SourceFile> files;
  for (const char* top : {"src", "tools"}) {
    fs::path dir = root / top;
    if (!fs::exists(dir)) continue;
    for (const auto& e : fs::recursive_directory_iterator(dir)) {
      if (!e.is_regular_file()) continue;
      auto ext = e.path().extension();
      if (ext != ".cpp" && ext != ".hpp") continue;
      SourceFile f;
      f.rel = fs::relative(e.path(), root).generic_string();
      f.text = read_file(e.path());
      files.push_back(std::move(f));
    }
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.rel < b.rel;
            });
  for (SourceFile& f : files) f.stream = lex(f.text);

  Report report;
  report.files_scanned = files.size();
  if (files.empty()) {
    std::fprintf(stderr,
                 "hcm_analyze: no sources under %s/src — bad --root?\n",
                 root_arg.c_str());
    return 1;
  }

  std::set<std::string> known;
  for (const SourceFile& f : files) known.insert(f.rel);

  // --- pass 1: layering -------------------------------------------------
  const LayerConfig layers = default_layers();
  std::map<std::string, std::vector<std::string>> graph;
  for (const SourceFile& f : files) {
    append(report.findings, layering_check_file(f.rel, f.stream, layers));
    std::vector<std::string>& deps = graph[f.rel];
    for (const IncludeRef& inc : extract_includes(f.stream)) {
      if (inc.angled) continue;
      for (const char* prefix : {"src/", "tools/"}) {
        std::string candidate = prefix + inc.path;
        if (known.count(candidate) != 0) {
          deps.push_back(std::move(candidate));
          break;
        }
      }
    }
  }
  append(report.findings, layering_check_cycles(graph));

  // --- pass 2: determinism ----------------------------------------------
  for (const SourceFile& f : files) {
    if (determinism_covered(f.rel)) {
      append(report.findings, determinism_check(f.rel, f.stream));
    }
  }

  // --- pass 3: hot-path allocations -------------------------------------
  std::string manifest_text = read_file(manifest_path);
  if (manifest_text.empty()) {
    report.findings.push_back(
        {"hotpath-missing-file", manifest_path.generic_string(), 0,
         "hot-path manifest missing or empty — the wire-path allocation "
         "gate has nothing to protect"});
  }
  for (const HotScope& scope : parse_manifest(manifest_text)) {
    const SourceFile* hit = nullptr;
    for (const SourceFile& f : files) {
      if (f.rel == scope.path) {
        hit = &f;
        break;
      }
    }
    if (hit == nullptr) {
      report.findings.push_back(
          {"hotpath-missing-file", scope.path, 0,
           "manifest names a file that does not exist — fix "
           "hotpath_manifest.txt when moving hot-path code"});
      continue;
    }
    append(report.findings, hotpath_check(hit->rel, hit->stream, scope));
  }

  // --- pass 4: shard readiness ------------------------------------------
  for (const SourceFile& f : files) {
    if (f.rel.rfind("src/", 0) == 0) {
      append(report.findings, shard_check(f.rel, f.stream));
    }
  }

  // --- suppression ------------------------------------------------------
  std::map<std::string, std::vector<AllowNote>> allows;
  std::map<std::string, std::vector<std::string>> lines;
  for (const SourceFile& f : files) {
    if (!f.stream.allows.empty()) allows[f.rel] = f.stream.allows;
    lines[f.rel] = split_lines(f.text);
  }
  std::vector<BaselineEntry> baseline =
      parse_baseline(read_file(baseline_path));

  if (update_baseline) {
    // Apply inline allows only (empty baseline), then write what's left.
    apply_suppressions(report, allows, {}, lines);
    auto entries = baseline_from_findings(report, lines);
    std::ofstream out(baseline_path, std::ios::binary | std::ios::trunc);
    out << render_baseline(entries);
    std::printf("hcm_analyze: baseline rewritten with %zu entr%s (%s)\n",
                entries.size(), entries.size() == 1 ? "y" : "ies",
                baseline_path.generic_string().c_str());
    return 0;
  }

  apply_suppressions(report, allows, baseline, lines);

  // Shard enforcement (ISSUE 8): the sharded kernel is live, so new
  // unguarded mutable namespace-scope / static-local state under
  // src/sim + src/core is an error no suppression can excuse.
  enforce_shard_rules(report);

  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::binary | std::ios::trunc);
    out << report_to_json(report);
  }

  Findings failing;
  for (const Finding& f : report.findings) {
    if (!f.suppressed) failing.push_back(f);
  }
  if (!failing.empty()) {
    std::fprintf(stderr, "hcm_analyze: %zu violation(s)\n%s",
                 failing.size(), format_findings(failing).c_str());
    return 1;
  }
  std::printf(
      "hcm_analyze: OK — %zu files, 4 passes, %zu finding(s) all "
      "suppressed with recorded justifications\n",
      report.files_scanned, report.findings.size());
  return 0;
}
