#include "hcm_analyze/token_stream.hpp"

#include <algorithm>
#include <array>
#include <cctype>

namespace hcm::analyze {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Longest-match table for the multi-character punctuators the passes
// care to see whole (:: above all — qualification is load-bearing).
constexpr std::array<std::string_view, 21> kPuncts = {
    "<<=", ">>=", "->*", "...", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=",  "&&",  "||",  "++",  "--", "+=", "-=", "*=", "/=", "%="};

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

// Parses an `hcm:allow(rule[, rule...]): reason` annotation. Only a
// comment that *starts* with hcm:allow (after the comment markers) is
// an annotation — prose that merely mentions the syntax is not.
void parse_allow(std::string_view comment, int line,
                 std::vector<AllowNote>& out) {
  while (!comment.empty() &&
         (comment.front() == '/' || comment.front() == '*' ||
          std::isspace(static_cast<unsigned char>(comment.front())))) {
    comment.remove_prefix(1);
  }
  std::size_t pos = comment.rfind("hcm:allow", 0);
  if (pos != 0) return;
  AllowNote note;
  note.line = line;
  std::size_t open = pos + 9;
  if (open >= comment.size() || comment[open] != '(') {
    note.malformed = true;
    out.push_back(std::move(note));
    return;
  }
  std::size_t close = comment.find(')', open);
  if (close == std::string_view::npos) {
    note.malformed = true;
    out.push_back(std::move(note));
    return;
  }
  std::string_view list = comment.substr(open + 1, close - open - 1);
  while (!list.empty()) {
    std::size_t comma = list.find(',');
    std::string_view rule = trim(list.substr(0, comma));
    if (!rule.empty()) note.rules.emplace_back(rule);
    if (comma == std::string_view::npos) break;
    list.remove_prefix(comma + 1);
  }
  std::size_t colon = comment.find(':', close);
  if (colon != std::string_view::npos) {
    note.reason = std::string(trim(comment.substr(colon + 1)));
  }
  if (note.rules.empty() || note.reason.empty()) note.malformed = true;
  out.push_back(std::move(note));
}

// True when the '"' at `i` opens a raw string, i.e. it is preceded by
// R with an optional u8/u/U/L prefix that is itself not glued onto a
// longer identifier.
bool raw_string_at(std::string_view s, std::size_t i) {
  if (i == 0 || s[i] != '"' || s[i - 1] != 'R') return false;
  std::size_t r = i - 1;
  if (r == 0) return true;
  char p = s[r - 1];
  if (!ident_char(p)) return true;
  if ((p == 'u' || p == 'U' || p == 'L') &&
      (r < 2 || !ident_char(s[r - 2]))) {
    return true;
  }
  if (p == '8' && r >= 2 && s[r - 2] == 'u' &&
      (r < 3 || !ident_char(s[r - 3]))) {
    return true;
  }
  return false;
}

// Returns the index one past the closing quote of the raw string whose
// opening '"' is at `i` (or s.size() when unterminated).
std::size_t raw_string_end(std::string_view s, std::size_t i) {
  std::size_t open_paren = s.find('(', i + 1);
  if (open_paren == std::string_view::npos) return s.size();
  std::string closer = ")";
  closer += s.substr(i + 1, open_paren - i - 1);
  closer += '"';
  std::size_t end = s.find(closer, open_paren + 1);
  if (end == std::string_view::npos) return s.size();
  return end + closer.size();
}

}  // namespace

TokenStream lex(std::string_view src) {
  TokenStream ts;
  int line = 1;
  bool at_line_start = true;
  std::size_t i = 0;

  auto count_lines = [&](std::size_t from, std::size_t to) {
    line += static_cast<int>(
        std::count(src.begin() + static_cast<std::ptrdiff_t>(from),
                   src.begin() + static_cast<std::ptrdiff_t>(to), '\n'));
  };

  while (i < src.size()) {
    char c = src[i];
    char next = i + 1 < src.size() ? src[i + 1] : '\0';

    if (c == '\n') {
      ++line;
      at_line_start = true;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }

    if (c == '/' && next == '/') {  // line comment
      std::size_t end = src.find('\n', i);
      if (end == std::string_view::npos) end = src.size();
      parse_allow(src.substr(i, end - i), line, ts.allows);
      i = end;
      continue;
    }
    if (c == '/' && next == '*') {  // block comment
      std::size_t end = src.find("*/", i + 2);
      std::size_t stop = end == std::string_view::npos ? src.size() : end + 2;
      parse_allow(src.substr(i, stop - i), line, ts.allows);
      count_lines(i, stop);
      i = stop;
      continue;
    }

    if (c == '#' && at_line_start) {  // preprocessor directive
      std::size_t begin = i;
      int begin_line = line;
      while (i < src.size()) {
        std::size_t end = src.find('\n', i);
        if (end == std::string_view::npos) {
          i = src.size();
          break;
        }
        // Backslash continuation keeps the directive going.
        std::size_t last = end;
        while (last > i && (src[last - 1] == '\r')) --last;
        if (last > i && src[last - 1] == '\\') {
          ++line;
          i = end + 1;
          continue;
        }
        i = end;
        break;
      }
      ts.tokens.push_back({TokKind::kDirective,
                           std::string(src.substr(begin, i - begin)),
                           begin_line});
      continue;
    }
    at_line_start = false;

    if (raw_string_at(src, i)) {
      // Re-lex: drop the just-consumed prefix identifier if it was
      // emitted (R / uR / u8R glued to the quote is consumed here as
      // one literal instead).
      std::size_t end = raw_string_end(src, i);
      int begin_line = line;
      count_lines(i, end);
      if (!ts.tokens.empty() && ts.tokens.back().kind == TokKind::kIdent) {
        // The prefix identifier (e.g. "R") was already tokenized when
        // the quote follows it directly; merge it into the literal.
        ts.tokens.pop_back();
      }
      ts.tokens.push_back({TokKind::kString,
                           std::string(src.substr(i, end - i)), begin_line});
      i = end;
      continue;
    }

    if (c == '"' || c == '\'') {  // ordinary string / char literal
      char quote = c;
      std::size_t begin = i;
      int begin_line = line;
      ++i;
      while (i < src.size() && src[i] != quote && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < src.size() && src[i + 1] != '\n') ++i;
        ++i;
      }
      if (i < src.size() && src[i] == quote) ++i;
      ts.tokens.push_back({quote == '"' ? TokKind::kString : TokKind::kChar,
                           std::string(src.substr(begin, i - begin)),
                           begin_line});
      continue;
    }

    if (ident_start(c)) {
      std::size_t begin = i;
      while (i < src.size() && ident_char(src[i])) ++i;
      ts.tokens.push_back(
          {TokKind::kIdent, std::string(src.substr(begin, i - begin)), line});
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(next)) != 0)) {
      std::size_t begin = i;
      while (i < src.size() &&
             (ident_char(src[i]) || src[i] == '.' || src[i] == '\'' ||
              ((src[i] == '+' || src[i] == '-') && i > begin &&
               (src[i - 1] == 'e' || src[i - 1] == 'E' || src[i - 1] == 'p' ||
                src[i - 1] == 'P')))) {
        ++i;
      }
      ts.tokens.push_back(
          {TokKind::kNumber, std::string(src.substr(begin, i - begin)), line});
      continue;
    }

    // Punctuator: longest match from the table, else the single char.
    std::string_view rest = src.substr(i);
    std::string_view matched;
    for (std::string_view p : kPuncts) {
      if (rest.substr(0, p.size()) == p) {
        matched = p;
        break;
      }
    }
    if (matched.empty()) matched = rest.substr(0, 1);
    ts.tokens.push_back({TokKind::kPunct, std::string(matched), line});
    i += matched.size();
  }
  return ts;
}

std::string blank_noncode(std::string_view src) {
  std::string out(src);
  enum class State { kCode, kLine, kBlock, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < src.size(); ++i) {
    char c = src[i];
    char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = ' ';
        } else if (raw_string_at(src, i)) {
          // Blank the entire raw literal (delimiters included) in one
          // step — the escape-based states below would misparse it.
          std::size_t end = raw_string_end(src, i);
          for (std::size_t j = i; j < end; ++j) {
            if (src[j] != '\n') out[j] = ' ';
          }
          i = end - 1;
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        char quote = state == State::kString ? '"' : '\'';
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < src.size() && next != '\n') out[++i] = ' ';
        } else if (c == quote) {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::vector<IncludeRef> extract_includes(const TokenStream& ts) {
  std::vector<IncludeRef> out;
  for (const Token& t : ts.tokens) {
    if (t.kind != TokKind::kDirective) continue;
    std::string_view text = t.text;
    std::size_t pos = text.find("include");
    if (pos == std::string_view::npos) continue;
    // Only whitespace may sit between '#' and "include".
    std::string_view between = text.substr(1, pos - 1);
    if (!trim(between).empty()) continue;
    std::size_t open = text.find_first_of("\"<", pos);
    if (open == std::string_view::npos) continue;
    char closer = text[open] == '<' ? '>' : '"';
    std::size_t close = text.find(closer, open + 1);
    if (close == std::string_view::npos) continue;
    out.push_back({std::string(text.substr(open + 1, close - open - 1)),
                   t.line, text[open] == '<'});
  }
  return out;
}

// --- scope walker -------------------------------------------------------

namespace {

struct Scope {
  char kind;  // 'n' namespace, 'c' class, 'f' function, 'b' block/init
  std::string name;
  int fn_index = -1;
};

bool is_control_keyword(const Token& t) {
  return t.kind == TokKind::kIdent &&
         (t.text == "if" || t.text == "for" || t.text == "while" ||
          t.text == "switch" || t.text == "do" || t.text == "else" ||
          t.text == "try" || t.text == "catch");
}

bool has_ident(const std::vector<Token>& toks, std::size_t begin,
               std::size_t end, std::string_view word) {
  for (std::size_t i = begin; i < end; ++i) {
    if (toks[i].kind == TokKind::kIdent && toks[i].text == word) return true;
  }
  return false;
}

// First '(' outside template angles whose previous token is an
// identifier — the function-name paren of a declarator. Returns the
// identifier index or npos.
std::size_t find_name_before_paren(const std::vector<Token>& toks,
                                   std::size_t begin, std::size_t end) {
  int angle = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "<") ++angle;
    if (t.text == ">" && angle > 0) --angle;
    if (t.text == "(" && angle == 0 && i > begin &&
        toks[i - 1].kind == TokKind::kIdent) {
      return i - 1;
    }
  }
  return std::string::npos;
}

// Does [begin, end) contain a single ':' that follows a ')' — the
// shape of a constructor member-initializer list?
bool has_ctor_init_colon(const std::vector<Token>& toks, std::size_t begin,
                         std::size_t end) {
  bool seen_close = false;
  for (std::size_t i = begin; i < end; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == ")") seen_close = true;
    if (t.text == ":" && seen_close) return true;
  }
  return false;
}

struct WalkCallbacks {
  std::vector<FunctionRange>* functions = nullptr;
  const ScopeVisitor* visitor = nullptr;
};

void walk_impl(const TokenStream& ts, const WalkCallbacks& cb) {
  const auto& toks = ts.tokens;
  std::vector<Scope> stack;
  std::vector<FunctionRange> local_fns;
  std::vector<FunctionRange>& fns =
      cb.functions != nullptr ? *cb.functions : local_fns;
  std::size_t stmt = 0;
  int paren = 0;

  auto scope_flags = [&](bool& ns_scope, bool& fn_scope) {
    ns_scope = true;
    fn_scope = false;
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->kind == 'n') continue;
      ns_scope = false;
      if (it->kind == 'b') continue;
      fn_scope = it->kind == 'f';
      return;
    }
  };

  auto emit_stmt = [&](std::size_t begin, std::size_t end) {
    if (cb.visitor == nullptr || cb.visitor->on_statement == nullptr) return;
    if (begin >= end) return;
    bool ns_scope = false;
    bool fn_scope = false;
    scope_flags(ns_scope, fn_scope);
    cb.visitor->on_statement(cb.visitor->ctx, ts, begin, end, ns_scope,
                             fn_scope);
  };

  auto enclosing_class = [&]() -> const Scope* {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->kind == 'c') return &*it;
      if (it->kind == 'f') return nullptr;
    }
    return nullptr;
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kDirective) {
      stmt = i + 1;
      continue;
    }
    if (t.kind != TokKind::kPunct) continue;

    if (t.text == "(") {
      ++paren;
      continue;
    }
    if (t.text == ")") {
      if (paren > 0) --paren;
      continue;
    }
    if (paren > 0) continue;  // inside parens: no statement boundaries

    if (t.text == ";") {
      emit_stmt(stmt, i);
      stmt = i + 1;
      continue;
    }
    if (t.text == ":") {
      // Access specifiers and case/default labels end a "statement".
      if (i == stmt + 1 && toks[stmt].kind == TokKind::kIdent &&
          (toks[stmt].text == "public" || toks[stmt].text == "private" ||
           toks[stmt].text == "protected" || toks[stmt].text == "default")) {
        stmt = i + 1;
      } else if (stmt < i && toks[stmt].kind == TokKind::kIdent &&
                 toks[stmt].text == "case") {
        stmt = i + 1;
      }
      continue;
    }

    if (t.text == "{") {
      // Classify the brace from its statement head [stmt, i).
      char kind = 'b';
      std::string name;
      int fn_index = -1;
      std::size_t begin = stmt;
      if (begin < i) {
        const Token& first = toks[begin];
        const Token& prev = toks[i - 1];
        bool control = is_control_keyword(first);
        bool ns_like =
            has_ident(toks, begin, i, "namespace") ||
            (first.kind == TokKind::kIdent && first.text == "extern" &&
             begin + 1 < i && toks[begin + 1].kind == TokKind::kString);
        bool prev_blocks_decl =
            prev.kind == TokKind::kPunct &&
            (prev.text == "=" || prev.text == "," || prev.text == "[" ||
             prev.text == "(");
        bool has_paren = false;
        for (std::size_t j = begin; j < i && !has_paren; ++j) {
          has_paren =
              toks[j].kind == TokKind::kPunct && toks[j].text == "(";
        }
        bool class_like = !has_paren &&
                          (has_ident(toks, begin, i, "class") ||
                           has_ident(toks, begin, i, "struct") ||
                           has_ident(toks, begin, i, "union") ||
                           has_ident(toks, begin, i, "enum"));
        // `ident {` is a braced initializer (`Type name{...}`,
        // `b_{2}` in a ctor-init list) unless the head is a function
        // signature whose trailer (noexcept, override, -> Type) ends
        // in an identifier — distinguished by the presence of a
        // parameter list with no ctor-init colon after it.
        bool init_like = prev.kind == TokKind::kIdent && !class_like &&
                         !ns_like &&
                         (!has_paren || has_ctor_init_colon(toks, begin, i));
        if (control || prev_blocks_decl || init_like) {
          kind = 'b';  // braced initializer / control block
        } else if (ns_like) {
          kind = 'n';
          for (std::size_t j = begin; j + 1 < i; ++j) {
            if (toks[j].kind == TokKind::kIdent &&
                toks[j].text == "namespace" &&
                toks[j + 1].kind == TokKind::kIdent) {
              name = toks[j + 1].text;
            }
          }
        } else if (class_like) {
          kind = 'c';
          for (std::size_t j = begin; j < i; ++j) {
            if (toks[j].kind == TokKind::kIdent &&
                (toks[j].text == "class" || toks[j].text == "struct" ||
                 toks[j].text == "union" || toks[j].text == "enum")) {
              for (std::size_t k = j + 1; k < i; ++k) {
                if (toks[k].kind == TokKind::kIdent &&
                    toks[k].text != "class" && toks[k].text != "final" &&
                    toks[k].text != "alignas") {
                  name = toks[k].text;
                  break;
                }
                if (toks[k].kind == TokKind::kPunct && toks[k].text != "[" &&
                    toks[k].text != "]") {
                  break;
                }
              }
              break;
            }
          }
        } else if (has_paren) {
          kind = 'f';
          std::size_t name_idx = find_name_before_paren(toks, begin, i);
          if (name_idx != std::string::npos) {
            name = toks[name_idx].text;
            std::string qualified = name;
            std::size_t q = name_idx;
            while (q >= 2 && toks[q - 1].kind == TokKind::kPunct &&
                   toks[q - 1].text == "::" &&
                   toks[q - 2].kind == TokKind::kIdent) {
              qualified = toks[q - 2].text + "::" + qualified;
              q -= 2;
            }
            if (q == name_idx) {  // no explicit qualifier: use class scope
              if (const Scope* cls = enclosing_class(); cls != nullptr &&
                                                        !cls->name.empty()) {
                qualified = cls->name + "::" + qualified;
              }
            }
            fn_index = static_cast<int>(fns.size());
            fns.push_back({name, qualified, toks[begin].line, toks[i].line});
          }
        }
        if (kind == 'b') emit_stmt(begin, i);
      }
      stack.push_back({kind, std::move(name), fn_index});
      stmt = i + 1;
      continue;
    }
    if (t.text == "}") {
      if (!stack.empty()) {
        Scope top = std::move(stack.back());
        stack.pop_back();
        if (top.kind == 'f' && top.fn_index >= 0) {
          fns[static_cast<std::size_t>(top.fn_index)].end_line = t.line;
        }
      }
      stmt = i + 1;
      continue;
    }
  }
}

}  // namespace

std::vector<FunctionRange> function_ranges(const TokenStream& ts) {
  std::vector<FunctionRange> out;
  WalkCallbacks cb;
  cb.functions = &out;
  walk_impl(ts, cb);
  return out;
}

void walk_scopes(const TokenStream& ts, const ScopeVisitor& visitor) {
  WalkCallbacks cb;
  cb.visitor = &visitor;
  walk_impl(ts, cb);
}

}  // namespace hcm::analyze
