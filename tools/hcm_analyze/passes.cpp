#include "hcm_analyze/passes.hpp"

#include <algorithm>
#include <cctype>
#include <climits>
#include <functional>
#include <set>

namespace hcm::analyze {

namespace {

bool is_ident(const Token& t, std::string_view word) {
  return t.kind == TokKind::kIdent && t.text == word;
}

bool is_punct(const Token& t, std::string_view p) {
  return t.kind == TokKind::kPunct && t.text == p;
}

std::string trim_copy(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return {};
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

}  // namespace

// --- layering -----------------------------------------------------------

LayerConfig default_layers() {
  // Bottom-up ranks; equal rank = peers that must not include each
  // other. This is the dependency DAG the build actually layers on:
  // the wire stack (xml -> http -> soap) sits on the simulated network
  // (sim -> obs -> net), the durable store (store, a peer of xml/sim
  // above only common) backs soap's registry, the five middleware
  // stacks are peers above it, core composes them, testbed composes
  // core.
  LayerConfig cfg;
  cfg.rank = {
      {"common", 0}, {"xml", 1},  {"sim", 1},  {"store", 1}, {"obs", 2},
      {"net", 3},    {"http", 4}, {"soap", 5}, {"havi", 6},  {"jini", 6},
      {"upnp", 6},   {"x10", 6},  {"mail", 6}, {"core", 7},  {"testbed", 8},
  };
  return cfg;
}

std::string module_of(const std::string& rel_path) {
  if (rel_path.rfind("src/", 0) != 0) return {};
  std::size_t begin = 4;
  std::size_t end = rel_path.find('/', begin);
  if (end == std::string::npos) return {};
  return rel_path.substr(begin, end - begin);
}

Findings layering_check_file(const std::string& rel_path,
                             const TokenStream& ts,
                             const LayerConfig& layers) {
  Findings out;
  std::string mod = module_of(rel_path);
  if (mod.empty()) return out;  // only src/ modules are ranked
  auto self = layers.rank.find(mod);
  if (self == layers.rank.end()) {
    out.push_back({"layering-unknown-include", rel_path, 0,
                   "module '" + mod +
                       "' has no rank in the layering order — add it to "
                       "default_layers() (and the docs diagram) first"});
    return out;
  }
  for (const IncludeRef& inc : extract_includes(ts)) {
    if (inc.angled) continue;  // system headers
    std::size_t slash = inc.path.find('/');
    if (slash == std::string::npos) continue;  // local/relative include
    std::string target = inc.path.substr(0, slash);
    if (target == mod) continue;
    auto it = layers.rank.find(target);
    if (it == layers.rank.end()) {
      out.push_back({"layering-unknown-include", rel_path, inc.line,
                     "include \"" + inc.path +
                         "\" names no ranked src/ module"});
      continue;
    }
    if (it->second > self->second) {
      out.push_back(
          {"layering-upward", rel_path, inc.line,
           "module '" + mod + "' (rank " + std::to_string(self->second) +
               ") includes upward into '" + target + "' (rank " +
               std::to_string(it->second) +
               ") — invert the dependency or move the shared piece down"});
    } else if (it->second == self->second) {
      out.push_back({"layering-lateral", rel_path, inc.line,
                     "peer modules '" + mod + "' and '" + target +
                         "' must not include each other (adapters talk "
                         "through core, not directly)"});
    }
  }
  return out;
}

Findings layering_check_cycles(
    const std::map<std::string, std::vector<std::string>>& graph) {
  Findings out;
  // Iterative DFS with tri-color marking; the first back edge found on
  // each cycle reports the full path once.
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> path;

  std::function<void(const std::string&)> visit =
      [&](const std::string& file) {
        color[file] = 1;
        path.push_back(file);
        auto it = graph.find(file);
        if (it != graph.end()) {
          for (const std::string& dep : it->second) {
            int c = color[dep];
            if (c == 1) {
              auto begin = std::find(path.begin(), path.end(), dep);
              std::string msg = "include cycle: ";
              for (auto p = begin; p != path.end(); ++p) msg += *p + " -> ";
              msg += dep;
              out.push_back({"layering-cycle", dep, 0, msg});
            } else if (c == 0) {
              visit(dep);
            }
          }
        }
        path.pop_back();
        color[file] = 2;
      };
  for (const auto& [file, deps] : graph) {
    (void)deps;
    if (color[file] == 0) visit(file);
  }
  return out;
}

// --- determinism --------------------------------------------------------

bool determinism_covered(const std::string& rel_path) {
  return rel_path.rfind("src/sim/", 0) == 0 ||
         rel_path.rfind("src/core/", 0) == 0 ||
         rel_path.rfind("src/store/", 0) == 0;
}

Findings determinism_check(const std::string& rel_path,
                           const TokenStream& ts) {
  Findings out;
  const auto& toks = ts.tokens;

  static const std::set<std::string> kWallClock = {
      "system_clock",  "steady_clock", "high_resolution_clock",
      "gettimeofday",  "clock_gettime", "timespec_get",
      "localtime",     "gmtime"};
  static const std::set<std::string> kAmbientRandom = {
      "rand", "srand", "drand48", "lrand48", "random_shuffle",
      "random_device"};
  static const std::set<std::string> kEngines = {
      "mt19937",        "mt19937_64",   "default_random_engine",
      "minstd_rand",    "minstd_rand0", "knuth_b",
      "ranlux24",       "ranlux48",     "ranlux24_base",
      "ranlux48_base"};
  static const std::set<std::string> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};

  // Pass A: banned identifiers and default-constructed engines.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    if (kWallClock.count(t.text) != 0) {
      out.push_back({"determinism-wallclock", rel_path, t.line,
                     "'" + t.text +
                         "' reads the wall clock — the deterministic core "
                         "must use the sim virtual clock "
                         "(sim::Scheduler::now)"});
      continue;
    }
    if (kAmbientRandom.count(t.text) != 0) {
      out.push_back({"determinism-random", rel_path, t.line,
                     "'" + t.text +
                         "' is an ambient randomness source — use the "
                         "seeded sim RNG (sim::Scheduler::rng)"});
      continue;
    }
    if (kEngines.count(t.text) != 0) {
      // Flag only default construction: `Engine e;`, `Engine e{}`,
      // `Engine e()`, or a default-constructed temporary. A seeded
      // engine (`Engine e{kSeed}`) and references/parameters pass.
      std::size_t j = i + 1;
      bool flagged = false;
      if (j < toks.size() && toks[j].kind == TokKind::kIdent) ++j;
      if (j < toks.size()) {
        if (is_punct(toks[j], ";")) {
          flagged = j > i + 1;  // `Engine name;` (bare `Engine;` is odd)
        } else if ((is_punct(toks[j], "{") || is_punct(toks[j], "(")) &&
                   j + 1 < toks.size() &&
                   (is_punct(toks[j + 1], "}") ||
                    is_punct(toks[j + 1], ")"))) {
          flagged = true;  // empty-init variable or temporary
        }
      }
      if (flagged) {
        out.push_back({"determinism-random", rel_path, t.line,
                       "'" + t.text +
                           "' is default-constructed (unseeded) — seed it "
                           "from the scenario, or use "
                           "sim::Scheduler::rng"});
      }
    }
  }

  // Pass B: iteration over unordered containers. File-local heuristic:
  // names declared with an unordered_* type, then range-for or
  // begin()/end() over those names.
  std::set<std::string> unordered_names;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent ||
        kUnordered.count(toks[i].text) == 0) {
      continue;
    }
    std::size_t j = i + 1;
    if (j >= toks.size() || !is_punct(toks[j], "<")) continue;
    int angle = 0;
    for (; j < toks.size(); ++j) {
      if (is_punct(toks[j], "<")) ++angle;
      if (is_punct(toks[j], ">") && --angle == 0) break;
      if (is_punct(toks[j], ">>") && (angle -= 2) <= 0) break;
    }
    ++j;
    while (j < toks.size() &&
           (is_punct(toks[j], "&") || is_punct(toks[j], "*") ||
            is_ident(toks[j], "const"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == TokKind::kIdent) {
      unordered_names.insert(toks[j].text);
    }
  }
  if (!unordered_names.empty()) {
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (is_ident(toks[i], "for") && i + 1 < toks.size() &&
          is_punct(toks[i + 1], "(")) {
        // Find the range-for ':' at depth 1, then scan the range expr.
        int depth = 0;
        std::size_t colon = 0;
        std::size_t close = 0;
        for (std::size_t j = i + 1; j < toks.size(); ++j) {
          if (is_punct(toks[j], "(")) ++depth;
          if (is_punct(toks[j], ")") && --depth == 0) {
            close = j;
            break;
          }
          if (is_punct(toks[j], ":") && depth == 1 && colon == 0) colon = j;
        }
        if (colon == 0 || close == 0) continue;
        for (std::size_t j = colon + 1; j < close; ++j) {
          if (toks[j].kind == TokKind::kIdent &&
              unordered_names.count(toks[j].text) != 0) {
            out.push_back(
                {"determinism-unordered-iter", rel_path, toks[i].line,
                 "range-for over unordered container '" + toks[j].text +
                     "' — iteration order is unspecified and leaks into "
                     "traces/scheduling; use a sorted copy or an ordered "
                     "container"});
            break;
          }
        }
      } else if (toks[i].kind == TokKind::kIdent &&
                 unordered_names.count(toks[i].text) != 0 &&
                 i + 2 < toks.size() && is_punct(toks[i + 1], ".") &&
                 (is_ident(toks[i + 2], "begin") ||
                  is_ident(toks[i + 2], "end") ||
                  is_ident(toks[i + 2], "cbegin") ||
                  is_ident(toks[i + 2], "cend"))) {
        out.push_back(
            {"determinism-unordered-iter", rel_path, toks[i].line,
             "iterator over unordered container '" + toks[i].text +
                 "' — iteration order is unspecified and leaks into "
                 "traces/scheduling; use a sorted copy or an ordered "
                 "container"});
      }
    }
  }
  return out;
}

// --- hot-path allocations -----------------------------------------------

std::vector<HotScope> parse_manifest(const std::string& text) {
  std::vector<HotScope> out;
  for (const std::string& raw : split_lines(text)) {
    std::string line = trim_copy(raw);
    if (line.empty() || line[0] == '#') continue;
    HotScope scope;
    std::size_t sp = line.find_first_of(" \t");
    if (sp == std::string::npos) {
      scope.path = line;
    } else {
      scope.path = line.substr(0, sp);
      std::string rest = trim_copy(line.substr(sp + 1));
      if (rest.rfind("fn=", 0) == 0) {
        std::string list = rest.substr(3);
        std::size_t begin = 0;
        while (begin <= list.size()) {
          std::size_t comma = list.find(',', begin);
          std::string fn = trim_copy(
              list.substr(begin, comma == std::string::npos
                                     ? std::string::npos
                                     : comma - begin));
          if (!fn.empty()) scope.fns.push_back(fn);
          if (comma == std::string::npos) break;
          begin = comma + 1;
        }
      }
    }
    out.push_back(std::move(scope));
  }
  return out;
}

Findings hotpath_check(const std::string& rel_path, const TokenStream& ts,
                       const HotScope& scope) {
  Findings out;
  // Line ranges covered by the manifest's fn= list (whole file if none).
  std::vector<std::pair<int, int>> ranges;
  if (!scope.fns.empty()) {
    for (const FunctionRange& fr : function_ranges(ts)) {
      for (const std::string& pat : scope.fns) {
        if (fr.name == pat || fr.qualified == pat ||
            fr.qualified.rfind(pat + "::", 0) == 0) {
          ranges.emplace_back(fr.begin_line, fr.end_line);
          break;
        }
      }
    }
    if (ranges.empty()) return out;  // scoped functions absent from file
  }
  auto in_scope = [&](int line) {
    if (scope.fns.empty()) return true;
    return std::any_of(ranges.begin(), ranges.end(), [&](const auto& r) {
      return line >= r.first && line <= r.second;
    });
  };

  static const std::set<std::string> kNodeContainers = {
      "map",           "multimap",      "list",
      "forward_list",  "set",           "multiset",
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};

  // Registry accessors that walk the name -> metric map under a mutex.
  // On the hot path these must run once at setup; per-call code mutates
  // through the cached Counter&/Histogram& handle instead.
  static const std::set<std::string> kRegistryLookups = {
      "counter",      "gauge",          "histogram",      "unique_scope",
      "find_counter", "find_gauge",     "find_histogram"};

  // Growth calls that reallocate a flat byte buffer. On the wire path
  // message bytes live in pooled BlockStream chains; a Bytes that grows
  // per message is allocator traffic the pool was built to remove.
  static const std::set<std::string> kBytesGrowth = {"reserve", "resize",
                                                     "append", "push_back"};

  const auto& toks = ts.tokens;

  // Names declared as a fresh `Bytes <name>`, each scoped to the
  // function body holding the declaration (a `Bytes out` in one
  // function must not taint an unrelated `out` elsewhere in the file;
  // a namespace-scope declaration scopes to the whole file). The
  // bytes-growth rule checks member growth calls against these.
  std::map<std::string, std::vector<std::pair<int, int>>> bytes_decls;
  {
    const std::vector<FunctionRange> fns = function_ranges(ts);
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (!is_ident(toks[i], "Bytes") ||
          toks[i + 1].kind != TokKind::kIdent ||
          (i >= 1 && is_punct(toks[i - 1], "::"))) {
        continue;
      }
      std::pair<int, int> range{1, INT_MAX};
      for (const FunctionRange& fr : fns) {
        if (toks[i].line >= fr.begin_line && toks[i].line <= fr.end_line) {
          range = {fr.begin_line, fr.end_line};
          break;
        }
      }
      bytes_decls[toks[i + 1].text].push_back(range);
    }
  }
  auto is_bytes_name = [&](const std::string& name, int line) {
    auto it = bytes_decls.find(name);
    if (it == bytes_decls.end()) return false;
    return std::any_of(it->second.begin(), it->second.end(),
                       [line](const std::pair<int, int>& r) {
                         return line >= r.first && line <= r.second;
                       });
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent || !in_scope(t.line)) continue;
    if (t.text == "new") {
      out.push_back({"hotpath-new", rel_path, t.line,
                     "heap allocation ('new') on the wire hot path — use "
                     "the slab/buffer-reuse idioms this path was "
                     "de-allocated to (docs/PERFORMANCE.md)"});
    } else if (t.text == "make_unique" || t.text == "make_shared") {
      out.push_back({"hotpath-make", rel_path, t.line,
                     "'" + t.text +
                         "' allocates on the wire hot path — hoist the "
                         "allocation out of the per-message cycle"});
    } else if (t.text == "std" && i + 3 < toks.size() &&
               is_punct(toks[i + 1], "::") &&
               toks[i + 2].kind == TokKind::kIdent) {
      const std::string& name = toks[i + 2].text;
      if (name == "function") {
        out.push_back(
            {"hotpath-std-function", rel_path, t.line,
             "std::function on the wire hot path type-erases and may "
             "heap-allocate its capture — take a template parameter or "
             "a function pointer + context"});
      } else if (kNodeContainers.count(name) != 0 &&
                 is_punct(toks[i + 3], "<")) {
        out.push_back(
            {"hotpath-node-container", rel_path, t.line,
             "std::" + name +
                 " is a node-per-element container — on the wire hot "
                 "path use a flat vector / slab keyed by index"});
      }
    } else if (i + 3 < toks.size() && is_punct(toks[i + 1], ".") &&
               toks[i + 2].kind == TokKind::kIdent &&
               kBytesGrowth.count(toks[i + 2].text) != 0 &&
               is_punct(toks[i + 3], "(") &&
               is_bytes_name(t.text, t.line)) {
      out.push_back(
          {"hotpath-bytes-growth", rel_path, t.line,
           "'" + t.text + "." + toks[i + 2].text +
               "' grows a flat Bytes buffer on the wire hot path — "
               "render into a pooled BlockStream "
               "(common/block_stream.hpp) so message bytes recycle "
               "through the block freelist; annotate documented "
               "heap-fallback copy-outs with hcm:allow"});
    } else if ((t.text == "shard_registry" ||
                (t.text == "global" && i >= 2 &&
                 is_ident(toks[i - 2], "Registry") &&
                 is_punct(toks[i - 1], "::"))) &&
               i + 4 < toks.size() && is_punct(toks[i + 1], "(") &&
               is_punct(toks[i + 2], ")") && is_punct(toks[i + 3], ".") &&
               toks[i + 4].kind == TokKind::kIdent &&
               kRegistryLookups.count(toks[i + 4].text) != 0) {
      out.push_back(
          {"obs-hotpath-lookup", rel_path, t.line,
           "registry lookup '" + toks[i + 4].text +
               "' on the wire hot path — metric handles must be "
               "resolved once at setup and cached as references "
               "(docs/OBSERVABILITY.md), not looked up per call"});
    }
  }
  return out;
}

// --- shard readiness ----------------------------------------------------

namespace {

struct ShardCtx {
  const std::string* path;
  Findings* out;
};

bool head_has(const TokenStream& ts, std::size_t b, std::size_t e,
              std::string_view word) {
  for (std::size_t i = b; i < e; ++i) {
    if (is_ident(ts.tokens[i], word)) return true;
  }
  return false;
}

void shard_on_statement(void* raw, const TokenStream& ts, std::size_t b,
                        std::size_t e, bool ns_scope, bool fn_scope) {
  auto* ctx = static_cast<ShardCtx*>(raw);
  const auto& toks = ts.tokens;
  if (b >= e) return;
  const Token& first = toks[b];
  if (first.kind != TokKind::kIdent) return;

  bool is_const = head_has(ts, b, e, "const") ||
                  head_has(ts, b, e, "constexpr") ||
                  head_has(ts, b, e, "constinit");
  bool is_atomic = head_has(ts, b, e, "atomic") ||
                   head_has(ts, b, e, "atomic_flag");

  if (fn_scope) {
    if (first.text != "static") return;
    if (is_const || is_atomic) return;
    (*ctx->out).push_back(
        {"shard-static-local", *ctx->path, first.line,
         "mutable function-local static — hidden cross-shard shared "
         "state; make it per-shard, const, or std::atomic before the "
         "sharded kernel lands"});
    return;
  }
  if (!ns_scope) return;

  // Namespace scope: find a variable definition shape, skipping
  // everything declaration-like that isn't one.
  static const std::set<std::string> kSkipFirst = {
      "using",   "typedef",  "template", "friend",   "static_assert",
      "namespace", "class",  "struct",   "union",    "enum",
      "extern",  "asm",      "concept",  "goto",     "return",
      "if",      "for",      "while",    "switch",   "do",
      "else",    "try",      "catch",    "case",     "default",
      "public",  "private",  "protected", "operator", "thread_local"};
  if (kSkipFirst.count(first.text) != 0) return;
  if (is_const || is_atomic) return;

  // '(' before any '=' (both outside template angles) means a function
  // declaration/definition head (params, ctor-init) — not a variable.
  int angle = 0;
  std::size_t first_paren = e;
  std::size_t first_eq = e;
  for (std::size_t i = b; i < e; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "<") ++angle;
    if (t.text == ">" && angle > 0) --angle;
    if (t.text == ">>" && angle > 0) angle = angle >= 2 ? angle - 2 : 0;
    if (angle != 0) continue;
    if (t.text == "(" && first_paren == e) first_paren = i;
    if (t.text == "=" && first_eq == e) first_eq = i;
  }
  if (first_paren < first_eq) return;  // function-shaped

  bool braced_init = e < toks.size() && is_punct(toks[e], "{") &&
                     toks[e - 1].kind == TokKind::kIdent;
  bool assigned = first_eq < e;
  bool plain_decl = false;
  if (!assigned && !braced_init) {
    // `Type name;` — at least two identifiers, the last token an
    // identifier, no parens anywhere.
    std::size_t idents = 0;
    for (std::size_t i = b; i < e; ++i) {
      if (toks[i].kind == TokKind::kIdent) ++idents;
    }
    plain_decl = idents >= 2 && first_paren == e &&
                 toks[e - 1].kind == TokKind::kIdent;
  }
  if (!assigned && !braced_init && !plain_decl) return;

  (*ctx->out).push_back(
      {"shard-mutable-global", *ctx->path, first.line,
       "mutable namespace-scope state — every shard would share it; "
       "make it per-shard, const, or std::atomic before the sharded "
       "kernel lands"});
}

}  // namespace

Findings shard_check(const std::string& rel_path, const TokenStream& ts) {
  Findings out;
  ShardCtx ctx{&rel_path, &out};
  ScopeVisitor visitor;
  visitor.on_statement = &shard_on_statement;
  visitor.ctx = &ctx;
  walk_scopes(ts, visitor);
  return out;
}

}  // namespace hcm::analyze
