#include "hcm_analyze/analysis.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace hcm::analyze {

namespace {

std::string trim_copy(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return {};
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

}  // namespace

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string::npos) {
      out.push_back(text.substr(begin));
      break;
    }
    out.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return out;
}

std::vector<BaselineEntry> parse_baseline(const std::string& text) {
  std::vector<BaselineEntry> out;
  for (const std::string& raw : split_lines(text)) {
    std::string line = trim_copy(raw);
    if (line.empty() || line[0] == '#') continue;
    std::size_t p1 = line.find('|');
    std::size_t p2 = p1 == std::string::npos ? std::string::npos
                                             : line.find('|', p1 + 1);
    if (p2 == std::string::npos) continue;  // malformed line: ignored
    out.push_back({trim_copy(line.substr(0, p1)),
                   trim_copy(line.substr(p1 + 1, p2 - p1 - 1)),
                   trim_copy(line.substr(p2 + 1))});
  }
  return out;
}

std::string render_baseline(const std::vector<BaselineEntry>& entries) {
  std::ostringstream out;
  out << "# hcm_analyze baseline — grandfathered findings, keyed\n"
         "# rule|file|trimmed-source-line. Entries may only shrink: a\n"
         "# stale entry (no longer firing) fails the run. Regenerate\n"
         "# with: hcm_analyze --root . --update-baseline\n";
  for (const BaselineEntry& e : entries) {
    out << e.rule << '|' << e.file << '|' << e.line_text << '\n';
  }
  return out.str();
}

void apply_suppressions(
    Report& report,
    const std::map<std::string, std::vector<AllowNote>>& allows,
    const std::vector<BaselineEntry>& baseline,
    const std::map<std::string, std::vector<std::string>>& lines) {
  // Work on copies with used-flags so stale suppressions are visible.
  struct AllowUse {
    const AllowNote* note;
    std::string file;
    bool used = false;
  };
  std::vector<AllowUse> allow_uses;
  for (const auto& [file, notes] : allows) {
    for (const AllowNote& n : notes) allow_uses.push_back({&n, file, false});
  }
  std::vector<bool> baseline_used(baseline.size(), false);

  auto line_text = [&](const std::string& file, int line) -> std::string {
    auto it = lines.find(file);
    if (it == lines.end()) return {};
    if (line < 1 || static_cast<std::size_t>(line) > it->second.size())
      return {};
    return trim_copy(it->second[static_cast<std::size_t>(line - 1)]);
  };

  for (Finding& f : report.findings) {
    // Inline allow: same line (trailing comment) or the line above.
    bool done = false;
    for (AllowUse& a : allow_uses) {
      if (a.note->malformed || a.file != f.file) continue;
      if (a.note->line != f.line && a.note->line != f.line - 1) continue;
      if (std::find(a.note->rules.begin(), a.note->rules.end(), f.rule) ==
          a.note->rules.end()) {
        continue;
      }
      f.suppressed = true;
      f.reason = a.note->reason;
      a.used = true;
      done = true;
      break;
    }
    if (done) continue;
    std::string text = line_text(f.file, f.line);
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      const BaselineEntry& e = baseline[i];
      if (e.rule == f.rule && e.file == f.file && e.line_text == text &&
          !text.empty()) {
        f.suppressed = true;
        f.reason = "baseline";
        baseline_used[i] = true;
        break;
      }
    }
  }

  // Meta-findings: defects in the suppression machinery itself.
  for (const auto& [file, notes] : allows) {
    for (const AllowNote& n : notes) {
      if (n.malformed) {
        report.findings.push_back(
            {"allow-malformed", file, n.line,
             "hcm:allow needs a rule list and a ': reason' justification, "
             "e.g. // hcm:allow(rule-id): why this is by design"});
      }
    }
  }
  for (const AllowUse& a : allow_uses) {
    if (a.note->malformed || a.used) continue;
    report.findings.push_back(
        {"allow-stale", a.file, a.note->line,
         "hcm:allow suppresses nothing here — the violation was fixed; "
         "remove the annotation"});
  }
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    if (baseline_used[i]) continue;
    report.findings.push_back(
        {"baseline-stale", baseline[i].file, 0,
         "baseline entry no longer fires (" + baseline[i].rule + "|" +
             baseline[i].file + "|" + baseline[i].line_text +
             ") — baselines only shrink; remove it"});
  }
}

std::size_t enforce_shard_rules(Report& report) {
  std::size_t unsuppressed = 0;
  for (Finding& f : report.findings) {
    if (!f.suppressed || f.rule.rfind("shard-", 0) != 0) continue;
    const bool enforced_dir = f.file.rfind("src/sim/", 0) == 0 ||
                              f.file.rfind("src/core/", 0) == 0;
    if (!enforced_dir) continue;
    f.suppressed = false;
    f.message +=
        " [enforced: shard rules are not suppressible under src/sim + "
        "src/core — convert to an atomic, a lock, or per-shard state]";
    ++unsuppressed;
  }
  return unsuppressed;
}

std::vector<BaselineEntry> baseline_from_findings(
    const Report& report,
    const std::map<std::string, std::vector<std::string>>& lines) {
  std::vector<BaselineEntry> out;
  for (const Finding& f : report.findings) {
    if (f.suppressed) continue;
    if (f.rule == "allow-stale" || f.rule == "allow-malformed" ||
        f.rule == "baseline-stale") {
      continue;  // machinery defects cannot be baselined away
    }
    std::string text;
    auto it = lines.find(f.file);
    if (it != lines.end() && f.line >= 1 &&
        static_cast<std::size_t>(f.line) <= it->second.size()) {
      text = trim_copy(it->second[static_cast<std::size_t>(f.line - 1)]);
    }
    if (text.empty()) continue;  // unanchorable: must be fixed, not baselined
    BaselineEntry e{f.rule, f.file, text};
    if (std::find_if(out.begin(), out.end(), [&](const BaselineEntry& x) {
          return x.rule == e.rule && x.file == e.file &&
                 x.line_text == e.line_text;
        }) == out.end()) {
      out.push_back(std::move(e));
    }
  }
  return out;
}

// --- JSON ---------------------------------------------------------------

namespace {

void json_escape(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

// Minimal recursive-descent parser for the subset report_to_json
// emits: objects, arrays, strings, integers, booleans.
struct JsonParser {
  const std::string& s;
  std::size_t i = 0;
  std::string err;

  void skip_ws() {
    while (i < s.size() &&
           std::isspace(static_cast<unsigned char>(s[i])) != 0) {
      ++i;
    }
  }

  bool fail(const std::string& what) {
    if (err.empty()) err = what + " at offset " + std::to_string(i);
    return false;
  }

  bool expect(char c) {
    skip_ws();
    if (i >= s.size() || s[i] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++i;
    return true;
  }

  bool peek(char c) {
    skip_ws();
    return i < s.size() && s[i] == c;
  }

  bool parse_string(std::string* out) {
    skip_ws();
    if (i >= s.size() || s[i] != '"') return fail("expected string");
    ++i;
    out->clear();
    while (i < s.size() && s[i] != '"') {
      char c = s[i];
      if (c == '\\' && i + 1 < s.size()) {
        char e = s[i + 1];
        i += 2;
        switch (e) {
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'u':
            if (i + 4 <= s.size()) {
              out->push_back(static_cast<char>(
                  std::stoi(s.substr(i, 4), nullptr, 16)));
              i += 4;
            }
            break;
          default: out->push_back(e);
        }
      } else {
        out->push_back(c);
        ++i;
      }
    }
    if (i >= s.size()) return fail("unterminated string");
    ++i;
    return true;
  }

  bool parse_int(long long* out) {
    skip_ws();
    std::size_t begin = i;
    if (i < s.size() && s[i] == '-') ++i;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])))
      ++i;
    if (i == begin) return fail("expected number");
    *out = std::stoll(s.substr(begin, i - begin));
    return true;
  }

  bool parse_bool(bool* out) {
    skip_ws();
    if (s.compare(i, 4, "true") == 0) {
      *out = true;
      i += 4;
      return true;
    }
    if (s.compare(i, 5, "false") == 0) {
      *out = false;
      i += 5;
      return true;
    }
    return fail("expected bool");
  }

  // Skips any value (for unknown keys).
  bool skip_value() {
    skip_ws();
    if (i >= s.size()) return fail("expected value");
    char c = s[i];
    if (c == '"') {
      std::string tmp;
      return parse_string(&tmp);
    }
    if (c == '{' || c == '[') {
      char open = c;
      char close = open == '{' ? '}' : ']';
      int depth = 0;
      bool in_str = false;
      for (; i < s.size(); ++i) {
        char x = s[i];
        if (in_str) {
          if (x == '\\') ++i;
          else if (x == '"') in_str = false;
        } else if (x == '"') {
          in_str = true;
        } else if (x == open) {
          ++depth;
        } else if (x == close && --depth == 0) {
          ++i;
          return true;
        }
      }
      return fail("unterminated container");
    }
    while (i < s.size() && s[i] != ',' && s[i] != '}' && s[i] != ']') ++i;
    return true;
  }

  bool parse_finding(Finding* f) {
    if (!expect('{')) return false;
    bool first = true;
    while (!peek('}')) {
      if (!first && !expect(',')) return false;
      first = false;
      std::string key;
      if (!parse_string(&key) || !expect(':')) return false;
      if (key == "rule") {
        if (!parse_string(&f->rule)) return false;
      } else if (key == "file") {
        if (!parse_string(&f->file)) return false;
      } else if (key == "line") {
        long long n = 0;
        if (!parse_int(&n)) return false;
        f->line = static_cast<int>(n);
      } else if (key == "message") {
        if (!parse_string(&f->message)) return false;
      } else if (key == "suppressed") {
        if (!parse_bool(&f->suppressed)) return false;
      } else if (key == "reason") {
        if (!parse_string(&f->reason)) return false;
      } else if (!skip_value()) {
        return false;
      }
    }
    return expect('}');
  }
};

}  // namespace

std::string report_to_json(const Report& report) {
  std::ostringstream out;
  out << "{\n  \"tool\": \"hcm_analyze\",\n";
  out << "  \"files_scanned\": " << report.files_scanned << ",\n";
  out << "  \"summary\": {\"total\": " << report.findings.size()
      << ", \"unsuppressed\": " << report.unsuppressed()
      << ", \"suppressed\": "
      << (report.findings.size() - report.unsuppressed()) << "},\n";
  out << "  \"findings\": [";
  bool first = true;
  for (const Finding& f : report.findings) {
    out << (first ? "\n" : ",\n") << "    {\"rule\": ";
    json_escape(out, f.rule);
    out << ", \"file\": ";
    json_escape(out, f.file);
    out << ", \"line\": " << f.line << ", \"message\": ";
    json_escape(out, f.message);
    out << ", \"suppressed\": " << (f.suppressed ? "true" : "false")
        << ", \"reason\": ";
    json_escape(out, f.reason);
    out << "}";
    first = false;
  }
  out << (first ? "]\n}\n" : "\n  ]\n}\n");
  return out.str();
}

bool report_from_json(const std::string& json, Report* out,
                      std::string* err) {
  JsonParser p{json, 0, {}};
  *out = Report{};
  bool ok = [&] {
    if (!p.expect('{')) return false;
    bool first = true;
    while (!p.peek('}')) {
      if (!first && !p.expect(',')) return false;
      first = false;
      std::string key;
      if (!p.parse_string(&key) || !p.expect(':')) return false;
      if (key == "files_scanned") {
        long long n = 0;
        if (!p.parse_int(&n)) return false;
        out->files_scanned = static_cast<std::size_t>(n);
      } else if (key == "findings") {
        if (!p.expect('[')) return false;
        bool f_first = true;
        while (!p.peek(']')) {
          if (!f_first && !p.expect(',')) return false;
          f_first = false;
          Finding f;
          if (!p.parse_finding(&f)) return false;
          out->findings.push_back(std::move(f));
        }
        if (!p.expect(']')) return false;
      } else if (!p.skip_value()) {
        return false;
      }
    }
    return p.expect('}');
  }();
  if (!ok && err != nullptr) *err = p.err;
  return ok;
}

std::string format_findings(const Findings& findings) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.rule << ": " << f.file;
    if (f.line > 0) out << ":" << f.line;
    out << ": " << f.message;
    if (f.suppressed) out << " [suppressed: " << f.reason << "]";
    out << "\n";
  }
  return out.str();
}

}  // namespace hcm::analyze
