// The four analysis passes of hcm_analyze. Each exposes a text-level
// entry point (driven against known-bad fixtures by
// tests/tools/hcm_analyze_test.cpp) plus whatever whole-tree state it
// needs; tree orchestration lives in main.cpp. Rule ids are stable —
// they are the key of every hcm:allow annotation and baseline entry —
// and are documented in docs/CORRECTNESS.md §"Static analysis".
//
//   layering:    layering-unknown-include, layering-upward,
//                layering-lateral, layering-cycle
//   determinism: determinism-wallclock, determinism-random,
//                determinism-unordered-iter
//   hot path:    hotpath-new, hotpath-make, hotpath-node-container,
//                hotpath-std-function, hotpath-missing-file,
//                hotpath-bytes-growth, obs-hotpath-lookup
//   shard:       shard-mutable-global, shard-static-local
#pragma once

#include <map>
#include <string>
#include <vector>

#include "hcm_analyze/analysis.hpp"
#include "hcm_analyze/token_stream.hpp"

namespace hcm::analyze {

// --- layering pass ------------------------------------------------------
// The architectural order of src/ modules, bottom-up. A file in module
// M may include only modules with a strictly lower rank (or M itself);
// modules sharing a rank are peers and must not include each other
// (adapters especially). Unknown first segments are themselves
// violations so a new module cannot land unranked.
struct LayerConfig {
  std::map<std::string, int> rank;
};

// common < xml,sim < obs < net < http < soap <
// havi,jini,upnp,x10,mail < core < testbed — the dependency DAG the
// wire stack actually builds on (docs/CORRECTNESS.md shows the diagram).
[[nodiscard]] LayerConfig default_layers();

// Module name of a repo-relative path ("src/http/client.cpp" ->
// "http"); empty for paths outside src/.
[[nodiscard]] std::string module_of(const std::string& rel_path);

// Per-file edge checks (unknown module, upward or lateral include).
[[nodiscard]] Findings layering_check_file(const std::string& rel_path,
                                           const TokenStream& ts,
                                           const LayerConfig& layers);

// Cycle check over the quoted-include file graph. `graph` maps a
// repo-relative path to the repo-relative paths it includes (callers
// resolve include strings to paths; unresolved ones are skipped).
[[nodiscard]] Findings layering_check_cycles(
    const std::map<std::string, std::vector<std::string>>& graph);

// --- determinism pass ---------------------------------------------------
// Bans nondeterminism sources in the deterministic core (src/sim,
// src/core, src/store): wall-clock reads, ambient randomness / unseeded
// engines, and iteration over unordered containers (their order leaks
// into the TraceRecorder hash, the scheduler, wire emission and the
// durable log's byte stream). File-local heuristic for the iteration
// rule: range-for / .begin() over a name declared with an unordered_*
// type in the same file.

// Whether the pass gates this repo-relative path. src/store is covered
// because replay and compaction must be pure functions of the on-disk
// bytes: a clock read or ambient randomness there would make recovery
// (and hence the registry's resumed epoch/seq) irreproducible;
// durability timestamps always come from the caller.
[[nodiscard]] bool determinism_covered(const std::string& rel_path);

[[nodiscard]] Findings determinism_check(const std::string& rel_path,
                                         const TokenStream& ts);

// --- hot-path allocation pass -------------------------------------------
// One manifest entry: a file on the PR 5 wire path, optionally
// restricted to named functions (bare name, Class::name, or a class
// name covering all its members).
struct HotScope {
  std::string path;
  std::vector<std::string> fns;  // empty = whole file
};

// Manifest format: one `path [fn=a,b,c]` per line, '#' comments.
[[nodiscard]] std::vector<HotScope> parse_manifest(const std::string& text);

[[nodiscard]] Findings hotpath_check(const std::string& rel_path,
                                     const TokenStream& ts,
                                     const HotScope& scope);

// --- shard-readiness pass -----------------------------------------------
// Inventories cross-shard hazards anywhere under src/: mutable
// namespace-scope variables and mutable function-local statics
// (const/constexpr/std::atomic are exempt). Must be empty-or-suppressed
// before the sharded sim kernel lands.
[[nodiscard]] Findings shard_check(const std::string& rel_path,
                                   const TokenStream& ts);

}  // namespace hcm::analyze
