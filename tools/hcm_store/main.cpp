// hcm_store: operator CLI for a durable VSR store directory
// (docs/PERSISTENCE.md). Two subcommands:
//
//   hcm_store fsck <dir>    verify the whole store: every log frame's
//                           CRC and hash chain, every pack's index and
//                           entry CRCs, every delta chain materializes,
//                           every body hashes back to its digest, and
//                           the replayed live set resolves completely.
//                           Exit 0 = clean, 1 = corruption found.
//   hcm_store stats <dir>   size/record/compression report: log bytes
//                           and records by type, pack bytes, delta
//                           ratio (expanded / stored body bytes).
//
// Both run read-only against the same replay state machine the live
// registry recovers through (store::LogMirror), so what fsck accepts is
// by construction what a restart would load.
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "store/vsr_store.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: hcm_store fsck <dir>   verify log + packs\n"
               "       hcm_store stats <dir>  size / compression report\n");
  return 2;
}

int run_fsck(const std::string& dir) {
  const auto report = hcm::store::VsrStore::fsck(dir);
  std::printf("fsck %s\n", dir.c_str());
  std::printf("  log records:     %zu\n", report.log_records);
  std::printf("  packs:           %zu\n", report.packs);
  std::printf("  pack entries:    %zu\n", report.pack_entries);
  std::printf("  bodies verified: %zu\n", report.bodies_verified);
  if (report.ok) {
    std::printf("  clean\n");
    return 0;
  }
  std::printf("  %zu error(s):\n", report.errors.size());
  for (const std::string& e : report.errors) {
    std::printf("    %s\n", e.c_str());
  }
  return 1;
}

int run_stats(const std::string& dir) {
  auto r = hcm::store::VsrStore::stats(dir);
  if (!r.is_ok()) {
    std::fprintf(stderr, "hcm_store stats: %s\n",
                 r.status().to_string().c_str());
    return 1;
  }
  const auto& s = r.value();
  std::printf("stats %s\n", dir.c_str());
  std::printf("  epoch %" PRIu64 ", last seq %" PRIu64
              ", live entries %zu\n",
              s.epoch, s.last_seq, s.live_entries);
  std::printf("  log:   %" PRIu64 " bytes, %zu records\n", s.log_bytes,
              s.log_records);
  for (const auto& [type, count] : s.records_by_type) {
    std::printf("         %-10s %zu\n", type.c_str(), count);
  }
  std::printf("  packs: %zu file(s), %" PRIu64 " bytes, %zu entries "
              "(%zu delta-encoded)\n",
              s.packs, s.pack_bytes, s.pack_entries, s.delta_entries);
  std::printf("  bodies: %" PRIu64 " bytes stored, %" PRIu64
              " bytes expanded (%.1fx delta compression)\n",
              s.stored_body_bytes, s.expanded_body_bytes, s.delta_ratio());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) return usage();
  const std::string cmd = argv[1];
  const std::string dir = argv[2];
  if (cmd == "fsck") return run_fsck(dir);
  if (cmd == "stats") return run_stats(dir);
  return usage();
}
