// "New middleware can be participated in our framework effortlessly"
// (§3 design goal; §5: "We can connect the UPnP service to other
// middleware by developing a PCM for UPnP.")
//
// This example adds a whole UPnP island to a running home at runtime:
// one adapter object, one add_island() call, one refresh. Every
// existing island can then call the UPnP smart plug, and the plug's
// control point can call everything else — no existing code changed.
//
// Run: ./build/examples/new_middleware
#include <cstdio>

#include "core/adapters/upnp_adapter.hpp"
#include "testbed/home.hpp"
#include "upnp/upnp.hpp"

using namespace hcm;

int main() {
  sim::Scheduler sched;
  testbed::SmartHome home(sched);
  (void)home.refresh();
  std::printf("home running with %zu islands, VSR holds %zu services\n",
              home.meta->island_count(), home.vsr->registry().size());

  // --- The new middleware arrives: a UPnP network with a smart plug.
  auto& upnp_lan = home.net.add_ethernet("upnp-lan", sim::microseconds(200),
                                         100'000'000);
  auto& upnp_gw = home.net.add_node("upnp-gw");
  auto& plug_host = home.net.add_node("smart-plug");
  home.net.attach(upnp_gw, upnp_lan);
  home.net.attach(upnp_gw, *home.backbone);
  home.net.attach(plug_host, upnp_lan);

  bool plug_on = false;
  upnp::UpnpDevice plug(home.net, plug_host.id(), "Kettle Plug");
  plug.add_service(
      "kettle-plug",
      InterfaceDesc{"BinaryLight",
                    {MethodDesc{"turnOn", {}, ValueType::kBool, false},
                     MethodDesc{"turnOff", {}, ValueType::kBool, false}}},
      [&](const std::string& method, const ValueList&, InvokeResultFn done) {
        plug_on = method == "turnOn";
        std::printf("      [plug] %s\n", method.c_str());
        done(Value(true));
      });
  (void)plug.start();

  // --- The entire integration effort for the new middleware:
  auto adapter = std::make_unique<core::UpnpAdapter>(home.net, upnp_gw.id());
  auto* upnp_adapter = adapter.get();
  auto island = home.meta->add_island("upnp-island", upnp_gw.id(),
                                      std::move(adapter));
  if (!island.is_ok()) {
    std::printf("add_island failed: %s\n", island.status().to_string().c_str());
    return 1;
  }
  auto status = home.refresh();
  std::printf("after adding UPnP: %zu islands, VSR holds %zu services (%s)\n",
              home.meta->island_count(), home.vsr->registry().size(),
              status.to_string().c_str());

  // --- Every old island can reach the new service...
  std::optional<Result<Value>> from_jini;
  home.jini_adapter->invoke("kettle-plug", "turnOn", {},
                            [&](Result<Value> r) { from_jini = std::move(r); });
  sim::run_until_done(sched, [&] { return from_jini.has_value(); });
  std::printf("jini -> kettle-plug turnOn: %s (plug is %s)\n",
              from_jini->is_ok() ? "OK"
                                 : from_jini->status().to_string().c_str(),
              plug_on ? "on" : "off");

  // --- ...the X10 remote got a binding for it automatically...
  auto unit = home.x10_adapter->unit_for("kettle-plug");
  if (unit.is_ok()) {
    home.remote->press(unit.value(), x10::FunctionCode::kOff);
    sched.run_for(sim::seconds(30));
    std::printf("x10 remote P%d OFF -> plug is %s\n", unit.value(),
                plug_on ? "on" : "off");
  }

  // --- ...and the new island reaches everything that was already there.
  std::optional<Result<Value>> from_upnp;
  upnp_adapter->invoke("laserdisc-1", "turnOn", {},
                       [&](Result<Value> r) { from_upnp = std::move(r); });
  sim::run_until_done(sched, [&] { return from_upnp.has_value(); });
  std::printf("upnp -> jini laserdisc turnOn: %s (laserdisc %s)\n",
              from_upnp->is_ok() ? "OK"
                                 : from_upnp->status().to_string().c_str(),
              home.laserdisc->powered() ? "powered" : "off");

  const bool ok = from_jini->is_ok() && from_upnp->is_ok() && !plug_on &&
                  home.laserdisc->powered();
  std::printf("%s\n", ok ? "new middleware joined effortlessly"
                         : "integration incomplete");
  return ok ? 0 : 1;
}
