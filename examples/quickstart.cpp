// Quickstart: the smallest complete use of the framework.
//
// Two middleware islands — a Jini network with one service and an X10
// powerline with one lamp and a hand-held remote — are connected
// through the meta-middleware (VSR + one VSG/PCM per island). After one
// refresh() the Jini client switches the X10 lamp on as if it were a
// Jini service, and a raw X10 remote keypress drives the Jini service.
// No service or client was changed.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
//
// Pass --store-dir <path> to make the VSR durable: registry changes are
// journaled to a crash-recoverable store (docs/PERSISTENCE.md) and a
// rerun over the same directory resumes the previous registry epoch.
#include <cstdio>
#include <cstring>

#include "core/adapters/jini_adapter.hpp"
#include "core/adapters/x10_adapter.hpp"
#include "core/meta.hpp"
#include "jini/lookup.hpp"
#include "jini/registrar.hpp"
#include "x10/cm11a.hpp"
#include "x10/device.hpp"

using namespace hcm;

int main(int argc, char** argv) {
  std::string store_dir;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--store-dir") == 0) store_dir = argv[i + 1];
  }

  // 1. A simulated home: scheduler, backbone, one LAN, one powerline.
  sim::Scheduler sched;
  net::Network net(sched);
  auto& backbone = net.add_ethernet("backbone", sim::milliseconds(5),
                                    10'000'000);
  auto& lan = net.add_ethernet("jini-lan", sim::microseconds(200),
                               100'000'000);
  auto& powerline = net.add_powerline("powerline");

  // 2. The Virtual Service Repository (WSDL/UDDI over SOAP).
  auto& vsr_host = net.add_node("vsr-host");
  net.attach(vsr_host, backbone);
  core::VsrServer vsr(net, vsr_host.id(), 8000,
                      soap::UddiRegistry::kDefaultJournalCapacity, store_dir);
  (void)vsr.start();
  if (!store_dir.empty()) {
    std::printf("vsr store: %s (%s, epoch %llu)\n", store_dir.c_str(),
                vsr.registry().store_recovered_entries() > 0 ? "resumed"
                                                             : "fresh",
                static_cast<unsigned long long>(vsr.registry().epoch()));
  }

  // 3. The Jini island: lookup service + one "greeter" service.
  auto& jini_gw = net.add_node("jini-gw");
  auto& lookup_host = net.add_node("lookup-host");
  auto& appliance = net.add_node("appliance");
  net.attach(jini_gw, lan);
  net.attach(jini_gw, backbone);
  net.attach(lookup_host, lan);
  net.attach(appliance, lan);

  jini::LookupService lookup(net, lookup_host.id());
  (void)lookup.start();

  jini::Exporter exporter(net, appliance.id(), 4170);
  (void)exporter.start();
  bool sign_on = false;
  exporter.export_object(
      "sign-1", [&sign_on](const std::string& method, const ValueList&,
                           InvokeResultFn done) {
        if (method == "turnOn" || method == "turnOff") {
          sign_on = method == "turnOn";
          done(Value(true));
        } else {
          done(not_found("no method " + method));
        }
      });
  jini::ServiceItem item;
  item.service_id = "sign-1";
  item.name = "sign-1";
  item.interface = InterfaceDesc{
      "Signboard",
      {MethodDesc{"turnOn", {}, ValueType::kBool, false},
       MethodDesc{"turnOff", {}, ValueType::kBool, false}}};
  item.endpoint = exporter.endpoint();
  jini::Registrar registrar(net, appliance.id(), lookup.endpoint(), item);
  registrar.join([](const Status&) {});

  // 4. The X10 island: CM11A controller + a lamp at address A1.
  auto& x10_gw = net.add_node("x10-gw");
  auto& lamp_node = net.add_node("lamp");
  auto& remote_node = net.add_node("remote");
  net.attach(x10_gw, powerline);
  net.attach(x10_gw, backbone);
  net.attach(lamp_node, powerline);
  net.attach(remote_node, powerline);
  x10::Cm11aController cm11a(net, x10_gw.id(), powerline);
  x10::LampModule lamp(net, lamp_node.id(), powerline, x10::HouseCode::kA, 1);
  x10::RemoteControl remote(net, remote_node.id(), powerline,
                            x10::HouseCode::kP);

  // 5. Connect both islands through the meta-middleware.
  core::MetaMiddleware meta(net, vsr.endpoint());
  core::JiniAdapter* jini_adapter = nullptr;
  core::X10Adapter* x10_adapter = nullptr;
  {
    auto adapter = std::make_unique<core::JiniAdapter>(net, jini_gw.id(),
                                                       lookup.endpoint());
    (void)adapter->start();
    jini_adapter = adapter.get();
    (void)meta.add_island("jini-island", jini_gw.id(), std::move(adapter));
  }
  {
    std::vector<core::X10DeviceConfig> devices{
        {"lamp-1", x10::HouseCode::kA, 1, /*dimmable=*/true}};
    auto adapter = std::make_unique<core::X10Adapter>(net, cm11a,
                                                      std::move(devices));
    x10_adapter = adapter.get();
    (void)meta.add_island("x10-island", x10_gw.id(), std::move(adapter));
  }

  std::optional<Status> refreshed;
  meta.refresh_all([&](const Status& s) { refreshed = s; });
  sim::run_until_done(sched, [&] { return refreshed.has_value(); });
  std::printf("refresh: %s\n", refreshed->to_string().c_str());

  // 6. A Jini client switches the powerline lamp on — transparently.
  std::optional<Result<Value>> lamp_result;
  jini_adapter->invoke("lamp-1", "turnOn", {},
                       [&](Result<Value> r) { lamp_result = std::move(r); });
  sim::run_until_done(sched, [&] { return lamp_result.has_value(); });
  std::printf("jini -> x10 turnOn: %s, lamp level now %d%%\n",
              lamp_result->is_ok() ? "OK"
                                   : lamp_result->status().to_string().c_str(),
              lamp.level());

  // 7. ...and a raw X10 keypress reaches the Jini signboard: the PCM
  // bound the imported service to a virtual unit on house P.
  auto sign_unit = x10_adapter->unit_for("sign-1");
  if (!sign_unit.is_ok()) {
    std::printf("no X10 binding for sign-1: %s\n",
                sign_unit.status().to_string().c_str());
    return 1;
  }
  remote.press(sign_unit.value(), x10::FunctionCode::kOn);
  sched.run_for(sim::seconds(30));
  std::printf("x10 remote P%d ON -> jini signboard is %s\n",
              sign_unit.value(), sign_on ? "on" : "off");

  return lamp_result->is_ok() && sign_on ? 0 : 1;
}
