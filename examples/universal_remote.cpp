// Universal Remote Controller — the application of the paper's §4.2 and
// Fig. 5: "an X10 remote controller that allows us to control not only
// X10 devices but also Jini and HAVi services that are connected via
// our middleware. The person in the picture is controlling a Jini
// Laserdisc with an X10 remote controller, and he can also control a
// HAVi DV camera."
//
// Run: ./build/examples/universal_remote
#include <cstdio>

#include "testbed/home.hpp"

using namespace hcm;

namespace {
void press_and_report(testbed::SmartHome& home, int unit, bool on,
                      const char* label) {
  home.remote->press(unit, on ? x10::FunctionCode::kOn
                              : x10::FunctionCode::kOff);
  home.sched.run_for(sim::seconds(30));
  std::printf("  pressed P%-2d %-3s -> %s\n", unit, on ? "ON" : "OFF", label);
}
}  // namespace

int main() {
  sim::Scheduler sched;
  testbed::SmartHome home(sched);
  auto status = home.refresh();
  std::printf("framework sync: %s\n", status.to_string().c_str());

  // The X10 PCM bound every foreign service to a virtual unit code on
  // house P. The remote only ever speaks raw X10 — the framework does
  // the rest.
  auto laserdisc_unit = home.x10_adapter->unit_for("laserdisc-1");
  auto camera_unit = home.x10_adapter->unit_for("camera-1");
  if (!laserdisc_unit.is_ok() || !camera_unit.is_ok()) {
    std::printf("bindings missing: %s\n",
                laserdisc_unit.is_ok()
                    ? camera_unit.status().to_string().c_str()
                    : laserdisc_unit.status().to_string().c_str());
    return 1;
  }
  std::printf("X10 remote bindings on house P:\n");
  std::printf("  P%-2d -> Jini laserdisc-1\n", laserdisc_unit.value());
  std::printf("  P%-2d -> HAVi camera-1\n", camera_unit.value());

  std::printf("\nnative X10 (house A):\n");
  // A native X10 lamp first — the remote's home turf (house A remote).
  x10::RemoteControl house_a_remote(home.net, home.remote_node->id(),
                                    *home.powerline, x10::HouseCode::kA);
  house_a_remote.press(1, x10::FunctionCode::kOn);
  sched.run_for(sim::seconds(5));
  std::printf("  pressed A1 ON  -> desk lamp level %d%%\n",
              home.lamp->level());

  std::printf("\ncross-middleware via the framework (house P):\n");
  press_and_report(home, laserdisc_unit.value(), true, "Jini laserdisc");
  std::printf("       laserdisc powered: %s\n",
              home.laserdisc->powered() ? "yes" : "no");

  press_and_report(home, camera_unit.value(), true, "HAVi DV camera");
  std::printf("       camera capturing: %s\n",
              home.camera->capturing() ? "yes" : "no");

  press_and_report(home, camera_unit.value(), false, "HAVi DV camera");
  std::printf("       camera capturing: %s\n",
              home.camera->capturing() ? "yes" : "no");

  press_and_report(home, laserdisc_unit.value(), false, "Jini laserdisc");
  std::printf("       laserdisc powered: %s\n",
              home.laserdisc->powered() ? "yes" : "no");

  const bool ok = !home.laserdisc->powered() && !home.camera->capturing() &&
                  home.lamp->is_on();
  std::printf("\n%s\n", ok ? "universal remote: all targets controlled"
                           : "something did not respond");
  return ok ? 0 : 1;
}
