// Event-based multimedia — the experiment of the paper's §4.2: "we have
// tried to develop the event-based multimedia system, which manages
// multimedia streams and sends multimedia data to appropriate I/O
// devices, with X10 motion sensors and HAVi and Jini AV systems. But
// there are some difficulties such as ... dynamic service activation
// because of the limitation of HTTP."
//
// This example shows both halves:
//   (a) the polling workaround over the HTTP-based framework (a watcher
//       polls the CM11A for motion, with latency = poll interval), and
//   (b) the paper's future-work answer (§6): the event gateway
//       extension pushes the same event at datagram latency.
// Both trigger the same reaction: start the HAVi camera and stream it
// to the display over an isochronous channel.
//
// Run: ./build/examples/event_multimedia
#include <cstdio>

#include "core/stream_gateway.hpp"
#include "testbed/home.hpp"

using namespace hcm;

namespace {

void start_surveillance(testbed::SmartHome& home) {
  // Start the camera and wire camera -> display through the HAVi
  // stream manager.
  home.havi_adapter->invoke("camera-1", "startCapture", {},
                            [](Result<Value>) {});
  havi::StreamManagerClient smc(
      home.fav->messaging, home.fav->messaging.register_element(nullptr),
      home.fav->stream_manager.seid());
  smc.connect(home.camera->seid(), home.display->seid(),
              [](Result<havi::StreamConnection> r) {
                if (r.is_ok()) {
                  std::printf("      stream up on iso channel %d\n",
                              r.value().channel);
                }
              });
  home.havi_adapter->invoke("display-1", "powerOn", {}, [](Result<Value>) {});
}

}  // namespace

int main() {
  sim::Scheduler sched;
  testbed::SmartHome home(sched);
  (void)home.refresh();

  std::printf("=== (a) HTTP-era polling integration ===\n");
  {
    // The X10 gateway's CM11A observes the powerline; an application on
    // the HAVi side can only poll across HTTP, so motion reaction
    // latency is bounded by the poll interval (here 10 s).
    bool motion_seen = false;
    std::optional<sim::SimTime> motion_at, reacted_at;
    home.cm11a->set_observer([&](const x10::ObservedCommand& cmd) {
      if (cmd.house == x10::HouseCode::kA && cmd.unit == 5 &&
          cmd.function == x10::FunctionCode::kOn) {
        motion_seen = true;
      }
    });
    const auto poll = sim::seconds(10);
    // Poll a fixed number of times; state lives in shared_ptrs so the
    // scheduled closures stay valid for their whole lifetime.
    auto polls_left = std::make_shared<int>(6);
    auto poll_fn = std::make_shared<std::function<void()>>();
    // The stored closure must not capture poll_fn strongly (self-cycle,
    // never freed); the scheduled wrappers hold the strong reference.
    std::weak_ptr<std::function<void()>> weak_poll = poll_fn;
    *poll_fn = [&home, &sched, &motion_seen, &reacted_at, poll, polls_left,
                weak_poll] {
      if (motion_seen && !reacted_at) {
        reacted_at = sched.now();
        start_surveillance(home);
      }
      if (--*polls_left > 0) {
        if (auto fn = weak_poll.lock()) sched.after(poll, [fn] { (*fn)(); });
      }
    };
    sched.after(poll, [poll_fn] { (*poll_fn)(); });

    sched.after(sim::seconds(3), [&] {
      motion_at = sched.now();
      home.motion_sensor->trigger();
    });
    sched.run_for(sim::seconds(70));
    if (reacted_at && motion_at) {
      std::printf("  motion -> camera latency: %.1f s (poll interval %lld s)\n",
                  static_cast<double>(*reacted_at - *motion_at) / 1e6,
                  static_cast<long long>(poll / 1'000'000));
    }
    std::printf("  display has shown %llu frames\n",
                static_cast<unsigned long long>(home.display->frames_shown()));
    home.cm11a->set_observer(nullptr);
  }

  std::printf("\n=== (b) event-gateway extension (future work, §6) ===\n");
  {
    // Event gateways on the X10 and HAVi gateways, meshed directly.
    core::EventGateway x10_events(home.net, home.x10_gw->id());
    core::EventGateway havi_events(home.net, home.havi_gw->id());
    (void)x10_events.start();
    (void)havi_events.start();
    x10_events.add_peer({home.havi_gw->id(), core::kEventGatewayPort});
    havi_events.add_peer({home.x10_gw->id(), core::kEventGatewayPort});

    // The X10 gateway publishes motion as an event...
    home.cm11a->set_observer([&](const x10::ObservedCommand& cmd) {
      if (cmd.function == x10::FunctionCode::kOn) {
        x10_events.publish("motion",
                           Value(x10::format_address(cmd.house, cmd.unit)));
      }
    });
    // ...and the HAVi side reacts the moment it arrives.
    std::optional<sim::SimTime> motion_at, reacted_at;
    havi_events.subscribe("motion", [&](const std::string&, const Value& v) {
      if (!reacted_at) {
        reacted_at = sched.now();
        std::printf("  motion event from %s\n", v.to_string().c_str());
        home.havi_adapter->invoke("camera-1", "zoom", {Value(3)},
                                  [](Result<Value>) {});
      }
    });

    sched.after(sim::seconds(2), [&] {
      motion_at = sched.now();
      home.motion_sensor->trigger();
    });
    sched.run_for(sim::seconds(20));
    if (reacted_at && motion_at) {
      std::printf("  motion -> reaction latency: %.3f s (push, no polling)\n",
                  static_cast<double>(*reacted_at - *motion_at) / 1e6);
    } else {
      std::printf("  event did not arrive\n");
      return 1;
    }
  }

  std::printf("\ncamera sent %llu frames total\n",
              static_cast<unsigned long long>(home.camera->frames_sent()));
  return 0;
}
