// Automatic video recording — the paper's §2 motivating integration:
// "the service integration of a VCR control service with a TV program
// service on the Internet can provide an automatic video recording
// service that records TV programs according to user profiles."
//
// Pieces: a SOAP TV-program guide web service (Internet), a Jini user-
// profile service, and the HAVi VCR + tuner FCMs — three middleware,
// one application, zero per-service glue.
//
// Run: ./build/examples/auto_recorder
#include <cstdio>

#include "soap/rpc.hpp"
#include "testbed/home.hpp"

using namespace hcm;

namespace {

// The Internet TV-program web service: listings with start times.
void mount_tv_guide(http::HttpServer& server) {
  static soap::SoapService* guide =
      new soap::SoapService(server, "/tvguide");
  guide->register_method(
      "listings", [](const soap::NamedValues&, soap::CallResultFn done) {
        ValueList programs;
        programs.push_back(Value(ValueMap{
            {"title", Value("Evening News")},
            {"channel", Value(1)},
            {"startsInMinutes", Value(1)},
            {"minutes", Value(2)},
            {"genre", Value("news")},
        }));
        programs.push_back(Value(ValueMap{
            {"title", Value("Sumo Digest")},
            {"channel", Value(3)},
            {"startsInMinutes", Value(2)},
            {"minutes", Value(1)},
            {"genre", Value("sports")},
        }));
        programs.push_back(Value(ValueMap{
            {"title", Value("Late Movie")},
            {"channel", Value(8)},
            {"startsInMinutes", Value(4)},
            {"minutes", Value(2)},
            {"genre", Value("drama")},
        }));
        done(Value(std::move(programs)));
      });
}

}  // namespace

int main() {
  sim::Scheduler sched;
  testbed::SmartHome home(sched);

  // The TV guide lives on the Internet side of the backbone: host it on
  // the VSR host's HTTP server sibling port.
  auto& guide_host = home.net.add_node("tvguide.example.com");
  home.net.attach(guide_host, *home.backbone);
  http::HttpServer guide_http(home.net, guide_host.id(), 80);
  (void)guide_http.start();
  mount_tv_guide(guide_http);

  // A Jini user-profile service: which genres this household records.
  jini::Exporter profile_exporter(home.net, home.laserdisc_node->id(), 4280);
  (void)profile_exporter.start();
  profile_exporter.export_object(
      "profile-1", [](const std::string& method, const ValueList&,
                      InvokeResultFn done) {
        if (method == "genres") {
          done(Value(ValueList{Value("news"), Value("sports")}));
        } else {
          done(not_found(method));
        }
      });
  jini::ServiceItem profile_item;
  profile_item.service_id = "profile-1";
  profile_item.name = "profile-1";
  profile_item.interface = InterfaceDesc{
      "UserProfile", {MethodDesc{"genres", {}, ValueType::kList, false}}};
  profile_item.endpoint = profile_exporter.endpoint();
  jini::Registrar profile_registrar(home.net, home.laserdisc_node->id(),
                                    home.lookup->endpoint(), profile_item);
  profile_registrar.join([](const Status&) {});

  auto status = home.refresh();
  std::printf("framework sync: %s\n", status.to_string().c_str());

  // --- the integration logic (what a developer writes) ---------------
  // 1. Fetch the household profile through the Jini island.
  std::optional<Result<Value>> genres;
  home.jini_adapter->invoke("profile-1", "genres", {},
                            [&](Result<Value> r) { genres = std::move(r); });
  sim::run_until_done(sched, [&] { return genres.has_value(); });
  if (!genres->is_ok()) {
    std::printf("profile fetch failed: %s\n",
                genres->status().to_string().c_str());
    return 1;
  }
  std::printf("user profile genres: %s\n",
              genres->value().to_string().c_str());

  // 2. Fetch listings from the Internet web service (plain SOAP).
  soap::SoapClient soap_client(home.net, home.havi_gw->id());
  std::optional<Result<Value>> listings;
  soap_client.call({guide_host.id(), 80}, "/tvguide", "urn:tvguide",
                   "listings", {},
                   [&](Result<Value> r) { listings = std::move(r); });
  sim::run_until_done(sched, [&] { return listings.has_value(); });
  if (!listings->is_ok()) {
    std::printf("guide fetch failed\n");
    return 1;
  }

  // 3. Schedule recordings: tune + record through the HAVi island for
  //    every program matching the profile.
  int scheduled = 0;
  for (const auto& program : listings->value().as_list()) {
    bool wanted = false;
    for (const auto& g : genres->value().as_list()) {
      if (program.at("genre") == g) wanted = true;
    }
    std::printf("  %-14s ch%-2lld %s\n",
                program.at("title").as_string().c_str(),
                static_cast<long long>(program.at("channel").as_int()),
                wanted ? "[record]" : "[skip]");
    if (!wanted) continue;
    ++scheduled;
    auto start_delay =
        sim::seconds(program.at("startsInMinutes").as_int() * 60);
    auto channel = program.at("channel");
    auto minutes = program.at("minutes");
    sched.after(start_delay, [&home, channel, minutes] {
      home.havi_adapter->invoke("tuner-1", "setChannel", {channel},
                                [&home, minutes](Result<Value>) {
                                  home.havi_adapter->invoke(
                                      "vcr-1", "record", {minutes},
                                      [](Result<Value>) {});
                                });
    });
  }

  // Let the evening play out.
  sched.run_for(sim::seconds(10 * 60));
  std::printf("scheduled %d recordings; tape now holds %llu frames "
              "(%llu s of video), tuner on channel %lld\n",
              scheduled,
              static_cast<unsigned long long>(home.vcr->tape_frames()),
              static_cast<unsigned long long>(home.vcr->tape_frames() / 30),
              static_cast<long long>(home.tuner->channel()));
  return home.vcr->tape_frames() > 0 ? 0 : 1;
}
