# Empty compiler generated dependencies file for bench_ablation_vsg_protocol.
# This may be replaced when dependencies are built.
