# Empty dependencies file for bench_sec5_bridge_scaling.
# This may be replaced when dependencies are built.
