file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_proxygen.dir/bench_ablation_proxygen.cpp.o"
  "CMakeFiles/bench_ablation_proxygen.dir/bench_ablation_proxygen.cpp.o.d"
  "bench_ablation_proxygen"
  "bench_ablation_proxygen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_proxygen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
