# Empty compiler generated dependencies file for bench_ablation_proxygen.
# This may be replaced when dependencies are built.
