file(REMOVE_RECURSE
  "CMakeFiles/bench_sec42_async_limits.dir/bench_sec42_async_limits.cpp.o"
  "CMakeFiles/bench_sec42_async_limits.dir/bench_sec42_async_limits.cpp.o.d"
  "bench_sec42_async_limits"
  "bench_sec42_async_limits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec42_async_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
