
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_sec42_async_limits.cpp" "bench/CMakeFiles/bench_sec42_async_limits.dir/bench_sec42_async_limits.cpp.o" "gcc" "bench/CMakeFiles/bench_sec42_async_limits.dir/bench_sec42_async_limits.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hcm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/testbed/CMakeFiles/hcm_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/jini/CMakeFiles/hcm_jini.dir/DependInfo.cmake"
  "/root/repo/build/src/havi/CMakeFiles/hcm_havi.dir/DependInfo.cmake"
  "/root/repo/build/src/x10/CMakeFiles/hcm_x10.dir/DependInfo.cmake"
  "/root/repo/build/src/mail/CMakeFiles/hcm_mail.dir/DependInfo.cmake"
  "/root/repo/build/src/upnp/CMakeFiles/hcm_upnp.dir/DependInfo.cmake"
  "/root/repo/build/src/soap/CMakeFiles/hcm_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/hcm_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hcm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hcm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/hcm_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hcm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
