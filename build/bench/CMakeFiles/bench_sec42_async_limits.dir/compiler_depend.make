# Empty compiler generated dependencies file for bench_sec42_async_limits.
# This may be replaced when dependencies are built.
