file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_connecting.dir/bench_fig1_connecting.cpp.o"
  "CMakeFiles/bench_fig1_connecting.dir/bench_fig1_connecting.cpp.o.d"
  "bench_fig1_connecting"
  "bench_fig1_connecting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_connecting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
