# Empty dependencies file for bench_fig1_connecting.
# This may be replaced when dependencies are built.
