file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_proxy_modules.dir/bench_fig2_proxy_modules.cpp.o"
  "CMakeFiles/bench_fig2_proxy_modules.dir/bench_fig2_proxy_modules.cpp.o.d"
  "bench_fig2_proxy_modules"
  "bench_fig2_proxy_modules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_proxy_modules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
