# Empty compiler generated dependencies file for bench_fig2_proxy_modules.
# This may be replaced when dependencies are built.
