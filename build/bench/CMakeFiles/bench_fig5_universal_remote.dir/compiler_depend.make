# Empty compiler generated dependencies file for bench_fig5_universal_remote.
# This may be replaced when dependencies are built.
