file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_jini_x10.dir/bench_fig4_jini_x10.cpp.o"
  "CMakeFiles/bench_fig4_jini_x10.dir/bench_fig4_jini_x10.cpp.o.d"
  "bench_fig4_jini_x10"
  "bench_fig4_jini_x10.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_jini_x10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
