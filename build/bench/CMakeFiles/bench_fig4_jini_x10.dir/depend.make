# Empty dependencies file for bench_fig4_jini_x10.
# This may be replaced when dependencies are built.
