file(REMOVE_RECURSE
  "CMakeFiles/hcm_sim.dir/scheduler.cpp.o"
  "CMakeFiles/hcm_sim.dir/scheduler.cpp.o.d"
  "libhcm_sim.a"
  "libhcm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
