file(REMOVE_RECURSE
  "libhcm_sim.a"
)
