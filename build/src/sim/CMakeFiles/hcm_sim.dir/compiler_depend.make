# Empty compiler generated dependencies file for hcm_sim.
# This may be replaced when dependencies are built.
