file(REMOVE_RECURSE
  "libhcm_upnp.a"
)
