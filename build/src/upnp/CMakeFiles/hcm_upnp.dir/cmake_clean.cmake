file(REMOVE_RECURSE
  "CMakeFiles/hcm_upnp.dir/upnp.cpp.o"
  "CMakeFiles/hcm_upnp.dir/upnp.cpp.o.d"
  "libhcm_upnp.a"
  "libhcm_upnp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcm_upnp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
