# Empty dependencies file for hcm_upnp.
# This may be replaced when dependencies are built.
