file(REMOVE_RECURSE
  "CMakeFiles/hcm_core.dir/activation.cpp.o"
  "CMakeFiles/hcm_core.dir/activation.cpp.o.d"
  "CMakeFiles/hcm_core.dir/adapters/havi_adapter.cpp.o"
  "CMakeFiles/hcm_core.dir/adapters/havi_adapter.cpp.o.d"
  "CMakeFiles/hcm_core.dir/adapters/jini_adapter.cpp.o"
  "CMakeFiles/hcm_core.dir/adapters/jini_adapter.cpp.o.d"
  "CMakeFiles/hcm_core.dir/adapters/mail_adapter.cpp.o"
  "CMakeFiles/hcm_core.dir/adapters/mail_adapter.cpp.o.d"
  "CMakeFiles/hcm_core.dir/adapters/upnp_adapter.cpp.o"
  "CMakeFiles/hcm_core.dir/adapters/upnp_adapter.cpp.o.d"
  "CMakeFiles/hcm_core.dir/adapters/x10_adapter.cpp.o"
  "CMakeFiles/hcm_core.dir/adapters/x10_adapter.cpp.o.d"
  "CMakeFiles/hcm_core.dir/av_relay.cpp.o"
  "CMakeFiles/hcm_core.dir/av_relay.cpp.o.d"
  "CMakeFiles/hcm_core.dir/binary_channel.cpp.o"
  "CMakeFiles/hcm_core.dir/binary_channel.cpp.o.d"
  "CMakeFiles/hcm_core.dir/meta.cpp.o"
  "CMakeFiles/hcm_core.dir/meta.cpp.o.d"
  "CMakeFiles/hcm_core.dir/naming.cpp.o"
  "CMakeFiles/hcm_core.dir/naming.cpp.o.d"
  "CMakeFiles/hcm_core.dir/pcm.cpp.o"
  "CMakeFiles/hcm_core.dir/pcm.cpp.o.d"
  "CMakeFiles/hcm_core.dir/proxygen.cpp.o"
  "CMakeFiles/hcm_core.dir/proxygen.cpp.o.d"
  "CMakeFiles/hcm_core.dir/stream_gateway.cpp.o"
  "CMakeFiles/hcm_core.dir/stream_gateway.cpp.o.d"
  "CMakeFiles/hcm_core.dir/vsg.cpp.o"
  "CMakeFiles/hcm_core.dir/vsg.cpp.o.d"
  "CMakeFiles/hcm_core.dir/vsr.cpp.o"
  "CMakeFiles/hcm_core.dir/vsr.cpp.o.d"
  "libhcm_core.a"
  "libhcm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
