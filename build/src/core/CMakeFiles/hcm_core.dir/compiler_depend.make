# Empty compiler generated dependencies file for hcm_core.
# This may be replaced when dependencies are built.
