file(REMOVE_RECURSE
  "libhcm_core.a"
)
