
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/activation.cpp" "src/core/CMakeFiles/hcm_core.dir/activation.cpp.o" "gcc" "src/core/CMakeFiles/hcm_core.dir/activation.cpp.o.d"
  "/root/repo/src/core/adapters/havi_adapter.cpp" "src/core/CMakeFiles/hcm_core.dir/adapters/havi_adapter.cpp.o" "gcc" "src/core/CMakeFiles/hcm_core.dir/adapters/havi_adapter.cpp.o.d"
  "/root/repo/src/core/adapters/jini_adapter.cpp" "src/core/CMakeFiles/hcm_core.dir/adapters/jini_adapter.cpp.o" "gcc" "src/core/CMakeFiles/hcm_core.dir/adapters/jini_adapter.cpp.o.d"
  "/root/repo/src/core/adapters/mail_adapter.cpp" "src/core/CMakeFiles/hcm_core.dir/adapters/mail_adapter.cpp.o" "gcc" "src/core/CMakeFiles/hcm_core.dir/adapters/mail_adapter.cpp.o.d"
  "/root/repo/src/core/adapters/upnp_adapter.cpp" "src/core/CMakeFiles/hcm_core.dir/adapters/upnp_adapter.cpp.o" "gcc" "src/core/CMakeFiles/hcm_core.dir/adapters/upnp_adapter.cpp.o.d"
  "/root/repo/src/core/adapters/x10_adapter.cpp" "src/core/CMakeFiles/hcm_core.dir/adapters/x10_adapter.cpp.o" "gcc" "src/core/CMakeFiles/hcm_core.dir/adapters/x10_adapter.cpp.o.d"
  "/root/repo/src/core/av_relay.cpp" "src/core/CMakeFiles/hcm_core.dir/av_relay.cpp.o" "gcc" "src/core/CMakeFiles/hcm_core.dir/av_relay.cpp.o.d"
  "/root/repo/src/core/binary_channel.cpp" "src/core/CMakeFiles/hcm_core.dir/binary_channel.cpp.o" "gcc" "src/core/CMakeFiles/hcm_core.dir/binary_channel.cpp.o.d"
  "/root/repo/src/core/meta.cpp" "src/core/CMakeFiles/hcm_core.dir/meta.cpp.o" "gcc" "src/core/CMakeFiles/hcm_core.dir/meta.cpp.o.d"
  "/root/repo/src/core/naming.cpp" "src/core/CMakeFiles/hcm_core.dir/naming.cpp.o" "gcc" "src/core/CMakeFiles/hcm_core.dir/naming.cpp.o.d"
  "/root/repo/src/core/pcm.cpp" "src/core/CMakeFiles/hcm_core.dir/pcm.cpp.o" "gcc" "src/core/CMakeFiles/hcm_core.dir/pcm.cpp.o.d"
  "/root/repo/src/core/proxygen.cpp" "src/core/CMakeFiles/hcm_core.dir/proxygen.cpp.o" "gcc" "src/core/CMakeFiles/hcm_core.dir/proxygen.cpp.o.d"
  "/root/repo/src/core/stream_gateway.cpp" "src/core/CMakeFiles/hcm_core.dir/stream_gateway.cpp.o" "gcc" "src/core/CMakeFiles/hcm_core.dir/stream_gateway.cpp.o.d"
  "/root/repo/src/core/vsg.cpp" "src/core/CMakeFiles/hcm_core.dir/vsg.cpp.o" "gcc" "src/core/CMakeFiles/hcm_core.dir/vsg.cpp.o.d"
  "/root/repo/src/core/vsr.cpp" "src/core/CMakeFiles/hcm_core.dir/vsr.cpp.o" "gcc" "src/core/CMakeFiles/hcm_core.dir/vsr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hcm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hcm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/hcm_http.dir/DependInfo.cmake"
  "/root/repo/build/src/soap/CMakeFiles/hcm_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/hcm_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/jini/CMakeFiles/hcm_jini.dir/DependInfo.cmake"
  "/root/repo/build/src/havi/CMakeFiles/hcm_havi.dir/DependInfo.cmake"
  "/root/repo/build/src/x10/CMakeFiles/hcm_x10.dir/DependInfo.cmake"
  "/root/repo/build/src/mail/CMakeFiles/hcm_mail.dir/DependInfo.cmake"
  "/root/repo/build/src/upnp/CMakeFiles/hcm_upnp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hcm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
