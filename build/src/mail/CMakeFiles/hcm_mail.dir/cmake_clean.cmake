file(REMOVE_RECURSE
  "CMakeFiles/hcm_mail.dir/mail.cpp.o"
  "CMakeFiles/hcm_mail.dir/mail.cpp.o.d"
  "libhcm_mail.a"
  "libhcm_mail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcm_mail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
