file(REMOVE_RECURSE
  "libhcm_mail.a"
)
