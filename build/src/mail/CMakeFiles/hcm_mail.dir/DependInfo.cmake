
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mail/mail.cpp" "src/mail/CMakeFiles/hcm_mail.dir/mail.cpp.o" "gcc" "src/mail/CMakeFiles/hcm_mail.dir/mail.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hcm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hcm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hcm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
