# Empty dependencies file for hcm_mail.
# This may be replaced when dependencies are built.
