file(REMOVE_RECURSE
  "libhcm_havi.a"
)
