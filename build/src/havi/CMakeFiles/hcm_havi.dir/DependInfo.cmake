
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/havi/dcm.cpp" "src/havi/CMakeFiles/hcm_havi.dir/dcm.cpp.o" "gcc" "src/havi/CMakeFiles/hcm_havi.dir/dcm.cpp.o.d"
  "/root/repo/src/havi/event_manager.cpp" "src/havi/CMakeFiles/hcm_havi.dir/event_manager.cpp.o" "gcc" "src/havi/CMakeFiles/hcm_havi.dir/event_manager.cpp.o.d"
  "/root/repo/src/havi/fcm.cpp" "src/havi/CMakeFiles/hcm_havi.dir/fcm.cpp.o" "gcc" "src/havi/CMakeFiles/hcm_havi.dir/fcm.cpp.o.d"
  "/root/repo/src/havi/fcm_av.cpp" "src/havi/CMakeFiles/hcm_havi.dir/fcm_av.cpp.o" "gcc" "src/havi/CMakeFiles/hcm_havi.dir/fcm_av.cpp.o.d"
  "/root/repo/src/havi/messaging.cpp" "src/havi/CMakeFiles/hcm_havi.dir/messaging.cpp.o" "gcc" "src/havi/CMakeFiles/hcm_havi.dir/messaging.cpp.o.d"
  "/root/repo/src/havi/registry.cpp" "src/havi/CMakeFiles/hcm_havi.dir/registry.cpp.o" "gcc" "src/havi/CMakeFiles/hcm_havi.dir/registry.cpp.o.d"
  "/root/repo/src/havi/stream_manager.cpp" "src/havi/CMakeFiles/hcm_havi.dir/stream_manager.cpp.o" "gcc" "src/havi/CMakeFiles/hcm_havi.dir/stream_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hcm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hcm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hcm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
