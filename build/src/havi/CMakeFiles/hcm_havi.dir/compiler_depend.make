# Empty compiler generated dependencies file for hcm_havi.
# This may be replaced when dependencies are built.
