file(REMOVE_RECURSE
  "CMakeFiles/hcm_havi.dir/dcm.cpp.o"
  "CMakeFiles/hcm_havi.dir/dcm.cpp.o.d"
  "CMakeFiles/hcm_havi.dir/event_manager.cpp.o"
  "CMakeFiles/hcm_havi.dir/event_manager.cpp.o.d"
  "CMakeFiles/hcm_havi.dir/fcm.cpp.o"
  "CMakeFiles/hcm_havi.dir/fcm.cpp.o.d"
  "CMakeFiles/hcm_havi.dir/fcm_av.cpp.o"
  "CMakeFiles/hcm_havi.dir/fcm_av.cpp.o.d"
  "CMakeFiles/hcm_havi.dir/messaging.cpp.o"
  "CMakeFiles/hcm_havi.dir/messaging.cpp.o.d"
  "CMakeFiles/hcm_havi.dir/registry.cpp.o"
  "CMakeFiles/hcm_havi.dir/registry.cpp.o.d"
  "CMakeFiles/hcm_havi.dir/stream_manager.cpp.o"
  "CMakeFiles/hcm_havi.dir/stream_manager.cpp.o.d"
  "libhcm_havi.a"
  "libhcm_havi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcm_havi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
