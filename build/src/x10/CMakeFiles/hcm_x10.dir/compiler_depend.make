# Empty compiler generated dependencies file for hcm_x10.
# This may be replaced when dependencies are built.
