file(REMOVE_RECURSE
  "libhcm_x10.a"
)
