
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/x10/cm11a.cpp" "src/x10/CMakeFiles/hcm_x10.dir/cm11a.cpp.o" "gcc" "src/x10/CMakeFiles/hcm_x10.dir/cm11a.cpp.o.d"
  "/root/repo/src/x10/codec.cpp" "src/x10/CMakeFiles/hcm_x10.dir/codec.cpp.o" "gcc" "src/x10/CMakeFiles/hcm_x10.dir/codec.cpp.o.d"
  "/root/repo/src/x10/device.cpp" "src/x10/CMakeFiles/hcm_x10.dir/device.cpp.o" "gcc" "src/x10/CMakeFiles/hcm_x10.dir/device.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hcm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hcm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hcm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
