file(REMOVE_RECURSE
  "CMakeFiles/hcm_x10.dir/cm11a.cpp.o"
  "CMakeFiles/hcm_x10.dir/cm11a.cpp.o.d"
  "CMakeFiles/hcm_x10.dir/codec.cpp.o"
  "CMakeFiles/hcm_x10.dir/codec.cpp.o.d"
  "CMakeFiles/hcm_x10.dir/device.cpp.o"
  "CMakeFiles/hcm_x10.dir/device.cpp.o.d"
  "libhcm_x10.a"
  "libhcm_x10.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcm_x10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
