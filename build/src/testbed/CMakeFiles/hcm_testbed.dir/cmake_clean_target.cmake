file(REMOVE_RECURSE
  "libhcm_testbed.a"
)
