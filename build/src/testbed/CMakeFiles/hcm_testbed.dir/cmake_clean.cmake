file(REMOVE_RECURSE
  "CMakeFiles/hcm_testbed.dir/home.cpp.o"
  "CMakeFiles/hcm_testbed.dir/home.cpp.o.d"
  "libhcm_testbed.a"
  "libhcm_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcm_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
