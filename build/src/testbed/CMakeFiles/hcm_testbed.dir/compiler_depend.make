# Empty compiler generated dependencies file for hcm_testbed.
# This may be replaced when dependencies are built.
