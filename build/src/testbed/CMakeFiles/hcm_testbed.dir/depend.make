# Empty dependencies file for hcm_testbed.
# This may be replaced when dependencies are built.
