file(REMOVE_RECURSE
  "CMakeFiles/hcm_xml.dir/xml.cpp.o"
  "CMakeFiles/hcm_xml.dir/xml.cpp.o.d"
  "libhcm_xml.a"
  "libhcm_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcm_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
