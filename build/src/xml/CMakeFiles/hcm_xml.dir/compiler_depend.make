# Empty compiler generated dependencies file for hcm_xml.
# This may be replaced when dependencies are built.
