file(REMOVE_RECURSE
  "libhcm_xml.a"
)
