# Empty dependencies file for hcm_http.
# This may be replaced when dependencies are built.
