file(REMOVE_RECURSE
  "libhcm_http.a"
)
