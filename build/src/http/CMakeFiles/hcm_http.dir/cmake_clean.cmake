file(REMOVE_RECURSE
  "CMakeFiles/hcm_http.dir/client.cpp.o"
  "CMakeFiles/hcm_http.dir/client.cpp.o.d"
  "CMakeFiles/hcm_http.dir/message.cpp.o"
  "CMakeFiles/hcm_http.dir/message.cpp.o.d"
  "CMakeFiles/hcm_http.dir/server.cpp.o"
  "CMakeFiles/hcm_http.dir/server.cpp.o.d"
  "libhcm_http.a"
  "libhcm_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcm_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
