# Empty dependencies file for hcm_common.
# This may be replaced when dependencies are built.
