file(REMOVE_RECURSE
  "libhcm_common.a"
)
