file(REMOVE_RECURSE
  "CMakeFiles/hcm_common.dir/base64.cpp.o"
  "CMakeFiles/hcm_common.dir/base64.cpp.o.d"
  "CMakeFiles/hcm_common.dir/bytes.cpp.o"
  "CMakeFiles/hcm_common.dir/bytes.cpp.o.d"
  "CMakeFiles/hcm_common.dir/interface_desc.cpp.o"
  "CMakeFiles/hcm_common.dir/interface_desc.cpp.o.d"
  "CMakeFiles/hcm_common.dir/logging.cpp.o"
  "CMakeFiles/hcm_common.dir/logging.cpp.o.d"
  "CMakeFiles/hcm_common.dir/service.cpp.o"
  "CMakeFiles/hcm_common.dir/service.cpp.o.d"
  "CMakeFiles/hcm_common.dir/status.cpp.o"
  "CMakeFiles/hcm_common.dir/status.cpp.o.d"
  "CMakeFiles/hcm_common.dir/strings.cpp.o"
  "CMakeFiles/hcm_common.dir/strings.cpp.o.d"
  "CMakeFiles/hcm_common.dir/uri.cpp.o"
  "CMakeFiles/hcm_common.dir/uri.cpp.o.d"
  "CMakeFiles/hcm_common.dir/value.cpp.o"
  "CMakeFiles/hcm_common.dir/value.cpp.o.d"
  "CMakeFiles/hcm_common.dir/value_codec.cpp.o"
  "CMakeFiles/hcm_common.dir/value_codec.cpp.o.d"
  "libhcm_common.a"
  "libhcm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
