file(REMOVE_RECURSE
  "CMakeFiles/hcm_jini.dir/exporter.cpp.o"
  "CMakeFiles/hcm_jini.dir/exporter.cpp.o.d"
  "CMakeFiles/hcm_jini.dir/lookup.cpp.o"
  "CMakeFiles/hcm_jini.dir/lookup.cpp.o.d"
  "CMakeFiles/hcm_jini.dir/protocol.cpp.o"
  "CMakeFiles/hcm_jini.dir/protocol.cpp.o.d"
  "CMakeFiles/hcm_jini.dir/proxy.cpp.o"
  "CMakeFiles/hcm_jini.dir/proxy.cpp.o.d"
  "CMakeFiles/hcm_jini.dir/registrar.cpp.o"
  "CMakeFiles/hcm_jini.dir/registrar.cpp.o.d"
  "libhcm_jini.a"
  "libhcm_jini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcm_jini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
