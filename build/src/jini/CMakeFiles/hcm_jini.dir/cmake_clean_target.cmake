file(REMOVE_RECURSE
  "libhcm_jini.a"
)
