# Empty dependencies file for hcm_jini.
# This may be replaced when dependencies are built.
