# Empty compiler generated dependencies file for hcm_net.
# This may be replaced when dependencies are built.
