
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/ieee1394.cpp" "src/net/CMakeFiles/hcm_net.dir/ieee1394.cpp.o" "gcc" "src/net/CMakeFiles/hcm_net.dir/ieee1394.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/net/CMakeFiles/hcm_net.dir/network.cpp.o" "gcc" "src/net/CMakeFiles/hcm_net.dir/network.cpp.o.d"
  "/root/repo/src/net/node.cpp" "src/net/CMakeFiles/hcm_net.dir/node.cpp.o" "gcc" "src/net/CMakeFiles/hcm_net.dir/node.cpp.o.d"
  "/root/repo/src/net/powerline.cpp" "src/net/CMakeFiles/hcm_net.dir/powerline.cpp.o" "gcc" "src/net/CMakeFiles/hcm_net.dir/powerline.cpp.o.d"
  "/root/repo/src/net/segment.cpp" "src/net/CMakeFiles/hcm_net.dir/segment.cpp.o" "gcc" "src/net/CMakeFiles/hcm_net.dir/segment.cpp.o.d"
  "/root/repo/src/net/stream.cpp" "src/net/CMakeFiles/hcm_net.dir/stream.cpp.o" "gcc" "src/net/CMakeFiles/hcm_net.dir/stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hcm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hcm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
