file(REMOVE_RECURSE
  "libhcm_net.a"
)
