file(REMOVE_RECURSE
  "CMakeFiles/hcm_net.dir/ieee1394.cpp.o"
  "CMakeFiles/hcm_net.dir/ieee1394.cpp.o.d"
  "CMakeFiles/hcm_net.dir/network.cpp.o"
  "CMakeFiles/hcm_net.dir/network.cpp.o.d"
  "CMakeFiles/hcm_net.dir/node.cpp.o"
  "CMakeFiles/hcm_net.dir/node.cpp.o.d"
  "CMakeFiles/hcm_net.dir/powerline.cpp.o"
  "CMakeFiles/hcm_net.dir/powerline.cpp.o.d"
  "CMakeFiles/hcm_net.dir/segment.cpp.o"
  "CMakeFiles/hcm_net.dir/segment.cpp.o.d"
  "CMakeFiles/hcm_net.dir/stream.cpp.o"
  "CMakeFiles/hcm_net.dir/stream.cpp.o.d"
  "libhcm_net.a"
  "libhcm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
