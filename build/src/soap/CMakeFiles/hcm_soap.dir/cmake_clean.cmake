file(REMOVE_RECURSE
  "CMakeFiles/hcm_soap.dir/envelope.cpp.o"
  "CMakeFiles/hcm_soap.dir/envelope.cpp.o.d"
  "CMakeFiles/hcm_soap.dir/rpc.cpp.o"
  "CMakeFiles/hcm_soap.dir/rpc.cpp.o.d"
  "CMakeFiles/hcm_soap.dir/uddi.cpp.o"
  "CMakeFiles/hcm_soap.dir/uddi.cpp.o.d"
  "CMakeFiles/hcm_soap.dir/value_xml.cpp.o"
  "CMakeFiles/hcm_soap.dir/value_xml.cpp.o.d"
  "CMakeFiles/hcm_soap.dir/wsdl.cpp.o"
  "CMakeFiles/hcm_soap.dir/wsdl.cpp.o.d"
  "libhcm_soap.a"
  "libhcm_soap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcm_soap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
