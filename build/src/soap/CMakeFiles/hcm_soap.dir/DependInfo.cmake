
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soap/envelope.cpp" "src/soap/CMakeFiles/hcm_soap.dir/envelope.cpp.o" "gcc" "src/soap/CMakeFiles/hcm_soap.dir/envelope.cpp.o.d"
  "/root/repo/src/soap/rpc.cpp" "src/soap/CMakeFiles/hcm_soap.dir/rpc.cpp.o" "gcc" "src/soap/CMakeFiles/hcm_soap.dir/rpc.cpp.o.d"
  "/root/repo/src/soap/uddi.cpp" "src/soap/CMakeFiles/hcm_soap.dir/uddi.cpp.o" "gcc" "src/soap/CMakeFiles/hcm_soap.dir/uddi.cpp.o.d"
  "/root/repo/src/soap/value_xml.cpp" "src/soap/CMakeFiles/hcm_soap.dir/value_xml.cpp.o" "gcc" "src/soap/CMakeFiles/hcm_soap.dir/value_xml.cpp.o.d"
  "/root/repo/src/soap/wsdl.cpp" "src/soap/CMakeFiles/hcm_soap.dir/wsdl.cpp.o" "gcc" "src/soap/CMakeFiles/hcm_soap.dir/wsdl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hcm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/hcm_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/hcm_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hcm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hcm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
