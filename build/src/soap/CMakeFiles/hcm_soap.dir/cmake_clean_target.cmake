file(REMOVE_RECURSE
  "libhcm_soap.a"
)
