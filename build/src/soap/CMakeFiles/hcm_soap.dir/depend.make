# Empty dependencies file for hcm_soap.
# This may be replaced when dependencies are built.
