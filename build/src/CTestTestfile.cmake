# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("net")
subdirs("xml")
subdirs("http")
subdirs("soap")
subdirs("jini")
subdirs("havi")
subdirs("x10")
subdirs("mail")
subdirs("upnp")
subdirs("core")
subdirs("testbed")
