
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/base64_test.cpp" "tests/CMakeFiles/hcm_tests.dir/common/base64_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/common/base64_test.cpp.o.d"
  "/root/repo/tests/common/bytes_test.cpp" "tests/CMakeFiles/hcm_tests.dir/common/bytes_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/common/bytes_test.cpp.o.d"
  "/root/repo/tests/common/interface_desc_test.cpp" "tests/CMakeFiles/hcm_tests.dir/common/interface_desc_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/common/interface_desc_test.cpp.o.d"
  "/root/repo/tests/common/status_test.cpp" "tests/CMakeFiles/hcm_tests.dir/common/status_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/common/status_test.cpp.o.d"
  "/root/repo/tests/common/strings_test.cpp" "tests/CMakeFiles/hcm_tests.dir/common/strings_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/common/strings_test.cpp.o.d"
  "/root/repo/tests/common/uri_test.cpp" "tests/CMakeFiles/hcm_tests.dir/common/uri_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/common/uri_test.cpp.o.d"
  "/root/repo/tests/common/value_codec_test.cpp" "tests/CMakeFiles/hcm_tests.dir/common/value_codec_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/common/value_codec_test.cpp.o.d"
  "/root/repo/tests/common/value_test.cpp" "tests/CMakeFiles/hcm_tests.dir/common/value_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/common/value_test.cpp.o.d"
  "/root/repo/tests/core/activation_test.cpp" "tests/CMakeFiles/hcm_tests.dir/core/activation_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/core/activation_test.cpp.o.d"
  "/root/repo/tests/core/adapter_test.cpp" "tests/CMakeFiles/hcm_tests.dir/core/adapter_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/core/adapter_test.cpp.o.d"
  "/root/repo/tests/core/av_relay_test.cpp" "tests/CMakeFiles/hcm_tests.dir/core/av_relay_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/core/av_relay_test.cpp.o.d"
  "/root/repo/tests/core/binary_channel_test.cpp" "tests/CMakeFiles/hcm_tests.dir/core/binary_channel_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/core/binary_channel_test.cpp.o.d"
  "/root/repo/tests/core/integration_test.cpp" "tests/CMakeFiles/hcm_tests.dir/core/integration_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/core/integration_test.cpp.o.d"
  "/root/repo/tests/core/meta_test.cpp" "tests/CMakeFiles/hcm_tests.dir/core/meta_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/core/meta_test.cpp.o.d"
  "/root/repo/tests/core/property_test.cpp" "tests/CMakeFiles/hcm_tests.dir/core/property_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/core/property_test.cpp.o.d"
  "/root/repo/tests/core/stream_gateway_test.cpp" "tests/CMakeFiles/hcm_tests.dir/core/stream_gateway_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/core/stream_gateway_test.cpp.o.d"
  "/root/repo/tests/core/upnp_island_test.cpp" "tests/CMakeFiles/hcm_tests.dir/core/upnp_island_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/core/upnp_island_test.cpp.o.d"
  "/root/repo/tests/core/vsg_test.cpp" "tests/CMakeFiles/hcm_tests.dir/core/vsg_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/core/vsg_test.cpp.o.d"
  "/root/repo/tests/havi/fcm_av_test.cpp" "tests/CMakeFiles/hcm_tests.dir/havi/fcm_av_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/havi/fcm_av_test.cpp.o.d"
  "/root/repo/tests/havi/havi_stack_test.cpp" "tests/CMakeFiles/hcm_tests.dir/havi/havi_stack_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/havi/havi_stack_test.cpp.o.d"
  "/root/repo/tests/havi/messaging_test.cpp" "tests/CMakeFiles/hcm_tests.dir/havi/messaging_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/havi/messaging_test.cpp.o.d"
  "/root/repo/tests/http/client_pool_test.cpp" "tests/CMakeFiles/hcm_tests.dir/http/client_pool_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/http/client_pool_test.cpp.o.d"
  "/root/repo/tests/http/message_test.cpp" "tests/CMakeFiles/hcm_tests.dir/http/message_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/http/message_test.cpp.o.d"
  "/root/repo/tests/http/server_client_test.cpp" "tests/CMakeFiles/hcm_tests.dir/http/server_client_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/http/server_client_test.cpp.o.d"
  "/root/repo/tests/jini/lookup_test.cpp" "tests/CMakeFiles/hcm_tests.dir/jini/lookup_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/jini/lookup_test.cpp.o.d"
  "/root/repo/tests/jini/protocol_test.cpp" "tests/CMakeFiles/hcm_tests.dir/jini/protocol_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/jini/protocol_test.cpp.o.d"
  "/root/repo/tests/mail/mail_test.cpp" "tests/CMakeFiles/hcm_tests.dir/mail/mail_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/mail/mail_test.cpp.o.d"
  "/root/repo/tests/net/ieee1394_test.cpp" "tests/CMakeFiles/hcm_tests.dir/net/ieee1394_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/net/ieee1394_test.cpp.o.d"
  "/root/repo/tests/net/network_test.cpp" "tests/CMakeFiles/hcm_tests.dir/net/network_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/net/network_test.cpp.o.d"
  "/root/repo/tests/net/powerline_test.cpp" "tests/CMakeFiles/hcm_tests.dir/net/powerline_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/net/powerline_test.cpp.o.d"
  "/root/repo/tests/net/stream_test.cpp" "tests/CMakeFiles/hcm_tests.dir/net/stream_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/net/stream_test.cpp.o.d"
  "/root/repo/tests/sim/scheduler_test.cpp" "tests/CMakeFiles/hcm_tests.dir/sim/scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/sim/scheduler_test.cpp.o.d"
  "/root/repo/tests/soap/envelope_test.cpp" "tests/CMakeFiles/hcm_tests.dir/soap/envelope_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/soap/envelope_test.cpp.o.d"
  "/root/repo/tests/soap/rpc_test.cpp" "tests/CMakeFiles/hcm_tests.dir/soap/rpc_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/soap/rpc_test.cpp.o.d"
  "/root/repo/tests/soap/uddi_test.cpp" "tests/CMakeFiles/hcm_tests.dir/soap/uddi_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/soap/uddi_test.cpp.o.d"
  "/root/repo/tests/soap/value_xml_test.cpp" "tests/CMakeFiles/hcm_tests.dir/soap/value_xml_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/soap/value_xml_test.cpp.o.d"
  "/root/repo/tests/soap/wsdl_test.cpp" "tests/CMakeFiles/hcm_tests.dir/soap/wsdl_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/soap/wsdl_test.cpp.o.d"
  "/root/repo/tests/upnp/upnp_test.cpp" "tests/CMakeFiles/hcm_tests.dir/upnp/upnp_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/upnp/upnp_test.cpp.o.d"
  "/root/repo/tests/x10/codec_test.cpp" "tests/CMakeFiles/hcm_tests.dir/x10/codec_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/x10/codec_test.cpp.o.d"
  "/root/repo/tests/x10/device_test.cpp" "tests/CMakeFiles/hcm_tests.dir/x10/device_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/x10/device_test.cpp.o.d"
  "/root/repo/tests/xml/xml_test.cpp" "tests/CMakeFiles/hcm_tests.dir/xml/xml_test.cpp.o" "gcc" "tests/CMakeFiles/hcm_tests.dir/xml/xml_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hcm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hcm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hcm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/hcm_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/hcm_http.dir/DependInfo.cmake"
  "/root/repo/build/src/soap/CMakeFiles/hcm_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/jini/CMakeFiles/hcm_jini.dir/DependInfo.cmake"
  "/root/repo/build/src/havi/CMakeFiles/hcm_havi.dir/DependInfo.cmake"
  "/root/repo/build/src/x10/CMakeFiles/hcm_x10.dir/DependInfo.cmake"
  "/root/repo/build/src/mail/CMakeFiles/hcm_mail.dir/DependInfo.cmake"
  "/root/repo/build/src/upnp/CMakeFiles/hcm_upnp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hcm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/testbed/CMakeFiles/hcm_testbed.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
