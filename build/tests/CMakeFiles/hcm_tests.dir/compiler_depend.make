# Empty compiler generated dependencies file for hcm_tests.
# This may be replaced when dependencies are built.
