# Empty compiler generated dependencies file for new_middleware.
# This may be replaced when dependencies are built.
