file(REMOVE_RECURSE
  "CMakeFiles/new_middleware.dir/new_middleware.cpp.o"
  "CMakeFiles/new_middleware.dir/new_middleware.cpp.o.d"
  "new_middleware"
  "new_middleware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/new_middleware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
