file(REMOVE_RECURSE
  "CMakeFiles/auto_recorder.dir/auto_recorder.cpp.o"
  "CMakeFiles/auto_recorder.dir/auto_recorder.cpp.o.d"
  "auto_recorder"
  "auto_recorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_recorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
