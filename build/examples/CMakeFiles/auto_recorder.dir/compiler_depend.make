# Empty compiler generated dependencies file for auto_recorder.
# This may be replaced when dependencies are built.
