file(REMOVE_RECURSE
  "CMakeFiles/event_multimedia.dir/event_multimedia.cpp.o"
  "CMakeFiles/event_multimedia.dir/event_multimedia.cpp.o.d"
  "event_multimedia"
  "event_multimedia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_multimedia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
