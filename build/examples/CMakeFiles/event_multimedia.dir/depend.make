# Empty dependencies file for event_multimedia.
# This may be replaced when dependencies are built.
