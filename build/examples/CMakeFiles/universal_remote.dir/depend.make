# Empty dependencies file for universal_remote.
# This may be replaced when dependencies are built.
