file(REMOVE_RECURSE
  "CMakeFiles/universal_remote.dir/universal_remote.cpp.o"
  "CMakeFiles/universal_remote.dir/universal_remote.cpp.o.d"
  "universal_remote"
  "universal_remote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/universal_remote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
