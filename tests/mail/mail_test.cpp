#include "mail/mail.hpp"

#include <gtest/gtest.h>

namespace hcm::mail {
namespace {

class MailTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_node = &net.add_node("mail-host");
    client_node = &net.add_node("gateway");
    auto& eth = net.add_ethernet("internet", sim::milliseconds(20),
                                 10'000'000);
    net.attach(*server_node, eth);
    net.attach(*client_node, eth);
    server = std::make_unique<MailServer>(net, server_node->id());
    ASSERT_TRUE(server->start().is_ok());
    client = std::make_unique<MailClient>(net, client_node->id(),
                                          server_node->id());
  }

  Status send(const std::string& to, const std::string& subject,
              const std::string& body) {
    Message m;
    m.from = "tester";
    m.to = to;
    m.subject = subject;
    m.body = body;
    std::optional<Status> result;
    client->send(m, [&](const Status& s) { result = s; });
    sched.run();
    EXPECT_TRUE(result.has_value());
    return result.value_or(internal_error("no completion"));
  }

  Result<std::vector<Message>> fetch(const std::string& mailbox) {
    std::optional<Result<std::vector<Message>>> result;
    client->fetch(mailbox, [&](auto r) { result = std::move(r); });
    sched.run();
    EXPECT_TRUE(result.has_value());
    return result.has_value() ? std::move(*result)
                              : Result<std::vector<Message>>(
                                    internal_error("no completion"));
  }

  sim::Scheduler sched;
  net::Network net{sched};
  net::Node* server_node = nullptr;
  net::Node* client_node = nullptr;
  std::unique_ptr<MailServer> server;
  std::unique_ptr<MailClient> client;
};

TEST_F(MailTest, SmtpDeliversToMailbox) {
  ASSERT_TRUE(send("home", "hello", "body text").is_ok());
  EXPECT_EQ(server->mailbox_size("home"), 1u);
  EXPECT_EQ(server->messages_accepted(), 1u);
}

TEST_F(MailTest, PopFetchReturnsAndDrains) {
  ASSERT_TRUE(send("home", "first", "line1\nline2").is_ok());
  ASSERT_TRUE(send("home", "second", "another").is_ok());
  auto messages = fetch("home");
  ASSERT_TRUE(messages.is_ok()) << messages.status().to_string();
  ASSERT_EQ(messages.value().size(), 2u);
  EXPECT_EQ(messages.value()[0].subject, "first");
  EXPECT_EQ(messages.value()[0].body, "line1\nline2");
  EXPECT_EQ(messages.value()[0].from, "tester");
  EXPECT_EQ(messages.value()[1].subject, "second");
  // Fetch deletes: mailbox now empty.
  EXPECT_EQ(server->mailbox_size("home"), 0u);
}

TEST_F(MailTest, FetchEmptyMailbox) {
  auto messages = fetch("nobody");
  ASSERT_TRUE(messages.is_ok());
  EXPECT_TRUE(messages.value().empty());
}

TEST_F(MailTest, MailboxesAreIsolated) {
  ASSERT_TRUE(send("alice", "to alice", "x").is_ok());
  ASSERT_TRUE(send("bob", "to bob", "y").is_ok());
  auto alice = fetch("alice");
  ASSERT_TRUE(alice.is_ok());
  ASSERT_EQ(alice.value().size(), 1u);
  EXPECT_EQ(alice.value()[0].subject, "to alice");
  EXPECT_EQ(server->mailbox_size("bob"), 1u);
}

TEST_F(MailTest, AddressAngleBracketsAndDomainStripped) {
  Message m;
  m.from = "sender@example.com";
  m.to = "home@house.local";
  m.subject = "s";
  m.body = "b";
  std::optional<Status> result;
  client->send(m, [&](const Status& s) { result = s; });
  sched.run();
  ASSERT_TRUE(result->is_ok());
  EXPECT_EQ(server->mailbox_size("home"), 1u);
  auto fetched = fetch("home");
  ASSERT_TRUE(fetched.is_ok());
  EXPECT_EQ(fetched.value()[0].from, "sender");
}

TEST_F(MailTest, WatchPollsAndDelivers) {
  std::vector<Message> seen;
  client->watch("home", sim::seconds(5),
                [&](const Message& m) { seen.push_back(m); });
  // Nothing yet.
  sched.run_until(sched.now() + sim::seconds(6));
  EXPECT_TRUE(seen.empty());

  MailClient other(net, client_node->id(), server_node->id());
  Message m;
  m.from = "other";
  m.to = "home";
  m.subject = "news";
  m.body = "x";
  other.send(m, [](const Status&) {});
  sched.run_until(sched.now() + sim::seconds(10));
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].subject, "news");
  client->unwatch();
}

TEST_F(MailTest, WatchLatencyBoundedByPollInterval) {
  // The §4.2 polling cost: worst-case notification latency ~ interval.
  std::optional<sim::SimTime> seen_at;
  client->watch("home", sim::seconds(30),
                [&](const Message&) { seen_at = sched.now(); });
  MailClient other(net, client_node->id(), server_node->id());
  Message m;
  m.from = "o";
  m.to = "home";
  m.subject = "event";
  sim::SimTime sent_at = sched.now();
  other.send(m, [](const Status&) {});
  sched.run_until(sched.now() + sim::seconds(70));
  ASSERT_TRUE(seen_at.has_value());
  auto latency = *seen_at - sent_at;
  EXPECT_GT(latency, sim::seconds(1));
  EXPECT_LE(latency, sim::seconds(31));
  client->unwatch();
}

TEST_F(MailTest, ServerDownFailsSend) {
  server_node->set_up(false);
  EXPECT_FALSE(send("home", "s", "b").is_ok());
}

TEST_F(MailTest, DirectDeliverBypassesSmtp) {
  Message m;
  m.from = "internal";
  m.to = "box";
  m.subject = "direct";
  server->deliver(m);
  EXPECT_EQ(server->mailbox_size("box"), 1u);
}

}  // namespace
}  // namespace hcm::mail
