#include "net/powerline.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"

namespace hcm::net {
namespace {

class PowerlineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pl = &net.add_powerline("house-wiring");
    controller = &net.add_node("cm11a");
    lamp = &net.add_node("lamp");
    net.attach(*controller, *pl);
    net.attach(*lamp, *pl);
  }

  sim::Scheduler sched;
  Network net{sched};
  PowerlineSegment* pl = nullptr;
  Node* controller = nullptr;
  Node* lamp = nullptr;
};

TEST_F(PowerlineTest, BroadcastReachesAllIncludingSender) {
  std::vector<NodeId> heard_by;
  pl->subscribe(lamp->id(),
                [&](NodeId, const Bytes&) { heard_by.push_back(lamp->id()); });
  pl->subscribe(controller->id(), [&](NodeId, const Bytes&) {
    heard_by.push_back(controller->id());
  });
  bool done_ok = false;
  pl->transmit(controller->id(), Bytes{0x66, 0x42},
               [&](const Status& s) { done_ok = s.is_ok(); });
  sched.run();
  EXPECT_TRUE(done_ok);
  EXPECT_EQ(heard_by.size(), 2u);
}

TEST_F(PowerlineTest, TransmissionIsSlow) {
  // A 2-byte X10 frame takes hundreds of milliseconds — that slowness is
  // load-bearing for the paper's Fig.4/Fig.5 experiments.
  auto t = pl->transit_time(2);
  EXPECT_GT(t, sim::milliseconds(300));
  EXPECT_LT(t, sim::seconds(2));
}

TEST_F(PowerlineTest, FramesSerializeOnTheMedium) {
  sim::SimTime first_done = 0, second_done = 0;
  pl->transmit(controller->id(), Bytes{1, 2},
               [&](const Status&) { first_done = sched.now(); });
  sched.run_for(sim::milliseconds(1));  // distinct enqueue instants
  pl->transmit(lamp->id(), Bytes{3, 4},
               [&](const Status&) { second_done = sched.now(); });
  sched.run();
  EXPECT_GT(first_done, 0);
  // Second frame had to wait for the first to clear the line.
  EXPECT_GE(second_done, first_done + pl->transit_time(2));
}

TEST_F(PowerlineTest, SimultaneousTransmitsCollide) {
  int errors = 0, oks = 0;
  auto done = [&](const Status& s) { s.is_ok() ? ++oks : ++errors; };
  // Same instant, idle line: collision.
  pl->transmit(controller->id(), Bytes{1, 2}, done);
  pl->transmit(lamp->id(), Bytes{3, 4}, done);
  sched.run();
  EXPECT_EQ(errors, 2);
  EXPECT_EQ(oks, 0);
  EXPECT_EQ(pl->collisions(), 1u);
}

TEST_F(PowerlineTest, DownSegmentFailsTransmit) {
  pl->set_up(false);
  Status seen;
  pl->transmit(controller->id(), Bytes{1}, [&](const Status& s) { seen = s; });
  sched.run();
  EXPECT_EQ(seen.code(), StatusCode::kUnavailable);
}

TEST_F(PowerlineTest, UnsubscribeStopsDelivery) {
  int got = 0;
  pl->subscribe(lamp->id(), [&](NodeId, const Bytes&) { ++got; });
  pl->transmit(controller->id(), Bytes{1}, nullptr);
  sched.run();
  EXPECT_EQ(got, 1);
  pl->unsubscribe(lamp->id());
  pl->transmit(controller->id(), Bytes{1}, nullptr);
  sched.run();
  EXPECT_EQ(got, 1);
}

TEST_F(PowerlineTest, QueueDrainsInOrder) {
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.after(sim::milliseconds(i), [this, i, &order] {
      pl->transmit(controller->id(), Bytes{static_cast<std::uint8_t>(i)},
                   [&order, i](const Status& s) {
                     ASSERT_TRUE(s.is_ok());
                     order.push_back(i);
                   });
    });
  }
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace hcm::net
