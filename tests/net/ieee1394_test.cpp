#include "net/ieee1394.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"

namespace hcm::net {
namespace {

class Ieee1394Test : public ::testing::Test {
 protected:
  void SetUp() override {
    bus = &net.add_ieee1394("firewire");
    a = &net.add_node("dv-camera");
    b = &net.add_node("dtv");
    net.attach(*a, *bus);
    net.attach(*b, *bus);
  }

  sim::Scheduler sched;
  Network net{sched};
  Ieee1394Bus* bus = nullptr;
  Node* a = nullptr;
  Node* b = nullptr;
};

TEST_F(Ieee1394Test, AsyncPacketsViaDatagramPath) {
  bool got = false;
  b->bind(0x100, [&](Endpoint, const Bytes&) { got = true; });
  net.send_datagram({a->id(), 1}, {b->id(), 0x100}, Bytes(512));
  sched.run();
  EXPECT_TRUE(got);
}

TEST_F(Ieee1394Test, BusResetBumpsGenerationAndNotifies) {
  std::uint32_t seen_gen = 0;
  int resets = 0;
  bus->subscribe_reset(a->id(), [&](std::uint32_t gen) {
    seen_gen = gen;
    ++resets;
  });
  EXPECT_EQ(bus->generation(), 0u);
  bus->reset_bus();
  bus->reset_bus();
  sched.run();
  EXPECT_EQ(bus->generation(), 2u);
  EXPECT_EQ(seen_gen, 2u);
  EXPECT_EQ(resets, 2);
}

TEST_F(Ieee1394Test, IsoChannelAllocation) {
  auto ch1 = bus->allocate_channel(1024);
  auto ch2 = bus->allocate_channel(1024);
  ASSERT_TRUE(ch1.is_ok());
  ASSERT_TRUE(ch2.is_ok());
  EXPECT_NE(ch1.value(), ch2.value());
  EXPECT_EQ(bus->channels_in_use(), 2);
  EXPECT_TRUE(bus->release_channel(ch1.value()).is_ok());
  EXPECT_EQ(bus->channels_in_use(), 1);
  EXPECT_FALSE(bus->release_channel(ch1.value()).is_ok());
}

TEST_F(Ieee1394Test, ChannelExhaustion) {
  for (int i = 0; i < kIsoChannelCount; ++i) {
    ASSERT_TRUE(bus->allocate_channel(64).is_ok());
  }
  auto extra = bus->allocate_channel(64);
  ASSERT_FALSE(extra.is_ok());
  EXPECT_EQ(extra.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(Ieee1394Test, IsoDeliveryToListeners) {
  auto ch = bus->allocate_channel(188);
  ASSERT_TRUE(ch.is_ok());
  int packets = 0;
  std::size_t bytes = 0;
  auto listener = bus->listen_channel(ch.value(), [&](IsoChannel, const Bytes& p) {
    ++packets;
    bytes += p.size();
  });
  (void)listener;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(bus->send_iso(ch.value(), Bytes(188)).is_ok());
  }
  sched.run();
  EXPECT_EQ(packets, 10);
  EXPECT_EQ(bytes, 1880u);
  EXPECT_EQ(bus->iso_packets_sent(), 10u);
}

TEST_F(Ieee1394Test, IsoOnUnallocatedChannelFails) {
  EXPECT_FALSE(bus->send_iso(63, Bytes(10)).is_ok());
}

TEST_F(Ieee1394Test, IsoFailsWhenBusDown) {
  auto ch = bus->allocate_channel(188);
  ASSERT_TRUE(ch.is_ok());
  bus->set_up(false);
  EXPECT_FALSE(bus->send_iso(ch.value(), Bytes(10)).is_ok());
}

TEST_F(Ieee1394Test, TransitFasterThanEthernetForBulk) {
  // S400 moves bulk data faster than 100 Mb/s Ethernet.
  EthernetSegment eth("lan", sim::microseconds(200), 100'000'000);
  EXPECT_LT(bus->transit_time(100000), eth.transit_time(100000));
}

}  // namespace
}  // namespace hcm::net
