// ShardBlockPools contract: while a shard context is published,
// wire_pool() resolves to that shard's own pool; outside any context
// (and after teardown) the process default serves; aggregate stats sum
// the per-shard pools.
#include "net/shard_pools.hpp"

#include <gtest/gtest.h>

#include "common/block_stream.hpp"
#include "sim/sharded_kernel.hpp"

namespace hcm::net {
namespace {

TEST(ShardBlockPoolsTest, ResolvesPerShardPoolFromContext) {
  sim::ShardedKernel kernel(sim::ShardedKernelOptions{.shards = 2});
  ShardBlockPools pools(kernel);
  ASSERT_EQ(pools.shard_count(), 2u);
  // No shard context on this thread: the resolver declines.
  EXPECT_EQ(&wire_pool(), &default_block_pool());
  kernel.run_as(0, [&] { EXPECT_EQ(&wire_pool(), &pools.pool(0)); });
  kernel.run_as(1, [&] { EXPECT_EQ(&wire_pool(), &pools.pool(1)); });
}

TEST(ShardBlockPoolsTest, StreamTrafficLandsInOwningShardPool) {
  sim::ShardedKernel kernel(sim::ShardedKernelOptions{.shards = 2});
  ShardBlockPools pools(kernel);
  kernel.run_as(1, [] {
    BlockStream s;
    s.append("payload", 7);
    s.clear();
  });
  EXPECT_EQ(pools.pool(0).stats().fresh_blocks, 0u);
  EXPECT_EQ(pools.pool(1).stats().fresh_blocks, 1u);
  EXPECT_EQ(pools.pool(1).stats().blocks_in_use, 0u);  // released on clear
  EXPECT_EQ(pools.aggregate_stats().fresh_blocks, 1u);
}

TEST(ShardBlockPoolsTest, UninstallsOnDestruction) {
  sim::ShardedKernel kernel(sim::ShardedKernelOptions{.shards = 1});
  {
    ShardBlockPools pools(kernel);
    kernel.run_as(0, [&] { EXPECT_EQ(&wire_pool(), &pools.pool(0)); });
  }
  kernel.run_as(0, [] { EXPECT_EQ(&wire_pool(), &default_block_pool()); });
}

}  // namespace
}  // namespace hcm::net
