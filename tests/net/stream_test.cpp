#include "net/stream.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"

namespace hcm::net {
namespace {

class StreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a = &net.add_node("client");
    b = &net.add_node("server");
    eth = &net.add_ethernet("lan", sim::microseconds(200), 100'000'000);
    net.attach(*a, *eth);
    net.attach(*b, *eth);
  }

  // Establishes a connection and returns both ends.
  std::pair<StreamPtr, StreamPtr> make_pair_on_port(std::uint16_t port) {
    StreamPtr server_side, client_side;
    EXPECT_TRUE(b->listen(port, [&](StreamPtr s) { server_side = s; }).is_ok());
    net.connect(a->id(), {b->id(), port}, [&](Result<StreamPtr> r) {
      ASSERT_TRUE(r.is_ok()) << r.status().to_string();
      client_side = r.value();
    });
    sched.run();
    EXPECT_NE(server_side, nullptr);
    EXPECT_NE(client_side, nullptr);
    return {client_side, server_side};
  }

  sim::Scheduler sched;
  Network net{sched};
  Node* a = nullptr;
  Node* b = nullptr;
  EthernetSegment* eth = nullptr;
};

TEST_F(StreamTest, ConnectAndExchange) {
  auto [client, server] = make_pair_on_port(80);
  std::string server_got, client_got;
  server->set_on_data([&](BlockStream&& d) {
    server_got += d.to_string();
    server->send(to_bytes("pong"));
  });
  client->set_on_data([&](BlockStream&& d) { client_got += d.to_string(); });
  client->send(to_bytes("ping"));
  sched.run();
  EXPECT_EQ(server_got, "ping");
  EXPECT_EQ(client_got, "pong");
}

TEST_F(StreamTest, ConnectionRefusedWithoutListener) {
  Status seen;
  bool called = false;
  net.connect(a->id(), {b->id(), 81}, [&](Result<StreamPtr> r) {
    called = true;
    ASSERT_FALSE(r.is_ok());
    seen = r.status();
  });
  sched.run();
  EXPECT_TRUE(called);
  EXPECT_EQ(seen.code(), StatusCode::kUnavailable);
}

TEST_F(StreamTest, ConnectFailsWithoutRoute) {
  Node& isolated = net.add_node("isolated");
  bool called = false;
  net.connect(isolated.id(), {b->id(), 80}, [&](Result<StreamPtr> r) {
    called = true;
    EXPECT_FALSE(r.is_ok());
  });
  sched.run();
  EXPECT_TRUE(called);
}

TEST_F(StreamTest, FifoOrderingPreserved) {
  auto [client, server] = make_pair_on_port(80);
  std::string got;
  server->set_on_data([&](BlockStream&& d) { got += d.to_string(); });
  // Mixed sizes: a large message takes longer on the wire, but must not
  // overtake order.
  client->send(to_bytes(std::string(50000, 'A')));
  client->send(to_bytes("B"));
  client->send(to_bytes(std::string(10000, 'C')));
  client->send(to_bytes("D"));
  sched.run();
  ASSERT_EQ(got.size(), 50000u + 1 + 10000 + 1);
  EXPECT_EQ(got[50000], 'B');
  EXPECT_EQ(got.back(), 'D');
}

TEST_F(StreamTest, DataBeforeHandlerIsBuffered) {
  auto [client, server] = make_pair_on_port(80);
  client->send(to_bytes("early"));
  sched.run();
  std::string got;
  server->set_on_data([&](BlockStream&& d) { got = d.to_string(); });
  EXPECT_EQ(got, "early");
}

TEST_F(StreamTest, CloseNotifiesPeer) {
  auto [client, server] = make_pair_on_port(80);
  bool server_closed = false;
  server->set_on_close([&] { server_closed = true; });
  client->close();
  EXPECT_FALSE(client->is_open());
  sched.run();
  EXPECT_TRUE(server_closed);
  EXPECT_FALSE(server->is_open());
}

TEST_F(StreamTest, CloseBeforeHandlerIsDeferred) {
  auto [client, server] = make_pair_on_port(80);
  client->close();
  sched.run();
  bool notified = false;
  server->set_on_close([&] { notified = true; });
  EXPECT_TRUE(notified);
}

TEST_F(StreamTest, SendAfterCloseIsDropped) {
  auto [client, server] = make_pair_on_port(80);
  int got = 0;
  server->set_on_data([&](BlockStream&&) { ++got; });
  client->close();
  client->send(to_bytes("late"));
  sched.run();
  EXPECT_EQ(got, 0);
}

TEST_F(StreamTest, SegmentFailureResetsConnection) {
  auto [client, server] = make_pair_on_port(80);
  bool client_closed = false, server_closed = false;
  client->set_on_close([&] { client_closed = true; });
  server->set_on_close([&] { server_closed = true; });
  eth->set_up(false);
  client->send(to_bytes("doomed"));
  sched.run();
  EXPECT_TRUE(client_closed);
  EXPECT_TRUE(server_closed);
}

TEST_F(StreamTest, ByteCounters) {
  auto [client, server] = make_pair_on_port(80);
  server->set_on_data([](BlockStream&&) {});
  client->send(Bytes(128));
  sched.run();
  EXPECT_EQ(client->bytes_sent(), 128u);
  EXPECT_EQ(server->bytes_received(), 128u);
}

TEST_F(StreamTest, LatencyIsRealistic) {
  auto [client, server] = make_pair_on_port(80);
  sim::SimTime sent_at = sched.now();
  sim::SimTime got_at = 0;
  server->set_on_data([&](BlockStream&&) { got_at = sched.now(); });
  client->send(Bytes(1000));
  sched.run();
  // One segment crossing: at least base latency (200us).
  EXPECT_GE(got_at - sent_at, sim::microseconds(200));
  EXPECT_LT(got_at - sent_at, sim::milliseconds(10));
}

TEST_F(StreamTest, ManyConcurrentConnections) {
  std::vector<StreamPtr> server_held;  // owns the accepted streams
  ASSERT_TRUE(b->listen(90, [&server_held](StreamPtr s) {
                 Stream* raw = s.get();  // owned by server_held below
                 s->set_on_data([raw](BlockStream&& d) { raw->send(std::move(d)); });
                 server_held.push_back(std::move(s));
               }).is_ok());
  int replies = 0;
  std::vector<StreamPtr> held;  // client must keep its streams alive
  for (int i = 0; i < 50; ++i) {
    net.connect(a->id(), {b->id(), 90}, [&](Result<StreamPtr> r) {
      ASSERT_TRUE(r.is_ok());
      auto stream = r.value();
      held.push_back(stream);
      stream->set_on_data([&replies](BlockStream&&) { ++replies; });
      stream->send(to_bytes("echo"));
    });
  }
  sched.run();
  EXPECT_EQ(replies, 50);
}

}  // namespace
}  // namespace hcm::net
