#include "net/network.hpp"

#include <gtest/gtest.h>

namespace hcm::net {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  sim::Scheduler sched;
  Network net{sched};
};

TEST_F(NetworkTest, AddAndFindNodes) {
  Node& a = net.add_node("alpha");
  Node& b = net.add_node("beta");
  EXPECT_EQ(a.id(), 1u);
  EXPECT_EQ(b.id(), 2u);
  EXPECT_EQ(net.find_node("alpha"), &a);
  EXPECT_EQ(net.find_node("nope"), nullptr);
  EXPECT_EQ(net.node(2), &b);
  EXPECT_EQ(net.node(0), nullptr);
  EXPECT_EQ(net.node(99), nullptr);
}

TEST_F(NetworkTest, DatagramDeliveredOnSharedSegment) {
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  auto& eth = net.add_ethernet("lan", sim::microseconds(200), 100'000'000);
  net.attach(a, eth);
  net.attach(b, eth);

  Bytes received;
  Endpoint from_seen;
  ASSERT_TRUE(b.bind(7, [&](Endpoint from, const Bytes& data) {
                 received = data;
                 from_seen = from;
               }).is_ok());
  net.send_datagram({a.id(), 99}, {b.id(), 7}, to_bytes("ping"));
  sched.run();
  EXPECT_EQ(to_string(received), "ping");
  EXPECT_EQ(from_seen, (Endpoint{a.id(), 99}));
}

TEST_F(NetworkTest, DatagramDroppedWithoutRoute) {
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  // No shared segment at all.
  b.bind(7, [&](Endpoint, const Bytes&) { FAIL() << "should not deliver"; });
  net.send_datagram({a.id(), 1}, {b.id(), 7}, to_bytes("x"));
  sched.run();
  EXPECT_EQ(net.datagrams_dropped(), 1u);
}

TEST_F(NetworkTest, MultiHopRouteThroughGateway) {
  Node& a = net.add_node("a");
  Node& gw = net.add_node("gw");
  Node& b = net.add_node("b");
  auto& lan1 = net.add_ethernet("lan1", sim::microseconds(100), 100'000'000);
  auto& lan2 = net.add_ethernet("lan2", sim::microseconds(100), 100'000'000);
  net.attach(a, lan1);
  net.attach(gw, lan1);
  net.attach(gw, lan2);
  net.attach(b, lan2);

  bool got = false;
  b.bind(7, [&](Endpoint, const Bytes&) { got = true; });
  net.send_datagram({a.id(), 1}, {b.id(), 7}, to_bytes("x"));
  sched.run();
  EXPECT_TRUE(got);

  auto latency = net.route_latency(a.id(), b.id(), 100);
  ASSERT_TRUE(latency.is_ok());
  // Two segment crossings plus forwarding: strictly more than one hop.
  auto one_hop = net.route_latency(a.id(), gw.id(), 100);
  EXPECT_GT(latency.value(), one_hop.value());
}

TEST_F(NetworkTest, RouteFailsWhenSegmentDown) {
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  auto& eth = net.add_ethernet("lan", sim::microseconds(100), 100'000'000);
  net.attach(a, eth);
  net.attach(b, eth);
  EXPECT_TRUE(net.route_latency(a.id(), b.id(), 10).is_ok());
  eth.set_up(false);
  EXPECT_FALSE(net.route_latency(a.id(), b.id(), 10).is_ok());
  eth.set_up(true);
  EXPECT_TRUE(net.route_latency(a.id(), b.id(), 10).is_ok());
}

TEST_F(NetworkTest, RouteFailsWhenNodeDown) {
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  auto& eth = net.add_ethernet("lan", sim::microseconds(100), 100'000'000);
  net.attach(a, eth);
  net.attach(b, eth);
  b.set_up(false);
  EXPECT_FALSE(net.route_latency(a.id(), b.id(), 10).is_ok());
}

TEST_F(NetworkTest, DownGatewayBreaksMultiHop) {
  Node& a = net.add_node("a");
  Node& gw = net.add_node("gw");
  Node& b = net.add_node("b");
  auto& lan1 = net.add_ethernet("lan1", sim::microseconds(100), 100'000'000);
  auto& lan2 = net.add_ethernet("lan2", sim::microseconds(100), 100'000'000);
  net.attach(a, lan1);
  net.attach(gw, lan1);
  net.attach(gw, lan2);
  net.attach(b, lan2);
  gw.set_up(false);
  EXPECT_FALSE(net.route_latency(a.id(), b.id(), 10).is_ok());
}

TEST_F(NetworkTest, RedundantPathSurvivesOneSegmentFailure) {
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  auto& eth1 = net.add_ethernet("lan1", sim::microseconds(100), 100'000'000);
  auto& eth2 = net.add_ethernet("lan2", sim::microseconds(100), 100'000'000);
  net.attach(a, eth1);
  net.attach(b, eth1);
  net.attach(a, eth2);
  net.attach(b, eth2);
  eth1.set_up(false);
  EXPECT_TRUE(net.route_latency(a.id(), b.id(), 10).is_ok());
}

TEST_F(NetworkTest, MulticastReachesGroupMembersOnly) {
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  Node& c = net.add_node("c");
  auto& eth = net.add_ethernet("lan", sim::microseconds(100), 100'000'000);
  net.attach(a, eth);
  net.attach(b, eth);
  net.attach(c, eth);
  net.join_group(b.id(), 1);
  // c does not join.

  int b_got = 0, c_got = 0;
  b.bind(5, [&](Endpoint, const Bytes&) { ++b_got; });
  c.bind(5, [&](Endpoint, const Bytes&) { ++c_got; });
  net.send_multicast({a.id(), 5}, 1, 5, to_bytes("announce"));
  sched.run();
  EXPECT_EQ(b_got, 1);
  EXPECT_EQ(c_got, 0);
}

TEST_F(NetworkTest, MulticastDoesNotCrossGateways) {
  Node& a = net.add_node("a");
  Node& gw = net.add_node("gw");
  Node& b = net.add_node("b");
  auto& lan1 = net.add_ethernet("lan1", sim::microseconds(100), 100'000'000);
  auto& lan2 = net.add_ethernet("lan2", sim::microseconds(100), 100'000'000);
  net.attach(a, lan1);
  net.attach(gw, lan1);
  net.attach(gw, lan2);
  net.attach(b, lan2);
  net.join_group(b.id(), 9);
  net.join_group(gw.id(), 9);

  int b_got = 0, gw_got = 0;
  b.bind(5, [&](Endpoint, const Bytes&) { ++b_got; });
  gw.bind(5, [&](Endpoint, const Bytes&) { ++gw_got; });
  net.send_multicast({a.id(), 5}, 9, 5, to_bytes("x"));
  sched.run();
  EXPECT_EQ(gw_got, 1);  // same segment
  EXPECT_EQ(b_got, 0);   // across the gateway: not delivered
}

TEST_F(NetworkTest, DropProbabilityLosesDatagrams) {
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  auto& eth = net.add_ethernet("lan", sim::microseconds(100), 100'000'000);
  net.attach(a, eth);
  net.attach(b, eth);
  eth.set_drop_probability(1.0);
  int got = 0;
  b.bind(7, [&](Endpoint, const Bytes&) { ++got; });
  for (int i = 0; i < 10; ++i) {
    net.send_datagram({a.id(), 1}, {b.id(), 7}, to_bytes("x"));
  }
  sched.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(net.datagrams_dropped(), 10u);
}

TEST_F(NetworkTest, SegmentAccountsTraffic) {
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  auto& eth = net.add_ethernet("lan", sim::microseconds(100), 100'000'000);
  net.attach(a, eth);
  net.attach(b, eth);
  b.bind(7, [](Endpoint, const Bytes&) {});
  net.send_datagram({a.id(), 1}, {b.id(), 7}, Bytes(100));
  sched.run();
  EXPECT_EQ(eth.bytes_carried(), 100u);
  EXPECT_EQ(eth.frames_carried(), 1u);
}

TEST_F(NetworkTest, BindSamePortTwiceFails) {
  Node& a = net.add_node("a");
  EXPECT_TRUE(a.bind(7, [](Endpoint, const Bytes&) {}).is_ok());
  EXPECT_FALSE(a.bind(7, [](Endpoint, const Bytes&) {}).is_ok());
  a.unbind(7);
  EXPECT_TRUE(a.bind(7, [](Endpoint, const Bytes&) {}).is_ok());
}

TEST_F(NetworkTest, EthernetTransitScalesWithSize) {
  auto& eth = net.add_ethernet("lan", sim::microseconds(100), 100'000'000);
  EXPECT_LT(eth.transit_time(100), eth.transit_time(100000));
}

}  // namespace
}  // namespace hcm::net
