// VsrStore facade: write-through staging, group commit, recovery that
// resumes the same {epoch, seq}, background compaction into delta
// packs, and the fsck/stats reports the hcm_store CLI prints.
#include "store/vsr_store.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "tests/store/temp_dir.hpp"

namespace hcm::store {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

VsrStoreOptions test_options(const test::TempDir& dir) {
  VsrStoreOptions o;
  o.dir = dir.file("store");
  o.fsync = RecordLog::FsyncPolicy::kNone;  // durability measured elsewhere
  o.journal_capacity = 8;
  return o;
}

std::string body_rev(const std::string& name, int rev) {
  // 50-revision churn shape: a large stable document with one hot field.
  return "<definitions name=\"" + name + "\">" + std::string(400, 'd') +
         "<endpoint uri=\"http://fav:8000/r" + std::to_string(rev) +
         "\"/></definitions>";
}

UpsertRecord upsert_for(std::uint64_t seq, const std::string& name,
                        const std::string& body) {
  UpsertRecord u;
  u.seq = seq;
  u.name = name;
  u.category = "Switchable";
  u.origin = "x10-island";
  u.digest = content_digest(body);
  u.expires_at = static_cast<std::int64_t>(seq) * 1000000;
  return u;
}

TEST(VsrStoreTest, FreshOpenReportsFreshAndEmptyDir) {
  test::TempDir dir;
  VsrStore store(test_options(dir));
  ASSERT_TRUE(store.open().is_ok());
  EXPECT_TRUE(store.recovered().fresh);
  EXPECT_FALSE(store.recovered().lost_tail);
  EXPECT_EQ(store.recovered().entries.size(), 0u);
  EXPECT_EQ(store.pack_count(), 0u);
}

TEST(VsrStoreTest, ReopenResumesSameEpochSeqEntriesAndJournal) {
  test::TempDir dir;
  const auto opts = test_options(dir);
  const std::string vcr = body_rev("vcr-1", 0);
  const std::string lamp = body_rev("lamp-1", 0);
  {
    VsrStore store(opts);
    ASSERT_TRUE(store.open().is_ok());
    store.record_epoch(7);
    store.record_upsert(upsert_for(1, "vcr-1", vcr), vcr);
    store.record_upsert(upsert_for(2, "lamp-1", lamp), lamp);
    RemoveRecord rm;
    rm.seq = 3;
    rm.name = "lamp-1";
    rm.digest = content_digest(lamp);
    store.record_remove(rm);
    ASSERT_TRUE(store.commit().is_ok());
  }
  VsrStore store(opts);
  ASSERT_TRUE(store.open().is_ok());
  const auto& rec = store.recovered();
  EXPECT_FALSE(rec.fresh);
  EXPECT_FALSE(rec.lost_tail);
  EXPECT_EQ(rec.epoch, 7u);
  EXPECT_EQ(rec.last_seq, 3u);
  ASSERT_EQ(rec.entries.size(), 1u);
  EXPECT_EQ(rec.entries[0], upsert_for(1, "vcr-1", vcr));
  ASSERT_EQ(rec.journal.size(), 3u);
  EXPECT_FALSE(rec.journal[0].remove);
  EXPECT_TRUE(rec.journal[2].remove);
  EXPECT_EQ(rec.journal[2].name, "lamp-1");
  auto body = store.body_for(content_digest(vcr));
  ASSERT_TRUE(body.is_ok());
  EXPECT_EQ(body.value(), vcr);
}

TEST(VsrStoreTest, TouchMovesExpiryAcrossRestartWithoutSeqBump) {
  test::TempDir dir;
  const auto opts = test_options(dir);
  const std::string body = body_rev("vcr-1", 0);
  {
    VsrStore store(opts);
    ASSERT_TRUE(store.open().is_ok());
    store.record_epoch(1);
    store.record_upsert(upsert_for(1, "vcr-1", body), body);
    store.record_touch("vcr-1", 999000000);
    ASSERT_TRUE(store.commit().is_ok());
  }
  VsrStore store(opts);
  ASSERT_TRUE(store.open().is_ok());
  ASSERT_EQ(store.recovered().entries.size(), 1u);
  EXPECT_EQ(store.recovered().entries[0].expires_at, 999000000);
  EXPECT_EQ(store.recovered().last_seq, 1u);  // renewals don't bump seq
}

TEST(VsrStoreTest, CompactRollsLogIntoPackAndPreservesState) {
  test::TempDir dir;
  const auto opts = test_options(dir);
  std::vector<std::string> bodies;
  {
    VsrStore store(opts);
    ASSERT_TRUE(store.open().is_ok());
    store.record_epoch(2);
    std::uint64_t seq = 0;
    for (int rev = 0; rev < 10; ++rev) {
      bodies.push_back(body_rev("vcr-1", rev));
      store.record_upsert(upsert_for(++seq, "vcr-1", bodies.back()),
                          bodies.back());
    }
    ASSERT_TRUE(store.commit().is_ok());
    const std::uint64_t log_before = store.log_bytes();
    ASSERT_TRUE(store.compact().is_ok());
    EXPECT_EQ(store.pack_count(), 1u);
    EXPECT_EQ(store.compactions(), 1u);
    // The log shrank to [epoch][checkpoint].
    EXPECT_LT(store.log_bytes(), log_before);
    // All ten revisions still materialize, through the pack.
    for (const auto& b : bodies) {
      auto got = store.body_for(content_digest(b));
      ASSERT_TRUE(got.is_ok());
      EXPECT_EQ(got.value(), b);
    }
  }
  VsrStore store(opts);
  ASSERT_TRUE(store.open().is_ok());
  const auto& rec = store.recovered();
  EXPECT_FALSE(rec.fresh);
  EXPECT_EQ(rec.epoch, 2u);
  EXPECT_EQ(rec.last_seq, 10u);
  ASSERT_EQ(rec.entries.size(), 1u);
  EXPECT_EQ(rec.entries[0].digest, content_digest(bodies.back()));
  EXPECT_EQ(rec.journal.size(), opts.journal_capacity);
  auto got = store.body_for(content_digest(bodies.back()));
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value(), bodies.back());
}

TEST(VsrStoreTest, ThresholdTriggersCompactionAutomatically) {
  test::TempDir dir;
  auto opts = test_options(dir);
  opts.compact_threshold_bytes = 2048;  // a handful of bodies
  VsrStore store(opts);
  ASSERT_TRUE(store.open().is_ok());
  store.record_epoch(1);
  std::uint64_t seq = 0;
  for (int rev = 0; rev < 20; ++rev) {
    const std::string body = body_rev("vcr-1", rev);
    store.record_upsert(upsert_for(++seq, "vcr-1", body), body);
    ASSERT_TRUE(store.commit().is_ok());
  }
  EXPECT_GT(store.compactions(), 0u);
  EXPECT_GT(store.pack_count(), 0u);
  EXPECT_LT(store.log_bytes(), opts.compact_threshold_bytes * 2);
}

TEST(VsrStoreTest, ChurnCompressesAtLeastTenfold) {
  test::TempDir dir;
  const auto opts = test_options(dir);
  VsrStore store(opts);
  ASSERT_TRUE(store.open().is_ok());
  store.record_epoch(1);
  std::uint64_t seq = 0;
  // The acceptance-criteria workload: 50 revisions per service where
  // each revision is a small edit of the last.
  for (const std::string name : {"vcr-1", "lamp-1", "tuner-1"}) {
    for (int rev = 0; rev < 50; ++rev) {
      const std::string body = body_rev(name, rev);
      store.record_upsert(upsert_for(++seq, name, body), body);
    }
  }
  ASSERT_TRUE(store.commit().is_ok());
  ASSERT_TRUE(store.compact().is_ok());
  auto stats = VsrStore::stats(opts.dir);
  ASSERT_TRUE(stats.is_ok());
  EXPECT_GT(stats.value().delta_entries, 0u);
  EXPECT_GE(stats.value().delta_ratio(), 10.0)
      << "stored " << stats.value().stored_body_bytes << "B for "
      << stats.value().expanded_body_bytes << "B of bodies";
}

TEST(VsrStoreTest, FsckCleanOnHealthyStore) {
  test::TempDir dir;
  const auto opts = test_options(dir);
  VsrStore store(opts);
  ASSERT_TRUE(store.open().is_ok());
  store.record_epoch(1);
  std::uint64_t seq = 0;
  for (int rev = 0; rev < 6; ++rev) {
    const std::string body = body_rev("vcr-1", rev);
    store.record_upsert(upsert_for(++seq, "vcr-1", body), body);
  }
  ASSERT_TRUE(store.commit().is_ok());
  auto mid = VsrStore::fsck(opts.dir);
  EXPECT_TRUE(mid.ok) << (mid.errors.empty() ? "" : mid.errors[0]);
  ASSERT_TRUE(store.compact().is_ok());
  auto report = VsrStore::fsck(opts.dir);
  EXPECT_TRUE(report.ok) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_EQ(report.packs, 1u);
  EXPECT_GT(report.pack_entries, 0u);
  EXPECT_GT(report.bodies_verified, 0u);
}

TEST(VsrStoreTest, FsckDetectsLogBitFlip) {
  test::TempDir dir;
  const auto opts = test_options(dir);
  {
    VsrStore store(opts);
    ASSERT_TRUE(store.open().is_ok());
    store.record_epoch(1);
    const std::string body = body_rev("vcr-1", 0);
    store.record_upsert(upsert_for(1, "vcr-1", body), body);
    ASSERT_TRUE(store.commit().is_ok());
  }
  const std::string log_path = opts.dir + "/log";
  std::string bytes = read_file(log_path);
  ASSERT_GT(bytes.size(), 40u);
  bytes[30] = static_cast<char>(bytes[30] ^ 0x08);
  write_file(log_path, bytes);
  auto report = VsrStore::fsck(opts.dir);
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.errors.empty());
}

TEST(VsrStoreTest, FsckDetectsPackBitFlip) {
  test::TempDir dir;
  const auto opts = test_options(dir);
  {
    VsrStore store(opts);
    ASSERT_TRUE(store.open().is_ok());
    store.record_epoch(1);
    std::uint64_t seq = 0;
    for (int rev = 0; rev < 4; ++rev) {
      const std::string body = body_rev("vcr-1", rev);
      store.record_upsert(upsert_for(++seq, "vcr-1", body), body);
    }
    ASSERT_TRUE(store.commit().is_ok());
    ASSERT_TRUE(store.compact().is_ok());
  }
  const std::string pack_path = opts.dir + "/pack-000001.pack";
  std::string bytes = read_file(pack_path);
  ASSERT_GT(bytes.size(), 100u);
  bytes[60] = static_cast<char>(bytes[60] ^ 0x04);  // inside entry data
  write_file(pack_path, bytes);
  auto report = VsrStore::fsck(opts.dir);
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.errors.empty());
}

TEST(VsrStoreTest, CorruptTailRecoversPrefixAndFlagsLostTail) {
  test::TempDir dir;
  const auto opts = test_options(dir);
  const std::string b0 = body_rev("vcr-1", 0);
  const std::string b1 = body_rev("lamp-1", 0);
  {
    VsrStore store(opts);
    ASSERT_TRUE(store.open().is_ok());
    store.record_epoch(3);
    store.record_upsert(upsert_for(1, "vcr-1", b0), b0);
    store.record_upsert(upsert_for(2, "lamp-1", b1), b1);
    ASSERT_TRUE(store.commit().is_ok());
  }
  // Chop 17 bytes off the log tail — lands mid-frame somewhere inside
  // the lamp-1 records.
  const std::string log_path = opts.dir + "/log";
  const std::string bytes = read_file(log_path);
  write_file(log_path, bytes.substr(0, bytes.size() - 17));
  VsrStore store(opts);
  ASSERT_TRUE(store.open().is_ok());
  EXPECT_TRUE(store.recovered().lost_tail);
  EXPECT_EQ(store.recovered().epoch, 3u);
  // Whatever survived is a clean prefix: vcr-1 at least, never a
  // half-applied lamp-1.
  for (const auto& e : store.recovered().entries) {
    auto body = store.body_for(e.digest);
    ASSERT_TRUE(body.is_ok());
  }
}

TEST(VsrStoreTest, StatsCountsRecordsByType) {
  test::TempDir dir;
  const auto opts = test_options(dir);
  VsrStore store(opts);
  ASSERT_TRUE(store.open().is_ok());
  store.record_epoch(1);
  const std::string body = body_rev("vcr-1", 0);
  store.record_upsert(upsert_for(1, "vcr-1", body), body);
  store.record_touch("vcr-1", 5000000);
  RemoveRecord rm;
  rm.seq = 2;
  rm.name = "vcr-1";
  rm.digest = content_digest(body);
  store.record_remove(rm);
  ASSERT_TRUE(store.commit().is_ok());
  auto stats = VsrStore::stats(opts.dir);
  ASSERT_TRUE(stats.is_ok());
  const auto& by_type = stats.value().records_by_type;
  EXPECT_EQ(by_type.at("epoch"), 1u);
  EXPECT_EQ(by_type.at("body"), 1u);
  EXPECT_EQ(by_type.at("upsert"), 1u);
  EXPECT_EQ(by_type.at("touch"), 1u);
  EXPECT_EQ(by_type.at("remove"), 1u);
  EXPECT_EQ(stats.value().live_entries, 0u);
  EXPECT_EQ(stats.value().last_seq, 2u);
}

TEST(VsrStoreTest, BodyDedupAcrossRepublishOfSameContent) {
  test::TempDir dir;
  const auto opts = test_options(dir);
  VsrStore store(opts);
  ASSERT_TRUE(store.open().is_ok());
  store.record_epoch(1);
  const std::string body = body_rev("vcr-1", 0);
  // Same content published twice (and once under another name): the
  // body record must ride exactly once.
  store.record_upsert(upsert_for(1, "vcr-1", body), body);
  store.record_upsert(upsert_for(2, "vcr-1", body), body);
  store.record_upsert(upsert_for(3, "vcr-2", body), body);
  ASSERT_TRUE(store.commit().is_ok());
  auto stats = VsrStore::stats(opts.dir);
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats.value().records_by_type.at("body"), 1u);
  EXPECT_EQ(stats.value().records_by_type.at("upsert"), 3u);
}

}  // namespace
}  // namespace hcm::store
