// Delta codec: encode a target against a base, apply to get it back.
// The pack compactor leans on two properties pinned here — apply is
// exact for arbitrary inputs, and near-identical revisions (the
// 50-revision churn the recovery bench measures) produce small deltas.
#include "store/delta.hpp"

#include <gtest/gtest.h>

#include <random>
#include <string>

namespace hcm::store {
namespace {

void expect_round_trip(const std::string& base, const std::string& target) {
  const std::string delta = delta_encode(base, target);
  auto back = delta_apply(base, delta);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(back.value(), target);
}

TEST(DeltaTest, DegenerateShapesRoundTrip) {
  expect_round_trip("", "");
  expect_round_trip("", "new content");
  expect_round_trip("old content", "");
  expect_round_trip("same", "same");
  expect_round_trip("short", std::string(4096, 'x'));
  expect_round_trip(std::string(4096, 'x'), "short");
}

TEST(DeltaTest, EditedDocumentRoundTrips) {
  const std::string base =
      "<definitions name=\"VcrControl\"><operation name=\"play\"/>"
      "<operation name=\"stop\"/><endpoint uri=\"http://fav:8000/s1\"/>"
      "</definitions>";
  // The realistic churn shape: one attribute changes between revisions.
  const std::string target =
      "<definitions name=\"VcrControl\"><operation name=\"play\"/>"
      "<operation name=\"stop\"/><endpoint uri=\"http://fav:8000/s2\"/>"
      "</definitions>";
  expect_round_trip(base, target);
}

TEST(DeltaTest, SmallEditOfLargeDocumentCompresses) {
  std::string base;
  for (int i = 0; i < 100; ++i) {
    base += "<operation name=\"op" + std::to_string(i) +
            "\" input=\"a\" output=\"b\"/>\n";
  }
  std::string target = base;
  target.replace(target.find("op57"), 4, "op99x");
  const std::string delta = delta_encode(base, target);
  auto back = delta_apply(base, delta);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), target);
  // The whole point of delta packs: a one-attribute edit must cost a
  // small fraction of the document, not a full copy.
  EXPECT_LT(delta.size(), target.size() / 10)
      << "delta " << delta.size() << "B for a " << target.size()
      << "B target";
}

TEST(DeltaTest, SeededRandomEditsRoundTrip) {
  std::mt19937 rng(42);  // fixed seed: test is reproducible
  const std::string alphabet = "abcdefgh<>=\"/ \n";
  for (int round = 0; round < 50; ++round) {
    std::string base(1 + rng() % 2000, 'a');
    for (char& c : base) c = alphabet[rng() % alphabet.size()];
    std::string target = base;
    const int edits = 1 + static_cast<int>(rng() % 8);
    for (int e = 0; e < edits; ++e) {
      const std::size_t pos = rng() % (target.size() + 1);
      switch (rng() % 3) {
        case 0:  // insert
          target.insert(pos, 1 + rng() % 20,
                        alphabet[rng() % alphabet.size()]);
          break;
        case 1:  // delete
          target.erase(pos, rng() % 20);
          break;
        default:  // replace
          if (pos < target.size()) {
            target[pos] = alphabet[rng() % alphabet.size()];
          }
      }
    }
    expect_round_trip(base, target);
  }
}

TEST(DeltaTest, ApplyRejectsWrongBase) {
  const std::string base = std::string(200, 'a') + "tail";
  const std::string delta = delta_encode(base, base + "!");
  EXPECT_FALSE(delta_apply("a different base", delta).is_ok());
}

TEST(DeltaTest, ApplyRejectsCorruptDelta) {
  const std::string base(300, 'b');
  std::string target = base;
  target[150] = 'X';
  const std::string delta = delta_encode(base, target);
  for (std::size_t i = 0; i < delta.size(); ++i) {
    std::string bad = delta;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    auto r = delta_apply(base, bad);
    // Either detected (error) or — for flips inside literal bytes —
    // applied to a different document; never the original target with
    // an OK status *and* a silent wrong size.
    if (r.is_ok()) {
      EXPECT_EQ(r.value().size(), target.size())
          << "size-changing corruption at byte " << i << " went undetected";
    }
  }
  EXPECT_FALSE(delta_apply(base, "").is_ok());
  EXPECT_FALSE(delta_apply(base, "\x01").is_ok());
}

}  // namespace
}  // namespace hcm::store
