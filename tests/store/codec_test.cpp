// Codec primitives + record round-trips for the durable VSR store.
// hcm_lint's store-record rule re-checks the canonical fixtures on
// every run; these tests pin the primitives the rule builds on and the
// failure modes (truncation, trailing bytes, unknown types) it cannot
// see.
#include "store/codec.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "soap/wsdl.hpp"

namespace hcm::store {
namespace {

TEST(StoreCodecTest, ContentDigestMatchesWsdlDigest) {
  // One digest implementation: the registry's wire digest and the
  // store's body key must agree on every input, or replay could resolve
  // a different body than the registry advertised.
  for (const std::string& s :
       {std::string(""), std::string("<definitions/>"),
        std::string(1000, 'x'), std::string("\x00\xff binary \x7f", 11)}) {
    EXPECT_EQ(content_digest(s), soap::wsdl_digest(s));
  }
  EXPECT_EQ(content_digest("").size(), 16u);
  EXPECT_NE(content_digest("a"), content_digest("b"));
}

TEST(StoreCodecTest, ChainHashIsOrderSensitive) {
  const std::uint64_t ab =
      chain_hash(chain_hash(kChainGenesis, "a"), "b");
  const std::uint64_t ba =
      chain_hash(chain_hash(kChainGenesis, "b"), "a");
  EXPECT_NE(ab, ba);
  EXPECT_NE(ab, kChainGenesis);
}

TEST(StoreCodecTest, Crc32DetectsSingleBitFlips) {
  std::string data(64, '\x5a');
  const std::uint32_t clean = crc32(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::string flipped = data;
    flipped[i] = static_cast<char>(flipped[i] ^ 1);
    EXPECT_NE(crc32(flipped), clean) << "flip at byte " << i;
  }
}

TEST(StoreCodecTest, VarintRoundTripsBoundaryValues) {
  for (std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{127},
        std::uint64_t{128}, std::uint64_t{16383}, std::uint64_t{16384},
        std::uint64_t{0xffffffffULL}, ~std::uint64_t{0}}) {
    std::string buf;
    put_varint(buf, v);
    Cursor c{buf};
    EXPECT_EQ(c.varint(), v);
    EXPECT_TRUE(c.ok);
    EXPECT_TRUE(c.done());
  }
}

TEST(StoreCodecTest, CursorLatchesOnUnderrun) {
  std::string buf;
  put_u32(buf, 7);
  Cursor c{std::string_view(buf).substr(0, 2)};  // cut mid-field
  (void)c.u32();
  EXPECT_FALSE(c.ok);
  // Latched: later reads stay failed and return zero values.
  EXPECT_EQ(c.u64(), 0u);
  EXPECT_EQ(c.str(), "");
  EXPECT_FALSE(c.ok);
}

TEST(StoreCodecTest, AllRecordTypesAreEnumeratedAndNamed) {
  const auto types = all_record_types();
  EXPECT_EQ(types.size(), 6u);
  std::set<std::string> names;
  for (RecordType t : types) names.insert(record_type_name(t));
  EXPECT_EQ(names.size(), types.size()) << "duplicate record type names";
}

Record sample_upsert() {
  Record r;
  r.type = RecordType::kUpsert;
  r.upsert = UpsertRecord{42,         "vcr-1", "VcrControl",
                          "havi-island", content_digest("<x/>"), 120000000};
  return r;
}

TEST(StoreCodecTest, UpsertRoundTripsIncludingNoLeaseExpiry) {
  for (std::int64_t expiry : {std::int64_t{0}, std::int64_t{120000000},
                              std::int64_t{-1}}) {
    Record r = sample_upsert();
    r.upsert.expires_at = expiry;
    auto back = decode_record(encode_record(r));
    ASSERT_TRUE(back.is_ok()) << back.status().to_string();
    EXPECT_EQ(back.value(), r);
  }
}

TEST(StoreCodecTest, CheckpointRoundTripsEntriesAndJournal) {
  Record r;
  r.type = RecordType::kCheckpoint;
  r.checkpoint.epoch = 3;
  r.checkpoint.seq = 99;
  r.checkpoint.compacted_through = 40;
  r.checkpoint.entries = {sample_upsert().upsert};
  r.checkpoint.journal = {JournalEntry{98, false, "vcr-1", "d1"},
                          JournalEntry{99, true, "lamp-1", "d2"}};
  auto back = decode_record(encode_record(r));
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(back.value(), r);
}

TEST(StoreCodecTest, TruncatedPayloadIsRejectedAtEveryLength) {
  const std::string encoded = encode_record(sample_upsert());
  for (std::size_t len = 0; len < encoded.size(); ++len) {
    auto r = decode_record(std::string_view(encoded).substr(0, len));
    EXPECT_FALSE(r.is_ok()) << "decoded a " << len << "-byte prefix of a "
                            << encoded.size() << "-byte record";
  }
}

TEST(StoreCodecTest, TrailingBytesAreRejected) {
  std::string encoded = encode_record(sample_upsert());
  encoded.push_back('\0');
  EXPECT_FALSE(decode_record(encoded).is_ok());
}

TEST(StoreCodecTest, UnknownRecordTypeIsRejected) {
  std::string encoded = encode_record(sample_upsert());
  encoded[0] = '\x7f';
  EXPECT_FALSE(decode_record(encoded).is_ok());
}

}  // namespace
}  // namespace hcm::store
