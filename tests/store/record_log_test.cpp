// RecordLog: append-only hash-chained frames with group commit and
// torn-tail truncation. The recovery guarantee pinned here is the
// foundation of the kill -9 test: for ANY byte-level prefix of a log
// file, reopen recovers exactly the frames that fit and drops the rest.
#include "store/record_log.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "store/codec.hpp"
#include "tests/store/temp_dir.hpp"

namespace hcm::store {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

std::vector<std::string> sample_records() {
  std::vector<std::string> out;
  for (int i = 0; i < 8; ++i) {
    out.push_back("record-" + std::to_string(i) +
                  std::string(static_cast<std::size_t>(i * 7), 'x'));
  }
  out.push_back("");  // empty payloads are legal frames
  return out;
}

TEST(RecordLogTest, AppendCommitReopenRoundTrips) {
  test::TempDir dir;
  const std::string path = dir.file("log");
  const auto records = sample_records();
  {
    RecordLog log;
    ASSERT_TRUE(log.open(path, RecordLog::FsyncPolicy::kCommit).is_ok());
    for (const auto& r : records) log.append(r);
    ASSERT_TRUE(log.commit().is_ok());
    EXPECT_EQ(log.records(), records.size());
  }
  RecordLog log;
  ASSERT_TRUE(log.open(path, RecordLog::FsyncPolicy::kCommit).is_ok());
  EXPECT_EQ(log.recovered(), records);
  EXPECT_FALSE(log.lost_tail());
}

TEST(RecordLogTest, GroupCommitBatchesFsyncs) {
  test::TempDir dir;
  RecordLog log;
  ASSERT_TRUE(
      log.open(dir.file("log"), RecordLog::FsyncPolicy::kCommit).is_ok());
  // Three appends, one commit: the whole batch must cost one fsync —
  // that is the group-commit contract a publish handler relies on when
  // it journals a prune's expiries plus its own upsert.
  log.append("a");
  log.append("b");
  log.append("c");
  ASSERT_TRUE(log.commit().is_ok());
  EXPECT_EQ(log.commits(), 1u);
  EXPECT_EQ(log.fsyncs(), 1u);
  // An empty commit is free.
  ASSERT_TRUE(log.commit().is_ok());
  EXPECT_EQ(log.commits(), 1u);
  EXPECT_EQ(log.fsyncs(), 1u);
}

TEST(RecordLogTest, FsyncPolicyNoneSkipsFsync) {
  test::TempDir dir;
  RecordLog log;
  ASSERT_TRUE(
      log.open(dir.file("log"), RecordLog::FsyncPolicy::kNone).is_ok());
  log.append("a");
  ASSERT_TRUE(log.commit().is_ok());
  EXPECT_EQ(log.commits(), 1u);
  EXPECT_EQ(log.fsyncs(), 0u);
}

TEST(RecordLogTest, TruncationAtEveryByteRecoversAPrefix) {
  test::TempDir dir;
  const std::string path = dir.file("log");
  const auto records = sample_records();
  {
    RecordLog log;
    ASSERT_TRUE(log.open(path, RecordLog::FsyncPolicy::kNone).is_ok());
    for (const auto& r : records) log.append(r);
    ASSERT_TRUE(log.commit().is_ok());
  }
  const std::string full = read_file(path);
  ASSERT_FALSE(full.empty());
  // Cuts landing exactly on a frame boundary leave a clean shorter log —
  // indistinguishable from "those were all the records" — so lost_tail
  // is only owed for cuts that leave torn bytes behind.
  std::set<std::size_t> boundaries{full.size()};
  {
    auto scan = RecordLog::scan_file(path);
    ASSERT_TRUE(scan.is_ok());
    for (const auto& f : scan.value().frames) {
      boundaries.insert(static_cast<std::size_t>(f.offset));
    }
  }

  // A kill -9 can leave any byte-level prefix on disk. Every one of
  // them must reopen to an exact record prefix, flagging lost_tail iff
  // torn bytes were dropped.
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    const std::string trimmed = dir.file("trimmed");
    write_file(trimmed, full.substr(0, cut));
    RecordLog log;
    ASSERT_TRUE(log.open(trimmed, RecordLog::FsyncPolicy::kNone).is_ok())
        << "cut at " << cut;
    const auto& got = log.recovered();
    ASSERT_LE(got.size(), records.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], records[i]) << "cut at " << cut;
    }
    EXPECT_EQ(log.lost_tail(), boundaries.count(cut) == 0)
        << "cut at " << cut << " recovered " << got.size();
    // After truncation the log must accept new appends cleanly.
    log.append("appended-after-recovery");
    EXPECT_TRUE(log.commit().is_ok());
  }
}

TEST(RecordLogTest, BitFlipStopsReplayAtCorruptFrame) {
  test::TempDir dir;
  const std::string path = dir.file("log");
  const auto records = sample_records();
  {
    RecordLog log;
    ASSERT_TRUE(log.open(path, RecordLog::FsyncPolicy::kNone).is_ok());
    for (const auto& r : records) log.append(r);
    ASSERT_TRUE(log.commit().is_ok());
  }
  const std::string full = read_file(path);
  for (std::size_t i = 0; i < full.size(); i += 3) {
    std::string bad = full;
    bad[i] = static_cast<char>(bad[i] ^ 0x20);
    const std::string flipped = dir.file("flipped");
    write_file(flipped, bad);
    auto scan = RecordLog::scan_file(flipped);
    ASSERT_TRUE(scan.is_ok());
    // The flip lands inside some frame K: frames 0..K-1 survive, K and
    // everything after are dropped, and the scan is not clean.
    EXPECT_FALSE(scan.value().clean) << "flip at byte " << i;
    ASSERT_LT(scan.value().frames.size(), records.size());
    for (std::size_t k = 0; k < scan.value().frames.size(); ++k) {
      EXPECT_EQ(scan.value().frames[k].payload, records[k]);
    }
  }
}

TEST(RecordLogTest, ChainLinksFramesInOrder) {
  test::TempDir dir;
  const std::string path = dir.file("log");
  {
    RecordLog log;
    ASSERT_TRUE(log.open(path, RecordLog::FsyncPolicy::kNone).is_ok());
    log.append("first");
    log.append("second");
    ASSERT_TRUE(log.commit().is_ok());
  }
  // Swapping two intact frames breaks the chain even though each
  // frame's own CRC still verifies — order is tamper-evident.
  auto scan = RecordLog::scan_file(path);
  ASSERT_TRUE(scan.is_ok());
  ASSERT_EQ(scan.value().frames.size(), 2u);
  const std::string full = read_file(path);
  const std::size_t second_off =
      static_cast<std::size_t>(scan.value().frames[1].offset);
  std::string swapped = full.substr(second_off) + full.substr(0, second_off);
  write_file(path, swapped);
  auto rescanned = RecordLog::scan_file(path);
  ASSERT_TRUE(rescanned.is_ok());
  EXPECT_FALSE(rescanned.value().clean);
  EXPECT_EQ(rescanned.value().frames.size(), 0u);
}

TEST(RecordLogTest, TruncateRecoveredDropsDecodeRejects) {
  test::TempDir dir;
  const std::string path = dir.file("log");
  {
    RecordLog log;
    ASSERT_TRUE(log.open(path, RecordLog::FsyncPolicy::kNone).is_ok());
    log.append("good-1");
    log.append("bad-payload");  // CRC-clean but (say) undecodable
    log.append("good-2");
    ASSERT_TRUE(log.commit().is_ok());
  }
  RecordLog log;
  ASSERT_TRUE(log.open(path, RecordLog::FsyncPolicy::kNone).is_ok());
  ASSERT_EQ(log.recovered().size(), 3u);
  ASSERT_TRUE(log.truncate_recovered(1).is_ok());
  EXPECT_EQ(log.recovered().size(), 1u);
  EXPECT_TRUE(log.lost_tail());
  log.append("after");
  ASSERT_TRUE(log.commit().is_ok());

  RecordLog reopened;
  ASSERT_TRUE(reopened.open(path, RecordLog::FsyncPolicy::kNone).is_ok());
  EXPECT_EQ(reopened.recovered(),
            (std::vector<std::string>{"good-1", "after"}));
  EXPECT_FALSE(reopened.lost_tail());
}

TEST(RecordLogTest, MissingFileScansEmptyAndClean) {
  test::TempDir dir;
  auto scan = RecordLog::scan_file(dir.file("nonexistent"));
  ASSERT_TRUE(scan.is_ok());
  EXPECT_TRUE(scan.value().clean);
  EXPECT_TRUE(scan.value().frames.empty());
}

}  // namespace
}  // namespace hcm::store
