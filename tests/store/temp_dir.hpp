// RAII scratch directory for store tests: created under the system temp
// root, recursively removed on destruction (kill -9 harness leftovers
// included).
#pragma once

#include <unistd.h>

#include <filesystem>
#include <string>

namespace hcm::store::test {

struct TempDir {
  std::string path;

  TempDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "hcm_store_XXXXXX").string();
    path = ::mkdtemp(tmpl.data());
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  [[nodiscard]] std::string file(const std::string& name) const {
    return path + "/" + name;
  }
};

}  // namespace hcm::store::test
