// Kill -9 crash-recovery harness (ISSUE 7 acceptance criterion): a
// child process drives publish/remove churn through a real fsyncing
// VsrStore, acking each committed op over a pipe; the parent SIGKILLs
// it at a chosen ack count, reopens the store, and asserts the
// recovered state is exactly apply(ops[0..M)) for some M >= acks —
// committed ops are never lost, and replay never surfaces a
// half-applied suffix.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>

#include "store/vsr_store.hpp"
#include "tests/store/temp_dir.hpp"

namespace hcm::store {
namespace {

constexpr int kTotalOps = 40;

std::string churn_body(const std::string& name, int rev) {
  return "<definitions name=\"" + name + "\">" + std::string(300, 'c') +
         "<endpoint uri=\"http://fav:8000/r" + std::to_string(rev) +
         "\"/></definitions>";
}

// Op i, a pure function of i and the (deterministic) live set: mostly
// publishes a new revision of one of four services; occasionally
// removes one. When `store` is null only the expected live set is
// computed — the parent uses that to reconstruct apply(prefix).
void apply_op(int i, VsrStore* store,
              std::map<std::string, UpsertRecord>& live) {
  const std::uint64_t seq = static_cast<std::uint64_t>(i) + 1;
  const std::string name = "svc-" + std::to_string(i % 4);
  if (i % 7 == 3 && live.count(name) != 0) {
    RemoveRecord rm;
    rm.seq = seq;
    rm.name = name;
    rm.digest = live[name].digest;
    if (store != nullptr) store->record_remove(rm);
    live.erase(name);
    return;
  }
  const std::string body = churn_body(name, i);
  UpsertRecord u;
  u.seq = seq;
  u.name = name;
  u.category = "Switchable";
  u.origin = "x10-island";
  u.digest = content_digest(body);
  u.expires_at = static_cast<std::int64_t>(seq) * 1000000;
  if (store != nullptr) store->record_upsert(u, body);
  live[name] = u;
}

std::map<std::string, UpsertRecord> expected_after(int ops) {
  std::map<std::string, UpsertRecord> live;
  for (int i = 0; i < ops; ++i) apply_op(i, nullptr, live);
  return live;
}

// Forks a child that churns the store with real fsyncs, acking each
// durable op; SIGKILLs it after `kill_after_acks`, then verifies
// recovery. `compact_threshold` small => the kill races compactions.
void run_crash_round(int kill_after_acks, std::uint64_t compact_threshold) {
  test::TempDir dir;
  VsrStoreOptions opts;
  opts.dir = dir.file("store");
  opts.fsync = RecordLog::FsyncPolicy::kCommit;
  opts.journal_capacity = 8;
  opts.compact_threshold_bytes = compact_threshold;

  int pipefd[2];
  ASSERT_EQ(pipe(pipefd), 0);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: never runs gtest assertions or destructors — any failure
    // is an abnormal exit code the parent turns into a test failure.
    close(pipefd[0]);
    VsrStore store(opts);
    if (!store.open().is_ok()) _exit(10);
    store.record_epoch(5);
    if (!store.commit().is_ok()) _exit(11);
    std::map<std::string, UpsertRecord> live;
    for (int i = 0; i < kTotalOps; ++i) {
      apply_op(i, &store, live);
      if (!store.commit().is_ok()) _exit(12);
      const char ack = 1;
      if (write(pipefd[1], &ack, 1) != 1) _exit(13);
    }
    _exit(0);
  }

  close(pipefd[1]);
  int acks = 0;
  char buf = 0;
  while (acks < kill_after_acks && read(pipefd[0], &buf, 1) == 1) ++acks;
  ASSERT_EQ(acks, kill_after_acks) << "child died before the kill point";
  kill(pid, SIGKILL);
  close(pipefd[0]);
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);

  // Recovery: same epoch, a clean op prefix of length M >= acks.
  VsrStore store(opts);
  ASSERT_TRUE(store.open().is_ok());
  const auto& rec = store.recovered();
  EXPECT_FALSE(rec.fresh);
  EXPECT_EQ(rec.epoch, 5u);
  const int recovered_ops = static_cast<int>(rec.last_seq);
  EXPECT_GE(recovered_ops, kill_after_acks)
      << "a committed-and-acked op was lost";
  EXPECT_LE(recovered_ops, kTotalOps);

  const auto expected = expected_after(recovered_ops);
  ASSERT_EQ(rec.entries.size(), expected.size());
  for (const auto& e : rec.entries) {
    auto it = expected.find(e.name);
    ASSERT_NE(it, expected.end()) << "unexpected entry " << e.name;
    EXPECT_EQ(e, it->second);
    // The body behind every live entry materializes and matches the
    // revision its seq pins.
    auto body = store.body_for(e.digest);
    ASSERT_TRUE(body.is_ok()) << body.status().to_string();
    EXPECT_EQ(body.value(),
              churn_body(e.name, static_cast<int>(e.seq) - 1));
  }

  // open() truncated any torn tail, so the surviving files must be
  // fully self-consistent.
  auto report = VsrStore::fsck(opts.dir);
  EXPECT_TRUE(report.ok) << (report.errors.empty() ? "" : report.errors[0]);
}

TEST(StoreCrashRecovery, KillDuringChurnRecoversCommittedPrefix) {
  for (int kill_point : {1, 5, 13, 27, kTotalOps}) {
    SCOPED_TRACE("kill after " + std::to_string(kill_point) + " acks");
    run_crash_round(kill_point, /*compact_threshold=*/1 << 20);
  }
}

TEST(StoreCrashRecovery, KillRacingCompactionStaysAtomic) {
  // A ~1.5 KB threshold forces a compaction every few ops, so these
  // kill points land before, during and after pack rolls; the tmp+
  // rename+dir-fsync publication must keep every outcome recoverable.
  for (int kill_point : {3, 9, 21, 33}) {
    SCOPED_TRACE("kill after " + std::to_string(kill_point) + " acks");
    run_crash_round(kill_point, /*compact_threshold=*/1500);
  }
}

}  // namespace
}  // namespace hcm::store
