// Pack files: immutable delta-compressed body storage with an O(log n)
// digest index. Pins the write/read round trip, the lookup contract,
// and that every corruption class (index, entry data, footer) is caught
// by CRC rather than served as a wrong body.
#include "store/pack.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "store/codec.hpp"
#include "store/delta.hpp"
#include "tests/store/temp_dir.hpp"

namespace hcm::store {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

// A pack holding one full body and one delta-encoded revision of it —
// the minimal shape compaction produces for a twice-published service.
struct SamplePack {
  std::string path;
  std::string base_body;
  std::string next_body;
  std::string base_digest;
  std::string next_digest;

  explicit SamplePack(const test::TempDir& dir) {
    base_body = "<definitions name=\"VcrControl\">" +
                std::string(500, 'v') + "</definitions>";
    next_body = base_body;
    next_body.replace(next_body.find("vvvv"), 4, "play");
    base_digest = content_digest(base_body);
    next_digest = content_digest(next_body);
    PackWriter w;
    w.add_full(base_digest, base_body);
    w.add_delta(next_digest, base_digest,
                delta_encode(base_body, next_body));
    path = dir.file("pack-000001.pack");
    EXPECT_TRUE(w.write(path).is_ok());
  }
};

TEST(PackTest, WriteReadRoundTripsFullAndDelta) {
  test::TempDir dir;
  SamplePack sample(dir);

  PackReader r;
  ASSERT_TRUE(r.open(sample.path).is_ok());
  EXPECT_EQ(r.entry_count(), 2u);

  auto full = r.read(sample.base_digest);
  ASSERT_TRUE(full.is_ok());
  EXPECT_TRUE(full.value().base_digest.empty());
  EXPECT_EQ(full.value().data, sample.base_body);

  auto delta = r.read(sample.next_digest);
  ASSERT_TRUE(delta.is_ok());
  EXPECT_EQ(delta.value().base_digest, sample.base_digest);
  auto applied = delta_apply(sample.base_body, delta.value().data);
  ASSERT_TRUE(applied.is_ok());
  EXPECT_EQ(applied.value(), sample.next_body);
}

TEST(PackTest, ContainsAndMissingDigestLookups) {
  test::TempDir dir;
  SamplePack sample(dir);
  PackReader r;
  ASSERT_TRUE(r.open(sample.path).is_ok());
  EXPECT_TRUE(r.contains(sample.base_digest));
  EXPECT_TRUE(r.contains(sample.next_digest));
  EXPECT_FALSE(r.contains("0000000000000000"));
  auto missing = r.read("0000000000000000");
  ASSERT_FALSE(missing.is_ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(PackTest, IndexIsSortedForBinarySearch) {
  test::TempDir dir;
  PackWriter w;
  // Insert in descending digest order; the index must come back sorted.
  std::vector<std::string> digests;
  for (int i = 0; i < 20; ++i) {
    const std::string body = "body-" + std::to_string(i);
    digests.push_back(content_digest(body));
    w.add_full(digests.back(), body);
  }
  const std::string path = dir.file("pack-000001.pack");
  ASSERT_TRUE(w.write(path).is_ok());
  PackReader r;
  ASSERT_TRUE(r.open(path).is_ok());
  ASSERT_EQ(r.digests().size(), 20u);
  EXPECT_TRUE(std::is_sorted(r.digests().begin(), r.digests().end()));
  for (const auto& d : digests) EXPECT_TRUE(r.contains(d));
}

TEST(PackTest, CorruptFooterMagicFailsOpen) {
  test::TempDir dir;
  SamplePack sample(dir);
  std::string bytes = read_file(sample.path);
  ASSERT_GE(bytes.size(), 8u);
  bytes[bytes.size() - 1] = static_cast<char>(bytes.back() ^ 0xff);
  write_file(sample.path, bytes);
  PackReader r;
  EXPECT_FALSE(r.open(sample.path).is_ok());
}

TEST(PackTest, CorruptIndexFailsOpen) {
  test::TempDir dir;
  SamplePack sample(dir);
  const std::string clean = read_file(sample.path);
  // The index sits between index_offset (read from the footer) and the
  // footer itself; flip a byte in the middle of that span.
  ASSERT_GE(clean.size(), 40u);
  std::uint64_t index_offset = 0;
  std::memcpy(&index_offset, clean.data() + clean.size() - 20, 8);
  ASSERT_LT(index_offset, clean.size() - 20);
  std::string bad = clean;
  bad[index_offset + 1] = static_cast<char>(bad[index_offset + 1] ^ 0x01);
  write_file(sample.path, bad);
  PackReader r;
  EXPECT_FALSE(r.open(sample.path).is_ok());
}

TEST(PackTest, CorruptEntryDataFailsRead) {
  test::TempDir dir;
  SamplePack sample(dir);
  std::string bytes = read_file(sample.path);
  // Flip a byte inside the first entry's body (past the 8-byte magic and
  // kind/digest prefix — offset 64 is well within the 500-byte body).
  bytes[64] = static_cast<char>(bytes[64] ^ 0x10);
  write_file(sample.path, bytes);
  PackReader r;
  // Open only parses the index, which is intact...
  ASSERT_TRUE(r.open(sample.path).is_ok());
  // ...but the CRC-checked entry decode must refuse the flipped body.
  EXPECT_FALSE(r.read(sample.base_digest).is_ok());
}

TEST(PackTest, TruncatedFileFailsOpen) {
  test::TempDir dir;
  SamplePack sample(dir);
  const std::string bytes = read_file(sample.path);
  for (std::size_t cut : {std::size_t{0}, std::size_t{4}, std::size_t{8},
                          bytes.size() / 2, bytes.size() - 1}) {
    write_file(sample.path, bytes.substr(0, cut));
    PackReader r;
    EXPECT_FALSE(r.open(sample.path).is_ok()) << "cut at " << cut;
  }
}

TEST(PackTest, EmptyPackRoundTrips) {
  test::TempDir dir;
  PackWriter w;
  const std::string path = dir.file("pack-000001.pack");
  ASSERT_TRUE(w.write(path).is_ok());
  PackReader r;
  ASSERT_TRUE(r.open(path).is_ok());
  EXPECT_EQ(r.entry_count(), 0u);
  EXPECT_FALSE(r.contains("anything"));
}

}  // namespace
}  // namespace hcm::store
