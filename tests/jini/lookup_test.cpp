#include "jini/lookup.hpp"

#include <gtest/gtest.h>

#include "jini/registrar.hpp"

namespace hcm::jini {
namespace {

InterfaceDesc echo_interface() {
  return InterfaceDesc{
      "Echo", {MethodDesc{"echo", {{"v", ValueType::kNull}},
                          ValueType::kNull, false}}};
}

class JiniStackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lookup_node = &net.add_node("lookup-host");
    service_node = &net.add_node("appliance");
    client_node = &net.add_node("pc");
    eth = &net.add_ethernet("jini-lan", sim::microseconds(200), 100'000'000);
    net.attach(*lookup_node, *eth);
    net.attach(*service_node, *eth);
    net.attach(*client_node, *eth);

    lookup = std::make_unique<LookupService>(net, lookup_node->id());
    ASSERT_TRUE(lookup->start().is_ok());

    exporter = std::make_unique<Exporter>(net, service_node->id(), 4170);
    ASSERT_TRUE(exporter->start().is_ok());
    exporter->export_object(
        "echo-1", [](const std::string& method, const ValueList& args,
                     InvokeResultFn done) {
          if (method == "echo") {
            done(args.empty() ? Value() : args[0]);
          } else {
            done(not_found("no method " + method));
          }
        });
  }

  ServiceItem echo_item() {
    ServiceItem item;
    item.service_id = "echo-1";
    item.name = "echo";
    item.interface = echo_interface();
    item.endpoint = exporter->endpoint();
    return item;
  }

  // Registers the echo service and waits for completion.
  std::unique_ptr<Registrar> join_echo(sim::Duration lease = sim::seconds(30)) {
    auto registrar = std::make_unique<Registrar>(
        net, service_node->id(), lookup->endpoint(), echo_item(), lease);
    std::optional<Status> result;
    registrar->join([&](const Status& s) { result = s; });
    sim::run_until_done(sched, [&] { return result.has_value(); });
    EXPECT_TRUE(result.has_value() && result->is_ok());
    return registrar;
  }

  sim::Scheduler sched;
  net::Network net{sched};
  net::Node* lookup_node = nullptr;
  net::Node* service_node = nullptr;
  net::Node* client_node = nullptr;
  net::EthernetSegment* eth = nullptr;
  std::unique_ptr<LookupService> lookup;
  std::unique_ptr<Exporter> exporter;
};

TEST_F(JiniStackTest, RegisterAndLookup) {
  auto registrar = join_echo();
  EXPECT_EQ(lookup->service_count(), 1u);

  LookupClient client(net, client_node->id(), lookup->endpoint());
  std::optional<Result<std::vector<ServiceItem>>> found;
  client.lookup("Echo", {}, [&](auto r) { found = std::move(r); });
  sim::run_until_done(sched, [&] { return found.has_value(); });
  ASSERT_TRUE(found.has_value());
  ASSERT_TRUE(found->is_ok());
  ASSERT_EQ(found->value().size(), 1u);
  EXPECT_EQ(found->value()[0].name, "echo");
}

TEST_F(JiniStackTest, LookupByWrongInterfaceReturnsEmpty) {
  auto registrar = join_echo();
  LookupClient client(net, client_node->id(), lookup->endpoint());
  std::optional<Result<std::vector<ServiceItem>>> found;
  client.lookup("Tuner", {}, [&](auto r) { found = std::move(r); });
  sim::run_until_done(sched, [&] { return found.has_value(); });
  ASSERT_TRUE(found->is_ok());
  EXPECT_TRUE(found->value().empty());
}

TEST_F(JiniStackTest, AttributeFiltering) {
  auto item = echo_item();
  item.attributes["room"] = Value("kitchen");
  Registrar registrar(net, service_node->id(), lookup->endpoint(), item);
  std::optional<Status> joined;
  registrar.join([&](const Status& s) { joined = s; });
  sim::run_until_done(sched, [&] { return joined.has_value(); });

  LookupClient client(net, client_node->id(), lookup->endpoint());
  std::optional<Result<std::vector<ServiceItem>>> kitchen, bedroom;
  client.lookup("Echo", {{"room", Value("kitchen")}},
                [&](auto r) { kitchen = std::move(r); });
  client.lookup("Echo", {{"room", Value("bedroom")}},
                [&](auto r) { bedroom = std::move(r); });
  sim::run_until_done(
      sched, [&] { return kitchen.has_value() && bedroom.has_value(); });
  EXPECT_EQ(kitchen->value().size(), 1u);
  EXPECT_TRUE(bedroom->value().empty());
}

TEST_F(JiniStackTest, EndToEndInvocation) {
  auto registrar = join_echo();
  LookupClient client(net, client_node->id(), lookup->endpoint());
  std::optional<Result<Value>> result;
  client.lookup("Echo", {}, [&](Result<std::vector<ServiceItem>> items) {
    ASSERT_TRUE(items.is_ok());
    ASSERT_EQ(items.value().size(), 1u);
    // Proxy must outlive the call: heap-allocate and clean up in the cb.
    auto proxy = std::make_shared<Proxy>(net, client_node->id(),
                                         items.value()[0]);
    proxy->invoke("echo", {Value("ping")}, [&result, proxy](Result<Value> r) {
      result = std::move(r);
    });
  });
  sim::run_until_done(sched, [&] { return result.has_value(); });
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->is_ok()) << result->status().to_string();
  EXPECT_EQ(result->value(), Value("ping"));
}

TEST_F(JiniStackTest, ProxyChecksInterfaceBeforeWire) {
  auto registrar = join_echo();
  Proxy proxy(net, client_node->id(), echo_item());
  std::optional<Result<Value>> result;
  proxy.invoke("noSuchMethod", {}, [&](Result<Value> r) { result = r; });
  sim::run_until_done(sched, [&] { return result.has_value(); });
  ASSERT_TRUE(result.has_value());
  ASSERT_FALSE(result->is_ok());
  EXPECT_EQ(result->status().code(), StatusCode::kNotFound);
}

TEST_F(JiniStackTest, LeaseExpiresWithoutRenewal) {
  // Register directly (no Registrar auto-renew).
  auto proxy = lookup_proxy(net, service_node->id(), lookup->endpoint());
  std::optional<Result<Value>> grant;
  proxy->invoke(
      "register",
      {echo_item().to_value(),
       Value(static_cast<std::int64_t>(sim::seconds(10)))},
      [&](Result<Value> r) { grant = std::move(r); });
  sim::run_until_done(sched, [&] { return grant.has_value(); });
  ASSERT_TRUE(grant.has_value() && grant->is_ok());
  EXPECT_EQ(lookup->service_count(), 1u);
  sched.run_until(sched.now() + sim::seconds(11));
  EXPECT_EQ(lookup->service_count(), 0u);
}

TEST_F(JiniStackTest, RegistrarKeepsLeaseAlive) {
  auto registrar = join_echo(sim::seconds(10));
  sched.run_until(sched.now() + sim::seconds(60));
  EXPECT_EQ(lookup->service_count(), 1u);
  EXPECT_GT(registrar->renewals(), 0u);
}

TEST_F(JiniStackTest, CancelRemovesService) {
  auto registrar = join_echo();
  std::optional<Status> cancelled;
  registrar->cancel([&](const Status& s) { cancelled = s; });
  sim::run_until_done(sched, [&] { return cancelled.has_value(); });
  ASSERT_TRUE(cancelled.has_value() && cancelled->is_ok());
  EXPECT_EQ(lookup->service_count(), 0u);
}

TEST_F(JiniStackTest, ServiceEventsDelivered) {
  // Export a listener object on the client node.
  Exporter listener_exporter(net, client_node->id(), 4180);
  ASSERT_TRUE(listener_exporter.start().is_ok());
  std::vector<std::string> events;
  listener_exporter.export_object(
      "listener-1",
      [&](const std::string& method, const ValueList& args,
          InvokeResultFn done) {
        if (method == "serviceEvent" && !args.empty() &&
            args[0].is_string()) {
          events.push_back(args[0].as_string());
        }
        done(Value());
      });

  LookupClient client(net, client_node->id(), lookup->endpoint());
  std::optional<Result<std::int64_t>> reg_id;
  client.notify({client_node->id(), 4180}, "listener-1",
                [&](Result<std::int64_t> r) { reg_id = std::move(r); });
  sim::run_until_done(sched, [&] { return reg_id.has_value(); });
  ASSERT_TRUE(reg_id.has_value() && reg_id->is_ok());

  auto registrar = join_echo();
  std::optional<Status> cancelled;
  registrar->cancel([&](const Status& s) { cancelled = s; });
  sim::run_until_done(sched, [&] { return cancelled.has_value(); });
  sched.run_for(sim::seconds(1));  // let one-way events land
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], kEventRegistered);
  EXPECT_EQ(events[1], kEventRemoved);
}

TEST_F(JiniStackTest, MulticastDiscoveryFindsLookup) {
  DiscoveryResponder responder(net, lookup_node->id(), lookup->endpoint());
  ASSERT_TRUE(responder.start().is_ok());
  DiscoveryClient discovery(net, client_node->id());
  std::optional<std::vector<net::Endpoint>> found;
  discovery.discover(sim::milliseconds(100),
                     [&](std::vector<net::Endpoint> eps) { found = eps; });
  sim::run_until_done(sched, [&] { return found.has_value(); });
  ASSERT_TRUE(found.has_value());
  ASSERT_EQ(found->size(), 1u);
  EXPECT_EQ((*found)[0], lookup->endpoint());
}

TEST_F(JiniStackTest, CallToDeadServiceFails) {
  auto registrar = join_echo();
  service_node->set_up(false);
  Proxy proxy(net, client_node->id(), echo_item());
  std::optional<Result<Value>> result;
  proxy.invoke("echo", {Value(1)}, [&](Result<Value> r) { result = r; });
  sim::run_until_done(sched, [&] { return result.has_value(); });
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->is_ok());
}

TEST_F(JiniStackTest, CallTimesOutWhenHandlerSilent) {
  exporter->export_object("silent-1",
                          [](const std::string&, const ValueList&,
                             InvokeResultFn) { /* never replies */ });
  ServiceItem item;
  item.service_id = "silent-1";
  item.name = "silent";
  item.interface = echo_interface();
  item.endpoint = exporter->endpoint();
  Proxy proxy(net, client_node->id(), item, sim::seconds(5));
  std::optional<Result<Value>> result;
  proxy.invoke("echo", {Value(1)}, [&](Result<Value> r) { result = r; });
  sim::run_until_done(sched, [&] { return result.has_value(); });
  ASSERT_TRUE(result.has_value());
  ASSERT_FALSE(result->is_ok());
  EXPECT_EQ(result->status().code(), StatusCode::kTimeout);
}

TEST_F(JiniStackTest, ReRegistrationReplacesItem) {
  auto registrar = join_echo();
  auto item = echo_item();
  item.attributes["version"] = Value(2);
  Registrar second(net, service_node->id(), lookup->endpoint(), item);
  std::optional<Status> rejoined;
  second.join([&](const Status& s) { rejoined = s; });
  sim::run_until_done(sched, [&] { return rejoined.has_value(); });
  EXPECT_EQ(lookup->service_count(), 1u);

  LookupClient client(net, client_node->id(), lookup->endpoint());
  std::optional<Result<std::vector<ServiceItem>>> found;
  client.lookup("Echo", {}, [&](auto r) { found = std::move(r); });
  sim::run_until_done(sched, [&] { return found.has_value(); });
  ASSERT_EQ(found->value().size(), 1u);
  EXPECT_EQ(found->value()[0].attributes.at("version"), Value(2));
}

}  // namespace
}  // namespace hcm::jini
