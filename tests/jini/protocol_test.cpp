#include "jini/protocol.hpp"

#include <gtest/gtest.h>

#include "common/value_codec.hpp"

namespace hcm::jini {
namespace {

ServiceItem sample_item() {
  ServiceItem item;
  item.service_id = "svc-42";
  item.name = "laserdisc";
  item.interface = InterfaceDesc{
      "MediaPlayer",
      {MethodDesc{"play", {}, ValueType::kBool, false},
       MethodDesc{"seek", {{"pos", ValueType::kInt}}, ValueType::kBool,
                  false}}};
  item.endpoint = {7, 4170};
  item.attributes = ValueMap{{"vendor", Value("pioneer")}};
  return item;
}

TEST(JiniProtocolTest, ServiceItemRoundTrip) {
  auto item = sample_item();
  auto decoded = ServiceItem::from_value(item.to_value());
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value(), item);
}

TEST(JiniProtocolTest, ServiceItemRejectsGarbage) {
  EXPECT_FALSE(ServiceItem::from_value(Value(1)).is_ok());
  EXPECT_FALSE(ServiceItem::from_value(Value(ValueMap{})).is_ok());
  // Missing interface.
  EXPECT_FALSE(
      ServiceItem::from_value(Value(ValueMap{{"id", Value("x")}})).is_ok());
}

TEST(JiniProtocolTest, CallRoundTrip) {
  CallMessage call;
  call.call_id = 99;
  call.service_id = "svc";
  call.method = "doThing";
  call.args = {Value(1), Value("two")};
  call.one_way = true;
  auto decoded = decode_call(encode_call(call));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().call_id, 99u);
  EXPECT_EQ(decoded.value().service_id, "svc");
  EXPECT_EQ(decoded.value().method, "doThing");
  EXPECT_EQ(decoded.value().args, call.args);
  EXPECT_TRUE(decoded.value().one_way);
}

TEST(JiniProtocolTest, ReplyOkRoundTrip) {
  ReplyMessage reply;
  reply.call_id = 7;
  reply.value = Value(ValueMap{{"k", Value(3)}});
  auto decoded = decode_reply(encode_reply(reply));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_TRUE(decoded.value().status.is_ok());
  EXPECT_EQ(decoded.value().value, reply.value);
}

TEST(JiniProtocolTest, ReplyErrorRoundTrip) {
  ReplyMessage reply;
  reply.call_id = 8;
  reply.status = timeout("too slow");
  auto decoded = decode_reply(encode_reply(reply));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().status.code(), StatusCode::kTimeout);
  EXPECT_EQ(decoded.value().status.message(), "too slow");
}

TEST(JiniProtocolTest, DecodeRejectsMalformed) {
  EXPECT_FALSE(decode_call(Bytes{1, 2, 3}).is_ok());
  EXPECT_FALSE(decode_reply(Bytes{}).is_ok());
  // A valid Value that is not a call map.
  EXPECT_FALSE(decode_call(encode_value(Value("nope"))).is_ok());
}

TEST(JiniFramingTest, SingleFrame) {
  FrameReader reader;
  std::vector<Bytes> out;
  Bytes payload = to_bytes("payload");
  BlockStream wire;
  wire.append(frame(payload));
  ASSERT_TRUE(reader.feed(std::move(wire), out).is_ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], payload);
}

TEST(JiniFramingTest, SplitAcrossFeeds) {
  FrameReader reader;
  std::vector<Bytes> out;
  Bytes wire = frame(to_bytes("split"));
  for (auto b : wire) {
    BlockStream chunk;
    chunk.append(&b, 1);
    ASSERT_TRUE(reader.feed(std::move(chunk), out).is_ok());
  }
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(to_string(out[0]), "split");
}

TEST(JiniFramingTest, MultipleFramesInOneFeed) {
  FrameReader reader;
  std::vector<Bytes> out;
  Bytes wire = frame(to_bytes("a"));
  Bytes second = frame(to_bytes("bb"));
  wire.insert(wire.end(), second.begin(), second.end());
  BlockStream stream;
  stream.append(wire);
  ASSERT_TRUE(reader.feed(std::move(stream), out).is_ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(to_string(out[0]), "a");
  EXPECT_EQ(to_string(out[1]), "bb");
}

TEST(JiniFramingTest, OversizedFrameRejected) {
  FrameReader reader;
  std::vector<Bytes> out;
  Bytes evil{0xFF, 0xFF, 0xFF, 0xFF};  // 4 GiB frame length
  BlockStream stream;
  stream.append(evil);
  EXPECT_FALSE(reader.feed(std::move(stream), out).is_ok());
}

}  // namespace
}  // namespace hcm::jini
