// JsonReport contract: string values are escaped (quotes, backslashes,
// control characters survive as \uXXXX, never raw), and append mode
// adds a report as a new line instead of clobbering the file.
//
// This TU also installs the counting allocation hook for the whole test
// binary (it must live in exactly one TU per binary) so the AllocDelta
// meter used by the wire-throughput bench is itself under test.
#define HCM_BENCH_ALLOC_HOOK 1
#include "bench/bench_util.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

namespace hcm::bench {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class JsonReportTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "bench_util_test.json";
};

TEST_F(JsonReportTest, EscapesControlCharactersInStrings) {
  JsonReport report("esc");
  report.row().str("k", "a\nb\tc \"quoted\" back\\slash \x01");
  ASSERT_TRUE(report.write(path_));
  const std::string json = slurp(path_);
  EXPECT_NE(json.find("a\\nb\\tc \\\"quoted\\\" back\\\\slash \\u0001"),
            std::string::npos)
      << json;
  EXPECT_EQ(json.find('\x01'), std::string::npos);
}

TEST_F(JsonReportTest, AppendAddsReportsWithoutClobbering) {
  JsonReport a("first");
  a.row().num("n", std::uint64_t{1});
  JsonReport b("second");
  b.row().num("n", std::uint64_t{2});
  ASSERT_TRUE(a.write(path_));
  ASSERT_TRUE(b.write(path_, /*append=*/true));
  const std::string json = slurp(path_);
  EXPECT_NE(json.find("\"first\""), std::string::npos);
  EXPECT_NE(json.find("\"second\""), std::string::npos);
  EXPECT_LT(json.find("first"), json.find("second"));
}

TEST_F(JsonReportTest, PlainWriteReplacesExistingContent) {
  JsonReport a("old");
  a.row().num("n", std::uint64_t{1});
  ASSERT_TRUE(a.write(path_));
  JsonReport b("fresh");
  b.row().num("n", std::uint64_t{2});
  ASSERT_TRUE(b.write(path_));
  const std::string json = slurp(path_);
  EXPECT_EQ(json.find("old"), std::string::npos);
  EXPECT_NE(json.find("fresh"), std::string::npos);
}

TEST(AllocCounterTest, HookInstalledAndDeltaCountsHeapTraffic) {
  // gtest itself allocates long before this test runs, so the hook has
  // already observed traffic by now.
  EXPECT_TRUE(alloc_hook_installed());

  AllocDelta d;
  constexpr std::size_t kBytes = 4096;
  {
    auto* p = new char[kBytes];
    // Defeat dead-store elimination of the allocation.
    p[0] = 1;
    volatile char sink = p[0];
    (void)sink;
    delete[] p;
  }
  EXPECT_GE(d.allocs(), 1u);
  EXPECT_GE(d.bytes(), kBytes);
}

TEST(AllocCounterTest, DeltaIsScopedToConstructionPoint) {
  std::vector<std::unique_ptr<int>> warmup;
  for (int i = 0; i < 8; ++i) warmup.push_back(std::make_unique<int>(i));
  const std::uint64_t before = alloc_count();
  AllocDelta d;
  EXPECT_EQ(d.allocs(), alloc_count() - before);
  auto extra = std::make_unique<int>(7);
  EXPECT_GE(d.allocs(), 1u);
  EXPECT_GE(d.bytes(), sizeof(int));
}

}  // namespace
}  // namespace hcm::bench
