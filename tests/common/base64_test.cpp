#include "common/base64.hpp"

#include <gtest/gtest.h>

namespace hcm {
namespace {

TEST(Base64Test, Rfc4648Vectors) {
  EXPECT_EQ(base64_encode(to_bytes("")), "");
  EXPECT_EQ(base64_encode(to_bytes("f")), "Zg==");
  EXPECT_EQ(base64_encode(to_bytes("fo")), "Zm8=");
  EXPECT_EQ(base64_encode(to_bytes("foo")), "Zm9v");
  EXPECT_EQ(base64_encode(to_bytes("foob")), "Zm9vYg==");
  EXPECT_EQ(base64_encode(to_bytes("fooba")), "Zm9vYmE=");
  EXPECT_EQ(base64_encode(to_bytes("foobar")), "Zm9vYmFy");
}

TEST(Base64Test, DecodeVectors) {
  EXPECT_EQ(to_string(base64_decode("Zm9vYmFy").value()), "foobar");
  EXPECT_EQ(to_string(base64_decode("Zg==").value()), "f");
  EXPECT_EQ(base64_decode("").value(), Bytes{});
}

TEST(Base64Test, RoundTripBinary) {
  Bytes all;
  for (int i = 0; i < 256; ++i) all.push_back(static_cast<std::uint8_t>(i));
  EXPECT_EQ(base64_decode(base64_encode(all)).value(), all);
}

TEST(Base64Test, IgnoresWhitespace) {
  EXPECT_EQ(to_string(base64_decode("Zm9v\r\nYmFy").value()), "foobar");
}

TEST(Base64Test, RejectsInvalid) {
  EXPECT_FALSE(base64_decode("a!b").is_ok());
  EXPECT_FALSE(base64_decode("Zg==Zg").is_ok());  // data after padding
  EXPECT_FALSE(base64_decode("Zg===").is_ok());   // too much padding
}

}  // namespace
}  // namespace hcm
