#include "common/uri.hpp"

#include <gtest/gtest.h>

namespace hcm {
namespace {

TEST(UriTest, FullUri) {
  auto u = parse_uri("http://gateway-1:8080/vsg/call");
  ASSERT_TRUE(u.is_ok());
  EXPECT_EQ(u.value().scheme, "http");
  EXPECT_EQ(u.value().host, "gateway-1");
  EXPECT_EQ(u.value().port, 8080);
  EXPECT_EQ(u.value().path, "/vsg/call");
}

TEST(UriTest, DefaultsPathAndPort) {
  auto u = parse_uri("soap://node");
  ASSERT_TRUE(u.is_ok());
  EXPECT_EQ(u.value().port, 0);
  EXPECT_EQ(u.value().path, "/");
}

TEST(UriTest, RoundTrip) {
  Uri u{"jini", "lookup", 4160, "/svc/vcr"};
  auto parsed = parse_uri(u.to_string());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value(), u);
}

TEST(UriTest, Malformed) {
  EXPECT_FALSE(parse_uri("").is_ok());
  EXPECT_FALSE(parse_uri("nouri").is_ok());
  EXPECT_FALSE(parse_uri("://host").is_ok());
  EXPECT_FALSE(parse_uri("http://").is_ok());
  EXPECT_FALSE(parse_uri("http://:80/").is_ok());
  EXPECT_FALSE(parse_uri("http://h:99999/").is_ok());
  EXPECT_FALSE(parse_uri("http://h:abc/").is_ok());
}

TEST(UriTest, PortZeroOmittedInToString) {
  Uri u{"http", "h", 0, "/p"};
  EXPECT_EQ(u.to_string(), "http://h/p");
}

}  // namespace
}  // namespace hcm
