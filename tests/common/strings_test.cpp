#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace hcm {
namespace {

TEST(StringsTest, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("one", ','), (std::vector<std::string>{"one"}));
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("\t\r\na b\n"), "a b");
}

TEST(StringsTest, ToLower) {
  EXPECT_EQ(to_lower("MiXeD"), "mixed");
  EXPECT_EQ(to_lower(""), "");
}

TEST(StringsTest, IEquals) {
  EXPECT_TRUE(iequals("Content-Length", "content-length"));
  EXPECT_FALSE(iequals("a", "ab"));
  EXPECT_TRUE(iequals("", ""));
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(starts_with("http://x", "http://"));
  EXPECT_FALSE(starts_with("ftp://x", "http://"));
  EXPECT_TRUE(ends_with("file.xml", ".xml"));
  EXPECT_FALSE(ends_with("x", ".xml"));
}

TEST(StringsTest, ParseUint) {
  EXPECT_EQ(parse_uint("0"), 0);
  EXPECT_EQ(parse_uint("12345"), 12345);
  EXPECT_EQ(parse_uint(""), -1);
  EXPECT_EQ(parse_uint("-1"), -1);
  EXPECT_EQ(parse_uint("12x"), -1);
  EXPECT_EQ(parse_uint("999999999999999999999999"), -1);  // overflow
}

}  // namespace
}  // namespace hcm
