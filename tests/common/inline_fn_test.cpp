#include "common/inline_fn.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace hcm {
namespace {

TEST(InlineFnTest, EmptyAndNullptrCompare) {
  InlineFn<void()> fn;
  EXPECT_FALSE(fn);
  EXPECT_TRUE(fn == nullptr);
  fn = [] {};
  EXPECT_TRUE(fn);
  EXPECT_TRUE(fn != nullptr);
  fn = nullptr;
  EXPECT_FALSE(fn);
}

TEST(InlineFnTest, InvokesWithArgsAndResult) {
  InlineFn<int(int, int)> add = [](int a, int b) { return a + b; };
  EXPECT_EQ(add(2, 3), 5);
}

TEST(InlineFnTest, MoveOnlyCaptureStaysInline) {
  auto payload = std::make_unique<int>(42);
  InlineFn<int()> fn = [p = std::move(payload)] { return *p; };
  InlineFn<int()> moved = std::move(fn);
  EXPECT_FALSE(fn);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(moved(), 42);
}

TEST(InlineFnTest, OversizedCaptureDegradesToHeapCell) {
  struct Big {
    char pad[200];
  };
  Big big{};
  big.pad[0] = 'x';
  InlineFn<char()> fn = [big] { return big.pad[0]; };
  InlineFn<char()> moved = std::move(fn);
  EXPECT_EQ(moved(), 'x');
}

TEST(InlineFnTest, DestructorRunsCaptureDtorOnce) {
  auto counter = std::make_shared<int>(0);
  struct Track {
    std::shared_ptr<int> c;
    ~Track() {
      if (c) ++*c;
    }
    Track(std::shared_ptr<int> c) : c(std::move(c)) {}
    Track(Track&& o) noexcept = default;
    Track(const Track&) = delete;
  };
  {
    InlineFn<void()> fn = [t = Track(counter)] { (void)t; };
    InlineFn<void()> other = std::move(fn);
    other();
  }
  // Moved-from wrappers must not double-destroy; exactly one live Track
  // existed and died once (moved-out shells hold a null shared_ptr).
  EXPECT_EQ(*counter, 1);
}

TEST(InlineFnTest, AssignReplacesPreviousCallable) {
  auto count = std::make_shared<int>(0);
  InlineFn<void()> fn = [count] { *count += 1; };
  fn();
  fn = [count] { *count += 10; };
  fn();
  EXPECT_EQ(*count, 11);
}

}  // namespace
}  // namespace hcm
