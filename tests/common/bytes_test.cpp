#include "common/bytes.hpp"

#include <gtest/gtest.h>

namespace hcm {
namespace {

TEST(BytesTest, RoundTripPrimitives) {
  BufWriter w;
  w.put_u8(0xAB);
  w.put_u16(0x1234);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0123456789ABCDEFULL);
  w.put_i64(-42);
  w.put_f64(3.14159);
  Bytes buf = w.take();

  BufReader r(buf);
  EXPECT_EQ(r.u8().value(), 0xAB);
  EXPECT_EQ(r.u16().value(), 0x1234);
  EXPECT_EQ(r.u32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64().value(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64().value(), -42);
  EXPECT_DOUBLE_EQ(r.f64().value(), 3.14159);
  EXPECT_TRUE(r.at_end());
}

TEST(BytesTest, BigEndianLayout) {
  BufWriter w;
  w.put_u16(0x0102);
  Bytes buf = w.take();
  ASSERT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[1], 0x02);
}

TEST(BytesTest, StringRoundTrip) {
  BufWriter w;
  w.put_string("hello");
  w.put_string("");
  Bytes buf = w.take();
  BufReader r(buf);
  EXPECT_EQ(r.string().value(), "hello");
  EXPECT_EQ(r.string().value(), "");
  EXPECT_TRUE(r.at_end());
}

TEST(BytesTest, BytesRoundTrip) {
  BufWriter w;
  w.put_bytes({1, 2, 3});
  Bytes buf = w.take();
  BufReader r(buf);
  EXPECT_EQ(r.bytes().value(), (Bytes{1, 2, 3}));
}

TEST(BytesTest, UnderrunIsError) {
  Bytes buf{0x01};
  BufReader r(buf);
  EXPECT_FALSE(r.u16().is_ok());
  BufReader r2(buf);
  EXPECT_FALSE(r2.u32().is_ok());
  BufReader r3(buf);
  EXPECT_FALSE(r3.string().is_ok());
}

TEST(BytesTest, TruncatedLengthPrefixedString) {
  BufWriter w;
  w.put_u32(100);  // claims 100 bytes, provides none
  Bytes buf = w.take();
  BufReader r(buf);
  auto s = r.string();
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.status().code(), StatusCode::kProtocolError);
}

TEST(BytesTest, ToHex) {
  EXPECT_EQ(to_hex({0xDE, 0xAD}), "de ad");
  EXPECT_EQ(to_hex({}), "");
}

TEST(BytesTest, StringConversions) {
  Bytes b = to_bytes("abc");
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(to_string(b), "abc");
}

}  // namespace
}  // namespace hcm
