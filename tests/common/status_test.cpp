#include "common/status.hpp"

#include <gtest/gtest.h>

namespace hcm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = not_found("missing thing");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.to_string(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, FactoriesMapToCodes) {
  EXPECT_EQ(invalid_argument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(timeout("x").code(), StatusCode::kTimeout);
  EXPECT_EQ(protocol_error("x").code(), StatusCode::kProtocolError);
  EXPECT_EQ(already_exists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(internal_error("x").code(), StatusCode::kInternal);
  EXPECT_EQ(cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(resource_exhausted("x").code(), StatusCode::kResourceExhausted);
}

// Pins the documented contract in status.hpp: operator== is same_code,
// the message is diagnostic payload only and never part of equality.
TEST(StatusTest, EqualityIgnoresMessage) {
  EXPECT_EQ(not_found("a"), not_found("b"));
  EXPECT_TRUE(not_found("a").same_code(not_found("completely different")));
  EXPECT_FALSE(not_found("a") == timeout("a"));
  EXPECT_FALSE(not_found("a").same_code(timeout("a")));
  EXPECT_EQ(Status::ok(), Status());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(timeout("too slow"));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, TakeMovesValue) {
  Result<std::string> r(std::string("payload"));
  std::string taken = std::move(r).take();
  EXPECT_EQ(taken, "payload");
}

TEST(ResultTest, StatusCodeToStringCoversAll) {
  for (int i = 0; i <= static_cast<int>(StatusCode::kResourceExhausted); ++i) {
    EXPECT_STRNE(to_string(static_cast<StatusCode>(i)), "UNKNOWN");
  }
}

}  // namespace
}  // namespace hcm
