// JSON codec tests: writer shape (sorted keys, escaping, number
// formats), strict-parser acceptance/rejection, and the write->parse
// round-trip the telemetry artifacts (series dumps, hcm_top input)
// depend on.
#include "common/json.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace hcm {
namespace {

TEST(JsonWriteTest, ScalarsRender) {
  EXPECT_EQ(json_write(Value()), "null");
  EXPECT_EQ(json_write(Value(true)), "true");
  EXPECT_EQ(json_write(Value(false)), "false");
  EXPECT_EQ(json_write(Value(std::int64_t{-42})), "-42");
  EXPECT_EQ(json_write(Value(std::string("hi"))), "\"hi\"");
  EXPECT_EQ(json_write(Value(1.5)), "1.5");
}

TEST(JsonWriteTest, MapsRenderSortedAndStable) {
  // Value's map is ordered, so equal Values produce byte-identical
  // JSON — the property the series-dump hash checks rely on.
  Value v(ValueMap{{"b", Value(std::int64_t{2})},
                   {"a", Value(std::int64_t{1})}});
  EXPECT_EQ(json_write(v), "{\"a\":1,\"b\":2}");
}

TEST(JsonWriteTest, StringsEscapeControlAndQuotes) {
  const std::string rendered =
      json_write(Value(std::string("a\"b\\c\n\t\x01")));
  EXPECT_EQ(rendered, "\"a\\\"b\\\\c\\n\\t\\u0001\"");
}

TEST(JsonParseTest, ParsesNestedStructure) {
  auto r = json_parse("  {\"xs\": [1, 2.5, \"s\", null, true]} ");
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  const Value& v = r.value();
  ASSERT_TRUE(v.is_map());
  const Value& xs = v.at("xs");
  ASSERT_TRUE(xs.is_list());
  ASSERT_EQ(xs.as_list().size(), 5u);
  EXPECT_EQ(xs.as_list()[0].as_int(), 1);
  EXPECT_DOUBLE_EQ(xs.as_list()[1].as_double(), 2.5);
  EXPECT_EQ(xs.as_list()[2].as_string(), "s");
  EXPECT_TRUE(xs.as_list()[3].is_null());
  EXPECT_TRUE(xs.as_list()[4].as_bool());
}

TEST(JsonParseTest, IntegralNumbersBecomeInt) {
  auto r = json_parse("[9007199254740993, -3, 3.0, 1e2]");
  ASSERT_TRUE(r.is_ok());
  const ValueList& xs = r.value().as_list();
  EXPECT_TRUE(xs[0].is_int());  // beyond double precision, stays exact
  EXPECT_EQ(xs[0].as_int(), 9007199254740993LL);
  EXPECT_TRUE(xs[1].is_int());
  EXPECT_TRUE(xs[2].is_double());  // '.' forces double
  EXPECT_TRUE(xs[3].is_double());  // exponent forces double
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(json_parse("").is_ok());
  EXPECT_FALSE(json_parse("{").is_ok());
  EXPECT_FALSE(json_parse("[1,]").is_ok());
  EXPECT_FALSE(json_parse("{\"a\" 1}").is_ok());
  EXPECT_FALSE(json_parse("nul").is_ok());
  EXPECT_FALSE(json_parse("1 2").is_ok());  // trailing content
  EXPECT_FALSE(json_parse("\"unterminated").is_ok());
}

TEST(JsonRoundTripTest, WriteParseWriteIsIdentity) {
  Value v(ValueMap{
      {"series",
       Value(ValueMap{
           {"net.datagrams", Value(ValueList{Value(std::int64_t{1}),
                                             Value(std::int64_t{2})})},
           {"ratio", Value(0.125)},
       })},
      {"name", Value(std::string("dump \"v1\"\n"))},
      {"ok", Value(true)},
      {"nothing", Value()},
  });
  const std::string once = json_write(v);
  auto back = json_parse(once);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(json_write(back.value()), once);
}

}  // namespace
}  // namespace hcm
