#include "common/interface_desc.hpp"

#include <gtest/gtest.h>

#include "common/service.hpp"

namespace hcm {
namespace {

InterfaceDesc make_switchable() {
  return InterfaceDesc{
      "Switchable",
      {
          MethodDesc{"turnOn", {}, ValueType::kBool, false},
          MethodDesc{"setLevel",
                     {{"level", ValueType::kInt}},
                     ValueType::kNull,
                     false},
          MethodDesc{"notify", {{"msg", ValueType::kString}}, ValueType::kNull,
                     true},
      }};
}

TEST(InterfaceDescTest, FindMethod) {
  auto iface = make_switchable();
  ASSERT_NE(iface.find_method("turnOn"), nullptr);
  EXPECT_EQ(iface.find_method("turnOn")->return_type, ValueType::kBool);
  EXPECT_EQ(iface.find_method("nope"), nullptr);
}

TEST(InterfaceDescTest, OneWayFlag) {
  auto iface = make_switchable();
  EXPECT_TRUE(iface.find_method("notify")->one_way);
  EXPECT_FALSE(iface.find_method("turnOn")->one_way);
}

TEST(InterfaceDescTest, CheckArgsArity) {
  auto iface = make_switchable();
  EXPECT_TRUE(check_args(*iface.find_method("turnOn"), {}).is_ok());
  EXPECT_FALSE(check_args(*iface.find_method("turnOn"), {Value(1)}).is_ok());
  EXPECT_FALSE(check_args(*iface.find_method("setLevel"), {}).is_ok());
}

TEST(InterfaceDescTest, CheckArgsTypes) {
  auto iface = make_switchable();
  const auto& set_level = *iface.find_method("setLevel");
  EXPECT_TRUE(check_args(set_level, {Value(5)}).is_ok());
  EXPECT_FALSE(check_args(set_level, {Value("five")}).is_ok());
}

TEST(InterfaceDescTest, IntWidensToDouble) {
  MethodDesc m{"setVolume", {{"v", ValueType::kDouble}}, ValueType::kNull,
               false};
  EXPECT_TRUE(check_args(m, {Value(3)}).is_ok());
  EXPECT_TRUE(check_args(m, {Value(3.5)}).is_ok());
  EXPECT_FALSE(check_args(m, {Value("3")}).is_ok());
}

TEST(InterfaceDescTest, UntypedParamAcceptsAnything) {
  MethodDesc m{"log", {{"payload", ValueType::kNull}}, ValueType::kNull, false};
  EXPECT_TRUE(check_args(m, {Value(1)}).is_ok());
  EXPECT_TRUE(check_args(m, {Value("s")}).is_ok());
  EXPECT_TRUE(check_args(m, {Value(ValueMap{})}).is_ok());
}

TEST(InterfaceDescTest, Equality) {
  EXPECT_EQ(make_switchable(), make_switchable());
  auto other = make_switchable();
  other.methods[0].name = "turnOff";
  EXPECT_FALSE(make_switchable() == other);
}

TEST(InterfaceDescTest, FindEvent) {
  auto iface = make_switchable();
  iface.events.push_back(MethodDesc{
      "stateChanged", {{"on", ValueType::kBool}}, ValueType::kNull, true});
  ASSERT_NE(iface.find_event("stateChanged"), nullptr);
  EXPECT_TRUE(iface.find_event("stateChanged")->one_way);
  EXPECT_EQ(iface.find_event("turnOn"), nullptr);
  // find_method does not look in the event list.
  EXPECT_EQ(iface.find_method("stateChanged"), nullptr);
}

TEST(InterfaceDescTest, ValueCodecRoundTripsEvents) {
  auto iface = make_switchable();
  iface.events.push_back(MethodDesc{
      "stateChanged", {{"on", ValueType::kBool}}, ValueType::kNull, true});
  auto parsed = interface_from_value(interface_to_value(iface));
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value(), iface);

  // A pre-events serialization (no "events" key) still parses.
  auto legacy = interface_to_value(make_switchable());
  legacy.as_map().erase("events");
  auto from_legacy = interface_from_value(legacy);
  ASSERT_TRUE(from_legacy.is_ok());
  EXPECT_TRUE(from_legacy.value().events.empty());
}

TEST(InterfaceDescTest, EventsParticipateInEquality) {
  auto a = make_switchable();
  auto b = make_switchable();
  EXPECT_EQ(a, b);
  b.events.push_back(MethodDesc{
      "stateChanged", {{"on", ValueType::kBool}}, ValueType::kNull, true});
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace hcm
