#include "common/interface_desc.hpp"

#include <gtest/gtest.h>

namespace hcm {
namespace {

InterfaceDesc make_switchable() {
  return InterfaceDesc{
      "Switchable",
      {
          MethodDesc{"turnOn", {}, ValueType::kBool, false},
          MethodDesc{"setLevel",
                     {{"level", ValueType::kInt}},
                     ValueType::kNull,
                     false},
          MethodDesc{"notify", {{"msg", ValueType::kString}}, ValueType::kNull,
                     true},
      }};
}

TEST(InterfaceDescTest, FindMethod) {
  auto iface = make_switchable();
  ASSERT_NE(iface.find_method("turnOn"), nullptr);
  EXPECT_EQ(iface.find_method("turnOn")->return_type, ValueType::kBool);
  EXPECT_EQ(iface.find_method("nope"), nullptr);
}

TEST(InterfaceDescTest, OneWayFlag) {
  auto iface = make_switchable();
  EXPECT_TRUE(iface.find_method("notify")->one_way);
  EXPECT_FALSE(iface.find_method("turnOn")->one_way);
}

TEST(InterfaceDescTest, CheckArgsArity) {
  auto iface = make_switchable();
  EXPECT_TRUE(check_args(*iface.find_method("turnOn"), {}).is_ok());
  EXPECT_FALSE(check_args(*iface.find_method("turnOn"), {Value(1)}).is_ok());
  EXPECT_FALSE(check_args(*iface.find_method("setLevel"), {}).is_ok());
}

TEST(InterfaceDescTest, CheckArgsTypes) {
  auto iface = make_switchable();
  const auto& set_level = *iface.find_method("setLevel");
  EXPECT_TRUE(check_args(set_level, {Value(5)}).is_ok());
  EXPECT_FALSE(check_args(set_level, {Value("five")}).is_ok());
}

TEST(InterfaceDescTest, IntWidensToDouble) {
  MethodDesc m{"setVolume", {{"v", ValueType::kDouble}}, ValueType::kNull,
               false};
  EXPECT_TRUE(check_args(m, {Value(3)}).is_ok());
  EXPECT_TRUE(check_args(m, {Value(3.5)}).is_ok());
  EXPECT_FALSE(check_args(m, {Value("3")}).is_ok());
}

TEST(InterfaceDescTest, UntypedParamAcceptsAnything) {
  MethodDesc m{"log", {{"payload", ValueType::kNull}}, ValueType::kNull, false};
  EXPECT_TRUE(check_args(m, {Value(1)}).is_ok());
  EXPECT_TRUE(check_args(m, {Value("s")}).is_ok());
  EXPECT_TRUE(check_args(m, {Value(ValueMap{})}).is_ok());
}

TEST(InterfaceDescTest, Equality) {
  EXPECT_EQ(make_switchable(), make_switchable());
  auto other = make_switchable();
  other.methods[0].name = "turnOff";
  EXPECT_FALSE(make_switchable() == other);
}

}  // namespace
}  // namespace hcm
