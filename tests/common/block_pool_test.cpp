#include "common/block_pool.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace hcm {
namespace {

TEST(BlockPoolTest, AcquireReleaseRoundTrip) {
  BlockPool pool({.max_blocks = 8, .lanes = 1});
  BlockHeader* b = pool.acquire();
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->owner, &pool);
  EXPECT_EQ(b->used, 0u);
  EXPECT_EQ(pool.stats().blocks_in_use, 1u);
  BlockPool::release(b);
  EXPECT_EQ(pool.stats().blocks_in_use, 0u);
}

TEST(BlockPoolTest, FreelistReusesReleasedBlock) {
  BlockPool pool({.max_blocks = 8, .lanes = 1});
  BlockHeader* first = pool.acquire();
  first->used = 123;  // dirty it; reacquire must reset
  BlockPool::release(first);
  BlockHeader* again = pool.acquire();
  EXPECT_EQ(again, first);  // LIFO freelist hands the same block back
  EXPECT_EQ(again->used, 0u);
  auto s = pool.stats();
  EXPECT_EQ(s.pool_hits, 1u);
  EXPECT_EQ(s.fresh_blocks, 1u);
  EXPECT_EQ(s.pooled_blocks, 1u);
  BlockPool::release(again);
}

TEST(BlockPoolTest, HighWaterTracksPeakInUse) {
  BlockPool pool({.max_blocks = 8, .lanes = 1});
  std::vector<BlockHeader*> held;
  for (int i = 0; i < 5; ++i) held.push_back(pool.acquire());
  for (BlockHeader* b : held) BlockPool::release(b);
  auto s = pool.stats();
  EXPECT_EQ(s.blocks_in_use, 0u);
  EXPECT_EQ(s.high_water, 5u);
}

TEST(BlockPoolTest, ExhaustionFallsBackToHeapAndCounts) {
  BlockPool pool({.max_blocks = 2, .lanes = 1});
  BlockHeader* a = pool.acquire();
  BlockHeader* b = pool.acquire();
  BlockHeader* c = pool.acquire();  // past the cap
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->owner, nullptr);  // heap fallback, not pool-owned
  auto s = pool.stats();
  EXPECT_EQ(s.heap_fallbacks, 1u);
  EXPECT_EQ(s.pooled_blocks, 2u);
  EXPECT_EQ(s.blocks_in_use, 2u);  // fallbacks are not pooled inventory
  BlockPool::release(c);           // frees rather than recycles
  BlockPool::release(b);
  BlockPool::release(a);
  EXPECT_EQ(pool.stats().pooled_blocks, 2u);
}

TEST(BlockPoolTest, ThreadBindingOverridesDefault) {
  BlockPool pool({.max_blocks = 4, .lanes = 1});
  BlockPool* prev = bind_thread_block_pool(&pool);
  EXPECT_EQ(&wire_pool(), &pool);
  bind_thread_block_pool(prev);
  EXPECT_NE(&wire_pool(), &pool);
}

TEST(BlockPoolTest, ResolverSuppliesPoolWhenThreadUnbound) {
  static BlockPool* s_resolved;
  BlockPool pool({.max_blocks = 4, .lanes = 1});
  s_resolved = &pool;
  set_pool_resolver(+[]() { return s_resolved; });
  EXPECT_EQ(&wire_pool(), &pool);
  set_pool_resolver(nullptr);
  EXPECT_NE(&wire_pool(), &pool);
  s_resolved = nullptr;
}

TEST(BlockPoolTest, LanesServeConcurrentAcquire) {
  BlockPool pool({.max_blocks = 64, .lanes = 4});
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&pool] {
      for (int i = 0; i < 200; ++i) {
        BlockHeader* b = pool.acquire();
        b->used = 1;
        BlockPool::release(b);
      }
    });
  }
  for (auto& w : workers) w.join();
  auto s = pool.stats();
  EXPECT_EQ(s.blocks_in_use, 0u);
  EXPECT_EQ(s.pool_hits + s.fresh_blocks + s.heap_fallbacks, 800u);
}

}  // namespace
}  // namespace hcm
