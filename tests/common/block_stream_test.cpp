#include "common/block_stream.hpp"

#include <gtest/gtest.h>

#include <string>

namespace hcm {
namespace {

// A pattern long enough that repeated appends cross block seams at
// non-trivial offsets.
std::string patterned(std::size_t n) {
  std::string s;
  s.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    s.push_back(static_cast<char>('a' + (i * 7 + i / 251) % 26));
  }
  return s;
}

TEST(BlockStreamTest, AppendAndCopyOutAcrossBlocks) {
  BlockPool pool({.max_blocks = 16, .lanes = 1});
  BlockStream s(&pool);
  const std::string data = patterned(3 * BlockPool::kBlockCapacity + 777);
  s.append(data);
  EXPECT_EQ(s.size(), data.size());
  EXPECT_EQ(s.to_string(), data);
  EXPECT_GE(pool.stats().blocks_in_use, 4u);
  s.clear();
  EXPECT_EQ(pool.stats().blocks_in_use, 0u);
}

TEST(BlockStreamTest, FindSpansBlockSeam) {
  BlockPool pool({.max_blocks = 16, .lanes = 1});
  BlockStream s(&pool);
  // Place "\r\n\r\n" so it straddles the first block boundary.
  std::string head(BlockPool::kBlockCapacity - 2, 'x');
  s.append(head);
  s.append("\r\n\r\n");
  s.append("tail");
  EXPECT_EQ(s.find("\r\n\r\n"), head.size());
  EXPECT_EQ(s.find("tail"), head.size() + 4);
  EXPECT_EQ(s.find("absent"), BlockStream::npos);
  // A false prefix right before the seam must not mask the real hit.
  EXPECT_EQ(s.find("\r\n\r\n", head.size() + 1), BlockStream::npos);
}

TEST(BlockStreamTest, ViewZeroCopyWithinBlockScratchAcross) {
  BlockPool pool({.max_blocks = 16, .lanes = 1});
  BlockStream s(&pool);
  const std::string data = patterned(2 * BlockPool::kBlockCapacity);
  s.append(data);
  std::string scratch;
  // Inside the first block: must not touch scratch.
  scratch = "sentinel";
  auto v1 = s.view(10, 100, scratch);
  EXPECT_EQ(v1, std::string_view(data).substr(10, 100));
  EXPECT_EQ(scratch, "sentinel");
  // Spanning the seam: scratch-backed.
  auto v2 = s.view(BlockPool::kBlockCapacity - 50, 100, scratch);
  EXPECT_EQ(v2, std::string_view(data).substr(BlockPool::kBlockCapacity - 50,
                                              100));
}

TEST(BlockStreamTest, ConsumeReleasesDrainedBlocks) {
  BlockPool pool({.max_blocks = 16, .lanes = 1});
  BlockStream s(&pool);
  const std::string data = patterned(2 * BlockPool::kBlockCapacity + 100);
  s.append(data);
  s.consume(BlockPool::kBlockCapacity + 10);  // drains block 0, enters 1
  EXPECT_EQ(pool.stats().blocks_in_use, 2u);
  EXPECT_EQ(s.size(), data.size() - BlockPool::kBlockCapacity - 10);
  EXPECT_EQ(s.to_string(), data.substr(BlockPool::kBlockCapacity + 10));
  // find/view are relative to the consumed front.
  std::string scratch;
  EXPECT_EQ(s.view(0, 5, scratch),
            std::string_view(data).substr(BlockPool::kBlockCapacity + 10, 5));
  s.consume(s.size());
  EXPECT_EQ(pool.stats().blocks_in_use, 0u);
  EXPECT_TRUE(s.empty());
}

TEST(BlockStreamTest, SpliceRelinksWithoutCopy) {
  BlockPool pool({.max_blocks = 16, .lanes = 1});
  BlockStream a(&pool);
  BlockStream b(&pool);
  a.append("hello ");
  b.append("world");
  const auto fresh_before = pool.stats().fresh_blocks;
  a.splice(std::move(b));
  EXPECT_EQ(pool.stats().fresh_blocks, fresh_before);  // no new blocks
  EXPECT_TRUE(b.empty());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(a.to_string(), "hello world");
  // Appending after a splice continues in the spliced tail block.
  a.append("!");
  EXPECT_EQ(a.to_string(), "hello world!");
  EXPECT_EQ(pool.stats().blocks_in_use, 2u);
}

TEST(BlockStreamTest, SplicePartiallyConsumedFallsBackToCopy) {
  BlockPool pool({.max_blocks = 16, .lanes = 1});
  BlockStream a(&pool);
  BlockStream b(&pool);
  a.append("keep:");
  b.append("dropme-rest");
  b.consume(7);
  a.splice(std::move(b));
  EXPECT_EQ(a.to_string(), "keep:rest");
}

TEST(BlockStreamTest, MoveTransfersChain) {
  BlockPool pool({.max_blocks = 16, .lanes = 1});
  BlockStream a(&pool);
  a.append("payload");
  BlockStream b = std::move(a);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(b.to_string(), "payload");
  BlockStream c(&pool);
  c.append("overwritten");
  c = std::move(b);
  EXPECT_EQ(c.to_string(), "payload");
  c.clear();
  EXPECT_EQ(pool.stats().blocks_in_use, 0u);
}

TEST(BlockStreamTest, ForEachChunkCoversAllBytesInOrder) {
  BlockPool pool({.max_blocks = 16, .lanes = 1});
  BlockStream s(&pool);
  const std::string data = patterned(BlockPool::kBlockCapacity + 333);
  s.append(data);
  s.consume(11);
  std::string walked;
  s.for_each_chunk([&walked](BlockStream::Chunk c) {
    walked.append(reinterpret_cast<const char*>(c.data), c.size);
  });
  EXPECT_EQ(walked, data.substr(11));
}

TEST(BlockStreamTest, ToBytesMatchesAppendedBytes) {
  BlockStream s;  // default pool
  Bytes in = {0x00, 0xff, 0x10, 0x20};
  s.append(in);
  EXPECT_EQ(s.to_bytes(), in);
}

}  // namespace
}  // namespace hcm
