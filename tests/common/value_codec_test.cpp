#include "common/value_codec.hpp"

#include <gtest/gtest.h>

namespace hcm {
namespace {

class ValueCodecRoundTrip : public ::testing::TestWithParam<Value> {};

TEST_P(ValueCodecRoundTrip, EncodeDecodeIsIdentity) {
  const Value& original = GetParam();
  Bytes encoded = encode_value(original);
  auto decoded = decode_value(encoded);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value(), original);
}

INSTANTIATE_TEST_SUITE_P(
    AllValueShapes, ValueCodecRoundTrip,
    ::testing::Values(
        Value(),                                   //
        Value(true), Value(false),                 //
        Value(0), Value(-1), Value(INT64_MAX), Value(INT64_MIN),
        Value(0.0), Value(-3.25), Value(1e300),
        Value(""), Value("hello world"),
        Value(std::string(10000, 'x')),            // large string
        Value(Bytes{}), Value(Bytes{0, 255, 127}),
        Value(ValueList{}),
        Value(ValueList{Value(1), Value("a"), Value(true)}),
        Value(ValueMap{}),
        Value(ValueMap{{"k1", Value(1)}, {"k2", Value("v")}}),
        Value(ValueMap{
            {"nested",
             Value(ValueList{Value(ValueMap{{"deep", Value(42)}})})}})));

TEST(ValueCodecTest, TruncatedBufferFails) {
  Bytes encoded = encode_value(Value("a long enough string"));
  encoded.resize(encoded.size() / 2);
  EXPECT_FALSE(decode_value(encoded).is_ok());
}

TEST(ValueCodecTest, TrailingGarbageFails) {
  Bytes encoded = encode_value(Value(1));
  encoded.push_back(0xFF);
  EXPECT_FALSE(decode_value(encoded).is_ok());
}

TEST(ValueCodecTest, UnknownTagFails) {
  Bytes bad{0x77};
  auto r = decode_value(bad);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kProtocolError);
}

TEST(ValueCodecTest, HostileListLengthRejected) {
  // Tag = list, length = 0xFFFFFFFF with no elements: must not OOM.
  Bytes bad{static_cast<std::uint8_t>(ValueType::kList), 0xFF, 0xFF, 0xFF,
            0xFF};
  EXPECT_FALSE(decode_value(bad).is_ok());
}

TEST(ValueCodecTest, DeepNestingRejected) {
  // 100 nested single-element lists exceed the decoder depth bound.
  Value v(42);
  for (int i = 0; i < 100; ++i) v = Value(ValueList{std::move(v)});
  Bytes encoded = encode_value(v);
  auto r = decode_value(encoded);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kProtocolError);
}

TEST(ValueCodecTest, ModerateNestingAccepted) {
  Value v(42);
  for (int i = 0; i < 30; ++i) v = Value(ValueList{std::move(v)});
  auto r = decode_value(encode_value(v));
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), v);
}

TEST(ValueCodecTest, StreamingMultipleValues) {
  BufWriter w;
  encode_value(Value(1), w);
  encode_value(Value("two"), w);
  Bytes buf = w.take();
  BufReader r(buf);
  EXPECT_EQ(decode_value(r).value(), Value(1));
  EXPECT_EQ(decode_value(r).value(), Value("two"));
  EXPECT_TRUE(r.at_end());
}

}  // namespace
}  // namespace hcm
