#include "common/value.hpp"

#include <gtest/gtest.h>

namespace hcm {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(true).as_bool());
  EXPECT_TRUE(Value(7).is_int());
  EXPECT_EQ(Value(7).as_int(), 7);
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_DOUBLE_EQ(Value(2.5).as_double(), 2.5);
  EXPECT_TRUE(Value("s").is_string());
  EXPECT_EQ(Value("s").as_string(), "s");
  EXPECT_TRUE(Value(Bytes{1}).is_bytes());
  EXPECT_TRUE(Value(ValueList{Value(1)}).is_list());
  EXPECT_TRUE(Value(ValueMap{{"k", Value(1)}}).is_map());
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value(1), Value(1));
  EXPECT_FALSE(Value(1) == Value(2));
  EXPECT_FALSE(Value(1) == Value(1.0));  // int != double
  EXPECT_EQ(Value(), Value(nullptr));
  ValueMap m{{"a", Value(1)}, {"b", Value("x")}};
  EXPECT_EQ(Value(m), Value(m));
}

TEST(ValueTest, ToNumberCoercion) {
  EXPECT_DOUBLE_EQ(Value(3).to_number().value(), 3.0);
  EXPECT_DOUBLE_EQ(Value(3.5).to_number().value(), 3.5);
  EXPECT_FALSE(Value("x").to_number().is_ok());
}

TEST(ValueTest, ToIntCoercion) {
  EXPECT_EQ(Value(3).to_int().value(), 3);
  EXPECT_EQ(Value(4.0).to_int().value(), 4);
  EXPECT_FALSE(Value(4.5).to_int().is_ok());
  EXPECT_FALSE(Value(true).to_int().is_ok());
}

TEST(ValueTest, MapAt) {
  ValueMap m{{"key", Value(9)}};
  Value v(m);
  EXPECT_EQ(v.at("key").as_int(), 9);
  EXPECT_TRUE(v.at("missing").is_null());
  EXPECT_TRUE(Value(1).at("anything").is_null());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value().to_string(), "null");
  EXPECT_EQ(Value(true).to_string(), "true");
  EXPECT_EQ(Value(42).to_string(), "42");
  EXPECT_EQ(Value("hi").to_string(), "\"hi\"");
  EXPECT_EQ(Value(Bytes{1, 2}).to_string(), "bytes[2]");
  EXPECT_EQ(Value(ValueList{Value(1), Value(2)}).to_string(), "[1, 2]");
  EXPECT_EQ(Value(ValueMap{{"a", Value(1)}}).to_string(), "{a: 1}");
}

TEST(ValueTest, NestedStructures) {
  Value nested(ValueMap{
      {"list", Value(ValueList{Value(1), Value("two"), Value(3.0)})},
      {"map", Value(ValueMap{{"inner", Value(true)}})},
  });
  EXPECT_EQ(nested.at("list").as_list().size(), 3u);
  EXPECT_TRUE(nested.at("map").at("inner").as_bool());
}

TEST(ValueTest, ValueTypeNames) {
  EXPECT_STREQ(to_string(ValueType::kNull), "null");
  EXPECT_STREQ(to_string(ValueType::kMap), "map");
  EXPECT_STREQ(to_string(ValueType::kBytes), "bytes");
}

}  // namespace
}  // namespace hcm
