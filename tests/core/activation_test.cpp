// Tests for dynamic service activation (paper §6 future work).
#include "core/activation.hpp"

#include <gtest/gtest.h>

namespace hcm::core {
namespace {

InterfaceDesc probe_interface() {
  return InterfaceDesc{"Probe",
                       {MethodDesc{"ping", {}, ValueType::kInt, false}}};
}

class ActivationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    gw_a = &net.add_node("gw-a");
    gw_b = &net.add_node("gw-b");
    auto& eth = net.add_ethernet("backbone", sim::milliseconds(5),
                                 10'000'000);
    net.attach(*gw_a, eth);
    net.attach(*gw_b, eth);
    vsg_a = std::make_unique<VirtualServiceGateway>(net, gw_a->id(),
                                                    "island-a");
    vsg_b = std::make_unique<VirtualServiceGateway>(net, gw_b->id(),
                                                    "island-b");
    ASSERT_TRUE(vsg_a->start().is_ok());
    ASSERT_TRUE(vsg_b->start().is_ok());
    manager = std::make_unique<ActivationManager>(net, *vsg_a);
  }

  // Registers a counting activatable probe; instances_ counts factory runs.
  Result<Uri> register_probe(ActivationManager::Options options) {
    return manager->register_activatable(
        "probe-1", probe_interface(),
        [this]() -> ServiceHandler {
          ++instances;
          return [this](const std::string& method, const ValueList&,
                        InvokeResultFn done) {
            if (method == "ping") {
              done(Value(++pings));
            } else {
              done(not_found(method));
            }
          };
        },
        options);
  }

  Result<Value> call_ping(const Uri& uri) {
    std::optional<Result<Value>> result;
    vsg_b->call_remote(uri, "probe-1", probe_interface(), "ping", {},
                       [&](Result<Value> r) { result = std::move(r); });
    sim::run_until_done(sched, [&] { return result.has_value(); });
    EXPECT_TRUE(result.has_value());
    return result.value_or(internal_error("no result"));
  }

  sim::Scheduler sched;
  net::Network net{sched};
  net::Node* gw_a = nullptr;
  net::Node* gw_b = nullptr;
  std::unique_ptr<VirtualServiceGateway> vsg_a;
  std::unique_ptr<VirtualServiceGateway> vsg_b;
  std::unique_ptr<ActivationManager> manager;
  int instances = 0;
  std::int64_t pings = 0;
};

TEST_F(ActivationTest, DormantUntilFirstCall) {
  auto uri = register_probe({});
  ASSERT_TRUE(uri.is_ok());
  EXPECT_FALSE(manager->is_active("probe-1"));
  EXPECT_EQ(instances, 0);

  auto r = call_ping(uri.value());
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(r.value(), Value(1));
  EXPECT_TRUE(manager->is_active("probe-1"));
  EXPECT_EQ(instances, 1);
  EXPECT_EQ(manager->activations("probe-1"), 1u);
}

TEST_F(ActivationTest, ActivationDelayIsPaid) {
  ActivationManager::Options options;
  options.activation_delay = sim::seconds(2);
  auto uri = register_probe(options);
  ASSERT_TRUE(uri.is_ok());

  sim::SimTime t0 = sched.now();
  auto first = call_ping(uri.value());
  ASSERT_TRUE(first.is_ok());
  auto cold = sched.now() - t0;
  EXPECT_GE(cold, sim::seconds(2));

  t0 = sched.now();
  auto second = call_ping(uri.value());
  ASSERT_TRUE(second.is_ok());
  auto warm = sched.now() - t0;
  EXPECT_LT(warm, sim::seconds(1));  // already live: no delay
  EXPECT_EQ(instances, 1);           // not re-activated
}

TEST_F(ActivationTest, CallsDuringActivationAreQueuedNotFailed) {
  ActivationManager::Options options;
  options.activation_delay = sim::seconds(2);
  auto uri = register_probe(options);
  ASSERT_TRUE(uri.is_ok());

  int completed = 0;
  for (int i = 0; i < 5; ++i) {
    vsg_b->call_remote(uri.value(), "probe-1", probe_interface(), "ping", {},
                       [&](Result<Value> r) {
                         ASSERT_TRUE(r.is_ok());
                         ++completed;
                       });
  }
  sim::run_until_done(sched, [&] { return completed == 5; });
  EXPECT_EQ(completed, 5);
  EXPECT_EQ(instances, 1);  // one activation served all queued calls
  EXPECT_EQ(pings, 5);
}

TEST_F(ActivationTest, IdleTimeoutDeactivates) {
  ActivationManager::Options options;
  options.activation_delay = sim::milliseconds(100);
  options.idle_timeout = sim::seconds(30);
  auto uri = register_probe(options);
  ASSERT_TRUE(call_ping(uri.value()).is_ok());
  EXPECT_TRUE(manager->is_active("probe-1"));

  sched.run_for(sim::seconds(31));
  EXPECT_FALSE(manager->is_active("probe-1"));
  EXPECT_EQ(manager->deactivations("probe-1"), 1u);

  // Next call re-activates transparently.
  auto r = call_ping(uri.value());
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(instances, 2);
  EXPECT_EQ(manager->activations("probe-1"), 2u);
}

TEST_F(ActivationTest, ActivityKeepsServiceAlive) {
  ActivationManager::Options options;
  options.idle_timeout = sim::seconds(30);
  options.activation_delay = sim::milliseconds(100);
  auto uri = register_probe(options);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(call_ping(uri.value()).is_ok());
    sched.run_for(sim::seconds(20));  // under the idle timeout
  }
  EXPECT_TRUE(manager->is_active("probe-1"));
  EXPECT_EQ(instances, 1);
}

TEST_F(ActivationTest, ZeroIdleTimeoutMeansForever) {
  ActivationManager::Options options;
  options.idle_timeout = 0;
  auto uri = register_probe(options);
  ASSERT_TRUE(call_ping(uri.value()).is_ok());
  sched.run_for(sim::seconds(600));
  EXPECT_TRUE(manager->is_active("probe-1"));
}

TEST_F(ActivationTest, DuplicateRegistrationRejected) {
  ASSERT_TRUE(register_probe({}).is_ok());
  auto second = register_probe({});
  ASSERT_FALSE(second.is_ok());
  EXPECT_EQ(second.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(ActivationTest, UnregisterStopsService) {
  auto uri = register_probe({});
  ASSERT_TRUE(call_ping(uri.value()).is_ok());
  manager->unregister("probe-1");
  EXPECT_FALSE(manager->is_active("probe-1"));
  auto r = call_ping(uri.value());
  EXPECT_FALSE(r.is_ok());
}

}  // namespace
}  // namespace hcm::core
