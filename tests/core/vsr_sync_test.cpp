// PCM-level VSR synchronization: delta refresh converging to the same
// proxy populations as snapshot refresh, cached WSDL publication (no
// per-refresh regeneration), O(1) origin lease renewal with fallback
// after registry loss, and full-resync convergence after journal
// compaction and registry restarts.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/pcm.hpp"
#include "core/vsg.hpp"
#include "core/vsr.hpp"

namespace hcm::core {
namespace {

InterfaceDesc switch_interface() {
  return InterfaceDesc{
      "Switchable",
      {MethodDesc{"turnOn", {}, ValueType::kBool, false},
       MethodDesc{"turnOff", {}, ValueType::kBool, false}}};
}

class FakeAdapter : public MiddlewareAdapter {
 public:
  [[nodiscard]] std::string middleware_name() const override { return "fake"; }

  void list_services(ServicesFn done) override {
    std::vector<LocalService> out;
    for (const auto& [name, s] : services_) out.push_back(s);
    done(std::move(out));
  }

  void invoke(const std::string&, const std::string&, const ValueList&,
              InvokeResultFn done) override {
    done(Value(true));
  }

  [[nodiscard]] Status export_service(const LocalService& service,
                                      ServiceHandler) override {
    exported_.insert(service.name);
    return Status::ok();
  }
  void unexport_service(const std::string& name) override {
    exported_.erase(name);
  }

  void add_service(const std::string& name) {
    LocalService s;
    s.name = name;
    s.interface = switch_interface();
    services_[name] = std::move(s);
  }
  void remove_service(const std::string& name) { services_.erase(name); }
  [[nodiscard]] const std::set<std::string>& exported() const {
    return exported_;
  }

 private:
  std::map<std::string, LocalService> services_;
  std::set<std::string> exported_;
};

// A standalone registry + N islands mesh. Plain struct (not the test
// fixture) so tests can spin up a second, independent mesh and compare
// converged proxy populations across them.
struct SyncMesh {
  struct IslandBox {
    std::unique_ptr<VirtualServiceGateway> vsg;
    std::unique_ptr<Pcm> pcm;
    FakeAdapter* adapter = nullptr;  // owned by pcm
  };

  [[nodiscard]] Status build(std::size_t islands, std::size_t services_each,
                             Pcm::SyncMode mode,
                             std::size_t journal_capacity =
                                 soap::UddiRegistry::kDefaultJournalCapacity) {
    journal_capacity_ = journal_capacity;
    backbone_ =
        &net.add_ethernet("backbone", sim::milliseconds(1), 10'000'000);
    vsr_node_ = &net.add_node("vsr-host");
    net.attach(*vsr_node_, *backbone_);
    vsr = std::make_unique<VsrServer>(net, vsr_node_->id(), 8000,
                                      journal_capacity_);
    if (auto s = vsr->start(); !s.is_ok()) return s;
    for (std::size_t i = 0; i < islands; ++i) {
      const std::string island = "island-" + std::to_string(i);
      auto& gw = net.add_node(island + "-gw");
      net.attach(gw, *backbone_);
      IslandBox box;
      box.vsg =
          std::make_unique<VirtualServiceGateway>(net, gw.id(), island);
      if (auto s = box.vsg->start(); !s.is_ok()) return s;
      auto adapter = std::make_unique<FakeAdapter>();
      box.adapter = adapter.get();
      for (std::size_t k = 0; k < services_each; ++k) {
        adapter->add_service(island + "-svc-" + std::to_string(k));
      }
      box.pcm = std::make_unique<Pcm>(net, *box.vsg, vsr->endpoint(),
                                      std::move(adapter));
      box.pcm->set_sync_mode(mode);
      islands_.push_back(std::move(box));
    }
    return Status::ok();
  }

  // Registry host dies and comes back empty (fresh epoch, no entries).
  [[nodiscard]] Status restart_vsr() {
    vsr.reset();
    vsr = std::make_unique<VsrServer>(net, vsr_node_->id(), 8000,
                                      journal_capacity_);
    return vsr->start();
  }

  [[nodiscard]] Status refresh_round() {
    std::size_t remaining = islands_.size();
    Status first_error;
    for (auto& box : islands_) {
      box.pcm->refresh([&](const Status& s) {
        if (!s.is_ok() && first_error.is_ok()) first_error = s;
        --remaining;
      });
    }
    sim::run_until_done(sched, [&] { return remaining == 0; });
    return first_error;
  }

  [[nodiscard]] Status converge() {
    if (auto s = refresh_round(); !s.is_ok()) return s;
    return refresh_round();
  }

  // (island -> imported name -> digest), the full cross-island proxy
  // state; equality of two of these means the meshes converged to the
  // same populations.
  [[nodiscard]] std::map<std::string, std::map<std::string, std::string>>
  proxy_state() const {
    std::map<std::string, std::map<std::string, std::string>> out;
    for (const auto& box : islands_) {
      auto& mine = out[box.vsg->island_name()];
      for (const auto& name : box.adapter->exported()) {
        mine[name] = box.pcm->imported_digest(name);
      }
    }
    return out;
  }

  sim::Scheduler sched;
  net::Network net{sched};
  net::EthernetSegment* backbone_ = nullptr;
  net::Node* vsr_node_ = nullptr;
  std::size_t journal_capacity_ = soap::UddiRegistry::kDefaultJournalCapacity;
  std::unique_ptr<VsrServer> vsr;
  std::vector<IslandBox> islands_;
};

TEST(VsrSyncTest, DeltaImportsEveryForeignService) {
  SyncMesh mesh;
  ASSERT_TRUE(mesh.build(3, 2, Pcm::SyncMode::kDelta).is_ok());
  ASSERT_TRUE(mesh.converge().is_ok());
  for (const auto& box : mesh.islands_) {
    EXPECT_EQ(box.pcm->published_count(), 2u);
    EXPECT_EQ(box.pcm->imported_count(), 4u);  // 2 services x 2 peers
    EXPECT_EQ(box.adapter->exported().size(), 4u);
  }
  EXPECT_EQ(mesh.vsr->registry().size(), 6u);
}

TEST(VsrSyncTest, DeltaConvergesToSnapshotState) {
  SyncMesh mesh;
  ASSERT_TRUE(mesh.build(2, 3, Pcm::SyncMode::kDelta).is_ok());
  ASSERT_TRUE(mesh.converge().is_ok());
  const auto delta_state = mesh.proxy_state();

  // A second, identical mesh run in snapshot mode must land on exactly
  // the same proxy populations.
  SyncMesh snapshot_mesh;
  ASSERT_TRUE(snapshot_mesh.build(2, 3, Pcm::SyncMode::kSnapshot).is_ok());
  ASSERT_TRUE(snapshot_mesh.converge().is_ok());
  EXPECT_EQ(delta_state, snapshot_mesh.proxy_state());
}

TEST(VsrSyncTest, PublishedWsdlIsCachedNotRegenerated) {
  SyncMesh mesh;
  ASSERT_TRUE(mesh.build(2, 3, Pcm::SyncMode::kDelta).is_ok());
  ASSERT_TRUE(mesh.converge().is_ok());
  for (const auto& box : mesh.islands_) {
    EXPECT_EQ(box.pcm->wsdl_generations(), 3u);
  }
  // Steady-state refreshes emit nothing new.
  ASSERT_TRUE(mesh.refresh_round().is_ok());
  ASSERT_TRUE(mesh.refresh_round().is_ok());
  for (const auto& box : mesh.islands_) {
    EXPECT_EQ(box.pcm->wsdl_generations(), 3u);
  }
}

TEST(VsrSyncTest, SteadyStateRenewsLeasesWithoutRepublishing) {
  SyncMesh mesh;
  ASSERT_TRUE(mesh.build(2, 2, Pcm::SyncMode::kDelta).is_ok());
  ASSERT_TRUE(mesh.converge().is_ok());
  const auto publishes = mesh.vsr->registry().publishes();

  // Refresh well before the TTL lapses, then run past the original
  // expiry: the renewOrigin path must have kept everything alive
  // without any new journaled publish.
  mesh.sched.run_for(Pcm::kPublishTtl / 2);
  ASSERT_TRUE(mesh.refresh_round().is_ok());
  EXPECT_EQ(mesh.vsr->registry().publishes(), publishes);
  EXPECT_GT(mesh.vsr->registry().renewals(), 0u);
  mesh.sched.run_for(Pcm::kPublishTtl / 2 + sim::seconds(5));
  EXPECT_EQ(mesh.vsr->registry().size(), 4u);
  for (const auto& box : mesh.islands_) {
    EXPECT_EQ(box.pcm->renew_fallbacks(), 0u);
  }
}

TEST(VsrSyncTest, ServiceRemovalPropagates) {
  SyncMesh mesh;
  ASSERT_TRUE(mesh.build(2, 2, Pcm::SyncMode::kDelta).is_ok());
  ASSERT_TRUE(mesh.converge().is_ok());
  ASSERT_TRUE(mesh.islands_[1].pcm->has_imported("island-0-svc-0"));

  mesh.islands_[0].adapter->remove_service("island-0-svc-0");
  ASSERT_TRUE(mesh.converge().is_ok());
  EXPECT_FALSE(mesh.islands_[1].pcm->has_imported("island-0-svc-0"));
  EXPECT_EQ(mesh.islands_[1].adapter->exported().count("island-0-svc-0"), 0u);
  EXPECT_EQ(mesh.vsr->registry().size(), 3u);
}

TEST(VsrSyncTest, RegistryRestartConvergesToFreshBootState) {
  SyncMesh mesh;
  ASSERT_TRUE(mesh.build(2, 2, Pcm::SyncMode::kDelta).is_ok());
  ASSERT_TRUE(mesh.converge().is_ok());
  const auto before = mesh.proxy_state();
  ASSERT_FALSE(before.at("island-0").empty());

  ASSERT_TRUE(mesh.restart_vsr().is_ok());
  ASSERT_TRUE(mesh.converge().is_ok());

  // The O(1) renewal was refused by the empty registry (fallback to a
  // full republish), imports resynchronized from a fresh epoch, and the
  // proxy populations match the pre-restart (= fresh boot) state.
  EXPECT_GT(mesh.islands_[0].pcm->renew_fallbacks(), 0u);
  EXPECT_EQ(mesh.proxy_state(), before);
  EXPECT_EQ(mesh.vsr->registry().size(), 4u);

  // Back on the cheap path afterwards.
  const auto fallbacks = mesh.islands_[0].pcm->renew_fallbacks();
  ASSERT_TRUE(mesh.refresh_round().is_ok());
  EXPECT_EQ(mesh.islands_[0].pcm->renew_fallbacks(), fallbacks);
}

TEST(VsrSyncTest, JournalCompactionResyncConverges) {
  SyncMesh mesh;
  ASSERT_TRUE(
      mesh.build(2, 1, Pcm::SyncMode::kDelta, /*journal_capacity=*/2).is_ok());
  ASSERT_TRUE(mesh.converge().is_ok());

  // Enough churn on island-0 to blow past the tiny journal while
  // island-1 isn't looking: its next sync needs a full resync.
  for (int i = 0; i < 4; ++i) {
    mesh.islands_[0].adapter->add_service("island-0-extra-" +
                                          std::to_string(i));
  }
  mesh.islands_[0].adapter->remove_service("island-0-svc-0");
  ASSERT_TRUE(mesh.converge().is_ok());

  EXPECT_GT(mesh.vsr->registry().resyncs_required(), 0u);
  EXPECT_FALSE(mesh.islands_[1].pcm->has_imported("island-0-svc-0"));
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(mesh.islands_[1].pcm->has_imported("island-0-extra-" +
                                                   std::to_string(i)));
  }
  // Same populations as a mesh booted directly into the final layout.
  SyncMesh fresh;
  ASSERT_TRUE(
      fresh.build(2, 0, Pcm::SyncMode::kDelta, /*journal_capacity=*/2).is_ok());
  for (int i = 0; i < 4; ++i) {
    fresh.islands_[0].adapter->add_service("island-0-extra-" +
                                           std::to_string(i));
  }
  fresh.islands_[1].adapter->add_service("island-1-svc-0");
  ASSERT_TRUE(fresh.converge().is_ok());
  EXPECT_EQ(mesh.proxy_state(), fresh.proxy_state());
}

}  // namespace
}  // namespace hcm::core
