// Whole-framework integration tests over the paper's Fig. 3 prototype:
// four middleware islands (Jini, HAVi, X10, Internet Mail) connected by
// SOAP VSGs around a WSDL/UDDI VSR.
#include <gtest/gtest.h>

#include "jini/registrar.hpp"
#include "testbed/home.hpp"

namespace hcm::testbed {
namespace {

class SmartHomeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    home = std::make_unique<SmartHome>(sched);
    ASSERT_TRUE(home->refresh().is_ok());
  }

  // Invoke through an island's native entry point (the adapter), which
  // exercises the full SP->VSG->CP chain for imported services.
  Result<Value> via(core::MiddlewareAdapter& adapter,
                    const std::string& service, const std::string& method,
                    const ValueList& args) {
    std::optional<Result<Value>> result;
    adapter.invoke(service, method, args,
                   [&](Result<Value> r) { result = std::move(r); });
    sim::run_until_done(sched, [&] { return result.has_value(); });
    EXPECT_TRUE(result.has_value()) << service << "." << method;
    return result.value_or(internal_error("no result"));
  }

  sim::Scheduler sched;
  std::unique_ptr<SmartHome> home;
};

TEST_F(SmartHomeTest, RefreshPopulatesVsr) {
  // laserdisc + vcr + tuner + camera + display + lamp + fan + mail = 8.
  EXPECT_EQ(home->vsr->registry().size(), 8u);
}

TEST_F(SmartHomeTest, ForeignServicesAppearInJiniLookup) {
  // Native laserdisc + 7 imported server proxies (all foreign services
  // map into Jini — it is the most expressive island).
  EXPECT_EQ(home->lookup->service_count(), 8u);
}

TEST_F(SmartHomeTest, JiniClientTurnsOnX10Lamp) {
  // Faithful client path: discover via the lookup service, invoke the
  // downloaded proxy. The service happens to live on the powerline.
  jini::LookupClient client(home->net, home->laserdisc_node->id(),
                            home->lookup->endpoint());
  std::optional<Result<Value>> result;
  std::shared_ptr<jini::Proxy> proxy;
  client.lookup("X10Switchable", {},
                [&](Result<std::vector<jini::ServiceItem>> items) {
                  ASSERT_TRUE(items.is_ok());
                  const jini::ServiceItem* lamp_item = nullptr;
                  for (const auto& item : items.value()) {
                    if (item.name == "desk-lamp") lamp_item = &item;
                  }
                  ASSERT_NE(lamp_item, nullptr);
                  proxy = std::make_shared<jini::Proxy>(
                      home->net, home->laserdisc_node->id(), *lamp_item);
                  proxy->invoke("turnOn", {}, [&](Result<Value> r) {
                    result = std::move(r);
                  });
                });
  sim::run_until_done(sched, [&] { return result.has_value(); });
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->is_ok()) << result->status().to_string();
  EXPECT_TRUE(home->lamp->is_on());
}

TEST_F(SmartHomeTest, X10RemoteControlsJiniLaserdisc) {
  // The paper's Fig. 5: "controlling a Jini Laserdisc with an X10
  // remote controller".
  auto unit = home->x10_adapter->unit_for("laserdisc-1");
  ASSERT_TRUE(unit.is_ok()) << unit.status().to_string();
  home->remote->press(unit.value(), x10::FunctionCode::kOn);
  sched.run_for(sim::seconds(30));
  EXPECT_TRUE(home->laserdisc->powered());
  home->remote->press(unit.value(), x10::FunctionCode::kOff);
  sched.run_for(sim::seconds(30));
  EXPECT_FALSE(home->laserdisc->powered());
}

TEST_F(SmartHomeTest, X10RemoteControlsHaviDvCamera) {
  // "...and he can also control a HAVi DV camera."
  auto unit = home->x10_adapter->unit_for("camera-1");
  ASSERT_TRUE(unit.is_ok());
  home->remote->press(unit.value(), x10::FunctionCode::kOn);
  sched.run_for(sim::seconds(30));
  EXPECT_TRUE(home->camera->capturing());
  home->remote->press(unit.value(), x10::FunctionCode::kOff);
  sched.run_for(sim::seconds(30));
  EXPECT_FALSE(home->camera->capturing());
}

TEST_F(SmartHomeTest, JiniIslandControlsHaviVcr) {
  auto r = via(*home->jini_adapter, "vcr-1", "record", {Value(1)});
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(home->vcr->state(), havi::TransportState::kRecord);
}

TEST_F(SmartHomeTest, HaviIslandControlsX10Lamp) {
  auto r = via(*home->havi_adapter, "desk-lamp", "turnOn", {});
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_TRUE(home->lamp->is_on());
}

TEST_F(SmartHomeTest, X10IslandQueriesJiniLaserdisc) {
  auto r = via(*home->x10_adapter, "desk-lamp", "turnOn", {});
  ASSERT_TRUE(r.is_ok());
  // And the HAVi island can read back cross-island state.
  auto status = via(*home->havi_adapter, "laserdisc-1", "getStatus", {});
  ASSERT_TRUE(status.is_ok()) << status.status().to_string();
  EXPECT_EQ(status.value().at("powered"), Value(false));
}

TEST_F(SmartHomeTest, CrossCallResultEqualsNativeResult) {
  // Native Jini call:
  auto native = via(*home->jini_adapter, "laserdisc-1", "getStatus", {});
  // Same service through HAVi (SP -> SOAP -> CP -> Jini):
  auto bridged = via(*home->havi_adapter, "laserdisc-1", "getStatus", {});
  ASSERT_TRUE(native.is_ok());
  ASSERT_TRUE(bridged.is_ok());
  EXPECT_EQ(native.value(), bridged.value());
}

TEST_F(SmartHomeTest, AnyIslandCanSendMail) {
  auto r = via(*home->havi_adapter, "mail-home", "sendMail",
               {Value("alice"), Value("recording done"),
                Value("tape is full")});
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(home->mail_server->mailbox_size("alice"), 1u);
}

TEST_F(SmartHomeTest, IncomingMailInvokesService) {
  // Mail an invocation to the desk lamp's service mailbox; the mail
  // PCM polls, converts and invokes; a result mail comes back.
  mail::MailClient sender(home->net, home->laserdisc_node->id(),
                          home->mail_node->id());
  mail::Message m;
  m.from = "alice";
  m.to = "svc-desk-lamp";
  m.subject = "turnOn";
  sender.send(m, [](const Status&) {});
  sched.run_for(sim::seconds(60));
  EXPECT_TRUE(home->lamp->is_on());
  EXPECT_GE(home->mail_server->mailbox_size("alice"), 1u);
}

TEST_F(SmartHomeTest, ErrorsTunnelAcrossIslands) {
  // play on a powered-off laserdisc fails natively; the same error
  // must surface across the bridge with its code intact.
  auto r = via(*home->havi_adapter, "laserdisc-1", "play", {});
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

TEST_F(SmartHomeTest, GatewayFailureIsolatesIslandButNotLocals) {
  home->x10_gw->set_up(false);
  // Cross-island call to the lamp fails...
  auto r = via(*home->jini_adapter, "desk-lamp", "turnOn", {});
  EXPECT_FALSE(r.is_ok());
  // ...but intra-island Jini keeps working untouched.
  auto local = via(*home->jini_adapter, "laserdisc-1", "turnOn", {});
  EXPECT_TRUE(local.is_ok());
}

TEST_F(SmartHomeTest, BackboneFailureIsolatesAllIslands) {
  home->backbone->set_up(false);
  EXPECT_FALSE(via(*home->jini_adapter, "desk-lamp", "turnOn", {}).is_ok());
  EXPECT_FALSE(via(*home->havi_adapter, "laserdisc-1", "turnOn", {}).is_ok());
  // Native paths unaffected.
  EXPECT_TRUE(via(*home->x10_adapter, "desk-lamp", "turnOn", {}).is_ok());
  EXPECT_TRUE(home->lamp->is_on());
}

TEST_F(SmartHomeTest, RefreshIsIdempotent) {
  auto before = home->vsr->registry().size();
  ASSERT_TRUE(home->refresh().is_ok());
  ASSERT_TRUE(home->refresh().is_ok());
  EXPECT_EQ(home->vsr->registry().size(), before);
  EXPECT_EQ(home->lookup->service_count(), 8u);  // no duplicates
}

TEST_F(SmartHomeTest, DepartedServiceIsRetiredEverywhere) {
  ASSERT_TRUE(home->x10_adapter->unit_for("laserdisc-1").is_ok());
  // The laserdisc leaves the Jini network abruptly (no graceful
  // cancel): its lookup lease lapses, then a sync pass retires it.
  home->laserdisc.reset();
  sched.run_for(sim::seconds(35));  // > the 30 s registration lease
  ASSERT_TRUE(home->refresh().is_ok());
  // VSR no longer advertises it; X10 binding is gone.
  EXPECT_EQ(home->vsr->registry().size(), 7u);
  EXPECT_FALSE(home->x10_adapter->unit_for("laserdisc-1").is_ok());
}

TEST_F(SmartHomeTest, NewServiceAppearsAfterRefresh) {
  // Plug a new X10 appliance in by reconfiguring the island (X10 has
  // no discovery, so arrival = configuration + refresh)... exercised
  // instead with a second Jini service, which *does* self-announce.
  jini::Exporter exporter(home->net, home->laserdisc_node->id(), 4270);
  ASSERT_TRUE(exporter.start().is_ok());
  exporter.export_object("cd-1", [](const std::string&, const ValueList&,
                                    InvokeResultFn done) {
    done(Value(true));
  });
  jini::ServiceItem item;
  item.service_id = "cd-1";
  item.name = "cd-1";
  item.interface = InterfaceDesc{
      "MediaPlayer", {MethodDesc{"play", {}, ValueType::kBool, false}}};
  item.endpoint = {home->laserdisc_node->id(), 4270};
  jini::Registrar registrar(home->net, home->laserdisc_node->id(),
                            home->lookup->endpoint(), item);
  registrar.join([](const Status&) {});
  sched.run_for(sim::seconds(2));

  ASSERT_TRUE(home->refresh().is_ok());
  EXPECT_EQ(home->vsr->registry().size(), 9u);
  // Reachable from HAVi immediately after the sync.
  auto r = via(*home->havi_adapter, "cd-1", "play", {});
  EXPECT_TRUE(r.is_ok()) << r.status().to_string();
}

TEST_F(SmartHomeTest, VsrLeaseExpiryDropsSilentIsland) {
  // If an island's PCM stops refreshing (gateway crash), its VSR
  // entries lapse after the publish TTL and others retire the proxies.
  home->jini_gw->set_up(false);
  sched.run_until(sched.now() + core::Pcm::kPublishTtl +
                  sim::seconds(10));
  // The refresh reports the dead island's error but still syncs the
  // healthy islands.
  (void)home->refresh();
  EXPECT_FALSE(home->x10_adapter->unit_for("laserdisc-1").is_ok());
}

TEST(SmartHomeBinaryTest, BinaryVsgProtocolWorksEndToEnd) {
  sim::Scheduler sched;
  SmartHomeOptions options;
  options.protocol = core::VsgProtocol::kBinary;
  SmartHome home(sched, options);
  ASSERT_TRUE(home.refresh().is_ok());
  std::optional<Result<Value>> result;
  home.jini_adapter->invoke("desk-lamp", "turnOn", {},
                            [&](Result<Value> r) { result = std::move(r); });
  sim::run_until_done(sched, [&] { return result.has_value(); });
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->is_ok()) << result->status().to_string();
  EXPECT_TRUE(home.lamp->is_on());
}

}  // namespace
}  // namespace hcm::testbed
