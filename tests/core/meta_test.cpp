// MetaMiddleware orchestration behaviours: island bookkeeping, the
// auto-refresh loop (service dynamism propagating without manual
// sync), and graceful handling of add/remove edge cases.
#include <gtest/gtest.h>

#include "jini/registrar.hpp"
#include "testbed/home.hpp"

namespace hcm::testbed {
namespace {

TEST(MetaMiddlewareTest, IslandBookkeeping) {
  sim::Scheduler sched;
  SmartHome home(sched);
  EXPECT_EQ(home.meta->island_count(), 4u);
  ASSERT_NE(home.meta->island("jini-island"), nullptr);
  EXPECT_EQ(home.meta->island("jini-island")->name, "jini-island");
  EXPECT_EQ(home.meta->island("atlantis"), nullptr);
}

TEST(MetaMiddlewareTest, DuplicateIslandRejected) {
  sim::Scheduler sched;
  SmartHome home(sched);
  auto duplicate = home.meta->add_island(
      "jini-island", home.jini_gw->id(),
      std::make_unique<core::JiniAdapter>(home.net, home.jini_gw->id(),
                                          home.lookup->endpoint()));
  ASSERT_FALSE(duplicate.is_ok());
  EXPECT_EQ(duplicate.status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(home.meta->island_count(), 4u);
}

TEST(MetaMiddlewareTest, AutoRefreshPropagatesNewServices) {
  sim::Scheduler sched;
  SmartHome home(sched);
  ASSERT_TRUE(home.refresh().is_ok());
  home.meta->start_auto_refresh(sim::seconds(30));

  // A new Jini service appears after the initial sync...
  jini::Exporter exporter(home.net, home.laserdisc_node->id(), 4290);
  ASSERT_TRUE(exporter.start().is_ok());
  exporter.export_object("md-1", [](const std::string&, const ValueList&,
                                    InvokeResultFn done) {
    done(Value(true));
  });
  jini::ServiceItem item;
  item.service_id = "md-1";
  item.name = "md-1";
  item.interface = InterfaceDesc{
      "MiniDisc", {MethodDesc{"play", {}, ValueType::kBool, false}}};
  item.endpoint = {home.laserdisc_node->id(), 4290};
  jini::Registrar registrar(home.net, home.laserdisc_node->id(),
                            home.lookup->endpoint(), item);
  registrar.join([](const Status&) {});

  // ...and becomes reachable from HAVi within ~two refresh periods,
  // with no manual sync call.
  sched.run_for(sim::seconds(70));
  std::optional<Result<Value>> r;
  home.havi_adapter->invoke("md-1", "play", {},
                            [&](Result<Value> v) { r = std::move(v); });
  sim::run_until_done(sched, [&] { return r.has_value(); });
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->is_ok()) << r->status().to_string();
  home.meta->stop_auto_refresh();
}

TEST(MetaMiddlewareTest, StopAutoRefreshStopsSyncing) {
  sim::Scheduler sched;
  SmartHome home(sched);
  ASSERT_TRUE(home.refresh().is_ok());
  home.meta->start_auto_refresh(sim::seconds(30));
  sched.run_for(sim::seconds(40));
  home.meta->stop_auto_refresh();

  const auto size_before = home.vsr->registry().size();
  // Remove the laserdisc; with auto-refresh stopped, nothing retires
  // it from the VSR even after the publish TTL would have been renewed.
  home.laserdisc.reset();
  sched.run_for(sim::seconds(40));
  EXPECT_EQ(home.vsr->registry().size(), size_before);
}

TEST(MetaMiddlewareTest, RefreshAllOnEmptyMetaCompletes) {
  sim::Scheduler sched;
  net::Network net(sched);
  auto& vsr_host = net.add_node("vsr");
  auto& eth = net.add_ethernet("bb", sim::milliseconds(5), 10'000'000);
  net.attach(vsr_host, eth);
  core::VsrServer vsr(net, vsr_host.id());
  (void)vsr.start();
  core::MetaMiddleware meta(net, vsr.endpoint());
  std::optional<Status> done;
  meta.refresh_all([&](const Status& s) { done = s; });
  sim::run_until_done(sched, [&] { return done.has_value(); });
  ASSERT_TRUE(done.has_value());
  EXPECT_TRUE(done->is_ok());
}

TEST(MetaMiddlewareTest, VsrDownFailsRefreshButFrameworkRecovers) {
  sim::Scheduler sched;
  SmartHome home(sched);
  ASSERT_TRUE(home.refresh().is_ok());

  home.vsr_node->set_up(false);
  auto status = home.refresh();
  EXPECT_FALSE(status.is_ok());

  // Existing proxies keep working (they hold direct VSG endpoints).
  std::optional<Result<Value>> r;
  home.jini_adapter->invoke("camera-1", "getStatus", {},
                            [&](Result<Value> v) { r = std::move(v); });
  sim::run_until_done(sched, [&] { return r.has_value(); });
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->is_ok());

  // VSR comes back: the next refresh succeeds again.
  home.vsr_node->set_up(true);
  EXPECT_TRUE(home.refresh().is_ok());
}

}  // namespace
}  // namespace hcm::testbed
