#include "core/proxygen.hpp"

#include <gtest/gtest.h>

#include "soap/wsdl.hpp"

namespace hcm::core {
namespace {

InterfaceDesc switch_interface() {
  return InterfaceDesc{
      "Switchable",
      {MethodDesc{"turnOn", {}, ValueType::kBool, false},
       MethodDesc{"turnOff", {}, ValueType::kBool, false}}};
}

// In-memory adapter recording which native invokes the generated
// proxies perform.
class RecordingAdapter : public MiddlewareAdapter {
 public:
  [[nodiscard]] std::string middleware_name() const override { return "fake"; }

  void list_services(ServicesFn done) override {
    done(std::vector<LocalService>{});
  }

  void invoke(const std::string& service_name, const std::string& method,
              const ValueList&, InvokeResultFn done) override {
    invoked.push_back(service_name + "." + method);
    done(Value(true));
  }

  [[nodiscard]] Status export_service(const LocalService&,
                                      ServiceHandler) override {
    return Status::ok();
  }
  void unexport_service(const std::string&) override {}

  std::vector<std::string> invoked;
};

class ProxyGeneratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    gw = &net.add_node("gw");
    auto& eth = net.add_ethernet("lan", sim::milliseconds(1), 10'000'000);
    net.attach(*gw, eth);
    vsg = std::make_unique<VirtualServiceGateway>(net, gw->id(), "island");
    ASSERT_TRUE(vsg->start().is_ok());
  }

  LocalService service_named(const std::string& name) {
    LocalService s;
    s.name = name;
    s.interface = switch_interface();
    return s;
  }

  sim::Scheduler sched;
  net::Network net{sched};
  net::Node* gw = nullptr;
  std::unique_ptr<VirtualServiceGateway> vsg;
  RecordingAdapter adapter;
};

// The paper's zero-glue property in counter form: exposing N services
// costs exactly N generated client proxies and nothing else.
TEST_F(ProxyGeneratorTest, ExposingNServicesGeneratesExactlyNClientProxies) {
  ProxyGenerator gen(*vsg);
  constexpr int kServices = 7;
  for (int i = 0; i < kServices; ++i) {
    auto wsdl = gen.generate_client_proxy(
        service_named("svc-" + std::to_string(i)), adapter);
    ASSERT_TRUE(wsdl.is_ok()) << wsdl.status().to_string();
    EXPECT_EQ(gen.client_proxies_generated(),
              static_cast<std::uint64_t>(i + 1));
  }
  EXPECT_EQ(gen.client_proxies_generated(), kServices);
  EXPECT_EQ(gen.server_proxies_generated(), 0u);
  EXPECT_EQ(vsg->exposed_count(), kServices);
}

TEST_F(ProxyGeneratorTest, ClientProxyWsdlDescribesTheExposure) {
  ProxyGenerator gen(*vsg);
  auto wsdl = gen.generate_client_proxy(service_named("lamp-1"), adapter);
  ASSERT_TRUE(wsdl.is_ok());
  auto doc = soap::parse_wsdl(wsdl.value());
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc.value().service_name, "lamp-1");
  EXPECT_EQ(doc.value().interface, switch_interface());
  EXPECT_EQ(doc.value().endpoint.to_string(),
            vsg->exposure_uri("lamp-1").to_string());
}

TEST_F(ProxyGeneratorTest, FailedExposureDoesNotCountAsGenerated) {
  ProxyGenerator gen(*vsg);
  ASSERT_TRUE(gen.generate_client_proxy(service_named("dup"), adapter).is_ok());
  auto again = gen.generate_client_proxy(service_named("dup"), adapter);
  EXPECT_FALSE(again.is_ok());
  EXPECT_EQ(again.status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(gen.client_proxies_generated(), 1u);
}

TEST_F(ProxyGeneratorTest, ServerProxyCountsAndForwardsToRemote) {
  ProxyGenerator gen(*vsg);
  // A real exposure on this gateway stands in for the remote island.
  ASSERT_TRUE(gen.generate_client_proxy(service_named("lamp-1"), adapter)
                  .is_ok());
  soap::WsdlDocument remote;
  remote.interface = switch_interface();
  remote.service_name = "lamp-1";
  remote.endpoint = vsg->exposure_uri("lamp-1");

  ServiceHandler sp = gen.generate_server_proxy(remote);
  EXPECT_EQ(gen.server_proxies_generated(), 1u);

  std::optional<Result<Value>> result;
  sp("turnOn", {}, [&](Result<Value> r) { result = std::move(r); });
  sched.run();
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->is_ok()) << result->status().to_string();
  EXPECT_EQ(result->value(), Value(true));
  // The call went SP -> VSG wire -> CP -> native invoke.
  EXPECT_EQ(adapter.invoked, std::vector<std::string>{"lamp-1.turnOn"});
}

}  // namespace
}  // namespace hcm::core
