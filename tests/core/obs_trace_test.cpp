// End-to-end observability over the Fig. 3 smart home: one trace id
// follows a call chain across three middleware islands (HAVi -> Jini,
// then X10 -> HAVi under the same root span), every hop appears as a
// causally-linked span, the export is deterministic across identical
// sim runs, and the ObservabilityService is itself reachable through
// the framework from a foreign island.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "testbed/home.hpp"

namespace hcm::testbed {
namespace {

class ObsTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::global().clear();
    obs::Tracer::global().set_enabled(true);
  }
  void TearDown() override {
    obs::Tracer::global().set_enabled(false);
    obs::Tracer::global().clear();
  }

  // Runs one adapter invocation to completion under the given context.
  Result<Value> invoke_in_scope(sim::Scheduler& sched,
                                core::MiddlewareAdapter& adapter,
                                const obs::TraceContext& ctx,
                                const std::string& service,
                                const std::string& method) {
    std::optional<Result<Value>> result;
    {
      obs::Tracer::Scope scope(obs::Tracer::global(), ctx);
      adapter.invoke(service, method, {},
                     [&](Result<Value> r) { result = std::move(r); });
    }
    sim::run_until_done(sched, [&] { return result.has_value(); });
    EXPECT_TRUE(result.has_value()) << service << "." << method;
    return result.value_or(internal_error("no result"));
  }

  static const obs::Span* span_named(const std::vector<obs::Span>& spans,
                                     std::uint64_t trace_id,
                                     const std::string& name) {
    for (const auto& s : spans) {
      if (s.trace_id == trace_id && s.name == name) return &s;
    }
    return nullptr;
  }

  static const obs::Span* span_by_id(const std::vector<obs::Span>& spans,
                                     std::uint64_t span_id) {
    for (const auto& s : spans) {
      if (s.span_id == span_id) return &s;
    }
    return nullptr;
  }

  // The chain scenario shared by the trace-shape and determinism tests:
  // a root "scenario" span, one HAVi->Jini invocation and one X10->HAVi
  // invocation as its children. Returns the root trace id.
  std::uint64_t run_chain(sim::Scheduler& sched, SmartHome& home) {
    auto& tracer = obs::Tracer::global();
    const std::uint64_t root =
        tracer.begin_span("scenario", "test", sched.now());
    const obs::TraceContext root_ctx = tracer.context_of(root);
    EXPECT_TRUE(invoke_in_scope(sched, *home.havi_adapter, root_ctx,
                                "laserdisc-1", "getStatus")
                    .is_ok());
    EXPECT_TRUE(invoke_in_scope(sched, *home.x10_adapter, root_ctx, "camera-1",
                                "startCapture")
                    .is_ok());
    tracer.end_span(root, sched.now());
    return root_ctx.trace_id;
  }
};

TEST_F(ObsTraceTest, ThreeIslandChainSharesOneTraceId) {
  sim::Scheduler sched;
  SmartHome home(sched);
  ASSERT_TRUE(home.refresh().is_ok());
  const std::uint64_t trace_id = run_chain(sched, home);

  const auto& spans = obs::Tracer::global().spans();
  // Hop 1 (HAVi island -> Jini island), innermost to outermost:
  // adapter -> VSG dispatch -> SOAP server -> SOAP call -> VSG call ->
  // origin adapter -> root. One unbroken parent chain, one trace id.
  const obs::Span* leaf =
      span_named(spans, trace_id, "jini.invoke:laserdisc-1.getStatus");
  ASSERT_NE(leaf, nullptr) << "trace did not reach the Jini adapter";
  const char* expected_chain[] = {
      "vsg.dispatch:laserdisc-1.getStatus", "soap.server:getStatus",
      "soap.call:getStatus", "vsg.call:laserdisc-1.getStatus",
      "havi.invoke:laserdisc-1.getStatus", "scenario"};
  const obs::Span* cursor = leaf;
  for (const char* expected : expected_chain) {
    cursor = span_by_id(spans, cursor->parent_span_id);
    ASSERT_NE(cursor, nullptr) << "chain broke below " << expected;
    EXPECT_EQ(cursor->name, expected);
    EXPECT_EQ(cursor->trace_id, trace_id);
  }
  EXPECT_EQ(cursor->parent_span_id, 0u);  // the scenario span is the root

  // Hop 2 (X10 island -> HAVi island) rides the same trace.
  const obs::Span* hop2_leaf =
      span_named(spans, trace_id, "havi.invoke:camera-1.startCapture");
  ASSERT_NE(hop2_leaf, nullptr);
  const obs::Span* hop2_entry =
      span_named(spans, trace_id, "x10.invoke:camera-1.startCapture");
  ASSERT_NE(hop2_entry, nullptr);

  // The full chain crossed three adapters; every span closed, on
  // monotone virtual-time bounds.
  std::size_t in_trace = 0;
  for (const auto& s : spans) {
    if (s.trace_id != trace_id) continue;
    ++in_trace;
    EXPECT_FALSE(s.open) << s.name;
    EXPECT_LE(s.start, s.end) << s.name;
  }
  EXPECT_GE(in_trace, 13u);  // root + 6 spans per hop
}

TEST_F(ObsTraceTest, ChromeExportHoldsCausallyLinkedSpans) {
  sim::Scheduler sched;
  SmartHome home(sched);
  ASSERT_TRUE(home.refresh().is_ok());
  const std::uint64_t trace_id = run_chain(sched, home);

  std::string json = obs::Tracer::global().export_chrome(trace_id);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // >= 6 complete events, all causally linked (checked span-wise above;
  // here the export itself must carry them).
  std::size_t events = 0;
  for (std::size_t at = json.find("\"ph\":\"X\""); at != std::string::npos;
       at = json.find("\"ph\":\"X\"", at + 1)) {
    ++events;
  }
  EXPECT_GE(events, 6u);
  EXPECT_NE(json.find("soap.server:getStatus"), std::string::npos);
  EXPECT_NE(json.find("jini.invoke:laserdisc-1.getStatus"),
            std::string::npos);
}

TEST_F(ObsTraceTest, SpanCountStableAcrossIdenticalRuns) {
  auto run_once = [this]() -> std::size_t {
    obs::Tracer::global().clear();
    sim::Scheduler sched;
    SmartHome home(sched);
    EXPECT_TRUE(home.refresh().is_ok());
    const std::uint64_t trace_id = run_chain(sched, home);
    std::size_t n = 0;
    for (const auto& s : obs::Tracer::global().spans()) {
      if (s.trace_id == trace_id) ++n;
    }
    return n;
  };
  const std::size_t first = run_once();
  const std::size_t second = run_once();
  EXPECT_GE(first, 13u);
  EXPECT_EQ(first, second);
}

TEST_F(ObsTraceTest, ObservabilityServiceReachableFromForeignIsland) {
  sim::Scheduler sched;
  SmartHome home(sched);
  ASSERT_TRUE(home.meta->enable_observability("jini-island").is_ok());
  EXPECT_TRUE(home.meta->observability_enabled("jini-island"));
  ASSERT_TRUE(home.refresh().is_ok());
  // The introspection entry sits in the VSR next to the 8 services.
  EXPECT_EQ(home.vsr->registry().size(), 9u);

  // Record some spans, then read the span count back from the HAVi
  // island: the call itself crosses HAVi -> Jini through the VSGs.
  const std::uint64_t trace_id = run_chain(sched, home);

  std::optional<Result<Value>> count;
  home.havi_adapter->invoke("observability-jini-island", "getSpanCount", {},
                            [&](Result<Value> r) { count = std::move(r); });
  sim::run_until_done(sched, [&] { return count.has_value(); });
  ASSERT_TRUE(count.has_value());
  ASSERT_TRUE(count->is_ok()) << count->status().to_string();
  ASSERT_TRUE(count->value().is_int());
  EXPECT_GE(count->value().as_int(), 13);

  // getMetrics serves a registry snapshot across the same path.
  std::optional<Result<Value>> metrics;
  home.havi_adapter->invoke("observability-jini-island", "getMetrics",
                            {Value(std::string("http."))},
                            [&](Result<Value> r) { metrics = std::move(r); });
  sim::run_until_done(sched, [&] { return metrics.has_value(); });
  ASSERT_TRUE(metrics.has_value());
  ASSERT_TRUE(metrics->is_ok()) << metrics->status().to_string();
  ASSERT_TRUE(metrics->value().is_map());
  EXPECT_FALSE(metrics->value().as_map().empty());

  // getTrace returns the Chrome export for the recorded chain.
  std::optional<Result<Value>> trace;
  home.havi_adapter->invoke(
      "observability-jini-island", "getTrace",
      {Value(static_cast<std::int64_t>(trace_id))},
      [&](Result<Value> r) { trace = std::move(r); });
  sim::run_until_done(sched, [&] { return trace.has_value(); });
  ASSERT_TRUE(trace.has_value());
  ASSERT_TRUE(trace->is_ok()) << trace->status().to_string();
  ASSERT_TRUE(trace->value().is_string());
  EXPECT_NE(trace->value().as_string().find("\"traceEvents\""),
            std::string::npos);
}

TEST_F(ObsTraceTest, EnableObservabilityValidatesIsland) {
  sim::Scheduler sched;
  SmartHome home(sched);
  auto missing = home.meta->enable_observability("atlantis");
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);
  EXPECT_FALSE(home.meta->observability_enabled("atlantis"));
  ASSERT_TRUE(home.meta->enable_observability("jini-island").is_ok());
  // Enabling twice is idempotent.
  EXPECT_TRUE(home.meta->enable_observability("jini-island").is_ok());
}

TEST_F(ObsTraceTest, RefreshRenewsObservabilityLease) {
  sim::Scheduler sched;
  SmartHome home(sched);
  ASSERT_TRUE(home.meta->enable_observability("jini-island").is_ok());
  ASSERT_TRUE(home.refresh().is_ok());
  EXPECT_EQ(home.vsr->registry().size(), 9u);
  // Two publish TTLs later, with refreshes in between, the entry must
  // still be leased (refresh_all republishes it).
  sched.run_for(core::Pcm::kPublishTtl / 2);
  ASSERT_TRUE(home.refresh().is_ok());
  sched.run_for(core::Pcm::kPublishTtl / 2);
  ASSERT_TRUE(home.refresh().is_ok());
  EXPECT_EQ(home.vsr->registry().size(), 9u);
}

TEST_F(ObsTraceTest, HealthTransitionsCrossTheEventBridge) {
  sim::Scheduler sched;
  SmartHome home(sched);
  ASSERT_TRUE(home.meta->enable_observability("jini-island").is_ok());
  ASSERT_TRUE(home.refresh().is_ok());

  // Wire a recorder + monitor into the framework exposure.
  obs::TimeSeriesOptions opts;
  opts.tiers = {{sim::seconds(1), 16}};
  opts.prefixes = {"bridgetest."};
  obs::TimeSeriesRecorder rec(opts);
  obs::HealthMonitor mon;
  ASSERT_TRUE(mon.add_rule_spec("hot: value(bridgetest.*) > 5").is_ok());
  rec.set_health(&mon);
  home.meta->attach_telemetry(&rec, &mon);

  // Subscribe from the HAVi island to the Jini island's observability
  // exposure. The service is framework-exposed (no adapter behind it),
  // so the bridge resolves its event list via the VSG interface
  // fallback rather than an adapter watch.
  std::vector<Value> received;
  std::optional<Result<std::string>> lease;
  home.meta->island("havi-island")
      ->events->subscribe(
          "observability-jini-island", "healthChanged", {},
          [&](const std::string&, const std::string& ev, const Value& payload) {
            EXPECT_EQ(ev, "healthChanged");
            received.push_back(payload);
          },
          [&](Result<std::string> r) { lease = std::move(r); });
  sim::run_until_done(sched, [&] { return lease.has_value(); });
  ASSERT_TRUE(lease.has_value());
  ASSERT_TRUE(lease->is_ok()) << lease->status().to_string();

  // Force unknown->ok then ok->breach; each transition is re-injected
  // as a native healthChanged event on the origin island and bridged.
  const sim::SimTime t0 = sched.now();
  auto& g = obs::Registry::global().gauge("bridgetest.temp");
  g.set(1);
  rec.sample_until(t0 + sim::seconds(1));
  g.set(9);
  rec.sample_until(t0 + sim::seconds(2));
  sim::run_until_done(sched, [&] { return received.size() >= 2; });
  ASSERT_GE(received.size(), 2u);
  const Value& breach = received.back();
  EXPECT_EQ(breach.at("rule").as_string(), "hot");
  EXPECT_EQ(breach.at("from").as_string(), "ok");
  EXPECT_EQ(breach.at("to").as_string(), "breach");
  EXPECT_EQ(breach.at("series").as_string(), "bridgetest.temp");
  EXPECT_DOUBLE_EQ(breach.at("value").as_double(), 9.0);

  // The polling twins of the push path: getHealth and getSeries serve
  // the same monitor and recorder across the wire.
  std::optional<Result<Value>> health;
  home.havi_adapter->invoke("observability-jini-island", "getHealth", {},
                            [&](Result<Value> r) { health = std::move(r); });
  sim::run_until_done(sched, [&] { return health.has_value(); });
  ASSERT_TRUE(health.has_value());
  ASSERT_TRUE(health->is_ok()) << health->status().to_string();
  EXPECT_EQ(health->value().at("state").as_string(), "breach");
  EXPECT_EQ(health->value().at("rules").at("hot").at("state").as_string(),
            "breach");

  std::optional<Result<Value>> series;
  home.havi_adapter->invoke(
      "observability-jini-island", "getSeries",
      {Value(std::string("bridgetest.")),
       Value(static_cast<std::int64_t>(sim::seconds(5)))},
      [&](Result<Value> r) { series = std::move(r); });
  sim::run_until_done(sched, [&] { return series.has_value(); });
  ASSERT_TRUE(series.has_value());
  ASSERT_TRUE(series->is_ok()) << series->status().to_string();
  const Value& reply = series->value();
  EXPECT_EQ(reply.at("period_us").as_int(), sim::seconds(1));
  ASSERT_TRUE(reply.at("series").is_map());
  EXPECT_EQ(reply.at("series").as_map().count("bridgetest.temp"), 1u);
}

TEST_F(ObsTraceTest, TelemetryOpsUnavailableWithoutBackends) {
  sim::Scheduler sched;
  SmartHome home(sched);
  ASSERT_TRUE(home.meta->enable_observability("jini-island").is_ok());
  ASSERT_TRUE(home.refresh().is_ok());
  // No attach_telemetry: the ops answer kUnavailable, not a crash.
  std::optional<Result<Value>> health;
  home.havi_adapter->invoke("observability-jini-island", "getHealth", {},
                            [&](Result<Value> r) { health = std::move(r); });
  sim::run_until_done(sched, [&] { return health.has_value(); });
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace hcm::testbed
