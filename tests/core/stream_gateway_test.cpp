#include "core/stream_gateway.hpp"

#include <gtest/gtest.h>

namespace hcm::core {
namespace {

class EventGatewayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    gw_a = &net.add_node("gw-a");
    gw_b = &net.add_node("gw-b");
    auto& eth = net.add_ethernet("backbone", sim::milliseconds(5),
                                 10'000'000);
    net.attach(*gw_a, eth);
    net.attach(*gw_b, eth);
    a = std::make_unique<EventGateway>(net, gw_a->id());
    b = std::make_unique<EventGateway>(net, gw_b->id());
    ASSERT_TRUE(a->start().is_ok());
    ASSERT_TRUE(b->start().is_ok());
    a->add_peer({gw_b->id(), kEventGatewayPort});
    b->add_peer({gw_a->id(), kEventGatewayPort});
  }

  sim::Scheduler sched;
  net::Network net{sched};
  net::Node* gw_a = nullptr;
  net::Node* gw_b = nullptr;
  std::unique_ptr<EventGateway> a;
  std::unique_ptr<EventGateway> b;
};

TEST_F(EventGatewayTest, LocalDelivery) {
  std::vector<Value> got;
  a->subscribe("motion", [&](const std::string&, const Value& v) {
    got.push_back(v);
  });
  a->publish("motion", Value("hallway"));
  sched.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], Value("hallway"));
}

TEST_F(EventGatewayTest, CrossIslandDelivery) {
  std::vector<std::string> got;
  b->subscribe("motion", [&](const std::string& topic, const Value&) {
    got.push_back(topic);
  });
  a->publish("motion", Value(1));
  sched.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(b->events_delivered(), 1u);
}

TEST_F(EventGatewayTest, TopicFiltering) {
  int motion = 0, other = 0;
  b->subscribe("motion", [&](const std::string&, const Value&) { ++motion; });
  b->subscribe("door", [&](const std::string&, const Value&) { ++other; });
  a->publish("motion", Value(1));
  a->publish("motion", Value(2));
  a->publish("temperature", Value(3));
  sched.run();
  EXPECT_EQ(motion, 2);
  EXPECT_EQ(other, 0);
}

TEST_F(EventGatewayTest, WildcardSubscription) {
  int all = 0;
  b->subscribe("*", [&](const std::string&, const Value&) { ++all; });
  a->publish("x", Value(1));
  a->publish("y", Value(2));
  sched.run();
  EXPECT_EQ(all, 2);
}

TEST_F(EventGatewayTest, UnsubscribeStopsDelivery) {
  int got = 0;
  auto id = b->subscribe("t", [&](const std::string&, const Value&) { ++got; });
  a->publish("t", Value(1));
  sched.run();
  b->unsubscribe(id);
  a->publish("t", Value(2));
  sched.run();
  EXPECT_EQ(got, 1);
}

TEST_F(EventGatewayTest, NotificationLatencyIsOneDatagram) {
  // The point of the extension: push latency ~ link latency, not a
  // polling interval.
  std::optional<sim::SimTime> seen_at;
  b->subscribe("t", [&](const std::string&, const Value&) {
    seen_at = sched.now();
  });
  sim::SimTime sent_at = sched.now();
  a->publish("t", Value(1));
  sched.run();
  ASSERT_TRUE(seen_at.has_value());
  EXPECT_LT(*seen_at - sent_at, sim::milliseconds(50));
}

TEST_F(EventGatewayTest, PeerDownLosesEventSilently) {
  gw_b->set_up(false);
  a->publish("t", Value(1));  // datagram semantics: best effort
  sched.run();
  EXPECT_EQ(b->events_delivered(), 0u);
  EXPECT_EQ(a->events_published(), 1u);
}

}  // namespace
}  // namespace hcm::core
