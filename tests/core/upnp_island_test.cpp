// "New middleware can be participated in our framework effortlessly"
// (§3): connect a UPnP island to the running smart home by writing one
// adapter — no change to any existing island, service, or client.
#include <gtest/gtest.h>

#include "core/adapters/upnp_adapter.hpp"
#include "testbed/home.hpp"
#include "upnp/upnp.hpp"

namespace hcm::testbed {
namespace {

class UpnpIslandTest : public ::testing::Test {
 protected:
  void SetUp() override {
    home = std::make_unique<SmartHome>(sched);

    // Build the UPnP island: its own LAN, a gateway, a smart plug.
    upnp_lan = &home->net.add_ethernet("upnp-lan", sim::microseconds(200),
                                       100'000'000);
    upnp_gw = &home->net.add_node("upnp-gw");
    plug_node = &home->net.add_node("smart-plug");
    home->net.attach(*upnp_gw, *upnp_lan);
    home->net.attach(*upnp_gw, *home->backbone);
    home->net.attach(*plug_node, *upnp_lan);

    plug = std::make_unique<upnp::UpnpDevice>(home->net, plug_node->id(),
                                              "Smart Plug");
    plug->add_service(
        "plug-1",
        InterfaceDesc{"BinaryLight",
                      {MethodDesc{"turnOn", {}, ValueType::kBool, false},
                       MethodDesc{"turnOff", {}, ValueType::kBool, false}}},
        [this](const std::string& method, const ValueList&,
               InvokeResultFn done) {
          plug_on = method == "turnOn";
          done(Value(true));
        });
    ASSERT_TRUE(plug->start().is_ok());

    auto adapter =
        std::make_unique<core::UpnpAdapter>(home->net, upnp_gw->id());
    upnp_adapter = adapter.get();
    auto island = home->meta->add_island("upnp-island", upnp_gw->id(),
                                         std::move(adapter));
    ASSERT_TRUE(island.is_ok()) << island.status().to_string();
    ASSERT_TRUE(home->refresh().is_ok());
  }

  Result<Value> via(core::MiddlewareAdapter& adapter,
                    const std::string& service, const std::string& method,
                    const ValueList& args) {
    std::optional<Result<Value>> result;
    adapter.invoke(service, method, args,
                   [&](Result<Value> r) { result = std::move(r); });
    sim::run_until_done(sched, [&] { return result.has_value(); });
    EXPECT_TRUE(result.has_value());
    return result.value_or(internal_error("no result"));
  }

  sim::Scheduler sched;
  std::unique_ptr<SmartHome> home;
  net::EthernetSegment* upnp_lan = nullptr;
  net::Node* upnp_gw = nullptr;
  net::Node* plug_node = nullptr;
  std::unique_ptr<upnp::UpnpDevice> plug;
  core::UpnpAdapter* upnp_adapter = nullptr;
  bool plug_on = false;
};

TEST_F(UpnpIslandTest, UpnpServiceJoinsTheVsr) {
  // 8 original + plug-1.
  EXPECT_EQ(home->vsr->registry().size(), 9u);
}

TEST_F(UpnpIslandTest, JiniIslandControlsUpnpPlug) {
  auto r = via(*home->jini_adapter, "plug-1", "turnOn", {});
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_TRUE(plug_on);
}

TEST_F(UpnpIslandTest, UpnpIslandControlsX10Lamp) {
  auto r = via(*upnp_adapter, "desk-lamp", "turnOn", {});
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_TRUE(home->lamp->is_on());
}

TEST_F(UpnpIslandTest, UpnpIslandControlsHaviCamera) {
  auto r = via(*upnp_adapter, "camera-1", "startCapture", {});
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_TRUE(home->camera->capturing());
}

TEST_F(UpnpIslandTest, X10RemoteReachesUpnpPlug) {
  // Press the virtual unit the plug was bound to: powerline ->
  // CM11A -> SOAP -> UPnP control action.
  auto unit = home->x10_adapter->unit_for("plug-1");
  ASSERT_TRUE(unit.is_ok()) << unit.status().to_string();
  home->remote->press(unit.value(), x10::FunctionCode::kOn);
  sched.run_for(sim::seconds(30));
  EXPECT_TRUE(plug_on);
}

TEST_F(UpnpIslandTest, ExistingIslandsUnchanged) {
  // The original cross-calls still work exactly as before.
  auto r = via(*home->havi_adapter, "laserdisc-1", "turnOn", {});
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(home->laserdisc->powered());
}

}  // namespace
}  // namespace hcm::testbed
