// Unit tests for the PCM adapters' conversion policies (the pieces not
// already covered by the whole-home integration tests).
#include <gtest/gtest.h>

#include "core/adapters/mail_adapter.hpp"
#include "core/adapters/x10_adapter.hpp"
#include "testbed/home.hpp"

namespace hcm::core {
namespace {

// --- MailAdapter::parse_arg: the mail-body argument convention --------

TEST(MailArgParsing, Integers) {
  EXPECT_EQ(MailAdapter::parse_arg("42"), Value(42));
  EXPECT_EQ(MailAdapter::parse_arg("-7"), Value(-7));
  EXPECT_EQ(MailAdapter::parse_arg("0"), Value(0));
}

TEST(MailArgParsing, Doubles) {
  EXPECT_EQ(MailAdapter::parse_arg("3.5"), Value(3.5));
  EXPECT_EQ(MailAdapter::parse_arg("-0.25"), Value(-0.25));
}

TEST(MailArgParsing, Booleans) {
  EXPECT_EQ(MailAdapter::parse_arg("true"), Value(true));
  EXPECT_EQ(MailAdapter::parse_arg("false"), Value(false));
}

TEST(MailArgParsing, StringsAndTrimming) {
  EXPECT_EQ(MailAdapter::parse_arg("hello world"), Value("hello world"));
  EXPECT_EQ(MailAdapter::parse_arg("  padded  "), Value("padded"));
  // Mixed alphanumerics stay strings.
  EXPECT_EQ(MailAdapter::parse_arg("42abc"), Value("42abc"));
  EXPECT_EQ(MailAdapter::parse_arg("1.2.3"), Value("1.2.3"));
}

// --- X10Adapter: ON/OFF method mapping policy --------------------------

class X10MappingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    node = &net.add_node("x10-gw");
    powerline = &net.add_powerline("pl");
    net.attach(*node, *powerline);
    cm11a = std::make_unique<x10::Cm11aController>(net, node->id(),
                                                   *powerline);
    adapter = std::make_unique<X10Adapter>(net, *cm11a,
                                           std::vector<X10DeviceConfig>{});
  }

  Status export_with(const InterfaceDesc& iface, const ValueMap& attrs = {}) {
    LocalService service;
    service.name = "svc-" + std::to_string(++counter);
    service.interface = iface;
    service.attributes = attrs;
    return adapter->export_service(
        service, [](const std::string&, const ValueList&,
                    InvokeResultFn done) { done(Value(true)); });
  }

  sim::Scheduler sched;
  net::Network net{sched};
  net::Node* node = nullptr;
  net::PowerlineSegment* powerline = nullptr;
  std::unique_ptr<x10::Cm11aController> cm11a;
  std::unique_ptr<X10Adapter> adapter;
  int counter = 0;
};

TEST_F(X10MappingTest, ConventionalNamesMap) {
  for (const char* on_name :
       {"turnOn", "powerOn", "play", "startCapture", "start"}) {
    InterfaceDesc iface{
        "I", {MethodDesc{on_name, {}, ValueType::kBool, false}}};
    EXPECT_TRUE(export_with(iface).is_ok()) << on_name;
  }
}

TEST_F(X10MappingTest, ArgumentMethodsDoNotMap) {
  InterfaceDesc iface{
      "Mail",
      {MethodDesc{"sendMail",
                  {{"to", ValueType::kString}, {"s", ValueType::kString}},
                  ValueType::kBool,
                  false}}};
  auto status = export_with(iface);
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(X10MappingTest, HintAttributesOverrideConvention) {
  InterfaceDesc iface{
      "Odd",
      {MethodDesc{"activate", {}, ValueType::kBool, false},
       MethodDesc{"deactivate", {}, ValueType::kBool, false}}};
  ValueMap attrs{{"x10.on", Value("activate")},
                 {"x10.off", Value("deactivate")}};
  EXPECT_TRUE(export_with(iface, attrs).is_ok());
}

TEST_F(X10MappingTest, UnitPoolExhaustsAtSixteen) {
  InterfaceDesc iface{"I", {MethodDesc{"turnOn", {}, ValueType::kBool,
                                       false}}};
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(export_with(iface).is_ok()) << "unit " << i;
  }
  auto status = export_with(iface);
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
}

TEST_F(X10MappingTest, UnexportFreesName) {
  InterfaceDesc iface{"I", {MethodDesc{"turnOn", {}, ValueType::kBool,
                                       false}}};
  LocalService service;
  service.name = "re-exportable";
  service.interface = iface;
  auto handler = [](const std::string&, const ValueList&,
                    InvokeResultFn done) { done(Value(true)); };
  ASSERT_TRUE(adapter->export_service(service, handler).is_ok());
  ASSERT_TRUE(adapter->unit_for("re-exportable").is_ok());
  adapter->unexport_service("re-exportable");
  EXPECT_FALSE(adapter->unit_for("re-exportable").is_ok());
  EXPECT_TRUE(adapter->export_service(service, handler).is_ok());
}

TEST_F(X10MappingTest, UnitsAreDistinct) {
  InterfaceDesc iface{"I", {MethodDesc{"turnOn", {}, ValueType::kBool,
                                       false}}};
  ASSERT_TRUE(export_with(iface).is_ok());
  ASSERT_TRUE(export_with(iface).is_ok());
  auto u1 = adapter->unit_for("svc-1");
  auto u2 = adapter->unit_for("svc-2");
  ASSERT_TRUE(u1.is_ok());
  ASSERT_TRUE(u2.is_ok());
  EXPECT_NE(u1.value(), u2.value());
}

// --- Mail island end-to-end with custom poll interval -------------------

TEST(MailIslandPolling, PollIntervalBoundsNotificationLatency) {
  sim::Scheduler sched;
  testbed::SmartHomeOptions options;
  options.mail_poll = sim::seconds(20);
  testbed::SmartHome home(sched, options);
  ASSERT_TRUE(home.refresh().is_ok());

  mail::MailClient sender(home.net, home.laserdisc_node->id(),
                          home.mail_node->id());
  mail::Message m;
  m.from = "bob";
  m.to = "svc-desk-lamp";
  m.subject = "turnOn";
  sim::SimTime t0 = sched.now();
  sender.send(m, [](const Status&) {});
  sim::run_until_done(sched, [&] { return home.lamp->is_on(); },
                      5'000'000);
  ASSERT_TRUE(home.lamp->is_on());
  auto latency = sched.now() - t0;
  EXPECT_GT(latency, sim::seconds(1));
  EXPECT_LE(latency, sim::seconds(25));  // one poll interval + slack
}

}  // namespace
}  // namespace hcm::core
