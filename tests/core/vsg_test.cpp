#include "core/vsg.hpp"

#include <gtest/gtest.h>

namespace hcm::core {
namespace {

InterfaceDesc calc_interface() {
  return InterfaceDesc{
      "Calc",
      {MethodDesc{"add",
                  {{"a", ValueType::kInt}, {"b", ValueType::kInt}},
                  ValueType::kInt,
                  false}}};
}

class VsgTest : public ::testing::TestWithParam<VsgProtocol> {
 protected:
  void SetUp() override {
    gw_a = &net.add_node("gw-a");
    gw_b = &net.add_node("gw-b");
    auto& eth = net.add_ethernet("backbone", sim::milliseconds(5),
                                 10'000'000);
    net.attach(*gw_a, eth);
    net.attach(*gw_b, eth);
    vsg_a = std::make_unique<VirtualServiceGateway>(net, gw_a->id(),
                                                    "island-a", 8080,
                                                    GetParam());
    vsg_b = std::make_unique<VirtualServiceGateway>(net, gw_b->id(),
                                                    "island-b", 8080,
                                                    GetParam());
    ASSERT_TRUE(vsg_a->start().is_ok());
    ASSERT_TRUE(vsg_b->start().is_ok());
  }

  sim::Scheduler sched;
  net::Network net{sched};
  net::Node* gw_a = nullptr;
  net::Node* gw_b = nullptr;
  std::unique_ptr<VirtualServiceGateway> vsg_a;
  std::unique_ptr<VirtualServiceGateway> vsg_b;
};

TEST_P(VsgTest, ExposeAndCallAcrossGateways) {
  auto uri = vsg_a->expose(
      "calc-1", calc_interface(),
      [](const std::string& method, const ValueList& args,
         InvokeResultFn done) {
        ASSERT_EQ(method, "add");
        done(Value(args[0].as_int() + args[1].as_int()));
      });
  ASSERT_TRUE(uri.is_ok()) << uri.status().to_string();

  std::optional<Result<Value>> result;
  vsg_b->call_remote(uri.value(), "calc-1", calc_interface(), "add",
                     {Value(20), Value(22)},
                     [&](Result<Value> r) { result = std::move(r); });
  sched.run();
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->is_ok()) << result->status().to_string();
  EXPECT_EQ(result->value(), Value(42));
  EXPECT_EQ(vsg_a->local_dispatches(), 1u);
  EXPECT_EQ(vsg_b->remote_calls(), 1u);
}

TEST_P(VsgTest, ArgumentsValidatedBeforeWire) {
  auto uri = vsg_a->expose("calc-1", calc_interface(),
                           [](const std::string&, const ValueList&,
                              InvokeResultFn done) { done(Value(0)); });
  ASSERT_TRUE(uri.is_ok());
  std::optional<Result<Value>> result;
  vsg_b->call_remote(uri.value(), "calc-1", calc_interface(), "add",
                     {Value("x"), Value(1)},
                     [&](Result<Value> r) { result = std::move(r); });
  sched.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->is_ok());
  EXPECT_EQ(vsg_b->remote_calls(), 0u);  // rejected client-side
}

TEST_P(VsgTest, UnknownMethodRejected) {
  auto uri = vsg_a->expose("calc-1", calc_interface(),
                           [](const std::string&, const ValueList&,
                              InvokeResultFn done) { done(Value(0)); });
  std::optional<Result<Value>> result;
  vsg_b->call_remote(uri.value(), "calc-1", calc_interface(), "subtract",
                     {Value(1), Value(2)},
                     [&](Result<Value> r) { result = std::move(r); });
  sched.run();
  EXPECT_FALSE(result->is_ok());
}

TEST_P(VsgTest, DoubleExposeRejected) {
  auto handler = [](const std::string&, const ValueList&,
                    InvokeResultFn done) { done(Value(0)); };
  ASSERT_TRUE(vsg_a->expose("calc-1", calc_interface(), handler).is_ok());
  auto second = vsg_a->expose("calc-1", calc_interface(), handler);
  ASSERT_FALSE(second.is_ok());
  EXPECT_EQ(second.status().code(), StatusCode::kAlreadyExists);
}

TEST_P(VsgTest, UnexposeStopsService) {
  auto uri = vsg_a->expose("calc-1", calc_interface(),
                           [](const std::string&, const ValueList&,
                              InvokeResultFn done) { done(Value(7)); });
  ASSERT_TRUE(uri.is_ok());
  vsg_a->unexpose("calc-1");
  EXPECT_FALSE(vsg_a->is_exposed("calc-1"));
  std::optional<Result<Value>> result;
  vsg_b->call_remote(uri.value(), "calc-1", calc_interface(), "add",
                     {Value(1), Value(2)},
                     [&](Result<Value> r) { result = std::move(r); });
  sched.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->is_ok());
}

TEST_P(VsgTest, ServiceErrorTunnels) {
  auto uri = vsg_a->expose("calc-1", calc_interface(),
                           [](const std::string&, const ValueList&,
                              InvokeResultFn done) {
                             done(resource_exhausted("overflow"));
                           });
  std::optional<Result<Value>> result;
  vsg_b->call_remote(uri.value(), "calc-1", calc_interface(), "add",
                     {Value(1), Value(2)},
                     [&](Result<Value> r) { result = std::move(r); });
  sched.run();
  ASSERT_TRUE(result.has_value());
  ASSERT_FALSE(result->is_ok());
  EXPECT_EQ(result->status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(result->status().message(), "overflow");
}

TEST_P(VsgTest, GatewayDownSurfacesUnavailable) {
  auto uri = vsg_a->expose("calc-1", calc_interface(),
                           [](const std::string&, const ValueList&,
                              InvokeResultFn done) { done(Value(0)); });
  gw_a->set_up(false);
  std::optional<Result<Value>> result;
  vsg_b->call_remote(uri.value(), "calc-1", calc_interface(), "add",
                     {Value(1), Value(2)},
                     [&](Result<Value> r) { result = std::move(r); });
  sched.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->is_ok());
}

TEST_P(VsgTest, ExposureUriMatchesProtocol) {
  auto uri = vsg_a->expose("calc-1", calc_interface(),
                           [](const std::string&, const ValueList&,
                              InvokeResultFn done) { done(Value(0)); });
  ASSERT_TRUE(uri.is_ok());
  EXPECT_EQ(uri.value(), vsg_a->exposure_uri("calc-1"));
  if (GetParam() == VsgProtocol::kSoap) {
    EXPECT_EQ(uri.value().scheme, "http");
  } else {
    EXPECT_EQ(uri.value().scheme, "hcmb");
  }
  EXPECT_EQ(uri.value().host, "gw-a");
}

TEST(VsgKeepAliveTest, BackboneConnectionReusedAcrossCalls) {
  sim::Scheduler sched;
  net::Network net{sched};
  auto& gw_a = net.add_node("gw-a");
  auto& gw_b = net.add_node("gw-b");
  auto& eth = net.add_ethernet("backbone", sim::milliseconds(5), 10'000'000);
  net.attach(gw_a, eth);
  net.attach(gw_b, eth);
  VirtualServiceGateway callee(net, gw_a.id(), "island-a", 8080,
                               VsgProtocol::kSoap);
  VirtualServiceGateway caller(net, gw_b.id(), "island-b", 8080,
                               VsgProtocol::kSoap);
  ASSERT_TRUE(callee.start().is_ok());
  ASSERT_TRUE(caller.start().is_ok());
  auto uri = callee.expose("calc-1", calc_interface(),
                           [](const std::string&, const ValueList& args,
                              InvokeResultFn done) {
                             done(Value(args[0].as_int() + args[1].as_int()));
                           });
  ASSERT_TRUE(uri.is_ok());

  const int kCalls = 8;
  for (int i = 0; i < kCalls; ++i) {
    std::optional<Result<Value>> result;
    caller.call_remote(uri.value(), "calc-1", calc_interface(), "add",
                       {Value(i), Value(1)},
                       [&](Result<Value> r) { result = std::move(r); });
    sched.run();
    ASSERT_TRUE(result.has_value());
    ASSERT_TRUE(result->is_ok()) << result->status().to_string();
    EXPECT_EQ(result->value(), Value(std::int64_t{i} + 1));
  }
  EXPECT_EQ(caller.remote_calls(), static_cast<std::uint64_t>(kCalls));
  // The backbone SoapClient keeps its connection alive: all calls ride
  // one accepted transport connection.
  EXPECT_EQ(callee.backbone_connections_accepted(), 1u);
}

INSTANTIATE_TEST_SUITE_P(BothProtocols, VsgTest,
                         ::testing::Values(VsgProtocol::kSoap,
                                           VsgProtocol::kBinary),
                         [](const auto& info) {
                           return info.param == VsgProtocol::kSoap
                                      ? "Soap"
                                      : "Binary";
                         });

}  // namespace
}  // namespace hcm::core
