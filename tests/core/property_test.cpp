// Property-style tests on framework invariants:
//  - any Value survives a full cross-island round trip (marshalled to
//    SOAP XML or the binary codec, through HTTP/streams, and back), for
//    both VSG protocols;
//  - randomized (seeded, reproducible) value shapes keep that property;
//  - cross-island call results equal native results for every pair.
#include <gtest/gtest.h>

#include "core/vsg.hpp"

namespace hcm::core {
namespace {

InterfaceDesc echo_interface() {
  return InterfaceDesc{
      "Echo",
      {MethodDesc{"echo", {{"v", ValueType::kNull}}, ValueType::kNull,
                  false}}};
}

// Fixture: two gateways, island A exposes an echo.
class EchoFixture {
 public:
  explicit EchoFixture(VsgProtocol protocol)
      : net(sched),
        gw_a(&net.add_node("gw-a")),
        gw_b(&net.add_node("gw-b")),
        eth(&net.add_ethernet("bb", sim::milliseconds(5), 10'000'000)) {
    net.attach(*gw_a, *eth);
    net.attach(*gw_b, *eth);
    vsg_a = std::make_unique<VirtualServiceGateway>(net, gw_a->id(), "a",
                                                    8080, protocol);
    vsg_b = std::make_unique<VirtualServiceGateway>(net, gw_b->id(), "b",
                                                    8080, protocol);
    (void)vsg_a->start();
    (void)vsg_b->start();
    uri = vsg_a
              ->expose("echo", echo_interface(),
                       [](const std::string&, const ValueList& args,
                          InvokeResultFn done) {
                         done(args.empty() ? Value() : args[0]);
                       })
              .value_or(Uri{});
  }

  Result<Value> echo(const Value& v) {
    std::optional<Result<Value>> result;
    vsg_b->call_remote(uri, "echo", echo_interface(), "echo", {v},
                       [&](Result<Value> r) { result = std::move(r); });
    sim::run_until_done(sched, [&] { return result.has_value(); });
    EXPECT_TRUE(result.has_value());
    return result.value_or(internal_error("no result"));
  }

  sim::Scheduler sched;
  net::Network net;
  net::Node* gw_a;
  net::Node* gw_b;
  net::EthernetSegment* eth;
  std::unique_ptr<VirtualServiceGateway> vsg_a;
  std::unique_ptr<VirtualServiceGateway> vsg_b;
  Uri uri;
};

using Case = std::tuple<VsgProtocol, Value>;

class CrossIslandValueRoundTrip : public ::testing::TestWithParam<Case> {};

TEST_P(CrossIslandValueRoundTrip, ValueSurvivesFullStack) {
  auto [protocol, value] = GetParam();
  EchoFixture fx(protocol);
  auto r = fx.echo(value);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(r.value(), value);
}

std::vector<Value> canonical_values() {
  return {
      Value(),
      Value(true),
      Value(false),
      Value(0),
      Value(-1),
      Value(INT64_MAX),
      Value(INT64_MIN),
      Value(3.25),
      Value(-1e100),
      Value(""),
      Value("plain text"),
      Value("<xml> & \"quotes\" 'apostrophes'"),
      Value(std::string(5000, 'x')),
      Value(Bytes{0, 1, 2, 255}),
      Value(ValueList{Value(1), Value("two"), Value(true), Value()}),
      Value(ValueMap{{"nested", Value(ValueMap{{"deep", Value(ValueList{
                                                    Value(42)})}})}}),
  };
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (auto protocol : {VsgProtocol::kSoap, VsgProtocol::kBinary}) {
    for (const auto& value : canonical_values()) {
      cases.emplace_back(protocol, value);
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(CanonicalShapes, CrossIslandValueRoundTrip,
                         ::testing::ValuesIn(all_cases()));

// Randomized value shapes: seeded, so failures reproduce exactly.
Value random_value(std::mt19937_64& rng, int depth) {
  std::uniform_int_distribution<int> kind(0, depth > 2 ? 5 : 7);
  switch (kind(rng)) {
    case 0: return Value();
    case 1: return Value((rng() & 1) == 0);
    case 2: return Value(static_cast<std::int64_t>(rng()));
    case 3: {
      std::uniform_real_distribution<double> d(-1e6, 1e6);
      return Value(d(rng));
    }
    case 4: {
      std::uniform_int_distribution<int> len(0, 40);
      std::string s;
      int n = len(rng);
      for (int i = 0; i < n; ++i) {
        s.push_back(static_cast<char>('a' + (rng() % 26)));
      }
      return Value(std::move(s));
    }
    case 5: {
      std::uniform_int_distribution<int> len(0, 64);
      Bytes b;
      int n = len(rng);
      for (int i = 0; i < n; ++i) {
        b.push_back(static_cast<std::uint8_t>(rng() & 0xFF));
      }
      return Value(std::move(b));
    }
    case 6: {
      std::uniform_int_distribution<int> len(0, 4);
      ValueList list;
      int n = len(rng);
      for (int i = 0; i < n; ++i) list.push_back(random_value(rng, depth + 1));
      return Value(std::move(list));
    }
    default: {
      std::uniform_int_distribution<int> len(0, 4);
      ValueMap map;
      int n = len(rng);
      for (int i = 0; i < n; ++i) {
        map["k" + std::to_string(i)] = random_value(rng, depth + 1);
      }
      return Value(std::move(map));
    }
  }
}

class RandomizedRoundTrip : public ::testing::TestWithParam<VsgProtocol> {};

TEST_P(RandomizedRoundTrip, SeededRandomValuesSurvive) {
  EchoFixture fx(GetParam());
  std::mt19937_64 rng(0xC0FFEE);
  for (int i = 0; i < 40; ++i) {
    Value v = random_value(rng, 0);
    auto r = fx.echo(v);
    ASSERT_TRUE(r.is_ok())
        << "iteration " << i << ": " << r.status().to_string();
    EXPECT_EQ(r.value(), v) << "iteration " << i << ": " << v.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(BothProtocols, RandomizedRoundTrip,
                         ::testing::Values(VsgProtocol::kSoap,
                                           VsgProtocol::kBinary),
                         [](const auto& info) {
                           return info.param == VsgProtocol::kSoap ? "Soap"
                                                                   : "Binary";
                         });

// Latency sanity: the virtual clock must move strictly forward across a
// long call chain and every call must finish in bounded virtual time.
TEST(CrossIslandTiming, CallsCompleteInBoundedVirtualTime) {
  EchoFixture fx(VsgProtocol::kSoap);
  for (int i = 0; i < 20; ++i) {
    sim::SimTime before = fx.sched.now();
    auto r = fx.echo(Value(i));
    ASSERT_TRUE(r.is_ok());
    auto elapsed = fx.sched.now() - before;
    EXPECT_GT(elapsed, 0);
    EXPECT_LT(elapsed, sim::seconds(1));
  }
}

}  // namespace
}  // namespace hcm::core
