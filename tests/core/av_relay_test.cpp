// Tests for the cross-island AV stream relay (paper §6 future work:
// "conversion of multimedia streams").
#include "core/av_relay.hpp"

#include <gtest/gtest.h>

#include "testbed/home.hpp"

namespace hcm::core {
namespace {

class AvRelayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    home = std::make_unique<testbed::SmartHome>(sched);
    (void)home->refresh();
    sender = std::make_unique<AvRelaySender>(home->net, home->havi_gw->id(),
                                             *home->firewire);
    receiver = std::make_unique<AvRelayReceiver>(home->net,
                                                 home->jini_gw->id());
    ASSERT_TRUE(receiver->start().is_ok());
  }

  // Puts the camera on an isochronous channel and starts capturing.
  net::IsoChannel start_camera_stream() {
    auto ch = home->firewire->allocate_channel(havi::kFrameBytes / 8);
    EXPECT_TRUE(ch.is_ok());
    std::optional<Result<Value>> r;
    home->havi_adapter->invoke("camera-1", "startCapture", {},
                               [&](Result<Value> v) { r = std::move(v); });
    sim::run_until_done(sched, [&] { return r.has_value(); });
    // Drive the camera's source hook directly through messaging.
    havi::Seid self = home->fav->messaging.register_element(nullptr);
    std::optional<Result<Value>> connected;
    home->fav->messaging.send_request(
        self, home->camera->seid(), "sm.connectSource",
        {Value(static_cast<std::int64_t>(ch.value()))},
        [&](Result<Value> v) { connected = std::move(v); });
    sim::run_until_done(sched, [&] { return connected.has_value(); });
    EXPECT_TRUE(connected->is_ok());
    return ch.value();
  }

  sim::Scheduler sched;
  std::unique_ptr<testbed::SmartHome> home;
  std::unique_ptr<AvRelaySender> sender;
  std::unique_ptr<AvRelayReceiver> receiver;
};

TEST_F(AvRelayTest, FramesCrossTheBackbone) {
  auto ch = start_camera_stream();
  std::uint64_t sink_frames = 0;
  std::size_t sink_bytes = 0;
  receiver->open_stream(1, [&](std::uint64_t, const Bytes& frame) {
    ++sink_frames;
    sink_bytes += frame.size();
  });
  ASSERT_TRUE(sender->relay(ch, receiver->endpoint(), 1).is_ok());

  sched.run_for(sim::seconds(5));
  // ~30 fps for 5 s.
  EXPECT_GT(sink_frames, 100u);
  EXPECT_EQ(sink_bytes, sink_frames * havi::kFrameBytes);
  EXPECT_EQ(receiver->frames_lost(), 0u);
  EXPECT_EQ(sender->frames_relayed(), receiver->frames_received());
}

TEST_F(AvRelayTest, SequenceGapsCountAsLoss) {
  auto ch = start_camera_stream();
  receiver->open_stream(1, [](std::uint64_t, const Bytes&) {});
  ASSERT_TRUE(sender->relay(ch, receiver->endpoint(), 1).is_ok());
  // Lossy backbone: some datagrams vanish.
  home->backbone->set_drop_probability(0.2);
  sched.run_for(sim::seconds(5));
  home->backbone->set_drop_probability(0.0);
  EXPECT_GT(receiver->frames_lost(), 0u);
  EXPECT_GT(receiver->frames_received(), 0u);
  EXPECT_LT(receiver->frames_received(), sender->frames_relayed());
}

TEST_F(AvRelayTest, StopEndsRelayWithoutKillingLocalSinks) {
  auto ch = start_camera_stream();
  // A local HAVi display also watches the same channel.
  std::optional<Result<Value>> on;
  home->havi_adapter->invoke("display-1", "powerOn", {},
                             [&](Result<Value> v) { on = std::move(v); });
  sim::run_until_done(sched, [&] { return on.has_value(); });
  havi::Seid self = home->fav->messaging.register_element(nullptr);
  std::optional<Result<Value>> connected;
  home->fav->messaging.send_request(
      self, home->display->seid(), "sm.connectSink",
      {Value(static_cast<std::int64_t>(ch))},
      [&](Result<Value> v) { connected = std::move(v); });
  sim::run_until_done(sched, [&] { return connected.has_value(); });
  ASSERT_TRUE(connected->is_ok());

  receiver->open_stream(1, [](std::uint64_t, const Bytes&) {});
  ASSERT_TRUE(sender->relay(ch, receiver->endpoint(), 1).is_ok());
  sched.run_for(sim::seconds(2));
  auto relayed_before = sender->frames_relayed();
  auto shown_before = home->display->frames_shown();
  EXPECT_GT(relayed_before, 0u);
  EXPECT_GT(shown_before, 0u);

  sender->stop(1);
  sched.run_for(sim::seconds(2));
  // Relay stopped; the local display keeps receiving.
  EXPECT_EQ(sender->frames_relayed(), relayed_before);
  EXPECT_GT(home->display->frames_shown(), shown_before);
}

TEST_F(AvRelayTest, DuplicateStreamIdRejected) {
  auto ch = start_camera_stream();
  ASSERT_TRUE(sender->relay(ch, receiver->endpoint(), 7).is_ok());
  auto dup = sender->relay(ch, receiver->endpoint(), 7);
  ASSERT_FALSE(dup.is_ok());
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
}

TEST_F(AvRelayTest, UnknownStreamFramesDropped) {
  auto ch = start_camera_stream();
  // Relay to a stream id the receiver never opened.
  ASSERT_TRUE(sender->relay(ch, receiver->endpoint(), 99).is_ok());
  sched.run_for(sim::seconds(2));
  EXPECT_EQ(receiver->frames_received(), 0u);
}

}  // namespace
}  // namespace hcm::core
