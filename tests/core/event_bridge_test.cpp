// End-to-end tests for the cross-middleware event bridge: a client on
// one island subscribes to an event a service on another island
// declares, and events flow native-source -> adapter watch -> origin
// VSG -> subscriber VSG -> handler + native re-emission. Covers three
// island pairs (HAVi->Jini, Jini->UPnP, X10->mail), lease expiry and
// renewal, idempotent unsubscribe, drop-oldest backpressure and
// retry/backoff over a fault-injected dead link.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/adapters/upnp_adapter.hpp"
#include "core/event_router.hpp"
#include "jini/exporter.hpp"
#include "jini/registrar.hpp"
#include "testbed/home.hpp"
#include "upnp/upnp.hpp"

namespace hcm::testbed {
namespace {

struct ReceivedEvent {
  std::string service;
  std::string event;
  Value payload;
};

class EventBridgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    home = std::make_unique<SmartHome>(sched);
    ASSERT_TRUE(home->refresh().is_ok());
  }

  core::EventRouter& router(const std::string& island) {
    auto* is = home->meta->island(island);
    EXPECT_NE(is, nullptr) << "no island " << island;
    return *is->events;
  }

  // Subscribes and drains the scheduler until the lease id arrives.
  std::string subscribe(const std::string& island, const std::string& service,
                        const std::string& event,
                        std::vector<ReceivedEvent>* received,
                        core::EventRouter::SubscribeOptions opts = {}) {
    std::optional<Result<std::string>> r;
    router(island).subscribe(
        service, event, opts,
        [received](const std::string& svc, const std::string& ev,
                   const Value& payload) {
          received->push_back({svc, ev, payload});
        },
        [&](Result<std::string> res) { r = std::move(res); });
    sim::run_until_done(sched, [&] { return r.has_value(); });
    EXPECT_TRUE(r.has_value());
    if (!r.has_value() || !r->is_ok()) {
      ADD_FAILURE() << "subscribe failed: "
                    << (r.has_value() ? r->status().to_string() : "no result");
      return "";
    }
    return r->value();
  }

  Status unsubscribe(const std::string& island, const std::string& lease) {
    std::optional<Status> s;
    router(island).unsubscribe(lease, [&](const Status& st) { s = st; });
    sim::run_until_done(sched, [&] { return s.has_value(); });
    EXPECT_TRUE(s.has_value());
    return s.value_or(internal_error("unsubscribe did not complete"));
  }

  Result<Value> via(core::MiddlewareAdapter& adapter,
                    const std::string& service, const std::string& method,
                    const ValueList& args) {
    std::optional<Result<Value>> result;
    adapter.invoke(service, method, args,
                   [&](Result<Value> r) { result = std::move(r); });
    sim::run_until_done(sched, [&] { return result.has_value(); });
    EXPECT_TRUE(result.has_value());
    return result.value_or(internal_error("no result"));
  }

  sim::Scheduler sched;
  std::unique_ptr<SmartHome> home;
};

// --- HAVi -> Jini --------------------------------------------------------

TEST_F(EventBridgeTest, HaviVcrEventsReachJiniIsland) {
  std::vector<ReceivedEvent> received;
  auto lease = subscribe("jini-island", "vcr-1", "transportChanged",
                         &received);
  ASSERT_FALSE(lease.empty());
  EXPECT_EQ(router("havi-island").active_subscriptions(), 1u);

  // Drive the VCR through RECORD -> STOP; each transition posts
  // "vcr-1.transportChanged" to the HAVi Event Manager.
  auto r = via(*home->havi_adapter, "vcr-1", "record",
               {Value(std::int64_t{1})});
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  r = via(*home->havi_adapter, "vcr-1", "stop", {});
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  sched.run_for(sim::seconds(2));

  ASSERT_GE(received.size(), 2u);
  EXPECT_EQ(received.front().service, "vcr-1");
  EXPECT_EQ(received.front().event, "transportChanged");
  ASSERT_TRUE(received.front().payload.is_map());
  EXPECT_TRUE(received.front().payload.at("state").is_string());
  EXPECT_GE(router("havi-island").events_routed(), 2u);
  EXPECT_GE(router("havi-island").batches_sent(), 1u);
  EXPECT_GE(router("jini-island").events_delivered(), 2u);
}

TEST_F(EventBridgeTest, BridgedEventsReemitAsNativeJiniEvents) {
  std::vector<ReceivedEvent> received;
  ASSERT_FALSE(subscribe("jini-island", "vcr-1", "transportChanged",
                         &received)
                   .empty());

  // A plain Jini client registers a RemoteEventListener on the
  // imported vcr-1 service item — exactly as it would with any native
  // Jini event source.
  net::Node& client_node = home->net.add_node("jini-client");
  home->net.attach(client_node, *home->jini_lan);
  jini::Exporter exporter(home->net, client_node.id(), 4180);
  ASSERT_TRUE(exporter.start().is_ok());
  std::vector<std::string> native_events;
  exporter.export_object(
      "test-listener",
      [&](const std::string& method, const ValueList& args,
          InvokeResultFn done) {
        if (method == "serviceEvent" && args.size() == 2) {
          native_events.push_back(args[0].as_string());
        }
        done(Value());
      });

  jini::LookupClient lookup(home->net, client_node.id(),
                            home->lookup->endpoint());
  std::optional<Result<std::vector<jini::ServiceItem>>> items;
  lookup.lookup("VcrControl", {}, [&](auto r) { items = std::move(r); });
  sim::run_until_done(sched, [&] { return items.has_value(); });
  ASSERT_TRUE(items.has_value() && items->is_ok());
  ASSERT_EQ(items->value().size(), 1u);

  jini::Proxy vcr_proxy(home->net, client_node.id(), items->value()[0]);
  std::optional<Result<Value>> reg;
  vcr_proxy.invoke("notify",
                   {Value(static_cast<std::int64_t>(client_node.id())),
                    Value(std::int64_t{4180}), Value(std::string("test-listener"))},
                   [&](Result<Value> r) { reg = std::move(r); });
  sim::run_until_done(sched, [&] { return reg.has_value(); });
  ASSERT_TRUE(reg.has_value() && reg->is_ok()) << reg->status().to_string();

  auto r = via(*home->havi_adapter, "vcr-1", "record",
               {Value(std::int64_t{1})});
  ASSERT_TRUE(r.is_ok());
  sched.run_for(sim::seconds(2));

  ASSERT_GE(native_events.size(), 1u);
  EXPECT_EQ(native_events.front(), "transportChanged");
}

// --- Jini -> UPnP --------------------------------------------------------

class EventBridgeUpnpTest : public EventBridgeTest {
 protected:
  void SetUp() override {
    EventBridgeTest::SetUp();
    upnp_lan = &home->net.add_ethernet("upnp-lan", sim::microseconds(200),
                                       100'000'000);
    upnp_gw = &home->net.add_node("upnp-gw");
    plug_node = &home->net.add_node("smart-plug");
    home->net.attach(*upnp_gw, *upnp_lan);
    home->net.attach(*upnp_gw, *home->backbone);
    home->net.attach(*plug_node, *upnp_lan);

    auto adapter =
        std::make_unique<core::UpnpAdapter>(home->net, upnp_gw->id());
    upnp_adapter = adapter.get();
    auto island = home->meta->add_island("upnp-island", upnp_gw->id(),
                                         std::move(adapter));
    ASSERT_TRUE(island.is_ok()) << island.status().to_string();
    ASSERT_TRUE(home->refresh().is_ok());
  }

  net::EthernetSegment* upnp_lan = nullptr;
  net::Node* upnp_gw = nullptr;
  net::Node* plug_node = nullptr;
  core::UpnpAdapter* upnp_adapter = nullptr;
};

TEST_F(EventBridgeUpnpTest, JiniLaserdiscEventsReachUpnpIsland) {
  std::vector<ReceivedEvent> received;
  ASSERT_FALSE(subscribe("upnp-island", "laserdisc-1", "statusChanged",
                         &received)
                   .empty());
  EXPECT_EQ(router("jini-island").active_subscriptions(), 1u);
  EXPECT_EQ(home->laserdisc->listener_count(), 1u);

  auto r = via(*home->jini_adapter, "laserdisc-1", "turnOn", {});
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  sched.run_for(sim::seconds(2));

  ASSERT_GE(received.size(), 1u);
  EXPECT_EQ(received.front().service, "laserdisc-1");
  EXPECT_EQ(received.front().event, "statusChanged");
  ASSERT_TRUE(received.front().payload.is_map());
  EXPECT_TRUE(received.front().payload.at("powered").as_bool());
}

TEST_F(EventBridgeUpnpTest, BridgedEventsReemitAsGenaNotifications) {
  std::vector<ReceivedEvent> received;
  ASSERT_FALSE(subscribe("upnp-island", "laserdisc-1", "statusChanged",
                         &received)
                   .empty());

  // A plain UPnP control point GENA-subscribes to the gateway device's
  // re-exported laserdisc service.
  upnp::ControlPoint cp(home->net, plug_node->id());
  std::optional<std::vector<upnp::DeviceDescription>> devices;
  cp.search(sim::milliseconds(300),
            [&](std::vector<upnp::DeviceDescription> d) {
              devices = std::move(d);
            });
  sim::run_until_done(sched, [&] { return devices.has_value(); });
  const upnp::ServiceDescription* laserdisc = nullptr;
  for (const auto& device : *devices) {
    for (const auto& svc : device.services) {
      if (svc.service_id == "laserdisc-1") laserdisc = &svc;
    }
  }
  ASSERT_NE(laserdisc, nullptr)
      << "gateway device does not re-export laserdisc-1";

  std::vector<std::string> gena_events;
  std::optional<Result<std::string>> sid;
  cp.subscribe(
      *laserdisc,
      [&](const std::string&, const std::string& event, const Value&) {
        gena_events.push_back(event);
      },
      [&](Result<std::string> r) { sid = std::move(r); });
  sim::run_until_done(sched, [&] { return sid.has_value(); });
  ASSERT_TRUE(sid.has_value() && sid->is_ok()) << sid->status().to_string();

  auto r = via(*home->jini_adapter, "laserdisc-1", "turnOn", {});
  ASSERT_TRUE(r.is_ok());
  sched.run_for(sim::seconds(2));

  ASSERT_GE(gena_events.size(), 1u);
  EXPECT_EQ(gena_events.front(), "statusChanged");
}

// --- X10 -> mail ---------------------------------------------------------

TEST_F(EventBridgeTest, X10StateChangesReachMailIsland) {
  std::vector<ReceivedEvent> received;
  ASSERT_FALSE(subscribe("mail-island", "desk-lamp", "stateChanged",
                         &received)
                   .empty());

  // An external hand-held remote on house A flips the lamp: the CM11A
  // observes the powerline command and the bridge carries it to mail.
  net::Node& extra_node = home->net.add_node("x10-remote-a");
  home->net.attach(extra_node, *home->powerline);
  x10::RemoteControl remote_a(home->net, extra_node.id(), *home->powerline,
                              x10::HouseCode::kA);
  remote_a.press(1, x10::FunctionCode::kOn);
  sched.run_for(sim::seconds(5));

  ASSERT_GE(received.size(), 1u);
  EXPECT_EQ(received.front().service, "desk-lamp");
  EXPECT_EQ(received.front().event, "stateChanged");
  ASSERT_TRUE(received.front().payload.is_map());
  EXPECT_TRUE(received.front().payload.at("on").as_bool());
  // Native re-emission: the event lands in the evt-home mailbox.
  EXPECT_GE(home->mail_server->mailbox_size("evt-home"), 1u);
}

// --- Lease semantics -----------------------------------------------------

TEST_F(EventBridgeTest, LeaseExpiryRemovesSubscriptionAndStopsDelivery) {
  std::vector<ReceivedEvent> received;
  core::EventRouter::SubscribeOptions opts;
  opts.lease = sim::seconds(2);
  opts.auto_renew = false;
  ASSERT_FALSE(subscribe("jini-island", "vcr-1", "transportChanged",
                         &received, opts)
                   .empty());
  EXPECT_EQ(router("havi-island").active_subscriptions(), 1u);
  // The VSR's copy of the subscription is written asynchronously by
  // the origin; let it land before checking the system of record.
  sched.run_for(sim::milliseconds(500));
  EXPECT_EQ(home->vsr->registry().subscription_count(), 1u);

  sched.run_for(sim::seconds(5));

  EXPECT_EQ(router("havi-island").leases_expired(), 1u);
  EXPECT_EQ(router("havi-island").active_subscriptions(), 0u);
  EXPECT_EQ(home->vsr->registry().subscription_count(), 0u);

  // A state change after expiry is not delivered and consumes no
  // queue space at the origin (the dead subscriber is gone).
  auto r = via(*home->havi_adapter, "vcr-1", "record",
               {Value(std::int64_t{1})});
  ASSERT_TRUE(r.is_ok());
  sched.run_for(sim::seconds(2));
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(router("havi-island").events_routed(), 0u);
}

TEST_F(EventBridgeTest, AutoRenewalExtendsLeaseAcrossPeriods) {
  std::vector<ReceivedEvent> received;
  core::EventRouter::SubscribeOptions opts;
  opts.lease = sim::seconds(2);
  opts.auto_renew = true;
  ASSERT_FALSE(subscribe("jini-island", "vcr-1", "transportChanged",
                         &received, opts)
                   .empty());

  // Three lease periods pass; renewal at half-life keeps it alive.
  sched.run_for(sim::seconds(6));
  EXPECT_EQ(router("havi-island").active_subscriptions(), 1u);
  EXPECT_EQ(router("havi-island").leases_expired(), 0u);

  auto r = via(*home->havi_adapter, "vcr-1", "record",
               {Value(std::int64_t{1})});
  ASSERT_TRUE(r.is_ok());
  sched.run_for(sim::seconds(2));
  EXPECT_GE(received.size(), 1u);
}

TEST_F(EventBridgeTest, DoubleUnsubscribeIsIdempotent) {
  std::vector<ReceivedEvent> received;
  auto lease = subscribe("jini-island", "vcr-1", "transportChanged",
                         &received);
  ASSERT_FALSE(lease.empty());

  EXPECT_TRUE(unsubscribe("jini-island", lease).is_ok());
  EXPECT_EQ(router("jini-island").local_subscriptions(), 0u);
  sched.run_for(sim::seconds(1));
  EXPECT_EQ(router("havi-island").active_subscriptions(), 0u);
  // Second unsubscribe of the same (now unknown) lease still succeeds.
  EXPECT_TRUE(unsubscribe("jini-island", lease).is_ok());
}

// --- Backpressure --------------------------------------------------------

TEST_F(EventBridgeTest, BurstBeyondQueueBoundDropsOldest) {
  std::vector<ReceivedEvent> received;
  ASSERT_FALSE(subscribe("jini-island", "vcr-1", "transportChanged",
                         &received)
                   .empty());
  auto& origin = router("havi-island");
  const std::size_t burst = origin.options().max_queue * 3;

  // Inject a burst with no scheduler progress in between: the bounded
  // queue must shed oldest-unsent events instead of growing.
  for (std::size_t i = 0; i < burst; ++i) {
    origin.on_native_event(
        "vcr-1", "transportChanged",
        Value(ValueMap{{"state", Value(static_cast<std::int64_t>(i))}}));
  }
  sched.run_for(sim::seconds(5));

  EXPECT_GT(origin.events_dropped(), 0u);
  EXPECT_GE(origin.events_routed(), 1u);
  EXPECT_LT(received.size(), burst);
  EXPECT_GE(received.size(), 1u);
  // Everything that was routed (not dropped) arrived exactly once.
  EXPECT_EQ(origin.events_routed() + origin.events_dropped(), burst);
  EXPECT_EQ(received.size(), origin.events_routed());
}

// --- Fault injection: dead VSG link --------------------------------------

TEST_F(EventBridgeTest, RetryWithBackoffSurvivesDeadLink) {
  std::vector<ReceivedEvent> received;
  ASSERT_FALSE(subscribe("jini-island", "vcr-1", "transportChanged",
                         &received)
                   .empty());
  auto& origin = router("havi-island");

  // Take the subscriber's gateway down; deliveries must fail and back
  // off rather than being lost.
  home->jini_gw->set_up(false);
  origin.on_native_event("vcr-1", "transportChanged",
                         Value(ValueMap{{"state", Value(std::string("PLAY"))}}));
  sched.run_for(sim::seconds(3));
  EXPECT_GT(origin.delivery_retries(), 0u);
  EXPECT_EQ(received.size(), 0u);

  // Link restored: at-least-once delivery completes on a later retry.
  home->jini_gw->set_up(true);
  sched.run_for(sim::seconds(10));
  ASSERT_GE(received.size(), 1u);
  EXPECT_EQ(received.front().payload.at("state").as_string(), "PLAY");
  EXPECT_GE(origin.events_routed(), 1u);
}

}  // namespace
}  // namespace hcm::testbed
