#include "core/binary_channel.hpp"

#include <gtest/gtest.h>

namespace hcm::core {
namespace {

class BinaryChannelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_node = &net.add_node("server");
    client_node = &net.add_node("client");
    auto& eth = net.add_ethernet("lan", sim::microseconds(200), 100'000'000);
    net.attach(*server_node, eth);
    net.attach(*client_node, eth);
    server = std::make_unique<BinaryRpcServer>(net, server_node->id(), 9000);
    ASSERT_TRUE(server->start().is_ok());
    client = std::make_unique<BinaryRpcClient>(net, client_node->id());
  }

  Result<Value> call(const std::string& svc, const std::string& method,
                     const ValueList& args) {
    std::optional<Result<Value>> result;
    client->call({server_node->id(), 9000}, svc, method, args,
                 [&](Result<Value> r) { result = std::move(r); });
    sched.run();
    EXPECT_TRUE(result.has_value());
    return result.value_or(internal_error("no result"));
  }

  sim::Scheduler sched;
  net::Network net{sched};
  net::Node* server_node = nullptr;
  net::Node* client_node = nullptr;
  std::unique_ptr<BinaryRpcServer> server;
  std::unique_ptr<BinaryRpcClient> client;
};

TEST_F(BinaryChannelTest, EchoRoundTrip) {
  server->register_service("echo", [](const std::string&,
                                      const ValueList& args,
                                      InvokeResultFn done) {
    done(args.empty() ? Value() : args[0]);
  });
  auto r = call("echo", "m", {Value(ValueMap{{"k", Value(1)}})});
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), Value(ValueMap{{"k", Value(1)}}));
}

TEST_F(BinaryChannelTest, ErrorsPropagate) {
  server->register_service("failing", [](const std::string&,
                                         const ValueList&,
                                         InvokeResultFn done) {
    done(unavailable("nope"));
  });
  auto r = call("failing", "m", {});
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(r.status().message(), "nope");
}

TEST_F(BinaryChannelTest, UnknownServiceFails) {
  auto r = call("ghost", "m", {});
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(BinaryChannelTest, ConnectionReusedAcrossCalls) {
  int served = 0;
  server->register_service("count", [&](const std::string&, const ValueList&,
                                        InvokeResultFn done) {
    ++served;
    done(Value(served));
  });
  EXPECT_EQ(call("count", "m", {}).value(), Value(1));
  EXPECT_EQ(call("count", "m", {}).value(), Value(2));
  EXPECT_EQ(server->calls_served(), 2u);
}

TEST_F(BinaryChannelTest, ConcurrentCallsMultiplex) {
  server->register_service("echo", [](const std::string&,
                                      const ValueList& args,
                                      InvokeResultFn done) {
    done(args[0]);
  });
  std::vector<std::int64_t> results;
  for (int i = 0; i < 20; ++i) {
    client->call({server_node->id(), 9000}, "echo", "m", {Value(i)},
                 [&](Result<Value> r) {
                   ASSERT_TRUE(r.is_ok());
                   results.push_back(r.value().as_int());
                 });
  }
  sched.run();
  ASSERT_EQ(results.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(results[i], i);
}

TEST_F(BinaryChannelTest, WireIsCompactComparedToSoap) {
  server->register_service("echo", [](const std::string&,
                                      const ValueList& args,
                                      InvokeResultFn done) {
    done(args[0]);
  });
  ASSERT_TRUE(call("echo", "m", {Value(42)}).is_ok());
  // A one-int call + reply over the binary channel is far below the
  // ~700 bytes SOAP needs for the same exchange.
  auto& eth = *net.segments()[0];
  EXPECT_LT(eth.bytes_carried(), 500u);
  EXPECT_GT(eth.bytes_carried(), 0u);
}

TEST_F(BinaryChannelTest, ServerDownFailsCall) {
  server->register_service("echo", [](const std::string&,
                                      const ValueList& args,
                                      InvokeResultFn done) {
    done(args[0]);
  });
  server_node->set_up(false);
  auto r = call("echo", "m", {Value(1)});
  EXPECT_FALSE(r.is_ok());
}

}  // namespace
}  // namespace hcm::core
