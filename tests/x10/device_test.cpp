#include "x10/device.hpp"

#include <gtest/gtest.h>

#include "x10/cm11a.hpp"

namespace hcm::x10 {
namespace {

class X10DeviceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pc = &net.add_node("pc-with-cm11a");
    lamp_node = &net.add_node("lamp-module");
    appliance_node = &net.add_node("fan-module");
    powerline = &net.add_powerline("house-wiring");
    net.attach(*pc, *powerline);
    net.attach(*lamp_node, *powerline);
    net.attach(*appliance_node, *powerline);
    cm11a = std::make_unique<Cm11aController>(net, pc->id(), *powerline);
    lamp = std::make_unique<LampModule>(net, lamp_node->id(), *powerline,
                                        HouseCode::kA, 1);
    fan = std::make_unique<ApplianceModule>(net, appliance_node->id(),
                                            *powerline, HouseCode::kA, 2);
  }

  Status send(HouseCode h, int u, FunctionCode f, int dims = 0) {
    std::optional<Status> result;
    cm11a->send_command(h, u, f, dims, [&](const Status& s) { result = s; });
    sched.run();
    EXPECT_TRUE(result.has_value());
    return result.value_or(internal_error("no completion"));
  }

  sim::Scheduler sched;
  net::Network net{sched};
  net::Node* pc = nullptr;
  net::Node* lamp_node = nullptr;
  net::Node* appliance_node = nullptr;
  net::PowerlineSegment* powerline = nullptr;
  std::unique_ptr<Cm11aController> cm11a;
  std::unique_ptr<LampModule> lamp;
  std::unique_ptr<ApplianceModule> fan;
};

TEST_F(X10DeviceTest, LampTurnsOnAndOff) {
  EXPECT_FALSE(lamp->is_on());
  ASSERT_TRUE(send(HouseCode::kA, 1, FunctionCode::kOn).is_ok());
  EXPECT_TRUE(lamp->is_on());
  EXPECT_EQ(lamp->level(), 100);
  ASSERT_TRUE(send(HouseCode::kA, 1, FunctionCode::kOff).is_ok());
  EXPECT_FALSE(lamp->is_on());
}

TEST_F(X10DeviceTest, AddressingIsolatesUnits) {
  ASSERT_TRUE(send(HouseCode::kA, 2, FunctionCode::kOn).is_ok());
  EXPECT_TRUE(fan->is_on());
  EXPECT_FALSE(lamp->is_on());  // different unit, untouched
}

TEST_F(X10DeviceTest, DifferentHouseIgnored) {
  ASSERT_TRUE(send(HouseCode::kB, 1, FunctionCode::kOn).is_ok());
  EXPECT_FALSE(lamp->is_on());
}

TEST_F(X10DeviceTest, DimStepsReduceLevel) {
  ASSERT_TRUE(send(HouseCode::kA, 1, FunctionCode::kOn).is_ok());
  int before = lamp->level();
  ASSERT_TRUE(send(HouseCode::kA, 1, FunctionCode::kDim, 4).is_ok());
  EXPECT_LT(lamp->level(), before);
  ASSERT_TRUE(send(HouseCode::kA, 1, FunctionCode::kBright, 2).is_ok());
  EXPECT_GT(lamp->level(), 0);
}

TEST_F(X10DeviceTest, LevelClampedAtBounds) {
  ASSERT_TRUE(send(HouseCode::kA, 1, FunctionCode::kOn).is_ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(send(HouseCode::kA, 1, FunctionCode::kBright, 22).is_ok());
  }
  EXPECT_EQ(lamp->level(), 100);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(send(HouseCode::kA, 1, FunctionCode::kDim, 22).is_ok());
  }
  EXPECT_EQ(lamp->level(), 0);
}

TEST_F(X10DeviceTest, ApplianceIgnoresDim) {
  ASSERT_TRUE(send(HouseCode::kA, 2, FunctionCode::kOn).is_ok());
  ASSERT_TRUE(send(HouseCode::kA, 2, FunctionCode::kDim, 5).is_ok());
  EXPECT_TRUE(fan->is_on());  // unchanged
}

TEST_F(X10DeviceTest, AllLightsOnAffectsLampsOnly) {
  cm11a->send_function(HouseCode::kA, FunctionCode::kAllLightsOn, 0,
                       [](const Status&) {});
  sched.run();
  EXPECT_TRUE(lamp->is_on());
  EXPECT_FALSE(fan->is_on());
}

TEST_F(X10DeviceTest, AllUnitsOffAffectsEverything) {
  ASSERT_TRUE(send(HouseCode::kA, 1, FunctionCode::kOn).is_ok());
  ASSERT_TRUE(send(HouseCode::kA, 2, FunctionCode::kOn).is_ok());
  cm11a->send_function(HouseCode::kA, FunctionCode::kAllUnitsOff, 0,
                       [](const Status&) {});
  sched.run();
  EXPECT_FALSE(lamp->is_on());
  EXPECT_FALSE(fan->is_on());
}

TEST_F(X10DeviceTest, InvalidUnitRejected) {
  EXPECT_FALSE(send(HouseCode::kA, 0, FunctionCode::kOn).is_ok());
  EXPECT_FALSE(send(HouseCode::kA, 17, FunctionCode::kOn).is_ok());
}

TEST_F(X10DeviceTest, CommandTakesRealisticTime) {
  sim::SimTime start = sched.now();
  ASSERT_TRUE(send(HouseCode::kA, 1, FunctionCode::kOn).is_ok());
  auto elapsed = sched.now() - start;
  // Address + function frame on the powerline: the better part of a
  // second — the X10 slowness the paper's figures rest on.
  EXPECT_GT(elapsed, sim::milliseconds(500));
  EXPECT_LT(elapsed, sim::seconds(3));
}

TEST_F(X10DeviceTest, SerialCorruptionRetriesThenSucceeds) {
  cm11a->set_serial_corruption(0.5);
  int ok = 0;
  for (int i = 0; i < 10; ++i) {
    if (send(HouseCode::kA, 1, FunctionCode::kOn).is_ok()) ++ok;
  }
  // With 3 retries per frame, nearly all commands succeed.
  EXPECT_GE(ok, 8);
  EXPECT_GT(cm11a->serial_retries(), 0u);
}

TEST_F(X10DeviceTest, ChangeCallbacksFire) {
  std::vector<int> levels;
  lamp->set_on_change([&](int level) { levels.push_back(level); });
  ASSERT_TRUE(send(HouseCode::kA, 1, FunctionCode::kOn).is_ok());
  ASSERT_TRUE(send(HouseCode::kA, 1, FunctionCode::kOff).is_ok());
  ASSERT_EQ(levels.size(), 2u);
  EXPECT_EQ(levels[0], 100);
  EXPECT_EQ(levels[1], 0);
}

TEST_F(X10DeviceTest, MotionSensorTriggersAndAutoOffs) {
  MotionSensor sensor(net, net.add_node("sensor").id(), *powerline,
                      HouseCode::kA, 1, sim::seconds(30));
  net.attach(*net.find_node("sensor"), *powerline);
  sensor.trigger();
  sched.run_until(sched.now() + sim::seconds(5));
  EXPECT_TRUE(lamp->is_on());
  sched.run_until(sched.now() + sim::seconds(40));
  EXPECT_FALSE(lamp->is_on());  // auto-off fired
  EXPECT_EQ(sensor.triggers(), 1u);
}

TEST_F(X10DeviceTest, RemoteControlDrivesModules) {
  RemoteControl remote(net, net.add_node("remote").id(), *powerline,
                       HouseCode::kA);
  net.attach(*net.find_node("remote"), *powerline);
  std::optional<Status> pressed;
  remote.press(2, FunctionCode::kOn, [&](const Status& s) { pressed = s; });
  sched.run();
  ASSERT_TRUE(pressed.has_value() && pressed->is_ok());
  EXPECT_TRUE(fan->is_on());
}

TEST_F(X10DeviceTest, Cm11aObservesForeignCommands) {
  RemoteControl remote(net, net.add_node("remote").id(), *powerline,
                       HouseCode::kA);
  net.attach(*net.find_node("remote"), *powerline);
  std::vector<ObservedCommand> observed;
  cm11a->set_observer(
      [&](const ObservedCommand& c) { observed.push_back(c); });
  remote.press(3, FunctionCode::kOn);
  sched.run();
  ASSERT_EQ(observed.size(), 1u);
  EXPECT_EQ(observed[0].house, HouseCode::kA);
  EXPECT_EQ(observed[0].unit, 3);
  EXPECT_EQ(observed[0].function, FunctionCode::kOn);
}

TEST_F(X10DeviceTest, DownPowerlineFailsCommand) {
  powerline->set_up(false);
  EXPECT_FALSE(send(HouseCode::kA, 1, FunctionCode::kOn).is_ok());
}

}  // namespace
}  // namespace hcm::x10
