#include "x10/codec.hpp"

#include <gtest/gtest.h>

namespace hcm::x10 {
namespace {

TEST(X10CodecTest, HouseCodeTableMatchesSpec) {
  // Spot-check the documented CM11A encodings.
  EXPECT_EQ(encode_house(HouseCode::kA), 0x6);
  EXPECT_EQ(encode_house(HouseCode::kB), 0xE);
  EXPECT_EQ(encode_house(HouseCode::kE), 0x1);
  EXPECT_EQ(encode_house(HouseCode::kM), 0x0);
  EXPECT_EQ(encode_house(HouseCode::kP), 0xC);
}

TEST(X10CodecTest, UnitCodesShareTable) {
  EXPECT_EQ(encode_unit(1), 0x6);   // unit 1 == house A code
  EXPECT_EQ(encode_unit(16), 0xC);  // unit 16 == house P code
}

TEST(X10CodecTest, HouseRoundTripAll) {
  for (int i = 0; i < 16; ++i) {
    auto h = static_cast<HouseCode>(i);
    auto decoded = decode_house(encode_house(h));
    ASSERT_TRUE(decoded.is_ok());
    EXPECT_EQ(decoded.value(), h);
  }
}

TEST(X10CodecTest, UnitRoundTripAll) {
  for (int u = 1; u <= 16; ++u) {
    auto decoded = decode_unit(encode_unit(u));
    ASSERT_TRUE(decoded.is_ok());
    EXPECT_EQ(decoded.value(), u);
  }
}

TEST(X10CodecTest, AddressFrameRoundTrip) {
  for (int i = 0; i < 16; ++i) {
    for (int u = 1; u <= 16; u += 5) {
      AddressFrame f{static_cast<HouseCode>(i), u};
      auto decoded = decode_frame(encode(f));
      ASSERT_TRUE(decoded.is_ok());
      ASSERT_TRUE(decoded.value().is_address);
      EXPECT_EQ(decoded.value().address.house, f.house);
      EXPECT_EQ(decoded.value().address.unit, f.unit);
    }
  }
}

TEST(X10CodecTest, FunctionFrameRoundTrip) {
  FunctionFrame f{HouseCode::kC, FunctionCode::kDim, 11};
  auto decoded = decode_frame(encode(f));
  ASSERT_TRUE(decoded.is_ok());
  ASSERT_FALSE(decoded.value().is_address);
  EXPECT_EQ(decoded.value().function.house, HouseCode::kC);
  EXPECT_EQ(decoded.value().function.function, FunctionCode::kDim);
  EXPECT_EQ(decoded.value().function.dims, 11);
}

TEST(X10CodecTest, AllFunctionCodesRoundTrip) {
  for (int fc = 0; fc <= 0xF; ++fc) {
    FunctionFrame f{HouseCode::kA, static_cast<FunctionCode>(fc), 0};
    auto decoded = decode_frame(encode(f));
    ASSERT_TRUE(decoded.is_ok());
    EXPECT_EQ(decoded.value().function.function,
              static_cast<FunctionCode>(fc));
  }
}

TEST(X10CodecTest, MalformedFramesRejected) {
  EXPECT_FALSE(decode_frame({}).is_ok());
  EXPECT_FALSE(decode_frame({0x04}).is_ok());
  EXPECT_FALSE(decode_frame({0x04, 0x00, 0x00}).is_ok());
  EXPECT_FALSE(decode_frame({0x99, 0x66}).is_ok());  // bad header
}

TEST(X10CodecTest, SerialChecksum) {
  EXPECT_EQ(serial_checksum(0x04, 0x66), 0x6A);
  EXPECT_EQ(serial_checksum(0xFF, 0x01), 0x00);  // wraps
}

TEST(X10CodecTest, HeaderFunctionEncodesDims) {
  auto h = header_function(10);
  EXPECT_TRUE(is_function_header(h));
  EXPECT_EQ(dims_from_header(h), 10);
  EXPECT_FALSE(is_function_header(kHeaderAddress));
}

TEST(X10CodecTest, FormatAddress) {
  EXPECT_EQ(format_address(HouseCode::kA, 3), "A3");
  EXPECT_EQ(format_address(HouseCode::kP, 16), "P16");
}

TEST(X10CodecTest, FunctionNames) {
  EXPECT_STREQ(to_string(FunctionCode::kOn), "ON");
  EXPECT_STREQ(to_string(FunctionCode::kAllLightsOn), "ALL_LIGHTS_ON");
  EXPECT_STREQ(to_string(HouseCode::kD), "D");
}

}  // namespace
}  // namespace hcm::x10
