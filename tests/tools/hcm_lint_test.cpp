// Fixture tests for hcm_lint itself: each framework invariant the
// checker enforces gets a violating descriptor/WSDL/VSR fixture and an
// assertion on the diagnostic produced (and a clean fixture proving no
// false positive).
#include "hcm_lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "hcm_lint/source_scan.hpp"
#include "soap/wsdl.hpp"

namespace hcm::lint {
namespace {

bool has_check(const Diagnostics& diags, const std::string& check) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.check == check; });
}

InterfaceDesc clean_interface() {
  return InterfaceDesc{
      "VcrControl",
      {MethodDesc{"play", {}, ValueType::kBool, false},
       MethodDesc{"record",
                  {{"channel", ValueType::kInt}, {"title", ValueType::kString}},
                  ValueType::kBool, false},
       MethodDesc{"notifyTape", {{"present", ValueType::kBool}},
                  ValueType::kNull, true}}};
}

TEST(LintInterfaceTest, CleanInterfaceHasNoDiagnostics) {
  auto diags = check_interface(clean_interface(), "fixture");
  EXPECT_TRUE(diags.empty()) << format_diagnostics(diags);
  diags = check_wsdl_roundtrip(clean_interface(), "fixture");
  EXPECT_TRUE(diags.empty()) << format_diagnostics(diags);
}

TEST(LintInterfaceTest, DuplicateMethodNameIsFlagged) {
  InterfaceDesc iface = clean_interface();
  iface.methods.push_back(MethodDesc{"play", {}, ValueType::kInt, false});
  auto diags = check_interface(iface, "fixture");
  EXPECT_TRUE(has_check(diags, "duplicate-method"))
      << format_diagnostics(diags);
}

TEST(LintInterfaceTest, OneWayMethodWithReturnTypeIsFlagged) {
  InterfaceDesc iface = clean_interface();
  iface.methods.push_back(
      MethodDesc{"fireAndForget", {}, ValueType::kInt, true});
  auto diags = check_interface(iface, "fixture");
  EXPECT_TRUE(has_check(diags, "one-way-return")) << format_diagnostics(diags);
  // The same defect is visible as WSDL drift: emit drops the reply, so
  // the round-trip loses the declared return type.
  auto rt = check_wsdl_roundtrip(iface, "fixture");
  EXPECT_TRUE(has_check(rt, "wsdl-roundtrip")) << format_diagnostics(rt);
}

TEST(LintInterfaceTest, UnrepresentableValueTypeIsFlagged) {
  InterfaceDesc iface = clean_interface();
  iface.methods.push_back(MethodDesc{
      "weird", {{"arg", static_cast<ValueType>(99)}}, ValueType::kNull,
      false});
  auto diags = check_interface(iface, "fixture");
  EXPECT_TRUE(has_check(diags, "unrepresentable-type"))
      << format_diagnostics(diags);
}

TEST(LintInterfaceTest, UnnamedMethodAndInterfaceAreFlagged) {
  InterfaceDesc iface;
  iface.methods.push_back(MethodDesc{"", {}, ValueType::kNull, false});
  auto diags = check_interface(iface, "fixture");
  EXPECT_TRUE(has_check(diags, "unnamed-interface"));
  EXPECT_TRUE(has_check(diags, "unnamed-method"));
}

// --- events contract ----------------------------------------------------

InterfaceDesc clean_event_interface() {
  InterfaceDesc iface = clean_interface();
  iface.events.push_back(MethodDesc{"transportChanged",
                                    {{"state", ValueType::kString}},
                                    ValueType::kNull, true});
  return iface;
}

TEST(LintEventsTest, CleanEventInterfaceHasNoDiagnostics) {
  auto diags = check_interface(clean_event_interface(), "fixture");
  EXPECT_TRUE(diags.empty()) << format_diagnostics(diags);
  diags = check_wsdl_roundtrip(clean_event_interface(), "fixture");
  EXPECT_TRUE(diags.empty()) << format_diagnostics(diags);
}

TEST(LintEventsTest, UnnamedEventIsFlagged) {
  auto iface = clean_event_interface();
  iface.events.push_back(MethodDesc{"", {}, ValueType::kNull, true});
  auto diags = check_interface(iface, "fixture");
  EXPECT_TRUE(has_check(diags, "unnamed-event")) << format_diagnostics(diags);
}

TEST(LintEventsTest, DuplicateEventIsFlagged) {
  auto iface = clean_event_interface();
  iface.events.push_back(iface.events.front());
  auto diags = check_interface(iface, "fixture");
  EXPECT_TRUE(has_check(diags, "duplicate-event"))
      << format_diagnostics(diags);
}

TEST(LintEventsTest, TwoWayEventIsFlagged) {
  auto iface = clean_event_interface();
  iface.events.push_back(MethodDesc{"ack", {}, ValueType::kNull, false});
  auto diags = check_interface(iface, "fixture");
  EXPECT_TRUE(has_check(diags, "event-not-one-way"))
      << format_diagnostics(diags);
}

TEST(LintEventsTest, EventWithReturnTypeIsFlagged) {
  auto iface = clean_event_interface();
  iface.events.push_back(MethodDesc{"reply", {}, ValueType::kInt, true});
  auto diags = check_interface(iface, "fixture");
  EXPECT_TRUE(has_check(diags, "event-return")) << format_diagnostics(diags);
}

TEST(LintEventsTest, EventParamTypesAreChecked) {
  auto iface = clean_event_interface();
  iface.events.push_back(MethodDesc{
      "weird", {{"arg", static_cast<ValueType>(99)}}, ValueType::kNull, true});
  auto diags = check_interface(iface, "fixture");
  EXPECT_TRUE(has_check(diags, "unrepresentable-type"))
      << format_diagnostics(diags);
}

TEST(LintEventsTest, EventsSurviveWsdlRoundTrip) {
  // The round-trip rule covers events through the interface equality
  // check: drop the events port type and the comparison must fail.
  auto iface = clean_event_interface();
  auto doc = soap::parse_wsdl(soap::emit_wsdl(
      iface, "probe", parse_uri("http://h:1/x").value()));
  ASSERT_TRUE(doc.is_ok());
  ASSERT_EQ(doc.value().interface, iface);
  auto stripped = doc.value().interface;
  stripped.events.clear();
  EXPECT_FALSE(stripped == iface);
}

class LintVsrTest : public ::testing::Test {
 protected:
  void SetUp() override {
    gw_ = &net_.add_node("gw");
    auto& eth = net_.add_ethernet("lan", sim::milliseconds(1), 10'000'000);
    net_.attach(*gw_, eth);
    vsg_ = std::make_unique<core::VirtualServiceGateway>(net_, gw_->id(),
                                                         "island");
    ASSERT_TRUE(vsg_->start().is_ok());
    ASSERT_TRUE(vsg_->expose("lamp-1", clean_interface(),
                             [](const std::string&, const ValueList&,
                                InvokeResultFn done) { done(Value(true)); })
                    .is_ok());
    ctx_.vsg_for_origin = [this](const std::string& origin) {
      return origin == "island" ? vsg_.get() : nullptr;
    };
    ctx_.net = &net_;
  }

  soap::RegistryEntry entry_for(const std::string& name, const Uri& endpoint) {
    soap::RegistryEntry e;
    e.name = name;
    e.category = "VcrControl";
    e.origin = "island";
    e.wsdl = soap::emit_wsdl(clean_interface(), name, endpoint);
    return e;
  }

  sim::Scheduler sched_;
  net::Network net_{sched_};
  net::Node* gw_ = nullptr;
  std::unique_ptr<core::VirtualServiceGateway> vsg_;
  VsrCheckContext ctx_;
};

TEST_F(LintVsrTest, LiveEntryHasNoDiagnostics) {
  auto diags = check_vsr_entries(
      {entry_for("lamp-1", vsg_->exposure_uri("lamp-1"))}, ctx_);
  EXPECT_TRUE(diags.empty()) << format_diagnostics(diags);
}

TEST_F(LintVsrTest, DanglingEntryIsFlagged) {
  // "ghost" is in the VSR but was never exposed (or was unexposed).
  auto diags = check_vsr_entries(
      {entry_for("ghost", vsg_->exposure_uri("ghost"))}, ctx_);
  EXPECT_TRUE(has_check(diags, "vsr-dangling-entry"))
      << format_diagnostics(diags);
}

TEST_F(LintVsrTest, EndpointMismatchIsFlagged) {
  auto stale = parse_uri("http://gw:9999/vsg/lamp-1");
  ASSERT_TRUE(stale.is_ok());
  auto diags = check_vsr_entries({entry_for("lamp-1", stale.value())}, ctx_);
  EXPECT_TRUE(has_check(diags, "vsr-endpoint-mismatch"))
      << format_diagnostics(diags);
}

TEST_F(LintVsrTest, UnknownOriginIsFlagged) {
  auto entry = entry_for("lamp-1", vsg_->exposure_uri("lamp-1"));
  entry.origin = "mars-island";
  auto diags = check_vsr_entries({entry}, ctx_);
  EXPECT_TRUE(has_check(diags, "vsr-unknown-origin"))
      << format_diagnostics(diags);
}

TEST_F(LintVsrTest, UnparsableWsdlIsFlagged) {
  soap::RegistryEntry entry;
  entry.name = "broken";
  entry.origin = "island";
  entry.wsdl = "<definitely-not-wsdl/>";
  auto diags = check_vsr_entries({entry}, ctx_);
  EXPECT_TRUE(has_check(diags, "vsr-bad-wsdl")) << format_diagnostics(diags);
}

// --- observability contract ---------------------------------------------

// Reuses the live-gateway fixture: expose() registers per-op metrics in
// the global registry, so the clean case checks against that; violation
// cases use a local registry shaped to each defect.
class LintObsOpTest : public LintVsrTest {
 protected:
  std::string op_base(const std::string& method) const {
    return vsg_->obs_scope() + ".op.lamp-1." + method;
  }
};

TEST_F(LintObsOpTest, FreshlyExposedGatewayHasNoDiagnostics) {
  auto diags = check_vsg_op_metrics(*vsg_, obs::Registry::global());
  EXPECT_TRUE(diags.empty()) << format_diagnostics(diags);
}

TEST_F(LintObsOpTest, MissingHistogramIsFlagged) {
  // A registry that never saw expose(): every mounted op is missing.
  obs::Registry bare;
  auto diags = check_vsg_op_metrics(*vsg_, bare);
  EXPECT_TRUE(has_check(diags, "obs-op-missing")) << format_diagnostics(diags);
  EXPECT_EQ(diags.size(), vsg_->exposed_ops().size());
}

TEST_F(LintObsOpTest, DispatchedButUnsampledOpIsFlagged) {
  obs::Registry reg;
  for (const auto& [service, method] : vsg_->exposed_ops()) {
    reg.histogram(op_base(method) + "_us");  // registered, but empty
    reg.counter(op_base(method) + ".calls").inc();
  }
  auto diags = check_vsg_op_metrics(*vsg_, reg);
  EXPECT_TRUE(has_check(diags, "obs-op-unsampled"))
      << format_diagnostics(diags);
  EXPECT_FALSE(has_check(diags, "obs-op-missing"));
}

TEST_F(LintObsOpTest, SampledOpsAreClean) {
  obs::Registry reg;
  for (const auto& [service, method] : vsg_->exposed_ops()) {
    reg.histogram(op_base(method) + "_us").observe(42);
    reg.counter(op_base(method) + ".calls").inc();
  }
  auto diags = check_vsg_op_metrics(*vsg_, reg);
  EXPECT_TRUE(diags.empty()) << format_diagnostics(diags);
}

// --- source scanner -----------------------------------------------------

TEST(SourceScanTest, StripPreservesOffsetsAndRemovesLiterals) {
  std::string stripped = strip_comments_and_strings(
      "int a; // Status start();\nconst char* s = \"Status x();\";\n");
  EXPECT_EQ(stripped.find("Status"), std::string::npos);
  EXPECT_NE(stripped.find("int a;"), std::string::npos);
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'), 2);
}

// Regression: the pre-port state machine did not understand raw string
// literals, so a `Status name();` inside R"(...)" leaked into the
// stripped text and produced a phantom missing-nodiscard finding.
TEST(SourceScanTest, RawStringContentsAreBlanked) {
  std::string stripped = strip_comments_and_strings(
      "const char* wsdl = R\"(Status phantom();)\";\n"
      "int keep = 1;\n");
  EXPECT_EQ(stripped.find("Status"), std::string::npos);
  EXPECT_EQ(stripped.find("phantom"), std::string::npos);
  EXPECT_NE(stripped.find("int keep = 1;"), std::string::npos);

  auto diags = scan_nodiscard_text(
      "const char* fixture = R\"xml(\n"
      "  Status not_a_decl();\n"
      ")xml\";\n",
      "f.hpp");
  EXPECT_TRUE(diags.empty()) << format_diagnostics(diags);
}

TEST(SourceScanTest, MissingNodiscardIsFlagged) {
  auto diags = scan_nodiscard_text("struct S { Status start(); };", "f.hpp");
  ASSERT_TRUE(has_check(diags, "missing-nodiscard"))
      << format_diagnostics(diags);
  EXPECT_NE(diags[0].message.find("start"), std::string::npos);
}

TEST(SourceScanTest, AnnotatedDeclarationsPass) {
  auto diags = scan_nodiscard_text(
      "struct S {\n"
      "  [[nodiscard]] Status start();\n"
      "  [[nodiscard]] Result<int> count() const;\n"
      "  [[nodiscard]] virtual Status stop() = 0;\n"
      "};\n",
      "f.hpp");
  EXPECT_TRUE(diags.empty()) << format_diagnostics(diags);
}

TEST(SourceScanTest, NonDeclarationsAreIgnored) {
  auto diags = scan_nodiscard_text(
      "Status status_;\n"                        // member variable
      "Status s;\n"                              // local
      "void f(const Status& s);\n"               // parameter
      "Status() = default;\n"                    // constructor
      "using Fn = std::function<void(Result<int>)>;\n"
      "int g() { return Status::ok().is_ok(); }\n",
      "f.hpp");
  EXPECT_TRUE(diags.empty()) << format_diagnostics(diags);
}

TEST(SourceScanTest, CollectFindsStatusReturningFunctions) {
  auto fns = collect_status_functions(
      "struct S { [[nodiscard]] Status start(); };\n"
      "[[nodiscard]] Result<int> parse(const std::string&);\n"
      "void unrelated();\n");
  EXPECT_TRUE(fns.count("start") == 1);
  EXPECT_TRUE(fns.count("parse") == 1);
  EXPECT_TRUE(fns.count("unrelated") == 0);
}

TEST(SourceScanTest, DiscardedCallIsFlagged) {
  auto diags = scan_discarded_calls_text(
      "void f(Server& s) {\n"
      "  s.start();\n"
      "}\n",
      "f.cpp", {"start"});
  EXPECT_TRUE(has_check(diags, "discarded-status"))
      << format_diagnostics(diags);
}

TEST(SourceScanTest, HandledCallsAreNotFlagged) {
  auto diags = scan_discarded_calls_text(
      "void f(Server& s) {\n"
      "  Status st = s.start();\n"
      "  (void)s.start();\n"
      "  if (s.start().is_ok()) {}\n"
      "  return s.start();\n"
      "  EXPECT_TRUE(s.start().is_ok());\n"
      "  auto chained = s.start().to_string();\n"
      "  Status t = ready ? Status::ok() : s.start();\n"
      "}\n",
      "f.cpp", {"start"});
  EXPECT_TRUE(diags.empty()) << format_diagnostics(diags);
}

TEST(SourceScanTest, WholeTreeIsCleanViaScanSources) {
  // The ctest hcm_lint run covers this with provenance; here we only
  // assert the API shape works from tests (root may not exist when the
  // test binary runs from an install tree).
  SourceScanReport report = scan_sources("/nonexistent-root");
  EXPECT_TRUE(report.diags.empty());
  EXPECT_EQ(report.headers_scanned, 0u);
}

// --- registry wire contract ----------------------------------------------

TEST(LintRegistryWireTest, CanonicalFixturesCoverLiveRegistry) {
  // Self-test of the shipped fixture set against a real registry's
  // mounted ops: full coverage, no unknown ops, all values codec-clean.
  sim::Scheduler sched;
  net::Network net{sched};
  auto& host = net.add_node("vsr");
  auto& eth = net.add_ethernet("bb", sim::milliseconds(1), 10'000'000);
  net.attach(host, eth);
  http::HttpServer http(net, host.id(), 80);
  ASSERT_TRUE(http.start().is_ok());
  soap::UddiRegistry registry(http, sched);

  auto diags =
      check_registry_wire(registry.wire_ops(), registry_wire_fixtures());
  EXPECT_TRUE(diags.empty()) << format_diagnostics(diags);
}

TEST(LintRegistryWireTest, UncoveredOpIsFlagged) {
  auto fixtures = registry_wire_fixtures();
  auto diags = check_registry_wire({"publish", "futureOp"}, fixtures);
  EXPECT_TRUE(has_check(diags, "registry-wire-uncovered"))
      << format_diagnostics(diags);
}

TEST(LintRegistryWireTest, UnknownFixtureOpIsFlagged) {
  std::vector<WireFixture> fixtures{{"ghostOp", {}, Value(true)}};
  auto diags = check_registry_wire({"ghostOp"}, fixtures);
  EXPECT_TRUE(diags.empty()) << format_diagnostics(diags);
  diags = check_registry_wire({"publish"}, fixtures);
  EXPECT_TRUE(has_check(diags, "registry-wire-unknown-op"))
      << format_diagnostics(diags);
}

TEST(LintRegistryWireTest, NonRoundTrippingPayloadIsFlagged) {
  // NaN is the canonical codec-breaking payload: both codecs preserve
  // the bits but NaN != NaN, so value equality cannot survive.
  std::vector<WireFixture> fixtures{
      {"publish",
       {{"weight", Value(std::numeric_limits<double>::quiet_NaN())}},
       Value(true)}};
  auto diags = check_registry_wire({"publish"}, fixtures);
  EXPECT_TRUE(has_check(diags, "registry-wire-codec"))
      << format_diagnostics(diags);
}

TEST(LintStoreRecordTest, CanonicalFixturesCoverAllRecordTypes) {
  // Self-test of the shipped fixture set: every durable record type has
  // an exemplar and every exemplar round-trips canonically.
  auto diags = check_store_records(store::all_record_types(),
                                   store_record_fixtures());
  EXPECT_TRUE(diags.empty()) << format_diagnostics(diags);
}

TEST(LintStoreRecordTest, UncoveredRecordTypeIsFlagged) {
  auto fixtures = store_record_fixtures();
  // Drop the checkpoint exemplar: its type must surface as uncovered.
  fixtures.erase(std::remove_if(fixtures.begin(), fixtures.end(),
                                [](const StoreRecordFixture& f) {
                                  return f.record.type ==
                                         store::RecordType::kCheckpoint;
                                }),
                 fixtures.end());
  auto diags = check_store_records(store::all_record_types(), fixtures);
  EXPECT_TRUE(has_check(diags, "store-record-uncovered"))
      << format_diagnostics(diags);
}

TEST(LintStoreRecordTest, FixturesSurviveFrameAndChainReuse) {
  // The encoded fixtures are exactly what the log frames carry; folding
  // them through the chain hash must be stable across two runs (the
  // canonical-encoding property the codec check enforces).
  std::uint64_t chain1 = store::kChainGenesis;
  std::uint64_t chain2 = store::kChainGenesis;
  for (const auto& f : store_record_fixtures()) {
    chain1 = store::chain_hash(chain1, store::encode_record(f.record));
    chain2 = store::chain_hash(chain2, store::encode_record(f.record));
  }
  EXPECT_EQ(chain1, chain2);
  EXPECT_NE(chain1, store::kChainGenesis);
}

}  // namespace
}  // namespace hcm::lint
