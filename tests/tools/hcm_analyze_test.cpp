// Fixture self-tests for the hcm_analyze passes: known-bad snippets
// must produce exactly the documented rule ids at the expected
// file:line, known-good snippets must stay silent, and the --json
// schema must round-trip. These pin the analyzer's heuristics so a
// lexer or scope-walker change that silently weakens a gate fails here
// rather than in a later PR's review.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "hcm_analyze/analysis.hpp"
#include "hcm_analyze/passes.hpp"
#include "hcm_analyze/token_stream.hpp"

namespace hcm::analyze {
namespace {

int count_rule(const Findings& fs, const std::string& rule) {
  return static_cast<int>(
      std::count_if(fs.begin(), fs.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

const Finding* find_rule(const Findings& fs, const std::string& rule) {
  for (const Finding& f : fs) {
    if (f.rule == rule) return &f;
  }
  return nullptr;
}

// --- lexer --------------------------------------------------------------

TEST(TokenStreamTest, RawStringsCollapseToOneToken) {
  // The classic trap: code-looking text (including a fake delimiter and
  // a quote) inside a raw string must not leak tokens.
  TokenStream ts = lex(
      "const char* x = R\"xml(<a b=\"new std::map<int,int>\">)xml\";\n"
      "int after = 1;\n");
  for (const Token& t : ts.tokens) {
    EXPECT_NE(t.text, "new") << "raw string contents leaked into tokens";
    EXPECT_NE(t.text, "map");
  }
  const Token* after = nullptr;
  for (const Token& t : ts.tokens) {
    if (t.text == "after") after = &t;
  }
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->line, 2);  // newline inside the literal still counts
}

TEST(TokenStreamTest, CommentsAndStringsProduceNoIdentTokens) {
  TokenStream ts = lex(
      "// new in a comment\n"
      "/* make_shared in a block */\n"
      "const char* s = \"std::function\";\n"
      "char c = 'n';\n");
  for (const Token& t : ts.tokens) {
    EXPECT_NE(t.text, "new");
    EXPECT_NE(t.text, "make_shared");
    EXPECT_NE(t.text, "function");
  }
}

TEST(TokenStreamTest, AllowNotesAreExtracted) {
  TokenStream ts = lex(
      "// hcm:allow(shard-mutable-global): startup-only config\n"
      "int g_flag = 0;\n");
  ASSERT_EQ(ts.allows.size(), 1u);
  EXPECT_EQ(ts.allows[0].line, 1);
  ASSERT_EQ(ts.allows[0].rules.size(), 1u);
  EXPECT_EQ(ts.allows[0].rules[0], "shard-mutable-global");
  EXPECT_EQ(ts.allows[0].reason, "startup-only config");
  EXPECT_FALSE(ts.allows[0].malformed);
}

TEST(TokenStreamTest, AllowWithoutReasonIsMalformed) {
  TokenStream ts = lex("// hcm:allow(shard-mutable-global)\nint g = 0;\n");
  ASSERT_EQ(ts.allows.size(), 1u);
  EXPECT_TRUE(ts.allows[0].malformed);
}

TEST(TokenStreamTest, ProseMentionOfAllowIsNotAnAnnotation) {
  // Comments that merely talk about the escape hatch (like this test
  // suite, or the analyzer's own docs) must not register as allows.
  TokenStream ts =
      lex("// the `hcm:allow(<rule>): reason` syntax is documented\n"
          "int x = 0;\n");
  EXPECT_TRUE(ts.allows.empty());
}

TEST(TokenStreamTest, BlankNoncodeIsRawStringSafe) {
  std::string blanked = blank_noncode(
      "auto s = R\"(Status phantom();)\";\n"
      "int keep; // gone\n");
  EXPECT_EQ(blanked.find("phantom"), std::string::npos);
  EXPECT_EQ(blanked.find("gone"), std::string::npos);
  EXPECT_NE(blanked.find("int keep;"), std::string::npos);
  EXPECT_EQ(std::count(blanked.begin(), blanked.end(), '\n'), 2);
}

TEST(TokenStreamTest, FunctionRangesCoverMemberAndFree) {
  auto ranges = function_ranges(lex(
      "namespace n {\n"            // 1
      "int free_fn(int a) {\n"     // 2
      "  return a;\n"              // 3
      "}\n"                        // 4
      "struct S {\n"               // 5
      "  void method() {\n"        // 6
      "    int x = 0;\n"           // 7
      "    (void)x;\n"             // 8
      "  }\n"                      // 9
      "};\n"                       // 10
      "void S2::out_of_line() {}\n"  // 11
      "}\n"));
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0].name, "free_fn");
  EXPECT_EQ(ranges[0].begin_line, 2);
  EXPECT_EQ(ranges[0].end_line, 4);
  EXPECT_EQ(ranges[1].qualified, "S::method");
  EXPECT_EQ(ranges[1].begin_line, 6);
  EXPECT_EQ(ranges[1].end_line, 9);
  EXPECT_EQ(ranges[2].qualified, "S2::out_of_line");
}

// --- layering -----------------------------------------------------------

TEST(LayeringTest, UpwardIncludeIsFlaggedWithFileAndLine) {
  TokenStream ts = lex(
      "#include \"net/stream.hpp\"\n"
      "#include \"http/client.hpp\"\n");
  Findings fs = layering_check_file("src/net/stream.cpp", ts,
                                    default_layers());
  ASSERT_EQ(count_rule(fs, "layering-upward"), 1) << format_findings(fs);
  const Finding* f = find_rule(fs, "layering-upward");
  EXPECT_EQ(f->file, "src/net/stream.cpp");
  EXPECT_EQ(f->line, 2);
}

TEST(LayeringTest, DownwardSelfAndSystemIncludesPass) {
  TokenStream ts = lex(
      "#include <vector>\n"
      "#include \"http/message.hpp\"\n"   // self
      "#include \"net/stream.hpp\"\n"     // downward
      "#include \"common/status.hpp\"\n");
  Findings fs = layering_check_file("src/http/message.cpp", ts,
                                    default_layers());
  EXPECT_TRUE(fs.empty()) << format_findings(fs);
}

TEST(LayeringTest, PeerIncludeIsLateral) {
  TokenStream ts = lex("#include \"upnp/upnp.hpp\"\n");
  Findings fs =
      layering_check_file("src/havi/havi.cpp", ts, default_layers());
  ASSERT_EQ(count_rule(fs, "layering-lateral"), 1) << format_findings(fs);
  EXPECT_EQ(find_rule(fs, "layering-lateral")->line, 1);
}

TEST(LayeringTest, UnrankedModuleIsFlagged) {
  Findings fs = layering_check_file("src/newmod/a.cpp", lex("int x;\n"),
                                    default_layers());
  EXPECT_EQ(count_rule(fs, "layering-unknown-include"), 1)
      << format_findings(fs);
}

TEST(LayeringTest, IncludeCycleIsDetected) {
  std::map<std::string, std::vector<std::string>> graph = {
      {"src/a/a.hpp", {"src/b/b.hpp"}},
      {"src/b/b.hpp", {"src/c/c.hpp"}},
      {"src/c/c.hpp", {"src/a/a.hpp"}},
      {"src/d/d.hpp", {"src/a/a.hpp"}},  // feeds in, not on the cycle
  };
  Findings fs = layering_check_cycles(graph);
  ASSERT_EQ(count_rule(fs, "layering-cycle"), 1) << format_findings(fs);
  const Finding* f = find_rule(fs, "layering-cycle");
  EXPECT_NE(f->message.find("src/a/a.hpp"), std::string::npos);
  EXPECT_NE(f->message.find("src/c/c.hpp"), std::string::npos);
}

TEST(LayeringTest, AcyclicGraphIsClean) {
  std::map<std::string, std::vector<std::string>> graph = {
      {"src/a/a.hpp", {"src/b/b.hpp", "src/c/c.hpp"}},
      {"src/b/b.hpp", {"src/c/c.hpp"}},
      {"src/c/c.hpp", {}},
  };
  EXPECT_TRUE(layering_check_cycles(graph).empty());
}

TEST(LayeringTest, StoreRanksBetweenCommonAndSoap) {
  // The durable store backs soap's registry: store may reach down to
  // common, soap may reach down to store, and store must not climb the
  // stack (not even to sim — durability timestamps come from callers).
  const LayerConfig layers = default_layers();
  ASSERT_EQ(layers.rank.count("store"), 1u);
  EXPECT_GT(layers.rank.at("store"), layers.rank.at("common"));
  EXPECT_LT(layers.rank.at("store"), layers.rank.at("soap"));

  Findings fs = layering_check_file(
      "src/store/record_log.cpp",
      lex("#include \"common/status.hpp\"\n"
          "#include \"store/codec.hpp\"\n"),
      layers);
  EXPECT_TRUE(fs.empty()) << format_findings(fs);

  fs = layering_check_file("src/store/vsr_store.cpp",
                           lex("#include \"soap/uddi.hpp\"\n"), layers);
  EXPECT_EQ(count_rule(fs, "layering-upward"), 1) << format_findings(fs);

  fs = layering_check_file("src/soap/uddi.cpp",
                           lex("#include \"store/vsr_store.hpp\"\n"), layers);
  EXPECT_TRUE(fs.empty()) << format_findings(fs);

  // sim is a peer: the store must not include it either.
  fs = layering_check_file("src/store/vsr_store.cpp",
                           lex("#include \"sim/scheduler.hpp\"\n"), layers);
  EXPECT_EQ(count_rule(fs, "layering-lateral"), 1) << format_findings(fs);
}

// --- determinism --------------------------------------------------------

TEST(DeterminismTest, CoverageIncludesStore) {
  // Replay and compaction must be pure functions of the on-disk bytes,
  // so src/store sits inside the determinism gate with sim and core.
  EXPECT_TRUE(determinism_covered("src/sim/scheduler.cpp"));
  EXPECT_TRUE(determinism_covered("src/core/vsr.cpp"));
  EXPECT_TRUE(determinism_covered("src/store/record_log.cpp"));
  EXPECT_TRUE(determinism_covered("src/store/vsr_store.hpp"));
  EXPECT_FALSE(determinism_covered("src/http/client.cpp"));
  EXPECT_FALSE(determinism_covered("tests/store/record_log_test.cpp"));
}

TEST(DeterminismTest, WallClockInStoreIsFlagged) {
  // A clock read during replay would make the recovered epoch/seq (and
  // the log's byte stream) depend on when recovery ran.
  Findings fs = determinism_check(
      "src/store/record_log.cpp",
      lex("void stamp() { timeval tv; gettimeofday(&tv, nullptr); }\n"));
  EXPECT_EQ(count_rule(fs, "determinism-wallclock"), 1)
      << format_findings(fs);
}

TEST(DeterminismTest, WallClockReadIsFlagged) {
  TokenStream ts = lex(
      "void f() {\n"
      "  auto t = std::chrono::system_clock::now();\n"
      "  (void)t;\n"
      "}\n");
  Findings fs = determinism_check("src/sim/f.cpp", ts);
  ASSERT_EQ(count_rule(fs, "determinism-wallclock"), 1)
      << format_findings(fs);
  EXPECT_EQ(find_rule(fs, "determinism-wallclock")->line, 2);
}

TEST(DeterminismTest, AmbientRandomnessIsFlagged) {
  Findings fs = determinism_check(
      "src/core/f.cpp", lex("int f() { return rand(); }\n"));
  EXPECT_EQ(count_rule(fs, "determinism-random"), 1) << format_findings(fs);

  fs = determinism_check("src/core/g.cpp",
                         lex("std::random_device rd;\n"));
  EXPECT_GE(count_rule(fs, "determinism-random"), 1) << format_findings(fs);
}

TEST(DeterminismTest, UnseededEngineFlaggedSeededPasses) {
  Findings bad = determinism_check("src/sim/a.cpp",
                                   lex("std::mt19937_64 rng;\n"));
  EXPECT_EQ(count_rule(bad, "determinism-random"), 1)
      << format_findings(bad);

  // The scheduler's idiom: fixed-seed member init must pass.
  Findings good = determinism_check(
      "src/sim/b.cpp", lex("std::mt19937_64 rng_{0x5eed5eedULL};\n"));
  EXPECT_TRUE(good.empty()) << format_findings(good);
}

TEST(DeterminismTest, UnorderedIterationIsFlagged) {
  TokenStream ts = lex(
      "#include <unordered_map>\n"
      "void f() {\n"
      "  std::unordered_map<int, int> m;\n"
      "  for (const auto& [k, v] : m) { (void)k; (void)v; }\n"
      "}\n");
  Findings fs = determinism_check("src/sim/f.cpp", ts);
  ASSERT_EQ(count_rule(fs, "determinism-unordered-iter"), 1)
      << format_findings(fs);
  EXPECT_EQ(find_rule(fs, "determinism-unordered-iter")->line, 4);
}

TEST(DeterminismTest, OrderedIterationPasses) {
  TokenStream ts = lex(
      "void f() {\n"
      "  std::map<int, int> m;\n"
      "  for (const auto& [k, v] : m) { (void)k; (void)v; }\n"
      "}\n");
  EXPECT_TRUE(determinism_check("src/sim/f.cpp", ts).empty());
}

// --- hot path -----------------------------------------------------------

TEST(HotpathTest, ManifestParsesFnLists) {
  auto scopes = parse_manifest(
      "# comment\n"
      "\n"
      "src/xml/xml.cpp fn=Writer,PullParser\n"
      "src/soap/envelope.cpp\n");
  ASSERT_EQ(scopes.size(), 2u);
  EXPECT_EQ(scopes[0].path, "src/xml/xml.cpp");
  ASSERT_EQ(scopes[0].fns.size(), 2u);
  EXPECT_EQ(scopes[0].fns[1], "PullParser");
  EXPECT_TRUE(scopes[1].fns.empty());
}

TEST(HotpathTest, AllocationAndContainerRulesFire) {
  TokenStream ts = lex(
      "void hot() {\n"                               // 1
      "  auto* p = new int(1);\n"                    // 2
      "  auto q = std::make_shared<int>(2);\n"       // 3
      "  std::map<int, int> m;\n"                    // 4
      "  std::function<void()> cb;\n"                // 5
      "  (void)p; (void)q; (void)m; (void)cb;\n"     // 6
      "}\n");
  Findings fs = hotpath_check("src/net/f.cpp", ts, HotScope{"src/net/f.cpp", {}});
  EXPECT_EQ(count_rule(fs, "hotpath-new"), 1) << format_findings(fs);
  EXPECT_EQ(count_rule(fs, "hotpath-make"), 1);
  EXPECT_EQ(count_rule(fs, "hotpath-node-container"), 1);
  EXPECT_EQ(count_rule(fs, "hotpath-std-function"), 1);
  EXPECT_EQ(find_rule(fs, "hotpath-new")->line, 2);
  EXPECT_EQ(find_rule(fs, "hotpath-std-function")->line, 5);
}

TEST(HotpathTest, FnScopingLimitsTheSweep) {
  TokenStream ts = lex(
      "void cold_setup() {\n"
      "  auto* a = new int(1);\n"  // outside the manifest scope
      "  (void)a;\n"
      "}\n"
      "void hot_send() {\n"
      "  auto* b = new int(2);\n"  // line 6, inside
      "  (void)b;\n"
      "}\n");
  Findings fs = hotpath_check("src/net/f.cpp", ts,
                              HotScope{"src/net/f.cpp", {"hot_send"}});
  ASSERT_EQ(count_rule(fs, "hotpath-new"), 1) << format_findings(fs);
  EXPECT_EQ(find_rule(fs, "hotpath-new")->line, 6);
}

TEST(HotpathTest, RegistryLookupIsFlagged) {
  TokenStream ts = lex(
      "void hot() {\n"                                              // 1
      "  obs::Registry::global().counter(\"x\").inc();\n"           // 2
      "  obs::shard_registry().histogram(\"y\").observe(1);\n"      // 3
      "  auto s = obs::shard_registry().unique_scope(\"z\");\n"     // 4
      "  (void)s;\n"                                                // 5
      "}\n");
  Findings fs =
      hotpath_check("src/net/f.cpp", ts, HotScope{"src/net/f.cpp", {}});
  ASSERT_EQ(count_rule(fs, "obs-hotpath-lookup"), 3) << format_findings(fs);
  EXPECT_EQ(find_rule(fs, "obs-hotpath-lookup")->line, 2);
}

TEST(HotpathTest, CachedHandleMutationIsNotALookup) {
  // Mutating through a cached reference — the idiom the rule demands —
  // must stay silent, as must unrelated global()/registry() calls that
  // don't chain into a name lookup.
  TokenStream ts = lex(
      "void hot() {\n"
      "  requests_.inc();\n"
      "  latency_us_.observe(7);\n"
      "  auto& reg = obs::shard_registry();\n"
      "  Tracer::global().clear();\n"
      "  (void)reg;\n"
      "}\n");
  Findings fs =
      hotpath_check("src/net/f.cpp", ts, HotScope{"src/net/f.cpp", {}});
  EXPECT_EQ(count_rule(fs, "obs-hotpath-lookup"), 0) << format_findings(fs);
}

TEST(HotpathTest, RegistryLookupRespectsFnScope) {
  TokenStream ts = lex(
      "void cold_setup() {\n"
      "  obs::shard_registry().counter(\"a\").inc();\n"  // outside scope
      "}\n"
      "void hot_send() {\n"
      "  obs::shard_registry().counter(\"b\").inc();\n"  // line 5, inside
      "}\n");
  Findings fs = hotpath_check("src/net/f.cpp", ts,
                              HotScope{"src/net/f.cpp", {"hot_send"}});
  ASSERT_EQ(count_rule(fs, "obs-hotpath-lookup"), 1) << format_findings(fs);
  EXPECT_EQ(find_rule(fs, "obs-hotpath-lookup")->line, 5);
}

TEST(HotpathTest, ClassPatternCoversAllMembers) {
  TokenStream ts = lex(
      "void Writer::open() { auto* x = new int(0); (void)x; }\n"
      "void Other::open() { auto* y = new int(1); (void)y; }\n");
  Findings fs = hotpath_check("src/xml/f.cpp", ts,
                              HotScope{"src/xml/f.cpp", {"Writer"}});
  ASSERT_EQ(count_rule(fs, "hotpath-new"), 1) << format_findings(fs);
  EXPECT_EQ(find_rule(fs, "hotpath-new")->line, 1);
}

TEST(HotpathTest, BytesGrowthIsFlagged) {
  TokenStream ts = lex(
      "void hot() {\n"                 // 1
      "  Bytes out;\n"                 // 2
      "  out.reserve(512);\n"          // 3
      "  out.append(p, n);\n"          // 4
      "  out.resize(out.size() * 2);\n"  // 5
      "  (void)out;\n"                 // 6
      "}\n");
  Findings fs =
      hotpath_check("src/net/f.cpp", ts, HotScope{"src/net/f.cpp", {}});
  ASSERT_EQ(count_rule(fs, "hotpath-bytes-growth"), 3) << format_findings(fs);
  EXPECT_EQ(find_rule(fs, "hotpath-bytes-growth")->line, 3);
}

TEST(HotpathTest, BytesGrowthIgnoresNonBytesNamesAndScope) {
  // `buf` is a BlockStream, not a Bytes — its append is the pooled
  // idiom the rule steers toward; and a Bytes growing outside the
  // manifest's fn scope is setup/teardown, not wire traffic.
  TokenStream ts = lex(
      "void hot_send() {\n"
      "  BlockStream buf;\n"
      "  buf.append(p, n);\n"
      "}\n"
      "void cold_setup() {\n"
      "  Bytes scratch;\n"
      "  scratch.reserve(64);\n"
      "}\n");
  Findings fs = hotpath_check("src/net/f.cpp", ts,
                              HotScope{"src/net/f.cpp", {"hot_send"}});
  EXPECT_EQ(count_rule(fs, "hotpath-bytes-growth"), 0)
      << format_findings(fs);
}

// --- shard readiness ----------------------------------------------------

TEST(ShardTest, MutableGlobalIsFlagged) {
  TokenStream ts = lex(
      "namespace hcm {\n"
      "namespace {\n"
      "int g_counter = 0;\n"  // line 3
      "}\n"
      "}\n");
  Findings fs = shard_check("src/x/a.cpp", ts);
  ASSERT_EQ(count_rule(fs, "shard-mutable-global"), 1)
      << format_findings(fs);
  EXPECT_EQ(find_rule(fs, "shard-mutable-global")->line, 3);
}

TEST(ShardTest, ConstAtomicAndLocalsPass) {
  TokenStream ts = lex(
      "namespace hcm {\n"
      "const int kLimit = 8;\n"
      "constexpr int kOther = 9;\n"
      "std::atomic<int> g_ok{0};\n"
      "void f() { int local = 0; (void)local; }\n"
      "int g() { return kLimit; }\n"
      "}\n");
  Findings fs = shard_check("src/x/a.cpp", ts);
  EXPECT_TRUE(fs.empty()) << format_findings(fs);
}

TEST(ShardTest, MutableStaticLocalIsFlagged) {
  TokenStream ts = lex(
      "int next_id() {\n"
      "  static int id = 0;\n"  // line 2
      "  return ++id;\n"
      "}\n"
      "const char* name() {\n"
      "  static const char* n = \"ok\";\n"  // const: passes
      "  return n;\n"
      "}\n");
  Findings fs = shard_check("src/x/a.cpp", ts);
  ASSERT_EQ(count_rule(fs, "shard-static-local"), 1) << format_findings(fs);
  EXPECT_EQ(find_rule(fs, "shard-static-local")->line, 2);
}

// --- suppression machinery ----------------------------------------------

TEST(SuppressionTest, AllowOnLineAboveSuppresses) {
  const std::string src =
      "namespace hcm {\n"
      "// hcm:allow(shard-mutable-global): startup-only config\n"
      "int g_flag = 0;\n"
      "}\n";
  TokenStream ts = lex(src);
  Report report;
  report.findings = shard_check("src/x/a.cpp", ts);
  ASSERT_EQ(report.findings.size(), 1u);

  std::map<std::string, std::vector<AllowNote>> allows = {
      {"src/x/a.cpp", ts.allows}};
  std::map<std::string, std::vector<std::string>> lines = {
      {"src/x/a.cpp", split_lines(src)}};
  apply_suppressions(report, allows, {}, lines);

  ASSERT_EQ(report.findings.size(), 1u);  // no meta-findings appended
  EXPECT_TRUE(report.findings[0].suppressed);
  EXPECT_EQ(report.findings[0].reason, "startup-only config");
  EXPECT_EQ(report.unsuppressed(), 0u);
}

TEST(SuppressionTest, AllowForOtherRuleDoesNotSuppressAndGoesStale) {
  const std::string src =
      "namespace hcm {\n"
      "// hcm:allow(determinism-wallclock): wrong rule\n"
      "int g_flag = 0;\n"
      "}\n";
  TokenStream ts = lex(src);
  Report report;
  report.findings = shard_check("src/x/a.cpp", ts);
  std::map<std::string, std::vector<AllowNote>> allows = {
      {"src/x/a.cpp", ts.allows}};
  std::map<std::string, std::vector<std::string>> lines = {
      {"src/x/a.cpp", split_lines(src)}};
  apply_suppressions(report, allows, {}, lines);

  EXPECT_EQ(count_rule(report.findings, "shard-mutable-global"), 1);
  EXPECT_FALSE(find_rule(report.findings, "shard-mutable-global")->suppressed);
  EXPECT_EQ(count_rule(report.findings, "allow-stale"), 1)
      << format_findings(report.findings);
}

TEST(SuppressionTest, ShardRulesAreEnforcedUnderSimAndCore) {
  // An hcm:allow that would normally suppress a shard finding is
  // overridden by the enforcement tier when the file lives in the
  // sharded-kernel dirs; elsewhere the suppression stands.
  const std::string src =
      "namespace hcm {\n"
      "// hcm:allow(shard-mutable-global): startup-only config\n"
      "int g_flag = 0;\n"
      "}\n";
  TokenStream ts = lex(src);
  for (const char* file : {"src/sim/a.cpp", "src/core/a.cpp"}) {
    Report report;
    report.findings = shard_check(file, ts);
    ASSERT_EQ(report.findings.size(), 1u);
    std::map<std::string, std::vector<AllowNote>> allows = {{file, ts.allows}};
    std::map<std::string, std::vector<std::string>> lines = {
        {file, split_lines(src)}};
    apply_suppressions(report, allows, {}, lines);
    EXPECT_TRUE(report.findings[0].suppressed);
    EXPECT_EQ(enforce_shard_rules(report), 1u) << file;
    EXPECT_FALSE(report.findings[0].suppressed);
    EXPECT_NE(report.findings[0].message.find("[enforced"), std::string::npos);
    EXPECT_EQ(report.unsuppressed(), 1u);
  }
  // Outside the enforced dirs the allow keeps working.
  Report report;
  report.findings = shard_check("src/obs/a.cpp", ts);
  std::map<std::string, std::vector<AllowNote>> allows = {
      {"src/obs/a.cpp", ts.allows}};
  std::map<std::string, std::vector<std::string>> lines = {
      {"src/obs/a.cpp", split_lines(src)}};
  apply_suppressions(report, allows, {}, lines);
  EXPECT_EQ(enforce_shard_rules(report), 0u);
  EXPECT_TRUE(report.findings[0].suppressed);
}

TEST(SuppressionTest, MalformedAllowIsAFinding) {
  const std::string src = "// hcm:allow(shard-mutable-global)\nint x = 0;\n";
  TokenStream ts = lex(src);
  Report report;
  std::map<std::string, std::vector<AllowNote>> allows = {
      {"src/x/a.cpp", ts.allows}};
  std::map<std::string, std::vector<std::string>> lines = {
      {"src/x/a.cpp", split_lines(src)}};
  apply_suppressions(report, allows, {}, lines);
  EXPECT_EQ(count_rule(report.findings, "allow-malformed"), 1)
      << format_findings(report.findings);
}

TEST(SuppressionTest, BaselineSuppressesByLineTextAndGoesStale) {
  const std::string src =
      "namespace hcm {\n"
      "int g_old = 0;\n"
      "}\n";
  TokenStream ts = lex(src);
  Report report;
  report.findings = shard_check("src/x/a.cpp", ts);
  ASSERT_EQ(report.findings.size(), 1u);

  std::vector<BaselineEntry> baseline = {
      {"shard-mutable-global", "src/x/a.cpp", "int g_old = 0;"},
      {"shard-mutable-global", "src/x/a.cpp", "int g_gone = 0;"},  // stale
  };
  std::map<std::string, std::vector<std::string>> lines = {
      {"src/x/a.cpp", split_lines(src)}};
  apply_suppressions(report, {}, baseline, lines);

  EXPECT_TRUE(find_rule(report.findings, "shard-mutable-global")->suppressed);
  EXPECT_EQ(count_rule(report.findings, "baseline-stale"), 1)
      << format_findings(report.findings);
}

TEST(SuppressionTest, BaselineRoundTripsThroughTextFormat) {
  std::vector<BaselineEntry> entries = {
      {"shard-mutable-global", "src/x/a.cpp", "int g = 0;"},
      {"hotpath-new", "src/net/b.cpp", "auto* p = new int(1);"},
  };
  auto parsed = parse_baseline(render_baseline(entries));
  ASSERT_EQ(parsed.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(parsed[i].rule, entries[i].rule);
    EXPECT_EQ(parsed[i].file, entries[i].file);
    EXPECT_EQ(parsed[i].line_text, entries[i].line_text);
  }
}

// --- JSON report --------------------------------------------------------

TEST(AnalyzeJsonTest, SchemaRoundTrips) {
  Report report;
  report.files_scanned = 42;
  report.findings.push_back({"hotpath-new", "src/net/stream.cpp", 17,
                             "heap allocation ('new') on the wire hot path"});
  report.findings.push_back({"shard-mutable-global", "src/obs/metrics.cpp",
                             9, "mutable namespace-scope state", true,
                             "startup-only \"config\" with\nquotes"});

  std::string json = report_to_json(report);
  Report parsed;
  std::string err;
  ASSERT_TRUE(report_from_json(json, &parsed, &err)) << err;
  EXPECT_EQ(parsed.files_scanned, report.files_scanned);
  ASSERT_EQ(parsed.findings.size(), report.findings.size());
  EXPECT_EQ(parsed.findings[0], report.findings[0]);
  EXPECT_EQ(parsed.findings[1], report.findings[1]);
}

TEST(AnalyzeJsonTest, MalformedJsonIsRejected) {
  Report parsed;
  std::string err;
  EXPECT_FALSE(report_from_json("{\"findings\": [", &parsed, &err));
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace hcm::analyze
