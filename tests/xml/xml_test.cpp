#include "xml/xml.hpp"

#include <gtest/gtest.h>

namespace hcm::xml {
namespace {

TEST(XmlBuildTest, SimpleElement) {
  Element e("root");
  e.set_attr("id", "1");
  e.add_child("child").set_text("hello");
  EXPECT_EQ(e.to_string(), "<root id=\"1\"><child>hello</child></root>");
}

TEST(XmlBuildTest, EmptyElementSelfCloses) {
  Element e("empty");
  EXPECT_EQ(e.to_string(), "<empty/>");
}

TEST(XmlBuildTest, AttrOverwrite) {
  Element e("x");
  e.set_attr("a", "1");
  e.set_attr("a", "2");
  ASSERT_NE(e.attr("a"), nullptr);
  EXPECT_EQ(*e.attr("a"), "2");
  EXPECT_EQ(e.attrs().size(), 1u);
}

TEST(XmlBuildTest, EscapingInTextAndAttrs) {
  Element e("x");
  e.set_attr("a", "q\"<>&'");
  e.set_text("<tag> & text");
  auto s = e.to_string();
  EXPECT_NE(s.find("&quot;"), std::string::npos);
  EXPECT_NE(s.find("&lt;tag&gt; &amp; text"), std::string::npos);
}

TEST(XmlBuildTest, LocalName) {
  Element e("soap:Envelope");
  EXPECT_EQ(e.local_name(), "Envelope");
  Element plain("Body");
  EXPECT_EQ(plain.local_name(), "Body");
}

TEST(XmlBuildTest, ChildLookupIsPrefixInsensitive) {
  Element e("root");
  e.add_child("ns:Inner").set_text("v");
  ASSERT_NE(e.child("Inner"), nullptr);
  EXPECT_EQ(e.child("Inner")->text(), "v");
  EXPECT_EQ(e.child("Absent"), nullptr);
}

TEST(XmlBuildTest, ChildrenNamed) {
  Element e("list");
  e.add_child("item").set_text("1");
  e.add_child("item").set_text("2");
  e.add_child("other");
  EXPECT_EQ(e.children_named("item").size(), 2u);
}

TEST(XmlParseTest, RoundTripSimple) {
  Element e("root");
  e.set_attr("version", "1.0");
  e.add_child("a").set_text("alpha");
  e.add_child("b").set_attr("k", "v");
  auto parsed = parse(e.to_string());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value()->to_string(), e.to_string());
}

TEST(XmlParseTest, SkipsPrologDoctypeComments) {
  auto r = parse(
      "<?xml version=\"1.0\"?>\n"
      "<!DOCTYPE html>\n"
      "<!-- top comment -->\n"
      "<root><!-- inner --><a>x</a></root>");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value()->child("a")->text(), "x");
}

TEST(XmlParseTest, DecodesEntities) {
  auto r = parse("<x>&lt;&gt;&amp;&quot;&apos;&#65;&#x42;</x>");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value()->text(), "<>&\"'AB");
}

TEST(XmlParseTest, EntityInAttribute) {
  auto r = parse("<x a=\"1 &amp; 2\"/>");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(*r.value()->attr("a"), "1 & 2");
}

TEST(XmlParseTest, Cdata) {
  auto r = parse("<x><![CDATA[<raw> & stuff]]></x>");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value()->text(), "<raw> & stuff");
}

TEST(XmlParseTest, WhitespaceBetweenElementsIgnored) {
  auto r = parse("<root>\n  <a>1</a>\n  <b>2</b>\n</root>");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value()->children().size(), 2u);
  EXPECT_EQ(r.value()->text(), "");
}

TEST(XmlParseTest, SingleQuotedAttributes) {
  auto r = parse("<x a='v1' b=\"v2\"/>");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(*r.value()->attr("a"), "v1");
  EXPECT_EQ(*r.value()->attr("b"), "v2");
}

TEST(XmlParseTest, MalformedInputs) {
  EXPECT_FALSE(parse("").is_ok());
  EXPECT_FALSE(parse("<a>").is_ok());                 // unterminated
  EXPECT_FALSE(parse("<a></b>").is_ok());             // mismatched
  EXPECT_FALSE(parse("<a><b></a></b>").is_ok());      // crossed
  EXPECT_FALSE(parse("<a x=1/>").is_ok());            // unquoted attr
  EXPECT_FALSE(parse("<a>&unknown;</a>").is_ok());    // bad entity
  EXPECT_FALSE(parse("<a/><b/>").is_ok());            // two roots
  EXPECT_FALSE(parse("just text").is_ok());
}

TEST(XmlParseTest, DeepNesting) {
  std::string open, close;
  for (int i = 0; i < 200; ++i) {
    open += "<e>";
    close = "</e>" + close;
  }
  auto r = parse(open + "x" + close);
  ASSERT_TRUE(r.is_ok());
  const Element* cur = r.value().get();
  int depth = 1;
  while (cur->child("e") != nullptr) {
    cur = cur->child("e");
    ++depth;
  }
  EXPECT_EQ(depth, 200);
  EXPECT_EQ(cur->text(), "x");
}

TEST(XmlParseTest, AttrLocal) {
  auto r = parse("<x xsi:type=\"xsd:int\">4</x>");
  ASSERT_TRUE(r.is_ok());
  ASSERT_NE(r.value()->attr_local("type"), nullptr);
  EXPECT_EQ(*r.value()->attr_local("type"), "xsd:int");
}

TEST(XmlPrettyTest, IndentedOutputParsesBack) {
  Element e("root");
  e.add_child("a").add_child("b").set_text("deep");
  auto pretty = e.to_pretty_string();
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  auto r = parse(pretty);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value()->child("a")->child("b")->text(), "deep");
}

}  // namespace
}  // namespace hcm::xml
