#include "xml/xml.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <random>

#include "common/block_pool.hpp"
#include "common/block_stream.hpp"

namespace hcm::xml {
namespace {

TEST(XmlBuildTest, SimpleElement) {
  Element e("root");
  e.set_attr("id", "1");
  e.add_child("child").set_text("hello");
  EXPECT_EQ(e.to_string(), "<root id=\"1\"><child>hello</child></root>");
}

TEST(XmlBuildTest, EmptyElementSelfCloses) {
  Element e("empty");
  EXPECT_EQ(e.to_string(), "<empty/>");
}

TEST(XmlBuildTest, AttrOverwrite) {
  Element e("x");
  e.set_attr("a", "1");
  e.set_attr("a", "2");
  ASSERT_NE(e.attr("a"), nullptr);
  EXPECT_EQ(*e.attr("a"), "2");
  EXPECT_EQ(e.attrs().size(), 1u);
}

TEST(XmlBuildTest, EscapingInTextAndAttrs) {
  Element e("x");
  e.set_attr("a", "q\"<>&'");
  e.set_text("<tag> & text");
  auto s = e.to_string();
  EXPECT_NE(s.find("&quot;"), std::string::npos);
  EXPECT_NE(s.find("&lt;tag&gt; &amp; text"), std::string::npos);
}

TEST(XmlBuildTest, LocalName) {
  Element e("soap:Envelope");
  EXPECT_EQ(e.local_name(), "Envelope");
  Element plain("Body");
  EXPECT_EQ(plain.local_name(), "Body");
}

TEST(XmlBuildTest, ChildLookupIsPrefixInsensitive) {
  Element e("root");
  e.add_child("ns:Inner").set_text("v");
  ASSERT_NE(e.child("Inner"), nullptr);
  EXPECT_EQ(e.child("Inner")->text(), "v");
  EXPECT_EQ(e.child("Absent"), nullptr);
}

TEST(XmlBuildTest, ChildrenNamed) {
  Element e("list");
  e.add_child("item").set_text("1");
  e.add_child("item").set_text("2");
  e.add_child("other");
  EXPECT_EQ(e.children_named("item").size(), 2u);
}

TEST(XmlParseTest, RoundTripSimple) {
  Element e("root");
  e.set_attr("version", "1.0");
  e.add_child("a").set_text("alpha");
  e.add_child("b").set_attr("k", "v");
  auto parsed = parse(e.to_string());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value()->to_string(), e.to_string());
}

TEST(XmlParseTest, SkipsPrologDoctypeComments) {
  auto r = parse(
      "<?xml version=\"1.0\"?>\n"
      "<!DOCTYPE html>\n"
      "<!-- top comment -->\n"
      "<root><!-- inner --><a>x</a></root>");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value()->child("a")->text(), "x");
}

TEST(XmlParseTest, DecodesEntities) {
  auto r = parse("<x>&lt;&gt;&amp;&quot;&apos;&#65;&#x42;</x>");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value()->text(), "<>&\"'AB");
}

TEST(XmlParseTest, EntityInAttribute) {
  auto r = parse("<x a=\"1 &amp; 2\"/>");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(*r.value()->attr("a"), "1 & 2");
}

TEST(XmlParseTest, Cdata) {
  auto r = parse("<x><![CDATA[<raw> & stuff]]></x>");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value()->text(), "<raw> & stuff");
}

TEST(XmlParseTest, WhitespaceBetweenElementsIgnored) {
  auto r = parse("<root>\n  <a>1</a>\n  <b>2</b>\n</root>");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value()->children().size(), 2u);
  EXPECT_EQ(r.value()->text(), "");
}

TEST(XmlParseTest, SingleQuotedAttributes) {
  auto r = parse("<x a='v1' b=\"v2\"/>");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(*r.value()->attr("a"), "v1");
  EXPECT_EQ(*r.value()->attr("b"), "v2");
}

TEST(XmlParseTest, MalformedInputs) {
  EXPECT_FALSE(parse("").is_ok());
  EXPECT_FALSE(parse("<a>").is_ok());                 // unterminated
  EXPECT_FALSE(parse("<a></b>").is_ok());             // mismatched
  EXPECT_FALSE(parse("<a><b></a></b>").is_ok());      // crossed
  EXPECT_FALSE(parse("<a x=1/>").is_ok());            // unquoted attr
  EXPECT_FALSE(parse("<a>&unknown;</a>").is_ok());    // bad entity
  EXPECT_FALSE(parse("<a/><b/>").is_ok());            // two roots
  EXPECT_FALSE(parse("just text").is_ok());
}

TEST(XmlParseTest, DeepNesting) {
  std::string open, close;
  for (int i = 0; i < 200; ++i) {
    open += "<e>";
    close = "</e>" + close;
  }
  auto r = parse(open + "x" + close);
  ASSERT_TRUE(r.is_ok());
  const Element* cur = r.value().get();
  int depth = 1;
  while (cur->child("e") != nullptr) {
    cur = cur->child("e");
    ++depth;
  }
  EXPECT_EQ(depth, 200);
  EXPECT_EQ(cur->text(), "x");
}

TEST(XmlParseTest, AttrLocal) {
  auto r = parse("<x xsi:type=\"xsd:int\">4</x>");
  ASSERT_TRUE(r.is_ok());
  ASSERT_NE(r.value()->attr_local("type"), nullptr);
  EXPECT_EQ(*r.value()->attr_local("type"), "xsd:int");
}

TEST(XmlParseTest, CdataPreservesMarkupAndEntitiesVerbatim) {
  auto r = parse("<x><![CDATA[<not-a-tag> &amp; \"raw\" ]]&gt;-ish]]></x>");
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  // CDATA content is neither entity-decoded nor treated as markup.
  EXPECT_EQ(r.value()->text(), "<not-a-tag> &amp; \"raw\" ]]&gt;-ish");
}

TEST(XmlParseTest, WhitespaceOnlyCdataIsKept) {
  // Regular whitespace-only runs are formatting noise and dropped;
  // CDATA says "this is content" explicitly.
  auto r = parse("<x><![CDATA[   ]]></x>");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value()->text(), "   ");
}

TEST(XmlParseTest, NumericAndNamedEntitiesInAttributeValues) {
  auto r = parse(
      "<x a=\"&lt;&amp;&gt;\" b=\"&#65;&#x42;\" c=\"say &quot;hi&apos;\"/>");
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(*r.value()->attr("a"), "<&>");
  EXPECT_EQ(*r.value()->attr("b"), "AB");
  EXPECT_EQ(*r.value()->attr("c"), "say \"hi'");
}

TEST(XmlParseTest, AttrEntityErrorsSurface) {
  EXPECT_FALSE(parse("<x a=\"&bogus;\"/>").is_ok());
  EXPECT_FALSE(parse("<x a=\"&#xZZ;\"/>").is_ok());
}

TEST(XmlPullTest, EventSequenceWithZeroCopyViews) {
  const std::string doc = "<a one=\"1\"><b>text</b><c/></a>";
  PullParser p(doc);
  std::string scratch;

  auto ev = p.next();
  ASSERT_TRUE(ev.is_ok());
  ASSERT_EQ(ev.value(), PullParser::Event::kStart);
  EXPECT_EQ(p.name(), "a");
  ASSERT_EQ(p.attrs().size(), 1u);
  EXPECT_EQ(p.attrs()[0].name, "one");
  EXPECT_EQ(p.attrs()[0].raw_value, "1");
  // Zero-copy: the name view aliases the input buffer.
  EXPECT_GE(p.name().data(), doc.data());
  EXPECT_LT(p.name().data(), doc.data() + doc.size());

  ASSERT_EQ(p.next().value(), PullParser::Event::kStart);  // <b>
  ASSERT_EQ(p.next().value(), PullParser::Event::kText);
  auto text = p.text(scratch);
  ASSERT_TRUE(text.is_ok());
  EXPECT_EQ(text.value(), "text");
  // No entities: the decoded view aliases the input, not the scratch.
  EXPECT_TRUE(scratch.empty());
  ASSERT_EQ(p.next().value(), PullParser::Event::kEnd);  // </b>
  ASSERT_EQ(p.next().value(), PullParser::Event::kStart);  // <c/>
  EXPECT_EQ(p.name(), "c");
  ASSERT_EQ(p.next().value(), PullParser::Event::kEnd);  // implied </c>
  ASSERT_EQ(p.next().value(), PullParser::Event::kEnd);  // </a>
  ASSERT_EQ(p.next().value(), PullParser::Event::kEof);
}

TEST(XmlPullTest, DecodeFastPathAndSlowPath) {
  std::string scratch;
  auto fast = PullParser::decode("plain text", scratch);
  ASSERT_TRUE(fast.is_ok());
  EXPECT_EQ(fast.value(), "plain text");
  EXPECT_TRUE(scratch.empty());

  auto slow = PullParser::decode("a &amp; b &#33;", scratch);
  ASSERT_TRUE(slow.is_ok());
  EXPECT_EQ(slow.value(), "a & b !");
  EXPECT_FALSE(scratch.empty());

  EXPECT_FALSE(PullParser::decode("&nope;", scratch).is_ok());
  EXPECT_FALSE(PullParser::decode("&unterminated", scratch).is_ok());
}

TEST(XmlPullTest, SkipElementConsumesSubtree) {
  PullParser p("<a><skip><deep><deeper/>text</deep></skip><keep/></a>");
  ASSERT_EQ(p.next().value(), PullParser::Event::kStart);  // <a>
  ASSERT_EQ(p.next().value(), PullParser::Event::kStart);  // <skip>
  ASSERT_TRUE(p.skip_element().is_ok());
  ASSERT_EQ(p.next().value(), PullParser::Event::kStart);
  EXPECT_EQ(p.name(), "keep");
}

TEST(XmlPullTest, MismatchedCloseTagReported) {
  PullParser p("<a><b></a></b>");
  ASSERT_EQ(p.next().value(), PullParser::Event::kStart);
  ASSERT_EQ(p.next().value(), PullParser::Event::kStart);
  auto ev = p.next();
  ASSERT_FALSE(ev.is_ok());
  EXPECT_NE(ev.status().message().find("mismatched close tag"),
            std::string::npos);
}

TEST(XmlWriterTest, MatchesElementRenderingByteForByte) {
  Element e("root");
  e.set_attr("a", "va<l&ue");
  e.add_child("empty");
  auto& kid = e.add_child("kid");
  kid.set_attr("k", "\"q\"");
  kid.set_text("text & <markup>");
  e.add_child("leaf").set_text("");

  std::string out;
  Writer w(out);
  w.start("root")
      .attr("a", "va<l&ue")
      .start("empty")
      .end()
      .start("kid")
      .attr("k", "\"q\"")
      .text("text & <markup>")
      .end()
      .leaf("leaf", "")
      .end();
  EXPECT_EQ(out, e.to_string());
}

TEST(XmlWriterTest, BlockStreamFormMatchesStringFormAcrossSeams) {
  // Enough text to cross several 16 KB block boundaries, with escapes
  // sprinkled in so the escaped runs can straddle a seam too.
  std::string big;
  while (big.size() < 3 * BlockPool::kBlockCapacity) {
    big += "a run of clean text & a <tagged> bit, ";
  }
  auto render = [&](auto& sink) {
    Writer w(sink);
    w.start("root").attr("k", "v<&").start("kid").text(big).end().leaf(
        "leaf", big).end();
  };
  std::string flat;
  render(flat);
  BlockStream pooled;
  render(pooled);
  EXPECT_GT(pooled.size(), 2 * BlockPool::kBlockCapacity);
  EXPECT_EQ(pooled.to_string(), flat);
}

TEST(XmlWriterTest, BufferReuseAppendsCleanly) {
  std::string out = "prefix:";
  Writer w(out);
  w.start("x").text("1").end();
  EXPECT_EQ(out, "prefix:<x>1</x>");
}

// Randomized property: any tree we can build renders to a document that
// parses back to the same tree (compared via canonical rendering).
TEST(XmlPropertyTest, RandomizedTreesRoundTrip) {
  std::mt19937_64 rng(0xA11CE);
  const std::string alphabet =
      "abz <>&\"'\té!#;=/-_."
      "0123456789";
  auto rand_text = [&](std::size_t max_len) {
    std::uniform_int_distribution<std::size_t> len(1, max_len);
    std::uniform_int_distribution<std::size_t> pick(0, alphabet.size() - 1);
    std::string s;
    std::size_t n = len(rng);
    bool non_ws = false;
    for (std::size_t i = 0; i < n; ++i) {
      char c = alphabet[pick(rng)];
      if (c != ' ' && c != '\t') non_ws = true;
      s += c;
    }
    // Whitespace-only runs are (by design) dropped on parse; keep the
    // property crisp by avoiding them.
    if (!non_ws) s += 'z';
    return s;
  };
  std::function<void(Element&, int)> grow = [&](Element& e, int depth) {
    std::uniform_int_distribution<int> kids(0, depth >= 3 ? 0 : 3);
    std::uniform_int_distribution<int> coin(0, 1);
    if (coin(rng) != 0) e.set_attr("a" + std::to_string(depth), rand_text(12));
    int n = kids(rng);
    if (n == 0) {
      if (coin(rng) != 0) e.set_text(rand_text(20));
      return;
    }
    for (int i = 0; i < n; ++i) {
      grow(e.add_child("c" + std::to_string(i)), depth + 1);
    }
  };
  for (int iter = 0; iter < 50; ++iter) {
    Element tree("root");
    grow(tree, 0);
    const std::string rendered = tree.to_string();
    auto parsed = parse(rendered);
    ASSERT_TRUE(parsed.is_ok())
        << "iter " << iter << ": " << parsed.status().to_string() << "\n"
        << rendered;
    EXPECT_EQ(parsed.value()->to_string(), rendered) << "iter " << iter;
  }
}

TEST(XmlPrettyTest, IndentedOutputParsesBack) {
  Element e("root");
  e.add_child("a").add_child("b").set_text("deep");
  auto pretty = e.to_pretty_string();
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  auto r = parse(pretty);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value()->child("a")->child("b")->text(), "deep");
}

}  // namespace
}  // namespace hcm::xml
