// Metrics registry unit tests: counter/gauge semantics, histogram
// bucketing and percentile approximation, name->object stability,
// unique scopes, snapshot export and the runtime disable switch.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

namespace hcm::obs {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
}

TEST(HistogramTest, EmptyHistogramIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.percentile(50), 0);
}

TEST(HistogramTest, TracksExactMinMaxSum) {
  Histogram h;
  h.observe(3);
  h.observe(700);
  h.observe(12);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 715);
  EXPECT_EQ(h.min(), 3);
  EXPECT_EQ(h.max(), 700);
}

TEST(HistogramTest, PercentileReturnsBucketUpperBound) {
  Histogram h;
  // 100 samples of 3us: every percentile lands in the (2, 5] bucket,
  // whose bound 5 is then clamped to the exact observed max 3.
  for (int i = 0; i < 100; ++i) h.observe(3);
  EXPECT_EQ(h.percentile(50), 3);
  EXPECT_EQ(h.percentile(99), 3);

  // 90 fast + 10 slow: p50 stays in the fast bucket, p99 in the slow.
  Histogram mixed;
  for (int i = 0; i < 90; ++i) mixed.observe(80);
  for (int i = 0; i < 10; ++i) mixed.observe(9000);
  EXPECT_EQ(mixed.percentile(50), 100);   // bucket (50, 100]
  EXPECT_EQ(mixed.percentile(99), 9000);  // bound 10000 clamped to max
  EXPECT_LE(mixed.percentile(50), mixed.percentile(95));
  EXPECT_LE(mixed.percentile(95), mixed.percentile(99));
}

TEST(HistogramTest, OverflowBucketHoldsHugeSamples) {
  Histogram h;
  h.observe(Histogram::kBounds.back() * 5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.percentile(99), Histogram::kBounds.back() * 5);
}

TEST(HistogramTest, SnapshotValueMapShape) {
  Histogram h;
  h.observe(10);
  h.observe(20);
  Value snap = h.snapshot();
  ASSERT_TRUE(snap.is_map());
  EXPECT_EQ(snap.at("count"), Value(std::int64_t{2}));
  EXPECT_EQ(snap.at("sum"), Value(std::int64_t{30}));
  EXPECT_EQ(snap.at("min"), Value(std::int64_t{10}));
  EXPECT_EQ(snap.at("max"), Value(std::int64_t{20}));
  EXPECT_TRUE(snap.at("p50").is_int());
  EXPECT_TRUE(snap.at("p95").is_int());
  EXPECT_TRUE(snap.at("p99").is_int());
}

TEST(RegistryTest, SameNameResolvesToSameObject) {
  Registry reg;
  Counter& a = reg.counter("x.calls");
  Counter& b = reg.counter("x.calls");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
  // Counters, gauges and histograms occupy separate namespaces.
  reg.gauge("x.calls").set(7);
  EXPECT_EQ(reg.counter("x.calls").value(), 1u);
  EXPECT_EQ(reg.size(), 2u);  // one counter + one gauge
}

TEST(RegistryTest, FindReturnsNullForUnknown) {
  Registry reg;
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  EXPECT_EQ(reg.find_histogram("nope"), nullptr);
  reg.counter("yes").inc();
  ASSERT_NE(reg.find_counter("yes"), nullptr);
  EXPECT_EQ(reg.find_counter("yes")->value(), 1u);
}

TEST(RegistryTest, UniqueScopeNeverAliases) {
  Registry reg;
  EXPECT_EQ(reg.unique_scope("vsg.jini"), "vsg.jini");
  EXPECT_EQ(reg.unique_scope("vsg.jini"), "vsg.jini#2");
  EXPECT_EQ(reg.unique_scope("vsg.jini"), "vsg.jini#3");
  EXPECT_EQ(reg.unique_scope("vsg.havi"), "vsg.havi");
}

TEST(RegistryTest, ToValueFiltersByPrefix) {
  Registry reg;
  reg.counter("net.sent").inc(5);
  reg.counter("http.requests").inc(2);
  reg.histogram("http.latency_us").observe(100);
  Value all = reg.to_value();
  ASSERT_TRUE(all.is_map());
  EXPECT_EQ(all.as_map().size(), 3u);
  Value http = reg.to_value("http.");
  ASSERT_TRUE(http.is_map());
  EXPECT_EQ(http.as_map().size(), 2u);
  EXPECT_EQ(http.at("http.requests"), Value(std::int64_t{2}));
  EXPECT_TRUE(http.at("http.latency_us").is_map());
}

TEST(RegistryTest, ToTextListsMetricsSorted) {
  Registry reg;
  reg.counter("b.two").inc(2);
  reg.counter("a.one").inc(1);
  std::string text = reg.to_text();
  auto a = text.find("a.one");
  auto b = text.find("b.two");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  EXPECT_LT(a, b);
}

TEST(RegistryTest, ResetValuesKeepsRegistrations) {
  Registry reg;
  reg.counter("c").inc(9);
  reg.histogram("h").observe(50);
  reg.reset_values();
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.counter("c").value(), 0u);
  EXPECT_EQ(reg.histogram("h").count(), 0u);
}

TEST(EnableSwitchTest, DisabledMutationsAreNoOps) {
  Counter c;
  Histogram h;
  set_enabled(false);
  c.inc();
  h.observe(10);
  set_enabled(true);  // restore for every other test
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  c.inc();
  EXPECT_EQ(c.value(), 1u);
}

TEST(RegistryTest, GlobalIsStable) {
  EXPECT_EQ(&Registry::global(), &Registry::global());
}

}  // namespace
}  // namespace hcm::obs
