// Per-shard slab tests: shard_registry routing (unbound -> global,
// bound -> own slab), merge accumulation across slabs, scope-name
// delegation, and the PR 9 keystone — at 1 shard the barrier merge
// reproduces the plain global-registry snapshot byte for byte.
#include "obs/slab.hpp"

#include <gtest/gtest.h>

#include "common/json.hpp"
#include "obs/metrics.hpp"
#include "sim/sharded_kernel.hpp"

namespace hcm::obs {
namespace {

TEST(SlabTest, NoSlabsRoutesToGlobal) {
  ASSERT_EQ(ShardSlabs::installed(), nullptr);
  EXPECT_EQ(&shard_registry(), &Registry::global());
}

TEST(SlabTest, UnboundThreadRoutesToGlobalEvenWhenInstalled) {
  ShardSlabs slabs(2);
  ASSERT_EQ(ShardSlabs::installed(), &slabs);
  // The test thread is not a kernel worker, so it must keep writing to
  // the global registry (setup-time code paths).
  EXPECT_EQ(&shard_registry(), &Registry::global());
}

TEST(SlabTest, BoundThreadRoutesToItsSlab) {
  sim::ShardedKernelOptions kopts;
  kopts.shards = 2;
  sim::ShardedKernel kernel(kopts);
  ShardSlabs slabs(2);
  Registry* r0 = nullptr;
  Registry* r1 = nullptr;
  kernel.run_as(0, [&] { r0 = &shard_registry(); });
  kernel.run_as(1, [&] { r1 = &shard_registry(); });
  EXPECT_EQ(r0, &slabs.slab(0));
  EXPECT_EQ(r1, &slabs.slab(1));
  EXPECT_EQ(&shard_registry(), &Registry::global());
}

TEST(SlabTest, MergeSumsAcrossSlabsAndGlobal) {
  ShardSlabs slabs(2);
  Registry::global().counter("slabtest.sum.c").inc(1);
  slabs.slab(0).counter("slabtest.sum.c").inc(2);
  slabs.slab(1).counter("slabtest.sum.c").inc(5);
  slabs.slab(0).gauge("slabtest.sum.g").set(4);
  slabs.slab(1).gauge("slabtest.sum.g").add(-1);
  slabs.slab(0).histogram("slabtest.sum.h").observe(3);
  slabs.slab(1).histogram("slabtest.sum.h").observe(700);

  Registry merged;
  slabs.merge_into(merged);
  EXPECT_EQ(merged.counter("slabtest.sum.c").value(), 8u);
  EXPECT_EQ(merged.gauge("slabtest.sum.g").value(), 3);
  Histogram& h = merged.histogram("slabtest.sum.h");
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.sum(), 703);
  EXPECT_EQ(h.min(), 3);
  EXPECT_EQ(h.max(), 700);

  // merge_into resets the fold target first, so re-merging is
  // idempotent rather than doubling.
  slabs.merge_into(merged);
  EXPECT_EQ(merged.counter("slabtest.sum.c").value(), 8u);
  EXPECT_EQ(h.count(), 2u);
}

TEST(SlabTest, OneShardMergeMatchesGlobal) {
  // Replay the same mutations into a reference registry the way a
  // slab-free run would apply them; the 1-shard merged view must be
  // byte-identical (same registration set, same values, same JSON).
  Registry reference;
  ShardSlabs slabs(1);
  Registry::global().counter("slabtest.one.setup").inc(3);
  reference.counter("slabtest.one.setup").inc(3);
  slabs.slab(0).counter("slabtest.one.hot").inc(7);
  reference.counter("slabtest.one.hot").inc(7);
  slabs.slab(0).histogram("slabtest.one.lat_us").observe(40);
  slabs.slab(0).histogram("slabtest.one.lat_us").observe(9000);
  reference.histogram("slabtest.one.lat_us").observe(40);
  reference.histogram("slabtest.one.lat_us").observe(9000);
  // Registered-but-zero metrics must survive the merge too: snapshot
  // consumers key on the registration set, not just nonzero values.
  slabs.slab(0).counter("slabtest.one.zero");
  reference.counter("slabtest.one.zero");

  Registry merged;
  slabs.merge_into(merged);
  EXPECT_EQ(json_write(merged.to_value("slabtest.one.")),
            json_write(reference.to_value("slabtest.one.")));
}

TEST(SlabTest, UniqueScopeDelegatesToProcessRoot) {
  ShardSlabs slabs(2);
  const std::string a = slabs.slab(0).unique_scope("slabtest.scope");
  const std::string b = slabs.slab(1).unique_scope("slabtest.scope");
  const std::string c = Registry::global().unique_scope("slabtest.scope");
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace hcm::obs
