// Tracer unit tests: span lifecycle, parent/child propagation through
// Scope and explicit contexts, Chrome trace_event export shape, and the
// logging context hook. The tracer is global, so every test runs
// against a cleared, freshly-enabled instance and disables it on exit
// (tracing off is the process default other suites rely on).
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/logging.hpp"
#include "obs/metrics.hpp"

namespace hcm::obs {
namespace {

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tracer().clear();
    tracer().set_enabled(true);
  }
  void TearDown() override {
    tracer().set_enabled(false);
    tracer().clear();
  }
  static Tracer& tracer() { return Tracer::global(); }
};

TEST(TracerDisabledTest, DisabledTracerRecordsNothing) {
  Tracer& t = Tracer::global();
  ASSERT_FALSE(t.enabled());  // process default
  EXPECT_EQ(t.begin_span("x", "test", 0), 0u);
  EXPECT_EQ(t.span_count(), 0u);
  EXPECT_FALSE(t.current().valid());
}

TEST_F(TracerTest, RootSpanStartsNewTrace) {
  auto id = tracer().begin_span("root", "test", 100);
  ASSERT_NE(id, 0u);
  tracer().end_span(id, 250);
  ASSERT_EQ(tracer().span_count(), 1u);
  const Span& s = tracer().spans()[0];
  EXPECT_NE(s.trace_id, 0u);
  EXPECT_EQ(s.span_id, id);
  EXPECT_EQ(s.parent_span_id, 0u);
  EXPECT_EQ(s.name, "root");
  EXPECT_EQ(s.component, "test");
  EXPECT_EQ(s.start, 100u);
  EXPECT_EQ(s.end, 250u);
  EXPECT_FALSE(s.open);
  EXPECT_TRUE(s.ok);
}

TEST_F(TracerTest, ScopeParentsChildrenToCurrentContext) {
  auto root = tracer().begin_span("root", "test", 0);
  std::uint64_t child = 0;
  {
    Tracer::Scope scope(tracer(), tracer().context_of(root));
    child = tracer().begin_span("child", "test", 10);
  }
  // Scope exited: the next span starts a fresh trace.
  auto stranger = tracer().begin_span("stranger", "test", 20);

  const auto& spans = tracer().spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[1].span_id, child);
  EXPECT_EQ(spans[1].parent_span_id, root);
  EXPECT_EQ(spans[1].trace_id, spans[0].trace_id);
  EXPECT_EQ(spans[2].span_id, stranger);
  EXPECT_EQ(spans[2].parent_span_id, 0u);
  EXPECT_NE(spans[2].trace_id, spans[0].trace_id);
}

TEST_F(TracerTest, WireContextResumesTraceOnRemoteSide) {
  // Client side: a call span whose context crosses the wire.
  auto call = tracer().begin_span("call", "client", 0);
  TraceContext wire = tracer().context_of(call);
  EXPECT_TRUE(wire.valid());

  // Server side (conceptually another process): installing the wire
  // context makes the server span a child of the client call span.
  Tracer::Scope scope(tracer(), wire);
  auto server = tracer().begin_span("serve", "server", 5);
  const Span& s = tracer().spans().back();
  EXPECT_EQ(s.span_id, server);
  EXPECT_EQ(s.parent_span_id, call);
  EXPECT_EQ(s.trace_id, wire.trace_id);
}

TEST_F(TracerTest, EndSpanRecordsFailure) {
  auto id = tracer().begin_span("fails", "test", 0);
  tracer().end_span(id, 9, /*ok=*/false);
  EXPECT_FALSE(tracer().spans()[0].ok);
}

TEST_F(TracerTest, ContextOfUnknownSpanIsInvalid) {
  EXPECT_FALSE(tracer().context_of(12345).valid());
  EXPECT_FALSE(tracer().context_of(0).valid());
}

TEST_F(TracerTest, ClearResetsSpansAndCurrent) {
  auto id = tracer().begin_span("x", "test", 0);
  Tracer::Scope scope(tracer(), tracer().context_of(id));
  tracer().clear();
  EXPECT_EQ(tracer().span_count(), 0u);
  EXPECT_FALSE(tracer().current().valid());
}

TEST_F(TracerTest, ChromeExportContainsCompleteEventsAndThreadNames) {
  auto root = tracer().begin_span("hop \"one\"", "soap.client", 100);
  {
    Tracer::Scope scope(tracer(), tracer().context_of(root));
    auto child = tracer().begin_span("hop two", "soap.server", 150);
    tracer().end_span(child, 180);
  }
  tracer().end_span(root, 200);

  std::string json = tracer().export_chrome();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("soap.client"), std::string::npos);
  EXPECT_NE(json.find("soap.server"), std::string::npos);
  // Quotes inside span names are escaped, not emitted raw.
  EXPECT_EQ(json.find("hop \"one\""), std::string::npos);
  EXPECT_NE(json.find("hop \\\"one\\\""), std::string::npos);
}

TEST_F(TracerTest, ChromeExportFiltersByTraceId) {
  auto a = tracer().begin_span("trace-a-root", "test", 0);
  tracer().end_span(a, 1);
  auto b = tracer().begin_span("trace-b-root", "test", 2);
  tracer().end_span(b, 3);
  const auto& spans = tracer().spans();
  std::string only_a = tracer().export_chrome(spans[0].trace_id);
  EXPECT_NE(only_a.find("trace-a-root"), std::string::npos);
  EXPECT_EQ(only_a.find("trace-b-root"), std::string::npos);
}

TEST_F(TracerTest, EnabledTracerTagsLogLinesWithContext) {
  std::string captured;
  Log::set_sink([&](LogLevel, const std::string&, const std::string& message) {
    captured = message;
  });
  auto old_level = Log::level();
  Log::set_level(LogLevel::kInfo);

  auto id = tracer().begin_span("op", "test", 0);
  {
    Tracer::Scope scope(tracer(), tracer().context_of(id));
    log_info("test", "doing work");
  }
  EXPECT_NE(captured.find("doing work"), std::string::npos);
  EXPECT_NE(captured.find("trace="), std::string::npos);
  EXPECT_NE(captured.find("span="), std::string::npos);

  // Outside any scope the provider adds nothing.
  log_info("test", "idle");
  EXPECT_EQ(captured.find("trace="), std::string::npos);

  Log::set_level(old_level);
  Log::set_sink(nullptr);
}

TEST_F(TracerTest, SpanCapDropsAndCounts) {
  auto& dropped_metric = Registry::global().counter("obs.trace.spans_dropped");
  const std::uint64_t metric_before = dropped_metric.value();
  tracer().set_max_spans(3);
  EXPECT_EQ(tracer().max_spans(), 3u);

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(tracer().begin_span("soak", "test", i));
  }
  // First three recorded; the two past the cap were refused with id 0
  // (no id consumed, so a capped run's surviving ids match an uncapped
  // prefix) and counted both locally and in the global registry.
  EXPECT_EQ(tracer().span_count(), 3u);
  EXPECT_NE(ids[2], 0u);
  EXPECT_EQ(ids[3], 0u);
  EXPECT_EQ(ids[4], 0u);
  EXPECT_EQ(tracer().dropped_spans(), 2u);
  EXPECT_EQ(dropped_metric.value(), metric_before + 2);

  // end_span on a refused id is a harmless no-op.
  tracer().end_span(ids[3], 99);
  EXPECT_EQ(tracer().span_count(), 3u);

  // clear() frees the buffer and re-arms the cap for the next soak.
  tracer().clear();
  EXPECT_EQ(tracer().dropped_spans(), 0u);
  EXPECT_NE(tracer().begin_span("fresh", "test", 0), 0u);
  tracer().set_max_spans(Tracer::kDefaultMaxSpans);
}

TEST_F(TracerTest, UnboundedCapRecordsEverything) {
  tracer().set_max_spans(0);
  for (int i = 0; i < 64; ++i) tracer().begin_span("s", "test", i);
  EXPECT_EQ(tracer().span_count(), 64u);
  EXPECT_EQ(tracer().dropped_spans(), 0u);
  tracer().set_max_spans(Tracer::kDefaultMaxSpans);
}

}  // namespace
}  // namespace hcm::obs
