// TimeSeriesRecorder unit tests: grid placement and idempotent
// sampling, ring aging with tier fallback, histogram flattening, the
// series cap, scheduler-mode exact-grid sampling, and the dump /
// getSeries export shapes hcm_top consumes.
#include "obs/timeseries.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"

namespace hcm::obs {
namespace {

TimeSeriesOptions small_options(std::vector<std::string> prefixes) {
  TimeSeriesOptions o;
  o.tiers = {{sim::seconds(1), 4}, {sim::seconds(10), 4}};
  o.prefixes = std::move(prefixes);
  return o;
}

TEST(TimeSeriesTest, SamplesLandOnTheGrid) {
  TimeSeriesRecorder rec(small_options({"tstest.grid."}));
  auto& c = Registry::global().counter("tstest.grid.c");
  c.inc(5);
  rec.sample_until(sim::seconds(1));  // grid point t=1s only
  EXPECT_EQ(rec.samples_taken(), 1u);
  EXPECT_EQ(rec.last_sample_time(), sim::seconds(1));
  ASSERT_TRUE(rec.latest("tstest.grid.c").has_value());
  EXPECT_EQ(*rec.latest("tstest.grid.c"), 5);

  // Re-sampling the same instant is a no-op; later points see the
  // value current at sampling time (barrier semantics).
  rec.sample_until(sim::seconds(1));
  EXPECT_EQ(rec.samples_taken(), 1u);
  c.inc(5);
  rec.sample_until(sim::seconds(3));  // emits t=2s and t=3s
  EXPECT_EQ(rec.samples_taken(), 3u);
  EXPECT_EQ(*rec.value_at("tstest.grid.c", sim::seconds(1)), 5);
  EXPECT_EQ(*rec.value_at("tstest.grid.c", sim::seconds(2)), 10);
  EXPECT_EQ(*rec.value_at("tstest.grid.c", sim::seconds(3)), 10);
}

TEST(TimeSeriesTest, RingsAgeOutAndFallToCoarserTiers) {
  TimeSeriesRecorder rec(small_options({"tstest.age."}));
  auto& g = Registry::global().gauge("tstest.age.g");
  for (int t = 1; t <= 10; ++t) {
    g.set(t);
    rec.sample_until(sim::seconds(t));
  }
  // Fine tier capacity 4: t=7..10s retained, t=5s aged out.
  EXPECT_EQ(*rec.value_at("tstest.age.g", sim::seconds(10)), 10);
  EXPECT_EQ(*rec.value_at("tstest.age.g", sim::seconds(7)), 7);
  EXPECT_FALSE(rec.value_at("tstest.age.g", sim::seconds(5)).has_value());
  // The 10s tier recorded its first grid point at t=10s, so history at
  // exactly 10s survives however far the fine ring advances.
  for (int t = 11; t <= 20; ++t) rec.sample_until(sim::seconds(t));
  EXPECT_EQ(*rec.value_at("tstest.age.g", sim::seconds(10)), 10);
}

TEST(TimeSeriesTest, HistogramsFlattenIntoFieldSeries) {
  TimeSeriesRecorder rec(small_options({"tstest.hist."}));
  auto& h = Registry::global().histogram("tstest.hist.lat_us");
  for (int i = 0; i < 90; ++i) h.observe(80);
  for (int i = 0; i < 10; ++i) h.observe(9000);
  rec.sample_until(sim::seconds(1));
  ASSERT_TRUE(rec.latest("tstest.hist.lat_us.count").has_value());
  EXPECT_EQ(*rec.latest("tstest.hist.lat_us.count"), 100);
  EXPECT_TRUE(rec.latest("tstest.hist.lat_us.p99").has_value());
  EXPECT_TRUE(rec.latest("tstest.hist.lat_us.max").has_value());
  EXPECT_EQ(*rec.latest("tstest.hist.lat_us.max"), 9000);
}

TEST(TimeSeriesTest, MaxSeriesCapRefusesStickily) {
  TimeSeriesOptions o = small_options({"tstest.cap."});
  o.max_series = 1;
  TimeSeriesRecorder rec(o);
  Registry::global().counter("tstest.cap.a").inc();
  Registry::global().counter("tstest.cap.b").inc();
  rec.sample_until(sim::seconds(1));
  // Sorted admission: "a" wins the only slot, "b" is refused and
  // counted once however often it reappears.
  rec.sample_until(sim::seconds(2));
  EXPECT_EQ(rec.series_count(), 1u);
  EXPECT_EQ(rec.dropped_series(), 1u);
  EXPECT_TRUE(rec.latest("tstest.cap.a").has_value());
  EXPECT_FALSE(rec.latest("tstest.cap.b").has_value());
}

TEST(TimeSeriesTest, SchedulerModeSamplesExactGridAndInjectsProgress) {
  sim::Scheduler sched;
  auto& c = Registry::global().counter("tstest.sched.c");
  sched.after(sim::milliseconds(500), [&] { c.inc(); });
  sched.after(sim::milliseconds(1500), [&] { c.inc(); });
  TimeSeriesRecorder rec(small_options({"tstest.sched."}));
  rec.attach(sched);
  sched.run_for(sim::seconds(3));
  rec.detach();
  EXPECT_EQ(*rec.value_at("tstest.sched.c", sim::seconds(1)), 1);
  EXPECT_EQ(*rec.value_at("tstest.sched.c", sim::seconds(2)), 2);
  // Scheduler-mode runs record the legacy progress series.
  EXPECT_TRUE(rec.latest("sim.events").has_value());
  EXPECT_GT(*rec.latest("sim.events"), 0);
}

TEST(TimeSeriesTest, DumpAndGetSeriesShapes) {
  TimeSeriesRecorder rec(small_options({"tstest.dump."}));
  auto& c = Registry::global().counter("tstest.dump.c");
  for (int t = 1; t <= 3; ++t) {
    c.inc();
    rec.sample_until(sim::seconds(t));
  }

  const Value dump = rec.dump();
  ASSERT_TRUE(dump.is_map());
  EXPECT_EQ(dump.at("format").as_string(), "hcm-series-v1");
  EXPECT_EQ(dump.at("now_us").as_int(), sim::seconds(3));
  EXPECT_EQ(dump.at("hash").as_string().substr(0, 2), "0x");
  const Value& per_tier = dump.at("series").at("tstest.dump.c");
  ASSERT_TRUE(per_tier.is_list());
  const Value& finest = per_tier.as_list().front();
  EXPECT_EQ(finest.at("period_us").as_int(), sim::seconds(1));
  EXPECT_EQ(finest.at("t0_us").as_int(), sim::seconds(1));
  EXPECT_EQ(finest.at("values").as_list().size(), 3u);

  // getSeries: 2s window fits the fine tier; values oldest-first.
  const Value reply = rec.to_value("tstest.dump.", sim::seconds(2));
  EXPECT_EQ(reply.at("period_us").as_int(), sim::seconds(1));
  const Value& entry = reply.at("series").at("tstest.dump.c");
  const ValueList& vs = entry.at("values").as_list();
  ASSERT_GE(vs.size(), 2u);
  EXPECT_EQ(vs.back().as_int(), 3);

  // The dump is valid JSON and survives a round-trip (hcm_top's diet).
  auto back = json_parse(json_write(dump));
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(json_write(back.value()), json_write(dump));
}

TEST(TimeSeriesTest, SeriesHashCoversValues) {
  TimeSeriesOptions o = small_options({"tstest.hash."});
  TimeSeriesRecorder a(o);
  auto& c = Registry::global().counter("tstest.hash.c");
  a.sample_until(sim::seconds(1));
  const std::uint64_t h1 = a.series_hash();
  c.inc();
  a.sample_until(sim::seconds(2));
  const std::uint64_t h2 = a.series_hash();
  EXPECT_NE(h1, h2);
}

}  // namespace
}  // namespace hcm::obs
