// HealthMonitor tests: glob matching, the declarative rule grammar,
// and the value/rate/absent state machines driven through a real
// TimeSeriesRecorder (transitions, grace windows, offender reporting,
// the getHealth payload shape).
#include "obs/health.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"

namespace hcm::obs {
namespace {

TEST(GlobMatchTest, StarMatchesAnyRun) {
  EXPECT_TRUE(glob_match("events.*.dropped", "events.jini.dropped"));
  EXPECT_TRUE(glob_match("events.*.dropped", "events..dropped"));
  EXPECT_TRUE(glob_match("*", "anything.at.all"));
  EXPECT_TRUE(glob_match("vsg.*.op.*_us.p99", "vsg.x10.op.dim_us.p99"));
  EXPECT_FALSE(glob_match("events.*.dropped", "events.jini.routed"));
  EXPECT_FALSE(glob_match("a*b*c", "a-c-b"));
  EXPECT_TRUE(glob_match("a*b*c", "a-b-b-c"));
  EXPECT_FALSE(glob_match("abc", "abcd"));
}

TEST(HealthRuleTest, ParsesTheDocumentedGrammar) {
  auto r = HealthMonitor::parse_rule(
      "drops: rate(events.*.dropped, window=10s) > 0.5");
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(r.value().name, "drops");
  EXPECT_EQ(r.value().metric, "events.*.dropped");
  EXPECT_EQ(r.value().kind, HealthRule::Kind::kRate);
  EXPECT_EQ(r.value().op, HealthRule::Op::kGt);
  EXPECT_DOUBLE_EQ(r.value().threshold, 0.5);
  EXPECT_EQ(r.value().window, sim::seconds(10));

  auto v = HealthMonitor::parse_rule("p99: value(vsg.*_us.p99) >= 50000");
  ASSERT_TRUE(v.is_ok());
  EXPECT_EQ(v.value().kind, HealthRule::Kind::kValue);
  EXPECT_EQ(v.value().op, HealthRule::Op::kGe);

  auto a = HealthMonitor::parse_rule("stale: absent(vsr.*, window=500ms)");
  ASSERT_TRUE(a.is_ok());
  EXPECT_EQ(a.value().kind, HealthRule::Kind::kAbsent);
  EXPECT_EQ(a.value().window, sim::milliseconds(500));
}

TEST(HealthRuleTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(HealthMonitor::parse_rule("no-colon value(x) > 1").is_ok());
  EXPECT_FALSE(HealthMonitor::parse_rule("r: ratio(x) > 1").is_ok());
  EXPECT_FALSE(HealthMonitor::parse_rule("r: value() > 1").is_ok());
  EXPECT_FALSE(HealthMonitor::parse_rule("r: value(x) 1").is_ok());
  EXPECT_FALSE(HealthMonitor::parse_rule("r: value(x) > banana").is_ok());
  EXPECT_FALSE(
      HealthMonitor::parse_rule("r: rate(x, windows=1s) > 1").is_ok());
  EXPECT_FALSE(HealthMonitor::parse_rule("r: absent(x) > 1").is_ok());
}

TimeSeriesOptions one_second_tier(std::string prefix) {
  TimeSeriesOptions o;
  o.tiers = {{sim::seconds(1), 32}};
  o.prefixes = {std::move(prefix)};
  return o;
}

TEST(HealthMonitorTest, ValueRuleTransitionsAndReportsOffender) {
  TimeSeriesRecorder rec(one_second_tier("healthtest.v."));
  HealthMonitor mon;
  ASSERT_TRUE(mon.add_rule_spec("hot: value(healthtest.v.*) > 50").is_ok());
  rec.set_health(&mon);
  std::vector<HealthTransition> seen;
  mon.set_transition_fn(
      [&](const HealthTransition& tr) { seen.push_back(tr); });

  EXPECT_EQ(mon.overall(), HealthState::kUnknown);
  auto& g = Registry::global().gauge("healthtest.v.temp");
  g.set(10);
  rec.sample_until(sim::seconds(1));
  EXPECT_EQ(mon.rule_state("hot"), HealthState::kOk);
  EXPECT_EQ(mon.overall(), HealthState::kOk);

  g.set(90);
  rec.sample_until(sim::seconds(2));
  EXPECT_EQ(mon.rule_state("hot"), HealthState::kBreach);
  EXPECT_EQ(mon.overall(), HealthState::kBreach);

  g.set(20);
  rec.sample_until(sim::seconds(3));
  EXPECT_EQ(mon.rule_state("hot"), HealthState::kOk);

  ASSERT_EQ(seen.size(), 3u);  // unknown->ok, ok->breach, breach->ok
  EXPECT_EQ(seen[1].rule, "hot");
  EXPECT_EQ(seen[1].to, HealthState::kBreach);
  EXPECT_EQ(seen[1].series, "healthtest.v.temp");
  EXPECT_DOUBLE_EQ(seen[1].value, 90.0);
  EXPECT_EQ(seen[1].when, sim::seconds(2));
  EXPECT_EQ(mon.transitions(), 3u);
}

TEST(HealthMonitorTest, RateRuleWaitsForAWindowOfHistory) {
  TimeSeriesRecorder rec(one_second_tier("healthtest.r."));
  HealthMonitor mon;
  ASSERT_TRUE(
      mon.add_rule_spec("surge: rate(healthtest.r.c, window=2s) > 1.5")
          .is_ok());
  rec.set_health(&mon);

  auto& c = Registry::global().counter("healthtest.r.c");
  for (int t = 1; t <= 2; ++t) {
    c.inc(2);  // 2 events per virtual second
    rec.sample_until(sim::seconds(t));
    EXPECT_EQ(mon.rule_state("surge"), HealthState::kUnknown)
        << "no full window at t=" << t;
  }
  c.inc(2);
  rec.sample_until(sim::seconds(3));  // rate = (6-2)/2s = 2/s
  EXPECT_EQ(mon.rule_state("surge"), HealthState::kBreach);

  rec.sample_until(sim::seconds(5));  // flat: rate = 0
  EXPECT_EQ(mon.rule_state("surge"), HealthState::kOk);
}

TEST(HealthMonitorTest, AbsentRuleCatchesMissingAndStalledSeries) {
  TimeSeriesRecorder rec(one_second_tier("healthtest.a."));
  HealthMonitor mon;
  ASSERT_TRUE(
      mon.add_rule_spec("live: absent(healthtest.a.*, window=2s)").is_ok());
  rec.set_health(&mon);

  // Nothing matches: grace until one window has elapsed, then breach.
  rec.sample_until(sim::seconds(1));
  EXPECT_EQ(mon.rule_state("live"), HealthState::kUnknown);
  rec.sample_until(sim::seconds(2));
  EXPECT_EQ(mon.rule_state("live"), HealthState::kBreach);

  // A progressing series clears it...
  auto& c = Registry::global().counter("healthtest.a.beat");
  for (int t = 3; t <= 6; ++t) {
    c.inc();
    rec.sample_until(sim::seconds(t));
  }
  EXPECT_EQ(mon.rule_state("live"), HealthState::kOk);

  // ...and a stall (no delta over the window) re-breaches.
  rec.sample_until(sim::seconds(9));
  EXPECT_EQ(mon.rule_state("live"), HealthState::kBreach);
}

TEST(HealthMonitorTest, ToValueCarriesRulesAndRecent) {
  TimeSeriesRecorder rec(one_second_tier("healthtest.p."));
  HealthMonitor mon;
  ASSERT_TRUE(mon.add_rule_spec("r1: value(healthtest.p.*) > 5").is_ok());
  rec.set_health(&mon);
  Registry::global().gauge("healthtest.p.g").set(9);
  rec.sample_until(sim::seconds(1));

  const Value v = mon.to_value();
  ASSERT_TRUE(v.is_map());
  EXPECT_EQ(v.at("state").as_string(), "breach");
  const Value& rule = v.at("rules").at("r1");
  EXPECT_EQ(rule.at("state").as_string(), "breach");
  EXPECT_EQ(rule.at("metric").as_string(), "healthtest.p.*");
  EXPECT_EQ(rule.at("series").as_string(), "healthtest.p.g");
  ASSERT_TRUE(v.at("recent").is_list());
  ASSERT_FALSE(v.at("recent").as_list().empty());
  const Value& tr = v.at("recent").as_list().back();
  EXPECT_EQ(tr.at("rule").as_string(), "r1");
  EXPECT_EQ(tr.at("to").as_string(), "breach");
}

}  // namespace
}  // namespace hcm::obs
