#include "soap/wsdl.hpp"

#include <gtest/gtest.h>

#include "xml/xml.hpp"

namespace hcm::soap {
namespace {

InterfaceDesc vcr_interface() {
  return InterfaceDesc{
      "VcrControl",
      {
          MethodDesc{"play", {}, ValueType::kBool, false},
          MethodDesc{"record",
                     {{"channel", ValueType::kInt},
                      {"durationMinutes", ValueType::kInt}},
                     ValueType::kBool,
                     false},
          MethodDesc{"status", {}, ValueType::kMap, false},
          MethodDesc{"powerEvent", {{"on", ValueType::kBool}},
                     ValueType::kNull, true},
      }};
}

TEST(WsdlTest, EmitParseRoundTrip) {
  auto iface = vcr_interface();
  Uri endpoint{"http", "havi-gw", 8080, "/vsg/vcr-1"};
  auto text = emit_wsdl(iface, "vcr-1", endpoint);
  auto doc = parse_wsdl(text);
  ASSERT_TRUE(doc.is_ok()) << doc.status().to_string();
  EXPECT_EQ(doc.value().interface, iface);
  EXPECT_EQ(doc.value().service_name, "vcr-1");
  EXPECT_EQ(doc.value().endpoint, endpoint);
}

TEST(WsdlTest, OneWayOperationHasNoOutput) {
  auto text = emit_wsdl(vcr_interface(), "vcr-1",
                        Uri{"http", "h", 1, "/"});
  auto doc = parse_wsdl(text);
  ASSERT_TRUE(doc.is_ok());
  const auto* m = doc.value().interface.find_method("powerEvent");
  ASSERT_NE(m, nullptr);
  EXPECT_TRUE(m->one_way);
  EXPECT_FALSE(doc.value().interface.find_method("play")->one_way);
}

TEST(WsdlTest, ParamTypesPreserved) {
  InterfaceDesc iface{
      "Types",
      {MethodDesc{"m",
                  {{"b", ValueType::kBool},
                   {"i", ValueType::kInt},
                   {"d", ValueType::kDouble},
                   {"s", ValueType::kString},
                   {"y", ValueType::kBytes},
                   {"l", ValueType::kList},
                   {"m", ValueType::kMap}},
                  ValueType::kList,
                  false}}};
  auto doc = parse_wsdl(emit_wsdl(iface, "t", Uri{"http", "h", 1, "/"}));
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc.value().interface, iface);
}

TEST(WsdlTest, DocumentIsValidXml) {
  auto text = emit_wsdl(vcr_interface(), "vcr-1", Uri{"http", "h", 1, "/"});
  EXPECT_TRUE(xml::parse(text).is_ok());
  EXPECT_NE(text.find("wsdl:definitions"), std::string::npos);
  EXPECT_NE(text.find("soap:address"), std::string::npos);
}

TEST(WsdlTest, RejectsNonWsdl) {
  EXPECT_FALSE(parse_wsdl("<x/>").is_ok());
  EXPECT_FALSE(parse_wsdl("junk").is_ok());
}

TEST(WsdlTest, RejectsMissingPortType) {
  EXPECT_FALSE(
      parse_wsdl("<definitions name=\"X\"></definitions>").is_ok());
}

TEST(WsdlTest, EmptyInterface) {
  InterfaceDesc iface{"Empty", {}};
  auto doc = parse_wsdl(emit_wsdl(iface, "e", Uri{"http", "h", 1, "/"}));
  ASSERT_TRUE(doc.is_ok());
  EXPECT_TRUE(doc.value().interface.methods.empty());
}

TEST(WsdlTest, EventsRoundTripThroughSecondPortType) {
  auto iface = vcr_interface();
  iface.events.push_back(MethodDesc{"transportChanged",
                                    {{"state", ValueType::kString}},
                                    ValueType::kNull,
                                    true});
  iface.events.push_back(MethodDesc{
      "counterTick", {{"frames", ValueType::kInt}}, ValueType::kNull, true});
  auto text = emit_wsdl(iface, "vcr-1", Uri{"http", "h", 1, "/"});
  EXPECT_NE(text.find("VcrControlEventsPortType"), std::string::npos);
  auto doc = parse_wsdl(text);
  ASSERT_TRUE(doc.is_ok()) << doc.status().to_string();
  EXPECT_EQ(doc.value().interface, iface);
  ASSERT_EQ(doc.value().interface.events.size(), 2u);
  const auto* e = doc.value().interface.find_event("transportChanged");
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->one_way);
  EXPECT_EQ(e->return_type, ValueType::kNull);
  // Events stay out of the method list and vice versa.
  EXPECT_EQ(doc.value().interface.find_method("transportChanged"), nullptr);
  EXPECT_EQ(doc.value().interface.find_event("play"), nullptr);
}

TEST(WsdlTest, NoEventsPortTypeWhenInterfaceHasNoEvents) {
  auto text = emit_wsdl(vcr_interface(), "vcr-1", Uri{"http", "h", 1, "/"});
  EXPECT_EQ(text.find("EventsPortType"), std::string::npos);
  auto doc = parse_wsdl(text);
  ASSERT_TRUE(doc.is_ok());
  EXPECT_TRUE(doc.value().interface.events.empty());
}

}  // namespace
}  // namespace hcm::soap
