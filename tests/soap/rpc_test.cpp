#include "soap/rpc.hpp"

#include <gtest/gtest.h>

namespace hcm::soap {
namespace {

class SoapRpcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_node = &net.add_node("soap-server");
    client_node = &net.add_node("soap-client");
    auto& eth = net.add_ethernet("lan", sim::microseconds(200), 100'000'000);
    net.attach(*server_node, eth);
    net.attach(*client_node, eth);
    http_server = std::make_unique<http::HttpServer>(net, server_node->id(), 80);
    ASSERT_TRUE(http_server->start().is_ok());
    service = std::make_unique<SoapService>(*http_server, "/svc");
  }

  Result<Value> do_call(const std::string& method, const NamedValues& params) {
    SoapClient client(net, client_node->id());
    std::optional<Result<Value>> result;
    client.call({server_node->id(), 80}, "/svc", "urn:test", method, params,
                [&](Result<Value> r) { result = std::move(r); });
    sched.run();
    EXPECT_TRUE(result.has_value());
    return result.value_or(internal_error("no result"));
  }

  sim::Scheduler sched;
  net::Network net{sched};
  net::Node* server_node = nullptr;
  net::Node* client_node = nullptr;
  std::unique_ptr<http::HttpServer> http_server;
  std::unique_ptr<SoapService> service;
};

TEST_F(SoapRpcTest, EchoCall) {
  service->register_method("echo",
                           [](const NamedValues& params, CallResultFn done) {
                             done(params.empty() ? Value() : params[0].second);
                           });
  auto r = do_call("echo", {{"v", Value("marco")}});
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(r.value(), Value("marco"));
}

TEST_F(SoapRpcTest, AddCall) {
  service->register_method("add", [](const NamedValues& params,
                                     CallResultFn done) {
    std::int64_t sum = 0;
    for (const auto& [k, v] : params) sum += v.as_int();
    done(Value(sum));
  });
  auto r = do_call("add", {{"a", Value(2)}, {"b", Value(40)}});
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), Value(42));
}

TEST_F(SoapRpcTest, UnknownMethodFaults) {
  auto r = do_call("nope", {});
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(SoapRpcTest, HandlerErrorPropagatesAsFault) {
  service->register_method("fail",
                           [](const NamedValues&, CallResultFn done) {
                             done(unavailable("device offline"));
                           });
  auto r = do_call("fail", {});
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(r.status().message(), "device offline");
}

TEST_F(SoapRpcTest, AsyncHandler) {
  service->register_method("slow", [this](const NamedValues&,
                                          CallResultFn done) {
    sched.after(sim::seconds(1), [done] { done(Value("done")); });
  });
  sim::SimTime start = sched.now();
  auto r = do_call("slow", {});
  ASSERT_TRUE(r.is_ok());
  EXPECT_GE(sched.now() - start, sim::seconds(1));
}

TEST_F(SoapRpcTest, GetRejected) {
  http::HttpClient raw(net, client_node->id());
  std::optional<Result<http::Response>> result;
  http::Request req;
  req.method = "GET";
  req.target = "/svc";
  raw.request({server_node->id(), 80}, std::move(req),
              [&](Result<http::Response> r) { result = std::move(r); });
  sched.run();
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->is_ok());
  EXPECT_EQ(result->value().status, 405);
}

TEST_F(SoapRpcTest, MalformedEnvelopeRejected) {
  http::HttpClient raw(net, client_node->id());
  std::optional<Result<http::Response>> result;
  http::Request req;
  req.method = "POST";
  req.target = "/svc";
  req.body = "this is not xml";
  raw.request({server_node->id(), 80}, std::move(req),
              [&](Result<http::Response> r) { result = std::move(r); });
  sched.run();
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->is_ok());
  EXPECT_EQ(result->value().status, 400);
}

TEST_F(SoapRpcTest, UnregisterMethodRemoves) {
  service->register_method("temp", [](const NamedValues&, CallResultFn done) {
    done(Value(1));
  });
  EXPECT_TRUE(service->has_method("temp"));
  ASSERT_TRUE(do_call("temp", {}).is_ok());
  service->unregister_method("temp");
  EXPECT_FALSE(service->has_method("temp"));
  EXPECT_FALSE(do_call("temp", {}).is_ok());
}

TEST_F(SoapRpcTest, TwoServicesOnOneHttpServer) {
  SoapService other(*http_server, "/other");
  service->register_method("who", [](const NamedValues&, CallResultFn done) {
    done(Value("svc"));
  });
  other.register_method("who", [](const NamedValues&, CallResultFn done) {
    done(Value("other"));
  });
  SoapClient client(net, client_node->id());
  std::string got_svc, got_other;
  client.call({server_node->id(), 80}, "/svc", "urn:t", "who", {},
              [&](Result<Value> r) { got_svc = r.value().as_string(); });
  client.call({server_node->id(), 80}, "/other", "urn:t", "who", {},
              [&](Result<Value> r) { got_other = r.value().as_string(); });
  sched.run();
  EXPECT_EQ(got_svc, "svc");
  EXPECT_EQ(got_other, "other");
}

TEST_F(SoapRpcTest, CallCounters) {
  service->register_method("c", [](const NamedValues&, CallResultFn done) {
    done(Value(1));
  });
  do_call("c", {});
  do_call("c", {});
  EXPECT_EQ(service->calls_handled(), 2u);
}

TEST_F(SoapRpcTest, UnreachableServerSurfacesError) {
  SoapClient client(net, client_node->id());
  std::optional<Result<Value>> result;
  server_node->set_up(false);
  client.call({server_node->id(), 80}, "/svc", "urn:t", "x", {},
              [&](Result<Value> r) { result = std::move(r); });
  sched.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->is_ok());
}

}  // namespace
}  // namespace hcm::soap
