// Delta-synchronization behaviours of the UDDI registry: the change
// journal (publish/unpublish/lease-expiry all journaled), digest-based
// lease renewal, journal compaction forcing resync, registry restarts
// surfacing as fresh epochs, and WSDL body elision against the client's
// digest cache.
#include <gtest/gtest.h>

#include "soap/uddi.hpp"

namespace hcm::soap {
namespace {

class UddiDeltaTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kJournalCapacity = 4;

  void SetUp() override {
    registry_node = &net.add_node("vsr");
    island_node = &net.add_node("jini-gw");
    auto& eth =
        net.add_ethernet("backbone", sim::microseconds(500), 10'000'000);
    net.attach(*registry_node, eth);
    net.attach(*island_node, eth);
    http_server =
        std::make_unique<http::HttpServer>(net, registry_node->id(), 80);
    ASSERT_TRUE(http_server->start().is_ok());
    registry = std::make_unique<UddiRegistry>(*http_server, sched, "/uddi",
                                              kJournalCapacity);
    client = std::make_unique<UddiClient>(
        net, island_node->id(), net::Endpoint{registry_node->id(), 80});
  }

  // Simulates the registry host crashing and coming back empty: the new
  // incarnation gets a fresh epoch, so surviving client cursors are
  // detectably stale.
  void restart_registry() {
    registry.reset();
    registry = std::make_unique<UddiRegistry>(*http_server, sched, "/uddi",
                                              kJournalCapacity);
  }

  Status publish(const std::string& name, const std::string& category,
                 sim::Duration ttl = 0) {
    RegistryEntry e;
    e.name = name;
    e.category = category;
    e.origin = "jini-island";
    e.wsdl = wsdl_for(category);
    std::optional<Status> result;
    client->publish(e, ttl, [&](const Status& s) { result = s; });
    sched.run();
    EXPECT_TRUE(result.has_value());
    return result.value_or(internal_error("no result"));
  }

  static std::string wsdl_for(const std::string& category) {
    return "<definitions name=\"" + category + "\"/>";
  }

  Result<RegistryDelta> sync() {
    std::optional<Result<RegistryDelta>> out;
    client->changes_since([&](Result<RegistryDelta> r) { out = std::move(r); });
    sched.run();
    EXPECT_TRUE(out.has_value());
    return out.value_or(internal_error("no result"));
  }

  sim::Scheduler sched;
  net::Network net{sched};
  net::Node* registry_node = nullptr;
  net::Node* island_node = nullptr;
  std::unique_ptr<http::HttpServer> http_server;
  std::unique_ptr<UddiRegistry> registry;
  std::unique_ptr<UddiClient> client;
};

TEST_F(UddiDeltaTest, FirstSyncIsFullSnapshot) {
  ASSERT_TRUE(publish("vcr-1", "VcrControl").is_ok());
  ASSERT_TRUE(publish("lamp-1", "Switchable").is_ok());

  auto delta = sync();
  ASSERT_TRUE(delta.is_ok()) << delta.status().to_string();
  EXPECT_TRUE(delta.value().full);
  ASSERT_EQ(delta.value().changes.size(), 2u);
  for (const auto& c : delta.value().changes) {
    EXPECT_EQ(c.kind, RegistryChange::Kind::kUpsert);
    EXPECT_FALSE(c.wsdl.empty());
    EXPECT_EQ(c.digest, wsdl_digest(c.wsdl));
  }
  EXPECT_EQ(registry->full_syncs(), 1u);
  EXPECT_EQ(client->epoch(), registry->epoch());
  EXPECT_EQ(client->cursor(), registry->latest_seq());
}

TEST_F(UddiDeltaTest, SteadyStateDeltaIsEmpty) {
  ASSERT_TRUE(publish("vcr-1", "VcrControl").is_ok());
  ASSERT_TRUE(sync().is_ok());

  auto delta = sync();
  ASSERT_TRUE(delta.is_ok());
  EXPECT_FALSE(delta.value().full);
  EXPECT_TRUE(delta.value().changes.empty());
  EXPECT_EQ(registry->delta_syncs(), 1u);
}

TEST_F(UddiDeltaTest, DeltaCarriesOnlyTouchedEntries) {
  ASSERT_TRUE(publish("vcr-1", "VcrControl").is_ok());
  ASSERT_TRUE(publish("lamp-1", "Switchable").is_ok());
  ASSERT_TRUE(sync().is_ok());

  ASSERT_TRUE(publish("fan-1", "Switchable").is_ok());
  auto delta = sync();
  ASSERT_TRUE(delta.is_ok());
  EXPECT_FALSE(delta.value().full);
  ASSERT_EQ(delta.value().changes.size(), 1u);
  EXPECT_EQ(delta.value().changes[0].name, "fan-1");
  EXPECT_EQ(delta.value().changes[0].kind, RegistryChange::Kind::kUpsert);
}

TEST_F(UddiDeltaTest, LeaseExpiryIsJournaledAsRemove) {
  ASSERT_TRUE(publish("vcr-1", "VcrControl", sim::seconds(10)).is_ok());
  ASSERT_TRUE(sync().is_ok());

  sched.run_for(sim::seconds(11));
  auto delta = sync();
  ASSERT_TRUE(delta.is_ok());
  EXPECT_FALSE(delta.value().full);
  ASSERT_EQ(delta.value().changes.size(), 1u);
  EXPECT_EQ(delta.value().changes[0].kind, RegistryChange::Kind::kRemove);
  EXPECT_EQ(delta.value().changes[0].name, "vcr-1");
}

TEST_F(UddiDeltaTest, UnchangedRepublishIsRenewalNotChange) {
  ASSERT_TRUE(publish("vcr-1", "VcrControl", sim::seconds(60)).is_ok());
  ASSERT_TRUE(sync().is_ok());

  // Same name, same content, lease still live: a lease renewal. No
  // journal record, so synchronizing clients see nothing.
  sched.run_for(sim::seconds(30));
  ASSERT_TRUE(publish("vcr-1", "VcrControl", sim::seconds(60)).is_ok());
  EXPECT_EQ(registry->renewals(), 1u);
  auto delta = sync();
  ASSERT_TRUE(delta.is_ok());
  EXPECT_TRUE(delta.value().changes.empty());

  // And the renewed lease holds past the original expiry.
  sched.run_for(sim::seconds(45));
  EXPECT_EQ(registry->size(), 1u);
}

TEST_F(UddiDeltaTest, RenewByDigestKeepsEntryAliveWithoutBody) {
  ASSERT_TRUE(publish("vcr-1", "VcrControl", sim::seconds(10)).is_ok());
  const std::string digest = wsdl_digest(wsdl_for("VcrControl"));

  sched.run_for(sim::seconds(5));
  std::optional<Status> renewed;
  client->renew("vcr-1", digest, sim::seconds(10),
                [&](const Status& s) { renewed = s; });
  sched.run();
  ASSERT_TRUE(renewed.has_value());
  EXPECT_TRUE(renewed->is_ok()) << renewed->to_string();

  sched.run_for(sim::seconds(8));  // past the original expiry
  EXPECT_EQ(registry->size(), 1u);
}

TEST_F(UddiDeltaTest, RenewWithStaleDigestIsRefused) {
  ASSERT_TRUE(publish("vcr-1", "VcrControl", sim::seconds(10)).is_ok());
  std::optional<Status> renewed;
  client->renew("vcr-1", wsdl_digest("<other/>"), sim::seconds(10),
                [&](const Status& s) { renewed = s; });
  sched.run();
  ASSERT_TRUE(renewed.has_value());
  EXPECT_EQ(renewed->code(), StatusCode::kInvalidArgument);
}

TEST_F(UddiDeltaTest, RenewOriginBulkRenewsWithMatchingFingerprint) {
  ASSERT_TRUE(publish("vcr-1", "VcrControl", sim::seconds(10)).is_ok());
  ASSERT_TRUE(publish("lamp-1", "Switchable", sim::seconds(10)).is_ok());
  std::map<std::string, std::string> digests{
      {"vcr-1", wsdl_digest(wsdl_for("VcrControl"))},
      {"lamp-1", wsdl_digest(wsdl_for("Switchable"))}};

  std::optional<Status> renewed;
  client->renew_origin("jini-island", registry_fingerprint(digests),
                       sim::seconds(30),
                       [&](const Status& s) { renewed = s; });
  sched.run();
  ASSERT_TRUE(renewed.has_value());
  EXPECT_TRUE(renewed->is_ok()) << renewed->to_string();

  sched.run_for(sim::seconds(20));  // both original leases would be gone
  EXPECT_EQ(registry->size(), 2u);

  // A fingerprint over a diverged set is refused; unknown origins are
  // not found (both make the PCM fall back to a full republish).
  digests.erase("lamp-1");
  std::optional<Status> stale;
  client->renew_origin("jini-island", registry_fingerprint(digests),
                       sim::seconds(30), [&](const Status& s) { stale = s; });
  sched.run();
  ASSERT_TRUE(stale.has_value());
  EXPECT_EQ(stale->code(), StatusCode::kInvalidArgument);

  std::optional<Status> ghost;
  client->renew_origin("atlantis", registry_fingerprint(digests),
                       sim::seconds(30), [&](const Status& s) { ghost = s; });
  sched.run();
  ASSERT_TRUE(ghost.has_value());
  EXPECT_EQ(ghost->code(), StatusCode::kNotFound);
}

TEST_F(UddiDeltaTest, JournalStaysBounded) {
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(publish("svc-" + std::to_string(i), "X").is_ok());
  }
  EXPECT_LE(registry->journal_size(), kJournalCapacity);
  EXPECT_GT(registry->compacted_through(), 0u);
}

TEST_F(UddiDeltaTest, CompactionForcesTransparentResync) {
  ASSERT_TRUE(publish("svc-0", "X").is_ok());
  ASSERT_TRUE(sync().is_ok());

  // More changes than the journal holds: the client's cursor falls
  // behind the compaction horizon.
  for (int i = 1; i <= 8; ++i) {
    ASSERT_TRUE(publish("svc-" + std::to_string(i), "X").is_ok());
  }
  auto delta = sync();
  ASSERT_TRUE(delta.is_ok()) << delta.status().to_string();
  // The client fell back to a snapshot internally — callers just see an
  // authoritative full delta.
  EXPECT_TRUE(delta.value().full);
  EXPECT_EQ(delta.value().changes.size(), 9u);
  EXPECT_EQ(registry->resyncs_required(), 1u);
  EXPECT_EQ(registry->full_syncs(), 2u);

  // And the cursor is usable again afterwards.
  auto quiet = sync();
  ASSERT_TRUE(quiet.is_ok());
  EXPECT_FALSE(quiet.value().full);
  EXPECT_TRUE(quiet.value().changes.empty());
}

TEST_F(UddiDeltaTest, RegistryRestartForcesResnapshot) {
  ASSERT_TRUE(publish("vcr-1", "VcrControl").is_ok());
  ASSERT_TRUE(sync().is_ok());
  const auto old_epoch = registry->epoch();

  restart_registry();
  EXPECT_NE(registry->epoch(), old_epoch);
  ASSERT_TRUE(publish("lamp-1", "Switchable").is_ok());

  auto delta = sync();
  ASSERT_TRUE(delta.is_ok()) << delta.status().to_string();
  EXPECT_TRUE(delta.value().full);
  ASSERT_EQ(delta.value().changes.size(), 1u);
  EXPECT_EQ(delta.value().changes[0].name, "lamp-1");
  EXPECT_EQ(client->epoch(), registry->epoch());
}

TEST_F(UddiDeltaTest, ResyncElidesBodiesTheClientAlreadyHolds) {
  ASSERT_TRUE(publish("vcr-1", "VcrControl").is_ok());
  ASSERT_TRUE(sync().is_ok());
  EXPECT_EQ(client->digest_cache_size(), 1u);

  // Restart wipes the registry; the same document is republished, so
  // the digest the client cached is still the live content.
  restart_registry();
  ASSERT_TRUE(publish("vcr-1", "VcrControl").is_ok());

  const auto sent_before = registry->wsdl_bodies_sent();
  auto delta = sync();
  ASSERT_TRUE(delta.is_ok());
  EXPECT_TRUE(delta.value().full);
  ASSERT_EQ(delta.value().changes.size(), 1u);
  // The wire elided the body (client offered its digest), but the
  // delivered change is resolved from the cache.
  EXPECT_EQ(registry->wsdl_bodies_elided(), 1u);
  EXPECT_EQ(registry->wsdl_bodies_sent(), sent_before);
  EXPECT_EQ(delta.value().changes[0].wsdl, wsdl_for("VcrControl"));
}

TEST_F(UddiDeltaTest, FullSyncDropsUnreferencedCacheEntries) {
  ASSERT_TRUE(publish("vcr-1", "VcrControl").is_ok());
  ASSERT_TRUE(publish("lamp-1", "Switchable").is_ok());
  ASSERT_TRUE(sync().is_ok());
  EXPECT_EQ(client->digest_cache_size(), 2u);

  restart_registry();
  ASSERT_TRUE(publish("vcr-1", "VcrControl").is_ok());
  client->reset_cursor();
  auto delta = sync();
  ASSERT_TRUE(delta.is_ok());
  EXPECT_TRUE(delta.value().full);
  // lamp-1's document is no longer referenced by any live entry.
  EXPECT_EQ(client->digest_cache_size(), 1u);
}

}  // namespace
}  // namespace hcm::soap
