// UddiRegistry <-> VsrStore adjacency (ISSUE 7): a store-backed
// registry restart resumes the same {epoch, seq}, so warm UddiClient
// cursors keep delta-syncing with ZERO snapshot fallbacks; a corrupted
// log tail degrades to the ordinary epoch-bump resync instead of
// crashing or serving rolled-back state silently.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <optional>
#include <string>

#include "soap/uddi.hpp"
#include "store/vsr_store.hpp"
#include "tests/store/temp_dir.hpp"

namespace hcm::soap {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

class UddiStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_node = &net.add_node("vsr");
    island_node = &net.add_node("jini-gw");
    auto& eth =
        net.add_ethernet("backbone", sim::microseconds(500), 10'000'000);
    net.attach(*registry_node, eth);
    net.attach(*island_node, eth);
    http_server =
        std::make_unique<http::HttpServer>(net, registry_node->id(), 80);
    ASSERT_TRUE(http_server->start().is_ok());
    start_registry();
    client = std::make_unique<UddiClient>(
        net, island_node->id(), net::Endpoint{registry_node->id(), 80});
  }

  void start_registry() {
    store::VsrStoreOptions opts;
    opts.dir = dir.file("store");
    opts.fsync = store::RecordLog::FsyncPolicy::kNone;  // sim-time tests
    store = std::make_unique<store::VsrStore>(opts);
    ASSERT_TRUE(store->open().is_ok());
    registry = std::make_unique<UddiRegistry>(
        *http_server, sched, "/uddi", UddiRegistry::kDefaultJournalCapacity,
        store.get());
  }

  // The registry host restarting: tear down the registry AND its store
  // handle, then reopen both over the same directory.
  void restart_registry() {
    registry.reset();
    store.reset();
    start_registry();
  }

  Status publish(const std::string& name, const std::string& category) {
    RegistryEntry e;
    e.name = name;
    e.category = category;
    e.origin = "jini-island";
    e.wsdl = "<definitions name=\"" + category + "\"><service name=\"" +
             name + "\"/></definitions>";
    std::optional<Status> result;
    client->publish(e, 0, [&](const Status& s) { result = s; });
    sched.run();
    EXPECT_TRUE(result.has_value());
    return result.value_or(internal_error("no result"));
  }

  Result<RegistryDelta> sync() {
    std::optional<Result<RegistryDelta>> out;
    client->changes_since([&](Result<RegistryDelta> r) { out = std::move(r); });
    sched.run();
    EXPECT_TRUE(out.has_value());
    return out.value_or(internal_error("no result"));
  }

  store::test::TempDir dir;
  sim::Scheduler sched;
  net::Network net{sched};
  net::Node* registry_node = nullptr;
  net::Node* island_node = nullptr;
  std::unique_ptr<http::HttpServer> http_server;
  std::unique_ptr<store::VsrStore> store;
  std::unique_ptr<UddiRegistry> registry;
  std::unique_ptr<UddiClient> client;
};

TEST_F(UddiStoreTest, StoreBackedRestartResumesEpochWithZeroFallbacks) {
  ASSERT_TRUE(registry->store_backed());
  ASSERT_TRUE(publish("vcr-1", "VcrControl").is_ok());
  ASSERT_TRUE(publish("lamp-1", "Switchable").is_ok());
  auto first = sync();
  ASSERT_TRUE(first.is_ok());
  EXPECT_TRUE(first.value().full);  // cold client: one expected snapshot
  EXPECT_EQ(client->full_syncs(), 1u);

  const std::uint64_t epoch_before = registry->epoch();
  const std::uint64_t seq_before = registry->latest_seq();
  restart_registry();

  // Same incarnation, replayed from disk.
  EXPECT_EQ(registry->epoch(), epoch_before);
  EXPECT_EQ(registry->latest_seq(), seq_before);
  EXPECT_EQ(registry->store_recovered_entries(), 2u);
  EXPECT_EQ(registry->size(), 2u);

  // The warm cursor keeps working: the acceptance criterion is ZERO
  // additional snapshot fallbacks across a store-backed restart.
  ASSERT_TRUE(publish("fan-1", "Switchable").is_ok());
  auto delta = sync();
  ASSERT_TRUE(delta.is_ok()) << delta.status().to_string();
  EXPECT_FALSE(delta.value().full);
  ASSERT_EQ(delta.value().changes.size(), 1u);
  EXPECT_EQ(delta.value().changes[0].name, "fan-1");
  EXPECT_EQ(client->full_syncs(), 1u);
  EXPECT_EQ(client->delta_syncs(), 1u);

  // And the recovered entries kept their bodies: lookups resolve.
  std::optional<Result<RegistryEntry>> looked;
  client->lookup("vcr-1", [&](Result<RegistryEntry> r) {
    looked = std::move(r);
  });
  sched.run();
  ASSERT_TRUE(looked.has_value());
  ASSERT_TRUE(looked->is_ok());
  EXPECT_EQ(looked->value().digest, wsdl_digest(looked->value().wsdl));
}

TEST_F(UddiStoreTest, RepeatedRestartsStayOnTheSameEpoch) {
  ASSERT_TRUE(publish("vcr-1", "VcrControl").is_ok());
  ASSERT_TRUE(sync().is_ok());
  const std::uint64_t epoch_before = registry->epoch();
  for (int i = 0; i < 3; ++i) {
    restart_registry();
    EXPECT_EQ(registry->epoch(), epoch_before) << "restart " << i;
    auto delta = sync();
    ASSERT_TRUE(delta.is_ok());
    EXPECT_FALSE(delta.value().full) << "restart " << i;
  }
  EXPECT_EQ(client->full_syncs(), 1u);
}

TEST_F(UddiStoreTest, CorruptedLogTailBumpsEpochAndFallsBackToSnapshot) {
  ASSERT_TRUE(publish("vcr-1", "VcrControl").is_ok());
  ASSERT_TRUE(publish("lamp-1", "Switchable").is_ok());
  ASSERT_TRUE(sync().is_ok());
  const std::uint64_t epoch_before = registry->epoch();

  registry.reset();
  store.reset();
  // Tear 25 bytes off the committed log tail: some acked state is gone,
  // so resuming the old epoch would serve silently rolled-back data.
  const std::string log_path = dir.file("store") + "/log";
  const std::string bytes = read_file(log_path);
  ASSERT_GT(bytes.size(), 25u);
  write_file(log_path, bytes.substr(0, bytes.size() - 25));
  start_registry();

  // Degraded, not dead: the surviving prefix is served under a bumped
  // epoch so warm cursors are detectably stale.
  EXPECT_EQ(registry->epoch(), epoch_before + 1);
  auto delta = sync();
  ASSERT_TRUE(delta.is_ok()) << delta.status().to_string();
  EXPECT_TRUE(delta.value().full);  // ordinary snapshot-fallback resync
  EXPECT_EQ(client->full_syncs(), 2u);
  EXPECT_EQ(client->epoch(), registry->epoch());
}

TEST_F(UddiStoreTest, ResetCursorForcesFreshSnapshot) {
  ASSERT_TRUE(publish("vcr-1", "VcrControl").is_ok());
  ASSERT_TRUE(sync().is_ok());
  ASSERT_NE(client->cursor(), 0u);
  ASSERT_NE(client->epoch(), 0u);

  client->reset_cursor();
  EXPECT_EQ(client->cursor(), 0u);
  EXPECT_EQ(client->epoch(), 0u);
  // The digest cache survives a reset — it is content-addressed.
  EXPECT_GT(client->digest_cache_size(), 0u);

  auto delta = sync();
  ASSERT_TRUE(delta.is_ok());
  EXPECT_TRUE(delta.value().full);
  EXPECT_EQ(client->full_syncs(), 2u);
}

TEST_F(UddiStoreTest, WriteThroughSurvivesUnpublishAndRepublish) {
  ASSERT_TRUE(publish("vcr-1", "VcrControl").is_ok());
  std::optional<Status> removed;
  client->unpublish("vcr-1", [&](const Status& s) { removed = s; });
  sched.run();
  ASSERT_TRUE(removed.has_value());
  ASSERT_TRUE(removed->is_ok());
  ASSERT_TRUE(publish("lamp-1", "Switchable").is_ok());

  restart_registry();
  EXPECT_EQ(registry->size(), 1u);
  EXPECT_EQ(registry->store_recovered_entries(), 1u);
  EXPECT_EQ(registry->store_errors(), 0u);
  std::optional<Result<RegistryEntry>> looked;
  client->lookup("lamp-1", [&](Result<RegistryEntry> r) {
    looked = std::move(r);
  });
  sched.run();
  ASSERT_TRUE(looked.has_value());
  EXPECT_TRUE(looked->is_ok());
}

}  // namespace
}  // namespace hcm::soap
