#include "soap/uddi.hpp"

#include <gtest/gtest.h>

namespace hcm::soap {
namespace {

class UddiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_node = &net.add_node("vsr");
    island_node = &net.add_node("jini-gw");
    auto& eth = net.add_ethernet("backbone", sim::microseconds(500),
                                 10'000'000);
    net.attach(*registry_node, eth);
    net.attach(*island_node, eth);
    http_server =
        std::make_unique<http::HttpServer>(net, registry_node->id(), 80);
    ASSERT_TRUE(http_server->start().is_ok());
    registry = std::make_unique<UddiRegistry>(*http_server, sched);
    client = std::make_unique<UddiClient>(
        net, island_node->id(), net::Endpoint{registry_node->id(), 80});
  }

  Status publish(const std::string& name, const std::string& category,
                 sim::Duration ttl = 0) {
    RegistryEntry e;
    e.name = name;
    e.category = category;
    e.origin = "jini-island";
    e.wsdl = "<definitions name=\"" + category + "\"/>";
    std::optional<Status> result;
    client->publish(e, ttl, [&](const Status& s) { result = s; });
    sched.run();
    EXPECT_TRUE(result.has_value());
    return result.value_or(internal_error("no result"));
  }

  sim::Scheduler sched;
  net::Network net{sched};
  net::Node* registry_node = nullptr;
  net::Node* island_node = nullptr;
  std::unique_ptr<http::HttpServer> http_server;
  std::unique_ptr<UddiRegistry> registry;
  std::unique_ptr<UddiClient> client;
};

TEST_F(UddiTest, PublishAndLookup) {
  ASSERT_TRUE(publish("laserdisc-1", "MediaPlayer").is_ok());
  EXPECT_EQ(registry->size(), 1u);

  std::optional<Result<RegistryEntry>> found;
  client->lookup("laserdisc-1",
                 [&](Result<RegistryEntry> r) { found = std::move(r); });
  sched.run();
  ASSERT_TRUE(found.has_value());
  ASSERT_TRUE(found->is_ok());
  EXPECT_EQ(found->value().category, "MediaPlayer");
  EXPECT_EQ(found->value().origin, "jini-island");
}

TEST_F(UddiTest, LookupMissingIsNotFound) {
  std::optional<Result<RegistryEntry>> found;
  client->lookup("ghost", [&](Result<RegistryEntry> r) { found = std::move(r); });
  sched.run();
  ASSERT_TRUE(found.has_value());
  ASSERT_FALSE(found->is_ok());
  EXPECT_EQ(found->status().code(), StatusCode::kNotFound);
}

TEST_F(UddiTest, FindByCategory) {
  publish("vcr-1", "VcrControl");
  publish("vcr-2", "VcrControl");
  publish("lamp-1", "Switchable");
  std::optional<Result<std::vector<RegistryEntry>>> found;
  client->find_by_category(
      "VcrControl",
      [&](Result<std::vector<RegistryEntry>> r) { found = std::move(r); });
  sched.run();
  ASSERT_TRUE(found.has_value());
  ASSERT_TRUE(found->is_ok());
  EXPECT_EQ(found->value().size(), 2u);
}

TEST_F(UddiTest, ListAllReturnsEverything) {
  publish("a", "X");
  publish("b", "Y");
  std::optional<Result<std::vector<RegistryEntry>>> found;
  client->list_all(
      [&](Result<std::vector<RegistryEntry>> r) { found = std::move(r); });
  sched.run();
  ASSERT_TRUE(found->is_ok());
  EXPECT_EQ(found->value().size(), 2u);
}

TEST_F(UddiTest, RepublishOverwrites) {
  publish("svc", "CatA");
  publish("svc", "CatB");
  EXPECT_EQ(registry->size(), 1u);
  std::optional<Result<RegistryEntry>> found;
  client->lookup("svc", [&](Result<RegistryEntry> r) { found = std::move(r); });
  sched.run();
  EXPECT_EQ(found->value().category, "CatB");
}

TEST_F(UddiTest, UnpublishRemoves) {
  publish("svc", "Cat");
  std::optional<Status> result;
  client->unpublish("svc", [&](const Status& s) { result = s; });
  sched.run();
  ASSERT_TRUE(result->is_ok());
  EXPECT_EQ(registry->size(), 0u);
}

TEST_F(UddiTest, LeaseExpiry) {
  publish("ephemeral", "Cat", sim::seconds(10));
  EXPECT_EQ(registry->size(), 1u);
  sched.run_until(sched.now() + sim::seconds(11));
  // Entry has lapsed: lookup must fail (stale endpoints are never
  // returned — a VSR invariant from DESIGN.md).
  std::optional<Result<RegistryEntry>> found;
  client->lookup("ephemeral",
                 [&](Result<RegistryEntry> r) { found = std::move(r); });
  sched.run();
  ASSERT_TRUE(found.has_value());
  EXPECT_FALSE(found->is_ok());
  EXPECT_EQ(registry->size(), 0u);
}

TEST_F(UddiTest, RepublishRenewsLease) {
  publish("svc", "Cat", sim::seconds(10));
  sched.run_until(sched.now() + sim::seconds(8));
  publish("svc", "Cat", sim::seconds(10));  // renew before expiry
  sched.run_until(sched.now() + sim::seconds(8));
  std::optional<Result<RegistryEntry>> found;
  client->lookup("svc", [&](Result<RegistryEntry> r) { found = std::move(r); });
  sched.run();
  EXPECT_TRUE(found->is_ok());
}

TEST_F(UddiTest, PublishRequiresNameAndWsdl) {
  RegistryEntry e;  // empty name
  std::optional<Status> result;
  client->publish(e, 0, [&](const Status& s) { result = s; });
  sched.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->is_ok());
}

TEST_F(UddiTest, WsdlSurvivesRegistryTransit) {
  InterfaceDesc iface{"Probe",
                      {MethodDesc{"ping", {}, ValueType::kBool, false}}};
  RegistryEntry e;
  e.name = "probe-1";
  e.category = "Probe";
  e.wsdl = emit_wsdl(iface, "probe-1", Uri{"http", "gw", 8080, "/vsg/probe"});
  std::optional<Status> pub;
  client->publish(e, 0, [&](const Status& s) { pub = s; });
  sched.run();
  ASSERT_TRUE(pub->is_ok());

  std::optional<Result<RegistryEntry>> found;
  client->lookup("probe-1",
                 [&](Result<RegistryEntry> r) { found = std::move(r); });
  sched.run();
  ASSERT_TRUE(found->is_ok());
  auto doc = parse_wsdl(found->value().wsdl);
  ASSERT_TRUE(doc.is_ok()) << doc.status().to_string();
  EXPECT_EQ(doc.value().interface, iface);
  EXPECT_EQ(doc.value().endpoint.host, "gw");
}

}  // namespace
}  // namespace hcm::soap
