#include "soap/envelope.hpp"

#include <gtest/gtest.h>

namespace hcm::soap {
namespace {

TEST(EnvelopeTest, CallRoundTrip) {
  NamedValues params{{"channel", Value(5)}, {"name", Value("NHK")}};
  auto wire = build_call("urn:hcm:Tuner", "setChannel", params);
  auto env = parse_envelope(wire);
  ASSERT_TRUE(env.is_ok()) << env.status().to_string();
  EXPECT_FALSE(env.value().is_fault);
  EXPECT_EQ(env.value().method, "setChannel");
  EXPECT_EQ(env.value().method_ns, "urn:hcm:Tuner");
  ASSERT_EQ(env.value().params.size(), 2u);
  EXPECT_EQ(env.value().params[0].first, "channel");
  EXPECT_EQ(env.value().params[0].second, Value(5));
  EXPECT_EQ(env.value().params[1].second, Value("NHK"));
}

TEST(EnvelopeTest, ResponseRoundTrip) {
  auto wire = build_response("urn:x", "play", Value(true));
  auto env = parse_envelope(wire);
  ASSERT_TRUE(env.is_ok());
  EXPECT_EQ(env.value().method, "playResponse");
  ASSERT_EQ(env.value().params.size(), 1u);
  EXPECT_EQ(env.value().params[0].first, "return");
  EXPECT_EQ(env.value().params[0].second, Value(true));
}

TEST(EnvelopeTest, FaultRoundTrip) {
  Fault f{"SOAP-ENV:Server", "device unreachable", "detail text"};
  auto wire = build_fault(f);
  auto env = parse_envelope(wire);
  ASSERT_TRUE(env.is_ok());
  ASSERT_TRUE(env.value().is_fault);
  EXPECT_EQ(env.value().fault.code, "SOAP-ENV:Server");
  EXPECT_EQ(env.value().fault.string, "device unreachable");
  EXPECT_EQ(env.value().fault.detail, "detail text");
}

TEST(EnvelopeTest, StatusTunnelsThroughFault) {
  auto original = not_found("no such service: vcr-1");
  auto fault = Fault::from_status(original);
  auto wire = build_fault(fault);
  auto env = parse_envelope(wire);
  ASSERT_TRUE(env.is_ok());
  auto status = env.value().fault.to_status();
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "no such service: vcr-1");
}

TEST(EnvelopeTest, ClientFaultMapsToInvalidArgument) {
  Fault f{"SOAP-ENV:Client", "bad params", ""};
  EXPECT_EQ(f.to_status().code(), StatusCode::kInvalidArgument);
}

TEST(EnvelopeTest, GenericServerFaultMapsToInternal) {
  Fault f{"SOAP-ENV:Server", "boom", "unstructured detail"};
  EXPECT_EQ(f.to_status().code(), StatusCode::kInternal);
}

TEST(EnvelopeTest, EmptyParams) {
  auto wire = build_call("urn:x", "ping", {});
  auto env = parse_envelope(wire);
  ASSERT_TRUE(env.is_ok());
  EXPECT_EQ(env.value().method, "ping");
  EXPECT_TRUE(env.value().params.empty());
}

TEST(EnvelopeTest, ComplexParamsSurvive) {
  Value profile(ValueMap{
      {"user", Value("alice")},
      {"preferences", Value(ValueList{Value("news"), Value("drama")})},
  });
  auto wire = build_call("urn:x", "record", {{"profile", profile}});
  auto env = parse_envelope(wire);
  ASSERT_TRUE(env.is_ok());
  EXPECT_EQ(env.value().params[0].second, profile);
}

TEST(EnvelopeTest, RejectsNonEnvelope) {
  EXPECT_FALSE(parse_envelope("<notsoap/>").is_ok());
  EXPECT_FALSE(parse_envelope("garbage").is_ok());
  EXPECT_FALSE(parse_envelope(
                   "<SOAP-ENV:Envelope xmlns:SOAP-ENV=\"x\"></SOAP-ENV:Envelope>")
                   .is_ok());  // no Body
}

TEST(EnvelopeTest, RejectsEmptyBody) {
  auto wire =
      "<SOAP-ENV:Envelope xmlns:SOAP-ENV=\"x\">"
      "<SOAP-ENV:Body></SOAP-ENV:Body></SOAP-ENV:Envelope>";
  EXPECT_FALSE(parse_envelope(wire).is_ok());
}

TEST(EnvelopeTest, WireSizeIsSubstantial) {
  // The SOAP/XML overhead the paper accepts for simplicity: a one-int
  // call costs several hundred bytes on the wire. The binary-codec
  // ablation quantifies this.
  auto wire = build_call("urn:x", "m", {{"a", Value(1)}});
  EXPECT_GT(wire.size(), 300u);
}

}  // namespace
}  // namespace hcm::soap
