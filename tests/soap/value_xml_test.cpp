#include "soap/value_xml.hpp"

#include <gtest/gtest.h>

namespace hcm::soap {
namespace {

Result<Value> round_trip(const Value& v) {
  xml::Element parent("params");
  value_to_xml("p", v, parent);
  auto serialized = parent.to_string();
  auto parsed = xml::parse(serialized);
  if (!parsed.is_ok()) return parsed.status();
  const auto* p = parsed.value()->child("p");
  if (p == nullptr) return internal_error("lost element");
  return value_from_xml(*p);
}

class SoapValueRoundTrip : public ::testing::TestWithParam<Value> {};

TEST_P(SoapValueRoundTrip, SurvivesXmlEncoding) {
  auto r = round_trip(GetParam());
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(r.value(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllValueShapes, SoapValueRoundTrip,
    ::testing::Values(
        Value(), Value(true), Value(false), Value(0), Value(-123456789),
        Value(INT64_MAX), Value(3.5), Value(-0.25), Value(1e100),
        Value(""), Value("plain"), Value("<xml> & \"entities\""),
        Value(Bytes{}), Value(Bytes{0, 1, 255}),
        Value(ValueList{Value(1), Value("two"), Value(true)}),
        Value(ValueList{}),
        Value(ValueMap{{"a", Value(1)}, {"b", Value("x")}}),
        Value(ValueMap{
            {"outer", Value(ValueMap{{"inner", Value(ValueList{Value(9)})}})}}),
        // Keys that are not valid XML names (metric scopes like
        // "http.server#2") ride in an <entry key="..."> form.
        Value(ValueMap{{"http.server#2.requests", Value(7)},
                       {"9starts-with-digit", Value("v")},
                       {"spaced key", Value(true)}})));

TEST(SoapValueTest, XsiTypeStrings) {
  EXPECT_STREQ(xsi_type_for(ValueType::kInt), "xsd:long");
  EXPECT_STREQ(xsi_type_for(ValueType::kString), "xsd:string");
  EXPECT_STREQ(xsi_type_for(ValueType::kList), "SOAP-ENC:Array");
  EXPECT_EQ(value_type_for_xsi("xsd:int"), ValueType::kInt);
  EXPECT_EQ(value_type_for_xsi("xsd:boolean"), ValueType::kBool);
  EXPECT_EQ(value_type_for_xsi("unknown:thing"), ValueType::kNull);
}

TEST(SoapValueTest, AcceptsForeignIntTypes) {
  // A peer using xsd:int (not our canonical xsd:long) must decode.
  auto parsed = xml::parse("<p xsi:type=\"xsd:int\">42</p>");
  ASSERT_TRUE(parsed.is_ok());
  auto v = value_from_xml(*parsed.value());
  ASSERT_TRUE(v.is_ok());
  EXPECT_EQ(v.value(), Value(42));
}

TEST(SoapValueTest, UntypedElementWithChildrenBecomesMap) {
  auto parsed = xml::parse("<p><x xsi:type=\"xsd:long\">1</x></p>");
  ASSERT_TRUE(parsed.is_ok());
  auto v = value_from_xml(*parsed.value());
  ASSERT_TRUE(v.is_ok());
  EXPECT_TRUE(v.value().is_map());
  EXPECT_EQ(v.value().at("x"), Value(1));
}

TEST(SoapValueTest, UntypedTextBecomesString) {
  auto parsed = xml::parse("<p>words</p>");
  ASSERT_TRUE(parsed.is_ok());
  auto v = value_from_xml(*parsed.value());
  ASSERT_TRUE(v.is_ok());
  EXPECT_EQ(v.value(), Value("words"));
}

TEST(SoapValueTest, NilDecodesToNull) {
  auto parsed = xml::parse("<p xsi:nil=\"true\" xsi:type=\"xsd:string\"/>");
  ASSERT_TRUE(parsed.is_ok());
  auto v = value_from_xml(*parsed.value());
  ASSERT_TRUE(v.is_ok());
  EXPECT_TRUE(v.value().is_null());
}

TEST(SoapValueTest, MalformedScalarsRejected) {
  for (const char* bad :
       {"<p xsi:type=\"xsd:long\">4x</p>", "<p xsi:type=\"xsd:long\"></p>",
        "<p xsi:type=\"xsd:boolean\">maybe</p>",
        "<p xsi:type=\"xsd:double\">1.2.3</p>",
        "<p xsi:type=\"xsd:base64Binary\">!!</p>"}) {
    auto parsed = xml::parse(bad);
    ASSERT_TRUE(parsed.is_ok()) << bad;
    EXPECT_FALSE(value_from_xml(*parsed.value()).is_ok()) << bad;
  }
}

}  // namespace
}  // namespace hcm::soap
