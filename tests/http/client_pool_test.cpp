// Edge cases of the HTTP client's keep-alive connection pool: reuse,
// serialization of in-flight requests, reconnection after the server
// drops the connection, and timeout interaction with queued requests.
#include <gtest/gtest.h>

#include "http/client.hpp"
#include "http/server.hpp"

namespace hcm::http {
namespace {

class ClientPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_node = &net.add_node("server");
    client_node = &net.add_node("client");
    auto& eth = net.add_ethernet("lan", sim::microseconds(200), 100'000'000);
    net.attach(*server_node, eth);
    net.attach(*client_node, eth);
    server = std::make_unique<HttpServer>(net, server_node->id(), 80);
    ASSERT_TRUE(server->start().is_ok());
  }

  sim::Scheduler sched;
  net::Network net{sched};
  net::Node* server_node = nullptr;
  net::Node* client_node = nullptr;
  std::unique_ptr<HttpServer> server;
};

TEST_F(ClientPoolTest, QueuedRequestsSerializeInOrder) {
  std::vector<std::string> served;
  server->route("/q", [&](const Request& req, RespondFn respond) {
    served.push_back(req.body);
    respond(Response::make(200, "OK", req.body));
  });
  HttpClient::Options opts;
  opts.keep_alive = true;
  HttpClient client(net, client_node->id(), opts);
  std::vector<std::string> answered;
  for (int i = 0; i < 5; ++i) {
    Request req;
    req.method = "POST";
    req.target = "/q";
    req.body = "r" + std::to_string(i);
    client.request(server->endpoint(), std::move(req),
                   [&](Result<Response> r) {
                     ASSERT_TRUE(r.is_ok());
                     answered.push_back(r.value().body);
                   });
  }
  sched.run();
  ASSERT_EQ(served.size(), 5u);
  ASSERT_EQ(answered.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(served[static_cast<std::size_t>(i)],
              "r" + std::to_string(i));
    EXPECT_EQ(answered[static_cast<std::size_t>(i)],
              "r" + std::to_string(i));
  }
}

TEST_F(ClientPoolTest, ReconnectsAfterServerRestart) {
  int served = 0;
  server->route("/x", [&](const Request&, RespondFn respond) {
    ++served;
    respond(Response::make(200, "OK", "ok"));
  });
  HttpClient::Options opts;
  opts.keep_alive = true;
  HttpClient client(net, client_node->id(), opts);

  auto one_request = [&]() -> Result<Response> {
    std::optional<Result<Response>> result;
    Request req;
    req.target = "/x";
    client.request(server->endpoint(), std::move(req),
                   [&](Result<Response> r) { result = std::move(r); });
    sched.run();
    EXPECT_TRUE(result.has_value());
    return result.value_or(internal_error("no response"));
  };

  ASSERT_TRUE(one_request().is_ok());

  // The server restarts: existing pooled connections die with it.
  server->stop();
  server_node->set_up(false);
  sched.run();
  server_node->set_up(true);
  server = std::make_unique<HttpServer>(net, server_node->id(), 80);
  ASSERT_TRUE(server->start().is_ok());
  server->route("/x", [&](const Request&, RespondFn respond) {
    ++served;
    respond(Response::make(200, "OK", "ok"));
  });

  // The pool must detect the dead connection and dial a fresh one.
  auto second = one_request();
  ASSERT_TRUE(second.is_ok()) << second.status().to_string();
  EXPECT_EQ(served, 2);
}

TEST_F(ClientPoolTest, MidRequestServerDeathFailsThatRequest) {
  server->route("/slow", [this](const Request&, RespondFn respond) {
    sched.after(sim::seconds(2), [respond] {
      respond(Response::make(200, "OK", "late"));
    });
  });
  HttpClient::Options opts;
  opts.keep_alive = true;
  HttpClient client(net, client_node->id(), opts);
  std::optional<Result<Response>> result;
  Request req;
  req.target = "/slow";
  client.request(server->endpoint(), std::move(req),
                 [&](Result<Response> r) { result = std::move(r); });
  sched.run_for(sim::milliseconds(500));
  server_node->set_up(false);
  // With the server gone its response can never arrive; the request
  // must fail (connection reset on next activity or timeout).
  sched.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->is_ok());
}

TEST_F(ClientPoolTest, TimeoutFailsQueuedRequestsToo) {
  server->route("/blackhole", [](const Request&, RespondFn) {});
  HttpClient::Options opts;
  opts.keep_alive = true;
  opts.request_timeout = sim::seconds(3);
  HttpClient client(net, client_node->id(), opts);
  int failures = 0;
  for (int i = 0; i < 3; ++i) {
    Request req;
    req.target = "/blackhole";
    client.request(server->endpoint(), std::move(req),
                   [&](Result<Response> r) {
                     if (!r.is_ok()) ++failures;
                   });
  }
  sched.run();
  // The in-flight request times out; closing the connection fails the
  // queued ones as well — none may hang forever.
  EXPECT_EQ(failures, 3);
}

TEST_F(ClientPoolTest, SeparateDestinationsGetSeparateConnections) {
  HttpServer second(net, server_node->id(), 8080);
  ASSERT_TRUE(second.start().is_ok());
  int a = 0, b = 0;
  server->route("/s", [&](const Request&, RespondFn respond) {
    ++a;
    respond(Response::make(200, "OK", "a"));
  });
  second.route("/s", [&](const Request&, RespondFn respond) {
    ++b;
    respond(Response::make(200, "OK", "b"));
  });
  HttpClient::Options opts;
  opts.keep_alive = true;
  HttpClient client(net, client_node->id(), opts);
  for (int i = 0; i < 2; ++i) {
    Request ra;
    ra.target = "/s";
    client.request({server_node->id(), 80}, std::move(ra),
                   [](Result<Response>) {});
    Request rb;
    rb.target = "/s";
    client.request({server_node->id(), 8080}, std::move(rb),
                   [](Result<Response>) {});
  }
  sched.run();
  EXPECT_EQ(a, 2);
  EXPECT_EQ(b, 2);
}

}  // namespace
}  // namespace hcm::http
