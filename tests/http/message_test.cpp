#include "http/message.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/block_pool.hpp"
#include "common/block_stream.hpp"
#include "soap/envelope.hpp"

namespace hcm::http {
namespace {

TEST(HttpMessageTest, RequestSerializeIncludesContentLength) {
  Request req;
  req.method = "POST";
  req.target = "/soap";
  req.body = "hello";
  req.set_header("Content-Type", "text/xml");
  auto s = to_string(req.serialize());
  EXPECT_NE(s.find("POST /soap HTTP/1.1\r\n"), std::string::npos);
  EXPECT_NE(s.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_NE(s.find("\r\n\r\nhello"), std::string::npos);
}

TEST(HttpMessageTest, HeaderLookupCaseInsensitive) {
  Request req;
  req.set_header("Content-Type", "text/xml");
  ASSERT_NE(req.header("content-type"), nullptr);
  EXPECT_EQ(*req.header("CONTENT-TYPE"), "text/xml");
  EXPECT_EQ(req.header("X-Missing"), nullptr);
}

TEST(HttpMessageTest, SetHeaderOverwrites) {
  Response r;
  r.set_header("X-A", "1");
  r.set_header("x-a", "2");
  EXPECT_EQ(*r.header("X-A"), "2");
  EXPECT_EQ(r.headers.size(), 1u);
}

TEST(HttpParserTest, ParseSingleRequest) {
  MessageParser p(MessageParser::Mode::kRequest);
  Request req;
  req.method = "POST";
  req.target = "/x";
  req.body = "body!";
  ASSERT_TRUE(p.feed(req.serialize()).is_ok());
  auto reqs = p.take_requests();
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].method, "POST");
  EXPECT_EQ(reqs[0].target, "/x");
  EXPECT_EQ(reqs[0].body, "body!");
}

TEST(HttpParserTest, ParseResponseWithReasonPhrase) {
  MessageParser p(MessageParser::Mode::kResponse);
  Response resp = Response::make(404, "Not Found", "nope");
  ASSERT_TRUE(p.feed(resp.serialize()).is_ok());
  auto resps = p.take_responses();
  ASSERT_EQ(resps.size(), 1u);
  EXPECT_EQ(resps[0].status, 404);
  EXPECT_EQ(resps[0].reason, "Not Found");
  EXPECT_EQ(resps[0].body, "nope");
}

TEST(HttpParserTest, ByteAtATimeFeeding) {
  MessageParser p(MessageParser::Mode::kRequest);
  Request req;
  req.body = "chunky";
  Bytes wire = req.serialize();
  std::vector<Request> all;
  for (auto b : wire) {
    ASSERT_TRUE(p.feed({b}).is_ok());
    for (auto& r : p.take_requests()) all.push_back(std::move(r));
  }
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].body, "chunky");
}

TEST(HttpParserTest, PipelinedMessages) {
  MessageParser p(MessageParser::Mode::kRequest);
  Request a, b;
  a.target = "/one";
  b.target = "/two";
  b.body = "data";
  Bytes wire = a.serialize();
  Bytes wire_b = b.serialize();
  wire.insert(wire.end(), wire_b.begin(), wire_b.end());
  ASSERT_TRUE(p.feed(wire).is_ok());
  auto reqs = p.take_requests();
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_EQ(reqs[0].target, "/one");
  EXPECT_EQ(reqs[1].target, "/two");
  EXPECT_EQ(reqs[1].body, "data");
}

TEST(HttpParserTest, ZeroLengthBody) {
  MessageParser p(MessageParser::Mode::kRequest);
  ASSERT_TRUE(p.feed(to_bytes("GET / HTTP/1.1\r\n\r\n")).is_ok());
  auto reqs = p.take_requests();
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].body, "");
}

TEST(HttpParserTest, MalformedRequestLine) {
  MessageParser p(MessageParser::Mode::kRequest);
  EXPECT_FALSE(p.feed(to_bytes("NONSENSE\r\n\r\n")).is_ok());
}

TEST(HttpParserTest, MalformedHeaderLine) {
  MessageParser p(MessageParser::Mode::kRequest);
  EXPECT_FALSE(
      p.feed(to_bytes("GET / HTTP/1.1\r\nBadHeaderNoColon\r\n\r\n")).is_ok());
}

TEST(HttpParserTest, BadContentLength) {
  MessageParser p(MessageParser::Mode::kRequest);
  EXPECT_FALSE(
      p.feed(to_bytes("GET / HTTP/1.1\r\nContent-Length: abc\r\n\r\n"))
          .is_ok());
}

TEST(HttpParserTest, BadStatusCode) {
  MessageParser p(MessageParser::Mode::kResponse);
  EXPECT_FALSE(p.feed(to_bytes("HTTP/1.1 XX OK\r\n\r\n")).is_ok());
}

TEST(HttpParserTest, OversizedHeadersRejected) {
  MessageParser p(MessageParser::Mode::kRequest);
  std::string big = "GET / HTTP/1.1\r\nX-Pad: ";
  big += std::string(100 * 1024, 'a');  // never terminates headers
  EXPECT_FALSE(p.feed(to_bytes(big)).is_ok());
}

TEST(HttpParserTest, HeaderWhitespaceTrimmed) {
  MessageParser p(MessageParser::Mode::kRequest);
  ASSERT_TRUE(
      p.feed(to_bytes("GET / HTTP/1.1\r\nX-K:   padded value  \r\n\r\n"))
          .is_ok());
  auto reqs = p.take_requests();
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(*reqs[0].header("X-K"), "padded value");
}

TEST(HttpParserTest, LargeBodySpansBlockSeams) {
  // A body several times the pool block size: the serialized frame and
  // the parser's reassembly stream both chain multiple 16 KB blocks,
  // so head scanning, body extraction and consume all cross seams.
  Request req;
  req.method = "POST";
  req.target = "/bulk";
  req.set_header("Content-Type", "application/octet-stream");
  while (req.body.size() < 3 * BlockPool::kBlockCapacity + 123) {
    req.body += "0123456789abcdef";
  }
  BlockStream wire;
  req.serialize_to(wire);
  ASSERT_GT(wire.size(), 3 * BlockPool::kBlockCapacity);

  MessageParser p(MessageParser::Mode::kRequest);
  ASSERT_TRUE(p.feed(std::move(wire)).is_ok());
  Request got;
  ASSERT_TRUE(p.pop_request(got));
  EXPECT_EQ(got.target, "/bulk");
  EXPECT_EQ(got.body, req.body);
  EXPECT_FALSE(p.pop_request(got));
}

TEST(HttpParserTest, SoapEnvelopeSplitAcrossDeliveries) {
  // A SOAP POST arriving in arbitrary stream chunks must reassemble to
  // the exact envelope, and the body must decode as SOAP afterwards.
  const std::string envelope = soap::build_call(
      "urn:hcm:Calc", "add",
      {{"a", Value(std::int64_t{20})}, {"b", Value(std::int64_t{22})}});
  Request req;
  req.method = "POST";
  req.target = "/vsg/calc";
  req.body = envelope;
  req.set_header("Content-Type", "text/xml");
  const Bytes wire = req.serialize();

  for (std::size_t chunk :
       {std::size_t{1}, std::size_t{7}, std::size_t{64}, wire.size()}) {
    MessageParser parser(MessageParser::Mode::kRequest);
    for (std::size_t off = 0; off < wire.size(); off += chunk) {
      const std::size_t n = std::min(chunk, wire.size() - off);
      ASSERT_TRUE(
          parser.feed(Bytes(wire.begin() + static_cast<std::ptrdiff_t>(off),
                            wire.begin() + static_cast<std::ptrdiff_t>(off + n)))
              .is_ok());
    }
    auto reqs = parser.take_requests();
    ASSERT_EQ(reqs.size(), 1u) << "chunk size " << chunk;
    EXPECT_EQ(reqs[0].body, envelope);
    auto env = soap::parse_envelope(reqs[0].body);
    ASSERT_TRUE(env.is_ok()) << env.status().to_string();
    EXPECT_EQ(env.value().method, "add");
    ASSERT_EQ(env.value().params.size(), 2u);
    EXPECT_EQ(env.value().params[1].second, Value(std::int64_t{22}));
  }
}

}  // namespace
}  // namespace hcm::http
