#include <gtest/gtest.h>

#include "http/client.hpp"
#include "http/server.hpp"

namespace hcm::http {
namespace {

class HttpEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_node = &net.add_node("server");
    client_node = &net.add_node("client");
    auto& eth = net.add_ethernet("lan", sim::microseconds(200), 100'000'000);
    net.attach(*server_node, eth);
    net.attach(*client_node, eth);
    server = std::make_unique<HttpServer>(net, server_node->id(), 80);
    ASSERT_TRUE(server->start().is_ok());
  }

  Result<Response> do_request(HttpClient& client, Request req) {
    std::optional<Result<Response>> result;
    client.request(server->endpoint(), std::move(req),
                   [&](Result<Response> r) { result = std::move(r); });
    sched.run();
    EXPECT_TRUE(result.has_value());
    return result.value_or(internal_error("no response"));
  }

  sim::Scheduler sched;
  net::Network net{sched};
  net::Node* server_node = nullptr;
  net::Node* client_node = nullptr;
  std::unique_ptr<HttpServer> server;
};

TEST_F(HttpEndToEndTest, SimpleGet) {
  server->route("/hello", [](const Request&, RespondFn respond) {
    respond(Response::make(200, "OK", "world"));
  });
  HttpClient client(net, client_node->id());
  Request req;
  req.target = "/hello";
  auto resp = do_request(client, std::move(req));
  ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
  EXPECT_EQ(resp.value().status, 200);
  EXPECT_EQ(resp.value().body, "world");
  EXPECT_EQ(server->requests_served(), 1u);
}

TEST_F(HttpEndToEndTest, NotFoundForUnknownRoute) {
  HttpClient client(net, client_node->id());
  Request req;
  req.target = "/missing";
  auto resp = do_request(client, std::move(req));
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(resp.value().status, 404);
}

TEST_F(HttpEndToEndTest, PostBodyEcho) {
  server->route("/echo", [](const Request& req, RespondFn respond) {
    respond(Response::make(200, "OK", req.body));
  });
  HttpClient client(net, client_node->id());
  Request req;
  req.method = "POST";
  req.target = "/echo";
  req.body = std::string(5000, 'z');
  auto resp = do_request(client, std::move(req));
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(resp.value().body.size(), 5000u);
}

TEST_F(HttpEndToEndTest, AsyncHandlerRespondsLater) {
  server->route("/slow", [this](const Request&, RespondFn respond) {
    sched.after(sim::seconds(2), [respond] {
      respond(Response::make(200, "OK", "finally"));
    });
  });
  HttpClient client(net, client_node->id());
  Request req;
  req.target = "/slow";
  sim::SimTime start = sched.now();
  auto resp = do_request(client, std::move(req));
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(resp.value().body, "finally");
  EXPECT_GE(sched.now() - start, sim::seconds(2));
}

TEST_F(HttpEndToEndTest, PrefixRoute) {
  server->route("/api/", [](const Request& req, RespondFn respond) {
    respond(Response::make(200, "OK", "prefix:" + req.target));
  });
  HttpClient client(net, client_node->id());
  Request req;
  req.target = "/api/deep/path";
  auto resp = do_request(client, std::move(req));
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(resp.value().body, "prefix:/api/deep/path");
}

TEST_F(HttpEndToEndTest, ConnectionRefusedSurfacesError) {
  HttpClient client(net, client_node->id());
  std::optional<Result<Response>> result;
  client.request({server_node->id(), 8081}, Request{},
                 [&](Result<Response> r) { result = std::move(r); });
  sched.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->is_ok());
  EXPECT_EQ(result->status().code(), StatusCode::kUnavailable);
}

TEST_F(HttpEndToEndTest, RequestTimesOutWhenHandlerNeverResponds) {
  server->route("/blackhole", [](const Request&, RespondFn) {
    // never responds
  });
  HttpClient::Options opts;
  opts.request_timeout = sim::seconds(5);
  HttpClient client(net, client_node->id(), opts);
  std::optional<Result<Response>> result;
  Request req;
  req.target = "/blackhole";
  client.request(server->endpoint(), std::move(req),
                 [&](Result<Response> r) { result = std::move(r); });
  sched.run();
  ASSERT_TRUE(result.has_value());
  ASSERT_FALSE(result->is_ok());
  EXPECT_EQ(result->status().code(), StatusCode::kTimeout);
}

TEST_F(HttpEndToEndTest, KeepAliveReusesConnection) {
  int served = 0;
  server->route("/ka", [&](const Request&, RespondFn respond) {
    ++served;
    respond(Response::make(200, "OK", "ok"));
  });
  HttpClient::Options opts;
  opts.keep_alive = true;
  HttpClient client(net, client_node->id(), opts);
  int answered = 0;
  for (int i = 0; i < 3; ++i) {
    Request req;
    req.target = "/ka";
    client.request(server->endpoint(), std::move(req),
                   [&](Result<Response> r) {
                     ASSERT_TRUE(r.is_ok());
                     ++answered;
                   });
  }
  sched.run();
  EXPECT_EQ(answered, 3);
  EXPECT_EQ(served, 3);
}

TEST_F(HttpEndToEndTest, KeepAliveFasterThanPerRequestConnections) {
  server->route("/t", [](const Request&, RespondFn respond) {
    respond(Response::make(200, "OK", "x"));
  });
  auto time_requests = [&](bool keep_alive) {
    HttpClient::Options opts;
    opts.keep_alive = keep_alive;
    HttpClient client(net, client_node->id(), opts);
    sim::SimTime start = sched.now();
    int remaining = 10;
    std::function<void()> issue = [&]() {
      Request req;
      req.target = "/t";
      client.request(server->endpoint(), std::move(req),
                     [&](Result<Response> r) {
                       ASSERT_TRUE(r.is_ok());
                       if (--remaining > 0) issue();
                     });
    };
    issue();
    sched.run();
    return sched.now() - start;
  };
  auto cold = time_requests(false);
  auto warm = time_requests(true);
  EXPECT_LT(warm, cold);
}

TEST_F(HttpEndToEndTest, ServerStopRefusesNewConnections) {
  server->route("/x", [](const Request&, RespondFn respond) {
    respond(Response::make(200, "OK", ""));
  });
  server->stop();
  HttpClient client(net, client_node->id());
  Request req;
  req.target = "/x";
  auto resp = do_request(client, std::move(req));
  EXPECT_FALSE(resp.is_ok());
}

TEST_F(HttpEndToEndTest, TwoServersOnDifferentPorts) {
  HttpServer second(net, server_node->id(), 8080);
  ASSERT_TRUE(second.start().is_ok());
  second.route("/b", [](const Request&, RespondFn respond) {
    respond(Response::make(200, "OK", "second"));
  });
  server->route("/a", [](const Request&, RespondFn respond) {
    respond(Response::make(200, "OK", "first"));
  });
  HttpClient client(net, client_node->id());
  std::string got_a, got_b;
  Request ra;
  ra.target = "/a";
  client.request({server_node->id(), 80}, std::move(ra),
                 [&](Result<Response> r) { got_a = r.value().body; });
  Request rb;
  rb.target = "/b";
  client.request({server_node->id(), 8080}, std::move(rb),
                 [&](Result<Response> r) { got_b = r.value().body; });
  sched.run();
  EXPECT_EQ(got_a, "first");
  EXPECT_EQ(got_b, "second");
}

TEST_F(HttpEndToEndTest, PortConflictDetected) {
  HttpServer dup(net, server_node->id(), 80);
  EXPECT_FALSE(dup.start().is_ok());
}

TEST_F(HttpEndToEndTest, WireBytesMatchSerializedMessageSizes) {
  // The serialize/stream boundary must put exactly the serialized frame
  // on the wire — no re-encoding, duplication or inflation on either
  // direction. Drives a raw stream so both byte counters are visible.
  server->route("/echo", [](const Request& req, RespondFn respond) {
    respond(Response::make(200, "OK", req.body));
  });

  net::StreamPtr stream;
  net.connect(client_node->id(), server->endpoint(),
              [&](Result<net::StreamPtr> r) {
                ASSERT_TRUE(r.is_ok());
                stream = std::move(r).take();
              });
  sched.run();
  ASSERT_NE(stream, nullptr);

  Request req;
  req.method = "POST";
  req.target = "/echo";
  req.body = "payload-0123456789";
  req.set_header("Content-Type", "text/plain");
  const Bytes wire = req.serialize();

  Bytes received;
  stream->set_on_data(
      [&](BlockStream&& data) { data.append_to(received); });
  stream->send(req.serialize());
  sched.run();

  EXPECT_EQ(stream->bytes_sent(), wire.size());
  ASSERT_FALSE(received.empty());
  EXPECT_EQ(stream->bytes_received(), received.size());

  // The received bytes re-serialize to the identical frame: parse the
  // response and compare byte counts.
  MessageParser parser(MessageParser::Mode::kResponse);
  ASSERT_TRUE(parser.feed(received).is_ok());
  auto resps = parser.take_responses();
  ASSERT_EQ(resps.size(), 1u);
  EXPECT_EQ(resps[0].body, req.body);
  EXPECT_EQ(resps[0].serialize().size(), received.size());
}

}  // namespace
}  // namespace hcm::http
