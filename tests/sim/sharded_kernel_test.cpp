// The sharded kernel's contracts: SPSC channel FIFO + overflow, the
// window barrier's epoch protocol, conservative-window execution
// (cross-shard deliveries land after the window that produced them,
// drained in fixed order), determinism at every fixed shard count, and
// 1-shard byte-identity with the plain Scheduler.
#include "sim/sharded_kernel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sim/spsc_queue.hpp"
#include "sim/trace.hpp"

namespace hcm::sim {
namespace {

TEST(SpscQueueTest, FifoWithinCapacity) {
  SpscQueue<int> q(4);
  EXPECT_TRUE(q.empty());
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(int{i}));
  EXPECT_FALSE(q.push(99));  // full
  for (int i = 0; i < 4; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.pop().has_value());
}

TEST(SpscQueueTest, CapacityRoundsToPowerOfTwo) {
  SpscQueue<int> q(5);
  EXPECT_EQ(q.capacity(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.push(int{i}));
  EXPECT_FALSE(q.push(8));
}

TEST(SpscQueueTest, ConcurrentProducerConsumer) {
  SpscQueue<std::uint64_t> q(64);
  constexpr std::uint64_t kCount = 100'000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCount;) {
      if (q.push(std::uint64_t{i})) ++i;
    }
  });
  std::uint64_t expected = 0;
  while (expected < kCount) {
    auto v = q.pop();
    if (!v.has_value()) continue;
    ASSERT_EQ(*v, expected);
    ++expected;
  }
  producer.join();
  EXPECT_TRUE(q.empty());
}

TEST(WindowBarrierTest, EpochRoundTrip) {
  WindowBarrier barrier(2);
  std::atomic<int> done{0};
  auto worker = [&] {
    std::uint64_t seen = 0;
    while (true) {
      const std::uint64_t e = barrier.await_epoch(seen);
      if (e == 0) return;  // stopped
      seen = e;
      done.fetch_add(1, std::memory_order_relaxed);
      barrier.arrive();
    }
  };
  std::thread a(worker), b(worker);
  for (int round = 1; round <= 3; ++round) {
    barrier.open_epoch();
    barrier.wait_all_arrived();
    EXPECT_EQ(done.load(std::memory_order_relaxed), 2 * round);
  }
  barrier.stop();
  a.join();
  b.join();
}

TEST(ShardedKernelTest, OneShardMatchesPlainSchedulerTrace) {
  // The same event program through a plain Scheduler and a 1-shard
  // kernel must hash identically — byte-identity by construction.
  auto program = [](Scheduler& s) {
    for (int i = 1; i <= 50; ++i) {
      s.after(milliseconds(i), [&s, i] {
        if (i % 3 == 0) s.after(microseconds(i), [] {});
      });
    }
  };
  Scheduler plain;
  plain.seed(7);
  TraceRecorder plain_trace(plain);
  program(plain);
  plain.run();

  ShardedKernel kernel;
  kernel.seed(7);
  TraceRecorder shard_trace(kernel.shard(0));
  kernel.run_as(0, [&] { program(kernel.shard(0)); });
  kernel.run();
  EXPECT_EQ(plain_trace.digest(), shard_trace.digest());
  EXPECT_EQ(plain_trace.events(), shard_trace.events());
  EXPECT_EQ(plain.now(), kernel.shard(0).now());
}

TEST(ShardedKernelTest, CrossShardPingPong) {
  ShardedKernelOptions opts;
  opts.shards = 2;
  opts.lookahead = milliseconds(5);
  ShardedKernel kernel(opts);
  std::vector<std::pair<ShardId, SimTime>> hits;  // coordinator-collected
  // Ping-pong: each side posts to the other one lookahead out.
  std::function<void(ShardId, int)> volley = [&](ShardId self, int depth) {
    hits.emplace_back(self, kernel.shard(self).now());
    if (depth == 0) return;
    const ShardId other = 1 - self;
    kernel.post(other, kernel.shard(self).now() + kernel.lookahead(),
                [&volley, other, depth] { volley(other, depth - 1); });
  };
  kernel.inject(0, milliseconds(1), [&volley] { volley(0, 6); });
  kernel.run();
  ASSERT_EQ(hits.size(), 7u);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].first, i % 2);  // alternating shards
    if (i > 0) {
      // Conservative contract: each hop lands at least one lookahead
      // later than the previous.
      EXPECT_GE(hits[i].second, hits[i - 1].second + kernel.lookahead());
    }
  }
  EXPECT_EQ(kernel.cross_shard_posts(), 6u);
  EXPECT_EQ(kernel.clamped_deliveries(), 0u);
}

TEST(ShardedKernelTest, DoubleRunDigestsMatch) {
  auto run_once = [](ShardId shards) {
    ShardedKernelOptions opts;
    opts.shards = shards;
    ShardedKernel kernel(opts);
    kernel.seed(3);
    std::vector<std::unique_ptr<TraceRecorder>> traces;
    for (ShardId s = 0; s < shards; ++s) {
      traces.push_back(std::make_unique<TraceRecorder>(kernel.shard(s)));
    }
    // A deterministic mesh of local timers and cross-shard posts.
    for (ShardId s = 0; s < shards; ++s) {
      kernel.inject(s, milliseconds(1 + s), [&kernel, s, shards] {
        for (int i = 0; i < 20; ++i) {
          auto& sched = kernel.shard(s);
          sched.after(milliseconds(1 + i), [&kernel, s, shards, i] {
            const ShardId dst = (s + i) % shards;
            const SimTime when =
                kernel.shard(s).now() + kernel.lookahead() + i;
            if (dst == s) {
              kernel.shard(s).at(when, [] {});
            } else {
              kernel.post(dst, when, [] {});
            }
          });
        }
      });
    }
    kernel.run();
    TraceHash combined;
    for (const auto& t : traces) combined.mix(t->digest());
    return combined.digest();
  };
  EXPECT_EQ(run_once(2), run_once(2));
  EXPECT_EQ(run_once(4), run_once(4));
}

TEST(ShardedKernelTest, RunAsNestsAndRestores) {
  ShardedKernelOptions opts;
  opts.shards = 3;
  ShardedKernel kernel(opts);
  EXPECT_EQ(ShardedKernel::current(), nullptr);
  kernel.run_as(1, [&] {
    ASSERT_NE(ShardedKernel::current(), nullptr);
    EXPECT_EQ(ShardedKernel::current()->shard, 1u);
    kernel.run_as(2, [&] { EXPECT_EQ(ShardedKernel::current()->shard, 2u); });
    EXPECT_EQ(ShardedKernel::current()->shard, 1u);
  });
  EXPECT_EQ(ShardedKernel::current(), nullptr);
}

TEST(ShardedKernelTest, IdleFastForwardSkipsEmptyWindows) {
  ShardedKernelOptions opts;
  opts.shards = 2;
  opts.lookahead = milliseconds(1);
  ShardedKernel kernel(opts);
  int fired = 0;
  kernel.inject(0, seconds(10), [&fired] { ++fired; });
  kernel.inject(1, seconds(20), [&fired] { ++fired; });
  kernel.run();
  EXPECT_EQ(fired, 2);
  // 30 virtual seconds at 1 ms lookahead would be 30,000 dense
  // windows; fast-forward must collapse the idle gaps.
  EXPECT_LE(kernel.windows_run(), 10u);
}

TEST(ShardedKernelTest, EventExactlyAtWindowBoundaryFires) {
  // Scheduler::run_until(t) is inclusive of t; an event at exactly the
  // barrier time must fire inside that window, not leak to the next.
  ShardedKernelOptions opts;
  opts.shards = 2;
  opts.lookahead = milliseconds(5);
  ShardedKernel kernel(opts);
  SimTime fired_at = 0;
  std::uint64_t windows_at_fire = 0;
  kernel.inject(0, milliseconds(5), [&] {
    fired_at = kernel.shard(0).now();
    windows_at_fire = kernel.windows_run();
  });
  kernel.run_until(milliseconds(5));
  EXPECT_EQ(fired_at, milliseconds(5));
  EXPECT_EQ(kernel.now(), milliseconds(5));
  // It fired during a window (windows_run() counts completed windows,
  // so the recorded value is the window's index).
  EXPECT_EQ(windows_at_fire, kernel.windows_run() - 1);
}

TEST(ShardedKernelTest, CancelledCrossShardDeliveryDoesNotFire) {
  // A cross-shard delivery schedules onto the destination slab at the
  // drain barrier; the destination can cancel it before its window
  // runs — in-flight cancellation across the shard boundary.
  ShardedKernelOptions opts;
  opts.shards = 2;
  opts.lookahead = milliseconds(5);
  ShardedKernel kernel(opts);
  bool delivered = false;
  bool cancelled_it = false;
  // Shard 1 parks an EventId slot for the delivery to fill: the
  // delivery closure (drained onto shard 1) schedules the real event,
  // and a later shard-1 timer cancels it before it fires.
  kernel.inject(0, milliseconds(1), [&] {
    kernel.post(1, kernel.shard(0).now() + kernel.lookahead() * 2,
                [&kernel, &delivered, &cancelled_it] {
                  // Runs on shard 1 at drain time: schedule the
                  // payload 3 ms out, then cancel it 1 ms later.
                  auto& s = kernel.shard(1);
                  const EventId id =
                      s.after(milliseconds(3), [&delivered] { delivered = true; });
                  s.after(milliseconds(1), [&s, id, &cancelled_it] {
                    cancelled_it = s.cancel(id);
                  });
                });
  });
  kernel.run();
  EXPECT_TRUE(cancelled_it);
  EXPECT_FALSE(delivered);
}

TEST(ShardedKernelTest, SeedsDecorrelateShardsButKeepShardZeroExact) {
  ShardedKernelOptions opts;
  opts.shards = 2;
  ShardedKernel kernel(opts);
  kernel.seed(1234);
  Scheduler plain;
  plain.seed(1234);
  EXPECT_EQ(kernel.shard(0).rng()(), plain.rng()());
  // Shard 1's stream must differ from shard 0's next draw.
  EXPECT_NE(kernel.shard(1).rng()(), plain.rng()());
}

TEST(ShardedKernelTest, OverflowLaneKeepsFifoOrder) {
  ShardedKernelOptions opts;
  opts.shards = 2;
  opts.lookahead = milliseconds(5);
  opts.channel_capacity = 4;  // force the spill lane
  ShardedKernel kernel(opts);
  std::vector<int> order;  // shard-1 owned, read after the run
  kernel.inject(0, milliseconds(1), [&] {
    // All at the same destination time: only drain order (ring first,
    // then the spill lane, both FIFO) keeps 0..31 in sequence.
    const SimTime when = kernel.shard(0).now() + kernel.lookahead();
    for (int i = 0; i < 32; ++i) {
      kernel.post(1, when, [&order, i] { order.push_back(i); });
    }
  });
  kernel.run();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[i], i);
  EXPECT_GT(kernel.overflow_posts(), 0u);
}

}  // namespace
}  // namespace hcm::sim
