// Tier-1 sharding determinism audit (ISSUE 8 satellite): the fig. 4
// scenario through the sharded kernel must be
//   (a) byte-identical to the legacy single-threaded kernel at 1 shard
//       (same trace hash, same event count, same end time), and
//   (b) bit-identically repeatable at 2 and 4 shards (per-shard trace
//       digests folded in shard order).
// Plus the same double-run contract for the City scale testbed.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "sim/sharded_kernel.hpp"
#include "sim/trace.hpp"
#include "testbed/city.hpp"
#include "testbed/home.hpp"

namespace hcm {
namespace {

struct ShardedTrace {
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
  sim::SimTime end_time = 0;
};

// The fig. 4 transaction driven through a sharded kernel: subscribe a
// cross-island event bridge, toggle the desk lamp from Jini six
// times, run the VCR so transportChanged crosses the bridge. Mirrors
// run_fig4_scenario in determinism_test.cpp, with the scheduler
// drains swapped for kernel window loops.
ShardedTrace run_fig4_sharded(std::uint64_t seed, sim::ShardId shards) {
  sim::ShardedKernelOptions kopts;
  kopts.shards = shards;
  sim::ShardedKernel kernel(kopts);
  kernel.seed(seed);
  std::vector<std::unique_ptr<sim::TraceRecorder>> traces;
  traces.reserve(shards);
  for (sim::ShardId s = 0; s < shards; ++s) {
    traces.push_back(std::make_unique<sim::TraceRecorder>(kernel.shard(s)));
  }
  testbed::SmartHome home(kernel);
  EXPECT_TRUE(home.refresh().is_ok());

  const sim::ShardId jini_shard = home.island_shard("jini-island");
  std::optional<Result<std::string>> lease;
  std::uint64_t delivered = 0;
  kernel.run_as(jini_shard, [&] {
    home.meta->island("jini-island")
        ->events->subscribe(
            "vcr-1", "transportChanged",
            [&](const std::string&, const std::string&, const Value&) {
              ++delivered;
            },
            [&](Result<std::string> r) { lease = std::move(r); });
  });
  kernel.run_until_done([&] { return lease.has_value(); });
  EXPECT_TRUE(lease.has_value() && lease->is_ok());

  for (int i = 0; i < 6; ++i) {
    std::optional<Result<Value>> r;
    kernel.run_as(jini_shard, [&] {
      home.jini_adapter->invoke("desk-lamp", i % 2 == 0 ? "turnOn" : "turnOff",
                                {}, [&](Result<Value> v) { r = std::move(v); });
    });
    kernel.run_until_done([&] { return r.has_value(); });
    EXPECT_TRUE(r.has_value());
    if (r.has_value()) {
      EXPECT_TRUE(r->is_ok()) << r->status().to_string();
    }
  }

  for (const char* method : {"record", "stop"}) {
    std::optional<Result<Value>> r;
    kernel.run_as(jini_shard, [&] {
      ValueList args;
      if (std::string(method) == "record")
        args.push_back(Value(std::int64_t{1}));
      home.jini_adapter->invoke("vcr-1", method, args,
                                [&](Result<Value> v) { r = std::move(v); });
    });
    kernel.run_until_done([&] { return r.has_value(); });
    EXPECT_TRUE(r.has_value());
  }
  kernel.run_for(sim::seconds(1));
  EXPECT_GE(delivered, 2u);

  sim::TraceHash combined;
  std::uint64_t events = 0;
  for (const auto& t : traces) {
    combined.mix(t->digest());
    events += t->events();
  }
  return {combined.digest(), events, kernel.now()};
}

// The legacy twin of run_fig4_sharded, kept in lockstep with it (not
// with determinism_test.cpp's variant, which drains differently).
ShardedTrace run_fig4_legacy(std::uint64_t seed) {
  sim::Scheduler sched;
  sched.seed(seed);
  sim::TraceRecorder trace(sched);
  testbed::SmartHome home(sched);
  EXPECT_TRUE(home.refresh().is_ok());

  std::optional<Result<std::string>> lease;
  std::uint64_t delivered = 0;
  home.meta->island("jini-island")
      ->events->subscribe(
          "vcr-1", "transportChanged",
          [&](const std::string&, const std::string&, const Value&) {
            ++delivered;
          },
          [&](Result<std::string> r) { lease = std::move(r); });
  sim::run_until_done(sched, [&] { return lease.has_value(); });
  EXPECT_TRUE(lease.has_value() && lease->is_ok());

  for (int i = 0; i < 6; ++i) {
    std::optional<Result<Value>> r;
    home.jini_adapter->invoke("desk-lamp", i % 2 == 0 ? "turnOn" : "turnOff",
                              {}, [&](Result<Value> v) { r = std::move(v); });
    sim::run_until_done(sched, [&] { return r.has_value(); });
    EXPECT_TRUE(r.has_value());
  }
  for (const char* method : {"record", "stop"}) {
    std::optional<Result<Value>> r;
    ValueList args;
    if (std::string(method) == "record") args.push_back(Value(std::int64_t{1}));
    home.jini_adapter->invoke("vcr-1", method, args,
                              [&](Result<Value> v) { r = std::move(v); });
    sim::run_until_done(sched, [&] { return r.has_value(); });
    EXPECT_TRUE(r.has_value());
  }
  sched.run_for(sim::seconds(1));
  EXPECT_GE(delivered, 2u);
  return {trace.digest(), trace.events(), sched.now()};
}

TEST(ShardDeterminismTest, OneShardMatchesLegacyTraceHash) {
  const ShardedTrace legacy = run_fig4_legacy(42);
  const ShardedTrace sharded = run_fig4_sharded(42, 1);
  ASSERT_GT(legacy.events, 0u);
  EXPECT_EQ(legacy.events, sharded.events);
  EXPECT_EQ(legacy.end_time, sharded.end_time);
  // At 1 shard the combined digest is FNV over the single shard's
  // digest; compare apples to apples.
  sim::TraceHash folded;
  folded.mix(legacy.digest);
  EXPECT_EQ(folded.digest(), sharded.digest)
      << "1-shard kernel diverged from the legacy single-threaded kernel";
}

TEST(ShardDeterminismTest, TwoShardDoubleRunIdentical) {
  const ShardedTrace a = run_fig4_sharded(42, 2);
  const ShardedTrace b = run_fig4_sharded(42, 2);
  ASSERT_GT(a.events, 0u);
  EXPECT_EQ(a.digest, b.digest)
      << "2-shard dispatch sequences diverged between identical runs";
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.end_time, b.end_time);
}

TEST(ShardDeterminismTest, FourShardDoubleRunIdentical) {
  const ShardedTrace a = run_fig4_sharded(42, 4);
  const ShardedTrace b = run_fig4_sharded(42, 4);
  ASSERT_GT(a.events, 0u);
  EXPECT_EQ(a.digest, b.digest)
      << "4-shard dispatch sequences diverged between identical runs";
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.end_time, b.end_time);
}

TEST(CityTest, ShardedCityIsDeterministicAndDelivers) {
  auto run_once = [] {
    sim::ShardedKernelOptions kopts;
    kopts.shards = 4;
    sim::ShardedKernel kernel(kopts);
    std::vector<std::unique_ptr<sim::TraceRecorder>> traces;
    for (sim::ShardId s = 0; s < 4; ++s) {
      traces.push_back(std::make_unique<sim::TraceRecorder>(kernel.shard(s)));
    }
    testbed::CityOptions copts;
    copts.islands = 8;
    copts.devices_per_island = 4;
    testbed::City city(kernel, copts);
    city.start();
    kernel.run_for(sim::seconds(5));
    sim::TraceHash combined;
    for (const auto& t : traces) combined.mix(t->digest());
    return std::make_tuple(combined.digest(), city.reports_received(),
                           city.ring_calls_ok(), kernel.clamped_deliveries());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_GT(std::get<1>(a), 0u);  // device reports flowed
  EXPECT_GT(std::get<2>(a), 0u);  // cross-shard ring calls completed
  EXPECT_EQ(std::get<3>(a), 0u);  // lookahead contract never violated
}

}  // namespace
}  // namespace hcm
