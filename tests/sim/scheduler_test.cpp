#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hcm::sim {
namespace {

TEST(SchedulerTest, StartsAtZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_TRUE(s.empty());
}

TEST(SchedulerTest, FiresInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.at(milliseconds(30), [&] { order.push_back(3); });
  s.at(milliseconds(10), [&] { order.push_back(1); });
  s.at(milliseconds(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), milliseconds(30));
}

TEST(SchedulerTest, FifoAmongSameTime) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.at(milliseconds(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SchedulerTest, AfterSchedulesRelative) {
  Scheduler s;
  SimTime fired_at = -1;
  s.at(seconds(1), [&] {
    s.after(seconds(2), [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired_at, seconds(3));
}

TEST(SchedulerTest, PastEventClampsToNow) {
  Scheduler s;
  s.run_until(seconds(5));
  SimTime fired_at = -1;
  s.at(seconds(1), [&] { fired_at = s.now(); });
  s.run();
  EXPECT_EQ(fired_at, seconds(5));
}

TEST(SchedulerTest, RunUntilStopsAtBoundary) {
  Scheduler s;
  int count = 0;
  s.at(seconds(1), [&] { ++count; });
  s.at(seconds(2), [&] { ++count; });
  s.at(seconds(10), [&] { ++count; });
  s.run_until(seconds(2));
  EXPECT_EQ(count, 2);
  EXPECT_EQ(s.now(), seconds(2));
  EXPECT_EQ(s.pending(), 1u);
}

TEST(SchedulerTest, CancelPreventsFiring) {
  Scheduler s;
  bool fired = false;
  EventId id = s.at(seconds(1), [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));  // second cancel fails
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(s.empty());
}

TEST(SchedulerTest, CancelOneOfMany) {
  Scheduler s;
  std::vector<int> order;
  s.at(seconds(1), [&] { order.push_back(1); });
  EventId id = s.at(seconds(2), [&] { order.push_back(2); });
  s.at(seconds(3), [&] { order.push_back(3); });
  s.cancel(id);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(SchedulerTest, EventsScheduledDuringRunAreProcessed) {
  Scheduler s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) s.after(milliseconds(1), chain);
  };
  s.after(milliseconds(1), chain);
  s.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now(), milliseconds(5));
}

TEST(SchedulerTest, StepProcessesExactlyOne) {
  Scheduler s;
  int count = 0;
  s.at(1, [&] { ++count; });
  s.at(2, [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(SchedulerTest, DeterministicRng) {
  Scheduler a, b;
  a.seed(1);
  b.seed(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.rng()(), b.rng()());
}

TEST(SchedulerTest, TimeNeverGoesBackwards) {
  Scheduler s;
  SimTime last = 0;
  bool monotonic = true;
  for (int i = 100; i > 0; --i) {
    s.at(milliseconds(i), [&, i] {
      if (s.now() < last) monotonic = false;
      last = s.now();
    });
  }
  s.run();
  EXPECT_TRUE(monotonic);
}

TEST(SchedulerTest, DurationHelpers) {
  EXPECT_EQ(milliseconds(1), microseconds(1000));
  EXPECT_EQ(seconds(1), milliseconds(1000));
  EXPECT_EQ(format_time(seconds(12) + microseconds(345678)), "12.345678s");
}

TEST(SchedulerTest, EventsProcessedCounter) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.at(i, [] {});
  s.run();
  EXPECT_EQ(s.events_processed(), 7u);
}

// --- window-boundary edges (the sharded kernel's run_until contract) ---

TEST(SchedulerTest, RunUntilIsInclusiveOfBoundaryTime) {
  // The kernel's window loop relies on run_until(W) firing events at
  // exactly W in that window — an event at the barrier time must not
  // leak into the next window.
  Scheduler s;
  bool at_boundary = false;
  bool past_boundary = false;
  s.at(milliseconds(5), [&] { at_boundary = true; });
  s.at(milliseconds(5) + 1, [&] { past_boundary = true; });
  s.run_until(milliseconds(5));
  EXPECT_TRUE(at_boundary);
  EXPECT_FALSE(past_boundary);
  EXPECT_EQ(s.now(), milliseconds(5));
  s.run_until(milliseconds(5));  // idempotent at the same boundary
  EXPECT_FALSE(past_boundary);
}

TEST(SchedulerTest, CancelAtBoundaryBeforeNextWindow) {
  // Cancelling between run_until calls (what a drained cross-shard
  // delivery's owner does at a barrier) must stop the event from
  // firing in the following window.
  Scheduler s;
  bool fired = false;
  const EventId id = s.at(milliseconds(7), [&] { fired = true; });
  s.run_until(milliseconds(5));
  EXPECT_TRUE(s.cancel(id));
  s.run_until(milliseconds(10));
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.now(), milliseconds(10));
}

TEST(SchedulerTest, NextEventTimeSkipsCancelledEntries) {
  Scheduler s;
  EXPECT_EQ(s.next_event_time(), kNoEventTime);
  const EventId a = s.at(milliseconds(2), [] {});
  s.at(milliseconds(4), [] {});
  EXPECT_EQ(s.next_event_time(), milliseconds(2));
  EXPECT_TRUE(s.cancel(a));
  // The cancelled head must be invisible (it is lazily popped).
  EXPECT_EQ(s.next_event_time(), milliseconds(4));
  s.run();
  EXPECT_EQ(s.next_event_time(), kNoEventTime);
}

TEST(SchedulerTest, RunUntilAdvancesClockOverEmptyQueue) {
  // Idle shards still advance to the window end so the global floor
  // can move past them.
  Scheduler s;
  EXPECT_EQ(s.run_until(milliseconds(3)), 0u);
  EXPECT_EQ(s.now(), milliseconds(3));
}

}  // namespace
}  // namespace hcm::sim
