// Tier-1 telemetry determinism audit (ISSUE 9 satellite): with
// per-shard metric slabs installed and the TimeSeriesRecorder sampling
// at window barriers, a double run of the City testbed at a fixed
// shard count must be bit-identical — same FNV series hash (covering
// every series' name, grid origin, and values), same sample count,
// and the health monitor must flip the same rules at the same virtual
// instants. Telemetry that perturbs the simulation would betray
// itself here before it corrupted a capacity study.
#include <gtest/gtest.h>

#include <cstdint>

#include "obs/health.hpp"
#include "obs/slab.hpp"
#include "obs/timeseries.hpp"
#include "sim/sharded_kernel.hpp"
#include "testbed/city.hpp"

namespace hcm {
namespace {

struct TelemetryRun {
  std::uint64_t series_hash = 0;
  std::uint64_t samples = 0;
  std::uint64_t transitions = 0;
  std::uint64_t reports = 0;
};

TelemetryRun run_city_with_telemetry(sim::ShardId shards) {
  sim::ShardedKernelOptions kopts;
  kopts.shards = shards;
  sim::ShardedKernel kernel(kopts);
  obs::ShardSlabs slabs(shards);

  obs::HealthMonitor mon;
  EXPECT_TRUE(
      mon.add_rule_spec("stall: rate(sim.shard.*.events, window=500ms) < 1")
          .is_ok());

  obs::TimeSeriesOptions topts;
  topts.tiers = {{sim::milliseconds(100), 128}, {sim::seconds(1), 64}};
  topts.prefixes = {"vsg.", "events."};
  obs::TimeSeriesRecorder rec(topts);
  rec.set_health(&mon);
  rec.attach(kernel);

  testbed::CityOptions copts;
  copts.islands = 6;
  copts.devices_per_island = 3;
  testbed::City city(kernel, copts);
  city.start();
  kernel.run_for(sim::seconds(3));
  rec.detach();

  return {rec.series_hash(), rec.samples_taken(), mon.transitions(),
          city.reports_received()};
}

void expect_double_run_identical(sim::ShardId shards) {
  const TelemetryRun a = run_city_with_telemetry(shards);
  const TelemetryRun b = run_city_with_telemetry(shards);
  ASSERT_GT(a.samples, 0u) << "recorder never sampled at " << shards
                           << " shard(s)";
  ASSERT_GT(a.reports, 0u) << "city produced no traffic to record";
  EXPECT_EQ(a.series_hash, b.series_hash)
      << "series diverged between identical " << shards << "-shard runs";
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.transitions, b.transitions)
      << "health rule flips diverged between identical runs";
  EXPECT_EQ(a.reports, b.reports);
}

TEST(SeriesDeterminismTest, OneShardDoubleRunIdentical) {
  expect_double_run_identical(1);
}

TEST(SeriesDeterminismTest, TwoShardDoubleRunIdentical) {
  expect_double_run_identical(2);
}

TEST(SeriesDeterminismTest, FourShardDoubleRunIdentical) {
  expect_double_run_identical(4);
}

}  // namespace
}  // namespace hcm
