// The determinism-audit contract (docs/CORRECTNESS.md): the same
// scenario with the same seed must dispatch the exact same (time,
// event-id) sequence. The fig4 Jini->X10 transaction crosses every
// layer — Jini RMI, SOAP/HTTP, the VSG/PCM pair, CM11A serial and the
// powerline — so a trace-hash mismatch here catches nondeterminism
// anywhere in the stack (unordered-map iteration leaking into event
// order, wall-clock reads, future races).
#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "common/check.hpp"
#include "testbed/home.hpp"

namespace hcm {
namespace {

TEST(TraceRecorderTest, HashesDispatchSequence) {
  sim::Scheduler s;
  sim::TraceRecorder trace(s);
  s.after(sim::milliseconds(1), [] {});
  s.after(sim::milliseconds(2), [] {});
  s.run();
  EXPECT_EQ(trace.events(), 2u);
  EXPECT_EQ(trace.last_time(), sim::milliseconds(2));

  sim::Scheduler s2;
  sim::TraceRecorder trace2(s2);
  s2.after(sim::milliseconds(1), [] {});
  s2.after(sim::milliseconds(2), [] {});
  s2.run();
  EXPECT_EQ(trace.digest(), trace2.digest());
}

TEST(TraceRecorderTest, DifferentSequencesDifferentDigests) {
  sim::Scheduler a;
  sim::TraceRecorder ta(a);
  a.after(sim::milliseconds(1), [] {});
  a.run();

  sim::Scheduler b;
  sim::TraceRecorder tb(b);
  b.after(sim::milliseconds(2), [] {});
  b.run();

  EXPECT_NE(ta.digest(), tb.digest());
}

TEST(TraceRecorderTest, DetachesOnDestruction) {
  sim::Scheduler s;
  std::uint64_t digest = 0;
  {
    sim::TraceRecorder trace(s);
    s.after(sim::milliseconds(1), [] {});
    s.run();
    digest = trace.digest();
    EXPECT_EQ(trace.events(), 1u);
  }
  s.after(sim::milliseconds(1), [] {});
  s.run();  // no recorder attached; must not crash or record
  EXPECT_NE(digest, 0u);
}

TEST(CheckTest, PassingCheckIsANoop) {
  HCM_CHECK(1 + 1 == 2);
  HCM_CHECK_MSG(true, "never shown");
  HCM_DCHECK(true);
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(HCM_CHECK(1 == 2), "HCM_CHECK failed: 1 == 2");
  EXPECT_DEATH(HCM_CHECK_MSG(false, "context"), "context");
}

struct ScenarioTrace {
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
  sim::SimTime end_time = 0;
};

// The fig4 transaction: a Jini client driving the X10 desk lamp
// through the full meta-middleware path, several round trips — plus a
// cross-island event subscription, so bridge dispatch (batching,
// leases, VSG-to-VSG delivery) is part of the audited trace.
ScenarioTrace run_fig4_scenario(std::uint64_t seed) {
  sim::Scheduler sched;
  sched.seed(seed);
  sim::TraceRecorder trace(sched);
  testbed::SmartHome home(sched);
  EXPECT_TRUE(home.refresh().is_ok());

  std::optional<Result<std::string>> lease;
  std::uint64_t delivered = 0;
  home.meta->island("jini-island")
      ->events->subscribe(
          "vcr-1", "transportChanged",
          [&](const std::string&, const std::string&, const Value&) {
            ++delivered;
          },
          [&](Result<std::string> r) { lease = std::move(r); });
  sim::run_until_done(sched, [&] { return lease.has_value(); });
  EXPECT_TRUE(lease.has_value() && lease->is_ok());

  for (int i = 0; i < 6; ++i) {
    std::optional<Result<Value>> r;
    home.jini_adapter->invoke("desk-lamp", i % 2 == 0 ? "turnOn" : "turnOff",
                              {}, [&](Result<Value> v) { r = std::move(v); });
    sim::run_until_done(sched, [&] { return r.has_value(); });
    EXPECT_TRUE(r.has_value());
    if (r.has_value()) {
      EXPECT_TRUE(r->is_ok()) << r->status().to_string();
    }
  }

  // Drive the VCR so transportChanged events cross the bridge.
  for (const char* method : {"record", "stop"}) {
    std::optional<Result<Value>> r;
    ValueList args;
    if (std::string(method) == "record") args.push_back(Value(std::int64_t{1}));
    home.jini_adapter->invoke(
        "vcr-1", method, args, [&](Result<Value> v) { r = std::move(v); });
    sim::run_until_done(sched, [&] { return r.has_value(); });
    EXPECT_TRUE(r.has_value());
  }
  sched.run_for(sim::seconds(1));
  EXPECT_GE(delivered, 2u);
  return {trace.digest(), trace.events(), sched.now()};
}

TEST(DeterminismAuditTest, Fig4DoubleRunProducesIdenticalTraceHash) {
  ScenarioTrace first = run_fig4_scenario(42);
  ScenarioTrace second = run_fig4_scenario(42);

  ASSERT_GT(first.events, 0u);
  EXPECT_EQ(first.digest, second.digest)
      << "dispatch sequences diverged between identical runs — "
         "nondeterminism has entered the sim kernel or the framework";
  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.end_time, second.end_time);
}

}  // namespace
}  // namespace hcm
