#include "havi/messaging.hpp"

#include <gtest/gtest.h>

namespace hcm::havi {
namespace {

class HaviMessagingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    node_a = &net.add_node("fav");
    node_b = &net.add_node("vcr-device");
    bus = &net.add_ieee1394("firewire");
    net.attach(*node_a, *bus);
    net.attach(*node_b, *bus);
    ms_a = std::make_unique<MessagingSystem>(net, node_a->id());
    ms_b = std::make_unique<MessagingSystem>(net, node_b->id());
    ASSERT_TRUE(ms_a->start().is_ok());
    ASSERT_TRUE(ms_b->start().is_ok());
  }

  sim::Scheduler sched;
  net::Network net{sched};
  net::Node* node_a = nullptr;
  net::Node* node_b = nullptr;
  net::Ieee1394Bus* bus = nullptr;
  std::unique_ptr<MessagingSystem> ms_a;
  std::unique_ptr<MessagingSystem> ms_b;
};

TEST_F(HaviMessagingTest, SeidValueRoundTrip) {
  Seid seid{5, 17};
  auto decoded = Seid::from_value(seid.to_value());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), seid);
  EXPECT_FALSE(Seid::from_value(Value("x")).is_ok());
}

TEST_F(HaviMessagingTest, RemoteRequestReply) {
  Seid echo = ms_b->register_element(
      [](const std::string& op, const ValueList& args, InvokeResultFn done) {
        if (op == "echo") {
          done(args.empty() ? Value() : args[0]);
        } else {
          done(not_found("?"));
        }
      });
  Seid self = ms_a->register_element(nullptr);
  std::optional<Result<Value>> result;
  ms_a->send_request(self, echo, "echo", {Value("hello")},
                     [&](Result<Value> r) { result = std::move(r); });
  sched.run();
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->is_ok());
  EXPECT_EQ(result->value(), Value("hello"));
}

TEST_F(HaviMessagingTest, LocalDeliveryWorks) {
  Seid echo = ms_a->register_element(
      [](const std::string&, const ValueList& args, InvokeResultFn done) {
        done(args[0]);
      });
  Seid self = ms_a->register_element(nullptr);
  std::optional<Result<Value>> result;
  ms_a->send_request(self, echo, "x", {Value(3)},
                     [&](Result<Value> r) { result = std::move(r); });
  sched.run();
  ASSERT_TRUE(result->is_ok());
  EXPECT_EQ(result->value(), Value(3));
}

TEST_F(HaviMessagingTest, ErrorsPropagate) {
  Seid failing = ms_b->register_element(
      [](const std::string&, const ValueList&, InvokeResultFn done) {
        done(unavailable("tape jammed"));
      });
  Seid self = ms_a->register_element(nullptr);
  std::optional<Result<Value>> result;
  ms_a->send_request(self, failing, "op", {},
                     [&](Result<Value> r) { result = std::move(r); });
  sched.run();
  ASSERT_FALSE(result->is_ok());
  EXPECT_EQ(result->status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(result->status().message(), "tape jammed");
}

TEST_F(HaviMessagingTest, UnknownDestinationFails) {
  Seid self = ms_a->register_element(nullptr);
  std::optional<Result<Value>> result;
  ms_a->send_request(self, Seid{node_b->id(), 9999}, "op", {},
                     [&](Result<Value> r) { result = std::move(r); });
  sched.run();
  ASSERT_FALSE(result->is_ok());
  EXPECT_EQ(result->status().code(), StatusCode::kNotFound);
}

TEST_F(HaviMessagingTest, RequestTimesOutWhenBusDown) {
  Seid echo = ms_b->register_element(
      [](const std::string&, const ValueList&, InvokeResultFn done) {
        done(Value(1));
      });
  Seid self = ms_a->register_element(nullptr);
  bus->set_up(false);
  std::optional<Result<Value>> result;
  ms_a->send_request(self, echo, "x", {},
                     [&](Result<Value> r) { result = std::move(r); });
  sched.run();
  ASSERT_TRUE(result.has_value());
  ASSERT_FALSE(result->is_ok());
  EXPECT_EQ(result->status().code(), StatusCode::kTimeout);
}

TEST_F(HaviMessagingTest, NotificationIsFireAndForget) {
  int received = 0;
  ms_b->register_element(
      [&](const std::string& op, const ValueList&, InvokeResultFn done) {
        if (op == "tick") ++received;
        done(Value());
      });
  // Handles are deterministic: first user element gets kFirstUserHandle.
  Seid target{node_b->id(), kFirstUserHandle};
  Seid self = ms_a->register_element(nullptr);
  ms_a->send_notification(self, target, "tick", {});
  ms_a->send_notification(self, target, "tick", {});
  sched.run();
  EXPECT_EQ(received, 2);
}

TEST_F(HaviMessagingTest, SystemElementHandleConflict) {
  auto first = ms_a->register_system_element(kRegistryHandle, nullptr);
  ASSERT_TRUE(first.is_ok());
  auto second = ms_a->register_system_element(kRegistryHandle, nullptr);
  EXPECT_FALSE(second.is_ok());
  EXPECT_EQ(second.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(HaviMessagingTest, UnregisterStopsDispatch) {
  Seid echo = ms_b->register_element(
      [](const std::string&, const ValueList&, InvokeResultFn done) {
        done(Value(1));
      });
  ms_b->unregister_element(echo);
  Seid self = ms_a->register_element(nullptr);
  std::optional<Result<Value>> result;
  ms_a->send_request(self, echo, "x", {},
                     [&](Result<Value> r) { result = std::move(r); });
  sched.run();
  ASSERT_FALSE(result->is_ok());
}

}  // namespace
}  // namespace hcm::havi
