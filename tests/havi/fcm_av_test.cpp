// Focused tests for the AV FCMs not fully covered by the stack test:
// tuner, display, and VCR playback mechanics.
#include <gtest/gtest.h>

#include "havi/fcm_av.hpp"

namespace hcm::havi {
namespace {

class FcmAvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    node = &net.add_node("av-node");
    bus = &net.add_ieee1394("firewire");
    net.attach(*node, *bus);
    ms = std::make_unique<MessagingSystem>(net, node->id());
    ASSERT_TRUE(ms->start().is_ok());
  }

  Result<Value> call(Fcm& fcm, const std::string& op, const ValueList& args) {
    Seid self = ms->register_element(nullptr);
    std::optional<Result<Value>> result;
    ms->send_request(self, fcm.seid(), op, args,
                     [&](Result<Value> r) { result = std::move(r); });
    sim::run_until_done(sched, [&] { return result.has_value(); });
    ms->unregister_element(self);
    EXPECT_TRUE(result.has_value());
    return result.value_or(internal_error("no reply"));
  }

  // Drives the stream-manager hooks directly.
  Status connect_source(Fcm& fcm, net::IsoChannel ch) {
    Seid self = ms->register_element(nullptr);
    std::optional<Result<Value>> result;
    ms->send_request(self, fcm.seid(), "sm.connectSource",
                     {Value(static_cast<std::int64_t>(ch))},
                     [&](Result<Value> r) { result = std::move(r); });
    sim::run_until_done(sched, [&] { return result.has_value(); });
    return result->is_ok() ? Status::ok() : result->status();
  }
  Status connect_sink(Fcm& fcm, net::IsoChannel ch) {
    Seid self = ms->register_element(nullptr);
    std::optional<Result<Value>> result;
    ms->send_request(self, fcm.seid(), "sm.connectSink",
                     {Value(static_cast<std::int64_t>(ch))},
                     [&](Result<Value> r) { result = std::move(r); });
    sim::run_until_done(sched, [&] { return result.has_value(); });
    return result->is_ok() ? Status::ok() : result->status();
  }

  sim::Scheduler sched;
  net::Network net{sched};
  net::Node* node = nullptr;
  net::Ieee1394Bus* bus = nullptr;
  std::unique_ptr<MessagingSystem> ms;
};

TEST_F(FcmAvTest, TunerChannelBounds) {
  TunerFcm tuner(*ms, *bus, "huid-t", "tuner");
  EXPECT_TRUE(call(tuner, "setChannel", {Value(1)}).is_ok());
  EXPECT_TRUE(call(tuner, "setChannel", {Value(999)}).is_ok());
  EXPECT_FALSE(call(tuner, "setChannel", {Value(0)}).is_ok());
  EXPECT_FALSE(call(tuner, "setChannel", {Value(1000)}).is_ok());
  auto got = call(tuner, "getChannel", {});
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value(), Value(999));
}

TEST_F(FcmAvTest, TunerStreamsWhenConnected) {
  TunerFcm tuner(*ms, *bus, "huid-t", "tuner");
  auto ch = bus->allocate_channel(512);
  ASSERT_TRUE(ch.is_ok());
  std::uint64_t frames = 0;
  bus->listen_channel(ch.value(),
                      [&](net::IsoChannel, const Bytes&) { ++frames; });
  ASSERT_TRUE(connect_source(tuner, ch.value()).is_ok());
  sched.run_for(sim::seconds(2));
  EXPECT_GT(frames, 30u);  // ~30fps broadcast
}

TEST_F(FcmAvTest, DisplayCountsOnlyWhenPowered) {
  DisplayFcm display(*ms, *bus, "huid-d", "display");
  auto ch = bus->allocate_channel(512);
  ASSERT_TRUE(ch.is_ok());
  ASSERT_TRUE(connect_sink(display, ch.value()).is_ok());
  // Powered off: frames are ignored.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(bus->send_iso(ch.value(), Bytes(128)).is_ok());
  }
  sched.run_for(sim::seconds(1));
  EXPECT_EQ(display.frames_shown(), 0u);
  // Powered on: frames count.
  ASSERT_TRUE(call(display, "powerOn", {}).is_ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(bus->send_iso(ch.value(), Bytes(128)).is_ok());
  }
  sched.run_for(sim::seconds(1));
  EXPECT_EQ(display.frames_shown(), 5u);
}

TEST_F(FcmAvTest, DisplayInputSelection) {
  DisplayFcm display(*ms, *bus, "huid-d", "display");
  ASSERT_TRUE(call(display, "selectInput", {Value("composite")}).is_ok());
  auto status = call(display, "getStatus", {});
  ASSERT_TRUE(status.is_ok());
  EXPECT_EQ(status.value().at("input"), Value("composite"));
}

TEST_F(FcmAvTest, VcrPlaybackStopsAtEndOfTape) {
  VcrFcm vcr(*ms, *bus, "huid-v", "vcr");
  // Record ~2 seconds of "tape".
  ASSERT_TRUE(call(vcr, "record", {Value(1)}).is_ok());
  sched.run_for(sim::seconds(2));
  ASSERT_TRUE(call(vcr, "stop", {}).is_ok());
  const auto tape = vcr.tape_frames();
  ASSERT_GT(tape, 10u);

  // Play back through an iso channel until the tape runs out.
  auto ch = bus->allocate_channel(512);
  ASSERT_TRUE(ch.is_ok());
  std::uint64_t frames = 0;
  bus->listen_channel(ch.value(),
                      [&](net::IsoChannel, const Bytes&) { ++frames; });
  ASSERT_TRUE(connect_source(vcr, ch.value()).is_ok());
  ASSERT_TRUE(call(vcr, "play", {}).is_ok());
  sched.run_for(sim::seconds(10));
  EXPECT_EQ(vcr.state(), TransportState::kStop);  // auto-stop at end
  EXPECT_EQ(frames, tape);                        // every frame played once
  auto counter = call(vcr, "getCounter", {});
  ASSERT_TRUE(counter.is_ok());
  EXPECT_EQ(counter.value(), Value(static_cast<std::int64_t>(tape)));
}

TEST_F(FcmAvTest, PauseHaltsRecordingProgress) {
  VcrFcm vcr(*ms, *bus, "huid-v", "vcr");
  ASSERT_TRUE(call(vcr, "record", {Value(5)}).is_ok());
  sched.run_for(sim::seconds(2));
  ASSERT_TRUE(call(vcr, "pause", {}).is_ok());
  const auto frames_at_pause = vcr.tape_frames();
  sched.run_for(sim::seconds(5));
  EXPECT_EQ(vcr.tape_frames(), frames_at_pause);
}

TEST_F(FcmAvTest, NonAvSmHooksRejected) {
  // A bare tuner connected as *sink* must be rejected (it is a source).
  TunerFcm tuner(*ms, *bus, "huid-t", "tuner");
  auto status = connect_sink(tuner, 5);
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kUnimplemented);
}

TEST_F(FcmAvTest, BadChannelNumberRejected) {
  DisplayFcm display(*ms, *bus, "huid-d", "display");
  Seid self = ms->register_element(nullptr);
  std::optional<Result<Value>> result;
  ms->send_request(self, display.seid(), "sm.connectSink", {Value(64)},
                   [&](Result<Value> r) { result = std::move(r); });
  sim::run_until_done(sched, [&] { return result.has_value(); });
  EXPECT_FALSE(result->is_ok());
}

TEST_F(FcmAvTest, AttributesDescribeTheFcm) {
  VcrFcm vcr(*ms, *bus, "huid-v", "living-room-vcr");
  auto attrs = vcr.attributes();
  EXPECT_EQ(attrs.at(kAttrSeType), Value("FCM"));
  EXPECT_EQ(attrs.at(kAttrDeviceClass), Value("VCR"));
  EXPECT_EQ(attrs.at(kAttrHuid), Value("huid-v"));
  EXPECT_EQ(attrs.at(kAttrName), Value("living-room-vcr"));
  auto iface = interface_from_value(attrs.at(kAttrInterface));
  ASSERT_TRUE(iface.is_ok());
  EXPECT_EQ(iface.value(), VcrFcm::describe_interface());
}

}  // namespace
}  // namespace hcm::havi
