// Integration tests over the full HAVi stack: FAV controller (registry,
// event manager, stream manager) + device nodes hosting DCM/FCMs.
#include <gtest/gtest.h>

#include "havi/dcm.hpp"
#include "havi/fcm_av.hpp"

namespace hcm::havi {
namespace {

class HaviStackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fav_node = &net.add_node("dtv-controller");
    vcr_node = &net.add_node("d-vhs");
    cam_node = &net.add_node("dv-camera");
    bus = &net.add_ieee1394("firewire");
    net.attach(*fav_node, *bus);
    net.attach(*vcr_node, *bus);
    net.attach(*cam_node, *bus);

    fav = std::make_unique<FavController>(net, fav_node->id(), *bus);

    vcr_ms = std::make_unique<MessagingSystem>(net, vcr_node->id());
    ASSERT_TRUE(vcr_ms->start().is_ok());
    cam_ms = std::make_unique<MessagingSystem>(net, cam_node->id());
    ASSERT_TRUE(cam_ms->start().is_ok());

    vcr_dcm = std::make_unique<Dcm>(*vcr_ms, "huid-vcr", "Living room VCR");
    auto vcr_fcm_owned = std::make_unique<VcrFcm>(*vcr_ms, *bus, "huid-vcr-t",
                                                  "vcr-transport");
    vcr_fcm = vcr_fcm_owned.get();
    vcr_dcm->add_fcm(std::move(vcr_fcm_owned));

    cam_dcm = std::make_unique<Dcm>(*cam_ms, "huid-cam", "Handycam");
    auto cam_fcm_owned =
        std::make_unique<DvCameraFcm>(*cam_ms, *bus, "huid-cam-c", "camera");
    cam_fcm = cam_fcm_owned.get();
    cam_dcm->add_fcm(std::move(cam_fcm_owned));

    // Announce both devices through per-node registry clients.
    vcr_rc = std::make_unique<RegistryClient>(*vcr_ms, vcr_dcm->seid(),
                                              fav->registry.seid());
    cam_rc = std::make_unique<RegistryClient>(*cam_ms, cam_dcm->seid(),
                                              fav->registry.seid());
    std::optional<Status> s1, s2;
    vcr_dcm->announce(*vcr_rc, [&](const Status& s) { s1 = s; });
    cam_dcm->announce(*cam_rc, [&](const Status& s) { s2 = s; });
    sched.run();
    ASSERT_TRUE(s1.has_value() && s1->is_ok()) << s1->to_string();
    ASSERT_TRUE(s2.has_value() && s2->is_ok());
  }

  // Convenience: request/reply from a fresh SE on the FAV node.
  Result<Value> call(const Seid& to, const std::string& op,
                     const ValueList& args) {
    Seid self = fav->messaging.register_element(nullptr);
    std::optional<Result<Value>> result;
    fav->messaging.send_request(self, to, op, args,
                                [&](Result<Value> r) { result = std::move(r); });
    sim::run_until_done(sched, [&] { return result.has_value(); });
    fav->messaging.unregister_element(self);
    EXPECT_TRUE(result.has_value());
    return result.value_or(internal_error("no reply"));
  }

  sim::Scheduler sched;
  net::Network net{sched};
  net::Node* fav_node = nullptr;
  net::Node* vcr_node = nullptr;
  net::Node* cam_node = nullptr;
  net::Ieee1394Bus* bus = nullptr;
  std::unique_ptr<FavController> fav;
  std::unique_ptr<MessagingSystem> vcr_ms;
  std::unique_ptr<MessagingSystem> cam_ms;
  std::unique_ptr<Dcm> vcr_dcm;
  std::unique_ptr<Dcm> cam_dcm;
  std::unique_ptr<RegistryClient> vcr_rc;
  std::unique_ptr<RegistryClient> cam_rc;
  VcrFcm* vcr_fcm = nullptr;
  DvCameraFcm* cam_fcm = nullptr;
};

TEST_F(HaviStackTest, RegistryHoldsDcmsAndFcms) {
  // 2 DCMs + 2 FCMs.
  EXPECT_EQ(fav->registry.size(), 4u);
}

TEST_F(HaviStackTest, QueryByDeviceClass) {
  RegistryClient rc(fav->messaging,
                    fav->messaging.register_element(nullptr),
                    fav->registry.seid());
  std::optional<Result<std::vector<RegistryRecord>>> found;
  rc.get_elements(ValueMap{{kAttrDeviceClass, Value("VCR")}},
                  [&](auto r) { found = std::move(r); });
  sched.run();
  ASSERT_TRUE(found->is_ok());
  ASSERT_EQ(found->value().size(), 1u);
  EXPECT_EQ(found->value()[0].seid, vcr_fcm->seid());
}

TEST_F(HaviStackTest, FcmInterfaceIsInRegistry) {
  RegistryClient rc(fav->messaging,
                    fav->messaging.register_element(nullptr),
                    fav->registry.seid());
  std::optional<Result<std::vector<RegistryRecord>>> found;
  rc.get_elements(ValueMap{{kAttrDeviceClass, Value("CAMERA")}},
                  [&](auto r) { found = std::move(r); });
  sched.run();
  ASSERT_TRUE(found->is_ok());
  ASSERT_EQ(found->value().size(), 1u);
  auto iface = interface_from_value(
      found->value()[0].attributes.at(kAttrInterface));
  ASSERT_TRUE(iface.is_ok());
  EXPECT_EQ(iface.value(), DvCameraFcm::describe_interface());
}

TEST_F(HaviStackTest, VcrTransportStateMachine) {
  EXPECT_EQ(vcr_fcm->state(), TransportState::kStop);
  // Empty tape: play fails.
  auto play_empty = call(vcr_fcm->seid(), "play", {});
  EXPECT_FALSE(play_empty.is_ok());
  // Record for one minute.
  auto rec = call(vcr_fcm->seid(), "record", {Value(1)});
  ASSERT_TRUE(rec.is_ok()) << rec.status().to_string();
  sched.run_until(sched.now() + sim::seconds(30));
  EXPECT_EQ(vcr_fcm->state(), TransportState::kRecord);
  sched.run_until(sched.now() + sim::seconds(40));
  EXPECT_EQ(vcr_fcm->state(), TransportState::kStop);
  EXPECT_GT(vcr_fcm->tape_frames(), 1000u);  // ~30fps * 60s

  auto play = call(vcr_fcm->seid(), "play", {});
  EXPECT_TRUE(play.is_ok());
  auto state = call(vcr_fcm->seid(), "getTransportState", {});
  ASSERT_TRUE(state.is_ok());
  EXPECT_EQ(state.value(), Value("PLAY"));
}

TEST_F(HaviStackTest, PauseFromStopRejected) {
  auto r = call(vcr_fcm->seid(), "pause", {});
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(HaviStackTest, ArgumentsValidatedAgainstInterface) {
  auto r = call(vcr_fcm->seid(), "record", {Value("sixty")});
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  auto r2 = call(vcr_fcm->seid(), "record", {});
  EXPECT_FALSE(r2.is_ok());
}

TEST_F(HaviStackTest, CameraToVcrStreaming) {
  // Start capture, connect camera -> VCR, record: frames land on tape.
  ASSERT_TRUE(call(cam_fcm->seid(), "startCapture", {}).is_ok());
  StreamManagerClient smc(fav->messaging,
                          fav->messaging.register_element(nullptr),
                          fav->stream_manager.seid());
  std::optional<Result<StreamConnection>> conn;
  smc.connect(cam_fcm->seid(), vcr_fcm->seid(),
              [&](Result<StreamConnection> r) { conn = std::move(r); });
  sim::run_until_done(sched, [&] { return conn.has_value(); });
  ASSERT_TRUE(conn.has_value());
  ASSERT_TRUE(conn->is_ok()) << conn->status().to_string();
  EXPECT_EQ(fav->stream_manager.connection_count(), 1u);

  ASSERT_TRUE(call(vcr_fcm->seid(), "record", {Value(1)}).is_ok());
  sched.run_until(sched.now() + sim::seconds(10));
  EXPECT_GT(cam_fcm->frames_sent(), 100u);
  EXPECT_GT(vcr_fcm->tape_frames(), 100u);

  // Disconnect releases the iso channel.
  std::optional<Status> disc;
  smc.disconnect(conn->value().id, [&](const Status& s) { disc = s; });
  sim::run_until_done(sched, [&] { return disc.has_value(); });
  sched.run_for(sim::seconds(1));  // let sm.disconnect notifications land
  ASSERT_TRUE(disc.has_value() && disc->is_ok());
  EXPECT_EQ(fav->stream_manager.connection_count(), 0u);
  EXPECT_EQ(bus->channels_in_use(), 0);
}

TEST_F(HaviStackTest, StreamConnectToNonAvElementFails) {
  // The registry SE is not an AV FCM: connect must fail and release
  // the channel.
  StreamManagerClient smc(fav->messaging,
                          fav->messaging.register_element(nullptr),
                          fav->stream_manager.seid());
  std::optional<Result<StreamConnection>> conn;
  smc.connect(cam_fcm->seid(), fav->registry.seid(),
              [&](Result<StreamConnection> r) { conn = std::move(r); });
  sim::run_until_done(sched, [&] { return conn.has_value(); });
  ASSERT_TRUE(conn.has_value());
  EXPECT_FALSE(conn->is_ok());
  EXPECT_EQ(bus->channels_in_use(), 0);
}

TEST_F(HaviStackTest, EventSubscriptionAndPost) {
  Seid subscriber = fav->messaging.register_element(nullptr);
  std::vector<std::string> events;
  fav->messaging.unregister_element(subscriber);
  subscriber = fav->messaging.register_element(
      [&](const std::string& op, const ValueList& args, InvokeResultFn done) {
        if (op == "event" && !args.empty() && args[0].is_string()) {
          events.push_back(args[0].as_string());
        }
        done(Value());
      });
  EventClient ec(fav->messaging, subscriber, fav->event_manager.seid());
  std::optional<Status> sub;
  ec.subscribe("TapeInserted", [&](const Status& s) { sub = s; });
  sched.run();
  ASSERT_TRUE(sub.has_value() && sub->is_ok());

  EventClient poster(*vcr_ms, vcr_dcm->seid(), fav->event_manager.seid());
  poster.post("TapeInserted", Value("T-120"));
  sched.run();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0], "TapeInserted");
}

TEST_F(HaviStackTest, BusResetEventReachesSubscribers) {
  std::vector<std::string> events;
  Seid subscriber = fav->messaging.register_element(
      [&](const std::string& op, const ValueList& args, InvokeResultFn done) {
        if (op == "event" && !args.empty()) {
          events.push_back(args[0].as_string());
        }
        done(Value());
      });
  EventClient ec(fav->messaging, subscriber, fav->event_manager.seid());
  ec.subscribe(kEventNetworkReset, [](const Status&) {});
  sched.run();
  bus->reset_bus();
  sched.run();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0], kEventNetworkReset);
}

TEST_F(HaviStackTest, BusResetPurgesDepartedNodes) {
  EXPECT_EQ(fav->registry.size(), 4u);
  // Simulate device departure: in 1394 terms the node leaves the bus.
  // Our Segment keeps membership; model departure by a registry purge
  // after the node goes down... the registry purges entries whose node
  // is no longer on the bus — since membership is static in the sim,
  // verify reset keeps live entries instead.
  bus->reset_bus();
  sched.run();
  EXPECT_EQ(fav->registry.size(), 4u);
}

TEST_F(HaviStackTest, DcmReportsItsFcms) {
  auto info = call(vcr_dcm->seid(), "getDeviceInfo", {});
  ASSERT_TRUE(info.is_ok());
  EXPECT_EQ(info.value().at("huid"), Value("huid-vcr"));
  ASSERT_TRUE(info.value().at("fcms").is_list());
  EXPECT_EQ(info.value().at("fcms").as_list().size(), 1u);
}

TEST_F(HaviStackTest, CameraZoomValidation) {
  EXPECT_TRUE(call(cam_fcm->seid(), "zoom", {Value(5)}).is_ok());
  EXPECT_FALSE(call(cam_fcm->seid(), "zoom", {Value(0)}).is_ok());
  EXPECT_FALSE(call(cam_fcm->seid(), "zoom", {Value(25)}).is_ok());
  auto status = call(cam_fcm->seid(), "getStatus", {});
  ASSERT_TRUE(status.is_ok());
  EXPECT_EQ(status.value().at("zoom"), Value(5));
}

}  // namespace
}  // namespace hcm::havi
