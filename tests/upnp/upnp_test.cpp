#include "upnp/upnp.hpp"

#include <gtest/gtest.h>

#include "xml/xml.hpp"

namespace hcm::upnp {
namespace {

InterfaceDesc lamp_interface() {
  return InterfaceDesc{
      "BinaryLight",
      {MethodDesc{"setTarget", {{"on", ValueType::kBool}}, ValueType::kBool,
                  false},
       MethodDesc{"getTarget", {}, ValueType::kBool, false}}};
}

class UpnpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_node = &net.add_node("smart-plug");
    cp_node = &net.add_node("controller");
    auto& eth = net.add_ethernet("lan", sim::microseconds(200), 100'000'000);
    net.attach(*device_node, eth);
    net.attach(*cp_node, eth);

    device = std::make_unique<UpnpDevice>(net, device_node->id(),
                                          "Smart Plug");
    device->add_service("plug-1", lamp_interface(),
                        [this](const std::string& method,
                               const ValueList& args, InvokeResultFn done) {
                          if (method == "setTarget") {
                            on = args[0].as_bool();
                            done(Value(true));
                          } else if (method == "getTarget") {
                            done(Value(on));
                          } else {
                            done(not_found(method));
                          }
                        });
    ASSERT_TRUE(device->start().is_ok());
    cp = std::make_unique<ControlPoint>(net, cp_node->id());
  }

  std::vector<DeviceDescription> discover() {
    std::optional<std::vector<DeviceDescription>> found;
    cp->search(sim::milliseconds(100),
               [&](std::vector<DeviceDescription> d) { found = std::move(d); });
    sched.run();
    EXPECT_TRUE(found.has_value());
    return found.value_or(std::vector<DeviceDescription>{});
  }

  sim::Scheduler sched;
  net::Network net{sched};
  net::Node* device_node = nullptr;
  net::Node* cp_node = nullptr;
  std::unique_ptr<UpnpDevice> device;
  std::unique_ptr<ControlPoint> cp;
  bool on = false;
};

TEST_F(UpnpTest, SearchFindsDeviceAndServices) {
  auto devices = discover();
  ASSERT_EQ(devices.size(), 1u);
  EXPECT_EQ(devices[0].friendly_name, "Smart Plug");
  EXPECT_FALSE(devices[0].udn.empty());
  ASSERT_EQ(devices[0].services.size(), 1u);
  EXPECT_EQ(devices[0].services[0].service_id, "plug-1");
  EXPECT_EQ(devices[0].services[0].interface, lamp_interface());
}

TEST_F(UpnpTest, InvokeActionRoundTrip) {
  auto devices = discover();
  ASSERT_EQ(devices.size(), 1u);
  const auto& svc = devices[0].services[0];

  std::optional<Result<Value>> result;
  cp->invoke(svc, "setTarget", {Value(true)},
             [&](Result<Value> r) { result = std::move(r); });
  sched.run();
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->is_ok()) << result->status().to_string();
  EXPECT_TRUE(on);

  std::optional<Result<Value>> get;
  cp->invoke(svc, "getTarget", {}, [&](Result<Value> r) { get = std::move(r); });
  sched.run();
  ASSERT_TRUE(get->is_ok());
  EXPECT_EQ(get->value(), Value(true));
}

TEST_F(UpnpTest, InvokeValidatesArguments) {
  auto devices = discover();
  const auto& svc = devices[0].services[0];
  std::optional<Result<Value>> result;
  cp->invoke(svc, "setTarget", {Value("yes")},
             [&](Result<Value> r) { result = std::move(r); });
  sched.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->is_ok());
}

TEST_F(UpnpTest, UnknownActionRejected) {
  auto devices = discover();
  const auto& svc = devices[0].services[0];
  std::optional<Result<Value>> result;
  cp->invoke(svc, "explode", {}, [&](Result<Value> r) { result = std::move(r); });
  sched.run();
  EXPECT_FALSE(result->is_ok());
}

TEST_F(UpnpTest, MultipleDevicesDiscovered) {
  UpnpDevice second(net, net.add_node("tv").id(), "Television", 5001);
  net.attach(*net.find_node("tv"),
             *net.segments()[0]);  // same LAN
  second.add_service("tv-1", lamp_interface(),
                     [](const std::string&, const ValueList&,
                        InvokeResultFn done) { done(Value(true)); });
  ASSERT_TRUE(second.start().is_ok());
  auto devices = discover();
  EXPECT_EQ(devices.size(), 2u);
}

TEST_F(UpnpTest, SearchWithNoDevices) {
  device_node->set_up(false);
  auto devices = discover();
  EXPECT_TRUE(devices.empty());
}

TEST_F(UpnpTest, DescriptionIsValidXmlOverHttp) {
  http::HttpClient http(net, cp_node->id());
  std::optional<Result<http::Response>> resp;
  http::Request req;
  req.target = "/description.xml";
  http.request(device->http_endpoint(), std::move(req),
               [&](Result<http::Response> r) { resp = std::move(r); });
  sched.run();
  ASSERT_TRUE(resp.has_value() && resp->is_ok());
  auto doc = xml::parse(resp->value().body);
  ASSERT_TRUE(doc.is_ok());
  EXPECT_NE(doc.value()->child("device"), nullptr);
}

}  // namespace
}  // namespace hcm::upnp
