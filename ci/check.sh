#!/usr/bin/env bash
# Full PR gate (docs/CORRECTNESS.md §5):
#   1. tier-1: default preset (-Werror) build + full ctest, which
#      includes the hcm_lint contract check and the determinism audit;
#   2. the same suite under ASan+UBSan (asan preset), with an explicit
#      event-bridge pass (leases, backpressure, retry paths exercise
#      the trickiest object lifetimes in the tree);
#   3. standalone hcm_lint run for a readable summary;
#   4. smoke-run of the event-bridge fan-out bench;
#   5. smoke-run of the VSR sync bench, archiving BENCH_vsr_sync.json.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "=== [1/5] tier-1: default preset (-Werror) ==="
cmake --preset default
cmake --build --preset default -j "${JOBS}"
ctest --preset default -j "${JOBS}"

echo "=== [2/5] sanitizers: asan preset (ASan + UBSan) ==="
cmake --preset asan
cmake --build --preset asan -j "${JOBS}"
ctest --preset asan -j "${JOBS}" -R 'EventBridge'
ctest --preset asan -j "${JOBS}"

echo "=== [3/5] hcm_lint summary ==="
./build/tools/hcm_lint/hcm_lint --root .

echo "=== [4/5] event-bridge bench smoke run ==="
./build/bench/bench_ext_event_bridge --benchmark_min_time=0.01

echo "=== [5/5] VSR sync bench smoke run (archives BENCH_vsr_sync.json) ==="
./build/bench/bench_ext_vsr_sync --benchmark_min_time=0.01 \
  --json BENCH_vsr_sync.json

echo "All checks passed."
