#!/usr/bin/env bash
# Full PR gate (docs/CORRECTNESS.md §6):
#   1. tier-1: default preset (-Werror) build + full ctest, which
#      includes the hcm_lint contract check and the determinism audit;
#   2. the same suite under ASan+UBSan (asan preset), with an explicit
#      event-bridge pass (leases, backpressure, retry paths exercise
#      the trickiest object lifetimes in the tree);
#   3. races: tsan preset over the concurrency-sensitive suites —
#      the sharded kernel (SPSC channels, window barrier, the fig. 4
#      audit at 2/4 shards, the City testbed) plus the scheduler,
#      event bridge and net/stream/channel stacks;
#   4. standalone hcm_lint run for a readable summary;
#   5. hcm_analyze: the five static-analysis passes (docs/CORRECTNESS.md
#      §"Static analysis") must report zero unsuppressed findings;
#      archives ANALYZE_report.json next to the BENCH_*.json artifacts;
#   6. smoke-run of the event-bridge fan-out bench;
#   7. smoke-run of the VSR sync bench, archiving BENCH_vsr_sync.json;
#   8. observability overhead bench, archiving BENCH_obs_overhead.json,
#      plus a trace-export smoke check: the bench records one 3-island
#      chain and the Chrome trace it writes must carry complete events;
#   9. wire-throughput bench under the perf preset (Release -O2 — the
#      optimization level the numbers in docs/PERFORMANCE.md use),
#      archiving BENCH_wire_throughput.json;
#  10. durable-store gate: smoke-run of the store recovery bench
#      (archives BENCH_store_recovery.json), then `hcm_store fsck` +
#      `stats` over the store it leaves behind — the on-disk formats
#      must verify end to end with the standalone tool, not just
#      through the library that wrote them;
#  11. shard-scaling sweep + the 1,000-island/100k-device smoke
#      scenario, archiving BENCH_shard_scaling.json — the bench itself
#      fails on a non-repeatable trace digest or a lookahead-contract
#      violation (clamped delivery). The smoke run records telemetry:
#      per-shard slabs + TimeSeriesRecorder + one health rule, dumping
#      the series to SERIES_smoke.json;
#  12. fleet telemetry gate: hcm_top must render the smoke-run series
#      dump (top ops, shard throughput, health) with a nonzero row
#      count — the dump format, the hcm_top parser, and the dashboard
#      panels verify end to end on real scenario data.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "=== [1/12] tier-1: default preset (-Werror) ==="
cmake --preset default
cmake --build --preset default -j "${JOBS}"
ctest --preset default -j "${JOBS}"

echo "=== [2/12] sanitizers: asan preset (ASan + UBSan) ==="
cmake --preset asan
cmake --build --preset asan -j "${JOBS}"
ctest --preset asan -j "${JOBS}" -R 'EventBridge'
# The kill -9 store-recovery harness must hold under ASan specifically:
# replaying torn on-disk state is where stale-pointer/oob bugs hide.
ctest --preset asan -j "${JOBS}" -R 'StoreCrashRecovery'
ctest --preset asan -j "${JOBS}"

echo "=== [3/12] races: tsan preset (scheduler / event bridge / net) ==="
cmake --preset tsan
cmake --build --preset tsan -j "${JOBS}"
ctest --preset tsan -j "${JOBS}" -R \
  'SchedulerTest|SpscQueueTest|WindowBarrierTest|ShardedKernelTest|ShardDeterminismTest|CityTest|DeterminismAuditTest|TraceRecorderTest|EventBridgeTest|EventBridgeUpnpTest|NetworkTest|StreamTest|Ieee1394Test|PowerlineTest|BinaryChannelTest|BlockPoolTest|ShardBlockPoolsTest'

echo "=== [4/12] hcm_lint summary ==="
./build/tools/hcm_lint/hcm_lint --root .

echo "=== [5/12] hcm_analyze: static-analysis gate (archives ANALYZE_report.json) ==="
./build/tools/hcm_analyze/hcm_analyze --root . --json ANALYZE_report.json

echo "=== [6/12] event-bridge bench smoke run ==="
./build/bench/bench_ext_event_bridge --benchmark_min_time=0.01

echo "=== [7/12] VSR sync bench smoke run (archives BENCH_vsr_sync.json) ==="
./build/bench/bench_ext_vsr_sync --benchmark_min_time=0.01 \
  --json BENCH_vsr_sync.json

echo "=== [8/12] obs overhead bench + trace-export smoke check ==="
./build/bench/bench_ext_obs_overhead --benchmark_min_time=0.01 \
  --json BENCH_obs_overhead.json --trace obs_trace_smoke.json
# The export must be a Chrome trace with complete ("ph":"X") events for
# at least the six per-hop spans of one cross-island call.
grep -q '"traceEvents"' obs_trace_smoke.json
events="$(grep -o '"ph":"X"' obs_trace_smoke.json | wc -l)"
if [ "${events}" -lt 6 ]; then
  echo "trace smoke check failed: only ${events} complete events" >&2
  exit 1
fi
echo "trace smoke check OK (${events} complete events)"
rm -f obs_trace_smoke.json

echo "=== [9/12] wire-throughput bench (perf preset, archives BENCH_wire_throughput.json) ==="
cmake --preset perf
cmake --build --preset perf -j "${JOBS}" --target bench_ext_wire_throughput
./build-perf/bench/bench_ext_wire_throughput --calls 300 --streams 5000 \
  --benchmark_min_time=0.01 --json BENCH_wire_throughput.json
grep -q '"calls_per_sec"' BENCH_wire_throughput.json
# The churn arm's pooled-block row must be present: stream-scale block
# recycling is part of the wire gate (docs/PERFORMANCE.md §"Block pool").
grep -q '"pool_hit_rate"' BENCH_wire_throughput.json

echo "=== [10/12] durable store: recovery bench + hcm_store fsck/stats ==="
store_smoke_dir="$(mktemp -d)/store"
./build/bench/bench_ext_store_recovery --benchmark_min_time=0.01 \
  --json BENCH_store_recovery.json --store-dir "${store_smoke_dir}"
grep -q '"compression_ratio"' BENCH_store_recovery.json
./build/tools/hcm_store/hcm_store fsck "${store_smoke_dir}"
./build/tools/hcm_store/hcm_store stats "${store_smoke_dir}"
rm -rf "$(dirname "${store_smoke_dir}")"

echo "=== [11/12] shard-scaling bench + 100k-device smoke (archives BENCH_shard_scaling.json, SERIES_smoke.json) ==="
./build/bench/bench_ext_shard_scaling --smoke --json BENCH_shard_scaling.json \
  --series SERIES_smoke.json
grep -q '"est_speedup"' BENCH_shard_scaling.json
grep -q '"smoke_1000x100"' BENCH_shard_scaling.json
grep -q '"hcm-series-v1"' SERIES_smoke.json

echo "=== [12/12] fleet telemetry gate: hcm_top over the smoke-run series dump ==="
# hcm_top exits nonzero when the dump parses to zero dashboard rows, so
# a bare invocation is the gate; echo the row line for the CI log.
./build/tools/hcm_top/hcm_top SERIES_smoke.json
rows="$(./build/tools/hcm_top/hcm_top SERIES_smoke.json | grep '^rows:' | awk '{print $2}')"
echo "hcm_top rendered ${rows} rows from SERIES_smoke.json"

echo "All checks passed."
