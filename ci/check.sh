#!/usr/bin/env bash
# Full PR gate (docs/CORRECTNESS.md §5):
#   1. tier-1: default preset (-Werror) build + full ctest, which
#      includes the hcm_lint contract check and the determinism audit;
#   2. the same suite under ASan+UBSan (asan preset), with an explicit
#      event-bridge pass (leases, backpressure, retry paths exercise
#      the trickiest object lifetimes in the tree);
#   3. standalone hcm_lint run for a readable summary;
#   4. smoke-run of the event-bridge fan-out bench.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "=== [1/4] tier-1: default preset (-Werror) ==="
cmake --preset default
cmake --build --preset default -j "${JOBS}"
ctest --preset default -j "${JOBS}"

echo "=== [2/4] sanitizers: asan preset (ASan + UBSan) ==="
cmake --preset asan
cmake --build --preset asan -j "${JOBS}"
ctest --preset asan -j "${JOBS}" -R 'EventBridge'
ctest --preset asan -j "${JOBS}"

echo "=== [3/4] hcm_lint summary ==="
./build/tools/hcm_lint/hcm_lint --root .

echo "=== [4/4] event-bridge bench smoke run ==="
./build/bench/bench_ext_event_bridge --benchmark_min_time=0.01

echo "All checks passed."
