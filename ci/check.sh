#!/usr/bin/env bash
# Full PR gate (docs/CORRECTNESS.md §5):
#   1. tier-1: default preset (-Werror) build + full ctest, which
#      includes the hcm_lint contract check and the determinism audit;
#   2. the same suite under ASan+UBSan (asan preset), with an explicit
#      event-bridge pass (leases, backpressure, retry paths exercise
#      the trickiest object lifetimes in the tree);
#   3. standalone hcm_lint run for a readable summary;
#   4. smoke-run of the event-bridge fan-out bench;
#   5. smoke-run of the VSR sync bench, archiving BENCH_vsr_sync.json;
#   6. observability overhead bench, archiving BENCH_obs_overhead.json,
#      plus a trace-export smoke check: the bench records one 3-island
#      chain and the Chrome trace it writes must carry complete events;
#   7. wire-throughput bench under the perf preset (Release -O2 — the
#      optimization level the numbers in docs/PERFORMANCE.md use),
#      archiving BENCH_wire_throughput.json.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "=== [1/7] tier-1: default preset (-Werror) ==="
cmake --preset default
cmake --build --preset default -j "${JOBS}"
ctest --preset default -j "${JOBS}"

echo "=== [2/7] sanitizers: asan preset (ASan + UBSan) ==="
cmake --preset asan
cmake --build --preset asan -j "${JOBS}"
ctest --preset asan -j "${JOBS}" -R 'EventBridge'
ctest --preset asan -j "${JOBS}"

echo "=== [3/7] hcm_lint summary ==="
./build/tools/hcm_lint/hcm_lint --root .

echo "=== [4/7] event-bridge bench smoke run ==="
./build/bench/bench_ext_event_bridge --benchmark_min_time=0.01

echo "=== [5/7] VSR sync bench smoke run (archives BENCH_vsr_sync.json) ==="
./build/bench/bench_ext_vsr_sync --benchmark_min_time=0.01 \
  --json BENCH_vsr_sync.json

echo "=== [6/7] obs overhead bench + trace-export smoke check ==="
./build/bench/bench_ext_obs_overhead --benchmark_min_time=0.01 \
  --json BENCH_obs_overhead.json --trace obs_trace_smoke.json
# The export must be a Chrome trace with complete ("ph":"X") events for
# at least the six per-hop spans of one cross-island call.
grep -q '"traceEvents"' obs_trace_smoke.json
events="$(grep -o '"ph":"X"' obs_trace_smoke.json | wc -l)"
if [ "${events}" -lt 6 ]; then
  echo "trace smoke check failed: only ${events} complete events" >&2
  exit 1
fi
echo "trace smoke check OK (${events} complete events)"
rm -f obs_trace_smoke.json

echo "=== [7/7] wire-throughput bench (perf preset, archives BENCH_wire_throughput.json) ==="
cmake --preset perf
cmake --build --preset perf -j "${JOBS}" --target bench_ext_wire_throughput
./build-perf/bench/bench_ext_wire_throughput --calls 300 \
  --benchmark_min_time=0.01 --json BENCH_wire_throughput.json
grep -q '"calls_per_sec"' BENCH_wire_throughput.json

echo "All checks passed."
