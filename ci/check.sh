#!/usr/bin/env bash
# Full PR gate (docs/CORRECTNESS.md §5):
#   1. tier-1: default preset (-Werror) build + full ctest, which
#      includes the hcm_lint contract check and the determinism audit;
#   2. the same suite under ASan+UBSan (asan preset);
#   3. standalone hcm_lint run for a readable summary.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "=== [1/3] tier-1: default preset (-Werror) ==="
cmake --preset default
cmake --build --preset default -j "${JOBS}"
ctest --preset default -j "${JOBS}"

echo "=== [2/3] sanitizers: asan preset (ASan + UBSan) ==="
cmake --preset asan
cmake --build --preset asan -j "${JOBS}"
ctest --preset asan -j "${JOBS}"

echo "=== [3/3] hcm_lint summary ==="
./build/tools/hcm_lint/hcm_lint --root .

echo "All checks passed."
