// Figure 3 — "Prototype of Integration System": the four-PCM prototype
// (Jini, X10, HAVi, Internet Mail around the SOAP VSG). This bench
// regenerates the figure as a full (client island x service island)
// reachability-and-latency matrix plus sustained cross-island
// throughput.
//
// Expected shape: every ordered pair works; latencies are dominated by
// the *slowest middleware in the pair* (any pair involving X10 costs
// ~1 s of powerline time; mail costs one poll interval on the receive
// side), not by the framework.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "testbed/home.hpp"

using namespace hcm;

namespace {

struct Target {
  const char* island;
  const char* service;
  const char* method;
  ValueList args;
};

void fig3_report() {
  sim::Scheduler sched;
  testbed::SmartHome home(sched);
  (void)home.refresh();

  bench::print_header(
      "Fig. 3  Prototype of integration system: island x island matrix");

  struct ClientSide {
    const char* name;
    core::MiddlewareAdapter* adapter;
  };
  std::vector<ClientSide> clients{
      {"jini", home.jini_adapter},
      {"havi", home.havi_adapter},
      {"x10", home.x10_adapter},
      {"mail", home.mail_adapter},
  };
  std::vector<Target> targets{
      {"jini", "laserdisc-1", "getStatus", {}},
      {"havi", "camera-1", "getStatus", {}},
      {"x10", "desk-lamp", "turnOn", {}},
      {"mail", "mail-home", "sendMail",
       {Value("alice"), Value("hi"), Value("body")}},
  };

  std::printf("  mean latency (ms), client island -> service island:\n");
  std::printf("  %-8s", "client");
  for (const auto& t : targets) std::printf("%12s", t.island);
  std::printf("\n");

  constexpr int kCalls = 10;
  for (const auto& client : clients) {
    std::printf("  %-8s", client.name);
    for (const auto& target : targets) {
      std::vector<double> samples;
      bool ok = true;
      for (int i = 0; i < kCalls && ok; ++i) {
        sim::SimTime t0 = sched.now();
        std::optional<Result<Value>> r;
        client.adapter->invoke(target.service, target.method, target.args,
                               [&](Result<Value> v) { r = std::move(v); });
        sim::run_until_done(sched, [&] { return r.has_value(); });
        if (r.has_value() && r->is_ok()) {
          samples.push_back(bench::to_ms(sched.now() - t0));
        } else {
          ok = false;
        }
      }
      if (ok && !samples.empty()) {
        std::printf("%12.1f", bench::stats_of(samples).mean);
      } else {
        std::printf("%12s", "n/a");
      }
    }
    std::printf("\n");
  }
  std::printf(
      "  (x10/mail client rows dispatch through the islands' server\n"
      "   proxies programmatically; the native command paths — powerline\n"
      "   unit bindings and mailbox polling — are measured in bench_fig5\n"
      "   and bench_sec42.)\n");

  // Sustained cross-island throughput: back-to-back jini->havi calls.
  std::printf("\n  sustained cross-island throughput (jini -> havi):\n");
  for (int concurrency : {1, 4, 16}) {
    int completed = 0;
    sim::SimTime t0 = sched.now();
    int in_flight = 0;
    constexpr int kTotal = 200;
    int issued = 0;
    std::function<void()> issue = [&]() {
      while (in_flight < concurrency && issued < kTotal) {
        ++in_flight;
        ++issued;
        home.jini_adapter->invoke("camera-1", "getStatus", {},
                                  [&](Result<Value>) {
                                    --in_flight;
                                    ++completed;
                                    issue();
                                  });
      }
    };
    issue();
    sim::run_until_done(sched, [&] { return completed >= kTotal; });
    double seconds = static_cast<double>(sched.now() - t0) / 1e6;
    std::printf("    concurrency %-3d: %6.1f calls/s (virtual)\n",
                concurrency, kTotal / seconds);
  }

  // Wire overhead accounting across the backbone.
  std::printf("\n  backbone traffic so far: %llu frames, %llu bytes\n",
              static_cast<unsigned long long>(home.backbone->frames_carried()),
              static_cast<unsigned long long>(home.backbone->bytes_carried()));
}

// The end-to-end sync pass that builds Fig. 3's mesh (CPU-inclusive).
void BM_FullMeshRefresh(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    testbed::SmartHome home(sched);
    auto status = home.refresh();
    benchmark::DoNotOptimize(status);
  }
}
BENCHMARK(BM_FullMeshRefresh)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  fig3_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
