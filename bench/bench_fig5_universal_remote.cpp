// Figure 5 — "Universal Remote Controller": the photo of a person
// controlling a Jini laserdisc (and a HAVi DV camera) with an X10
// remote. This bench regenerates the figure as the command-latency
// distribution per target middleware: one keypress on the X10 remote
// until the target device acts.
//
// Expected shape: all three targets respond; the native X10 target and
// the bridged targets differ by only the gateway/SOAP legs, which are
// small next to the ~1.6 s the keypress itself spends on the powerline.
//
// Second report: the remote's status display. The original application
// polled the laserdisc over bridged RPC to keep its display fresh; the
// event bridge replaces that with a statusChanged subscription. Both
// are measured here — display staleness and backbone traffic.
#include <benchmark/benchmark.h>

#include <functional>
#include <optional>

#include "bench_util.hpp"
#include "core/event_router.hpp"
#include "testbed/home.hpp"

using namespace hcm;

namespace {

void fig5_report() {
  sim::Scheduler sched;
  testbed::SmartHome home(sched);
  (void)home.refresh();

  bench::print_header(
      "Fig. 5  Universal Remote Controller: keypress-to-action latency");

  constexpr int kPresses = 12;

  // Target 1: native X10 lamp (house A remote).
  x10::RemoteControl house_a(home.net, home.remote_node->id(),
                             *home.powerline, x10::HouseCode::kA);
  std::vector<double> lamp_lat;
  for (int i = 0; i < kPresses; ++i) {
    const bool want_on = home.lamp->level() == 0;
    sim::SimTime t0 = sched.now();
    std::optional<sim::SimTime> acted;
    home.lamp->set_on_change([&](int) { acted = sched.now(); });
    house_a.press(1, want_on ? x10::FunctionCode::kOn
                             : x10::FunctionCode::kOff);
    sim::run_until_done(sched, [&] { return acted.has_value(); });
    lamp_lat.push_back(bench::to_ms(*acted - t0));
    home.lamp->set_on_change(nullptr);
  }

  // Target 2: Jini laserdisc via its house-P binding.
  auto ld_unit = home.x10_adapter->unit_for("laserdisc-1").value_or(0);
  std::vector<double> ld_lat;
  for (int i = 0; i < kPresses; ++i) {
    const bool want_on = !home.laserdisc->powered();
    sim::SimTime t0 = sched.now();
    auto before = home.laserdisc->commands();
    home.remote->press(ld_unit, want_on ? x10::FunctionCode::kOn
                                        : x10::FunctionCode::kOff);
    sim::run_until_done(
        sched, [&] { return home.laserdisc->commands() > before; });
    ld_lat.push_back(bench::to_ms(sched.now() - t0));
  }

  // Target 3: HAVi DV camera via its house-P binding.
  auto cam_unit = home.x10_adapter->unit_for("camera-1").value_or(0);
  std::vector<double> cam_lat;
  for (int i = 0; i < kPresses; ++i) {
    const bool want_on = !home.camera->capturing();
    sim::SimTime t0 = sched.now();
    home.remote->press(cam_unit, want_on ? x10::FunctionCode::kOn
                                         : x10::FunctionCode::kOff);
    sim::run_until_done(
        sched, [&] { return home.camera->capturing() == want_on; });
    cam_lat.push_back(bench::to_ms(sched.now() - t0));
  }

  bench::print_row_ms("X10 lamp (native powerline)",
                      bench::stats_of(lamp_lat));
  bench::print_row_ms("Jini laserdisc (via framework)",
                      bench::stats_of(ld_lat));
  bench::print_row_ms("HAVi DV camera (via framework)",
                      bench::stats_of(cam_lat));

  auto lamp_s = bench::stats_of(lamp_lat);
  auto ld_s = bench::stats_of(ld_lat);
  std::printf(
      "\n  bridging overhead vs native X10: +%.1f ms (%.1f%% of a press)\n",
      ld_s.mean - lamp_s.mean, 100.0 * (ld_s.mean - lamp_s.mean) / ld_s.mean);
  std::printf(
      "  -> the keypress itself (powerline frames) dominates; the\n"
      "     framework makes foreign devices reachable at ~native cost.\n");
}

// --- status display: bridged-RPC polling vs event subscription ----------
//
// The display tracks the laserdisc's powered state from the X10 island.
// Six state changes happen over a ~65 s window; "staleness" is the gap
// between the device changing and the display showing it. Backbone
// bytes/frames are counted over the same window so the two variants'
// traffic can be compared directly.

constexpr int kToggles = 6;
constexpr sim::Duration kToggleSpacing = sim::seconds(10);
constexpr sim::Duration kPollInterval = sim::seconds(2);

struct DisplayRun {
  bench::Stats staleness;  // ms from device change to display update
  std::uint64_t backbone_bytes = 0;
  std::uint64_t backbone_frames = 0;
};

// Schedules kToggles turnOn/turnOff flips of the laserdisc (driven
// natively on its own island) and runs the window out. Each flip is
// phase-shifted off the 2 s poll grid — a change landing exactly on a
// poll tick would make polling look instantaneous.
void drive_toggles(sim::Scheduler& sched, testbed::SmartHome& home,
                   std::optional<sim::SimTime>& changed_at) {
  for (int i = 0; i < kToggles; ++i) {
    const sim::Duration phase = sim::milliseconds(150 + 300 * i);
    sched.after(kToggleSpacing * (i + 1) + phase, [&, i] {
      const char* method = i % 2 == 0 ? "turnOn" : "turnOff";
      home.jini_adapter->invoke("laserdisc-1", method, {},
                                [&](Result<Value>) { changed_at = sched.now(); });
    });
  }
  sched.run_for(kToggleSpacing * kToggles + sim::seconds(5));
}

// The mail island lives directly on the backbone and its adapter polls
// the mail host every 5 s, so the backbone is never fully idle. This
// run measures that background so the display variants can report the
// traffic the display itself is responsible for.
DisplayRun run_idle_baseline() {
  sim::Scheduler sched;
  testbed::SmartHome home(sched);
  (void)home.refresh();
  std::optional<sim::SimTime> changed_at;
  const auto bytes0 = home.backbone->bytes_carried();
  const auto frames0 = home.backbone->frames_carried();
  drive_toggles(sched, home, changed_at);
  DisplayRun out;
  out.backbone_bytes = home.backbone->bytes_carried() - bytes0;
  out.backbone_frames = home.backbone->frames_carried() - frames0;
  return out;
}

DisplayRun run_polling_display() {
  sim::Scheduler sched;
  testbed::SmartHome home(sched);
  (void)home.refresh();

  std::vector<double> staleness;
  std::optional<sim::SimTime> changed_at;
  bool displayed = home.laserdisc->powered();

  const auto bytes0 = home.backbone->bytes_carried();
  const auto frames0 = home.backbone->frames_carried();

  std::function<void()> poll = [&] {
    home.x10_adapter->invoke(
        "laserdisc-1", "getStatus", {}, [&](Result<Value> r) {
          if (!r.is_ok() || !r.value().is_map()) return;
          const bool powered = r.value().at("powered").as_bool();
          if (powered == displayed) return;
          displayed = powered;
          if (changed_at) {
            staleness.push_back(bench::to_ms(sched.now() - *changed_at));
            changed_at.reset();
          }
        });
    sched.after(kPollInterval, poll);
  };
  sched.after(kPollInterval, poll);

  drive_toggles(sched, home, changed_at);

  DisplayRun out;
  out.staleness = bench::stats_of(staleness);
  out.backbone_bytes = home.backbone->bytes_carried() - bytes0;
  out.backbone_frames = home.backbone->frames_carried() - frames0;
  return out;
}

DisplayRun run_event_display() {
  sim::Scheduler sched;
  testbed::SmartHome home(sched);
  (void)home.refresh();

  std::vector<double> staleness;
  std::optional<sim::SimTime> changed_at;
  bool displayed = home.laserdisc->powered();

  std::optional<Result<std::string>> lease;
  home.meta->island("x10-island")
      ->events->subscribe(
          "laserdisc-1", "statusChanged",
          [&](const std::string&, const std::string&, const Value& payload) {
            if (!payload.is_map()) return;
            const bool powered = payload.at("powered").as_bool();
            if (powered == displayed) return;
            displayed = powered;
            if (changed_at) {
              staleness.push_back(bench::to_ms(sched.now() - *changed_at));
              changed_at.reset();
            }
          },
          [&](Result<std::string> r) { lease = std::move(r); });
  sim::run_until_done(sched, [&] { return lease.has_value(); });

  // Traffic baseline after the subscription handshake: the comparison
  // is steady-state display traffic, not setup cost.
  const auto bytes0 = home.backbone->bytes_carried();
  const auto frames0 = home.backbone->frames_carried();

  drive_toggles(sched, home, changed_at);

  DisplayRun out;
  out.staleness = bench::stats_of(staleness);
  out.backbone_bytes = home.backbone->bytes_carried() - bytes0;
  out.backbone_frames = home.backbone->frames_carried() - frames0;
  return out;
}

void display_report() {
  bench::print_header(
      "Fig. 5 addendum  Status display: bridged-RPC polling vs event bridge");

  DisplayRun idle = run_idle_baseline();
  DisplayRun poll = run_polling_display();
  DisplayRun push = run_event_display();

  // Traffic the display itself causes, background (mail polling etc.)
  // subtracted out.
  const auto own = [&](const DisplayRun& r) {
    return r.backbone_bytes > idle.backbone_bytes
               ? r.backbone_bytes - idle.backbone_bytes
               : 0;
  };

  std::printf("  %d state changes over a %.0f s window:\n\n", kToggles,
              bench::to_ms(kToggleSpacing * kToggles + sim::seconds(5)) / 1e3);
  std::printf(
      "  variant                        staleness mean    p95     display traffic\n");
  std::printf(
      "  polling (getStatus / %2.0f s)    %9.1f ms %9.1f ms  %8llu B\n",
      bench::to_ms(kPollInterval) / 1e3, poll.staleness.mean,
      poll.staleness.p95, static_cast<unsigned long long>(own(poll)));
  std::printf(
      "  event-bridge subscription      %9.1f ms %9.1f ms  %8llu B\n",
      push.staleness.mean, push.staleness.p95,
      static_cast<unsigned long long>(own(push)));
  if (push.staleness.mean > 0 && own(push) > 0) {
    std::printf(
        "\n  -> push updates the display %.0fx faster on %.1fx less backbone\n"
        "     traffic; what remains is delivery + lease renewal, and the\n"
        "     idle cost no longer scales with the polling rate.\n",
        poll.staleness.mean / push.staleness.mean,
        static_cast<double>(own(poll)) / static_cast<double>(own(push)));
  }
}

// The keypress encode path itself (CPU side of a remote press).
void BM_RemotePressEncoding(benchmark::State& state) {
  for (auto _ : state) {
    auto addr = x10::encode(x10::AddressFrame{x10::HouseCode::kP, 3});
    auto func = x10::encode(
        x10::FunctionFrame{x10::HouseCode::kP, x10::FunctionCode::kOn, 0});
    benchmark::DoNotOptimize(addr);
    benchmark::DoNotOptimize(func);
  }
}
BENCHMARK(BM_RemotePressEncoding);

}  // namespace

int main(int argc, char** argv) {
  fig5_report();
  display_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
