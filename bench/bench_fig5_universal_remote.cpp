// Figure 5 — "Universal Remote Controller": the photo of a person
// controlling a Jini laserdisc (and a HAVi DV camera) with an X10
// remote. This bench regenerates the figure as the command-latency
// distribution per target middleware: one keypress on the X10 remote
// until the target device acts.
//
// Expected shape: all three targets respond; the native X10 target and
// the bridged targets differ by only the gateway/SOAP legs, which are
// small next to the ~1.6 s the keypress itself spends on the powerline.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "testbed/home.hpp"

using namespace hcm;

namespace {

void fig5_report() {
  sim::Scheduler sched;
  testbed::SmartHome home(sched);
  (void)home.refresh();

  bench::print_header(
      "Fig. 5  Universal Remote Controller: keypress-to-action latency");

  constexpr int kPresses = 12;

  // Target 1: native X10 lamp (house A remote).
  x10::RemoteControl house_a(home.net, home.remote_node->id(),
                             *home.powerline, x10::HouseCode::kA);
  std::vector<double> lamp_lat;
  for (int i = 0; i < kPresses; ++i) {
    const bool want_on = home.lamp->level() == 0;
    sim::SimTime t0 = sched.now();
    std::optional<sim::SimTime> acted;
    home.lamp->set_on_change([&](int) { acted = sched.now(); });
    house_a.press(1, want_on ? x10::FunctionCode::kOn
                             : x10::FunctionCode::kOff);
    sim::run_until_done(sched, [&] { return acted.has_value(); });
    lamp_lat.push_back(bench::to_ms(*acted - t0));
    home.lamp->set_on_change(nullptr);
  }

  // Target 2: Jini laserdisc via its house-P binding.
  auto ld_unit = home.x10_adapter->unit_for("laserdisc-1").value_or(0);
  std::vector<double> ld_lat;
  for (int i = 0; i < kPresses; ++i) {
    const bool want_on = !home.laserdisc->powered();
    sim::SimTime t0 = sched.now();
    auto before = home.laserdisc->commands();
    home.remote->press(ld_unit, want_on ? x10::FunctionCode::kOn
                                        : x10::FunctionCode::kOff);
    sim::run_until_done(
        sched, [&] { return home.laserdisc->commands() > before; });
    ld_lat.push_back(bench::to_ms(sched.now() - t0));
  }

  // Target 3: HAVi DV camera via its house-P binding.
  auto cam_unit = home.x10_adapter->unit_for("camera-1").value_or(0);
  std::vector<double> cam_lat;
  for (int i = 0; i < kPresses; ++i) {
    const bool want_on = !home.camera->capturing();
    sim::SimTime t0 = sched.now();
    home.remote->press(cam_unit, want_on ? x10::FunctionCode::kOn
                                         : x10::FunctionCode::kOff);
    sim::run_until_done(
        sched, [&] { return home.camera->capturing() == want_on; });
    cam_lat.push_back(bench::to_ms(sched.now() - t0));
  }

  bench::print_row_ms("X10 lamp (native powerline)",
                      bench::stats_of(lamp_lat));
  bench::print_row_ms("Jini laserdisc (via framework)",
                      bench::stats_of(ld_lat));
  bench::print_row_ms("HAVi DV camera (via framework)",
                      bench::stats_of(cam_lat));

  auto lamp_s = bench::stats_of(lamp_lat);
  auto ld_s = bench::stats_of(ld_lat);
  std::printf(
      "\n  bridging overhead vs native X10: +%.1f ms (%.1f%% of a press)\n",
      ld_s.mean - lamp_s.mean, 100.0 * (ld_s.mean - lamp_s.mean) / ld_s.mean);
  std::printf(
      "  -> the keypress itself (powerline frames) dominates; the\n"
      "     framework makes foreign devices reachable at ~native cost.\n");
}

// The keypress encode path itself (CPU side of a remote press).
void BM_RemotePressEncoding(benchmark::State& state) {
  for (auto _ : state) {
    auto addr = x10::encode(x10::AddressFrame{x10::HouseCode::kP, 3});
    auto func = x10::encode(
        x10::FunctionFrame{x10::HouseCode::kP, x10::FunctionCode::kOn, 0});
    benchmark::DoNotOptimize(addr);
    benchmark::DoNotOptimize(func);
  }
}
BENCHMARK(BM_RemotePressEncoding);

}  // namespace

int main(int argc, char** argv) {
  fig5_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
