// Durable VSR store bench: recovery time and on-disk footprint vs
// journal size (ISSUE 7 acceptance shape). Sweeps S services x R
// revisions of publish churn through a VsrStore, then measures
//   - on-disk bytes with the raw log vs after a forced compaction into
//     delta packs (the >=10x compression criterion rides here), and
//   - open()+replay wall time against both layouts — compaction buys
//     recovery that is flat in churn history, log-only replay grows
//     linearly with it.
// --json <path> archives the table (BENCH_store_recovery.json);
// --store-dir <path> additionally leaves a compacted store at <path>
// for `hcm_store fsck` to verify in CI.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "store/vsr_store.hpp"

using namespace hcm;

namespace {

std::string revision_body(const std::string& name, int rev) {
  // Realistic WSDL bulk with a small hot region: a stable operation
  // list plus one endpoint attribute that changes per revision.
  std::string body = "<definitions name=\"" + name + "\">";
  for (int op = 0; op < 40; ++op) {
    body += "<operation name=\"op" + std::to_string(op) +
            "\" input=\"" + name + "Req" + std::to_string(op) +
            "\" output=\"" + name + "Resp" + std::to_string(op) +
            "\" doc=\"lease-renewable control operation exported by the "
            "island gateway\"/>";
  }
  body += "<endpoint uri=\"http://fav:8000/" + name + "/r" +
          std::to_string(rev) + "\"/></definitions>";
  return body;
}

store::VsrStoreOptions options_for(const std::string& dir) {
  store::VsrStoreOptions opts;
  opts.dir = dir;
  // No fsync: the bench measures bytes and replay CPU, not disk stalls.
  opts.fsync = store::RecordLog::FsyncPolicy::kNone;
  // No automatic rolls: each layout is measured explicitly.
  opts.compact_threshold_bytes = ~std::uint64_t{0};
  return opts;
}

// Writes S services x R revisions of churn. Returns total raw body
// bytes pushed through (what a store without dedup+delta would hold).
std::uint64_t churn(store::VsrStore& s, int services, int revisions) {
  s.record_epoch(1);
  std::uint64_t raw = 0;
  std::uint64_t seq = 0;
  for (int rev = 0; rev < revisions; ++rev) {
    for (int i = 0; i < services; ++i) {
      const std::string name = "svc-" + std::to_string(i);
      const std::string body = revision_body(name, rev);
      raw += body.size();
      store::UpsertRecord u;
      u.seq = ++seq;
      u.name = name;
      u.category = "DeviceControl";
      u.origin = "bench-island";
      u.digest = store::content_digest(body);
      u.expires_at = static_cast<std::int64_t>(seq) * 1000000;
      s.record_upsert(u, body);
    }
    if (!s.commit().is_ok()) std::abort();
  }
  return raw;
}

double timed_open_ms(const store::VsrStoreOptions& opts) {
  const auto t0 = std::chrono::steady_clock::now();
  store::VsrStore s(opts);
  if (!s.open().is_ok()) std::abort();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

std::uint64_t dir_bytes(const std::string& dir) {
  std::uint64_t total = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.is_regular_file()) total += e.file_size();
  }
  return total;
}

struct SweepResult {
  std::uint64_t raw_bytes = 0;
  std::uint64_t log_bytes = 0;        // on disk before compaction
  std::uint64_t compact_bytes = 0;    // on disk after compaction
  double open_log_ms = 0;             // replaying the raw log
  double open_compact_ms = 0;         // replaying packs + checkpoint
  std::uint64_t log_records = 0;
};

SweepResult run_config(int services, int revisions, const std::string& dir) {
  std::filesystem::remove_all(dir);
  const auto opts = options_for(dir);
  SweepResult r;
  {
    store::VsrStore s(opts);
    if (!s.open().is_ok()) std::abort();
    r.raw_bytes = churn(s, services, revisions);
    r.log_bytes = s.log_bytes();
  }
  r.open_log_ms = timed_open_ms(opts);
  {
    store::VsrStore s(opts);
    if (!s.open().is_ok() || !s.compact().is_ok()) std::abort();
  }
  r.compact_bytes = dir_bytes(dir);
  r.open_compact_ms = timed_open_ms(opts);
  auto stats = store::VsrStore::stats(dir);
  if (stats.is_ok()) r.log_records = stats.value().log_records;
  return r;
}

void sweep_report(const std::string& json_path, const std::string& keep_dir) {
  bench::print_header(
      "Durable VSR store: recovery time and on-disk bytes vs journal size");
  std::printf(
      "  workload: S services x R publish revisions (each revision a small\n"
      "  edit of the last), committed per revision round\n\n");
  std::printf(
      "    S    R      raw B      log B  compact B   ratio   open(log)"
      "   open(pack)\n");

  bench::JsonReport report("bench_ext_store_recovery");
  const std::string scratch =
      (std::filesystem::temp_directory_path() / "hcm_bench_store").string();
  struct Config { int services; int revisions; };
  const Config configs[] = {{4, 10}, {4, 50}, {16, 50}, {64, 50}};
  for (const auto& c : configs) {
    const SweepResult r = run_config(c.services, c.revisions, scratch);
    const double ratio = r.compact_bytes == 0
                             ? 0.0
                             : static_cast<double>(r.raw_bytes) /
                                   static_cast<double>(r.compact_bytes);
    std::printf(
        "  %3d  %3d  %9llu  %9llu  %9llu  %5.1fx  %7.2f ms  %8.2f ms\n",
        c.services, c.revisions,
        static_cast<unsigned long long>(r.raw_bytes),
        static_cast<unsigned long long>(r.log_bytes),
        static_cast<unsigned long long>(r.compact_bytes), ratio,
        r.open_log_ms, r.open_compact_ms);
    report.row()
        .num("services", static_cast<std::uint64_t>(c.services))
        .num("revisions", static_cast<std::uint64_t>(c.revisions))
        .num("raw_body_bytes", r.raw_bytes)
        .num("log_bytes", r.log_bytes)
        .num("compacted_bytes", r.compact_bytes)
        .num("compression_ratio", ratio)
        .num("open_log_ms", r.open_log_ms)
        .num("open_compacted_ms", r.open_compact_ms)
        .num("log_records", r.log_records);
  }
  std::filesystem::remove_all(scratch);

  std::printf(
      "\n  -> compaction turns O(history) replay into O(live set): the\n"
      "     checkpointed layout opens in near-constant time while raw-log\n"
      "     replay grows with churn, and delta packs hold 50-revision\n"
      "     churn at a >=10x discount to the raw bytes.\n");

  if (!keep_dir.empty()) {
    // Leave a compacted store behind for `hcm_store fsck` in CI.
    (void)run_config(8, 25, keep_dir);
    std::printf("  (store left at %s)\n", keep_dir.c_str());
  }
  if (!json_path.empty() && report.write(json_path)) {
    std::printf("  (json written to %s)\n", json_path.c_str());
  }
}

// CPU side: the per-publish write-through cost (encode + stage + group
// commit, no fsync).
void BM_StoreCommit(benchmark::State& state) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "hcm_bench_store_bm").string();
  std::filesystem::remove_all(dir);
  store::VsrStore s(options_for(dir));
  if (!s.open().is_ok()) std::abort();
  s.record_epoch(1);
  std::uint64_t seq = 0;
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    const std::string body =
        revision_body("svc-0", static_cast<int>(seq % 1000));
    bytes += body.size();
    store::UpsertRecord u;
    u.seq = ++seq;
    u.name = "svc-0";
    u.category = "DeviceControl";
    u.origin = "bench-island";
    u.digest = store::content_digest(body);
    s.record_upsert(u, body);
    if (!s.commit().is_ok()) std::abort();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_StoreCommit);

// The argument following `flag`, or "" when absent.
std::string path_arg(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == flag) return argv[i + 1];
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_arg(argc, argv);
  const std::string store_dir = path_arg(argc, argv, "--store-dir");
  // Strip our flags before handing argv to the benchmark library.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" || a == "--store-dir") {
      ++i;  // skip the value too
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());

  sweep_report(json_path, store_dir);
  benchmark::Initialize(&filtered_argc, args.data());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
