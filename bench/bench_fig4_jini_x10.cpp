// Figure 4 — "Conversion between Jini and X10": the paper's transaction
// diagram of a Jini client driving an X10 device through the PCMs and
// VSG. This bench regenerates the figure as a step-by-step timing
// breakdown of that exact transaction.
//
// Expected shape: the powerline transmission (address + function frame
// at ~60 bps effective) dominates end-to-end time by an order of
// magnitude over every framework step combined.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "testbed/home.hpp"
#include "x10/codec.hpp"

using namespace hcm;

namespace {

void fig4_report() {
  sim::Scheduler sched;
  testbed::SmartHome home(sched);
  (void)home.refresh();

  bench::print_header(
      "Fig. 4  Conversion between Jini and X10: transaction breakdown");

  constexpr int kCalls = 15;

  // Step A: the full transaction — Jini client -> lookup proxy -> SP ->
  // SOAP/HTTP -> X10 VSG -> CP -> CM11A serial -> powerline -> lamp.
  std::vector<double> full;
  for (int i = 0; i < kCalls; ++i) {
    sim::SimTime t0 = sched.now();
    std::optional<Result<Value>> r;
    home.jini_adapter->invoke(i % 2 == 0 ? "desk-lamp" : "desk-lamp",
                              i % 2 == 0 ? "turnOn" : "turnOff", {},
                              [&](Result<Value> v) { r = std::move(v); });
    sim::run_until_done(sched, [&] { return r.has_value(); });
    if (r->is_ok()) full.push_back(bench::to_ms(sched.now() - t0));
  }

  // Step B: CM11A + powerline only (what the X10 island itself pays).
  std::vector<double> powerline_only;
  for (int i = 0; i < kCalls; ++i) {
    sim::SimTime t0 = sched.now();
    std::optional<Status> done;
    home.cm11a->send_command(x10::HouseCode::kA, 1,
                             i % 2 == 0 ? x10::FunctionCode::kOn
                                        : x10::FunctionCode::kOff,
                             0, [&](const Status& s) { done = s; });
    sim::run_until_done(sched, [&] { return done.has_value(); });
    if (done->is_ok()) powerline_only.push_back(bench::to_ms(sched.now() - t0));
  }

  // Step C: the SOAP leg alone — jini island's VSG calling a loopback
  // exposure on the X10 gateway that completes instantly.
  auto* jini_island = home.meta->island("jini-island");
  auto* x10_island = home.meta->island("x10-island");
  (void)x10_island->vsg->expose(
      "noop-probe",
      InterfaceDesc{"Probe", {MethodDesc{"ping", {}, ValueType::kBool, false}}},
      [](const std::string&, const ValueList&, InvokeResultFn done) {
        done(Value(true));
      });
  std::vector<double> soap_leg;
  for (int i = 0; i < kCalls; ++i) {
    sim::SimTime t0 = sched.now();
    std::optional<Result<Value>> r;
    jini_island->vsg->call_remote(
        x10_island->vsg->exposure_uri("noop-probe"), "noop-probe",
        InterfaceDesc{"Probe",
                      {MethodDesc{"ping", {}, ValueType::kBool, false}}},
        "ping", {}, [&](Result<Value> v) { r = std::move(v); });
    sim::run_until_done(sched, [&] { return r.has_value(); });
    if (r->is_ok()) soap_leg.push_back(bench::to_ms(sched.now() - t0));
  }

  auto full_s = bench::stats_of(full);
  auto pl_s = bench::stats_of(powerline_only);
  auto soap_s = bench::stats_of(soap_leg);

  std::printf("  transaction step                              mean\n");
  std::printf("  1. Jini client -> SP (intra-island RMI)   %8.2f ms\n",
              full_s.mean - soap_s.mean - pl_s.mean > 0
                  ? full_s.mean - soap_s.mean - pl_s.mean
                  : 0.0);
  std::printf("  2. SP -> SOAP/HTTP -> VSG -> CP            %8.2f ms\n",
              soap_s.mean);
  std::printf("  3. CP -> CM11A serial + powerline frames   %8.2f ms\n",
              pl_s.mean);
  std::printf("     (address frame + function frame on the 60 Hz carrier)\n");
  std::printf("  ------------------------------------------------------\n");
  std::printf("  end-to-end (measured)                      %8.2f ms\n",
              full_s.mean);
  std::printf("\n  powerline share of the total: %4.1f%% — the device, not\n"
              "  the framework, dominates (the paper's implicit claim).\n",
              100.0 * pl_s.mean / full_s.mean);

  std::printf("\n  CM11A health: commands=%llu serial_retries=%llu "
              "powerline collisions=%llu\n",
              static_cast<unsigned long long>(home.cm11a->commands_sent()),
              static_cast<unsigned long long>(home.cm11a->serial_retries()),
              static_cast<unsigned long long>(home.powerline->collisions()));
}

// CPU cost of the CM11A frame codec.
void BM_X10FrameCodec(benchmark::State& state) {
  for (auto _ : state) {
    auto addr = x10::encode(x10::AddressFrame{x10::HouseCode::kE, 12});
    auto func = x10::encode(
        x10::FunctionFrame{x10::HouseCode::kE, x10::FunctionCode::kDim, 7});
    auto d1 = x10::decode_frame(addr);
    auto d2 = x10::decode_frame(func);
    benchmark::DoNotOptimize(d1);
    benchmark::DoNotOptimize(d2);
  }
}
BENCHMARK(BM_X10FrameCodec);

}  // namespace

int main(int argc, char** argv) {
  fig4_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
