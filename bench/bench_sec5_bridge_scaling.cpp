// §5 (Related Work) — "it is not enough to develop a single bridge that
// connects two specific middleware one to one." This bench regenerates
// that argument as numbers: connecting N middleware with dedicated 1:1
// bridges (the Philips/Sony/Sun HAVi-Jini approach) needs O(N^2) bridge
// implementations, while the framework needs one PCM per middleware,
// O(N). Both approaches are actually built and timed here.
//
// Expected shape: bridge artifacts grow quadratically vs linearly;
// the framework's per-island work (and the VSR's size) grows linearly.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/adapters/jini_adapter.hpp"
#include "core/meta.hpp"
#include "jini/lookup.hpp"
#include "jini/registrar.hpp"

using namespace hcm;

namespace {

constexpr int kServicesPerIsland = 3;

// One self-contained middleware island (Jini-flavoured: the stack is
// irrelevant to the scaling argument, the count is what matters).
struct Island {
  net::Node* gw = nullptr;
  net::Node* lookup_host = nullptr;
  net::Node* appliance = nullptr;
  std::unique_ptr<jini::LookupService> lookup;
  std::unique_ptr<jini::Exporter> exporter;
  std::vector<std::unique_ptr<jini::Registrar>> registrars;
  core::JiniAdapter* adapter = nullptr;  // owned by meta (framework mode)
  std::unique_ptr<core::JiniAdapter> own_adapter;  // pairwise mode
};

std::vector<Island> build_islands(net::Network& net,
                                  net::EthernetSegment& backbone, int n) {
  std::vector<Island> islands(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto& island = islands[static_cast<std::size_t>(i)];
    auto tag = std::to_string(i);
    auto& lan = net.add_ethernet("lan-" + tag, sim::microseconds(200),
                                 100'000'000);
    island.gw = &net.add_node("gw-" + tag);
    island.lookup_host = &net.add_node("lookup-" + tag);
    island.appliance = &net.add_node("dev-" + tag);
    net.attach(*island.gw, lan);
    net.attach(*island.gw, backbone);
    net.attach(*island.lookup_host, lan);
    net.attach(*island.appliance, lan);
    island.lookup = std::make_unique<jini::LookupService>(
        net, island.lookup_host->id());
    (void)island.lookup->start();
    island.exporter =
        std::make_unique<jini::Exporter>(net, island.appliance->id(), 4170);
    (void)island.exporter->start();
    for (int s = 0; s < kServicesPerIsland; ++s) {
      std::string name = "svc-" + tag + "-" + std::to_string(s);
      island.exporter->export_object(
          name, [](const std::string&, const ValueList&,
                   InvokeResultFn done) { done(Value(true)); });
      jini::ServiceItem item;
      item.service_id = name;
      item.name = name;
      item.interface = InterfaceDesc{
          "Widget", {MethodDesc{"poke", {}, ValueType::kBool, false}}};
      item.endpoint = island.exporter->endpoint();
      island.registrars.push_back(std::make_unique<jini::Registrar>(
          net, island.appliance->id(), island.lookup->endpoint(),
          std::move(item)));
      island.registrars.back()->join([](const Status&) {});
    }
  }
  return islands;
}

void sec5_report() {
  bench::print_header(
      "Sec. 5  1:1 bridges vs meta-middleware: scaling with island count N");
  std::printf(
      "  N   bridges(1:1)  PCMs(framework)  bridge setup  framework setup\n");

  for (int n = 2; n <= 6; ++n) {
    // --- framework mode: one PCM per island around a shared VSR. -----
    double framework_ms = 0;
    {
      sim::Scheduler sched;
      net::Network net(sched);
      auto& backbone =
          net.add_ethernet("backbone", sim::milliseconds(5), 10'000'000);
      auto& vsr_host = net.add_node("vsr-host");
      net.attach(vsr_host, backbone);
      core::VsrServer vsr(net, vsr_host.id());
      (void)vsr.start();
      auto islands = build_islands(net, backbone, n);
      sched.run_for(sim::seconds(1));

      core::MetaMiddleware meta(net, vsr.endpoint());
      sim::SimTime t0 = sched.now();
      for (int i = 0; i < n; ++i) {
        auto adapter = std::make_unique<core::JiniAdapter>(
            net, islands[static_cast<std::size_t>(i)].gw->id(),
            islands[static_cast<std::size_t>(i)].lookup->endpoint());
        (void)adapter->start();
        (void)meta.add_island("island-" + std::to_string(i),
                              islands[static_cast<std::size_t>(i)].gw->id(),
                              std::move(adapter));
      }
      std::optional<Status> done;
      meta.refresh_all([&](const Status& s) { done = s; });
      sim::run_until_done(sched, [&] { return done.has_value(); });
      framework_ms = bench::to_ms(sched.now() - t0);
    }

    // --- pairwise mode: a dedicated bridge per ordered pair. Each
    // bridge discovers the source island's services and exports each
    // into the destination island — by hand, no VSR, no reuse. --------
    double pairwise_ms = 0;
    int bridges = 0;
    {
      sim::Scheduler sched;
      net::Network net(sched);
      auto& backbone =
          net.add_ethernet("backbone", sim::milliseconds(5), 10'000'000);
      auto islands = build_islands(net, backbone, n);
      sched.run_for(sim::seconds(1));
      // Each island still needs an adapter object for its native
      // protocol — but in pairwise mode every *pair* is an extra
      // artifact with its own discovery + export pass.
      for (auto& island : islands) {
        island.own_adapter = std::make_unique<core::JiniAdapter>(
            net, island.gw->id(), island.lookup->endpoint());
        (void)island.own_adapter->start();
      }
      sim::SimTime t0 = sched.now();
      int pending = 0;
      for (int src = 0; src < n; ++src) {
        for (int dst = 0; dst < n; ++dst) {
          if (src == dst) continue;
          ++bridges;
          ++pending;
          auto* src_adapter =
              islands[static_cast<std::size_t>(src)].own_adapter.get();
          auto* dst_adapter =
              islands[static_cast<std::size_t>(dst)].own_adapter.get();
          src_adapter->list_services(
              [src_adapter, dst_adapter,
               &pending](Result<std::vector<core::LocalService>> services) {
                if (services.is_ok()) {
                  for (auto& service : services.value()) {
                    core::LocalService bridged = service;
                    bridged.name = service.name;  // same deployed name
                    (void)dst_adapter->export_service(
                        bridged,
                        [src_adapter, name = service.name](
                            const std::string& method, const ValueList& args,
                            InvokeResultFn done) {
                          src_adapter->invoke(name, method, args,
                                              std::move(done));
                        });
                  }
                }
                --pending;
              });
        }
      }
      sim::run_until_done(sched, [&] { return pending == 0; });
      pairwise_ms = bench::to_ms(sched.now() - t0);
    }

    std::printf("  %d   %9d      %9d      %8.1f ms   %10.1f ms\n", n,
                bridges, n, pairwise_ms, framework_ms);
  }
  std::printf(
      "\n  bridge implementations grow O(N^2); PCMs grow O(N). Adding a\n"
      "  7th middleware costs 12 new bridges in the 1:1 world and exactly\n"
      "  one adapter in the framework (the paper's core argument).\n");
}

// The CPU cost of the per-island sync pass the framework repeats.
void BM_SingleIslandRefresh(benchmark::State& state) {
  sim::Scheduler sched;
  net::Network net(sched);
  auto& backbone =
      net.add_ethernet("backbone", sim::milliseconds(5), 10'000'000);
  auto& vsr_host = net.add_node("vsr-host");
  net.attach(vsr_host, backbone);
  core::VsrServer vsr(net, vsr_host.id());
  (void)vsr.start();
  auto islands = build_islands(net, backbone, 1);
  sched.run_for(sim::seconds(1));
  core::MetaMiddleware meta(net, vsr.endpoint());
  auto adapter = std::make_unique<core::JiniAdapter>(
      net, islands[0].gw->id(), islands[0].lookup->endpoint());
  (void)adapter->start();
  auto island = meta.add_island("island-0", islands[0].gw->id(),
                                std::move(adapter));
  for (auto _ : state) {
    std::optional<Status> done;
    island.value()->pcm->refresh([&](const Status& s) { done = s; });
    sim::run_until_done(sched, [&] { return done.has_value(); });
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_SingleIslandRefresh)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  sec5_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
