// Shard-scaling sweep for the conservative-window kernel (ISSUE 8
// acceptance shape). Holds the City workload constant (islands x
// devices x virtual time) and sweeps the shard count 1 -> 4, reporting
//   - wall-clock ms per run and the wall speedup vs 1 shard,
//   - per-shard busy time and the parallel-efficiency estimate
//     sum(busy)/max(busy) — the achievable speedup on a machine with
//     >= shards free cores (CI containers are often core-starved, so
//     the wall column alone under-reports the kernel; EXPERIMENTS.md
//     discusses both),
//   - the combined per-shard trace digest, run twice at each shard
//     count to pin bit-identical repeatability, and
//   - cross-shard post / clamp counters (clamped must stay 0: the
//     lookahead contract holds for the backbone topology).
// --smoke additionally runs the 1,000-island / 100k-device city on 4
// shards (the scenario ROADMAP calls infeasible single-threaded) and
// reports its completion; with --series <path> that smoke run also
// carries the PR 9 telemetry loop — per-shard metric slabs, a
// TimeSeriesRecorder on the window barriers and a shard-liveness
// health rule — and writes the series dump there (ci/check.sh feeds
// it to hcm_top). --json <path> archives everything
// (BENCH_shard_scaling.json).
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "net/shard_pools.hpp"
#include "obs/health.hpp"
#include "obs/slab.hpp"
#include "obs/timeseries.hpp"
#include "sim/sharded_kernel.hpp"
#include "sim/trace.hpp"
#include "testbed/city.hpp"

using namespace hcm;

namespace {

struct RunResult {
  double wall_ms = 0;
  std::uint64_t events = 0;
  std::uint64_t digest = 0;  // per-shard digests combined in shard order
  std::uint64_t windows = 0;
  std::uint64_t cross_posts = 0;
  std::uint64_t clamped = 0;
  std::uint64_t reports = 0;
  std::uint64_t ring_ok = 0;
  double est_speedup = 1.0;  // sum(busy)/max(busy) across shards
};

RunResult run_city(sim::ShardId shards, const testbed::CityOptions& copts,
                   sim::Duration run_for,
                   const std::string& series_path = {}) {
  sim::ShardedKernelOptions kopts;
  kopts.shards = shards;
  sim::ShardedKernel kernel(kopts);
  // One recorder per slab; the combined digest folds them in shard
  // order, so it is stable iff every shard's dispatch sequence is.
  std::vector<std::unique_ptr<sim::TraceRecorder>> traces;
  traces.reserve(shards);
  for (sim::ShardId s = 0; s < shards; ++s) {
    traces.push_back(std::make_unique<sim::TraceRecorder>(kernel.shard(s)));
  }
  // Per-shard wire block pools: each worker's messages draw from its
  // own freelist. Destroyed after the city (declared before it), when
  // every in-flight block has been released.
  net::ShardBlockPools wire_pools(kernel);
  // --series: the PR 9 telemetry loop riding along — per-shard slabs,
  // the recorder sampling at window barriers, and one liveness rule so
  // the dump carries health state for hcm_top. Declared after the
  // kernel: the recorder detaches its window hook before the kernel
  // dies.
  std::optional<obs::ShardSlabs> slabs;
  std::optional<obs::HealthMonitor> health;
  std::optional<obs::TimeSeriesRecorder> recorder;
  if (!series_path.empty()) {
    slabs.emplace(shards);
    obs::TimeSeriesOptions topts;
    topts.tiers = {{sim::milliseconds(100), 600},
                   {sim::seconds(1), 120},
                   {sim::seconds(10), 180}};
    topts.prefixes = {"vsg.", "events.", "obs.health.", "wire."};
    topts.max_series = 2000;  // a 1,000-island fleet is far larger
    health.emplace();
    const Status rule = health->add_rule_spec(
        "shard-stall: rate(sim.shard.*.events, window=500ms) < 1");
    if (!rule.is_ok()) {
      std::fprintf(stderr, "bench: bad health rule: %s\n",
                   rule.message().c_str());
      std::exit(1);
    }
    recorder.emplace(std::move(topts));
    recorder->set_health(&*health);
    // Fresh pool occupancy at every grid point (hcm_top's WIRE POOL
    // panel reads these series from the dump).
    recorder->set_pre_sample(
        [&wire_pools] { net::publish_wire_pool_gauges(&wire_pools); });
    recorder->attach(kernel);
  }
  testbed::City city(kernel, copts);
  city.start();

  const auto t0 = std::chrono::steady_clock::now();
  kernel.run_for(run_for);
  const auto t1 = std::chrono::steady_clock::now();

  RunResult r;
  r.wall_ms =
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count() /
      1000.0;
  r.events = kernel.events_processed();
  sim::TraceHash combined;
  for (const auto& t : traces) combined.mix(t->digest());
  r.digest = combined.digest();
  r.windows = kernel.windows_run();
  r.cross_posts = kernel.cross_shard_posts();
  r.clamped = kernel.clamped_deliveries();
  r.reports = city.reports_received();
  r.ring_ok = city.ring_calls_ok();
  const auto busy = kernel.busy_ns();
  std::uint64_t sum = 0, peak = 0;
  for (auto b : busy) {
    sum += b;
    if (b > peak) peak = b;
  }
  if (peak > 0) r.est_speedup = static_cast<double>(sum) / peak;
  if (recorder.has_value()) {
    if (!recorder->write_json(series_path)) {
      std::fprintf(stderr, "bench: cannot write series dump to %s\n",
                   series_path.c_str());
      std::exit(1);
    }
    std::printf(
        "  series: %zu series, %llu samples, health=%s, hash=%016llx -> %s\n",
        recorder->series_count(),
        static_cast<unsigned long long>(recorder->samples_taken()),
        obs::to_string(health->overall()),
        static_cast<unsigned long long>(recorder->series_hash()),
        series_path.c_str());
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json = bench::json_path_arg(argc, argv);
  bool smoke = false;
  std::string series_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
    if (std::string(argv[i]) == "--series" && i + 1 < argc) {
      series_path = argv[i + 1];
    }
  }

  testbed::CityOptions copts;
  copts.islands = 32;
  copts.devices_per_island = 8;
  copts.device_period = sim::milliseconds(200);
  copts.ring_period = sim::milliseconds(500);
  const sim::Duration virtual_time = sim::seconds(30);

  bench::JsonReport report("shard_scaling");
  bench::print_header(
      "bench_ext_shard_scaling: conservative-window kernel, City workload");
  std::printf("  islands=%zu devices=%zu virtual=%llds\n", copts.islands,
              copts.islands * copts.devices_per_island,
              static_cast<long long>(virtual_time / 1'000'000));

  double wall_1shard = 0;
  for (sim::ShardId shards : {1u, 2u, 4u}) {
    const RunResult a = run_city(shards, copts, virtual_time);
    const RunResult b = run_city(shards, copts, virtual_time);
    const bool repeatable = a.digest == b.digest && a.events == b.events;
    if (shards == 1) wall_1shard = a.wall_ms;
    const double wall_speedup = a.wall_ms > 0 ? wall_1shard / a.wall_ms : 0;
    std::printf(
        "  shards=%u  wall=%9.1f ms  events=%-9llu windows=%-7llu "
        "xposts=%-7llu clamped=%llu  est_speedup=%.2fx wall_speedup=%.2fx  "
        "digest=%016llx %s\n",
        shards, a.wall_ms, static_cast<unsigned long long>(a.events),
        static_cast<unsigned long long>(a.windows),
        static_cast<unsigned long long>(a.cross_posts),
        static_cast<unsigned long long>(a.clamped), a.est_speedup,
        wall_speedup, static_cast<unsigned long long>(a.digest),
        repeatable ? "[repeatable]" : "[DIGEST MISMATCH]");
    report.row()
        .str("scenario", "sweep")
        .num("shards", static_cast<std::uint64_t>(shards))
        .num("wall_ms", a.wall_ms)
        .num("wall_ms_run2", b.wall_ms)
        .num("events", a.events)
        .num("windows", a.windows)
        .num("cross_shard_posts", a.cross_posts)
        .num("clamped_deliveries", a.clamped)
        .num("reports", a.reports)
        .num("ring_calls_ok", a.ring_ok)
        .num("est_speedup", a.est_speedup)
        .num("wall_speedup", wall_speedup)
        .str("digest", std::to_string(a.digest))
        .str("repeatable", repeatable ? "yes" : "no");
    if (!repeatable) {
      std::fprintf(stderr, "FATAL: trace digest not repeatable at %u shards\n",
                   shards);
      return 1;
    }
    if (a.clamped != 0) {
      std::fprintf(stderr, "FATAL: %llu clamped deliveries at %u shards\n",
                   static_cast<unsigned long long>(a.clamped), shards);
      return 1;
    }
  }

  if (smoke) {
    testbed::CityOptions big;
    big.islands = 1000;
    big.devices_per_island = 100;
    big.device_period = sim::seconds(2);
    big.ring_period = sim::seconds(1);
    const RunResult r = run_city(4, big, sim::milliseconds(2500), series_path);
    std::printf(
        "  smoke: 1000 islands / 100k devices, 4 shards: wall=%.1f ms "
        "events=%llu reports=%llu ring_ok=%llu windows=%llu -> %s\n",
        r.wall_ms, static_cast<unsigned long long>(r.events),
        static_cast<unsigned long long>(r.reports),
        static_cast<unsigned long long>(r.ring_ok),
        static_cast<unsigned long long>(r.windows),
        r.events > 0 && r.reports > 0 ? "completed" : "FAILED");
    report.row()
        .str("scenario", "smoke_1000x100")
        .num("shards", std::uint64_t{4})
        .num("wall_ms", r.wall_ms)
        .num("events", r.events)
        .num("reports", r.reports)
        .num("ring_calls_ok", r.ring_ok)
        .num("windows", r.windows)
        .num("clamped_deliveries", r.clamped)
        .num("est_speedup", r.est_speedup);
    if (r.events == 0 || r.reports == 0) return 1;
  }

  if (!json.empty()) report.write(json);
  return 0;
}
