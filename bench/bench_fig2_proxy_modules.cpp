// Figure 2 — "Proxy Modules": the Server Proxy / Client Proxy pair
// inside each PCM. This bench regenerates the figure as measurements of
// the two proxy directions and of automatic proxy generation (the
// paper generates proxies with Javassist at class-load time; we
// generate them from interface descriptors at runtime — the property
// benchmarked here is that generation is cheap enough to do per
// service, per refresh).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/pcm.hpp"
#include "testbed/home.hpp"

using namespace hcm;

namespace {

InterfaceDesc synthetic_interface(int methods) {
  InterfaceDesc iface{"Synthetic" + std::to_string(methods), {}};
  for (int i = 0; i < methods; ++i) {
    iface.methods.push_back(MethodDesc{
        "method" + std::to_string(i),
        {{"a", ValueType::kInt}, {"b", ValueType::kString}},
        ValueType::kMap,
        false});
  }
  return iface;
}

void fig2_report() {
  sim::Scheduler sched;
  testbed::SmartHome home(sched);
  (void)home.refresh();

  bench::print_header(
      "Fig. 2  Proxy modules: SP and CP conversion cost per call");

  // CP direction: a remote (HAVi) client calls a local Jini service —
  // measured at the jini VSG: SOAP in -> native call out.
  // SP direction: a local Jini client calls a remote HAVi service —
  // the jini SP forwards over SOAP.
  constexpr int kCalls = 25;
  std::vector<double> sp_path, cp_path, native;
  for (int i = 0; i < kCalls; ++i) {
    // Native baseline: jini adapter to its own island's service.
    sim::SimTime t0 = sched.now();
    std::optional<Result<Value>> r;
    home.jini_adapter->invoke("laserdisc-1", "getStatus", {},
                              [&](Result<Value> v) { r = std::move(v); });
    sim::run_until_done(sched, [&] { return r.has_value(); });
    native.push_back(bench::to_ms(sched.now() - t0));

    // SP path: jini -> (SP, SOAP) -> havi camera.
    t0 = sched.now();
    r.reset();
    home.jini_adapter->invoke("camera-1", "getStatus", {},
                              [&](Result<Value> v) { r = std::move(v); });
    sim::run_until_done(sched, [&] { return r.has_value(); });
    sp_path.push_back(bench::to_ms(sched.now() - t0));

    // CP path: havi -> (SOAP, CP) -> jini laserdisc.
    t0 = sched.now();
    r.reset();
    home.havi_adapter->invoke("laserdisc-1", "getStatus", {},
                              [&](Result<Value> v) { r = std::move(v); });
    sim::run_until_done(sched, [&] { return r.has_value(); });
    cp_path.push_back(bench::to_ms(sched.now() - t0));
  }
  bench::print_row_ms("native (no proxies)", bench::stats_of(native));
  bench::print_row_ms("via SP (out through gateway)",
                      bench::stats_of(sp_path));
  bench::print_row_ms("via CP (in through gateway)",
                      bench::stats_of(cp_path));

  std::printf(
      "\n  proxy populations after sync: CPs generated=%llu, SPs "
      "generated=%llu\n",
      static_cast<unsigned long long>(home.meta->island("jini-island")
                                          ->pcm->proxygen()
                                          .client_proxies_generated()),
      static_cast<unsigned long long>(home.meta->island("jini-island")
                                          ->pcm->proxygen()
                                          .server_proxies_generated()));
}

// Proxy generation CPU cost vs interface size (the Javassist analogue).
void BM_GenerateClientProxy(benchmark::State& state) {
  sim::Scheduler sched;
  net::Network net(sched);
  auto& gw = net.add_node("gw");
  auto& eth = net.add_ethernet("lan", sim::microseconds(200), 100'000'000);
  net.attach(gw, eth);
  core::VirtualServiceGateway vsg(net, gw.id(), "island");
  (void)vsg.start();
  core::ProxyGenerator gen(vsg);
  auto iface = synthetic_interface(static_cast<int>(state.range(0)));
  std::int64_t i = 0;

  // A throwaway adapter: generation never invokes it.
  struct NullAdapter : core::MiddlewareAdapter {
    std::string middleware_name() const override { return "null"; }
    void list_services(ServicesFn done) override {
      done(std::vector<core::LocalService>{});
    }
    void invoke(const std::string&, const std::string&, const ValueList&,
                InvokeResultFn done) override {
      done(Value());
    }
    Status export_service(const core::LocalService&,
                          ServiceHandler) override {
      return Status::ok();
    }
    void unexport_service(const std::string&) override {}
  } adapter;

  for (auto _ : state) {
    core::LocalService service;
    service.name = "svc-" + std::to_string(i++);
    service.interface = iface;
    auto wsdl = gen.generate_client_proxy(service, adapter);
    benchmark::DoNotOptimize(wsdl);
  }
  state.SetLabel(std::to_string(state.range(0)) + " methods");
}
BENCHMARK(BM_GenerateClientProxy)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_GenerateServerProxy(benchmark::State& state) {
  sim::Scheduler sched;
  net::Network net(sched);
  auto& gw = net.add_node("gw");
  auto& eth = net.add_ethernet("lan", sim::microseconds(200), 100'000'000);
  net.attach(gw, eth);
  core::VirtualServiceGateway vsg(net, gw.id(), "island");
  (void)vsg.start();
  core::ProxyGenerator gen(vsg);
  soap::WsdlDocument remote;
  remote.interface = synthetic_interface(static_cast<int>(state.range(0)));
  remote.service_name = "remote-1";
  remote.endpoint = Uri{"http", "gw", 8080, "/vsg/remote-1"};
  for (auto _ : state) {
    auto handler = gen.generate_server_proxy(remote);
    benchmark::DoNotOptimize(handler);
  }
  state.SetLabel(std::to_string(state.range(0)) + " methods");
}
BENCHMARK(BM_GenerateServerProxy)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// WSDL emit+parse — the artifact proxies are generated from.
void BM_WsdlRoundTrip(benchmark::State& state) {
  auto iface = synthetic_interface(static_cast<int>(state.range(0)));
  Uri endpoint{"http", "gw", 8080, "/vsg/s"};
  for (auto _ : state) {
    auto text = soap::emit_wsdl(iface, "s", endpoint);
    auto doc = soap::parse_wsdl(text);
    benchmark::DoNotOptimize(doc);
  }
  state.SetLabel(std::to_string(state.range(0)) + " methods");
}
BENCHMARK(BM_WsdlRoundTrip)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  fig2_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
