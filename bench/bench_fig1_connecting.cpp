// Figure 1 — "Connecting Middleware": the concept diagram of islands
// joined by Virtual Service Gateways. This bench regenerates the
// figure's content as measurements: what a native in-island call costs,
// what the same call costs when it crosses islands through VSG + PCM,
// and where the added time goes (hop breakdown).
//
// Expected shape (paper narrative): cross-island calls pay a modest
// constant overhead — two extra gateway hops plus SOAP encode/decode —
// and remain fast relative to the devices themselves (an X10 command
// costs ~1 s of powerline time no matter how it is reached).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "soap/envelope.hpp"
#include "testbed/home.hpp"

using namespace hcm;

namespace {

std::vector<double> measure_calls(testbed::SmartHome& home,
                                  core::MiddlewareAdapter& adapter,
                                  const std::string& service,
                                  const std::string& method,
                                  const ValueList& args, int n) {
  std::vector<double> out;
  for (int i = 0; i < n; ++i) {
    sim::SimTime start = home.sched.now();
    std::optional<Result<Value>> result;
    adapter.invoke(service, method, args,
                   [&](Result<Value> r) { result = std::move(r); });
    sim::run_until_done(home.sched, [&] { return result.has_value(); });
    if (result->is_ok()) {
      out.push_back(bench::to_ms(home.sched.now() - start));
    }
  }
  return out;
}

void fig1_report() {
  sim::Scheduler sched;
  testbed::SmartHome home(sched);
  (void)home.refresh();

  bench::print_header(
      "Fig. 1  Connecting Middleware: native vs cross-island call latency");

  constexpr int kCalls = 20;
  // Native in-island baselines.
  bench::print_row_ms("jini native (laserdisc.getStatus)",
                      bench::stats_of(measure_calls(
                          home, *home.jini_adapter, "laserdisc-1",
                          "getStatus", {}, kCalls)));
  bench::print_row_ms("havi native (camera.getStatus)",
                      bench::stats_of(measure_calls(
                          home, *home.havi_adapter, "camera-1", "getStatus",
                          {}, kCalls)));
  bench::print_row_ms("x10  native (lamp.turnOn)",
                      bench::stats_of(measure_calls(home, *home.x10_adapter,
                                                    "desk-lamp", "turnOn", {},
                                                    kCalls)));

  // Cross-island: same services reached from a foreign island through
  // SP -> SOAP/HTTP -> VSG -> CP.
  std::printf("  ----------------------------------------------------------\n");
  bench::print_row_ms("havi -> jini (laserdisc.getStatus)",
                      bench::stats_of(measure_calls(
                          home, *home.havi_adapter, "laserdisc-1",
                          "getStatus", {}, kCalls)));
  bench::print_row_ms("jini -> havi (camera.getStatus)",
                      bench::stats_of(measure_calls(
                          home, *home.jini_adapter, "camera-1", "getStatus",
                          {}, kCalls)));
  bench::print_row_ms("jini -> x10  (lamp.turnOn)",
                      bench::stats_of(measure_calls(home, *home.jini_adapter,
                                                    "desk-lamp", "turnOn", {},
                                                    kCalls)));

  // Hop breakdown of one cross-island call (jini -> havi).
  std::printf("  ----------------------------------------------------------\n");
  std::printf("  hop breakdown, jini -> havi camera.getStatus:\n");
  auto native = bench::stats_of(measure_calls(
      home, *home.havi_adapter, "camera-1", "getStatus", {}, kCalls));
  auto bridged = bench::stats_of(measure_calls(
      home, *home.jini_adapter, "camera-1", "getStatus", {}, kCalls));
  auto wire = soap::build_call("urn:hcm:CameraControl", "getStatus", {});
  std::printf("    native HAVi leg            %9.2f ms\n", native.mean);
  std::printf("    VSG bridging overhead      %9.2f ms\n",
              bridged.mean - native.mean);
  std::printf("    SOAP request size          %9zu bytes\n", wire.size());
  std::printf("    (bridged total             %9.2f ms)\n", bridged.mean);
}

// CPU cost of the VSG wire protocol (the per-call conversion work).
void BM_SoapEnvelopeRoundTrip(benchmark::State& state) {
  soap::NamedValues params{{"channel", Value(7)}, {"title", Value("news")}};
  for (auto _ : state) {
    auto wire = soap::build_call("urn:hcm:Tuner", "setChannel", params);
    auto env = soap::parse_envelope(wire);
    benchmark::DoNotOptimize(env);
  }
}
BENCHMARK(BM_SoapEnvelopeRoundTrip);

}  // namespace

int main(int argc, char** argv) {
  fig1_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
