// Wire hot-path throughput: the invocation-throughput trajectory.
//
// Every cross-island call crosses the SOAP/HTTP (or binary) backbone
// twice — encode, serialize, stream, parse on the way out, and the
// same again for the reply. This bench drives a closed loop of
// VSG-to-VSG calls and measures what the stack actually costs in host
// resources, not virtual time:
//
//   calls/sec        wall-clock throughput of the closed loop
//   allocs/call      operator-new invocations per completed call
//                    (bench_util's HCM_BENCH_ALLOC_HOOK counting hook)
//   bytes/call       heap bytes requested per completed call
//
// Two arms: the SOAP backbone (the paper's prototype protocol, the
// expensive one) and the compact binary channel (the ablation
// alternative, the floor). Payloads are a short string + int pair —
// a typical control-plane op (fig4's turnOn/getStatus class of call).
//
//   --json <path>    archive rows as BENCH_wire_throughput.json
//   --calls <n>      calls per arm (default 4000; CI smoke uses less)
#define HCM_BENCH_ALLOC_HOOK 1
#include "bench_util.hpp"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/vsg.hpp"
#include "soap/envelope.hpp"

using namespace hcm;

namespace {

InterfaceDesc probe_interface() {
  return InterfaceDesc{
      "WireProbe",
      {MethodDesc{"poke",
                  {{"tag", ValueType::kString}, {"seq", ValueType::kInt}},
                  ValueType::kString,
                  false}}};
}

struct ArmResult {
  double calls_per_sec = 0;
  double allocs_per_call = 0;
  double bytes_per_call = 0;
  double sim_us_per_call = 0;
};

// Closed-loop wall-clock measurement of `calls` sequential round trips
// between a fresh VSG pair speaking `protocol`.
ArmResult run_arm(core::VsgProtocol protocol, std::size_t calls) {
  sim::Scheduler sched;
  net::Network net{sched};
  auto& gw_a = net.add_node("gw-a");
  auto& gw_b = net.add_node("gw-b");
  auto& eth = net.add_ethernet("backbone", sim::microseconds(200), 100'000'000);
  net.attach(gw_a, eth);
  net.attach(gw_b, eth);
  core::VirtualServiceGateway callee(net, gw_a.id(), "callee", 8080, protocol);
  core::VirtualServiceGateway caller(net, gw_b.id(), "caller", 8080, protocol);
  if (!callee.start().is_ok() || !caller.start().is_ok()) {
    std::fprintf(stderr, "bench: VSG start failed\n");
    std::exit(1);
  }
  const InterfaceDesc iface = probe_interface();
  auto uri = callee.expose("probe-1", iface,
                           [](const std::string&, const ValueList& args,
                              InvokeResultFn done) {
                             std::string reply = "ack:";
                             reply += args[0].as_string();
                             done(Value(std::move(reply)));
                           });
  if (!uri.is_ok()) {
    std::fprintf(stderr, "bench: expose failed\n");
    std::exit(1);
  }

  const Value tag("status-display-update-payload-0123456789abcdef");
  auto invoke_once = [&](std::int64_t seq) {
    std::optional<Result<Value>> result;
    caller.call_remote(uri.value(), "probe-1", iface, "poke",
                       {tag, Value(seq)},
                       [&](Result<Value> r) { result = std::move(r); });
    sim::run_until_done(sched, [&] { return result.has_value(); });
    if (!result.has_value() || !result->is_ok()) {
      std::fprintf(stderr, "bench: probe call failed: %s\n",
                   result.has_value() ? result->status().to_string().c_str()
                                      : "no completion");
      std::exit(1);
    }
  };

  invoke_once(-1);  // warm routes, pools and proxies
  const sim::SimTime sim0 = sched.now();
  bench::AllocDelta heap;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < calls; ++i) {
    invoke_once(static_cast<std::int64_t>(i));
  }
  const auto t1 = std::chrono::steady_clock::now();

  ArmResult r;
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  r.calls_per_sec = static_cast<double>(calls) / secs;
  r.allocs_per_call =
      static_cast<double>(heap.allocs()) / static_cast<double>(calls);
  r.bytes_per_call =
      static_cast<double>(heap.bytes()) / static_cast<double>(calls);
  r.sim_us_per_call = static_cast<double>(sched.now() - sim0) /
                      static_cast<double>(calls);
  return r;
}

void throughput_report(const std::string& json_path, std::size_t calls) {
  bench::print_header(
      "Wire hot-path throughput: cross-island round trips (wall clock)");
  if (!bench::alloc_hook_installed()) {
    // The hook self-registers on first counted allocation; reaching
    // this point without it means the TU was miscompiled.
    std::fprintf(stderr, "bench: allocation hook not installed\n");
  }
  struct Arm {
    const char* name;
    core::VsgProtocol protocol;
  };
  const Arm arms[] = {{"soap", core::VsgProtocol::kSoap},
                      {"binary", core::VsgProtocol::kBinary}};
  bench::JsonReport report("bench_ext_wire_throughput");
  std::printf("  %-8s %12s %14s %14s %12s\n", "path", "calls/sec",
              "allocs/call", "bytes/call", "sim-us/call");
  for (const Arm& arm : arms) {
    // Best of 3 batches so host scheduler noise doesn't penalize an arm.
    ArmResult best;
    for (int rep = 0; rep < 3; ++rep) {
      ArmResult r = run_arm(arm.protocol, calls);
      if (rep == 0 || r.calls_per_sec > best.calls_per_sec) best = r;
    }
    std::printf("  %-8s %12.0f %14.1f %14.0f %12.1f\n", arm.name,
                best.calls_per_sec, best.allocs_per_call, best.bytes_per_call,
                best.sim_us_per_call);
    report.row()
        .str("path", arm.name)
        .num("calls", static_cast<std::uint64_t>(calls))
        .num("calls_per_sec", best.calls_per_sec)
        .num("allocs_per_call", best.allocs_per_call)
        .num("bytes_per_call", best.bytes_per_call)
        .num("sim_us_per_call", best.sim_us_per_call);
  }
  if (!json_path.empty() && report.write(json_path)) {
    std::printf("  (json written to %s)\n", json_path.c_str());
  }
}

// --- micro-costs of the codec primitives under google-benchmark ---------

void BM_SoapBuildCall(benchmark::State& state) {
  const soap::NamedValues params = {
      {"tag", Value("status-display-update-payload-0123456789abcdef")},
      {"seq", Value(std::int64_t{42})}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        soap::build_call("urn:hcm:WireProbe", "poke", params));
  }
}
BENCHMARK(BM_SoapBuildCall);

void BM_SoapParseEnvelope(benchmark::State& state) {
  const std::string body = soap::build_call(
      "urn:hcm:WireProbe", "poke",
      {{"tag", Value("status-display-update-payload-0123456789abcdef")},
       {"seq", Value(std::int64_t{42})}});
  for (auto _ : state) {
    auto env = soap::parse_envelope(body);
    benchmark::DoNotOptimize(env);
  }
}
BENCHMARK(BM_SoapParseEnvelope);

void BM_SoapRoundTrip(benchmark::State& state) {
  const soap::NamedValues params = {
      {"tag", Value("status-display-update-payload-0123456789abcdef")},
      {"seq", Value(std::int64_t{42})}};
  for (auto _ : state) {
    auto env = soap::parse_envelope(
        soap::build_call("urn:hcm:WireProbe", "poke", params));
    benchmark::DoNotOptimize(env);
  }
}
BENCHMARK(BM_SoapRoundTrip);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_arg(argc, argv);
  std::size_t calls = 4000;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      ++i;
      continue;
    }
    if (std::string(argv[i]) == "--calls") {
      if (i + 1 < argc) calls = static_cast<std::size_t>(std::atoll(argv[i + 1]));
      ++i;
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());

  throughput_report(json_path, calls);
  benchmark::Initialize(&filtered_argc, args.data());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
