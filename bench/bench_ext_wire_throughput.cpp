// Wire hot-path throughput: the invocation-throughput trajectory.
//
// Every cross-island call crosses the SOAP/HTTP (or binary) backbone
// twice — encode, serialize, stream, parse on the way out, and the
// same again for the reply. This bench drives a closed loop of
// VSG-to-VSG calls and measures what the stack actually costs in host
// resources, not virtual time:
//
//   calls/sec        wall-clock throughput of the closed loop
//   allocs/call      operator-new invocations per completed call
//                    (bench_util's HCM_BENCH_ALLOC_HOOK counting hook)
//   bytes/call       heap bytes requested per completed call
//
// Two arms: the SOAP backbone (the paper's prototype protocol, the
// expensive one) and the compact binary channel (the ablation
// alternative, the floor). Payloads are a short string + int pair —
// a typical control-plane op (fig4's turnOn/getStatus class of call).
//
// A third, optional arm exercises the block pool at stream scale: N
// concurrent connections with batched send/deliver churn, reporting
// peak RSS, RSS growth after warmup (flat growth = every payload block
// recycled through the freelist) and the pool hit rate.
//
//   --json <path>    archive rows as BENCH_wire_throughput.json
//   --calls <n>      calls per arm (default 4000; CI smoke uses less)
//   --streams <n>    add the churn arm over n concurrent streams
//                    (the headline configuration is 100000)
#define HCM_BENCH_ALLOC_HOOK 1
#include "bench_util.hpp"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/block_pool.hpp"
#include "common/block_stream.hpp"
#include "core/vsg.hpp"
#include "net/network.hpp"
#include "soap/envelope.hpp"

using namespace hcm;

namespace {

InterfaceDesc probe_interface() {
  return InterfaceDesc{
      "WireProbe",
      {MethodDesc{"poke",
                  {{"tag", ValueType::kString}, {"seq", ValueType::kInt}},
                  ValueType::kString,
                  false}}};
}

struct ArmResult {
  double calls_per_sec = 0;
  double allocs_per_call = 0;
  double bytes_per_call = 0;
  double sim_us_per_call = 0;
};

// Closed-loop wall-clock measurement of `calls` sequential round trips
// between a fresh VSG pair speaking `protocol`.
ArmResult run_arm(core::VsgProtocol protocol, std::size_t calls) {
  sim::Scheduler sched;
  net::Network net{sched};
  auto& gw_a = net.add_node("gw-a");
  auto& gw_b = net.add_node("gw-b");
  auto& eth = net.add_ethernet("backbone", sim::microseconds(200), 100'000'000);
  net.attach(gw_a, eth);
  net.attach(gw_b, eth);
  core::VirtualServiceGateway callee(net, gw_a.id(), "callee", 8080, protocol);
  core::VirtualServiceGateway caller(net, gw_b.id(), "caller", 8080, protocol);
  if (!callee.start().is_ok() || !caller.start().is_ok()) {
    std::fprintf(stderr, "bench: VSG start failed\n");
    std::exit(1);
  }
  const InterfaceDesc iface = probe_interface();
  auto uri = callee.expose("probe-1", iface,
                           [](const std::string&, const ValueList& args,
                              InvokeResultFn done) {
                             std::string reply = "ack:";
                             reply += args[0].as_string();
                             done(Value(std::move(reply)));
                           });
  if (!uri.is_ok()) {
    std::fprintf(stderr, "bench: expose failed\n");
    std::exit(1);
  }

  const Value tag("status-display-update-payload-0123456789abcdef");
  // Arguments live outside the loop so the harness measures the
  // middleware's allocations, not its own argument rebuilding.
  ValueList args{tag, Value(std::int64_t{0})};
  auto invoke_once = [&](std::int64_t seq) {
    std::optional<Result<Value>> result;
    args[1] = Value(seq);
    caller.call_remote(uri.value(), "probe-1", iface, "poke", args,
                       [&](Result<Value> r) { result = std::move(r); });
    sim::run_until_done(sched, [&] { return result.has_value(); });
    if (!result.has_value() || !result->is_ok()) {
      std::fprintf(stderr, "bench: probe call failed: %s\n",
                   result.has_value() ? result->status().to_string().c_str()
                                      : "no completion");
      std::exit(1);
    }
  };

  invoke_once(-1);  // warm routes, pools and proxies
  const sim::SimTime sim0 = sched.now();
  bench::AllocDelta heap;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < calls; ++i) {
    invoke_once(static_cast<std::int64_t>(i));
  }
  const auto t1 = std::chrono::steady_clock::now();

  ArmResult r;
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  r.calls_per_sec = static_cast<double>(calls) / secs;
  r.allocs_per_call =
      static_cast<double>(heap.allocs()) / static_cast<double>(calls);
  r.bytes_per_call =
      static_cast<double>(heap.bytes()) / static_cast<double>(calls);
  r.sim_us_per_call = static_cast<double>(sched.now() - sim0) /
                      static_cast<double>(calls);
  return r;
}

// --- stream-churn arm: pooled blocks at 100k+ concurrent streams --------

// /proc/self/status field in kB (VmRSS, VmHWM); 0 when unavailable.
std::int64_t proc_status_kb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::int64_t kb = 0;
  const std::size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      kb = std::atoll(line + key_len + 1);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

struct ChurnResult {
  std::size_t streams = 0;
  int cycles = 0;
  double sends_per_sec = 0;
  std::int64_t peak_rss_kb = 0;    // VmHWM at the end of the run
  std::int64_t rss_growth_kb = 0;  // VmRSS delta, cycle 1 -> last cycle
  double pool_hit_rate = 0;        // freelist hits / total pool acquires
  std::uint64_t heap_fallbacks = 0;
};

// Holds `n_streams` concurrent connections, then cycles send/deliver
// over all of them with a bounded in-flight batch, so live messages —
// not the stream count — bound block demand. RSS must stay flat cycle
// over cycle: every payload block recycles through the freelist
// (docs/PERFORMANCE.md §"Block pool"). The first cycle is the warmup
// that grows the pool to steady state; growth is measured after it.
ChurnResult run_churn(std::size_t n_streams, int cycles) {
  // A dedicated single-lane pool bound to the driving thread (the
  // single-scheduler binding path of block_pool.hpp): the whole cap is
  // one freelist, so the steady-state in-flight batch recycles with a
  // near-1 hit rate. Declared first — everything that can still hold a
  // block (streams, pending buffers) dies before the pool does.
  BlockPool churn_pool(BlockPool::Config{.max_blocks = 2048, .lanes = 1});
  BlockPool* prev_pool = bind_thread_block_pool(&churn_pool);
  sim::Scheduler sched;
  net::Network net{sched};
  auto& gw_a = net.add_node("churn-a");
  auto& gw_b = net.add_node("churn-b");
  auto& eth = net.add_ethernet("backbone", sim::microseconds(200), 100'000'000);
  net.attach(gw_a, eth);
  net.attach(gw_b, eth);

  std::vector<net::StreamPtr> accepted;
  accepted.reserve(n_streams);
  const Status listening =
      gw_a.listen(9000, [&accepted](net::StreamPtr s) {
        // Deliver handler drops the chain, releasing its blocks.
        s->set_on_data([](BlockStream&& data) { data.clear(); });
        accepted.push_back(std::move(s));
      });
  if (!listening.is_ok()) {
    std::fprintf(stderr, "bench: churn listen failed\n");
    std::exit(1);
  }

  std::vector<net::StreamPtr> streams;
  streams.reserve(n_streams);
  // Handshakes are 1.5 RTT of simulated events; batches keep the
  // event queue (a host-memory cost) bounded while the established
  // stream count climbs to the full n_streams.
  constexpr std::size_t kBatch = 4096;
  for (std::size_t opened = 0; opened < n_streams;) {
    const std::size_t batch = std::min(kBatch, n_streams - opened);
    for (std::size_t i = 0; i < batch; ++i) {
      net.connect(gw_b.id(), {gw_a.id(), 9000},
                  [&streams](Result<net::StreamPtr> r) {
                    if (r.is_ok()) streams.push_back(std::move(r).take());
                  });
    }
    opened += batch;
    sched.run();
  }
  if (streams.size() != n_streams || accepted.size() != n_streams) {
    std::fprintf(stderr, "bench: churn connect failed (%zu/%zu up)\n",
                 streams.size(), n_streams);
    std::exit(1);
  }

  const std::string payload(512, 'x');
  const BlockPool::Stats pool0 = wire_pool().stats();
  std::int64_t rss_after_warmup = 0;
  std::uint64_t sends = 0;
  // In-flight messages, not streams, bound block demand: each send
  // batch lives in at most kSendBatch pooled blocks (under the cap),
  // released on delivery before the next batch draws them again.
  constexpr std::size_t kSendBatch = 1024;
  const auto t0 = std::chrono::steady_clock::now();
  for (int cycle = 0; cycle < cycles; ++cycle) {
    for (std::size_t i = 0; i < streams.size();) {
      const std::size_t batch = std::min(kSendBatch, streams.size() - i);
      for (std::size_t j = 0; j < batch; ++j, ++i) {
        BlockStream data;
        data.append(payload);
        streams[i]->send(std::move(data));
        ++sends;
      }
      sched.run();  // deliver the batch; receivers release the blocks
    }
    if (cycle == 0) rss_after_warmup = proc_status_kb("VmRSS");
  }
  const auto t1 = std::chrono::steady_clock::now();

  ChurnResult r;
  r.streams = n_streams;
  r.cycles = cycles;
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  r.sends_per_sec = secs > 0 ? static_cast<double>(sends) / secs : 0;
  r.peak_rss_kb = proc_status_kb("VmHWM");
  r.rss_growth_kb = proc_status_kb("VmRSS") - rss_after_warmup;
  const BlockPool::Stats pool1 = wire_pool().stats();
  const std::uint64_t hits = pool1.pool_hits - pool0.pool_hits;
  const std::uint64_t total = hits + (pool1.fresh_blocks - pool0.fresh_blocks) +
                              (pool1.heap_fallbacks - pool0.heap_fallbacks);
  r.pool_hit_rate =
      total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0;
  r.heap_fallbacks = pool1.heap_fallbacks - pool0.heap_fallbacks;

  for (auto& s : streams) s->close();
  sched.run();
  streams.clear();
  accepted.clear();
  bind_thread_block_pool(prev_pool);
  return r;
}

void throughput_report(const std::string& json_path, std::size_t calls,
                       std::size_t churn_streams) {
  bench::print_header(
      "Wire hot-path throughput: cross-island round trips (wall clock)");
  if (!bench::alloc_hook_installed()) {
    // The hook self-registers on first counted allocation; reaching
    // this point without it means the TU was miscompiled.
    std::fprintf(stderr, "bench: allocation hook not installed\n");
  }
  struct Arm {
    const char* name;
    core::VsgProtocol protocol;
  };
  const Arm arms[] = {{"soap", core::VsgProtocol::kSoap},
                      {"binary", core::VsgProtocol::kBinary}};
  bench::JsonReport report("bench_ext_wire_throughput");
  std::printf("  %-8s %12s %14s %14s %12s\n", "path", "calls/sec",
              "allocs/call", "bytes/call", "sim-us/call");
  for (const Arm& arm : arms) {
    // Best of 3 batches so host scheduler noise doesn't penalize an arm.
    ArmResult best;
    for (int rep = 0; rep < 3; ++rep) {
      ArmResult r = run_arm(arm.protocol, calls);
      if (rep == 0 || r.calls_per_sec > best.calls_per_sec) best = r;
    }
    std::printf("  %-8s %12.0f %14.1f %14.0f %12.1f\n", arm.name,
                best.calls_per_sec, best.allocs_per_call, best.bytes_per_call,
                best.sim_us_per_call);
    report.row()
        .str("path", arm.name)
        .num("calls", static_cast<std::uint64_t>(calls))
        .num("calls_per_sec", best.calls_per_sec)
        .num("allocs_per_call", best.allocs_per_call)
        .num("bytes_per_call", best.bytes_per_call)
        .num("sim_us_per_call", best.sim_us_per_call);
  }
  if (churn_streams > 0) {
    const int cycles = 3;
    const ChurnResult c = run_churn(churn_streams, cycles);
    std::printf(
        "  churn    %zu streams x %d cycles: %.0f sends/sec, "
        "peak rss %lld kB, growth %lld kB, pool hit rate %.3f, "
        "%llu heap fallbacks\n",
        c.streams, c.cycles, c.sends_per_sec,
        static_cast<long long>(c.peak_rss_kb),
        static_cast<long long>(c.rss_growth_kb), c.pool_hit_rate,
        static_cast<unsigned long long>(c.heap_fallbacks));
    report.row()
        .str("path", "churn")
        .num("streams", static_cast<std::uint64_t>(c.streams))
        .num("cycles", static_cast<std::uint64_t>(c.cycles))
        .num("sends_per_sec", c.sends_per_sec)
        .num("peak_rss_kb", static_cast<double>(c.peak_rss_kb))
        .num("rss_growth_kb", static_cast<double>(c.rss_growth_kb))
        .num("pool_hit_rate", c.pool_hit_rate)
        .num("heap_fallbacks", static_cast<double>(c.heap_fallbacks));
  }
  if (!json_path.empty() && report.write(json_path)) {
    std::printf("  (json written to %s)\n", json_path.c_str());
  }
}

// --- micro-costs of the codec primitives under google-benchmark ---------

void BM_SoapBuildCall(benchmark::State& state) {
  const soap::NamedValues params = {
      {"tag", Value("status-display-update-payload-0123456789abcdef")},
      {"seq", Value(std::int64_t{42})}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        soap::build_call("urn:hcm:WireProbe", "poke", params));
  }
}
BENCHMARK(BM_SoapBuildCall);

void BM_SoapParseEnvelope(benchmark::State& state) {
  const std::string body = soap::build_call(
      "urn:hcm:WireProbe", "poke",
      {{"tag", Value("status-display-update-payload-0123456789abcdef")},
       {"seq", Value(std::int64_t{42})}});
  for (auto _ : state) {
    auto env = soap::parse_envelope(body);
    benchmark::DoNotOptimize(env);
  }
}
BENCHMARK(BM_SoapParseEnvelope);

void BM_SoapRoundTrip(benchmark::State& state) {
  const soap::NamedValues params = {
      {"tag", Value("status-display-update-payload-0123456789abcdef")},
      {"seq", Value(std::int64_t{42})}};
  for (auto _ : state) {
    auto env = soap::parse_envelope(
        soap::build_call("urn:hcm:WireProbe", "poke", params));
    benchmark::DoNotOptimize(env);
  }
}
BENCHMARK(BM_SoapRoundTrip);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_arg(argc, argv);
  std::size_t calls = 4000;
  std::size_t churn_streams = 0;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      ++i;
      continue;
    }
    if (std::string(argv[i]) == "--calls") {
      if (i + 1 < argc) calls = static_cast<std::size_t>(std::atoll(argv[i + 1]));
      ++i;
      continue;
    }
    if (std::string(argv[i]) == "--streams") {
      if (i + 1 < argc) {
        churn_streams = static_cast<std::size_t>(std::atoll(argv[i + 1]));
      }
      ++i;
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());

  throughput_report(json_path, calls, churn_streams);
  benchmark::Initialize(&filtered_argc, args.data());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
