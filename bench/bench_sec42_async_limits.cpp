// §4.2 — "HTTP is inherently a client/server protocol, which does not
// map well to asynchronous notification scenarios." This bench
// quantifies that claim: an X10 motion event must reach the HAVi island.
//   (a) Over the HTTP-based framework the receiver can only poll, so
//       notification latency ~ poll interval/2 and idle polling burns
//       messages proportional to 1/interval.
//   (b) The event-gateway extension (paper §6 future work) pushes the
//       event in one datagram.
//
// Expected shape: polling latency grows linearly with the interval
// while push stays flat; polling message overhead grows as observation
// time / interval even with zero events.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/stream_gateway.hpp"
#include "testbed/home.hpp"

using namespace hcm;

namespace {

void sec42_report() {
  bench::print_header(
      "Sec. 4.2  Asynchronous notification: HTTP polling vs event push");

  std::printf(
      "  poll interval   mean notify latency   msgs per idle minute\n");
  for (auto interval_s : {1, 5, 10, 30}) {
    sim::Scheduler sched;
    testbed::SmartHome home(sched);
    (void)home.refresh();
    const auto interval = sim::seconds(interval_s);

    // Poller on the HAVi gateway: HTTP-era integration — it can only
    // ask the X10 island's VSG for the latest motion state the CM11A
    // observed on the powerline (same observation point as the push
    // variant, so the comparison is fair).
    auto observed = std::make_shared<std::int64_t>(0);
    home.cm11a->set_observer([observed](const x10::ObservedCommand& cmd) {
      if (cmd.function == x10::FunctionCode::kOn) ++*observed;
    });
    (void)home.meta->island("x10-island")
        ->vsg->expose("motion-state",
                      InterfaceDesc{"MotionState",
                                    {MethodDesc{"lastEvent", {},
                                                ValueType::kInt, false}}},
                      [observed](const std::string&, const ValueList&,
                                 InvokeResultFn done) {
                        done(Value(*observed));
                      });
    auto* havi_island = home.meta->island("havi-island");
    auto* x10_island = home.meta->island("x10-island");
    auto motion_uri = x10_island->vsg->exposure_uri("motion-state");
    InterfaceDesc motion_iface{
        "MotionState",
        {MethodDesc{"lastEvent", {}, ValueType::kInt, false}}};

    std::int64_t last_seen = 0;
    std::optional<sim::SimTime> noticed_at;
    std::uint64_t polls = 0;
    std::function<void()> poll = [&] {
      ++polls;
      havi_island->vsg->call_remote(
          motion_uri, "motion-state", motion_iface, "lastEvent", {},
          [&](Result<Value> r) {
            if (r.is_ok() && r.value().is_int() &&
                r.value().as_int() > last_seen) {
              last_seen = r.value().as_int();
              if (!noticed_at) noticed_at = sched.now();
            }
          });
      sched.after(interval, poll);
    };
    sched.after(interval, poll);

    // One idle minute to count pure polling overhead.
    sched.run_for(sim::seconds(60));
    const std::uint64_t idle_polls = polls;

    // Now a motion event; measure notification latency (averaged over
    // several events).
    std::vector<double> latencies;
    for (int i = 0; i < 5; ++i) {
      noticed_at.reset();
      sim::SimTime t0 = sched.now();
      home.motion_sensor->trigger();
      sim::run_until_done(sched, [&] { return noticed_at.has_value(); },
                          2'000'000);
      if (noticed_at) latencies.push_back(bench::to_ms(*noticed_at - t0));
      sched.run_for(sim::seconds(35));  // sensor auto-off between events
    }
    std::printf("  %8d s     %12.0f ms          %6llu\n", interval_s,
                bench::stats_of(latencies).mean,
                static_cast<unsigned long long>(idle_polls));
  }

  // (b) The push extension.
  {
    sim::Scheduler sched;
    testbed::SmartHome home(sched);
    (void)home.refresh();
    core::EventGateway x10_events(home.net, home.x10_gw->id());
    core::EventGateway havi_events(home.net, home.havi_gw->id());
    (void)x10_events.start();
    (void)havi_events.start();
    x10_events.add_peer({home.havi_gw->id(), core::kEventGatewayPort});
    home.cm11a->set_observer([&](const x10::ObservedCommand& cmd) {
      if (cmd.function == x10::FunctionCode::kOn) {
        x10_events.publish("motion", Value(1));
      }
    });
    std::optional<sim::SimTime> noticed_at;
    havi_events.subscribe("motion", [&](const std::string&, const Value&) {
      if (!noticed_at) noticed_at = sched.now();
    });
    std::vector<double> latencies;
    for (int i = 0; i < 5; ++i) {
      noticed_at.reset();
      sim::SimTime t0 = sched.now();
      home.motion_sensor->trigger();
      sim::run_until_done(sched, [&] { return noticed_at.has_value(); },
                          2'000'000);
      if (noticed_at) latencies.push_back(bench::to_ms(*noticed_at - t0));
      sched.run_for(sim::seconds(35));
    }
    std::printf("  event push     %12.0f ms          %6d\n",
                bench::stats_of(latencies).mean, 0);
    std::printf(
        "  (push latency = powerline sensor frames + one datagram; no\n"
        "   idle traffic at all — the §6 extension removes the HTTP "
        "limitation)\n");
  }
}

// CPU throughput of the push path's fan-out (events/second scale).
void BM_EventGatewayLocalPublish(benchmark::State& state) {
  sim::Scheduler sched;
  net::Network net(sched);
  auto& gw = net.add_node("gw");
  auto& eth = net.add_ethernet("lan", sim::microseconds(200), 100'000'000);
  net.attach(gw, eth);
  core::EventGateway gateway(net, gw.id());
  (void)gateway.start();
  std::int64_t hits = 0;
  gateway.subscribe("t", [&](const std::string&, const Value&) { ++hits; });
  Value payload(ValueMap{{"unit", Value(5)}});
  for (auto _ : state) {
    gateway.publish("t", payload);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_EventGatewayLocalPublish);

}  // namespace

int main(int argc, char** argv) {
  sec42_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
