// §6 future-work extensions, measured: dynamic service activation
// (cold-start vs warm-call latency, queued-call behaviour) and the
// cross-island AV stream relay (sustained frame rate, loss under a
// degraded backbone). The paper lists both as what "another Meta
// middleware" should provide; here they are framework extensions and
// these are their characterization numbers.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/activation.hpp"
#include "core/av_relay.hpp"
#include "testbed/home.hpp"

using namespace hcm;

namespace {

InterfaceDesc probe_interface() {
  return InterfaceDesc{"Probe",
                       {MethodDesc{"ping", {}, ValueType::kInt, false}}};
}

void activation_report() {
  bench::print_header(
      "Ext. (Sec. 6)  Dynamic service activation: cold vs warm calls");

  std::printf("  activation delay   cold call    warm call\n");
  for (auto delay_ms : {100, 500, 2000}) {
    sim::Scheduler sched;
    net::Network net(sched);
    auto& gw_a = net.add_node("gw-a");
    auto& gw_b = net.add_node("gw-b");
    auto& eth = net.add_ethernet("bb", sim::milliseconds(5), 10'000'000);
    net.attach(gw_a, eth);
    net.attach(gw_b, eth);
    core::VirtualServiceGateway vsg_a(net, gw_a.id(), "a");
    core::VirtualServiceGateway vsg_b(net, gw_b.id(), "b");
    (void)vsg_a.start();
    (void)vsg_b.start();
    core::ActivationManager manager(net, vsg_a);
    core::ActivationManager::Options options;
    options.activation_delay = sim::milliseconds(delay_ms);
    options.idle_timeout = sim::seconds(60);
    auto uri = manager.register_activatable(
        "probe", probe_interface(),
        []() -> ServiceHandler {
          return [](const std::string&, const ValueList&,
                    InvokeResultFn done) { done(Value(1)); };
        },
        options);

    auto timed_call = [&]() -> double {
      sim::SimTime t0 = sched.now();
      std::optional<Result<Value>> r;
      vsg_b.call_remote(uri.value(), "probe", probe_interface(), "ping", {},
                        [&](Result<Value> v) { r = std::move(v); });
      sim::run_until_done(sched, [&] { return r.has_value(); });
      return bench::to_ms(sched.now() - t0);
    };
    double cold = timed_call();
    double warm = timed_call();
    std::printf("  %8d ms       %8.1f ms   %8.1f ms\n", delay_ms, cold,
                warm);
  }
  std::printf(
      "  cold = activation delay + call; warm = call only. Dormant\n"
      "  services cost nothing until used — the paper's activation gap\n"
      "  closed at the framework layer.\n");
}

void av_relay_report() {
  bench::print_header(
      "Ext. (Sec. 6)  AV stream relay: HAVi camera -> remote island");

  std::printf("  backbone loss   frames sent   delivered    fps    lost\n");
  for (double loss : {0.0, 0.05, 0.2}) {
    sim::Scheduler sched;
    testbed::SmartHome home(sched);
    (void)home.refresh();
    core::AvRelaySender sender(home.net, home.havi_gw->id(),
                               *home.firewire);
    core::AvRelayReceiver receiver(home.net, home.jini_gw->id());
    (void)receiver.start();
    receiver.open_stream(1, [](std::uint64_t, const Bytes&) {});

    auto ch = home.firewire->allocate_channel(havi::kFrameBytes / 8);
    std::optional<Result<Value>> r;
    home.havi_adapter->invoke("camera-1", "startCapture", {},
                              [&](Result<Value> v) { r = std::move(v); });
    sim::run_until_done(sched, [&] { return r.has_value(); });
    havi::Seid self = home.fav->messaging.register_element(nullptr);
    std::optional<Result<Value>> connected;
    home.fav->messaging.send_request(
        self, home.camera->seid(), "sm.connectSource",
        {Value(static_cast<std::int64_t>(ch.value()))},
        [&](Result<Value> v) { connected = std::move(v); });
    sim::run_until_done(sched, [&] { return connected.has_value(); });
    (void)sender.relay(ch.value(), receiver.endpoint(), 1);

    home.backbone->set_drop_probability(loss);
    const auto seconds = 10;
    sched.run_for(sim::seconds(seconds));
    std::printf("  %8.0f %%     %8llu     %8llu  %5.1f  %6llu\n",
                loss * 100,
                static_cast<unsigned long long>(sender.frames_relayed()),
                static_cast<unsigned long long>(receiver.frames_received()),
                static_cast<double>(receiver.frames_received()) / seconds,
                static_cast<unsigned long long>(receiver.frames_lost()));
  }
  std::printf(
      "  ~30 fps DV frames cross the backbone as datagrams; loss shows\n"
      "  up as sequence gaps, never as stalls — the trade an AV\n"
      "  transport wants and HTTP/TCP cannot offer (Sec. 4.2).\n");
}

void BM_ActivationDispatchWarm(benchmark::State& state) {
  // The in-memory dispatch cost of the activation indirection.
  sim::Scheduler sched;
  net::Network net(sched);
  auto& gw = net.add_node("gw");
  auto& eth = net.add_ethernet("lan", sim::microseconds(200), 100'000'000);
  net.attach(gw, eth);
  core::VirtualServiceGateway vsg(net, gw.id(), "island");
  (void)vsg.start();
  core::ActivationManager manager(net, vsg);
  core::ActivationManager::Options options;
  options.activation_delay = 0;
  options.idle_timeout = 0;
  (void)manager.register_activatable(
      "p", probe_interface(),
      []() -> ServiceHandler {
        return [](const std::string&, const ValueList&,
                  InvokeResultFn done) { done(Value(1)); };
      },
      options);
  for (auto _ : state) {
    // (Warm after the first iteration; the first pays zero-delay
    // activation through the scheduler.)
    benchmark::DoNotOptimize(manager.is_active("p"));
  }
}
BENCHMARK(BM_ActivationDispatchWarm);

}  // namespace

int main(int argc, char** argv) {
  activation_report();
  av_relay_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
