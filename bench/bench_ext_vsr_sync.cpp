// VSR synchronization bench: snapshot vs delta refresh across a mesh of
// islands sharing one backbone registry. Sweeps islands x services x
// churn and reports per-refresh-round latency and backbone traffic for
// both Pcm sync modes.
//
// Expected shape: with zero churn the delta arm's steady-state cost is
// flat in S (one renewOrigin + one empty changesSince per island per
// round) while the snapshot arm republishes and re-lists everything, so
// its latency and bytes grow linearly with S. Under churn the delta arm
// pays O(changed entries) — WSDL bodies move only for descriptions a
// client has never seen.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/pcm.hpp"
#include "core/vsg.hpp"
#include "core/vsr.hpp"

using namespace hcm;

namespace {

// Representative device interface (a handful of methods plus an event)
// so each service's WSDL has realistic bulk.
InterfaceDesc device_interface() {
  InterfaceDesc iface{
      "DeviceControl",
      {
          MethodDesc{"turnOn", {}, ValueType::kBool, false},
          MethodDesc{"turnOff", {}, ValueType::kBool, false},
          MethodDesc{"setLevel",
                     {{"level", ValueType::kInt}},
                     ValueType::kBool,
                     false},
          MethodDesc{"getStatus", {}, ValueType::kMap, false},
      }};
  iface.events.push_back(MethodDesc{
      "stateChanged", {{"on", ValueType::kBool}}, ValueType::kNull, true});
  return iface;
}

// Minimal in-memory middleware: a mutable native service list (the
// churn knob) and a recording export table. Keeps adapters, devices and
// the event bridge out of the measurement — everything on the backbone
// is VSR synchronization traffic.
class SyntheticAdapter : public core::MiddlewareAdapter {
 public:
  [[nodiscard]] std::string middleware_name() const override {
    return "synthetic";
  }

  void list_services(ServicesFn done) override {
    std::vector<core::LocalService> out;
    out.reserve(services_.size());
    for (const auto& [name, s] : services_) out.push_back(s);
    done(std::move(out));
  }

  void invoke(const std::string&, const std::string&, const ValueList&,
              InvokeResultFn done) override {
    done(Value(true));
  }

  [[nodiscard]] Status export_service(const core::LocalService& service,
                                      ServiceHandler) override {
    exported_.insert(service.name);
    return Status::ok();
  }
  void unexport_service(const std::string& name) override {
    exported_.erase(name);
  }

  void add_service(const std::string& name) {
    core::LocalService s;
    s.name = name;
    s.interface = device_interface();
    services_[name] = std::move(s);
  }
  void remove_service(const std::string& name) { services_.erase(name); }
  [[nodiscard]] std::size_t exported_count() const {
    return exported_.size();
  }

 private:
  std::map<std::string, core::LocalService> services_;
  std::set<std::string> exported_;
};

struct Mesh {
  sim::Scheduler sched;
  net::Network net{sched};
  net::EthernetSegment* backbone = nullptr;
  std::unique_ptr<core::VsrServer> vsr;

  struct IslandBox {
    std::unique_ptr<core::VirtualServiceGateway> vsg;
    std::unique_ptr<core::Pcm> pcm;
    SyntheticAdapter* adapter = nullptr;  // owned by pcm
  };
  std::vector<IslandBox> islands;

  Mesh(std::size_t n_islands, std::size_t services_per_island,
       core::Pcm::SyncMode mode) {
    backbone = &net.add_ethernet("backbone", sim::milliseconds(5), 10'000'000);
    auto& vsr_node = net.add_node("vsr-host");
    net.attach(vsr_node, *backbone);
    vsr = std::make_unique<core::VsrServer>(net, vsr_node.id());
    (void)vsr->start();
    for (std::size_t i = 0; i < n_islands; ++i) {
      const std::string island = "island-" + std::to_string(i);
      auto& gw = net.add_node(island + "-gw");
      net.attach(gw, *backbone);
      IslandBox box;
      box.vsg = std::make_unique<core::VirtualServiceGateway>(net, gw.id(),
                                                              island);
      (void)box.vsg->start();
      auto adapter = std::make_unique<SyntheticAdapter>();
      box.adapter = adapter.get();
      for (std::size_t k = 0; k < services_per_island; ++k) {
        adapter->add_service(island + "-svc-" + std::to_string(k));
      }
      box.pcm = std::make_unique<core::Pcm>(net, *box.vsg, vsr->endpoint(),
                                            std::move(adapter));
      box.pcm->set_sync_mode(mode);
      islands.push_back(std::move(box));
    }
  }

  // One synchronization round: every PCM refreshes concurrently (what
  // MetaMiddleware::refresh_all does per round), drained to completion.
  Status refresh_round() {
    std::size_t remaining = islands.size();
    Status first_error;
    for (auto& box : islands) {
      box.pcm->refresh([&](const Status& s) {
        if (!s.is_ok() && first_error.is_ok()) first_error = s;
        --remaining;
      });
    }
    sim::run_until_done(sched, [&] { return remaining == 0; });
    return first_error;
  }
};

constexpr int kMeasuredRounds = 6;

struct RunResult {
  double latency_ms = 0;     // mean virtual-time latency per round
  double bytes_per_round = 0;  // mean backbone bytes per round
  std::uint64_t bodies_sent = 0;
  std::uint64_t bodies_elided = 0;
  std::uint64_t delta_syncs = 0;
  std::uint64_t full_syncs = 0;
};

RunResult run_config(std::size_t n_islands, std::size_t services,
                     std::size_t churn, core::Pcm::SyncMode mode) {
  Mesh mesh(n_islands, services, mode);
  // Converge: two rounds make every island see every other island's
  // initial publications (same convention as MetaMiddleware).
  (void)mesh.refresh_round();
  (void)mesh.refresh_round();

  std::vector<double> latency;
  std::vector<double> bytes;
  std::size_t next_svc = services;  // churned-in names keep counting up
  for (int round = 0; round < kMeasuredRounds; ++round) {
    // Churn on island 0: retire the oldest `churn` services, add as
    // many new ones (arrivals + departures, the paper's dynamism).
    auto& adapter = *mesh.islands[0].adapter;
    for (std::size_t c = 0; c < churn; ++c) {
      adapter.remove_service("island-0-svc-" +
                             std::to_string(next_svc - services + c));
      adapter.add_service("island-0-svc-" + std::to_string(next_svc + c));
    }
    next_svc += churn;

    const auto bytes0 = mesh.backbone->bytes_carried();
    const auto t0 = mesh.sched.now();
    (void)mesh.refresh_round();
    latency.push_back(bench::to_ms(mesh.sched.now() - t0));
    bytes.push_back(
        static_cast<double>(mesh.backbone->bytes_carried() - bytes0));
  }

  RunResult out;
  out.latency_ms = bench::stats_of(latency).mean;
  out.bytes_per_round = bench::stats_of(bytes).mean;
  out.bodies_sent = mesh.vsr->registry().wsdl_bodies_sent();
  out.bodies_elided = mesh.vsr->registry().wsdl_bodies_elided();
  out.delta_syncs = mesh.vsr->registry().delta_syncs();
  out.full_syncs = mesh.vsr->registry().full_syncs();
  return out;
}

const char* mode_name(core::Pcm::SyncMode m) {
  return m == core::Pcm::SyncMode::kDelta ? "delta" : "snapshot";
}

void sweep_report(const std::string& json_path) {
  bench::print_header(
      "VSR synchronization: snapshot vs delta refresh (islands x services x "
      "churn)");
  std::printf(
      "  steady-state rounds measured after convergence; churn = services\n"
      "  replaced on island-0 before each round\n\n");
  std::printf(
      "  mode      isl  svc/isl  churn   latency/round   backbone B/round\n");

  bench::JsonReport report("bench_ext_vsr_sync");
  const std::size_t island_counts[] = {2, 4};
  const std::size_t service_counts[] = {5, 20, 50};
  const std::size_t churn_counts[] = {0, 2};
  for (std::size_t islands : island_counts) {
    for (std::size_t services : service_counts) {
      for (std::size_t churn : churn_counts) {
        for (auto mode : {core::Pcm::SyncMode::kSnapshot,
                          core::Pcm::SyncMode::kDelta}) {
          RunResult r = run_config(islands, services, churn, mode);
          std::printf("  %-8s  %3zu  %7zu  %5zu  %11.2f ms  %14.0f\n",
                      mode_name(mode), islands, services, churn, r.latency_ms,
                      r.bytes_per_round);
          report.row()
              .str("mode", mode_name(mode))
              .num("islands", islands)
              .num("services_per_island", services)
              .num("churn", churn)
              .num("latency_ms", r.latency_ms)
              .num("backbone_bytes_per_round", r.bytes_per_round)
              .num("wsdl_bodies_sent", r.bodies_sent)
              .num("wsdl_bodies_elided", r.bodies_elided)
              .num("registry_delta_syncs", r.delta_syncs)
              .num("registry_full_syncs", r.full_syncs);
        }
      }
    }
  }

  // Headline numbers for the acceptance shape: zero-churn steady state
  // at growing S, snapshot vs delta.
  std::printf("\n  zero-churn scaling (4 islands):\n");
  std::printf("      S   snapshot ms    delta ms   speedup   snap B    delta B\n");
  for (std::size_t services : service_counts) {
    RunResult snap =
        run_config(4, services, 0, core::Pcm::SyncMode::kSnapshot);
    RunResult delta = run_config(4, services, 0, core::Pcm::SyncMode::kDelta);
    std::printf("    %3zu  %10.2f  %10.2f  %7.1fx  %8.0f  %8.0f\n", services,
                snap.latency_ms, delta.latency_ms,
                snap.latency_ms / delta.latency_ms, snap.bytes_per_round,
                delta.bytes_per_round);
    report.row()
        .str("mode", "headline")
        .num("islands", std::size_t{4})
        .num("services_per_island", services)
        .num("churn", std::size_t{0})
        .num("snapshot_latency_ms", snap.latency_ms)
        .num("delta_latency_ms", delta.latency_ms)
        .num("speedup", snap.latency_ms / delta.latency_ms)
        .num("snapshot_bytes_per_round", snap.bytes_per_round)
        .num("delta_bytes_per_round", delta.bytes_per_round);
  }
  std::printf(
      "\n  -> delta keeps steady-state refresh O(1) per island: bytes and\n"
      "     latency flat in S, while snapshot grows linearly with S.\n");

  if (!json_path.empty() && report.write(json_path)) {
    std::printf("  (json written to %s)\n", json_path.c_str());
  }
}

// CPU side: the digest each publish/cache-hit costs.
void BM_WsdlDigest(benchmark::State& state) {
  core::LocalService s;
  s.name = "svc";
  s.interface = device_interface();
  const std::string wsdl = soap::emit_wsdl(
      s.interface, s.name, Uri{"http", "host", 8080, "/vsg/svc"});
  for (auto _ : state) {
    auto d = soap::wsdl_digest(wsdl);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wsdl.size()));
}
BENCHMARK(BM_WsdlDigest);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_arg(argc, argv);
  // Strip --json <path> before handing argv to the benchmark library.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      ++i;  // skip the value too
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());

  sweep_report(json_path);
  benchmark::Initialize(&filtered_argc, args.data());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
