// Ablation — §3.1: "How the protocol should we choose depends on the
// purpose of service integration ... a simple protocol is enough to
// integrate simple services. We implement the prototype of our
// framework with SOAP." This bench swaps the VSG wire protocol between
// SOAP/XML-over-HTTP and the compact binary channel and measures what
// the choice costs: bytes on the backbone, call latency, and codec CPU.
//
// Expected shape: binary moves ~10x fewer bytes and parses ~10x faster,
// but end-to-end latency barely moves (device + network dominate) —
// which is why the paper could afford SOAP's interoperability.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "common/value_codec.hpp"
#include "soap/envelope.hpp"
#include "testbed/home.hpp"

using namespace hcm;

namespace {

struct ProtocolRun {
  double mean_latency_ms = 0;
  std::uint64_t backbone_bytes = 0;
  std::uint64_t backbone_frames = 0;
};

ProtocolRun run_mix(core::VsgProtocol protocol) {
  sim::Scheduler sched;
  testbed::SmartHomeOptions options;
  options.protocol = protocol;
  testbed::SmartHome home(sched, options);
  (void)home.refresh();

  const auto bytes_before = home.backbone->bytes_carried();
  const auto frames_before = home.backbone->frames_carried();

  constexpr int kCalls = 40;
  std::vector<double> latencies;
  for (int i = 0; i < kCalls; ++i) {
    sim::SimTime t0 = sched.now();
    std::optional<Result<Value>> r;
    // Alternate a cheap status query and a stateful command.
    if (i % 2 == 0) {
      home.jini_adapter->invoke("camera-1", "getStatus", {},
                                [&](Result<Value> v) { r = std::move(v); });
    } else {
      home.havi_adapter->invoke("laserdisc-1", "getStatus", {},
                                [&](Result<Value> v) { r = std::move(v); });
    }
    sim::run_until_done(sched, [&] { return r.has_value(); });
    if (r->is_ok()) latencies.push_back(bench::to_ms(sched.now() - t0));
  }

  ProtocolRun out;
  out.mean_latency_ms = bench::stats_of(latencies).mean;
  out.backbone_bytes = home.backbone->bytes_carried() - bytes_before;
  out.backbone_frames = home.backbone->frames_carried() - frames_before;
  return out;
}

void ablation_report() {
  bench::print_header(
      "Ablation  VSG wire protocol: SOAP/HTTP vs compact binary");

  auto soap_run = run_mix(core::VsgProtocol::kSoap);
  auto binary_run = run_mix(core::VsgProtocol::kBinary);

  std::printf("  protocol   mean call latency   backbone bytes (40 calls)\n");
  std::printf("  SOAP       %12.2f ms     %12llu\n", soap_run.mean_latency_ms,
              static_cast<unsigned long long>(soap_run.backbone_bytes));
  std::printf("  binary     %12.2f ms     %12llu\n",
              binary_run.mean_latency_ms,
              static_cast<unsigned long long>(binary_run.backbone_bytes));
  std::printf(
      "\n  SOAP costs %.1fx the bytes for %.1f%% extra latency — the\n"
      "  interoperability tax the paper accepts (\"simple protocol,\n"
      "  easy for implementation, existing infrastructure\").\n",
      static_cast<double>(soap_run.backbone_bytes) /
          static_cast<double>(binary_run.backbone_bytes ? binary_run.backbone_bytes : 1),
      100.0 * (soap_run.mean_latency_ms - binary_run.mean_latency_ms) /
          (binary_run.mean_latency_ms > 0 ? binary_run.mean_latency_ms : 1));

  // Per-message wire sizes for the same logical call.
  soap::NamedValues params{{"channel", Value(7)}};
  auto soap_wire = soap::build_call("urn:hcm:Tuner", "setChannel", params);
  auto binary_wire = encode_value(Value(ValueMap{
      {"id", Value(1)},
      {"svc", Value("tuner-1")},
      {"method", Value("setChannel")},
      {"args", Value(ValueList{Value(7)})},
  }));
  std::printf("\n  one setChannel(7) request: SOAP=%zu bytes, binary=%zu "
              "bytes (%.1fx)\n",
              soap_wire.size(), binary_wire.size(),
              static_cast<double>(soap_wire.size()) /
                  static_cast<double>(binary_wire.size()));
}

// Codec CPU: XML envelope vs binary value, same payload.
Value bench_payload() {
  return Value(ValueMap{
      {"title", Value("Evening News")},
      {"channel", Value(12)},
      {"minutes", Value(30)},
      {"tags", Value(ValueList{Value("news"), Value("live")})},
  });
}

void BM_SoapEncodeDecode(benchmark::State& state) {
  soap::NamedValues params{{"payload", bench_payload()}};
  for (auto _ : state) {
    auto wire = soap::build_call("urn:hcm:Svc", "put", params);
    auto env = soap::parse_envelope(wire);
    benchmark::DoNotOptimize(env);
  }
}
BENCHMARK(BM_SoapEncodeDecode);

void BM_BinaryEncodeDecode(benchmark::State& state) {
  Value payload = bench_payload();
  for (auto _ : state) {
    auto wire = encode_value(payload);
    auto decoded = decode_value(wire);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_BinaryEncodeDecode);

}  // namespace

int main(int argc, char** argv) {
  ablation_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
