// Observability overhead bench: wall-clock cost of the obs layer on the
// framework's hot path. Each arm drives the same cross-island call
// (HAVi adapter -> VSG -> SOAP -> Jini island) through a fresh
// SmartHome and measures real nanoseconds per completed invocation:
//
//   disabled     obs::set_enabled(false), tracing off — every counter
//                increment and histogram observe is a no-op branch.
//                This is the conservative proxy for HCM_OBS_COMPILED_OUT
//                (registry name lookups on the dispatch path remain, so
//                a compiled-out build can only be cheaper).
//   metrics      metrics on, tracing off — the process default.
//   full         metrics + tracing on, spans recorded per hop.
//
// Acceptance: metrics-vs-disabled overhead stays within 5%. Micro
// benchmarks for the individual primitives run under google-benchmark.
//
// --trace <path> additionally records one traced 3-island chain and
// writes the Chrome trace_event export there (CI's smoke check).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "obs/metrics.hpp"
#include "obs/slab.hpp"
#include "obs/trace.hpp"
#include "testbed/home.hpp"

using namespace hcm;

namespace {

// One synchronous-looking invocation: adapter -> VSG -> wire -> remote
// island and back, drained to completion on the sim scheduler.
void invoke_once(sim::Scheduler& sched, testbed::SmartHome& home) {
  std::optional<Result<Value>> result;
  home.havi_adapter->invoke("laserdisc-1", "getStatus", {},
                            [&](Result<Value> r) { result = std::move(r); });
  sim::run_until_done(sched, [&] { return result.has_value(); });
  if (!result.has_value() || !result->is_ok()) {
    std::fprintf(stderr, "bench: probe invocation failed\n");
    std::exit(1);
  }
}

// Wall-clock ns per invocation for one arm configuration; best of
// `reps` batches so scheduler noise from the host doesn't inflate an
// arm. Each rep uses a fresh home so no arm inherits warm caches or
// accumulated spans from another.
double measure_arm(bool metrics_on, bool tracing_on, std::size_t calls,
                   std::size_t reps) {
  double best = 0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    sim::Scheduler sched;
    testbed::SmartHome home(sched);
    if (!home.refresh().is_ok()) {
      std::fprintf(stderr, "bench: refresh failed\n");
      std::exit(1);
    }
    obs::set_enabled(metrics_on);
    obs::Tracer::global().set_enabled(tracing_on);
    invoke_once(sched, home);  // warm the proxy/dispatch path

    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < calls; ++i) invoke_once(sched, home);
    const auto t1 = std::chrono::steady_clock::now();

    obs::set_enabled(true);
    obs::Tracer::global().set_enabled(false);
    obs::Tracer::global().clear();
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()) /
        static_cast<double>(calls);
    if (rep == 0 || ns < best) best = ns;
  }
  return best;
}

void contention_report(bench::JsonReport& report);

void overhead_report(const std::string& json_path) {
  bench::print_header(
      "Observability overhead: instrumented vs disabled on the cross-island "
      "hot path");
  const std::size_t calls = 1500;
  const std::size_t reps = 3;
  const double disabled = measure_arm(false, false, calls, reps);
  const double metrics = measure_arm(true, false, calls, reps);
  const double full = measure_arm(true, true, calls, reps);
  const double metrics_pct = (metrics - disabled) / disabled * 100.0;
  const double full_pct = (full - disabled) / disabled * 100.0;

  std::printf("  arm        ns/call (best of %zu x %zu calls)\n", reps, calls);
  std::printf("  disabled   %10.0f\n", disabled);
  std::printf("  metrics    %10.0f   (%+.2f%%)\n", metrics, metrics_pct);
  std::printf("  full       %10.0f   (%+.2f%%)\n", full, full_pct);
  std::printf("  -> acceptance: metrics arm within 5%% of disabled\n");

  bench::JsonReport report("bench_ext_obs_overhead");
  report.row()
      .str("arm", "disabled")
      .num("ns_per_call", disabled)
      .num("calls", calls)
      .num("reps", reps);
  report.row()
      .str("arm", "metrics")
      .num("ns_per_call", metrics)
      .num("overhead_pct", metrics_pct);
  report.row()
      .str("arm", "full")
      .num("ns_per_call", full)
      .num("overhead_pct", full_pct);
  contention_report(report);
  if (!json_path.empty() && report.write(json_path)) {
    std::printf("  (json written to %s)\n", json_path.c_str());
  }
}

// --- sharded slab vs shared atomic contention ---------------------------
//
// The PR 9 question: when N kernel shards all mutate the same metric
// family, do per-shard slabs (each thread incrementing its own slab's
// counter, merged later at window barriers) beat N threads bouncing a
// single shared atomic's cache line? Handles are resolved before the
// clock starts in both arms — the lookup cost is BM_RegistryLookup's
// problem, this measures mutation only.
double measure_contention(std::size_t shards, bool use_slabs,
                          std::size_t ops_per_thread, std::size_t reps) {
  double best = 0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    obs::Registry shared;
    std::optional<obs::ShardSlabs> slabs;
    std::vector<obs::Counter*> handle(shards);
    if (use_slabs) {
      slabs.emplace(static_cast<std::uint32_t>(shards));
      for (std::size_t s = 0; s < shards; ++s) {
        handle[s] = &slabs->slab(static_cast<std::uint32_t>(s))
                         .counter("bench.contention");
      }
    } else {
      obs::Counter& c = shared.counter("bench.contention");
      for (std::size_t s = 0; s < shards; ++s) handle[s] = &c;
    }

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    workers.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      workers.emplace_back([c = handle[s], ops_per_thread] {
        for (std::size_t i = 0; i < ops_per_thread; ++i) c->inc();
      });
    }
    for (std::thread& w : workers) w.join();
    const auto t1 = std::chrono::steady_clock::now();

    // Fold the slabs the way a window barrier would, and make the total
    // observable so the increments cannot be optimized away.
    std::uint64_t total = 0;
    if (use_slabs) {
      obs::Registry merged;
      slabs->merge_into(merged);
      total = merged.counter("bench.contention").value();
    } else {
      total = shared.counter("bench.contention").value();
    }
    if (total < shards * ops_per_thread) {
      std::fprintf(stderr, "bench: contention arm lost increments\n");
      std::exit(1);
    }
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()) /
        static_cast<double>(shards * ops_per_thread);
    if (rep == 0 || ns < best) best = ns;
  }
  return best;
}

void contention_report(bench::JsonReport& report) {
  bench::print_header(
      "Sharded slabs vs one shared atomic: ns per counter increment");
  const std::size_t ops = 2'000'000;
  const std::size_t reps = 3;
  std::printf("  shards   shared-atomic   per-shard-slab\n");
  double shared4 = 0, slab4 = 0;
  for (std::size_t shards : {1u, 2u, 4u}) {
    const double shared = measure_contention(shards, false, ops, reps);
    const double slab = measure_contention(shards, true, ops, reps);
    std::printf("  %6zu   %10.2f ns   %11.2f ns\n", shards, shared, slab);
    report.row()
        .str("arm", "contention")
        .num("shards", static_cast<std::uint64_t>(shards))
        .num("shared_atomic_ns_per_inc", shared)
        .num("slab_ns_per_inc", slab);
    if (shards == 4) {
      shared4 = shared;
      slab4 = slab;
    }
  }
  std::printf("  -> acceptance: slab < shared at 4 shards (%.2fx)\n",
              slab4 > 0 ? shared4 / slab4 : 0.0);
}

// Records one traced chain across three islands and writes the Chrome
// export — the artifact ci/check.sh smoke-tests.
void trace_export(const std::string& path) {
  sim::Scheduler sched;
  testbed::SmartHome home(sched);
  if (!home.refresh().is_ok()) {
    std::fprintf(stderr, "bench: refresh failed\n");
    std::exit(1);
  }
  auto& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  const auto root = tracer.begin_span("bench.chain", "bench", sched.now());
  {
    obs::Tracer::Scope scope(tracer, tracer.context_of(root));
    invoke_once(sched, home);
    std::optional<Result<Value>> r;
    home.x10_adapter->invoke("camera-1", "startCapture", {},
                             [&](Result<Value> res) { r = std::move(res); });
    sim::run_until_done(sched, [&] { return r.has_value(); });
  }
  tracer.end_span(root, sched.now());
  if (!tracer.write_chrome(path)) {
    std::fprintf(stderr, "bench: cannot write trace to %s\n", path.c_str());
    std::exit(1);
  }
  std::printf("  (chrome trace with %zu spans written to %s)\n",
              tracer.span_count(), path.c_str());
  tracer.set_enabled(false);
  tracer.clear();
}

// --- primitive micro-costs under google-benchmark -----------------------

void BM_CounterInc(benchmark::State& state) {
  obs::Counter c;
  for (auto _ : state) c.inc();
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_CounterInc);

void BM_HistogramObserve(benchmark::State& state) {
  obs::Histogram h;
  std::int64_t v = 1;
  for (auto _ : state) {
    h.observe(v);
    v = v * 7 % 1000000 + 1;  // walk the buckets
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramObserve);

void BM_RegistryLookup(benchmark::State& state) {
  obs::Registry reg;
  reg.counter("vsg.island.op.lamp-1.turnOn.calls");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        reg.find_counter("vsg.island.op.lamp-1.turnOn.calls"));
  }
}
BENCHMARK(BM_RegistryLookup);

void BM_SpanBeginEnd(benchmark::State& state) {
  auto& tracer = obs::Tracer::global();
  tracer.set_enabled(true);
  for (auto _ : state) {
    auto id = tracer.begin_span("bench", "bench", 0);
    tracer.end_span(id, 1);
  }
  tracer.set_enabled(false);
  tracer.clear();
}
BENCHMARK(BM_SpanBeginEnd);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_arg(argc, argv);
  std::string trace_path;
  // Strip --json/--trace <path> before handing argv to the benchmark
  // library.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      ++i;
      continue;
    }
    if (std::string(argv[i]) == "--trace") {
      if (i + 1 < argc) trace_path = argv[i + 1];
      ++i;
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());

  overhead_report(json_path);
  if (!trace_path.empty()) trace_export(trace_path);
  benchmark::Initialize(&filtered_argc, args.data());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
