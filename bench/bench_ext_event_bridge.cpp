// Event-bridge extension bench: fan-out behaviour of the cross-island
// event bridge (core/event_router). One origin event source — the HAVi
// VCR's transportChanged — with N subscriber leases spread across the
// other islands; a burst of events is injected at the origin and the
// bridge's delivery latency, throughput and batching are measured as N
// grows.
//
// Expected shape: latency stays flat (one backbone hop + the 10 ms
// batch window, regardless of N) while total deliveries and backbone
// traffic grow linearly with N — the cost of fan-out is paid in
// bandwidth, not in per-subscriber latency, because each subscriber
// has its own bounded queue and batch timer.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.hpp"
#include "common/value_codec.hpp"
#include "core/event_router.hpp"
#include "testbed/home.hpp"

using namespace hcm;

namespace {

constexpr int kEvents = 24;
constexpr sim::Duration kEventSpacing = sim::milliseconds(25);

struct FanoutRun {
  bench::Stats latency;  // per-delivery, emit -> subscriber handler, ms
  std::uint64_t delivered = 0;
  std::uint64_t batches = 0;
  std::uint64_t dropped = 0;
  std::uint64_t backbone_bytes = 0;
  double deliveries_per_s = 0;  // virtual-time throughput over the burst
};

FanoutRun run_fanout(std::size_t subscribers) {
  sim::Scheduler sched;
  testbed::SmartHome home(sched);
  (void)home.refresh();

  // Subscriber leases round-robin across the non-origin islands, so
  // fan-out crosses several distinct VSG-to-VSG paths at once.
  const char* islands[] = {"jini-island", "x10-island", "mail-island"};

  std::map<std::int64_t, sim::SimTime> emitted;  // seq -> emit time
  std::vector<double> latency;
  sim::SimTime last_delivery = 0;

  std::size_t ready = 0;
  for (std::size_t i = 0; i < subscribers; ++i) {
    home.meta->island(islands[i % 3])
        ->events->subscribe(
            "vcr-1", "transportChanged",
            [&](const std::string&, const std::string&, const Value& payload) {
              const auto it = emitted.find(payload.at("seq").as_int());
              if (it == emitted.end()) return;
              latency.push_back(bench::to_ms(sched.now() - it->second));
              last_delivery = sched.now();
            },
            [&](Result<std::string> r) {
              if (r.is_ok()) ++ready;
            });
  }
  sim::run_until_done(sched, [&] { return ready == subscribers; });

  auto& origin = *home.meta->island("havi-island")->events;
  const auto bytes0 = home.backbone->bytes_carried();
  const sim::SimTime burst_start = sched.now();

  for (int i = 0; i < kEvents; ++i) {
    sched.after(kEventSpacing * i, [&, i] {
      emitted[i] = sched.now();
      origin.on_native_event(
          "vcr-1", "transportChanged",
          Value(ValueMap{{"seq", Value(std::int64_t{i})}}));
    });
  }

  // Bounded drain: run in slices until every delivery landed (or give
  // up after a generous window — drops would show in the counters).
  const std::size_t expected = kEvents * subscribers;
  for (int guard = 0; guard < 300 && latency.size() < expected; ++guard) {
    sched.run_for(sim::milliseconds(100));
  }

  FanoutRun out;
  out.latency = bench::stats_of(latency);
  out.delivered = origin.events_delivered() + [&] {
    std::uint64_t n = 0;
    for (const char* island : islands) {
      n += home.meta->island(island)->events->events_delivered();
    }
    return n;
  }();
  out.batches = origin.batches_sent();
  out.dropped = origin.events_dropped();
  out.backbone_bytes = home.backbone->bytes_carried() - bytes0;
  if (last_delivery > burst_start) {
    out.deliveries_per_s = static_cast<double>(latency.size()) /
                           (bench::to_ms(last_delivery - burst_start) / 1e3);
  }
  return out;
}

void fanout_report() {
  bench::print_header(
      "Event bridge  fan-out: one origin, N cross-island subscribers");
  std::printf("  %d events injected %.0f ms apart at the HAVi origin\n\n",
              kEvents, bench::to_ms(kEventSpacing));
  std::printf(
      "  subs   latency mean      p95    deliveries  del/s   batches  "
      "backbone B\n");
  for (std::size_t n : {1u, 2u, 4u, 8u, 16u}) {
    FanoutRun r = run_fanout(n);
    std::printf(
        "  %4zu  %9.1f ms %8.1f ms  %6zu      %6.0f  %7llu  %9llu\n", n,
        r.latency.mean, r.latency.p95, r.latency.n, r.deliveries_per_s,
        static_cast<unsigned long long>(r.batches),
        static_cast<unsigned long long>(r.backbone_bytes));
    if (r.dropped > 0) {
      std::printf("        (%llu dropped by backpressure)\n",
                  static_cast<unsigned long long>(r.dropped));
    }
  }
  std::printf(
      "\n  -> per-delivery latency is flat in N; traffic and throughput\n"
      "     scale linearly — fan-out costs bandwidth, not latency.\n");
}

// CPU side: encoding/decoding one deliver() batch payload, the codec
// work each batch costs a gateway.
void BM_EventBatchCodec(benchmark::State& state) {
  ValueList batch;
  for (int i = 0; i < 16; ++i) {
    batch.push_back(Value(ValueMap{
        {"seq", Value(std::int64_t{i})},
        {"service", Value(std::string("vcr-1"))},
        {"event", Value(std::string("transportChanged"))},
        {"payload", Value(ValueMap{{"state", Value(std::string("playing"))}})},
    }));
  }
  Value v{batch};
  for (auto _ : state) {
    auto bytes = encode_value(v);
    auto back = decode_value(bytes);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_EventBatchCodec);

}  // namespace

int main(int argc, char** argv) {
  fanout_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
