// Shared helpers for the figure-reproduction benches: simple statistics
// over virtual-time samples and table printing.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"

namespace hcm::bench {

struct Stats {
  double min = 0, mean = 0, p50 = 0, p95 = 0, max = 0;
  std::size_t n = 0;
};

inline Stats stats_of(std::vector<double> samples) {
  Stats s;
  s.n = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  double sum = 0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  s.p50 = samples[samples.size() / 2];
  s.p95 = samples[samples.size() * 95 / 100];
  return s;
}

// Virtual-time durations in milliseconds.
inline double to_ms(sim::Duration d) { return static_cast<double>(d) / 1e3; }

inline void print_header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

inline void print_row_ms(const std::string& label, const Stats& s) {
  std::printf("  %-34s n=%-4zu min=%9.2f ms  mean=%9.2f ms  p95=%9.2f ms\n",
              label.c_str(), s.n, s.min, s.mean, s.p95);
}

}  // namespace hcm::bench
