// Shared helpers for the figure-reproduction benches: simple statistics
// over virtual-time samples, table printing, and a machine-readable
// JSON report (--json <path>) so CI can archive bench results.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "sim/scheduler.hpp"

namespace hcm::bench {

struct Stats {
  double min = 0, mean = 0, p50 = 0, p95 = 0, max = 0;
  std::size_t n = 0;
};

inline Stats stats_of(std::vector<double> samples) {
  Stats s;
  s.n = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  double sum = 0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  s.p50 = samples[samples.size() / 2];
  s.p95 = samples[samples.size() * 95 / 100];
  return s;
}

// Virtual-time durations in milliseconds.
inline double to_ms(sim::Duration d) { return static_cast<double>(d) / 1e3; }

inline void print_header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

inline void print_row_ms(const std::string& label, const Stats& s) {
  std::printf("  %-34s n=%-4zu min=%9.2f ms  mean=%9.2f ms  p95=%9.2f ms\n",
              label.c_str(), s.n, s.min, s.mean, s.p95);
}

// Flat-row JSON report: {"bench": <name>, "rows": [{k: v, ...}, ...]}.
// Rows keep insertion order; values are numbers or strings. Kept
// dependency-free on purpose (the image has no JSON library).
class JsonReport {
 public:
  explicit JsonReport(std::string bench) : bench_(std::move(bench)) {}

  class Row {
   public:
    Row& num(const std::string& key, double v) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.6g", v);
      fields_.emplace_back(key, buf);
      return *this;
    }
    Row& num(const std::string& key, std::uint64_t v) {
      fields_.emplace_back(key, std::to_string(v));
      return *this;
    }
    Row& str(const std::string& key, const std::string& v) {
      std::string enc;
      enc += '"';
      enc += escape(v);
      enc += '"';
      fields_.emplace_back(key, std::move(enc));
      return *this;
    }

   private:
    friend class JsonReport;
    // key -> already-JSON-encoded value
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  Row& row() {
    rows_.emplace_back();
    return rows_.back();
  }

  // Writes the report; returns false (after a warning) on I/O failure
  // so benches keep printing their tables even with a bad --json path.
  // With append=true the report object is added as a new line instead
  // of clobbering the file, so several benches (or repeated runs) can
  // share one artifact as JSON-lines.
  bool write(const std::string& path, bool append = false) const {
    std::FILE* f = std::fopen(path.c_str(), append ? "a" : "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\"bench\": \"%s\", \"rows\": [", escape(bench_).c_str());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "%s\n  {", i == 0 ? "" : ",");
      const auto& fields = rows_[i].fields_;
      for (std::size_t j = 0; j < fields.size(); ++j) {
        std::fprintf(f, "%s\"%s\": %s", j == 0 ? "" : ", ",
                     escape(fields[j].first).c_str(), fields[j].second.c_str());
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
    return true;
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    for (char raw : s) {
      switch (raw) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(raw) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(raw) & 0xff);
            out += buf;
          } else {
            out.push_back(raw);
          }
      }
    }
    return out;
  }

  std::string bench_;
  std::vector<Row> rows_;
};

// The path following a "--json" argument, or "" when absent.
inline std::string json_path_arg(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  }
  return "";
}

// --- allocation counting ------------------------------------------------
// Heap-traffic meter for the allocations/call columns: inline counters
// shared by every TU, bumped by replacement operator new/delete that a
// bench opts into with `#define HCM_BENCH_ALLOC_HOOK` before including
// this header. Replacement allocation functions must not be inline and
// must exist exactly once per binary, so the hook must be enabled in
// exactly one TU. Without the hook the counters simply stay at zero
// (alloc_hook_installed() tells the two cases apart).
inline std::atomic<std::uint64_t> g_alloc_count{0};
inline std::atomic<std::uint64_t> g_alloc_bytes{0};
inline std::atomic<bool> g_alloc_hook_installed{false};

inline std::uint64_t alloc_count() {
  return g_alloc_count.load(std::memory_order_relaxed);
}
inline std::uint64_t alloc_bytes() {
  return g_alloc_bytes.load(std::memory_order_relaxed);
}
inline bool alloc_hook_installed() {
  return g_alloc_hook_installed.load(std::memory_order_relaxed);
}

// Scoped delta: allocations and bytes requested since construction.
class AllocDelta {
 public:
  AllocDelta() : count0_(alloc_count()), bytes0_(alloc_bytes()) {}
  [[nodiscard]] std::uint64_t allocs() const {
    return alloc_count() - count0_;
  }
  [[nodiscard]] std::uint64_t bytes() const { return alloc_bytes() - bytes0_; }

 private:
  std::uint64_t count0_;
  std::uint64_t bytes0_;
};

}  // namespace hcm::bench

#ifdef HCM_BENCH_ALLOC_HOOK
// Counting replacements for the throwing global allocation functions.
// Alignment-aware overloads are intentionally not replaced; nothing on
// the measured paths over-aligns, and unreplaced overloads fall back to
// the default implementation.
namespace hcm::bench::detail {
inline void* counted_alloc(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  g_alloc_hook_installed.store(true, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}
}  // namespace hcm::bench::detail

void* operator new(std::size_t n) { return hcm::bench::detail::counted_alloc(n); }
void* operator new[](std::size_t n) {
  return hcm::bench::detail::counted_alloc(n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif  // HCM_BENCH_ALLOC_HOOK
