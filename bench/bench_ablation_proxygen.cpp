// Ablation — automatic proxy generation (the paper's Javassist use):
// "Automatically we can generate a proxy object, such as client proxy
// and server proxy, for certain service using the interface of that
// service." This bench measures what the automation costs at runtime:
// a generated server proxy's call overhead versus calling the handler
// directly, and generation throughput (how many services a refresh can
// absorb).
//
// Expected shape: generation is microseconds per proxy and the
// generated indirection adds no measurable per-call CPU next to the
// wire protocol, i.e. automation is free — hand-written glue buys
// nothing but maintenance burden.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/proxygen.hpp"
#include "testbed/home.hpp"

using namespace hcm;

namespace {

InterfaceDesc iface_with(int methods) {
  InterfaceDesc iface{"I" + std::to_string(methods), {}};
  for (int i = 0; i < methods; ++i) {
    iface.methods.push_back(MethodDesc{"m" + std::to_string(i),
                                       {{"x", ValueType::kInt}},
                                       ValueType::kInt,
                                       false});
  }
  return iface;
}

void proxygen_report() {
  bench::print_header(
      "Ablation  automatic proxy generation vs hand-written glue");

  // End-to-end: virtual time for one generated-SP call vs the same
  // target reached through a hand-written forwarding lambda.
  sim::Scheduler sched;
  testbed::SmartHome home(sched);
  (void)home.refresh();

  constexpr int kCalls = 25;
  std::vector<double> generated, handwritten;
  // Generated SP: the jini island's imported camera-1 proxy.
  for (int i = 0; i < kCalls; ++i) {
    sim::SimTime t0 = sched.now();
    std::optional<Result<Value>> r;
    home.jini_adapter->invoke("camera-1", "getStatus", {},
                              [&](Result<Value> v) { r = std::move(v); });
    sim::run_until_done(sched, [&] { return r.has_value(); });
    if (r->is_ok()) generated.push_back(bench::to_ms(sched.now() - t0));
  }
  // Hand-written bridge: bespoke lambda doing exactly what the SP does.
  auto* jini_island = home.meta->island("jini-island");
  auto* havi_island = home.meta->island("havi-island");
  auto camera_uri = havi_island->vsg->exposure_uri("camera-1");
  InterfaceDesc camera_iface = havi::DvCameraFcm::describe_interface();
  auto hand_bridge = [&](const std::string& method, const ValueList& args,
                         InvokeResultFn done) {
    jini_island->vsg->call_remote(camera_uri, "camera-1", camera_iface,
                                  method, args, std::move(done));
  };
  for (int i = 0; i < kCalls; ++i) {
    sim::SimTime t0 = sched.now();
    std::optional<Result<Value>> r;
    hand_bridge("getStatus", {}, [&](Result<Value> v) { r = std::move(v); });
    sim::run_until_done(sched, [&] { return r.has_value(); });
    if (r->is_ok()) handwritten.push_back(bench::to_ms(sched.now() - t0));
  }
  bench::print_row_ms("generated server proxy", bench::stats_of(generated));
  bench::print_row_ms("hand-written bridge lambda",
                      bench::stats_of(handwritten));
  std::printf(
      "  -> identical within noise: generation costs nothing per call,\n"
      "     and removes the O(services x middleware) glue the paper's\n"
      "     related-work bridges had to write by hand.\n");
}

// Generation throughput vs interface width.
void BM_ServerProxyGeneration(benchmark::State& state) {
  sim::Scheduler sched;
  net::Network net(sched);
  auto& gw = net.add_node("gw");
  auto& eth = net.add_ethernet("lan", sim::microseconds(200), 100'000'000);
  net.attach(gw, eth);
  core::VirtualServiceGateway vsg(net, gw.id(), "island");
  (void)vsg.start();
  core::ProxyGenerator gen(vsg);
  soap::WsdlDocument remote;
  remote.interface = iface_with(static_cast<int>(state.range(0)));
  remote.service_name = "svc";
  remote.endpoint = Uri{"http", "gw", 8080, "/vsg/svc"};
  for (auto _ : state) {
    auto handler = gen.generate_server_proxy(remote);
    benchmark::DoNotOptimize(handler);
  }
}
BENCHMARK(BM_ServerProxyGeneration)->Arg(2)->Arg(8)->Arg(32);

// The per-call CPU overhead of the generated indirection itself
// (handler std::function hop), isolated from any networking.
void BM_GeneratedIndirectionOverhead(benchmark::State& state) {
  ServiceHandler target = [](const std::string&, const ValueList&,
                             InvokeResultFn done) { done(Value(1)); };
  ServiceHandler generated = [target](const std::string& m,
                                      const ValueList& a,
                                      InvokeResultFn done) {
    target(m, a, std::move(done));
  };
  ValueList args{Value(1)};
  for (auto _ : state) {
    std::int64_t out = 0;
    generated("m0", args, [&](Result<Value> r) { out = r.value().as_int(); });
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_GeneratedIndirectionOverhead);

void BM_DirectHandlerCall(benchmark::State& state) {
  ServiceHandler target = [](const std::string&, const ValueList&,
                             InvokeResultFn done) { done(Value(1)); };
  ValueList args{Value(1)};
  for (auto _ : state) {
    std::int64_t out = 0;
    target("m0", args, [&](Result<Value> r) { out = r.value().as_int(); });
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_DirectHandlerCall);

}  // namespace

int main(int argc, char** argv) {
  proxygen_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
