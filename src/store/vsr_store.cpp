#include "store/vsr_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>

#include "store/delta.hpp"

namespace hcm::store {

namespace fs = std::filesystem;

namespace {

// Durability of a rename (pack publication, log checkpoint swap)
// requires the directory entry itself to reach disk.
Status fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return internal_error("open dir " + dir + ": " + std::strerror(errno));
  }
  if (::fsync(fd) != 0) {
    const Status st =
        internal_error("fsync dir " + dir + ": " + std::strerror(errno));
    ::close(fd);
    return st;
  }
  ::close(fd);
  return Status::ok();
}

// Pack file names in a directory, ascending (pack numbers are
// zero-padded, so lexicographic = numeric order).
std::vector<std::string> pack_files(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(dir, ec)) {
    const std::string name = e.path().filename().string();
    if (name.rfind("pack-", 0) == 0 && name.size() > 10 &&
        name.compare(name.size() - 5, 5, ".pack") == 0) {
      out.push_back(e.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// A delta smaller than 3/4 of the full body pays for its chain-walk
// cost; otherwise store the revision whole.
bool delta_worthwhile(std::size_t delta_size, std::size_t full_size) {
  return delta_size * 4 < full_size * 3;
}

}  // namespace

void LogMirror::apply(const Record& r) {
  switch (r.type) {
    case RecordType::kEpoch:
      epoch = r.epoch.epoch;
      fresh = false;
      break;
    case RecordType::kBody:
      if (bodies.emplace(r.body.digest, r.body.body).second) {
        body_order.push_back(r.body.digest);
      }
      break;
    case RecordType::kUpsert: {
      auto it = entries.find(r.upsert.name);
      if (it != entries.end() && it->second.digest != r.upsert.digest) {
        // Remember the prior revision of this service: pack compaction
        // delta-encodes the new body against it.
        delta_hint.emplace(r.upsert.digest, it->second.digest);
      }
      entries[r.upsert.name] = r.upsert;
      seq = std::max(seq, r.upsert.seq);
      journal.push_back(
          JournalEntry{r.upsert.seq, false, r.upsert.name, r.upsert.digest});
      break;
    }
    case RecordType::kRemove:
      entries.erase(r.remove.name);
      seq = std::max(seq, r.remove.seq);
      journal.push_back(
          JournalEntry{r.remove.seq, true, r.remove.name, r.remove.digest});
      break;
    case RecordType::kTouch: {
      auto it = entries.find(r.touch.name);
      if (it != entries.end()) it->second.expires_at = r.touch.expires_at;
      break;
    }
    case RecordType::kCheckpoint:
      fresh = false;
      epoch = r.checkpoint.epoch;
      seq = r.checkpoint.seq;
      compacted_through = r.checkpoint.compacted_through;
      entries.clear();
      for (const UpsertRecord& e : r.checkpoint.entries) {
        entries[e.name] = e;
      }
      journal.assign(r.checkpoint.journal.begin(),
                     r.checkpoint.journal.end());
      break;
  }
  while (journal.size() > journal_capacity) {
    compacted_through = journal.front().seq;
    journal.pop_front();
  }
}

Status VsrStore::open() {
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) {
    return internal_error("create store dir " + options_.dir + ": " +
                          ec.message());
  }

  packs_.clear();
  next_pack_ = 1;
  for (const std::string& path : pack_files(options_.dir)) {
    auto reader = std::make_unique<PackReader>();
    Status st = reader->open(path);
    if (!st.is_ok()) return st;  // a corrupt pack is an fsck matter
    packs_.push_back(std::move(reader));
    ++next_pack_;
  }

  mirror_ = LogMirror{};
  mirror_.journal_capacity = options_.journal_capacity;
  Status st = log_.open(options_.dir + "/log", options_.fsync);
  if (!st.is_ok()) return st;
  bool lost = log_.lost_tail();
  const auto& payloads = log_.recovered();
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    auto decoded = decode_record(payloads[i]);
    if (!decoded.is_ok()) {
      // CRC-clean frame whose payload no longer decodes: treat exactly
      // like a torn tail — drop it and everything after it.
      Status trunc = log_.truncate_recovered(i);
      if (!trunc.is_ok()) return trunc;
      lost = true;
      break;
    }
    mirror_.apply(decoded.value());
  }

  recovered_ = RecoveredState{};
  recovered_.fresh = mirror_.fresh;
  recovered_.lost_tail = lost;
  recovered_.epoch = mirror_.epoch;
  recovered_.last_seq = mirror_.seq;
  recovered_.compacted_through = mirror_.compacted_through;
  for (const auto& [name, e] : mirror_.entries) {
    recovered_.entries.push_back(e);
  }
  recovered_.journal.assign(mirror_.journal.begin(), mirror_.journal.end());
  return Status::ok();
}

Result<std::string> VsrStore::body_for(const std::string& digest) const {
  auto it = mirror_.bodies.find(digest);
  if (it != mirror_.bodies.end()) return it->second;
  return pack_body_for(digest);
}

Result<std::string> VsrStore::pack_body_for(const std::string& digest) const {
  // Newest pack first; delta chains resolve recursively (bases always
  // live in the same or an older pack).
  for (auto pack = packs_.rbegin(); pack != packs_.rend(); ++pack) {
    if (!(*pack)->contains(digest)) continue;
    auto entry = (*pack)->read(digest);
    if (!entry.is_ok()) return entry.status();
    if (entry.value().base_digest.empty()) return entry.value().data;
    auto base = pack_body_for(entry.value().base_digest);
    if (!base.is_ok()) return base.status();
    return delta_apply(base.value(), entry.value().data);
  }
  return not_found("store holds no body for digest " + digest);
}

int VsrStore::chain_depth(const std::string& digest) const {
  int depth = 0;
  std::string cur = digest;
  while (depth <= options_.max_delta_chain) {
    const PackReader* holder = nullptr;
    for (auto pack = packs_.rbegin(); pack != packs_.rend(); ++pack) {
      if ((*pack)->contains(cur)) {
        holder = pack->get();
        break;
      }
    }
    if (holder == nullptr) return depth;
    auto entry = holder->read(cur);
    if (!entry.is_ok() || entry.value().base_digest.empty()) return depth;
    cur = entry.value().base_digest;
    ++depth;
  }
  return depth;
}

void VsrStore::record_epoch(std::uint64_t epoch) {
  Record r;
  r.type = RecordType::kEpoch;
  r.epoch.epoch = epoch;
  stage(r);
}

void VsrStore::record_upsert(const UpsertRecord& rec,
                             const std::string& body) {
  // One body per digest, ever: re-publishing known content (a digest
  // already in the log or any pack) costs no body bytes.
  if (mirror_.bodies.count(rec.digest) == 0) {
    bool packed = false;
    for (const auto& pack : packs_) {
      if (pack->contains(rec.digest)) {
        packed = true;
        break;
      }
    }
    if (!packed) {
      Record b;
      b.type = RecordType::kBody;
      b.body.digest = rec.digest;
      b.body.body = body;
      stage(b);
    }
  }
  Record r;
  r.type = RecordType::kUpsert;
  r.upsert = rec;
  stage(r);
}

void VsrStore::record_remove(const RemoveRecord& rec) {
  Record r;
  r.type = RecordType::kRemove;
  r.remove = rec;
  stage(r);
}

void VsrStore::record_touch(const std::string& name,
                            std::int64_t expires_at) {
  Record r;
  r.type = RecordType::kTouch;
  r.touch.name = name;
  r.touch.expires_at = expires_at;
  stage(r);
}

void VsrStore::stage(const Record& r) {
  log_.append(encode_record(r));
  mirror_.apply(r);
}

Status VsrStore::commit() {
  Status st = log_.commit();
  if (!st.is_ok()) return st;
  if (log_.size_bytes() > options_.compact_threshold_bytes) return compact();
  return Status::ok();
}

std::string VsrStore::pack_path(std::uint64_t n) const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "pack-%06llu.pack",
                static_cast<unsigned long long>(n));
  return options_.dir + "/" + buf;
}

Status VsrStore::compact() {
  Status st = log_.commit();  // staged records must precede the roll
  if (!st.is_ok()) return st;

  if (!mirror_.body_order.empty()) {
    PackWriter writer;
    for (const std::string& digest : mirror_.body_order) {
      const std::string& body = mirror_.bodies[digest];
      bool wrote_delta = false;
      auto hint = mirror_.delta_hint.find(digest);
      if (hint != mirror_.delta_hint.end()) {
        // Base body: earlier revision in this same batch, or any pack.
        const std::string* base = nullptr;
        std::string packed_base;
        auto in_log = mirror_.bodies.find(hint->second);
        if (in_log != mirror_.bodies.end()) {
          base = &in_log->second;
        } else {
          auto from_pack = pack_body_for(hint->second);
          if (from_pack.is_ok()) {
            packed_base = std::move(from_pack).take();
            base = &packed_base;
          }
        }
        if (base != nullptr &&
            chain_depth(hint->second) < options_.max_delta_chain) {
          const std::string delta = delta_encode(*base, body);
          if (delta_worthwhile(delta.size(), body.size())) {
            writer.add_delta(digest, hint->second, delta);
            wrote_delta = true;
          }
        }
      }
      if (!wrote_delta) writer.add_full(digest, body);
    }
    const std::string tmp = options_.dir + "/pack.tmp";
    st = writer.write(tmp);
    if (!st.is_ok()) return st;
    const std::string final_path = pack_path(next_pack_);
    std::error_code ec;
    fs::rename(tmp, final_path, ec);
    if (ec) {
      return internal_error("rename pack into place: " + ec.message());
    }
    st = fsync_dir(options_.dir);
    if (!st.is_ok()) return st;
    auto reader = std::make_unique<PackReader>();
    st = reader->open(final_path);
    if (!st.is_ok()) return st;
    packs_.push_back(std::move(reader));
    ++next_pack_;
  }

  st = rewrite_log_checkpoint();
  if (!st.is_ok()) return st;
  mirror_.bodies.clear();
  mirror_.body_order.clear();
  mirror_.delta_hint.clear();
  ++compactions_;
  return Status::ok();
}

Status VsrStore::rewrite_log_checkpoint() {
  // Replace the log with [epoch][checkpoint] describing the live state;
  // bodies now live in packs. tmp + rename keeps a crash at any point
  // recoverable: either the old log or the new one is intact.
  Record epoch;
  epoch.type = RecordType::kEpoch;
  epoch.epoch.epoch = mirror_.epoch;
  Record cp;
  cp.type = RecordType::kCheckpoint;
  cp.checkpoint.epoch = mirror_.epoch;
  cp.checkpoint.seq = mirror_.seq;
  cp.checkpoint.compacted_through = mirror_.compacted_through;
  for (const auto& [name, e] : mirror_.entries) {
    cp.checkpoint.entries.push_back(e);
  }
  cp.checkpoint.journal.assign(mirror_.journal.begin(),
                               mirror_.journal.end());

  const std::string tmp = options_.dir + "/log.tmp";
  std::error_code ec;
  fs::remove(tmp, ec);
  {
    RecordLog fresh;
    Status st = fresh.open(tmp, options_.fsync);
    if (!st.is_ok()) return st;
    fresh.append(encode_record(epoch));
    fresh.append(encode_record(cp));
    st = fresh.commit();
    if (!st.is_ok()) return st;
  }
  log_.close();
  fs::rename(tmp, options_.dir + "/log", ec);
  if (ec) {
    return internal_error("rename checkpointed log into place: " +
                          ec.message());
  }
  Status st = fsync_dir(options_.dir);
  if (!st.is_ok()) return st;
  // Reopen; the mirror already holds this state, so replay feeds it the
  // same values it has (apply is idempotent for checkpoint+epoch).
  return log_.open(options_.dir + "/log", options_.fsync);
}

std::uint64_t VsrStore::pack_bytes() const {
  std::uint64_t total = 0;
  for (const auto& pack : packs_) total += pack->size_bytes();
  return total;
}

// --- fsck ---------------------------------------------------------------

VsrStore::FsckReport VsrStore::fsck(const std::string& dir) {
  FsckReport report;
  auto fail = [&report](std::string msg) {
    report.ok = false;
    report.errors.push_back(std::move(msg));
  };

  // Packs: structural open (magic, footer, index crc, sort order), then
  // every entry must decode, materialize through its delta chain, and
  // hash back to its own digest.
  std::vector<std::unique_ptr<PackReader>> packs;
  for (const std::string& path : pack_files(dir)) {
    auto reader = std::make_unique<PackReader>();
    Status st = reader->open(path);
    if (!st.is_ok()) {
      fail(st.message());
      continue;
    }
    packs.push_back(std::move(reader));
  }
  report.packs = packs.size();

  // Materializer over the verified pack set (newest first).
  std::function<Result<std::string>(const std::string&, int)> materialize =
      [&](const std::string& digest, int depth) -> Result<std::string> {
    if (depth > 64) {
      return protocol_error("delta chain for " + digest +
                            " exceeds depth 64 (cycle?)");
    }
    for (auto pack = packs.rbegin(); pack != packs.rend(); ++pack) {
      if (!(*pack)->contains(digest)) continue;
      auto entry = (*pack)->read(digest);
      if (!entry.is_ok()) return entry.status();
      if (entry.value().base_digest.empty()) return entry.value().data;
      auto base = materialize(entry.value().base_digest, depth + 1);
      if (!base.is_ok()) return base.status();
      return delta_apply(base.value(), entry.value().data);
    }
    return not_found("no pack holds digest " + digest);
  };

  for (const auto& pack : packs) {
    for (const std::string& digest : pack->digests()) {
      ++report.pack_entries;
      auto body = materialize(digest, 0);
      if (!body.is_ok()) {
        fail("pack entry " + digest + ": " + body.status().message());
        continue;
      }
      if (content_digest(body.value()) != digest) {
        fail("pack entry " + digest +
             ": materialized body hashes to a different digest (bit rot "
             "inside a delta chain)");
        continue;
      }
      ++report.bodies_verified;
    }
  }

  // Log: every frame must pass crc + hash chain; every payload must
  // decode; the replayed live set must resolve every digest to a body
  // that hashes back to it.
  auto scanned = RecordLog::scan_file(dir + "/log");
  if (!scanned.is_ok()) {
    fail(scanned.status().message());
    return report;
  }
  const RecordLog::Scan& scan = scanned.value();
  if (!scan.clean) {
    fail("log: " + scan.tail_error + " (" +
         std::to_string(scan.file_bytes - scan.valid_bytes) +
         " trailing bytes unrecoverable; a store-backed registry restart "
         "truncates them and bumps the epoch)");
  }
  report.log_records = scan.frames.size();

  LogMirror mirror;
  std::uint64_t prev_journal_seq = 0;
  for (const RecordLog::Frame& f : scan.frames) {
    auto decoded = decode_record(f.payload);
    if (!decoded.is_ok()) {
      fail("log record at offset " + std::to_string(f.offset) + ": " +
           decoded.status().message());
      continue;
    }
    mirror.apply(decoded.value());
  }
  for (const JournalEntry& j : mirror.journal) {
    if (j.seq <= prev_journal_seq) {
      fail("journal sequence not strictly ascending at seq " +
           std::to_string(j.seq));
    }
    prev_journal_seq = j.seq;
  }
  for (const auto& [name, entry] : mirror.entries) {
    auto in_log = mirror.bodies.find(entry.digest);
    std::string body;
    if (in_log != mirror.bodies.end()) {
      body = in_log->second;
    } else {
      auto packed = materialize(entry.digest, 0);
      if (!packed.is_ok()) {
        fail("live entry '" + name + "': " + packed.status().message());
        continue;
      }
      body = std::move(packed).take();
    }
    if (content_digest(body) != entry.digest) {
      fail("live entry '" + name + "': body does not hash to its digest");
    }
  }
  return report;
}

// --- stats --------------------------------------------------------------

Result<VsrStore::StatsReport> VsrStore::stats(const std::string& dir) {
  StatsReport report;

  auto scanned = RecordLog::scan_file(dir + "/log");
  if (!scanned.is_ok()) return scanned.status();
  const RecordLog::Scan& scan = scanned.value();
  report.log_bytes = scan.file_bytes;
  report.log_records = scan.frames.size();

  LogMirror mirror;
  for (const RecordLog::Frame& f : scan.frames) {
    auto decoded = decode_record(f.payload);
    if (!decoded.is_ok()) return decoded.status();
    ++report.records_by_type[record_type_name(decoded.value().type)];
    mirror.apply(decoded.value());
  }
  report.live_entries = mirror.entries.size();
  report.epoch = mirror.epoch;
  report.last_seq = mirror.seq;

  std::vector<std::unique_ptr<PackReader>> packs;
  for (const std::string& path : pack_files(dir)) {
    auto reader = std::make_unique<PackReader>();
    Status st = reader->open(path);
    if (!st.is_ok()) return st;
    report.pack_bytes += reader->size_bytes();
    packs.push_back(std::move(reader));
  }
  report.packs = packs.size();

  std::function<Result<std::string>(const std::string&)> materialize =
      [&](const std::string& digest) -> Result<std::string> {
    for (auto pack = packs.rbegin(); pack != packs.rend(); ++pack) {
      if (!(*pack)->contains(digest)) continue;
      auto entry = (*pack)->read(digest);
      if (!entry.is_ok()) return entry.status();
      if (entry.value().base_digest.empty()) return entry.value().data;
      auto base = materialize(entry.value().base_digest);
      if (!base.is_ok()) return base.status();
      return delta_apply(base.value(), entry.value().data);
    }
    return not_found("no pack holds digest " + digest);
  };
  for (const auto& pack : packs) {
    for (const std::string& digest : pack->digests()) {
      auto entry = pack->read(digest);
      if (!entry.is_ok()) return entry.status();
      ++report.pack_entries;
      if (!entry.value().base_digest.empty()) ++report.delta_entries;
      report.stored_body_bytes += entry.value().data.size();
      auto body = materialize(digest);
      if (!body.is_ok()) return body.status();
      report.expanded_body_bytes += body.value().size();
    }
  }
  return report;
}

}  // namespace hcm::store
