// Append-only hash-chained record log — the durability spine of the
// VSR store (docs/PERSISTENCE.md §"Log format").
//
// Frame layout (little-endian):
//   [u32 payload_len][u32 crc32(payload)][u64 chain][payload bytes]
// where chain = fnv1a64(previous frame's chain, payload); the first
// frame chains from kChainGenesis. The chain makes record order and
// content tamper-evident end to end: flipping any synced byte breaks
// every later frame, which `hcm_store fsck` reports.
//
// Durability is fsync-batched group commit: append() only stages bytes;
// commit() hands the whole batch to the OS with one write + one fsync,
// so a handler that journals several records (a prune's expiries plus
// an upsert, say) pays one disk round trip. Replay at open() verifies
// every frame and truncates the file at the first torn or corrupt one —
// a kill -9 mid-write costs at most the uncommitted tail, never a
// wedged store.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace hcm::store {

class RecordLog {
 public:
  enum class FsyncPolicy {
    kNone,    // no fsync (tests/benches where durability is not measured)
    kCommit,  // fsync once per commit() batch
  };

  RecordLog() = default;
  ~RecordLog();
  RecordLog(const RecordLog&) = delete;
  RecordLog& operator=(const RecordLog&) = delete;

  // One verified frame of an existing log file.
  struct Frame {
    std::string payload;
    std::uint64_t offset = 0;  // file offset of the frame header
  };

  // Result of a read-only walk of a log file. `valid_bytes` is the
  // offset just past the last intact frame; anything beyond it is torn
  // or corrupt (`tail_error` says how it failed).
  struct Scan {
    std::vector<Frame> frames;
    std::uint64_t valid_bytes = 0;
    std::uint64_t file_bytes = 0;
    std::uint64_t chain = 0;  // chain value after the last intact frame
    bool clean = true;        // false when trailing bytes were not a frame
    std::string tail_error;
  };

  // Verifies `path` without modifying it (fsck, stats). A missing file
  // scans as empty-and-clean.
  [[nodiscard]] static Result<Scan> scan_file(const std::string& path);

  // Opens (creating if absent) and replays the log. Verified payloads
  // are exposed via recovered(); a torn or corrupt tail is truncated
  // away and lost_tail() reports that records were dropped. Reopening
  // after close() is allowed (compaction swaps the file underneath).
  [[nodiscard]] Status open(const std::string& path, FsyncPolicy policy);
  void close();

  [[nodiscard]] const std::vector<std::string>& recovered() const {
    return recovered_;
  }
  [[nodiscard]] bool lost_tail() const { return lost_tail_; }

  // Drops recovered record i and everything after it, truncating the
  // file accordingly — for callers whose payload-level decode fails on
  // a CRC-clean frame (treated exactly like a torn tail).
  [[nodiscard]] Status truncate_recovered(std::size_t first_bad);

  // Stages one payload; bytes reach the OS at the next commit().
  void append(std::string_view payload);
  // Writes and (policy permitting) fsyncs all staged payloads.
  [[nodiscard]] Status commit();

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] std::uint64_t size_bytes() const {
    return durable_bytes_ + pending_.size();
  }
  [[nodiscard]] std::uint64_t chain() const { return chain_; }
  [[nodiscard]] std::uint64_t records() const { return records_; }
  [[nodiscard]] std::uint64_t commits() const { return commits_; }
  [[nodiscard]] std::uint64_t fsyncs() const { return fsyncs_; }

 private:
  int fd_ = -1;
  std::string path_;
  FsyncPolicy policy_ = FsyncPolicy::kCommit;
  std::string pending_;
  std::uint64_t durable_bytes_ = 0;
  std::uint64_t chain_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t commits_ = 0;
  std::uint64_t fsyncs_ = 0;
  bool lost_tail_ = false;
  std::vector<std::string> recovered_;
  std::vector<std::uint64_t> recovered_offsets_;
  std::vector<std::uint64_t> recovered_chains_;
};

}  // namespace hcm::store
