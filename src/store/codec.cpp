#include "store/codec.hpp"

#include <array>

namespace hcm::store {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

// IEEE CRC32 table, computed at compile time (reflected polynomial).
constexpr auto kCrcTable = [] {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    t[i] = c;
  }
  return t;
}();

}  // namespace

std::uint64_t chain_hash(std::uint64_t seed, std::string_view bytes) {
  std::uint64_t h = seed;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

std::string content_digest(std::string_view text) {
  const std::uint64_t h = chain_hash(kChainGenesis, text);
  char buf[17];
  static const char* hex = "0123456789abcdef";
  for (int i = 0; i < 16; ++i) {
    buf[i] = hex[(h >> ((15 - i) * 4)) & 0xf];
  }
  buf[16] = '\0';
  return std::string(buf);
}

std::uint32_t crc32(std::string_view bytes) {
  std::uint32_t c = 0xffffffffu;
  for (unsigned char b : bytes) {
    c = kCrcTable[(c ^ b) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

void put_string(std::string& out, std::string_view s) {
  put_varint(out, s.size());
  out.append(s.data(), s.size());
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint8_t Cursor::u8() {
  if (pos + 1 > data.size()) {
    ok = false;
    return 0;
  }
  return static_cast<std::uint8_t>(data[pos++]);
}

std::uint32_t Cursor::u32() {
  if (pos + 4 > data.size()) {
    ok = false;
    return 0;
  }
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data[pos + i]))
         << (8 * i);
  }
  pos += 4;
  return v;
}

std::uint64_t Cursor::u64() {
  if (pos + 8 > data.size()) {
    ok = false;
    return 0;
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data[pos + i]))
         << (8 * i);
  }
  pos += 8;
  return v;
}

std::uint64_t Cursor::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos >= data.size() || shift > 63) {
      ok = false;
      return 0;
    }
    const auto b = static_cast<unsigned char>(data[pos++]);
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

std::string Cursor::str() {
  const std::uint64_t n = varint();
  if (!ok || pos + n > data.size()) {
    ok = false;
    return {};
  }
  std::string s(data.substr(pos, n));
  pos += n;
  return s;
}

std::vector<RecordType> all_record_types() {
  return {RecordType::kEpoch,  RecordType::kBody,  RecordType::kUpsert,
          RecordType::kRemove, RecordType::kTouch, RecordType::kCheckpoint};
}

const char* record_type_name(RecordType t) {
  switch (t) {
    case RecordType::kEpoch: return "epoch";
    case RecordType::kBody: return "body";
    case RecordType::kUpsert: return "upsert";
    case RecordType::kRemove: return "remove";
    case RecordType::kTouch: return "touch";
    case RecordType::kCheckpoint: return "checkpoint";
  }
  return "unknown";
}

namespace {

// expires_at is a signed sim time; zig-zag keeps the varint small for
// the common 0 = no-lease case while representing any int64.
std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void encode_upsert_fields(std::string& out, const UpsertRecord& u) {
  put_varint(out, u.seq);
  put_string(out, u.name);
  put_string(out, u.category);
  put_string(out, u.origin);
  put_string(out, u.digest);
  put_varint(out, zigzag(u.expires_at));
}

UpsertRecord decode_upsert_fields(Cursor& c) {
  UpsertRecord u;
  u.seq = c.varint();
  u.name = c.str();
  u.category = c.str();
  u.origin = c.str();
  u.digest = c.str();
  u.expires_at = unzigzag(c.varint());
  return u;
}

}  // namespace

std::string encode_record(const Record& r) {
  std::string out;
  out.push_back(static_cast<char>(r.type));
  switch (r.type) {
    case RecordType::kEpoch:
      put_varint(out, r.epoch.epoch);
      break;
    case RecordType::kBody:
      put_string(out, r.body.digest);
      put_string(out, r.body.body);
      break;
    case RecordType::kUpsert:
      encode_upsert_fields(out, r.upsert);
      break;
    case RecordType::kRemove:
      put_varint(out, r.remove.seq);
      put_string(out, r.remove.name);
      put_string(out, r.remove.digest);
      break;
    case RecordType::kTouch:
      put_string(out, r.touch.name);
      put_varint(out, zigzag(r.touch.expires_at));
      break;
    case RecordType::kCheckpoint: {
      put_varint(out, r.checkpoint.epoch);
      put_varint(out, r.checkpoint.seq);
      put_varint(out, r.checkpoint.compacted_through);
      put_varint(out, r.checkpoint.entries.size());
      for (const UpsertRecord& e : r.checkpoint.entries) {
        encode_upsert_fields(out, e);
      }
      put_varint(out, r.checkpoint.journal.size());
      for (const JournalEntry& j : r.checkpoint.journal) {
        put_varint(out, j.seq);
        out.push_back(j.remove ? 1 : 0);
        put_string(out, j.name);
        put_string(out, j.digest);
      }
      break;
    }
  }
  return out;
}

Result<Record> decode_record(std::string_view payload) {
  Cursor c{payload};
  Record r;
  const std::uint8_t type = c.u8();
  if (!c.ok) return protocol_error("store record: empty payload");
  switch (static_cast<RecordType>(type)) {
    case RecordType::kEpoch:
      r.type = RecordType::kEpoch;
      r.epoch.epoch = c.varint();
      break;
    case RecordType::kBody:
      r.type = RecordType::kBody;
      r.body.digest = c.str();
      r.body.body = c.str();
      break;
    case RecordType::kUpsert:
      r.type = RecordType::kUpsert;
      r.upsert = decode_upsert_fields(c);
      break;
    case RecordType::kRemove:
      r.type = RecordType::kRemove;
      r.remove.seq = c.varint();
      r.remove.name = c.str();
      r.remove.digest = c.str();
      break;
    case RecordType::kTouch:
      r.type = RecordType::kTouch;
      r.touch.name = c.str();
      r.touch.expires_at = unzigzag(c.varint());
      break;
    case RecordType::kCheckpoint: {
      r.type = RecordType::kCheckpoint;
      r.checkpoint.epoch = c.varint();
      r.checkpoint.seq = c.varint();
      r.checkpoint.compacted_through = c.varint();
      const std::uint64_t entries = c.varint();
      for (std::uint64_t i = 0; c.ok && i < entries; ++i) {
        r.checkpoint.entries.push_back(decode_upsert_fields(c));
      }
      const std::uint64_t journal = c.varint();
      for (std::uint64_t i = 0; c.ok && i < journal; ++i) {
        JournalEntry j;
        j.seq = c.varint();
        j.remove = c.u8() != 0;
        j.name = c.str();
        j.digest = c.str();
        r.checkpoint.journal.push_back(std::move(j));
      }
      break;
    }
    default:
      return protocol_error("store record: unknown type " +
                            std::to_string(type));
  }
  if (!c.ok || !c.done()) {
    return protocol_error(std::string("store record: malformed ") +
                          record_type_name(r.type) + " payload");
  }
  return r;
}

}  // namespace hcm::store
