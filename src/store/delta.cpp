#include "store/delta.hpp"

#include <map>
#include <vector>

#include "store/codec.hpp"

namespace hcm::store {

namespace {

// Block granularity for the base index. Matches shorter than this are
// not worth a copy op (op overhead is ~3-5 bytes).
constexpr std::size_t kBlock = 16;

std::uint64_t block_key(std::string_view s, std::size_t pos) {
  return chain_hash(kChainGenesis, s.substr(pos, kBlock));
}

void emit_insert(std::string& out, std::string_view lit) {
  if (lit.empty()) return;
  out.push_back(0x00);
  put_string(out, lit);
}

void emit_copy(std::string& out, std::size_t off, std::size_t len) {
  out.push_back(0x01);
  put_varint(out, off);
  put_varint(out, len);
}

}  // namespace

std::string delta_encode(std::string_view base, std::string_view target) {
  std::string out;
  put_varint(out, base.size());
  put_varint(out, target.size());

  // Index non-overlapping base blocks by content hash. std::map keeps
  // candidate selection deterministic across runs.
  std::map<std::uint64_t, std::vector<std::size_t>> index;
  for (std::size_t p = 0; p + kBlock <= base.size(); p += kBlock) {
    index[block_key(base, p)].push_back(p);
  }

  std::size_t lit_begin = 0;  // start of the pending literal run
  std::size_t i = 0;
  while (i + kBlock <= target.size()) {
    auto it = index.find(block_key(target, i));
    // Best match covers target[best_ts, best_ts + best_len) from
    // base[best_bo, best_bo + best_len), with best_ts <= i (backwards
    // extension may eat into the pending literal).
    std::size_t best_len = 0;
    std::size_t best_bo = 0;
    std::size_t best_ts = 0;
    if (it != index.end()) {
      for (std::size_t cand : it->second) {
        // Confirm the block bytewise (the hash can collide), then
        // extend greedily forwards and backwards.
        std::size_t fwd = 0;
        while (i + fwd < target.size() && cand + fwd < base.size() &&
               target[i + fwd] == base[cand + fwd]) {
          ++fwd;
        }
        if (fwd < kBlock) continue;
        std::size_t back = 0;
        while (back < i - lit_begin && back < cand &&
               target[i - back - 1] == base[cand - back - 1]) {
          ++back;
        }
        if (fwd + back > best_len) {
          best_len = fwd + back;
          best_bo = cand - back;
          best_ts = i - back;
        }
      }
    }
    if (best_len >= kBlock) {
      emit_insert(out, target.substr(lit_begin, best_ts - lit_begin));
      emit_copy(out, best_bo, best_len);
      i = best_ts + best_len;
      lit_begin = i;
    } else {
      ++i;
    }
  }
  emit_insert(out, target.substr(lit_begin));
  return out;
}

Result<std::string> delta_apply(std::string_view base,
                                std::string_view delta) {
  Cursor c{delta};
  const std::uint64_t base_size = c.varint();
  const std::uint64_t target_size = c.varint();
  if (!c.ok) return protocol_error("delta: truncated header");
  if (base_size != base.size()) {
    return protocol_error("delta: base size mismatch (delta built against " +
                          std::to_string(base_size) + " bytes, applied to " +
                          std::to_string(base.size()) + ")");
  }
  std::string out;
  out.reserve(target_size);
  while (!c.done()) {
    const std::uint8_t op = c.u8();
    if (op == 0x00) {
      out += c.str();
    } else if (op == 0x01) {
      const std::uint64_t off = c.varint();
      const std::uint64_t len = c.varint();
      if (!c.ok || off + len > base.size()) {
        return protocol_error("delta: copy op out of base range");
      }
      out.append(base.substr(off, len));
    } else {
      return protocol_error("delta: unknown op " + std::to_string(op));
    }
    if (!c.ok) return protocol_error("delta: truncated op");
  }
  if (out.size() != target_size) {
    return protocol_error("delta: applied size " + std::to_string(out.size()) +
                          " != declared " + std::to_string(target_size));
  }
  return out;
}

}  // namespace hcm::store
