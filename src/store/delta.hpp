// Binary delta codec for pack compaction: a target document is encoded
// as copy(offset, length)-from-base and insert(literal) ops against the
// prior revision of the same service (the git packfile shape). WSDL
// revisions of one service are near-identical, so the encoded delta is
// typically a few dozen bytes for multi-KB documents.
//
// Encoding: varint(base_size) varint(target_size), then ops:
//   0x00 varint(len) <len literal bytes>       insert
//   0x01 varint(offset) varint(len)            copy from base
// Application verifies base/target sizes, so a delta applied to the
// wrong base fails loudly instead of producing silent garbage.
#pragma once

#include <string>
#include <string_view>

#include "common/status.hpp"

namespace hcm::store {

[[nodiscard]] std::string delta_encode(std::string_view base,
                                       std::string_view target);

[[nodiscard]] Result<std::string> delta_apply(std::string_view base,
                                              std::string_view delta);

}  // namespace hcm::store
