// VsrStore: the durable backing store of the Virtual Service Repository
// (docs/PERSISTENCE.md). Directory layout:
//
//   <dir>/log           append-only hash-chained record log (RecordLog)
//   <dir>/pack-NNNNNN.pack   immutable delta-compressed body packs
//
// Every journaled registry change (publish/unpublish/lease expiry) is
// written through as log records; WSDL bodies ride once per digest and
// are rolled into delta-compressed packs when the log exceeds the
// compaction threshold. On open() the store replays packs + log and
// exposes the recovered {epoch, seq, entries, resync journal}, so a
// restarted UddiRegistry resumes the exact incarnation its clients
// hold cursors for — no epoch bump, no snapshot resyncs. A torn or
// corrupt log tail truncates to the last intact record and flags
// lost_tail, which the registry answers with an epoch bump (the PR 3
// resync path) instead of serving silently rolled-back state.
//
// Determinism: the store never reads a clock or any other ambient
// state — durability timestamps (lease expiries) come from the caller,
// and compaction triggers on bytes, not time.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "store/codec.hpp"
#include "store/pack.hpp"
#include "store/record_log.hpp"

namespace hcm::store {

struct VsrStoreOptions {
  std::string dir;
  RecordLog::FsyncPolicy fsync = RecordLog::FsyncPolicy::kCommit;
  // Roll the log into a pack + checkpoint once it exceeds this many
  // bytes (checked at commit boundaries).
  std::uint64_t compact_threshold_bytes = 1 << 20;
  // Mirror of the registry's journal capacity: how many resync-window
  // entries checkpoints retain.
  std::size_t journal_capacity = 128;
  // Bound on pack delta chains; revision N of a service is stored whole
  // when materializing it would walk more than this many deltas.
  int max_delta_chain = 16;
};

// What replay found. `fresh` means the directory held no epoch yet
// (brand-new store); `lost_tail` means at least one committed-then-
// corrupted record was truncated away and clients may hold state the
// store no longer has — the registry must bump its epoch.
struct RecoveredState {
  bool fresh = true;
  bool lost_tail = false;
  std::uint64_t epoch = 0;
  std::uint64_t last_seq = 0;
  std::uint64_t compacted_through = 0;
  std::vector<UpsertRecord> entries;   // live set, name-ascending
  std::vector<JournalEntry> journal;   // resync window, seq-ascending
};

// Pure replay state machine over decoded log records — the single
// definition of what a record sequence *means*, shared by live
// recovery, fsck and stats so they can never diverge.
struct LogMirror {
  bool fresh = true;
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;
  std::uint64_t compacted_through = 0;
  std::size_t journal_capacity = static_cast<std::size_t>(-1);
  std::map<std::string, UpsertRecord> entries;  // by name
  std::deque<JournalEntry> journal;             // resync window
  std::map<std::string, std::string> bodies;    // un-packed, digest -> body
  std::vector<std::string> body_order;          // insertion order
  std::map<std::string, std::string> delta_hint;  // digest -> prior rev

  void apply(const Record& r);
};

class VsrStore {
 public:
  explicit VsrStore(VsrStoreOptions options) : options_(std::move(options)) {}

  [[nodiscard]] Status open();
  [[nodiscard]] const RecoveredState& recovered() const { return recovered_; }
  [[nodiscard]] const std::string& dir() const { return options_.dir; }

  // Resolves a digest to its document, from the un-packed log bodies or
  // any pack (newest first), materializing delta chains.
  [[nodiscard]] Result<std::string> body_for(const std::string& digest) const;

  // --- write-through (staged; durable at the next commit()) -----------
  void record_epoch(std::uint64_t epoch);
  void record_upsert(const UpsertRecord& rec, const std::string& body);
  void record_remove(const RemoveRecord& rec);
  void record_touch(const std::string& name, std::int64_t expires_at);

  // Group commit: one write + one fsync for everything staged since the
  // last commit, then a compaction check.
  [[nodiscard]] Status commit();
  // Forces a pack roll + log checkpoint regardless of the threshold.
  [[nodiscard]] Status compact();

  // --- observability ---------------------------------------------------
  [[nodiscard]] std::uint64_t log_bytes() const { return log_.size_bytes(); }
  [[nodiscard]] std::uint64_t pack_bytes() const;
  [[nodiscard]] std::size_t pack_count() const { return packs_.size(); }
  [[nodiscard]] std::uint64_t compactions() const { return compactions_; }
  [[nodiscard]] std::uint64_t commits() const { return log_.commits(); }
  [[nodiscard]] std::uint64_t fsyncs() const { return log_.fsyncs(); }

  // --- fsck / stats (standalone; used by the hcm_store CLI) ------------
  struct FsckReport {
    bool ok = true;
    std::vector<std::string> errors;
    std::size_t log_records = 0;
    std::size_t packs = 0;
    std::size_t pack_entries = 0;
    std::size_t bodies_verified = 0;
  };
  [[nodiscard]] static FsckReport fsck(const std::string& dir);

  struct StatsReport {
    std::uint64_t log_bytes = 0;
    std::size_t log_records = 0;
    std::map<std::string, std::size_t> records_by_type;
    std::size_t packs = 0;
    std::uint64_t pack_bytes = 0;
    std::size_t pack_entries = 0;
    std::size_t delta_entries = 0;
    std::uint64_t stored_body_bytes = 0;    // bytes as stored (full+delta)
    std::uint64_t expanded_body_bytes = 0;  // bytes once materialized
    std::size_t live_entries = 0;
    std::uint64_t epoch = 0;
    std::uint64_t last_seq = 0;
    [[nodiscard]] double delta_ratio() const {
      return stored_body_bytes == 0
                 ? 1.0
                 : static_cast<double>(expanded_body_bytes) /
                       static_cast<double>(stored_body_bytes);
    }
  };
  [[nodiscard]] static Result<StatsReport> stats(const std::string& dir);

 private:
  void stage(const Record& r);
  [[nodiscard]] Result<std::string> pack_body_for(
      const std::string& digest) const;
  [[nodiscard]] int chain_depth(const std::string& digest) const;
  [[nodiscard]] Status rewrite_log_checkpoint();
  [[nodiscard]] std::string pack_path(std::uint64_t n) const;

  VsrStoreOptions options_;
  RecordLog log_;
  std::vector<std::unique_ptr<PackReader>> packs_;  // oldest .. newest
  std::uint64_t next_pack_ = 1;
  RecoveredState recovered_;
  // Mirror of the registry state the log describes, maintained on both
  // replay and write-through so compaction can checkpoint without
  // asking the registry.
  LogMirror mirror_;
  std::uint64_t compactions_ = 0;
};

}  // namespace hcm::store
