// On-disk codec for the durable VSR store (docs/PERSISTENCE.md): the
// record types the append-only log carries, their binary encoding, and
// the two integrity primitives everything above is keyed on — the
// FNV-1a content digest (the same digest soap::wsdl_digest exposes; the
// store owns the single implementation so a registry and its store can
// never disagree on "unchanged") and CRC32 for per-frame corruption
// detection.
//
// Every struct here has a codec round-trip fixture (hcm_lint's
// store-record rule mirrors the PR 3 registry-wire rule: adding a
// record type without a fixture fails the lint run).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace hcm::store {

// Stable content digest: FNV-1a 64-bit rendered as 16 lowercase hex
// chars. soap::wsdl_digest delegates here.
[[nodiscard]] std::string content_digest(std::string_view text);

// 64-bit FNV-1a folded over `bytes`, seeded with `seed` — the hash-chain
// step of the record log (seed = previous record's chain value).
[[nodiscard]] std::uint64_t chain_hash(std::uint64_t seed,
                                       std::string_view bytes);

// The FNV-1a offset basis; genesis seed of every log's hash chain.
inline constexpr std::uint64_t kChainGenesis = 0xcbf29ce484222325ULL;

// CRC32 (IEEE, reflected) over bytes.
[[nodiscard]] std::uint32_t crc32(std::string_view bytes);

// --- primitive encoding -------------------------------------------------
// LEB128-style varints and length-prefixed strings; fixed-width u32/u64
// are little-endian (frame headers, pack index).
void put_varint(std::string& out, std::uint64_t v);
void put_string(std::string& out, std::string_view s);
void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);

// Decode cursor. All reads clamp and latch `ok=false` on underrun or
// malformed input; callers check once at the end.
struct Cursor {
  std::string_view data;
  std::size_t pos = 0;
  bool ok = true;

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::uint64_t varint();
  [[nodiscard]] std::string str();
  [[nodiscard]] bool done() const { return pos == data.size(); }
};

// --- record types -------------------------------------------------------

enum class RecordType : std::uint8_t {
  kEpoch = 1,       // registry incarnation stamp
  kBody = 2,        // WSDL document content, keyed by digest
  kUpsert = 3,      // journaled publish (body rides in a kBody record)
  kRemove = 4,      // journaled unpublish / lease expiry
  kTouch = 5,       // lease renewal: expiry moved, content unchanged
  kCheckpoint = 6,  // compaction: full live set + resync-window tail
};

[[nodiscard]] std::vector<RecordType> all_record_types();
[[nodiscard]] const char* record_type_name(RecordType t);

struct EpochRecord {
  std::uint64_t epoch = 0;
  bool operator==(const EpochRecord&) const = default;
};

struct BodyRecord {
  std::string digest;
  std::string body;
  bool operator==(const BodyRecord&) const = default;
};

struct UpsertRecord {
  std::uint64_t seq = 0;
  std::string name;
  std::string category;
  std::string origin;
  std::string digest;
  // Durability timestamps come from the caller (the registry's sim
  // clock) — the store never reads a clock of its own.
  std::int64_t expires_at = 0;
  bool operator==(const UpsertRecord&) const = default;
};

struct RemoveRecord {
  std::uint64_t seq = 0;
  std::string name;
  std::string digest;  // digest at removal time (resync-window payload)
  bool operator==(const RemoveRecord&) const = default;
};

struct TouchRecord {
  std::string name;
  std::int64_t expires_at = 0;
  bool operator==(const TouchRecord&) const = default;
};

// One resync-window journal entry (mirror of the registry's in-memory
// JournalRecord), persisted inside checkpoints.
struct JournalEntry {
  std::uint64_t seq = 0;
  bool remove = false;
  std::string name;
  std::string digest;
  bool operator==(const JournalEntry&) const = default;
};

struct CheckpointRecord {
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;
  std::uint64_t compacted_through = 0;
  std::vector<UpsertRecord> entries;  // live set; bodies live in packs
  std::vector<JournalEntry> journal;  // resync window, seq-ascending
  bool operator==(const CheckpointRecord&) const = default;
};

// Tagged union of everything the log can carry.
struct Record {
  RecordType type = RecordType::kEpoch;
  EpochRecord epoch;
  BodyRecord body;
  UpsertRecord upsert;
  RemoveRecord remove;
  TouchRecord touch;
  CheckpointRecord checkpoint;
  bool operator==(const Record&) const = default;
};

[[nodiscard]] std::string encode_record(const Record& r);
[[nodiscard]] Result<Record> decode_record(std::string_view payload);

}  // namespace hcm::store
