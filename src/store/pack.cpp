#include "store/pack.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "store/codec.hpp"

namespace hcm::store {

namespace {

constexpr char kMagic[] = "HCMPACK1";
constexpr char kFooterMagic[] = "HCMPKIX1";
constexpr std::size_t kMagicLen = 8;
constexpr std::size_t kFooterLen = 8 + 4 + kMagicLen;

}  // namespace

void PackWriter::add_full(const std::string& digest, std::string_view body) {
  entries_.push_back(PackEntry{digest, "", std::string(body)});
}

void PackWriter::add_delta(const std::string& digest,
                           const std::string& base_digest,
                           std::string_view delta) {
  entries_.push_back(PackEntry{digest, base_digest, std::string(delta)});
}

Status PackWriter::write(const std::string& path) const {
  std::string out(kMagic, kMagicLen);
  std::vector<std::pair<std::string, std::uint64_t>> index;
  index.reserve(entries_.size());
  for (const PackEntry& e : entries_) {
    index.emplace_back(e.digest, out.size());
    std::string frame;
    frame.push_back(e.base_digest.empty() ? 0 : 1);
    put_string(frame, e.digest);
    if (!e.base_digest.empty()) put_string(frame, e.base_digest);
    put_u32(frame, static_cast<std::uint32_t>(e.data.size()));
    frame += e.data;
    put_u32(frame, crc32(frame));
    out += frame;
  }
  std::sort(index.begin(), index.end());
  const std::uint64_t index_offset = out.size();
  std::string index_bytes;
  put_u32(index_bytes, static_cast<std::uint32_t>(index.size()));
  for (const auto& [digest, offset] : index) {
    put_string(index_bytes, digest);
    put_u64(index_bytes, offset);
  }
  out += index_bytes;
  put_u64(out, index_offset);
  put_u32(out, crc32(index_bytes));
  out.append(kFooterMagic, kMagicLen);

  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    return internal_error("open pack " + path + ": " + std::strerror(errno));
  }
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::write(fd, out.data() + off, out.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status st =
          internal_error("write pack " + path + ": " + std::strerror(errno));
      ::close(fd);
      return st;
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const Status st =
        internal_error("fsync pack " + path + ": " + std::strerror(errno));
    ::close(fd);
    return st;
  }
  ::close(fd);
  return Status::ok();
}

Status PackReader::open(const std::string& path) {
  path_ = path;
  std::ifstream in(path, std::ios::binary);
  if (!in) return not_found("pack " + path + " is unreadable");
  std::ostringstream ss;
  ss << in.rdbuf();
  data_ = ss.str();
  digests_.clear();
  offsets_.clear();

  if (data_.size() < kMagicLen + kFooterLen ||
      data_.compare(0, kMagicLen, kMagic, kMagicLen) != 0) {
    return protocol_error("pack " + path + ": bad or missing header magic");
  }
  if (data_.compare(data_.size() - kMagicLen, kMagicLen, kFooterMagic,
                    kMagicLen) != 0) {
    return protocol_error("pack " + path + ": bad footer magic");
  }
  Cursor footer{std::string_view(data_).substr(data_.size() - kFooterLen)};
  const std::uint64_t index_offset = footer.u64();
  const std::uint32_t index_crc = footer.u32();
  if (index_offset >= data_.size() - kFooterLen) {
    return protocol_error("pack " + path + ": index offset out of range");
  }
  const std::string_view index_bytes = std::string_view(data_).substr(
      index_offset, data_.size() - kFooterLen - index_offset);
  if (crc32(index_bytes) != index_crc) {
    return protocol_error("pack " + path + ": index crc mismatch");
  }
  Cursor c{index_bytes};
  const std::uint32_t count = c.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string digest = c.str();
    const std::uint64_t offset = c.u64();
    if (!c.ok || offset >= index_offset) {
      return protocol_error("pack " + path + ": malformed index entry");
    }
    if (!digests_.empty() && digest <= digests_.back()) {
      return protocol_error("pack " + path + ": index is not strictly sorted");
    }
    digests_.push_back(std::move(digest));
    offsets_.push_back(offset);
  }
  if (!c.ok || !c.done()) {
    return protocol_error("pack " + path + ": trailing index bytes");
  }
  return Status::ok();
}

bool PackReader::contains(const std::string& digest) const {
  return std::binary_search(digests_.begin(), digests_.end(), digest);
}

Result<PackEntry> PackReader::read(const std::string& digest) const {
  const auto it =
      std::lower_bound(digests_.begin(), digests_.end(), digest);
  if (it == digests_.end() || *it != digest) {
    return not_found("pack " + path_ + ": no entry for digest " + digest);
  }
  return read_at(offsets_[static_cast<std::size_t>(it - digests_.begin())]);
}

Result<PackEntry> PackReader::read_at(std::uint64_t offset) const {
  Cursor c{std::string_view(data_).substr(offset)};
  PackEntry e;
  const std::uint8_t kind = c.u8();
  e.digest = c.str();
  if (kind == 1) e.base_digest = c.str();
  const std::uint32_t len = c.u32();
  if (!c.ok || kind > 1) {
    return protocol_error("pack " + path_ + ": malformed entry at offset " +
                          std::to_string(offset));
  }
  const std::size_t data_begin = offset + c.pos;
  if (data_begin + len + 4 > data_.size()) {
    return protocol_error("pack " + path_ + ": entry data out of range");
  }
  e.data = data_.substr(data_begin, len);
  Cursor crc_cur{std::string_view(data_).substr(data_begin + len, 4)};
  const std::uint32_t want = crc_cur.u32();
  const std::string_view framed =
      std::string_view(data_).substr(offset, c.pos + len);
  if (crc32(framed) != want) {
    return protocol_error("pack " + path_ + ": entry crc mismatch for " +
                          e.digest);
  }
  return e;
}

}  // namespace hcm::store
