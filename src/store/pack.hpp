// Pack files: compacted, delta-compressed storage of WSDL documents,
// keyed by content digest (docs/PERSISTENCE.md §"Pack format"). The
// git object-store shape: a log segment's full bodies are rolled into
// one immutable pack where each revision is stored either whole
// ("full") or as a delta against the prior revision of the same
// service; a sorted digest index at the tail gives O(log n) lookup.
//
// File layout (little-endian):
//   "HCMPACK1"
//   entry*:  u8 kind (0 full, 1 delta) | digest (len-prefixed)
//            | base digest (len-prefixed, delta only)
//            | u32 data_len | data | u32 crc32(kind..data)
//   index:   u32 count | count * (digest len-prefixed | u64 offset),
//            sorted by digest
//   footer:  u64 index_offset | u32 crc32(index) | "HCMPKIX1"
// Packs are written to a temp name and renamed into place, so a crash
// during compaction never leaves a half-written pack visible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace hcm::store {

struct PackEntry {
  std::string digest;
  std::string base_digest;  // empty = stored whole
  std::string data;         // full body, or delta against base_digest
};

class PackWriter {
 public:
  void add_full(const std::string& digest, std::string_view body);
  void add_delta(const std::string& digest, const std::string& base_digest,
                 std::string_view delta);

  [[nodiscard]] std::size_t entry_count() const { return entries_.size(); }
  // Serializes entries + index + footer to `path` and fsyncs the file.
  [[nodiscard]] Status write(const std::string& path) const;

 private:
  std::vector<PackEntry> entries_;
};

class PackReader {
 public:
  [[nodiscard]] Status open(const std::string& path);

  [[nodiscard]] bool contains(const std::string& digest) const;
  // Binary search of the index, then a CRC-checked entry decode.
  [[nodiscard]] Result<PackEntry> read(const std::string& digest) const;

  [[nodiscard]] const std::vector<std::string>& digests() const {
    return digests_;
  }
  [[nodiscard]] std::size_t entry_count() const { return digests_.size(); }
  [[nodiscard]] std::uint64_t size_bytes() const { return data_.size(); }

 private:
  [[nodiscard]] Result<PackEntry> read_at(std::uint64_t offset) const;

  std::string path_;
  std::string data_;
  std::vector<std::string> digests_;       // sorted
  std::vector<std::uint64_t> offsets_;     // parallel to digests_
};

}  // namespace hcm::store
