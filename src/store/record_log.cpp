#include "store/record_log.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "store/codec.hpp"

namespace hcm::store {

namespace {

constexpr std::size_t kFrameHeader = 4 + 4 + 8;

std::string read_whole_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

Status errno_status(const std::string& what, const std::string& path) {
  return internal_error(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

RecordLog::~RecordLog() { close(); }

Result<RecordLog::Scan> RecordLog::scan_file(const std::string& path) {
  Scan scan;
  scan.chain = kChainGenesis;
  const std::string data = read_whole_file(path);
  scan.file_bytes = data.size();
  std::size_t pos = 0;
  while (pos < data.size()) {
    Cursor c{std::string_view(data).substr(pos, kFrameHeader)};
    const std::uint32_t len = c.u32();
    const std::uint32_t crc = c.u32();
    const std::uint64_t chain = c.u64();
    if (!c.ok || pos + kFrameHeader + len > data.size()) {
      scan.clean = false;
      scan.tail_error = "torn frame at offset " + std::to_string(pos) +
                        " (header or payload cut short)";
      break;
    }
    const std::string_view payload =
        std::string_view(data).substr(pos + kFrameHeader, len);
    if (crc32(payload) != crc) {
      scan.clean = false;
      scan.tail_error =
          "crc mismatch at offset " + std::to_string(pos);
      break;
    }
    if (chain_hash(scan.chain, payload) != chain) {
      scan.clean = false;
      scan.tail_error =
          "hash chain break at offset " + std::to_string(pos);
      break;
    }
    scan.chain = chain;
    scan.frames.push_back(Frame{std::string(payload), pos});
    pos += kFrameHeader + len;
    scan.valid_bytes = pos;
  }
  return scan;
}

Status RecordLog::open(const std::string& path, FsyncPolicy policy) {
  close();
  path_ = path;
  policy_ = policy;
  lost_tail_ = false;
  recovered_.clear();
  recovered_offsets_.clear();
  recovered_chains_.clear();
  pending_.clear();

  auto scanned = scan_file(path);
  if (!scanned.is_ok()) return scanned.status();
  Scan scan = std::move(scanned).take();

  fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY, 0644);
  if (fd_ < 0) return errno_status("open log", path);
  if (!scan.clean && scan.valid_bytes < scan.file_bytes) {
    // Torn or corrupt tail: everything past the last intact frame is
    // unrecoverable — drop it so the chain resumes from known-good
    // state. The caller learns via lost_tail() and bumps the epoch.
    if (::ftruncate(fd_, static_cast<off_t>(scan.valid_bytes)) != 0) {
      return errno_status("truncate log", path);
    }
    lost_tail_ = true;
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) return errno_status("seek log", path);

  durable_bytes_ = scan.valid_bytes;
  chain_ = scan.chain;
  records_ = scan.frames.size();
  std::uint64_t running = kChainGenesis;
  for (Frame& f : scan.frames) {
    running = chain_hash(running, f.payload);
    recovered_offsets_.push_back(f.offset);
    recovered_chains_.push_back(running);
    recovered_.push_back(std::move(f.payload));
  }
  return Status::ok();
}

void RecordLog::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status RecordLog::truncate_recovered(std::size_t first_bad) {
  if (first_bad >= recovered_.size()) return Status::ok();
  const std::uint64_t keep_bytes = recovered_offsets_[first_bad];
  if (::ftruncate(fd_, static_cast<off_t>(keep_bytes)) != 0) {
    return errno_status("truncate log", path_);
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) return errno_status("seek log", path_);
  durable_bytes_ = keep_bytes;
  chain_ = first_bad == 0 ? kChainGenesis : recovered_chains_[first_bad - 1];
  records_ = first_bad;
  recovered_.resize(first_bad);
  recovered_offsets_.resize(first_bad);
  recovered_chains_.resize(first_bad);
  lost_tail_ = true;
  return Status::ok();
}

void RecordLog::append(std::string_view payload) {
  chain_ = chain_hash(chain_, payload);
  put_u32(pending_, static_cast<std::uint32_t>(payload.size()));
  put_u32(pending_, crc32(payload));
  put_u64(pending_, chain_);
  pending_.append(payload.data(), payload.size());
  ++records_;
}

Status RecordLog::commit() {
  if (pending_.empty()) return Status::ok();
  std::size_t off = 0;
  while (off < pending_.size()) {
    const ssize_t n =
        ::write(fd_, pending_.data() + off, pending_.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_status("write log", path_);
    }
    off += static_cast<std::size_t>(n);
  }
  if (policy_ == FsyncPolicy::kCommit) {
    if (::fsync(fd_) != 0) return errno_status("fsync log", path_);
    ++fsyncs_;
  }
  durable_bytes_ += pending_.size();
  pending_.clear();
  ++commits_;
  return Status::ok();
}

}  // namespace hcm::store
