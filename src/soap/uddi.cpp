#include "soap/uddi.hpp"

namespace hcm::soap {

namespace {
constexpr const char* kNs = "urn:hcm:uddi";

const Value& param(const NamedValues& params, const std::string& name) {
  static const Value kNull;
  for (const auto& [k, v] : params) {
    if (k == name) return v;
  }
  return kNull;
}
}  // namespace

UddiRegistry::UddiRegistry(http::HttpServer& http_server,
                           sim::Scheduler& sched, std::string path)
    : sched_(sched), service_(http_server, std::move(path)) {
  service_.register_method(
      "publish", [this](const NamedValues& params, CallResultFn done) {
        const auto& name = param(params, "name");
        const auto& wsdl = param(params, "wsdl");
        if (!name.is_string() || name.as_string().empty() ||
            !wsdl.is_string()) {
          done(invalid_argument("publish requires name and wsdl"));
          return;
        }
        RegistryEntry e;
        e.name = name.as_string();
        e.category = param(params, "category").is_string()
                         ? param(params, "category").as_string()
                         : "";
        e.origin = param(params, "origin").is_string()
                       ? param(params, "origin").as_string()
                       : "";
        e.wsdl = wsdl.as_string();
        auto ttl = param(params, "ttl");
        e.expires_at =
            ttl.is_int() && ttl.as_int() > 0 ? sched_.now() + ttl.as_int() : 0;
        entries_[e.name] = std::move(e);
        ++publishes_;
        done(Value(true));
      });

  service_.register_method(
      "unpublish", [this](const NamedValues& params, CallResultFn done) {
        const auto& name = param(params, "name");
        if (!name.is_string()) {
          done(invalid_argument("unpublish requires name"));
          return;
        }
        done(Value(entries_.erase(name.as_string()) > 0));
      });

  service_.register_method(
      "find", [this](const NamedValues& params, CallResultFn done) {
        prune();
        const auto& category = param(params, "category");
        ValueList out;
        for (const auto& [name, e] : entries_) {
          if (category.is_string() && !category.as_string().empty() &&
              e.category != category.as_string()) {
            continue;
          }
          out.push_back(entry_to_value(e));
        }
        done(Value(std::move(out)));
      });

  service_.register_method(
      "lookup", [this](const NamedValues& params, CallResultFn done) {
        prune();
        const auto& name = param(params, "name");
        if (!name.is_string()) {
          done(invalid_argument("lookup requires name"));
          return;
        }
        auto it = entries_.find(name.as_string());
        if (it == entries_.end()) {
          done(not_found("no registry entry: " + name.as_string()));
          return;
        }
        done(entry_to_value(it->second));
      });

  service_.register_method(
      "list", [this](const NamedValues&, CallResultFn done) {
        prune();
        ValueList out;
        for (const auto& [name, e] : entries_) out.push_back(entry_to_value(e));
        done(Value(std::move(out)));
      });

  service_.register_method(
      "subscribeEvent", [this](const NamedValues& params, CallResultFn done) {
        const auto& id = param(params, "id");
        const auto& service = param(params, "service");
        if (!id.is_string() || id.as_string().empty() || !service.is_string()) {
          done(invalid_argument("subscribeEvent requires id and service"));
          return;
        }
        EventSubscription s;
        s.id = id.as_string();
        s.service = service.as_string();
        s.event = param(params, "event").is_string()
                      ? param(params, "event").as_string()
                      : "";
        s.subscriber = param(params, "subscriber").is_string()
                           ? param(params, "subscriber").as_string()
                           : "";
        auto ttl = param(params, "ttl");
        s.expires_at =
            ttl.is_int() && ttl.as_int() > 0 ? sched_.now() + ttl.as_int() : 0;
        subscriptions_[s.id] = std::move(s);
        done(Value(true));
      });

  service_.register_method(
      "renewEventSub", [this](const NamedValues& params, CallResultFn done) {
        prune_subscriptions();
        const auto& id = param(params, "id");
        if (!id.is_string()) {
          done(invalid_argument("renewEventSub requires id"));
          return;
        }
        auto it = subscriptions_.find(id.as_string());
        if (it == subscriptions_.end()) {
          done(not_found("no event subscription: " + id.as_string()));
          return;
        }
        auto ttl = param(params, "ttl");
        it->second.expires_at =
            ttl.is_int() && ttl.as_int() > 0 ? sched_.now() + ttl.as_int() : 0;
        done(Value(true));
      });

  service_.register_method(
      "unsubscribeEvent",
      [this](const NamedValues& params, CallResultFn done) {
        const auto& id = param(params, "id");
        if (!id.is_string()) {
          done(invalid_argument("unsubscribeEvent requires id"));
          return;
        }
        done(Value(subscriptions_.erase(id.as_string()) > 0));
      });

  service_.register_method(
      "listEventSubs", [this](const NamedValues&, CallResultFn done) {
        prune_subscriptions();
        ValueList out;
        for (const auto& [id, s] : subscriptions_) {
          out.push_back(subscription_to_value(s));
        }
        done(Value(std::move(out)));
      });
}

void UddiRegistry::prune() {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.expires_at != 0 && it->second.expires_at <= sched_.now()) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void UddiRegistry::prune_subscriptions() {
  for (auto it = subscriptions_.begin(); it != subscriptions_.end();) {
    if (it->second.expires_at != 0 && it->second.expires_at <= sched_.now()) {
      it = subscriptions_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t UddiRegistry::size() const {
  std::size_t n = 0;
  for (const auto& [name, e] : entries_) {
    if (e.expires_at == 0 || e.expires_at > sched_.now()) ++n;
  }
  return n;
}

std::size_t UddiRegistry::subscription_count() const {
  std::size_t n = 0;
  for (const auto& [id, s] : subscriptions_) {
    if (s.expires_at == 0 || s.expires_at > sched_.now()) ++n;
  }
  return n;
}

Value UddiRegistry::entry_to_value(const RegistryEntry& e) const {
  ValueMap m;
  m["name"] = e.name;
  m["category"] = e.category;
  m["origin"] = e.origin;
  m["wsdl"] = e.wsdl;
  return Value(std::move(m));
}

Value UddiRegistry::subscription_to_value(const EventSubscription& s) const {
  ValueMap m;
  m["id"] = s.id;
  m["service"] = s.service;
  m["event"] = s.event;
  m["subscriber"] = s.subscriber;
  return Value(std::move(m));
}

Result<RegistryEntry> UddiClient::entry_from_value(const Value& v) {
  if (!v.is_map()) return protocol_error("registry entry is not a struct");
  RegistryEntry e;
  e.name = v.at("name").is_string() ? v.at("name").as_string() : "";
  e.category = v.at("category").is_string() ? v.at("category").as_string() : "";
  e.origin = v.at("origin").is_string() ? v.at("origin").as_string() : "";
  e.wsdl = v.at("wsdl").is_string() ? v.at("wsdl").as_string() : "";
  if (e.name.empty()) return protocol_error("registry entry missing name");
  return e;
}

void UddiClient::publish(const RegistryEntry& entry, sim::Duration ttl,
                         DoneFn done) {
  NamedValues params{{"name", Value(entry.name)},
                     {"category", Value(entry.category)},
                     {"origin", Value(entry.origin)},
                     {"wsdl", Value(entry.wsdl)},
                     {"ttl", Value(static_cast<std::int64_t>(ttl))}};
  client_.call(registry_, path_, kNs, "publish", params,
               [done = std::move(done)](Result<Value> r) {
                 done(r.is_ok() ? Status::ok() : r.status());
               });
}

void UddiClient::unpublish(const std::string& name, DoneFn done) {
  client_.call(registry_, path_, kNs, "unpublish", {{"name", Value(name)}},
               [done = std::move(done)](Result<Value> r) {
                 done(r.is_ok() ? Status::ok() : r.status());
               });
}

void UddiClient::find_by_category(const std::string& category,
                                  EntriesFn done) {
  client_.call(registry_, path_, kNs, "find",
               {{"category", Value(category)}},
               [done = std::move(done)](Result<Value> r) {
                 if (!r.is_ok()) {
                   done(r.status());
                   return;
                 }
                 if (!r.value().is_list()) {
                   done(protocol_error("find result is not an array"));
                   return;
                 }
                 std::vector<RegistryEntry> out;
                 for (const auto& item : r.value().as_list()) {
                   auto e = entry_from_value(item);
                   if (!e.is_ok()) {
                     done(e.status());
                     return;
                   }
                   out.push_back(std::move(e).take());
                 }
                 done(std::move(out));
               });
}

void UddiClient::lookup(const std::string& name, EntryFn done) {
  client_.call(registry_, path_, kNs, "lookup", {{"name", Value(name)}},
               [done = std::move(done)](Result<Value> r) {
                 if (!r.is_ok()) {
                   done(r.status());
                   return;
                 }
                 done(entry_from_value(r.value()));
               });
}

void UddiClient::list_all(EntriesFn done) { find_by_category("", std::move(done)); }

Result<EventSubscription> UddiClient::subscription_from_value(const Value& v) {
  if (!v.is_map()) return protocol_error("event subscription is not a struct");
  EventSubscription s;
  s.id = v.at("id").is_string() ? v.at("id").as_string() : "";
  s.service = v.at("service").is_string() ? v.at("service").as_string() : "";
  s.event = v.at("event").is_string() ? v.at("event").as_string() : "";
  s.subscriber =
      v.at("subscriber").is_string() ? v.at("subscriber").as_string() : "";
  if (s.id.empty()) return protocol_error("event subscription missing id");
  return s;
}

void UddiClient::put_subscription(const EventSubscription& sub,
                                  sim::Duration ttl, DoneFn done) {
  NamedValues params{{"id", Value(sub.id)},
                     {"service", Value(sub.service)},
                     {"event", Value(sub.event)},
                     {"subscriber", Value(sub.subscriber)},
                     {"ttl", Value(static_cast<std::int64_t>(ttl))}};
  client_.call(registry_, path_, kNs, "subscribeEvent", params,
               [done = std::move(done)](Result<Value> r) {
                 done(r.is_ok() ? Status::ok() : r.status());
               });
}

void UddiClient::renew_subscription(const std::string& id, sim::Duration ttl,
                                    DoneFn done) {
  client_.call(registry_, path_, kNs, "renewEventSub",
               {{"id", Value(id)},
                {"ttl", Value(static_cast<std::int64_t>(ttl))}},
               [done = std::move(done)](Result<Value> r) {
                 done(r.is_ok() ? Status::ok() : r.status());
               });
}

void UddiClient::remove_subscription(const std::string& id, DoneFn done) {
  client_.call(registry_, path_, kNs, "unsubscribeEvent",
               {{"id", Value(id)}},
               [done = std::move(done)](Result<Value> r) {
                 done(r.is_ok() ? Status::ok() : r.status());
               });
}

void UddiClient::list_subscriptions(SubscriptionsFn done) {
  client_.call(registry_, path_, kNs, "listEventSubs", {},
               [done = std::move(done)](Result<Value> r) {
                 if (!r.is_ok()) {
                   done(r.status());
                   return;
                 }
                 if (!r.value().is_list()) {
                   done(protocol_error("listEventSubs result is not an array"));
                   return;
                 }
                 std::vector<EventSubscription> out;
                 for (const auto& item : r.value().as_list()) {
                   auto s = subscription_from_value(item);
                   if (!s.is_ok()) {
                     done(s.status());
                     return;
                   }
                   out.push_back(std::move(s).take());
                 }
                 done(std::move(out));
               });
}

}  // namespace hcm::soap
