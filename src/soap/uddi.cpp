#include "soap/uddi.hpp"

#include <atomic>

#include "store/vsr_store.hpp"

namespace hcm::soap {

namespace {
constexpr const char* kNs = "urn:hcm:uddi";

// Registry incarnations get distinct epochs so a client cursor from a
// previous incarnation is detectably stale. A process-local counter is
// deterministic (same scenario -> same epochs), unlike wall time.
// Atomic so concurrent registry construction across future shard
// workers still yields unique epochs (allocation order stays
// deterministic in the single-threaded sim).
std::atomic<std::uint64_t> g_next_epoch{1};

const Value& param(const NamedValues& params, const std::string& name) {
  static const Value kNull;
  for (const auto& [k, v] : params) {
    if (k == name) return v;
  }
  return kNull;
}

std::uint64_t uint_param(const NamedValues& params, const std::string& name) {
  const auto& v = param(params, name);
  return v.is_int() && v.as_int() > 0 ? static_cast<std::uint64_t>(v.as_int())
                                      : 0;
}

const char* kind_name(RegistryChange::Kind k) {
  return k == RegistryChange::Kind::kUpsert ? "upsert" : "remove";
}
}  // namespace

std::string registry_fingerprint(
    const std::map<std::string, std::string>& digest_by_name) {
  // FNV-1a over the sorted (name, digest) pairs with NUL separators —
  // the map iteration order is already sorted, so registry and client
  // fold identical byte streams for identical sets.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::string_view s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 0x100000001b3ULL;
    }
    h ^= 0;
    h *= 0x100000001b3ULL;
  };
  for (const auto& [name, digest] : digest_by_name) {
    mix(name);
    mix(digest);
  }
  char buf[17];
  static const char* hex = "0123456789abcdef";
  for (int i = 0; i < 16; ++i) {
    buf[i] = hex[(h >> ((15 - i) * 4)) & 0xf];
  }
  buf[16] = '\0';
  return std::string(buf);
}

UddiRegistry::UddiRegistry(http::HttpServer& http_server,
                           sim::Scheduler& sched, std::string path,
                           std::size_t journal_capacity,
                           store::VsrStore* store)
    : sched_(sched),
      service_(http_server, std::move(path)),
      epoch_(g_next_epoch.fetch_add(1)),
      journal_capacity_(journal_capacity),
      store_(store) {
  if (store_ != nullptr) adopt_store_state();
  service_.register_method(
      "publish", [this](const NamedValues& params, CallResultFn done) {
        const auto& name = param(params, "name");
        const auto& wsdl = param(params, "wsdl");
        if (!name.is_string() || name.as_string().empty() ||
            !wsdl.is_string()) {
          done(invalid_argument("publish requires name and wsdl"));
          return;
        }
        RegistryEntry e;
        e.name = name.as_string();
        e.category = param(params, "category").is_string()
                         ? param(params, "category").as_string()
                         : "";
        e.origin = param(params, "origin").is_string()
                       ? param(params, "origin").as_string()
                       : "";
        e.wsdl = wsdl.as_string();
        e.digest = wsdl_digest(e.wsdl);
        auto ttl = param(params, "ttl");
        e.expires_at =
            ttl.is_int() && ttl.as_int() > 0 ? sched_.now() + ttl.as_int() : 0;
        auto it = entries_.find(e.name);
        const bool unchanged =
            it != entries_.end() && it->second.expires_at != 0 &&
            it->second.expires_at > sched_.now() &&
            it->second.digest == e.digest &&
            it->second.category == e.category && it->second.origin == e.origin;
        if (unchanged) {
          // Same content republished before its lease lapsed: a lease
          // renewal, invisible to synchronizing clients — no journal
          // record, no seq bump. The store still learns the new expiry
          // (a kTouch record) so replay restores live leases.
          it->second.expires_at = e.expires_at;
          ++renewals_;
          store_touch(e.name, e.expires_at);
        } else {
          journal_append(RegistryChange::Kind::kUpsert, e.name, e.digest);
          store_upsert(e);
          entries_[e.name] = std::move(e);
          ++publishes_;
        }
        store_commit();
        done(Value(true));
      });

  service_.register_method(
      "unpublish", [this](const NamedValues& params, CallResultFn done) {
        const auto& name = param(params, "name");
        if (!name.is_string()) {
          done(invalid_argument("unpublish requires name"));
          return;
        }
        auto it = entries_.find(name.as_string());
        if (it == entries_.end()) {
          done(Value(false));
          return;
        }
        journal_append(RegistryChange::Kind::kRemove, it->first,
                       it->second.digest);
        store_remove(it->first, it->second.digest);
        entries_.erase(it);
        store_commit();
        done(Value(true));
      });

  service_.register_method(
      "renew", [this](const NamedValues& params, CallResultFn done) {
        prune();
        const auto& name = param(params, "name");
        const auto& digest = param(params, "digest");
        if (!name.is_string() || !digest.is_string()) {
          done(invalid_argument("renew requires name and digest"));
          return;
        }
        auto it = entries_.find(name.as_string());
        if (it == entries_.end()) {
          done(not_found("no registry entry: " + name.as_string()));
          return;
        }
        if (it->second.digest != digest.as_string()) {
          // The caller's document differs from what the registry holds;
          // a body-less renewal would advertise stale content.
          done(invalid_argument("digest mismatch for " + name.as_string() +
                                " — republish the full entry"));
          return;
        }
        auto ttl = param(params, "ttl");
        it->second.expires_at =
            ttl.is_int() && ttl.as_int() > 0 ? sched_.now() + ttl.as_int() : 0;
        ++renewals_;
        store_touch(it->first, it->second.expires_at);
        store_commit();
        done(Value(true));
      });

  service_.register_method(
      "renewOrigin", [this](const NamedValues& params, CallResultFn done) {
        prune();
        const auto& origin = param(params, "origin");
        const auto& fp = param(params, "fingerprint");
        if (!origin.is_string() || origin.as_string().empty() ||
            !fp.is_string()) {
          done(invalid_argument("renewOrigin requires origin and fingerprint"));
          return;
        }
        std::map<std::string, std::string> digest_by_name;
        for (const auto& [name, e] : entries_) {
          if (e.origin == origin.as_string()) digest_by_name[name] = e.digest;
        }
        if (digest_by_name.empty()) {
          done(not_found("origin has no entries: " + origin.as_string()));
          return;
        }
        if (registry_fingerprint(digest_by_name) != fp.as_string()) {
          done(invalid_argument("fingerprint mismatch for origin " +
                                origin.as_string() +
                                " — republish the changed entries"));
          return;
        }
        auto ttl = param(params, "ttl");
        const sim::SimTime expires =
            ttl.is_int() && ttl.as_int() > 0 ? sched_.now() + ttl.as_int() : 0;
        for (auto& [name, e] : entries_) {
          if (e.origin == origin.as_string()) {
            e.expires_at = expires;
            store_touch(name, expires);
          }
        }
        store_commit();
        renewals_ += digest_by_name.size();
        done(Value(static_cast<std::int64_t>(digest_by_name.size())));
      });

  service_.register_method(
      "changesSince", [this](const NamedValues& params, CallResultFn done) {
        handle_changes_since(params, std::move(done));
      });

  service_.register_method(
      "find", [this](const NamedValues& params, CallResultFn done) {
        prune();
        const auto& category = param(params, "category");
        ValueList out;
        for (const auto& [name, e] : entries_) {
          if (category.is_string() && !category.as_string().empty() &&
              e.category != category.as_string()) {
            continue;
          }
          out.push_back(entry_to_value(e));
        }
        done(Value(std::move(out)));
      });

  service_.register_method(
      "lookup", [this](const NamedValues& params, CallResultFn done) {
        prune();
        const auto& name = param(params, "name");
        if (!name.is_string()) {
          done(invalid_argument("lookup requires name"));
          return;
        }
        auto it = entries_.find(name.as_string());
        if (it == entries_.end()) {
          done(not_found("no registry entry: " + name.as_string()));
          return;
        }
        done(entry_to_value(it->second));
      });

  service_.register_method(
      "list", [this](const NamedValues&, CallResultFn done) {
        prune();
        ValueList out;
        for (const auto& [name, e] : entries_) out.push_back(entry_to_value(e));
        done(Value(std::move(out)));
      });

  service_.register_method(
      "subscribeEvent", [this](const NamedValues& params, CallResultFn done) {
        const auto& id = param(params, "id");
        const auto& service = param(params, "service");
        if (!id.is_string() || id.as_string().empty() || !service.is_string()) {
          done(invalid_argument("subscribeEvent requires id and service"));
          return;
        }
        EventSubscription s;
        s.id = id.as_string();
        s.service = service.as_string();
        s.event = param(params, "event").is_string()
                      ? param(params, "event").as_string()
                      : "";
        s.subscriber = param(params, "subscriber").is_string()
                           ? param(params, "subscriber").as_string()
                           : "";
        auto ttl = param(params, "ttl");
        s.expires_at =
            ttl.is_int() && ttl.as_int() > 0 ? sched_.now() + ttl.as_int() : 0;
        subscriptions_[s.id] = std::move(s);
        done(Value(true));
      });

  service_.register_method(
      "renewEventSub", [this](const NamedValues& params, CallResultFn done) {
        prune_subscriptions();
        const auto& id = param(params, "id");
        if (!id.is_string()) {
          done(invalid_argument("renewEventSub requires id"));
          return;
        }
        auto it = subscriptions_.find(id.as_string());
        if (it == subscriptions_.end()) {
          done(not_found("no event subscription: " + id.as_string()));
          return;
        }
        auto ttl = param(params, "ttl");
        it->second.expires_at =
            ttl.is_int() && ttl.as_int() > 0 ? sched_.now() + ttl.as_int() : 0;
        done(Value(true));
      });

  service_.register_method(
      "unsubscribeEvent",
      [this](const NamedValues& params, CallResultFn done) {
        const auto& id = param(params, "id");
        if (!id.is_string()) {
          done(invalid_argument("unsubscribeEvent requires id"));
          return;
        }
        done(Value(subscriptions_.erase(id.as_string()) > 0));
      });

  service_.register_method(
      "listEventSubs", [this](const NamedValues&, CallResultFn done) {
        prune_subscriptions();
        ValueList out;
        for (const auto& [id, s] : subscriptions_) {
          out.push_back(subscription_to_value(s));
        }
        done(Value(std::move(out)));
      });
}

void UddiRegistry::adopt_store_state() {
  const store::RecoveredState& rec = store_->recovered();
  if (rec.fresh) {
    // Brand-new store directory: persist this incarnation's epoch so a
    // restart can prove it is resuming the same one.
    store_->record_epoch(epoch_);
    store_commit();
    return;
  }
  bool lost = rec.lost_tail;
  for (const store::UpsertRecord& u : rec.entries) {
    auto body = store_->body_for(u.digest);
    if (!body.is_ok()) {
      // A live entry whose body no longer resolves is itself lost
      // state: drop it and force the resync path below.
      lost = true;
      continue;
    }
    RegistryEntry e;
    e.name = u.name;
    e.category = u.category;
    e.origin = u.origin;
    e.wsdl = std::move(body).take();
    e.digest = u.digest;
    e.expires_at = u.expires_at;
    entries_[e.name] = std::move(e);
  }
  store_recovered_entries_ = entries_.size();
  seq_ = rec.last_seq;
  compacted_through_ = rec.compacted_through;
  journal_.clear();
  for (const store::JournalEntry& j : rec.journal) {
    journal_.push_back(JournalRecord{j.seq,
                                     j.remove ? RegistryChange::Kind::kRemove
                                              : RegistryChange::Kind::kUpsert,
                                     j.name, j.digest});
  }
  if (!lost) {
    // Clean replay: resume the exact incarnation clients hold cursors
    // for — same epoch, same seq, same resync window. Warm cursors stay
    // valid; restart costs zero snapshot resyncs.
    epoch_ = rec.epoch;
  } else {
    // Committed records were truncated away (torn tail / bit rot):
    // clients may hold state the store no longer has, so this must look
    // like a restart. They degrade to the ordinary snapshot fallback.
    epoch_ = rec.epoch + 1;
    store_->record_epoch(epoch_);
    store_commit();
  }
  // Future fresh incarnations in this process must not collide with an
  // epoch adopted from disk.
  std::uint64_t next = g_next_epoch.load();
  while (next <= epoch_ &&
         !g_next_epoch.compare_exchange_weak(next, epoch_ + 1)) {
  }
}

void UddiRegistry::store_upsert(const RegistryEntry& e) {
  if (store_ == nullptr) return;
  store_->record_upsert(store::UpsertRecord{seq_, e.name, e.category,
                                            e.origin, e.digest, e.expires_at},
                        e.wsdl);
}

void UddiRegistry::store_remove(const std::string& name,
                                const std::string& digest) {
  if (store_ == nullptr) return;
  store_->record_remove(store::RemoveRecord{seq_, name, digest});
}

void UddiRegistry::store_touch(const std::string& name,
                               sim::SimTime expires_at) {
  if (store_ == nullptr) return;
  store_->record_touch(name, expires_at);
}

void UddiRegistry::store_commit() {
  if (store_ == nullptr) return;
  if (!store_->commit().is_ok()) ++store_errors_;
}

void UddiRegistry::journal_append(RegistryChange::Kind kind,
                                  const std::string& name,
                                  const std::string& digest) {
  journal_.push_back(JournalRecord{++seq_, kind, name, digest});
  while (journal_.size() > journal_capacity_) {
    compacted_through_ = journal_.front().seq;
    journal_.pop_front();
  }
}

void UddiRegistry::handle_changes_since(const NamedValues& params,
                                        CallResultFn done) {
  prune();  // lease expiries become journal records before we answer
  const std::uint64_t req_epoch = uint_param(params, "epoch");
  const std::uint64_t req_cursor = uint_param(params, "cursor");
  const bool snapshot = param(params, "snapshot").is_bool() &&
                        param(params, "snapshot").as_bool();
  std::set<std::string> known;
  if (param(params, "known").is_list()) {
    for (const auto& d : param(params, "known").as_list()) {
      if (d.is_string()) known.insert(d.as_string());
    }
  }

  ValueMap out;
  out["epoch"] = Value(static_cast<std::int64_t>(epoch_));
  out["cursor"] = Value(static_cast<std::int64_t>(seq_));
  out["resync"] = Value(false);

  if (!snapshot && (req_epoch != epoch_ || req_cursor < compacted_through_)) {
    // Stale cursor (restart, or the journal compacted past it). Answer
    // with a cheap resync signal instead of an unsolicited snapshot, so
    // the client can retry with its known-digest list and receive a
    // body-elided snapshot.
    ++resyncs_required_;
    out["full"] = Value(false);
    out["resync"] = Value(true);
    out["changes"] = Value(ValueList{});
    done(Value(std::move(out)));
    return;
  }

  ValueList changes;
  if (snapshot) {
    ++full_syncs_;
    out["full"] = Value(true);
    for (auto& [name, e] : entries_) {
      changes.push_back(change_to_value(e, known, /*allow_elide=*/true));
    }
  } else {
    ++delta_syncs_;
    out["full"] = Value(false);
    // Names touched since the cursor; the response carries each name's
    // *current* state (upsert if live, remove otherwise), so replay
    // order inside the window is irrelevant.
    std::set<std::string> touched;
    for (const auto& rec : journal_) {
      if (rec.seq > req_cursor) touched.insert(rec.name);
    }
    for (const auto& name : touched) {
      auto it = entries_.find(name);
      if (it == entries_.end()) {
        ValueMap m;
        m["kind"] = Value(std::string(kind_name(RegistryChange::Kind::kRemove)));
        m["name"] = Value(name);
        changes.push_back(Value(std::move(m)));
      } else {
        changes.push_back(
            change_to_value(it->second, known, /*allow_elide=*/true));
      }
    }
  }
  out["changes"] = Value(std::move(changes));
  done(Value(std::move(out)));
}

void UddiRegistry::prune() {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.expires_at != 0 && it->second.expires_at <= sched_.now()) {
      // Expiry is a state change clients must learn about: journal it
      // exactly like an unpublish.
      journal_append(RegistryChange::Kind::kRemove, it->first,
                     it->second.digest);
      store_remove(it->first, it->second.digest);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  // Expiries can surface inside read handlers too; the commit no-ops
  // when nothing was staged.
  store_commit();
}

void UddiRegistry::prune_subscriptions() {
  for (auto it = subscriptions_.begin(); it != subscriptions_.end();) {
    if (it->second.expires_at != 0 && it->second.expires_at <= sched_.now()) {
      it = subscriptions_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t UddiRegistry::size() const {
  std::size_t n = 0;
  for (const auto& [name, e] : entries_) {
    if (e.expires_at == 0 || e.expires_at > sched_.now()) ++n;
  }
  return n;
}

std::size_t UddiRegistry::subscription_count() const {
  std::size_t n = 0;
  for (const auto& [id, s] : subscriptions_) {
    if (s.expires_at == 0 || s.expires_at > sched_.now()) ++n;
  }
  return n;
}

Value UddiRegistry::entry_to_value(const RegistryEntry& e) const {
  ValueMap m;
  m["name"] = e.name;
  m["category"] = e.category;
  m["origin"] = e.origin;
  m["wsdl"] = e.wsdl;
  m["digest"] = e.digest;
  return Value(std::move(m));
}

Value UddiRegistry::change_to_value(const RegistryEntry& e,
                                    const std::set<std::string>& known,
                                    bool allow_elide) {
  ValueMap m;
  m["kind"] = Value(std::string(kind_name(RegistryChange::Kind::kUpsert)));
  m["name"] = e.name;
  m["category"] = e.category;
  m["origin"] = e.origin;
  m["digest"] = e.digest;
  if (allow_elide && known.count(e.digest) != 0) {
    ++wsdl_bodies_elided_;  // caller proved it holds this content
  } else {
    m["wsdl"] = e.wsdl;
    ++wsdl_bodies_sent_;
  }
  return Value(std::move(m));
}

Value UddiRegistry::subscription_to_value(const EventSubscription& s) const {
  ValueMap m;
  m["id"] = s.id;
  m["service"] = s.service;
  m["event"] = s.event;
  m["subscriber"] = s.subscriber;
  return Value(std::move(m));
}

Result<RegistryEntry> UddiClient::entry_from_value(const Value& v) {
  if (!v.is_map()) return protocol_error("registry entry is not a struct");
  RegistryEntry e;
  e.name = v.at("name").is_string() ? v.at("name").as_string() : "";
  e.category = v.at("category").is_string() ? v.at("category").as_string() : "";
  e.origin = v.at("origin").is_string() ? v.at("origin").as_string() : "";
  e.wsdl = v.at("wsdl").is_string() ? v.at("wsdl").as_string() : "";
  e.digest = v.at("digest").is_string() ? v.at("digest").as_string() : "";
  if (e.name.empty()) return protocol_error("registry entry missing name");
  return e;
}

void UddiClient::publish(const RegistryEntry& entry, sim::Duration ttl,
                         DoneFn done) {
  NamedValues params{{"name", Value(entry.name)},
                     {"category", Value(entry.category)},
                     {"origin", Value(entry.origin)},
                     {"wsdl", Value(entry.wsdl)},
                     {"ttl", Value(static_cast<std::int64_t>(ttl))}};
  client_.call(registry_, path_, kNs, "publish", params,
               [done = std::move(done)](Result<Value> r) {
                 done(r.is_ok() ? Status::ok() : r.status());
               });
}

void UddiClient::unpublish(const std::string& name, DoneFn done) {
  client_.call(registry_, path_, kNs, "unpublish", {{"name", Value(name)}},
               [done = std::move(done)](Result<Value> r) {
                 done(r.is_ok() ? Status::ok() : r.status());
               });
}

void UddiClient::renew(const std::string& name, const std::string& digest,
                       sim::Duration ttl, DoneFn done) {
  client_.call(registry_, path_, kNs, "renew",
               {{"name", Value(name)},
                {"digest", Value(digest)},
                {"ttl", Value(static_cast<std::int64_t>(ttl))}},
               [done = std::move(done)](Result<Value> r) {
                 done(r.is_ok() ? Status::ok() : r.status());
               });
}

void UddiClient::renew_origin(const std::string& origin,
                              const std::string& fingerprint,
                              sim::Duration ttl, DoneFn done) {
  client_.call(registry_, path_, kNs, "renewOrigin",
               {{"origin", Value(origin)},
                {"fingerprint", Value(fingerprint)},
                {"ttl", Value(static_cast<std::int64_t>(ttl))}},
               [done = std::move(done)](Result<Value> r) {
                 done(r.is_ok() ? Status::ok() : r.status());
               });
}

Result<RegistryDelta> UddiClient::delta_from_value(const Value& v) {
  if (!v.is_map()) return protocol_error("changesSince result is not a struct");
  RegistryDelta delta;
  delta.full = v.at("full").is_bool() && v.at("full").as_bool();
  delta.epoch = v.at("epoch").is_int()
                    ? static_cast<std::uint64_t>(v.at("epoch").as_int())
                    : 0;
  delta.cursor = v.at("cursor").is_int()
                     ? static_cast<std::uint64_t>(v.at("cursor").as_int())
                     : 0;
  if (!v.at("changes").is_list()) {
    return protocol_error("changesSince result has no change list");
  }
  for (const auto& item : v.at("changes").as_list()) {
    if (!item.is_map()) return protocol_error("registry change is not a struct");
    RegistryChange c;
    const std::string kind =
        item.at("kind").is_string() ? item.at("kind").as_string() : "";
    if (kind == "upsert") {
      c.kind = RegistryChange::Kind::kUpsert;
    } else if (kind == "remove") {
      c.kind = RegistryChange::Kind::kRemove;
    } else {
      return protocol_error("registry change has unknown kind: " + kind);
    }
    c.name = item.at("name").is_string() ? item.at("name").as_string() : "";
    if (c.name.empty()) return protocol_error("registry change missing name");
    c.category =
        item.at("category").is_string() ? item.at("category").as_string() : "";
    c.origin =
        item.at("origin").is_string() ? item.at("origin").as_string() : "";
    c.digest =
        item.at("digest").is_string() ? item.at("digest").as_string() : "";
    c.wsdl = item.at("wsdl").is_string() ? item.at("wsdl").as_string() : "";
    if (c.kind == RegistryChange::Kind::kUpsert && c.digest.empty()) {
      return protocol_error("upsert change missing digest: " + c.name);
    }
    delta.changes.push_back(std::move(c));
  }
  return delta;
}

void UddiClient::changes_since(DeltaFn done) {
  // First contact (or after reset_cursor): ask for a snapshot outright,
  // offering the digests already cached so bodies can be elided.
  request_changes(cursor_ == 0 && epoch_ == 0, std::move(done));
}

void UddiClient::request_changes(bool snapshot, DeltaFn done) {
  NamedValues params{
      {"epoch", Value(static_cast<std::int64_t>(epoch_))},
      {"cursor", Value(static_cast<std::int64_t>(cursor_))},
      {"snapshot", Value(snapshot)}};
  if (snapshot) {
    // The known-digest list rides only on snapshot requests: steady-
    // state delta requests stay O(1) on the wire regardless of how many
    // descriptions this client caches.
    ValueList known;
    for (const auto& [digest, wsdl] : wsdl_by_digest_) {
      known.push_back(Value(digest));
    }
    params.push_back({"known", Value(std::move(known))});
  }
  client_.call(
      registry_, path_, kNs, "changesSince", params,
      [this, snapshot, done = std::move(done)](Result<Value> r) mutable {
        if (!r.is_ok()) {
          done(r.status());
          return;
        }
        const Value& v = r.value();
        if (v.is_map() && v.at("resync").is_bool() &&
            v.at("resync").as_bool()) {
          if (snapshot) {
            done(protocol_error("registry demanded resync of a snapshot"));
            return;
          }
          // Our cursor predates the journal horizon (compaction) or the
          // registry restarted (fresh epoch): fall back to a snapshot.
          request_changes(true, std::move(done));
          return;
        }
        auto parsed = delta_from_value(v);
        if (!parsed.is_ok()) {
          done(parsed.status());
          return;
        }
        RegistryDelta delta = std::move(parsed).take();
        for (auto& c : delta.changes) {
          if (c.kind != RegistryChange::Kind::kUpsert) continue;
          if (!c.wsdl.empty()) {
            wsdl_by_digest_[c.digest] = c.wsdl;
          } else {
            auto it = wsdl_by_digest_.find(c.digest);
            if (it == wsdl_by_digest_.end()) {
              done(protocol_error("registry elided a digest we never saw: " +
                                  c.digest));
              return;
            }
            c.wsdl = it->second;
          }
        }
        if (delta.full) {
          // Snapshot = the complete live set; cached bodies no snapshot
          // entry references are garbage. Collecting here bounds the
          // cache by the registry's live size.
          std::set<std::string> live;
          for (const auto& c : delta.changes) live.insert(c.digest);
          for (auto it = wsdl_by_digest_.begin();
               it != wsdl_by_digest_.end();) {
            it = live.count(it->first) == 0 ? wsdl_by_digest_.erase(it)
                                            : std::next(it);
          }
          ++full_syncs_;
        } else {
          ++delta_syncs_;
        }
        epoch_ = delta.epoch;
        cursor_ = delta.cursor;
        done(std::move(delta));
      });
}

void UddiClient::find_by_category(const std::string& category,
                                  EntriesFn done) {
  client_.call(registry_, path_, kNs, "find",
               {{"category", Value(category)}},
               [done = std::move(done)](Result<Value> r) {
                 if (!r.is_ok()) {
                   done(r.status());
                   return;
                 }
                 if (!r.value().is_list()) {
                   done(protocol_error("find result is not an array"));
                   return;
                 }
                 std::vector<RegistryEntry> out;
                 for (const auto& item : r.value().as_list()) {
                   auto e = entry_from_value(item);
                   if (!e.is_ok()) {
                     done(e.status());
                     return;
                   }
                   out.push_back(std::move(e).take());
                 }
                 done(std::move(out));
               });
}

void UddiClient::lookup(const std::string& name, EntryFn done) {
  client_.call(registry_, path_, kNs, "lookup", {{"name", Value(name)}},
               [done = std::move(done)](Result<Value> r) {
                 if (!r.is_ok()) {
                   done(r.status());
                   return;
                 }
                 done(entry_from_value(r.value()));
               });
}

void UddiClient::list_all(EntriesFn done) { find_by_category("", std::move(done)); }

Result<EventSubscription> UddiClient::subscription_from_value(const Value& v) {
  if (!v.is_map()) return protocol_error("event subscription is not a struct");
  EventSubscription s;
  s.id = v.at("id").is_string() ? v.at("id").as_string() : "";
  s.service = v.at("service").is_string() ? v.at("service").as_string() : "";
  s.event = v.at("event").is_string() ? v.at("event").as_string() : "";
  s.subscriber =
      v.at("subscriber").is_string() ? v.at("subscriber").as_string() : "";
  if (s.id.empty()) return protocol_error("event subscription missing id");
  return s;
}

void UddiClient::put_subscription(const EventSubscription& sub,
                                  sim::Duration ttl, DoneFn done) {
  NamedValues params{{"id", Value(sub.id)},
                     {"service", Value(sub.service)},
                     {"event", Value(sub.event)},
                     {"subscriber", Value(sub.subscriber)},
                     {"ttl", Value(static_cast<std::int64_t>(ttl))}};
  client_.call(registry_, path_, kNs, "subscribeEvent", params,
               [done = std::move(done)](Result<Value> r) {
                 done(r.is_ok() ? Status::ok() : r.status());
               });
}

void UddiClient::renew_subscription(const std::string& id, sim::Duration ttl,
                                    DoneFn done) {
  client_.call(registry_, path_, kNs, "renewEventSub",
               {{"id", Value(id)},
                {"ttl", Value(static_cast<std::int64_t>(ttl))}},
               [done = std::move(done)](Result<Value> r) {
                 done(r.is_ok() ? Status::ok() : r.status());
               });
}

void UddiClient::remove_subscription(const std::string& id, DoneFn done) {
  client_.call(registry_, path_, kNs, "unsubscribeEvent",
               {{"id", Value(id)}},
               [done = std::move(done)](Result<Value> r) {
                 done(r.is_ok() ? Status::ok() : r.status());
               });
}

void UddiClient::list_subscriptions(SubscriptionsFn done) {
  client_.call(registry_, path_, kNs, "listEventSubs", {},
               [done = std::move(done)](Result<Value> r) {
                 if (!r.is_ok()) {
                   done(r.status());
                   return;
                 }
                 if (!r.value().is_list()) {
                   done(protocol_error("listEventSubs result is not an array"));
                   return;
                 }
                 std::vector<EventSubscription> out;
                 for (const auto& item : r.value().as_list()) {
                   auto s = subscription_from_value(item);
                   if (!s.is_ok()) {
                     done(s.status());
                     return;
                   }
                   out.push_back(std::move(s).take());
                 }
                 done(std::move(out));
               });
}

}  // namespace hcm::soap
