#include "soap/value_xml.hpp"

#include <charconv>

#include "common/base64.hpp"
#include "common/strings.hpp"

namespace hcm::soap {

const char* xsi_type_for(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "xsd:anyType";
    case ValueType::kBool: return "xsd:boolean";
    case ValueType::kInt: return "xsd:long";
    case ValueType::kDouble: return "xsd:double";
    case ValueType::kString: return "xsd:string";
    case ValueType::kBytes: return "xsd:base64Binary";
    case ValueType::kList: return "SOAP-ENC:Array";
    case ValueType::kMap: return "xsd:struct";
  }
  return "xsd:anyType";
}

ValueType value_type_for_xsi(std::string_view xsi) {
  auto colon = xsi.find(':');
  auto local = colon == std::string_view::npos ? xsi : xsi.substr(colon + 1);
  if (local == "boolean") return ValueType::kBool;
  if (local == "int" || local == "long" || local == "short" ||
      local == "integer" || local == "byte") {
    return ValueType::kInt;
  }
  if (local == "double" || local == "float" || local == "decimal") {
    return ValueType::kDouble;
  }
  if (local == "string") return ValueType::kString;
  if (local == "base64Binary" || local == "base64") return ValueType::kBytes;
  if (local == "Array") return ValueType::kList;
  if (local == "struct" || local == "Struct") return ValueType::kMap;
  return ValueType::kNull;
}

namespace {

// Conservative XML NCName check for map keys. Keys that fail (metric
// names like "http.server#2.requests") are carried in a key attribute
// on an <entry> element instead of as the element name itself.
bool is_xml_name(const std::string& s) {
  if (s.empty()) return false;
  auto name_start = [](char c) {
    return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || c == '_';
  };
  if (!name_start(s[0])) return false;
  for (char c : s) {
    if (!name_start(c) && !(c >= '0' && c <= '9') && c != '-' && c != '.') {
      return false;
    }
  }
  return true;
}

}  // namespace

void value_to_xml(const std::string& name, const Value& v,
                  xml::Element& parent) {
  auto& elem = parent.add_child(name);
  elem.set_attr("xsi:type", xsi_type_for(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      elem.set_attr("xsi:nil", "true");
      break;
    case ValueType::kBool:
      elem.set_text(v.as_bool() ? "true" : "false");
      break;
    case ValueType::kInt:
      elem.set_text(std::to_string(v.as_int()));
      break;
    case ValueType::kDouble: {
      char buf[64];
      auto [end, ec] =
          std::to_chars(buf, buf + sizeof(buf), v.as_double(),
                        std::chars_format::general, 17);
      elem.set_text(std::string(buf, end));
      break;
    }
    case ValueType::kString:
      elem.set_text(v.as_string());
      break;
    case ValueType::kBytes:
      elem.set_text(base64_encode(v.as_bytes()));
      break;
    case ValueType::kList:
      for (const auto& item : v.as_list()) value_to_xml("item", item, elem);
      break;
    case ValueType::kMap:
      for (const auto& [k, item] : v.as_map()) {
        if (is_xml_name(k)) {
          value_to_xml(k, item, elem);
        } else {
          value_to_xml("entry", item, elem);
          elem.children().back()->set_attr("key", k);
        }
      }
      break;
  }
}

namespace {

// Shared with value_write below; `key` is the deferred key="..."
// attribute of a map <entry> (attributes must precede content when
// streaming, where the tree encoder could set it after the fact).
void value_write_keyed(std::string_view name, const Value& v, xml::Writer& w,
                       const std::string* key) {
  w.start(name).attr("xsi:type", xsi_type_for(v.type()));
  if (v.type() == ValueType::kNull) w.attr("xsi:nil", "true");
  if (key != nullptr) w.attr("key", *key);
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      w.text(v.as_bool() ? "true" : "false");
      break;
    case ValueType::kInt: {
      char buf[24];
      auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v.as_int());
      w.text(std::string_view(buf, static_cast<std::size_t>(end - buf)));
      break;
    }
    case ValueType::kDouble: {
      char buf[64];
      auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v.as_double(),
                                     std::chars_format::general, 17);
      w.text(std::string_view(buf, static_cast<std::size_t>(end - buf)));
      break;
    }
    case ValueType::kString:
      w.text(v.as_string());
      break;
    case ValueType::kBytes:
      w.text(base64_encode(v.as_bytes()));
      break;
    case ValueType::kList:
      for (const auto& item : v.as_list()) {
        value_write_keyed("item", item, w, nullptr);
      }
      break;
    case ValueType::kMap:
      for (const auto& [k, item] : v.as_map()) {
        if (is_xml_name(k)) {
          value_write_keyed(k, item, w, nullptr);
        } else {
          value_write_keyed("entry", item, w, &k);
        }
      }
      break;
  }
  w.end();
}

}  // namespace

void value_write(std::string_view name, const Value& v, xml::Writer& w) {
  value_write_keyed(name, v, w, nullptr);
}

Result<Value> value_from_xml(const xml::Element& elem) {
  if (const auto* nil = elem.attr_local("nil");
      nil != nullptr && (*nil == "true" || *nil == "1")) {
    return Value();
  }
  ValueType type = ValueType::kNull;
  if (const auto* xsi = elem.attr_local("type")) {
    type = value_type_for_xsi(*xsi);
  }
  if (type == ValueType::kNull) {
    // Untyped: infer structure.
    if (!elem.children().empty()) {
      type = ValueType::kMap;
    } else if (!elem.text().empty()) {
      type = ValueType::kString;
    } else {
      return Value();
    }
  }
  switch (type) {
    case ValueType::kBool: {
      const std::string text = elem.text();
      auto t = trim(text);
      if (t == "true" || t == "1") return Value(true);
      if (t == "false" || t == "0") return Value(false);
      return protocol_error("bad boolean: " + std::string(t));
    }
    case ValueType::kInt: {
      const std::string text = elem.text();
      auto t = trim(text);
      std::int64_t out = 0;
      auto [p, ec] = std::from_chars(t.data(), t.data() + t.size(), out);
      if (ec != std::errc{} || p != t.data() + t.size()) {
        return protocol_error("bad integer: " + std::string(t));
      }
      return Value(out);
    }
    case ValueType::kDouble: {
      const std::string text = elem.text();
      auto t = trim(text);
      double out = 0;
      auto [p, ec] = std::from_chars(t.data(), t.data() + t.size(), out);
      if (ec != std::errc{} || p != t.data() + t.size()) {
        return protocol_error("bad double: " + std::string(t));
      }
      return Value(out);
    }
    case ValueType::kString:
      return Value(elem.text());
    case ValueType::kBytes: {
      auto bytes = base64_decode(elem.text());
      if (!bytes.is_ok()) return bytes.status();
      return Value(std::move(bytes).take());
    }
    case ValueType::kList: {
      ValueList list;
      for (const auto& c : elem.children()) {
        auto item = value_from_xml(*c);
        if (!item.is_ok()) return item.status();
        list.push_back(std::move(item).take());
      }
      return Value(std::move(list));
    }
    case ValueType::kMap: {
      ValueMap map;
      for (const auto& c : elem.children()) {
        auto item = value_from_xml(*c);
        if (!item.is_ok()) return item.status();
        std::string key(c->local_name());
        if (key == "entry") {
          if (const auto* k = c->attr("key")) key = *k;
        }
        map.emplace(std::move(key), std::move(item).take());
      }
      return Value(std::move(map));
    }
    case ValueType::kNull:
      return Value();
  }
  return protocol_error("unhandled value type");
}

Result<Value> value_from_pull(xml::PullParser& p) {
  // Typing attributes must be captured before any event advances the
  // parser past the start tag.
  std::string scratch;
  bool is_nil = false;
  if (const auto* nil = p.find_attr_local("nil")) {
    auto v = xml::PullParser::decode(nil->raw_value, scratch);
    if (!v.is_ok()) return v.status();
    is_nil = v.value() == "true" || v.value() == "1";
  }
  ValueType type = ValueType::kNull;
  bool typed = false;
  if (const auto* xsi = p.find_attr_local("type")) {
    scratch.clear();
    auto v = xml::PullParser::decode(xsi->raw_value, scratch);
    if (!v.is_ok()) return v.status();
    type = value_type_for_xsi(v.value());
    typed = type != ValueType::kNull;
  }
  const bool scalar_typed =
      typed && type != ValueType::kList && type != ValueType::kMap;

  // Consume content up to the matching end tag: direct text runs
  // accumulate (whitespace-only runs are formatting noise, as in the
  // tree parser), child elements decode in order for lists/maps and are
  // skipped for scalars (the tree decoder never descended into them).
  std::string text;
  std::vector<std::pair<std::string, Value>> kids;
  while (true) {
    auto ev = p.next();
    if (!ev.is_ok()) return ev.status();
    using Event = xml::PullParser::Event;
    if (ev.value() == Event::kEnd) break;
    if (ev.value() == Event::kText) {
      if (p.text_is_cdata()) {
        text.append(p.raw_text());
      } else if (!p.text_is_ws()) {
        scratch.clear();
        auto t = p.text(scratch);
        if (!t.is_ok()) return t.status();
        text.append(t.value());
      }
      continue;
    }
    if (ev.value() == Event::kEof) {
      return protocol_error("unexpected end of document");
    }
    if (is_nil || scalar_typed) {
      if (auto s = p.skip_element(); !s.is_ok()) return s;
      continue;
    }
    std::string key(p.local_name());
    if (key == "entry") {
      if (const auto* k = p.find_attr("key")) {
        scratch.clear();
        auto kv = xml::PullParser::decode(k->raw_value, scratch);
        if (!kv.is_ok()) return kv.status();
        key.assign(kv.value());
      }
    }
    auto item = value_from_pull(p);
    if (!item.is_ok()) return item.status();
    kids.emplace_back(std::move(key), std::move(item).take());
  }
  if (is_nil) return Value();
  if (!typed) {
    // Untyped: infer structure.
    if (!kids.empty()) {
      type = ValueType::kMap;
    } else if (!text.empty()) {
      type = ValueType::kString;
    } else {
      return Value();
    }
  }
  switch (type) {
    case ValueType::kBool: {
      auto t = trim(text);
      if (t == "true" || t == "1") return Value(true);
      if (t == "false" || t == "0") return Value(false);
      return protocol_error("bad boolean: " + std::string(t));
    }
    case ValueType::kInt: {
      auto t = trim(text);
      std::int64_t out = 0;
      auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), out);
      if (ec != std::errc{} || ptr != t.data() + t.size()) {
        return protocol_error("bad integer: " + std::string(t));
      }
      return Value(out);
    }
    case ValueType::kDouble: {
      auto t = trim(text);
      double out = 0;
      auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), out);
      if (ec != std::errc{} || ptr != t.data() + t.size()) {
        return protocol_error("bad double: " + std::string(t));
      }
      return Value(out);
    }
    case ValueType::kString:
      return Value(std::move(text));
    case ValueType::kBytes: {
      auto bytes = base64_decode(text);
      if (!bytes.is_ok()) return bytes.status();
      return Value(std::move(bytes).take());
    }
    case ValueType::kList: {
      ValueList list;
      list.reserve(kids.size());
      for (auto& [key, item] : kids) list.push_back(std::move(item));
      return Value(std::move(list));
    }
    case ValueType::kMap: {
      ValueMap map;
      for (auto& [key, item] : kids) {
        map.emplace(std::move(key), std::move(item));
      }
      return Value(std::move(map));
    }
    case ValueType::kNull:
      return Value();
  }
  return protocol_error("unhandled value type");
}

}  // namespace hcm::soap
