#include "soap/value_xml.hpp"

#include <charconv>

#include "common/base64.hpp"
#include "common/strings.hpp"

namespace hcm::soap {

const char* xsi_type_for(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "xsd:anyType";
    case ValueType::kBool: return "xsd:boolean";
    case ValueType::kInt: return "xsd:long";
    case ValueType::kDouble: return "xsd:double";
    case ValueType::kString: return "xsd:string";
    case ValueType::kBytes: return "xsd:base64Binary";
    case ValueType::kList: return "SOAP-ENC:Array";
    case ValueType::kMap: return "xsd:struct";
  }
  return "xsd:anyType";
}

ValueType value_type_for_xsi(std::string_view xsi) {
  auto colon = xsi.find(':');
  auto local = colon == std::string_view::npos ? xsi : xsi.substr(colon + 1);
  if (local == "boolean") return ValueType::kBool;
  if (local == "int" || local == "long" || local == "short" ||
      local == "integer" || local == "byte") {
    return ValueType::kInt;
  }
  if (local == "double" || local == "float" || local == "decimal") {
    return ValueType::kDouble;
  }
  if (local == "string") return ValueType::kString;
  if (local == "base64Binary" || local == "base64") return ValueType::kBytes;
  if (local == "Array") return ValueType::kList;
  if (local == "struct" || local == "Struct") return ValueType::kMap;
  return ValueType::kNull;
}

namespace {

// Conservative XML NCName check for map keys. Keys that fail (metric
// names like "http.server#2.requests") are carried in a key attribute
// on an <entry> element instead of as the element name itself.
bool is_xml_name(const std::string& s) {
  if (s.empty()) return false;
  auto name_start = [](char c) {
    return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || c == '_';
  };
  if (!name_start(s[0])) return false;
  for (char c : s) {
    if (!name_start(c) && !(c >= '0' && c <= '9') && c != '-' && c != '.') {
      return false;
    }
  }
  return true;
}

}  // namespace

void value_to_xml(const std::string& name, const Value& v,
                  xml::Element& parent) {
  auto& elem = parent.add_child(name);
  elem.set_attr("xsi:type", xsi_type_for(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      elem.set_attr("xsi:nil", "true");
      break;
    case ValueType::kBool:
      elem.set_text(v.as_bool() ? "true" : "false");
      break;
    case ValueType::kInt:
      elem.set_text(std::to_string(v.as_int()));
      break;
    case ValueType::kDouble: {
      char buf[64];
      auto [end, ec] =
          std::to_chars(buf, buf + sizeof(buf), v.as_double(),
                        std::chars_format::general, 17);
      elem.set_text(std::string(buf, end));
      break;
    }
    case ValueType::kString:
      elem.set_text(v.as_string());
      break;
    case ValueType::kBytes:
      elem.set_text(base64_encode(v.as_bytes()));
      break;
    case ValueType::kList:
      for (const auto& item : v.as_list()) value_to_xml("item", item, elem);
      break;
    case ValueType::kMap:
      for (const auto& [k, item] : v.as_map()) {
        if (is_xml_name(k)) {
          value_to_xml(k, item, elem);
        } else {
          value_to_xml("entry", item, elem);
          elem.children().back()->set_attr("key", k);
        }
      }
      break;
  }
}

Result<Value> value_from_xml(const xml::Element& elem) {
  if (const auto* nil = elem.attr_local("nil");
      nil != nullptr && (*nil == "true" || *nil == "1")) {
    return Value();
  }
  ValueType type = ValueType::kNull;
  if (const auto* xsi = elem.attr_local("type")) {
    type = value_type_for_xsi(*xsi);
  }
  if (type == ValueType::kNull) {
    // Untyped: infer structure.
    if (!elem.children().empty()) {
      type = ValueType::kMap;
    } else if (!elem.text().empty()) {
      type = ValueType::kString;
    } else {
      return Value();
    }
  }
  switch (type) {
    case ValueType::kBool: {
      const std::string text = elem.text();
      auto t = trim(text);
      if (t == "true" || t == "1") return Value(true);
      if (t == "false" || t == "0") return Value(false);
      return protocol_error("bad boolean: " + std::string(t));
    }
    case ValueType::kInt: {
      const std::string text = elem.text();
      auto t = trim(text);
      std::int64_t out = 0;
      auto [p, ec] = std::from_chars(t.data(), t.data() + t.size(), out);
      if (ec != std::errc{} || p != t.data() + t.size()) {
        return protocol_error("bad integer: " + std::string(t));
      }
      return Value(out);
    }
    case ValueType::kDouble: {
      const std::string text = elem.text();
      auto t = trim(text);
      double out = 0;
      auto [p, ec] = std::from_chars(t.data(), t.data() + t.size(), out);
      if (ec != std::errc{} || p != t.data() + t.size()) {
        return protocol_error("bad double: " + std::string(t));
      }
      return Value(out);
    }
    case ValueType::kString:
      return Value(elem.text());
    case ValueType::kBytes: {
      auto bytes = base64_decode(elem.text());
      if (!bytes.is_ok()) return bytes.status();
      return Value(std::move(bytes).take());
    }
    case ValueType::kList: {
      ValueList list;
      for (const auto& c : elem.children()) {
        auto item = value_from_xml(*c);
        if (!item.is_ok()) return item.status();
        list.push_back(std::move(item).take());
      }
      return Value(std::move(list));
    }
    case ValueType::kMap: {
      ValueMap map;
      for (const auto& c : elem.children()) {
        auto item = value_from_xml(*c);
        if (!item.is_ok()) return item.status();
        std::string key(c->local_name());
        if (key == "entry") {
          if (const auto* k = c->attr("key")) key = *k;
        }
        map.emplace(std::move(key), std::move(item).take());
      }
      return Value(std::move(map));
    }
    case ValueType::kNull:
      return Value();
  }
  return protocol_error("unhandled value type");
}

}  // namespace hcm::soap
