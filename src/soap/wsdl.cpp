#include "soap/wsdl.hpp"

#include <cstdint>
#include <map>

#include "soap/value_xml.hpp"
#include "store/codec.hpp"
#include "xml/xml.hpp"

namespace hcm::soap {

const char* wsdl_type_for(ValueType t) { return xsi_type_for(t); }

std::string wsdl_digest(std::string_view text) {
  // The durable store owns the single digest implementation (FNV-1a
  // 64-bit rendered as 16 hex chars): a registry and the store behind
  // it key bodies on the same digest by construction, so replay can
  // never disagree with the wire protocol about "unchanged".
  return store::content_digest(text);
}

ValueType value_type_for_wsdl(std::string_view name) {
  return value_type_for_xsi(name);
}

std::string emit_wsdl(const InterfaceDesc& iface,
                      const std::string& service_name, const Uri& endpoint) {
  const std::string tns = "urn:hcm:" + iface.name;
  xml::Element defs("wsdl:definitions");
  defs.set_attr("name", iface.name);
  defs.set_attr("targetNamespace", tns);
  defs.set_attr("xmlns:wsdl", "http://schemas.xmlsoap.org/wsdl/");
  defs.set_attr("xmlns:soap", "http://schemas.xmlsoap.org/wsdl/soap/");
  defs.set_attr("xmlns:xsd", "http://www.w3.org/2001/XMLSchema");
  defs.set_attr("xmlns:tns", tns);

  // <message> pairs per operation (methods and events alike; events are
  // one-way so well-formed ones only ever emit an Input message).
  auto emit_messages = [&defs](const MethodDesc& m) {
    auto& input = defs.add_child("wsdl:message");
    input.set_attr("name", m.name + "Input");
    for (const auto& p : m.params) {
      auto& part = input.add_child("wsdl:part");
      part.set_attr("name", p.name);
      part.set_attr("type", wsdl_type_for(p.type));
    }
    if (!m.one_way) {
      auto& output = defs.add_child("wsdl:message");
      output.set_attr("name", m.name + "Output");
      auto& part = output.add_child("wsdl:part");
      part.set_attr("name", "return");
      part.set_attr("type", wsdl_type_for(m.return_type));
    }
  };
  for (const auto& m : iface.methods) emit_messages(m);
  for (const auto& e : iface.events) emit_messages(e);

  auto emit_operation = [](xml::Element& port_type, const MethodDesc& m) {
    auto& op = port_type.add_child("wsdl:operation");
    op.set_attr("name", m.name);
    op.add_child("wsdl:input").set_attr("message", "tns:" + m.name + "Input");
    if (!m.one_way) {
      op.add_child("wsdl:output")
          .set_attr("message", "tns:" + m.name + "Output");
    }
  };

  // <portType> with operations.
  auto& port_type = defs.add_child("wsdl:portType");
  port_type.set_attr("name", iface.name + "PortType");
  for (const auto& m : iface.methods) emit_operation(port_type, m);

  // Events travel as a second portType of notification operations
  // (WSDL 1.1's one-way transmission primitive), named
  // <iface>EventsPortType so parse_wsdl can route them back into the
  // descriptor's events section.
  if (!iface.events.empty()) {
    auto& events_port = defs.add_child("wsdl:portType");
    events_port.set_attr("name", iface.name + "EventsPortType");
    for (const auto& e : iface.events) emit_operation(events_port, e);
  }

  // <binding>: rpc/encoded over SOAP-HTTP.
  auto& binding = defs.add_child("wsdl:binding");
  binding.set_attr("name", iface.name + "Binding");
  binding.set_attr("type", "tns:" + iface.name + "PortType");
  auto& soap_binding = binding.add_child("soap:binding");
  soap_binding.set_attr("style", "rpc");
  soap_binding.set_attr("transport", "http://schemas.xmlsoap.org/soap/http");

  // <service> with the endpoint address.
  auto& service = defs.add_child("wsdl:service");
  service.set_attr("name", service_name);
  auto& port = service.add_child("wsdl:port");
  port.set_attr("name", iface.name + "Port");
  port.set_attr("binding", "tns:" + iface.name + "Binding");
  port.add_child("soap:address").set_attr("location", endpoint.to_string());

  return "<?xml version=\"1.0\" encoding=\"UTF-8\"?>" + defs.to_string();
}

Result<WsdlDocument> parse_wsdl(std::string_view text) {
  auto doc = xml::parse(text);
  if (!doc.is_ok()) return doc.status();
  const xml::Element& defs = *doc.value();
  if (defs.local_name() != "definitions") {
    return protocol_error("not a WSDL document: " + defs.name());
  }
  WsdlDocument out;
  if (const auto* name = defs.attr("name")) out.interface.name = *name;

  // Collect messages: name -> parts.
  struct Part {
    std::string name;
    ValueType type;
  };
  std::map<std::string, std::vector<Part>> messages;
  for (const auto* msg : defs.children_named("message")) {
    const auto* mname = msg->attr("name");
    if (mname == nullptr) continue;
    auto& parts = messages[*mname];
    for (const auto* part : msg->children_named("part")) {
      Part p;
      if (const auto* pn = part->attr("name")) p.name = *pn;
      p.type = ValueType::kNull;
      if (const auto* pt = part->attr("type")) {
        p.type = value_type_for_wsdl(*pt);
      }
      parts.push_back(std::move(p));
    }
  }

  auto strip_tns = [](const std::string& s) {
    auto colon = s.find(':');
    return colon == std::string::npos ? s : s.substr(colon + 1);
  };

  // Port types -> methods and events. The main portType is named
  // <iface>PortType; <iface>EventsPortType carries the events section.
  const auto port_types = defs.children_named("portType");
  if (port_types.empty()) return protocol_error("WSDL without portType");
  for (const auto* port_type : port_types) {
    const auto* ptname = port_type->attr("name");
    const bool is_events =
        ptname != nullptr && *ptname == out.interface.name + "EventsPortType";
    for (const auto* op : port_type->children_named("operation")) {
      MethodDesc method;
      if (const auto* oname = op->attr("name")) method.name = *oname;
      const auto* input = op->child("input");
      if (input != nullptr) {
        if (const auto* msg_ref = input->attr("message")) {
          for (const auto& part : messages[strip_tns(*msg_ref)]) {
            method.params.push_back({part.name, part.type});
          }
        }
      }
      const auto* output = op->child("output");
      if (output == nullptr) {
        method.one_way = true;
      } else if (const auto* msg_ref = output->attr("message")) {
        const auto& parts = messages[strip_tns(*msg_ref)];
        if (!parts.empty()) method.return_type = parts.front().type;
      }
      if (is_events) {
        out.interface.events.push_back(std::move(method));
      } else {
        out.interface.methods.push_back(std::move(method));
      }
    }
  }

  // Service / endpoint.
  const auto* service = defs.child("service");
  if (service != nullptr) {
    if (const auto* sname = service->attr("name")) out.service_name = *sname;
    if (const auto* port = service->child("port")) {
      if (const auto* addr = port->child("address")) {
        if (const auto* loc = addr->attr("location")) {
          auto uri = parse_uri(*loc);
          if (!uri.is_ok()) return uri.status();
          out.endpoint = uri.value();
        }
      }
    }
  }
  if (out.interface.name.empty()) {
    return protocol_error("WSDL definitions missing name");
  }
  return out;
}

}  // namespace hcm::soap
