#include "soap/envelope.hpp"

#include <charconv>
#include <cstdlib>

#include "common/block_stream.hpp"
#include "soap/value_xml.hpp"
#include "xml/xml.hpp"

namespace hcm::soap {

namespace {

constexpr const char* kEnvNs = "http://schemas.xmlsoap.org/soap/envelope/";
constexpr const char* kEncNs = "http://schemas.xmlsoap.org/soap/encoding/";
constexpr const char* kXsdNs = "http://www.w3.org/2001/XMLSchema";
constexpr const char* kXsiNs = "http://www.w3.org/2001/XMLSchema-instance";

// Prolog + <SOAP-ENV:Envelope> with the standard namespace set; the
// writer streams straight into its sink, no Element tree on the encode
// path.
void open_envelope(xml::Writer& w) {
  w.prolog()
      .start("SOAP-ENV:Envelope")
      .attr("xmlns:SOAP-ENV", kEnvNs)
      .attr("xmlns:SOAP-ENC", kEncNs)
      .attr("xmlns:xsd", kXsdNs)
      .attr("xmlns:xsi", kXsiNs)
      .attr("SOAP-ENV:encodingStyle", kEncNs);
}

std::string_view u64_chars(std::uint64_t v, char (&buf)[24]) {
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return {buf, static_cast<std::size_t>(end - buf)};
}

// Shared render cores: the std::string and BlockStream entry points
// below differ only in the writer's sink, so the bytes stay identical
// by construction (pinned by EnvelopeTest + the wire-equality tests).
void render_call(xml::Writer& w, const std::string& ns,
                 const std::string& method, const NamedValues& params,
                 const obs::TraceContext& trace) {
  open_envelope(w);
  if (trace.valid()) {
    char tid[24];
    char sid[24];
    w.start("SOAP-ENV:Header")
        .start("hcm:Trace")
        .attr("xmlns:hcm", "urn:hcm:trace")
        .attr("traceId", u64_chars(trace.trace_id, tid))
        .attr("spanId", u64_chars(trace.span_id, sid))
        .end()
        .end();
  }
  std::string qname = "m:";
  qname += method;
  w.start("SOAP-ENV:Body").start(qname).attr("xmlns:m", ns);
  for (const auto& [name, value] : params) {
    value_write(name, value, w);
  }
  w.end().end().end();
}

void render_response(xml::Writer& w, const std::string& ns,
                     const std::string& method, const Value& result) {
  open_envelope(w);
  std::string qname = "m:";
  qname += method;
  qname += "Response";
  w.start("SOAP-ENV:Body").start(qname).attr("xmlns:m", ns);
  value_write("return", result, w);
  w.end().end().end();
}

void render_fault(xml::Writer& w, const Fault& fault) {
  open_envelope(w);
  w.start("SOAP-ENV:Body")
      .start("SOAP-ENV:Fault")
      .leaf("faultcode", fault.code)
      .leaf("faultstring", fault.string);
  if (!fault.detail.empty()) w.leaf("detail", fault.detail);
  w.end().end().end();
}

}  // namespace

Status Fault::to_status() const {
  // Client faults map to invalid argument; server faults carry the
  // status code we tunneled in the detail field when possible.
  if (detail.rfind("status:", 0) == 0) {
    auto rest = detail.substr(7);
    auto colon = rest.find(':');
    std::string code_name = rest.substr(0, colon);
    std::string msg = colon == std::string::npos ? string : rest.substr(colon + 1);
    for (int i = 0; i <= static_cast<int>(StatusCode::kResourceExhausted); ++i) {
      auto status_code = static_cast<StatusCode>(i);
      if (code_name == hcm::to_string(status_code)) {
        return {status_code, msg};
      }
    }
  }
  if (code.find("Client") != std::string::npos) {
    return invalid_argument(string);
  }
  return internal_error(string);
}

Fault Fault::from_status(const Status& status) {
  Fault f;
  f.code = status.code() == StatusCode::kInvalidArgument ? "SOAP-ENV:Client"
                                                         : "SOAP-ENV:Server";
  f.string = status.message();
  f.detail = std::string("status:") + hcm::to_string(status.code()) + ":" +
             status.message();
  return f;
}

std::string build_call(const std::string& ns, const std::string& method,
                       const NamedValues& params) {
  return build_call(ns, method, params, obs::TraceContext{});
}

std::string build_call(const std::string& ns, const std::string& method,
                       const NamedValues& params,
                       const obs::TraceContext& trace) {
  std::string out;
  out.reserve(512);
  xml::Writer w(out);
  render_call(w, ns, method, params, trace);
  return out;
}

std::string build_response(const std::string& ns, const std::string& method,
                           const Value& result) {
  std::string out;
  out.reserve(512);
  xml::Writer w(out);
  render_response(w, ns, method, result);
  return out;
}

std::string build_fault(const Fault& fault) {
  std::string out;
  out.reserve(512);
  xml::Writer w(out);
  render_fault(w, fault);
  return out;
}

void build_call_into(std::string& out, const std::string& ns,
                     const std::string& method, const NamedValues& params,
                     const obs::TraceContext& trace) {
  out.clear();
  if (out.capacity() < 512) out.reserve(512);
  xml::Writer w(out);
  render_call(w, ns, method, params, trace);
}

void build_response_into(std::string& out, const std::string& ns,
                         const std::string& method, const Value& result) {
  out.clear();
  if (out.capacity() < 512) out.reserve(512);
  xml::Writer w(out);
  render_response(w, ns, method, result);
}

void build_fault_into(std::string& out, const Fault& fault) {
  out.clear();
  if (out.capacity() < 512) out.reserve(512);
  xml::Writer w(out);
  render_fault(w, fault);
}

void build_call_to(BlockStream& out, const std::string& ns,
                   const std::string& method, const NamedValues& params,
                   const obs::TraceContext& trace) {
  xml::Writer w(out);
  render_call(w, ns, method, params, trace);
}

void build_response_to(BlockStream& out, const std::string& ns,
                       const std::string& method, const Value& result) {
  xml::Writer w(out);
  render_response(w, ns, method, result);
}

void build_fault_to(BlockStream& out, const Fault& fault) {
  xml::Writer w(out);
  render_fault(w, fault);
}

namespace {

using Event = xml::PullParser::Event;

// Decoded value of the attribute named `name` on the current start tag,
// written into `out`. False when absent; decode errors surface through
// `err`.
bool decoded_attr(xml::PullParser& p, std::string_view name, std::string& out,
                  Status& err) {
  const auto* a = p.find_attr(name);
  if (a == nullptr) return false;
  std::string scratch;
  auto v = xml::PullParser::decode(a->raw_value, scratch);
  if (!v.is_ok()) {
    err = v.status();
    return false;
  }
  out.assign(v.value());
  return true;
}

// Concatenated direct text of the current element (the tree parser's
// Element::text() semantics: whitespace-only runs dropped, CDATA kept
// verbatim, nested elements skipped). Consumes through the matching
// end tag.
Status collect_text(xml::PullParser& p, std::string& out) {
  out.clear();
  while (true) {
    auto ev = p.next();
    if (!ev.is_ok()) return ev.status();
    if (ev.value() == Event::kEnd) return Status::ok();
    if (ev.value() == Event::kStart) {
      if (auto s = p.skip_element(); !s.is_ok()) return s;
      continue;
    }
    if (ev.value() == Event::kEof) {
      return protocol_error("unexpected end of document");
    }
    if (p.text_is_cdata()) {
      out.append(p.raw_text());
    } else if (!p.text_is_ws()) {
      std::string scratch;
      auto t = p.text(scratch);
      if (!t.is_ok()) return t.status();
      out.append(t.value());
    }
  }
}

// <SOAP-ENV:Header>: the first <Trace> child carries the propagated
// trace context. Consumes through the header's end tag.
Status parse_header(xml::PullParser& p, Envelope& env) {
  bool saw_trace = false;
  while (true) {
    auto ev = p.next();
    if (!ev.is_ok()) return ev.status();
    if (ev.value() == Event::kEnd) return Status::ok();
    if (ev.value() != Event::kStart) {
      if (ev.value() == Event::kEof) {
        return protocol_error("unexpected end of document");
      }
      continue;
    }
    if (!saw_trace && p.local_name() == "Trace") {
      saw_trace = true;
      Status err = Status::ok();
      std::string v;
      if (decoded_attr(p, "traceId", v, err)) {
        env.trace.trace_id = std::strtoull(v.c_str(), nullptr, 10);
      }
      if (!err.is_ok()) return err;
      if (decoded_attr(p, "spanId", v, err)) {
        env.trace.span_id = std::strtoull(v.c_str(), nullptr, 10);
      }
      if (!err.is_ok()) return err;
    }
    if (auto s = p.skip_element(); !s.is_ok()) return s;
  }
}

// The first Body child is the operation element; the parser is
// positioned just past its start tag. Consumes through the operation's
// end tag.
Status parse_operation(xml::PullParser& p, Envelope& env) {
  if (p.local_name() == "Fault") {
    env.is_fault = true;
    env.params.clear();
    bool saw_code = false;
    bool saw_string = false;
    bool saw_detail = false;
    std::string text;
    while (true) {
      auto ev = p.next();
      if (!ev.is_ok()) return ev.status();
      if (ev.value() == Event::kEnd) return Status::ok();
      if (ev.value() != Event::kStart) {
        if (ev.value() == Event::kEof) {
          return protocol_error("unexpected end of document");
        }
        continue;
      }
      auto local = p.local_name();
      if (!saw_code && local == "faultcode") {
        saw_code = true;
        if (auto s = collect_text(p, env.fault.code); !s.is_ok()) return s;
      } else if (!saw_string && local == "faultstring") {
        saw_string = true;
        if (auto s = collect_text(p, env.fault.string); !s.is_ok()) return s;
      } else if (!saw_detail && local == "detail") {
        saw_detail = true;
        if (auto s = collect_text(p, env.fault.detail); !s.is_ok()) return s;
      } else {
        if (auto s = p.skip_element(); !s.is_ok()) return s;
      }
    }
  }

  env.method.assign(p.local_name());
  // Namespace: the xmlns:<prefix> attribute matching the element prefix,
  // or default xmlns.
  Status err = Status::ok();
  auto colon = p.name().find(':');
  if (colon != std::string_view::npos) {
    std::string xmlns = "xmlns:";
    xmlns += p.name().substr(0, colon);
    decoded_attr(p, xmlns, env.method_ns, err);
  } else {
    decoded_attr(p, "xmlns", env.method_ns, err);
  }
  if (!err.is_ok()) return err;

  // Param entries are reused by index (like MessageParser's header
  // slots): names assign into retained string capacity, the vector only
  // grows when a call carries more params than any before it.
  std::size_t n_params = 0;
  while (true) {
    auto ev = p.next();
    if (!ev.is_ok()) return ev.status();
    if (ev.value() == Event::kEnd) {
      env.params.resize(n_params);
      return Status::ok();
    }
    if (ev.value() != Event::kStart) {
      if (ev.value() == Event::kEof) {
        return protocol_error("unexpected end of document");
      }
      continue;
    }
    auto name = p.local_name();  // view into the input; stays valid
    auto value = value_from_pull(p);
    if (!value.is_ok()) return value.status();
    if (n_params < env.params.size()) {
      env.params[n_params].first.assign(name);
      env.params[n_params].second = std::move(value).take();
    } else {
      env.params.emplace_back(std::string(name), std::move(value).take());
    }
    ++n_params;
  }
}

}  // namespace

Result<Envelope> parse_envelope(std::string_view body_text) {
  Envelope env;
  if (auto s = parse_envelope_into(body_text, env); !s.is_ok()) return s;
  return env;
}

Status parse_envelope_into(std::string_view body_text, Envelope& env) {
  env.is_fault = false;
  env.fault.code.clear();
  env.fault.string.clear();
  env.fault.detail.clear();
  env.method.clear();
  env.method_ns.clear();
  env.trace = obs::TraceContext{};
  // env.params is reconciled entry-by-entry in parse_operation.

  xml::PullParser p(body_text);
  auto ev = p.next();
  if (!ev.is_ok()) return ev.status();
  if (p.local_name() != "Envelope") {
    return protocol_error("not a SOAP envelope: " + std::string(p.name()));
  }

  bool saw_header = false;
  bool saw_body = false;
  bool saw_op = false;
  while (true) {
    ev = p.next();
    if (!ev.is_ok()) return ev.status();
    if (ev.value() == Event::kEnd || ev.value() == Event::kEof) break;
    if (ev.value() != Event::kStart) continue;
    auto local = p.local_name();
    if (!saw_header && local == "Header") {
      saw_header = true;
      if (auto s = parse_header(p, env); !s.is_ok()) return s;
    } else if (!saw_body && local == "Body") {
      saw_body = true;
      // Children of Body: the first element is the operation, the rest
      // are ignored (matching the tree decoder, which took front()).
      while (true) {
        ev = p.next();
        if (!ev.is_ok()) return ev.status();
        if (ev.value() == Event::kEnd) break;
        if (ev.value() != Event::kStart) {
          if (ev.value() == Event::kEof) {
            return protocol_error("unexpected end of document");
          }
          continue;
        }
        if (saw_op) {
          if (auto s = p.skip_element(); !s.is_ok()) return s;
          continue;
        }
        saw_op = true;
        if (auto s = parse_operation(p, env); !s.is_ok()) return s;
      }
    } else {
      if (auto s = p.skip_element(); !s.is_ok()) return s;
    }
  }
  // Drain to EOF so trailing-garbage errors still surface, as they did
  // when the whole document was tree-parsed up front.
  while (ev.is_ok() && ev.value() != Event::kEof) ev = p.next();
  if (!ev.is_ok()) return ev.status();

  if (!saw_body) return protocol_error("SOAP envelope without Body");
  if (!saw_op) return protocol_error("SOAP Body is empty");
  return Status::ok();
}

}  // namespace hcm::soap
