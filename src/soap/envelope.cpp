#include "soap/envelope.hpp"

#include <cstdlib>

#include "soap/value_xml.hpp"
#include "xml/xml.hpp"

namespace hcm::soap {

namespace {

constexpr const char* kEnvNs = "http://schemas.xmlsoap.org/soap/envelope/";
constexpr const char* kEncNs = "http://schemas.xmlsoap.org/soap/encoding/";
constexpr const char* kXsdNs = "http://www.w3.org/2001/XMLSchema";
constexpr const char* kXsiNs = "http://www.w3.org/2001/XMLSchema-instance";

xml::ElementPtr make_envelope() {
  auto env = std::make_unique<xml::Element>("SOAP-ENV:Envelope");
  env->set_attr("xmlns:SOAP-ENV", kEnvNs);
  env->set_attr("xmlns:SOAP-ENC", kEncNs);
  env->set_attr("xmlns:xsd", kXsdNs);
  env->set_attr("xmlns:xsi", kXsiNs);
  env->set_attr("SOAP-ENV:encodingStyle", kEncNs);
  return env;
}

}  // namespace

Status Fault::to_status() const {
  // Client faults map to invalid argument; server faults carry the
  // status code we tunneled in the detail field when possible.
  if (detail.rfind("status:", 0) == 0) {
    auto rest = detail.substr(7);
    auto colon = rest.find(':');
    std::string code_name = rest.substr(0, colon);
    std::string msg = colon == std::string::npos ? string : rest.substr(colon + 1);
    for (int i = 0; i <= static_cast<int>(StatusCode::kResourceExhausted); ++i) {
      auto status_code = static_cast<StatusCode>(i);
      if (code_name == hcm::to_string(status_code)) {
        return {status_code, msg};
      }
    }
  }
  if (code.find("Client") != std::string::npos) {
    return invalid_argument(string);
  }
  return internal_error(string);
}

Fault Fault::from_status(const Status& status) {
  Fault f;
  f.code = status.code() == StatusCode::kInvalidArgument ? "SOAP-ENV:Client"
                                                         : "SOAP-ENV:Server";
  f.string = status.message();
  f.detail = std::string("status:") + hcm::to_string(status.code()) + ":" +
             status.message();
  return f;
}

std::string build_call(const std::string& ns, const std::string& method,
                       const NamedValues& params) {
  return build_call(ns, method, params, obs::TraceContext{});
}

std::string build_call(const std::string& ns, const std::string& method,
                       const NamedValues& params,
                       const obs::TraceContext& trace) {
  auto env = make_envelope();
  if (trace.valid()) {
    auto& header = env->add_child("SOAP-ENV:Header");
    auto& t = header.add_child("hcm:Trace");
    t.set_attr("xmlns:hcm", "urn:hcm:trace");
    t.set_attr("traceId", std::to_string(trace.trace_id));
    t.set_attr("spanId", std::to_string(trace.span_id));
  }
  auto& body = env->add_child("SOAP-ENV:Body");
  auto& call = body.add_child("m:" + method);
  call.set_attr("xmlns:m", ns);
  for (const auto& [name, value] : params) {
    value_to_xml(name, value, call);
  }
  return "<?xml version=\"1.0\" encoding=\"UTF-8\"?>" + env->to_string();
}

std::string build_response(const std::string& ns, const std::string& method,
                           const Value& result) {
  auto env = make_envelope();
  auto& body = env->add_child("SOAP-ENV:Body");
  auto& resp = body.add_child("m:" + method + "Response");
  resp.set_attr("xmlns:m", ns);
  value_to_xml("return", result, resp);
  return "<?xml version=\"1.0\" encoding=\"UTF-8\"?>" + env->to_string();
}

std::string build_fault(const Fault& fault) {
  auto env = make_envelope();
  auto& body = env->add_child("SOAP-ENV:Body");
  auto& f = body.add_child("SOAP-ENV:Fault");
  f.add_child("faultcode").set_text(fault.code);
  f.add_child("faultstring").set_text(fault.string);
  if (!fault.detail.empty()) f.add_child("detail").set_text(fault.detail);
  return "<?xml version=\"1.0\" encoding=\"UTF-8\"?>" + env->to_string();
}

Result<Envelope> parse_envelope(std::string_view body_text) {
  auto doc = xml::parse(body_text);
  if (!doc.is_ok()) return doc.status();
  const xml::Element& root = *doc.value();
  if (root.local_name() != "Envelope") {
    return protocol_error("not a SOAP envelope: " + root.name());
  }
  const auto* body = root.child("Body");
  if (body == nullptr) return protocol_error("SOAP envelope without Body");
  if (body->children().empty()) {
    return protocol_error("SOAP Body is empty");
  }
  const xml::Element& op = *body->children().front();

  Envelope env;
  if (const auto* header = root.child("Header")) {
    if (const auto* t = header->child("Trace")) {
      if (const auto* a = t->attr("traceId")) {
        env.trace.trace_id = std::strtoull(a->c_str(), nullptr, 10);
      }
      if (const auto* a = t->attr("spanId")) {
        env.trace.span_id = std::strtoull(a->c_str(), nullptr, 10);
      }
    }
  }
  if (op.local_name() == "Fault") {
    env.is_fault = true;
    if (const auto* c = op.child("faultcode")) env.fault.code = c->text();
    if (const auto* c = op.child("faultstring")) env.fault.string = c->text();
    if (const auto* c = op.child("detail")) env.fault.detail = c->text();
    return env;
  }

  env.method = std::string(op.local_name());
  // Namespace: the xmlns:<prefix> attribute matching the element prefix,
  // or default xmlns.
  auto colon = op.name().find(':');
  if (colon != std::string::npos) {
    std::string prefix = op.name().substr(0, colon);
    if (const auto* ns = op.attr("xmlns:" + prefix)) env.method_ns = *ns;
  } else if (const auto* ns = op.attr("xmlns")) {
    env.method_ns = *ns;
  }
  for (const auto& child : op.children()) {
    auto value = value_from_xml(*child);
    if (!value.is_ok()) return value.status();
    env.params.emplace_back(std::string(child->local_name()),
                            std::move(value).take());
  }
  return env;
}

}  // namespace hcm::soap
