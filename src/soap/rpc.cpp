#include "soap/rpc.hpp"

#include "common/logging.hpp"
#include "obs/slab.hpp"
#include "obs/trace.hpp"

namespace hcm::soap {

namespace {
// Thread-local response scratch. respond() serializes synchronously
// (stream delivery is scheduled, never inline), so the scratch and its
// string capacities are free again the moment the call returns —
// steady-state service responses are built without reallocation. A
// handler that parks the response moves from it, which only forfeits
// the recycled capacity. Thread-local keeps shards independent under
// the parallel kernel. Callers render the envelope into .body.
http::Response& soap_response(int status, std::string_view reason) {
  thread_local http::Response resp;
  resp.status = status;
  resp.reason.assign(reason);
  resp.version.assign("HTTP/1.1");
  if (resp.headers.empty()) resp.headers.emplace_back();
  resp.headers.resize(1);
  resp.headers[0].first.assign("Content-Type");
  resp.headers[0].second.assign("text/xml; charset=utf-8");
  return resp;
}
}  // namespace

SoapService::SoapService(http::HttpServer& http_server, std::string path)
    : http_server_(http_server),
      path_(std::move(path)),
      obs_scope_(obs::shard_registry().unique_scope("soap.service")),
      calls_handled_(obs::shard_registry().counter(obs_scope_ + ".calls")),
      faults_sent_(obs::shard_registry().counter(obs_scope_ + ".faults")) {
  http_server_.route(path_, [this](const http::Request& req,
                                   http::RespondFn respond) {
    handle(req, std::move(respond));
  });
}

SoapService::~SoapService() { http_server_.remove_route(path_); }

void SoapService::register_method(const std::string& method,
                                  MethodHandler handler) {
  methods_[method] = std::move(handler);
}

void SoapService::unregister_method(const std::string& method) {
  methods_.erase(method);
}

std::unique_ptr<Envelope> SoapService::acquire_env() {
  if (env_pool_.empty()) return std::make_unique<Envelope>();
  auto env = std::move(env_pool_.back());
  env_pool_.pop_back();
  return env;
}

void SoapService::release_env(std::unique_ptr<Envelope> env) {
  // A few entries cover synchronous nested dispatch; beyond that the
  // envelope just frees (no unbounded hoard).
  if (env_pool_.size() < 4) env_pool_.push_back(std::move(env));
}

void SoapService::handle(const http::Request& req, http::RespondFn respond) {
  if (req.method != "POST") {
    faults_sent_.inc();
    auto& resp = soap_response(405, "Method Not Allowed");
    build_fault_into(resp.body,
                     Fault{"SOAP-ENV:Client", "SOAP requires POST", ""});
    respond(std::move(resp));
    return;
  }
  // Borrowed for this frame only: the completion lambda copies what it
  // needs (it may run after the envelope has been reused).
  auto env = acquire_env();
  struct Lease {
    SoapService* service;
    std::unique_ptr<Envelope>& env;
    ~Lease() { service->release_env(std::move(env)); }
  } lease{this, env};
  auto parsed = parse_envelope_into(req.body, *env);
  if (!parsed.is_ok()) {
    faults_sent_.inc();
    auto& resp = soap_response(400, "Bad Request");
    build_fault_into(resp.body, Fault::from_status(parsed));
    respond(std::move(resp));
    return;
  }
  if (env->is_fault) {
    faults_sent_.inc();
    auto& resp = soap_response(400, "Bad Request");
    build_fault_into(resp.body,
                     Fault{"SOAP-ENV:Client", "fault sent as request", ""});
    respond(std::move(resp));
    return;
  }
  calls_handled_.inc();
  const auto& call = *env;
  auto it = methods_.find(call.method);
  if (it == methods_.end()) {
    faults_sent_.inc();
    auto& resp = soap_response(500, "Internal Server Error");
    build_fault_into(resp.body, Fault::from_status(
                                    not_found("no such method: " + call.method)));
    respond(std::move(resp));
    return;
  }
  // Rejoin the caller's trace: the <hcm:Trace> header carries the
  // client-side span, which becomes this dispatch span's parent. The
  // scopes make it current while the handler runs synchronously, so
  // downstream hops (VSG dispatch, nested remote calls) nest under it.
  auto& tracer = obs::Tracer::global();
  auto& sched = http_server_.network().scheduler();
  obs::Tracer::Scope wire_scope(tracer, call.trace);
  const std::uint64_t span_id =
      tracer.enabled()
          ? tracer.begin_span("soap.server:" + call.method, "soap.server",
                              sched.now())
          : 0;
  obs::Tracer::Scope span_scope(tracer, tracer.context_of(span_id));
  // ns/method are copied straight into the closure (the envelope is
  // recycled before an async completion runs).
  it->second(call.params,
             [respond = std::move(respond),
              ns = call.method_ns.empty() ? std::string("urn:hcm")
                                          : call.method_ns,
              method = call.method, &faults = faults_sent_, &tracer, &sched,
              span_id](Result<Value> result) {
               tracer.end_span(span_id, sched.now(), result.is_ok());
               if (result.is_ok()) {
                 auto& resp = soap_response(200, "OK");
                 build_response_into(resp.body, ns, method, result.value());
                 respond(std::move(resp));
               } else {
                 faults.inc();
                 auto& resp = soap_response(500, "Internal Server Error");
                 build_fault_into(resp.body,
                                  Fault::from_status(result.status()));
                 respond(std::move(resp));
               }
             });
}

void SoapClient::call(net::Endpoint dest, const std::string& path,
                      const std::string& ns, const std::string& method,
                      const NamedValues& params, CallResultFn done) {
  calls_sent_.inc();
  // The wire header carries this client span's context, so the remote
  // dispatch span parents to it and the trace stays connected across
  // the island hop.
  auto& tracer = obs::Tracer::global();
  auto& sched = http_.network().scheduler();
  const std::uint64_t span_id =
      tracer.enabled()
          ? tracer.begin_span("soap.call:" + method, "soap.client",
                              sched.now())
          : 0;
  // Recycled request: every string below assigns into capacity kept
  // from the previous call, so a steady-state caller allocates nothing
  // here. Header slots are reconciled by index (a recycled request
  // carries [Content-Type, SOAPAction, Host]; the Host entry the HTTP
  // client appends is small-string-optimized, so dropping it is free).
  http::Request req = http_.recycled_request();
  req.method.assign("POST");
  req.target.assign(path);
  req.version.assign("HTTP/1.1");
  build_call_into(req.body, ns, method, params, tracer.context_of(span_id));
  while (req.headers.size() < 2) req.headers.emplace_back();
  req.headers.resize(2);
  req.headers[0].first.assign("Content-Type");
  req.headers[0].second.assign("text/xml; charset=utf-8");
  req.headers[1].first.assign("SOAPAction");
  std::string& action = req.headers[1].second;
  action.clear();
  action.reserve(ns.size() + method.size() + 3);
  action += '"';
  action += ns;
  action += '#';
  action += method;
  action += '"';
  // The result is borrowed (Result<Response>&): the HTTP client keeps
  // the Response and recycles its storage after this returns. Parsing
  // lands in env_scratch_, and the result Value is moved out before
  // `done` runs so a nested call from the completion can reuse it.
  http_.request(dest, std::move(req),
                [this, done = std::move(done), &tracer, &sched,
                 span_id](Result<http::Response>& resp) {
                  if (!resp.is_ok()) {
                    tracer.end_span(span_id, sched.now(), false);
                    done(resp.status());
                    return;
                  }
                  auto parsed =
                      parse_envelope_into(resp.value().body, env_scratch_);
                  if (!parsed.is_ok()) {
                    tracer.end_span(span_id, sched.now(), false);
                    done(parsed);
                    return;
                  }
                  if (env_scratch_.is_fault) {
                    tracer.end_span(span_id, sched.now(), false);
                    done(env_scratch_.fault.to_status());
                    return;
                  }
                  tracer.end_span(span_id, sched.now(), true);
                  // RPC convention: single <return> child (or first param).
                  if (env_scratch_.params.empty()) {
                    done(Value());
                  } else {
                    Result<Value> rv(
                        std::move(env_scratch_.params.front().second));
                    done(std::move(rv));
                  }
                });
}

}  // namespace hcm::soap
