#include "soap/rpc.hpp"

#include "common/logging.hpp"
#include "obs/slab.hpp"
#include "obs/trace.hpp"

namespace hcm::soap {

namespace {
http::Response soap_response(int status, const std::string& reason,
                             std::string body) {
  auto resp = http::Response::make(status, reason, std::move(body),
                                   "text/xml; charset=utf-8");
  return resp;
}
}  // namespace

SoapService::SoapService(http::HttpServer& http_server, std::string path)
    : http_server_(http_server),
      path_(std::move(path)),
      obs_scope_(obs::shard_registry().unique_scope("soap.service")),
      calls_handled_(obs::shard_registry().counter(obs_scope_ + ".calls")),
      faults_sent_(obs::shard_registry().counter(obs_scope_ + ".faults")) {
  http_server_.route(path_, [this](const http::Request& req,
                                   http::RespondFn respond) {
    handle(req, std::move(respond));
  });
}

SoapService::~SoapService() { http_server_.remove_route(path_); }

void SoapService::register_method(const std::string& method,
                                  MethodHandler handler) {
  methods_[method] = std::move(handler);
}

void SoapService::unregister_method(const std::string& method) {
  methods_.erase(method);
}

void SoapService::handle(const http::Request& req, http::RespondFn respond) {
  if (req.method != "POST") {
    faults_sent_.inc();
    respond(soap_response(405, "Method Not Allowed",
                          build_fault(Fault{"SOAP-ENV:Client",
                                            "SOAP requires POST", ""})));
    return;
  }
  auto env = parse_envelope(req.body);
  if (!env.is_ok()) {
    faults_sent_.inc();
    respond(soap_response(
        400, "Bad Request",
        build_fault(Fault::from_status(env.status()))));
    return;
  }
  if (env.value().is_fault) {
    faults_sent_.inc();
    respond(soap_response(
        400, "Bad Request",
        build_fault(Fault{"SOAP-ENV:Client", "fault sent as request", ""})));
    return;
  }
  calls_handled_.inc();
  const auto& call = env.value();
  auto it = methods_.find(call.method);
  if (it == methods_.end()) {
    faults_sent_.inc();
    respond(soap_response(
        500, "Internal Server Error",
        build_fault(Fault::from_status(
            not_found("no such method: " + call.method)))));
    return;
  }
  // Rejoin the caller's trace: the <hcm:Trace> header carries the
  // client-side span, which becomes this dispatch span's parent. The
  // scopes make it current while the handler runs synchronously, so
  // downstream hops (VSG dispatch, nested remote calls) nest under it.
  auto& tracer = obs::Tracer::global();
  auto& sched = http_server_.network().scheduler();
  obs::Tracer::Scope wire_scope(tracer, call.trace);
  const std::uint64_t span_id =
      tracer.enabled()
          ? tracer.begin_span("soap.server:" + call.method, "soap.server",
                              sched.now())
          : 0;
  obs::Tracer::Scope span_scope(tracer, tracer.context_of(span_id));
  auto ns = call.method_ns.empty() ? "urn:hcm" : call.method_ns;
  it->second(call.params,
             [respond = std::move(respond), ns, method = call.method,
              &faults = faults_sent_, &tracer, &sched,
              span_id](Result<Value> result) {
               tracer.end_span(span_id, sched.now(), result.is_ok());
               if (result.is_ok()) {
                 respond(soap_response(
                     200, "OK", build_response(ns, method, result.value())));
               } else {
                 faults.inc();
                 respond(soap_response(
                     500, "Internal Server Error",
                     build_fault(Fault::from_status(result.status()))));
               }
             });
}

void SoapClient::call(net::Endpoint dest, const std::string& path,
                      const std::string& ns, const std::string& method,
                      const NamedValues& params, CallResultFn done) {
  calls_sent_.inc();
  // The wire header carries this client span's context, so the remote
  // dispatch span parents to it and the trace stays connected across
  // the island hop.
  auto& tracer = obs::Tracer::global();
  auto& sched = http_.network().scheduler();
  const std::uint64_t span_id =
      tracer.enabled()
          ? tracer.begin_span("soap.call:" + method, "soap.client",
                              sched.now())
          : 0;
  http::Request req;
  req.method = "POST";
  req.target = path;
  req.body = build_call(ns, method, params, tracer.context_of(span_id));
  req.set_header("Content-Type", "text/xml; charset=utf-8");
  std::string action;
  action.reserve(ns.size() + method.size() + 3);
  action += '"';
  action += ns;
  action += '#';
  action += method;
  action += '"';
  req.set_header("SOAPAction", std::move(action));
  http_.request(dest, std::move(req),
                [done = std::move(done), &tracer, &sched,
                 span_id](Result<http::Response> resp) {
                  if (!resp.is_ok()) {
                    tracer.end_span(span_id, sched.now(), false);
                    done(resp.status());
                    return;
                  }
                  auto env = parse_envelope(resp.value().body);
                  if (!env.is_ok()) {
                    tracer.end_span(span_id, sched.now(), false);
                    done(env.status());
                    return;
                  }
                  if (env.value().is_fault) {
                    tracer.end_span(span_id, sched.now(), false);
                    done(env.value().fault.to_status());
                    return;
                  }
                  tracer.end_span(span_id, sched.now(), true);
                  // RPC convention: single <return> child (or first param).
                  if (env.value().params.empty()) {
                    done(Value());
                  } else {
                    done(env.value().params.front().second);
                  }
                });
}

}  // namespace hcm::soap
