#include "soap/rpc.hpp"

#include "common/logging.hpp"

namespace hcm::soap {

namespace {
http::Response soap_response(int status, const std::string& reason,
                             std::string body) {
  auto resp = http::Response::make(status, reason, std::move(body),
                                   "text/xml; charset=utf-8");
  return resp;
}
}  // namespace

SoapService::SoapService(http::HttpServer& http_server, std::string path)
    : http_server_(http_server), path_(std::move(path)) {
  http_server_.route(path_, [this](const http::Request& req,
                                   http::RespondFn respond) {
    handle(req, std::move(respond));
  });
}

SoapService::~SoapService() { http_server_.remove_route(path_); }

void SoapService::register_method(const std::string& method,
                                  MethodHandler handler) {
  methods_[method] = std::move(handler);
}

void SoapService::unregister_method(const std::string& method) {
  methods_.erase(method);
}

void SoapService::handle(const http::Request& req, http::RespondFn respond) {
  if (req.method != "POST") {
    respond(soap_response(405, "Method Not Allowed",
                          build_fault(Fault{"SOAP-ENV:Client",
                                            "SOAP requires POST", ""})));
    return;
  }
  auto env = parse_envelope(req.body);
  if (!env.is_ok()) {
    respond(soap_response(
        400, "Bad Request",
        build_fault(Fault::from_status(env.status()))));
    return;
  }
  if (env.value().is_fault) {
    respond(soap_response(
        400, "Bad Request",
        build_fault(Fault{"SOAP-ENV:Client", "fault sent as request", ""})));
    return;
  }
  ++calls_handled_;
  const auto& call = env.value();
  auto it = methods_.find(call.method);
  if (it == methods_.end()) {
    respond(soap_response(
        500, "Internal Server Error",
        build_fault(Fault::from_status(
            not_found("no such method: " + call.method)))));
    return;
  }
  auto ns = call.method_ns.empty() ? "urn:hcm" : call.method_ns;
  it->second(call.params,
             [respond = std::move(respond), ns, method = call.method](
                 Result<Value> result) {
               if (result.is_ok()) {
                 respond(soap_response(
                     200, "OK", build_response(ns, method, result.value())));
               } else {
                 respond(soap_response(
                     500, "Internal Server Error",
                     build_fault(Fault::from_status(result.status()))));
               }
             });
}

void SoapClient::call(net::Endpoint dest, const std::string& path,
                      const std::string& ns, const std::string& method,
                      const NamedValues& params, CallResultFn done) {
  ++calls_sent_;
  http::Request req;
  req.method = "POST";
  req.target = path;
  req.body = build_call(ns, method, params);
  req.set_header("Content-Type", "text/xml; charset=utf-8");
  req.set_header("SOAPAction", "\"" + ns + "#" + method + "\"");
  http_.request(dest, std::move(req),
                [done = std::move(done)](Result<http::Response> resp) {
                  if (!resp.is_ok()) {
                    done(resp.status());
                    return;
                  }
                  auto env = parse_envelope(resp.value().body);
                  if (!env.is_ok()) {
                    done(env.status());
                    return;
                  }
                  if (env.value().is_fault) {
                    done(env.value().fault.to_status());
                    return;
                  }
                  // RPC convention: single <return> child (or first param).
                  if (env.value().params.empty()) {
                    done(Value());
                  } else {
                    done(env.value().params.front().second);
                  }
                });
}

}  // namespace hcm::soap
